#include "relational/warshall.h"

#include <bit>

#include "util/status.h"

namespace tcf {

ReachabilityMatrix::ReachabilityMatrix(size_t n)
    : n_(n), rows_(n * Words(), 0) {}

bool ReachabilityMatrix::Get(NodeId from, NodeId to) const {
  TCF_CHECK(from < n_ && to < n_);
  return (rows_[from * Words() + to / 64] >> (to % 64)) & 1;
}

void ReachabilityMatrix::Set(NodeId from, NodeId to) {
  TCF_CHECK(from < n_ && to < n_);
  rows_[from * Words() + to / 64] |= uint64_t{1} << (to % 64);
}

size_t ReachabilityMatrix::CountReachablePairs() const {
  size_t count = 0;
  for (uint64_t w : rows_) count += std::popcount(w);
  return count;
}

ReachabilityMatrix WarshallClosure(const Graph& g) {
  const size_t n = g.NumNodes();
  ReachabilityMatrix m(n);
  for (const Edge& e : g.edges()) m.Set(e.src, e.dst);
  const size_t words = m.Words();
  for (size_t k = 0; k < n; ++k) {
    const uint64_t* row_k = m.rows_.data() + k * words;
    for (size_t i = 0; i < n; ++i) {
      if (!m.Get(static_cast<NodeId>(i), static_cast<NodeId>(k))) continue;
      uint64_t* row_i = m.rows_.data() + i * words;
      for (size_t w = 0; w < words; ++w) row_i[w] |= row_k[w];
    }
  }
  return m;
}

}  // namespace tcf
