#include "relational/operators.h"

#include <unordered_map>

namespace tcf {

// Every operator consumes its inputs through the cursor API (ForEach), so
// a paged relation streams out of pinned buffer-pool pages tuple run by
// tuple run — the operators never require a resident copy of their inputs,
// only of their (small) outputs.

Relation SelectBySrc(const Relation& r, const NodeSet& set) {
  Relation out;
  r.ForEach([&](const PathTuple& t) {
    if (set.count(t.src)) out.Add(t);
  });
  return out;
}

Relation SelectByDst(const Relation& r, const NodeSet& set) {
  Relation out;
  r.ForEach([&](const PathTuple& t) {
    if (set.count(t.dst)) out.Add(t);
  });
  return out;
}

Relation Select(const Relation& r,
                const std::function<bool(const PathTuple&)>& pred) {
  Relation out;
  r.ForEach([&](const PathTuple& t) {
    if (pred(t)) out.Add(t);
  });
  return out;
}

Relation JoinMinPlus(const Relation& left, const Relation& right,
                     size_t* join_tuples_out) {
  // Hash the smaller-by-convention right side on src. Tuples are stored by
  // value: a paged right side only lends its blocks for the duration of
  // the scan.
  std::unordered_map<NodeId, std::vector<PathTuple>> index;
  index.reserve(right.size());
  right.ForEach([&](const PathTuple& t) { index[t.src].push_back(t); });
  size_t join_tuples = 0;
  std::unordered_map<uint64_t, Weight> best;
  left.ForEach([&](const PathTuple& l) {
    auto it = index.find(l.dst);
    if (it == index.end()) return;
    for (const PathTuple& r : it->second) {
      ++join_tuples;
      const uint64_t key = PairKey(l.src, r.dst);
      const Weight cost = l.cost + r.cost;
      auto [slot, inserted] = best.emplace(key, cost);
      if (!inserted && cost < slot->second) slot->second = cost;
    }
  });
  if (join_tuples_out != nullptr) *join_tuples_out = join_tuples;
  Relation out;
  out.mutable_tuples().reserve(best.size());
  for (const auto& [key, cost] : best) {
    out.Add(static_cast<NodeId>(key >> 32),
            static_cast<NodeId>(key & 0xffffffffu), cost);
  }
  return out;
}

Relation JoinMaxMin(const Relation& left, const Relation& right,
                    size_t* join_tuples_out) {
  std::unordered_map<NodeId, std::vector<PathTuple>> index;
  index.reserve(right.size());
  right.ForEach([&](const PathTuple& t) { index[t.src].push_back(t); });
  size_t join_tuples = 0;
  std::unordered_map<uint64_t, Weight> best;
  left.ForEach([&](const PathTuple& l) {
    auto it = index.find(l.dst);
    if (it == index.end()) return;
    for (const PathTuple& r : it->second) {
      ++join_tuples;
      const uint64_t key = PairKey(l.src, r.dst);
      const Weight capacity = std::min(l.cost, r.cost);
      auto [slot, inserted] = best.emplace(key, capacity);
      if (!inserted && capacity > slot->second) slot->second = capacity;
    }
  });
  if (join_tuples_out != nullptr) *join_tuples_out = join_tuples;
  Relation out;
  for (const auto& [key, capacity] : best) {
    out.Add(static_cast<NodeId>(key >> 32),
            static_cast<NodeId>(key & 0xffffffffu), capacity);
  }
  return out;
}

Relation UnionMin(const Relation& a, const Relation& b) {
  Relation out = a;
  out.Append(b);
  out.AggregateMin();
  return out;
}

Relation UnionMax(const Relation& a, const Relation& b) {
  Relation out = a;
  out.Append(b);
  out.AggregateMax();
  return out;
}

Relation ImprovingTuples(const Relation& candidate, const Relation& best,
                         bool min_plus) {
  Relation out;
  candidate.ForEach([&](const PathTuple& t) {
    const Weight current = best.BestCost(t.src, t.dst);
    const bool improves =
        min_plus ? (t.cost < current) : (current == kInfinity);
    if (improves) out.Add(t);
  });
  // The candidate may itself contain several tuples per pair; keep the best.
  out.AggregateMin();
  return out;
}

Relation ImprovingTuplesMax(const Relation& candidate, const Relation& best) {
  Relation out;
  candidate.ForEach([&](const PathTuple& t) {
    if (t.cost > best.MaxCost(t.src, t.dst)) out.Add(t);
  });
  out.AggregateMax();
  return out;
}

}  // namespace tcf
