// Bit-parallel Warshall transitive closure — the classic matrix-based
// alternative to the iterated-join strategies (cf. the algorithm survey of
// Ioannidis & Ramakrishnan the paper cites as [16]). Closes reachability
// over the whole relation in O(n^3 / 64); useful as a dense-engine
// baseline in the micro benches and as another oracle for tests.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace tcf {

/// Dense reachability closure: row-major packed bit matrix where bit
/// (i, j) means "j reachable from i by a path of length >= 1".
class ReachabilityMatrix {
 public:
  explicit ReachabilityMatrix(size_t n);

  size_t size() const { return n_; }
  bool Get(NodeId from, NodeId to) const;
  void Set(NodeId from, NodeId to);

  /// Number of reachable ordered pairs.
  size_t CountReachablePairs() const;

 private:
  friend ReachabilityMatrix WarshallClosure(const Graph& g);

  size_t Words() const { return (n_ + 63) / 64; }

  size_t n_;
  std::vector<uint64_t> rows_;
};

/// Computes the reachability closure of g with Warshall's algorithm,
/// OR-ing whole 64-bit row words at a time.
ReachabilityMatrix WarshallClosure(const Graph& g);

}  // namespace tcf
