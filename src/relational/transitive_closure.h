// Transitive closure strategies over path relations.
//
// Three classic single-site algorithms are provided — naive, semi-naive
// (delta) iteration, and "smart" logarithmic squaring — in two semirings:
// reachability (is there a path?) and min-plus (what is the cheapest
// path?). Each run reports the statistics the paper's performance model is
// built on: the number of iterations (driven by the diameter, Sec. 2.1) and
// the intermediate result sizes (driven by connectivity, Sec. 2.2).
//
// Source and target selections implement the "keyhole" role of the
// disconnection sets: the DSA evaluates, inside one fragment, only paths
// that depart from a disconnection set (or the query constant) and reports
// only those arriving in the next disconnection set.
#pragma once

#include <optional>

#include "relational/operators.h"
#include "relational/relation.h"

namespace tcf {

enum class TcAlgorithm {
  kNaive,     // full re-join of the closure with R each round
  kSemiNaive, // join only the delta with R
  kSmart      // squaring: closure doubles path length per round
};

enum class TcSemiring {
  kReachability,  // fixpoint on pair existence
  kMinPlus,       // fixpoint on minimal cost per pair
  kBottleneck     // fixpoint on maximal min-edge capacity per pair
                  // (requires strictly positive edge weights)
};

struct TcOptions {
  TcAlgorithm algorithm = TcAlgorithm::kSemiNaive;
  TcSemiring semiring = TcSemiring::kMinPlus;

  /// If set, only paths starting at these nodes are derived (selection
  /// pushed into the iteration — the magic-cone restriction).
  std::optional<NodeSet> sources;
  /// If set, the *result* is filtered to these destinations (the iteration
  /// must still expand through intermediate nodes).
  std::optional<NodeSet> targets;

  /// Safety valve for malformed inputs (e.g. negative cycles in min-plus).
  size_t max_iterations = 1u << 20;
};

/// Execution statistics for one closure computation.
struct TcStats {
  size_t iterations = 0;          // number of fixpoint rounds
  size_t join_tuples = 0;         // total pre-aggregation join output
  size_t tuples_produced = 0;     // total delta tuples admitted
  size_t max_delta_size = 0;      // largest delta relation
  size_t result_size = 0;         // final closure cardinality
};

/// Computes the transitive closure of `base` (paths of length >= 1).
/// Returns one tuple per reachable (src, dst) pair — with minimal cost in
/// the min-plus semiring, with the cost of *some* witness path (hop-minimal
/// not guaranteed) under reachability.
Relation TransitiveClosure(const Relation& base, const TcOptions& options = {},
                           TcStats* stats = nullptr);

}  // namespace tcf
