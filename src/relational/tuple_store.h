// The physical-storage seam under Relation: a logical relation iterates
// its tuples through a TupleStore cursor, so the same relational operators
// run over an in-memory vector (VectorTupleStore) or over buffer-pool
// pinned pages of a database file (storage/paged_tuple_store.h) — the way
// disk-resident query engines separate logical relations from their
// physical tuple storage (docs/ARCHITECTURE.md "The TupleStore seam").
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace tcf {

/// One tuple of a path relation: a witnessed path src -> dst of cost `cost`.
struct PathTuple {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  Weight cost = 0.0;

  bool operator==(const PathTuple& other) const = default;
};

/// Packs (src, dst) into a 64-bit hash key.
inline uint64_t PairKey(NodeId src, NodeId dst) {
  return (static_cast<uint64_t>(src) << 32) | dst;
}

/// Immutable physical tuple storage. A store outlives every cursor it
/// hands out; a const store may be scanned from any number of threads
/// concurrently (each thread with its own cursor).
class TupleStore {
 public:
  /// A scan in progress. NextBlock() yields runs of tuples until an empty
  /// span signals the end; each returned span is valid only until the next
  /// NextBlock() call or cursor destruction. Any resources the scan holds
  /// (buffer-pool pins, decode buffers) live exactly as long as the
  /// cursor. A cursor must not be shared across threads.
  ///
  /// Error channel: a scan that cannot read its backing storage (disk I/O
  /// error, corrupt page) ends early — NextBlock() returns an empty span —
  /// and status() reports the failure. Callers that must distinguish a
  /// clean end-of-scan from a failed one check status() after the loop;
  /// Relation::ForEach does this and returns the Status, so read failures
  /// fail the query instead of going unnoticed (or killing the process).
  class Cursor {
   public:
    virtual ~Cursor() = default;
    virtual std::span<const PathTuple> NextBlock() = 0;
    /// OK while the scan is healthy and after a clean end; the first
    /// failure is sticky.
    virtual Status status() const { return Status::OK(); }
  };

  virtual ~TupleStore() = default;

  /// Number of tuples a full scan yields.
  virtual uint64_t size() const = 0;

  /// Start a fresh scan over all tuples.
  virtual std::unique_ptr<Cursor> NewCursor() const = 0;
};

/// The in-memory implementation: tuples in a vector, scanned as one block.
class VectorTupleStore final : public TupleStore {
 public:
  explicit VectorTupleStore(std::vector<PathTuple> tuples)
      : tuples_(std::move(tuples)) {}

  uint64_t size() const override { return tuples_.size(); }
  std::unique_ptr<Cursor> NewCursor() const override;

  const std::vector<PathTuple>& tuples() const { return tuples_; }

 private:
  class VectorCursor;

  std::vector<PathTuple> tuples_;
};

}  // namespace tcf
