#include "relational/tuple_store.h"

#include <utility>

namespace tcf {

class VectorTupleStore::VectorCursor final : public TupleStore::Cursor {
 public:
  explicit VectorCursor(std::span<const PathTuple> tuples)
      : remaining_(tuples) {}

  std::span<const PathTuple> NextBlock() override {
    return std::exchange(remaining_, {});
  }

 private:
  std::span<const PathTuple> remaining_;
};

std::unique_ptr<TupleStore::Cursor> VectorTupleStore::NewCursor() const {
  return std::make_unique<VectorCursor>(std::span<const PathTuple>(tuples_));
}

}  // namespace tcf
