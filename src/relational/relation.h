// The relational view of the problem: the connection network is a relation
// R(src, dst, cost); transitive closure queries are evaluated by iterated
// relational joins (Sec. 2.1 "a relational join between intermediate result
// and the relation modeling the graph").
//
// A Relation is the *logical* bag of tuples; the bytes live either in a
// resident std::vector (the common case — operators build results here) or
// behind an immutable TupleStore (a paged store iterating buffer-pool
// pinned pages of a database file). Reads that must work in both modes go
// through Scan()/ForEach(); tuples() is the resident-only fast path. Any
// mutation of a paged relation first materializes the tuples into the
// resident vector — paged stores themselves are immutable, so copies of a
// paged Relation share the store (cheap epoch carry-over) and the mutated
// copy becomes memory-resident (copy-on-write).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "relational/tuple_store.h"
#include "util/status.h"

namespace tcf {

/// A bag of path tuples with helpers for the aggregation the transitive
/// closure engine needs (keep the cheapest tuple per (src, dst) pair).
class Relation {
 public:
  Relation() = default;
  explicit Relation(std::vector<PathTuple> tuples)
      : tuples_(std::move(tuples)) {}
  /// A relation whose tuples live in an immutable store (e.g. a paged
  /// store over buffer-pool pinned pages). Reads stream through Scan();
  /// the first mutation materializes the tuples into resident memory.
  explicit Relation(std::shared_ptr<const TupleStore> store)
      : store_(std::move(store)) {}

  // Copies share the (immutable) store but never the lazy index cell: the
  // cell embeds synchronization state that must belong to exactly one
  // relation. Moved-from relations are empty and index-cold.
  Relation(const Relation& other)
      : tuples_(other.tuples_), store_(other.store_) {}
  Relation& operator=(const Relation& other) {
    if (this != &other) {
      tuples_ = other.tuples_;
      store_ = other.store_;
      InvalidateIndexes();
    }
    return *this;
  }
  Relation(Relation&& other) noexcept
      : tuples_(std::move(other.tuples_)), store_(std::move(other.store_)) {
    other.InvalidateIndexes();
  }
  Relation& operator=(Relation&& other) noexcept {
    if (this != &other) {
      tuples_ = std::move(other.tuples_);
      store_ = std::move(other.store_);
      InvalidateIndexes();
      other.InvalidateIndexes();
    }
    return *this;
  }

  /// Base relation of a whole graph: one tuple per edge.
  static Relation FromGraph(const Graph& g);
  /// Base relation of an edge subset (a fragment R_i).
  static Relation FromEdgeSubset(const Graph& g,
                                 const std::vector<EdgeId>& edge_ids);

  size_t size() const {
    return store_ != nullptr ? store_->size() : tuples_.size();
  }
  bool empty() const { return size() == 0; }
  /// True when the tuples live behind a TupleStore (not resident memory).
  bool is_paged() const { return store_ != nullptr; }

  /// Resident-only direct access. A paged relation has no resident vector
  /// to expose — stream it with Scan()/ForEach() instead, or Materialize()
  /// first if a vector is genuinely required.
  const std::vector<PathTuple>& tuples() const {
    TCF_CHECK_MSG(store_ == nullptr,
                  "Relation::tuples() on a paged relation; use Scan()");
    return tuples_;
  }
  std::vector<PathTuple>& mutable_tuples() {
    MaterializeOrDie();
    InvalidateIndexes();
    return tuples_;
  }

  /// A scan over all tuples, resident or paged. Value type: destroying it
  /// releases whatever the scan holds (for paged relations, the buffer-pool
  /// pin). Blocks are valid until the next NextBlock() call. A paged scan
  /// that cannot read its pages ends early with a non-OK status() — check
  /// it after the loop (resident scans cannot fail).
  class Cursor {
   public:
    std::span<const PathTuple> NextBlock() {
      if (impl_ != nullptr) return impl_->NextBlock();
      return std::exchange(resident_, {});
    }

    Status status() const {
      return impl_ != nullptr ? impl_->status() : Status::OK();
    }

   private:
    friend class Relation;
    explicit Cursor(std::span<const PathTuple> resident)
        : resident_(resident) {}
    explicit Cursor(std::unique_ptr<TupleStore::Cursor> impl)
        : impl_(std::move(impl)) {}

    std::span<const PathTuple> resident_;
    std::unique_ptr<TupleStore::Cursor> impl_;
  };

  Cursor Scan() const {
    if (store_ != nullptr) return Cursor(store_->NewCursor());
    return Cursor(std::span<const PathTuple>(tuples_));
  }

  /// Visit every tuple: `fn(const PathTuple&)`. The pin-lifetime rule in
  /// one helper — any page pinned for the scan is released on return.
  /// Returns the scan's final status: always OK for resident relations; a
  /// paged relation whose pages cannot be read stops the visit early and
  /// reports why. Callers on a query path must propagate the failure (a
  /// partial visit must never pass as a complete one).
  template <typename Fn>
  Status ForEach(Fn&& fn) const {
    Cursor cursor = Scan();
    for (std::span<const PathTuple> block = cursor.NextBlock();
         !block.empty(); block = cursor.NextBlock()) {
      for (const PathTuple& t : block) fn(t);
    }
    return cursor.status();
  }

  /// Pull the tuples of a paged relation into resident memory and drop the
  /// store reference. No-op for resident relations. On failure the
  /// relation is unchanged (still paged, still readable if the fault was
  /// transient).
  Status Materialize();

  void Add(PathTuple t) {
    MaterializeOrDie();
    InvalidateIndexes();
    tuples_.push_back(t);
  }
  void Add(NodeId src, NodeId dst, Weight cost) {
    Add(PathTuple{src, dst, cost});
  }
  /// Appends `other`'s tuples, streaming a paged `other` through its
  /// cursor. Returns the stream's status — on failure `*this` holds the
  /// tuples appended so far and the caller must not treat the result as
  /// complete.
  Status Append(const Relation& other);
  void Clear() {
    InvalidateIndexes();
    tuples_.clear();
    store_.reset();
  }

  /// Collapse duplicates: keep the minimum cost per (src, dst).
  void AggregateMin();
  /// Collapse duplicates: keep the maximum cost per (src, dst) — the
  /// aggregation of the bottleneck (max-min capacity) semiring.
  void AggregateMax();

  /// Deterministic order (src, dst, cost) — used by tests and printers.
  void SortCanonical();

  /// Lookup the best (minimum) cost for (src, dst); kInfinity if absent.
  /// The lookup index is built lazily on first use under a double-checked
  /// lock, so a *const* Relation is safe to query from any number of
  /// threads with no warm-up ritual (the usual contract: reads may not
  /// run concurrently with mutations). Any mutation invalidates the
  /// indexes; the next lookup rebuilds.
  ///
  /// Paged relations: the lazy build scans the store, and a lookup has no
  /// error channel — a build that fails on a storage error is fatal
  /// (TCF_CHECK). Callers probing a paged relation must WarmIndexes()
  /// first and handle its Status (RefreshComplementary does; queries only
  /// ever probe resident relations, which cannot fail).
  Weight BestCost(NodeId src, NodeId dst) const;
  /// Builds both lookup indexes now and reports whether the backing scan
  /// succeeded (always OK for resident relations). Purely a warm hint for
  /// resident relations; for paged relations it is the error channel a
  /// probe needs — warm, check, then look up. A no-op once the indexes
  /// exist; a failed build leaves them cold, so a later call retries.
  Status WarmIndexes() const {
    TCF_RETURN_NOT_OK(EnsureIndex());
    return EnsureMaxIndex();
  }
  /// Lookup the best (maximum) capacity for (src, dst); 0 if absent.
  Weight MaxCost(NodeId src, NodeId dst) const;
  bool Contains(NodeId src, NodeId dst) const {
    return BestCost(src, dst) != kInfinity;
  }

  std::string ToString(size_t max_rows = 32) const;

 private:
  // Lazy lookup indexes, built on first BestCost/MaxCost via double-checked
  // locking (the resettable equivalent of std::call_once: mutation must be
  // able to re-arm the build, which a once_flag cannot).
  struct LazyIndexes {
    std::mutex build_mutex;
    std::atomic<bool> min_built{false};
    std::atomic<bool> max_built{false};
    std::unordered_map<uint64_t, Weight> min_index;
    std::unordered_map<uint64_t, Weight> max_index;
  };

  // Requires exclusive access (mutation contract).
  void InvalidateIndexes() {
    if (lazy_.min_built.load(std::memory_order_relaxed)) {
      lazy_.min_built.store(false, std::memory_order_relaxed);
      lazy_.min_index.clear();
    }
    if (lazy_.max_built.load(std::memory_order_relaxed)) {
      lazy_.max_built.store(false, std::memory_order_relaxed);
      lazy_.max_index.clear();
    }
  }
  // Mutation prelude: a paged relation must be resident before its tuple
  // vector can change. Mutators have no error channel, so a store that
  // cannot be read here is fatal — mutation of paged relations happens on
  // maintenance paths that warm/materialize with Status-checked calls
  // first; the query path never mutates.
  void MaterializeOrDie() {
    const Status st = Materialize();
    TCF_CHECK_MSG(st.ok(), "Relation: cannot materialize paged store: " +
                               st.ToString());
  }
  // Build the lazy indexes if cold; returns the backing scan's status and
  // leaves the index cold (and empty) on failure so a later call retries.
  Status EnsureIndex() const;
  Status EnsureMaxIndex() const;

  std::vector<PathTuple> tuples_;
  std::shared_ptr<const TupleStore> store_;
  mutable LazyIndexes lazy_;
};

}  // namespace tcf
