// The relational view of the problem: the connection network is a relation
// R(src, dst, cost); transitive closure queries are evaluated by iterated
// relational joins (Sec. 2.1 "a relational join between intermediate result
// and the relation modeling the graph").
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"

namespace tcf {

/// One tuple of a path relation: a witnessed path src -> dst of cost `cost`.
struct PathTuple {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  Weight cost = 0.0;

  bool operator==(const PathTuple& other) const = default;
};

/// Packs (src, dst) into a 64-bit hash key.
inline uint64_t PairKey(NodeId src, NodeId dst) {
  return (static_cast<uint64_t>(src) << 32) | dst;
}

/// A bag of path tuples with helpers for the aggregation the transitive
/// closure engine needs (keep the cheapest tuple per (src, dst) pair).
class Relation {
 public:
  Relation() = default;
  explicit Relation(std::vector<PathTuple> tuples)
      : tuples_(std::move(tuples)) {}

  /// Base relation of a whole graph: one tuple per edge.
  static Relation FromGraph(const Graph& g);
  /// Base relation of an edge subset (a fragment R_i).
  static Relation FromEdgeSubset(const Graph& g,
                                 const std::vector<EdgeId>& edge_ids);

  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }
  const std::vector<PathTuple>& tuples() const { return tuples_; }
  std::vector<PathTuple>& mutable_tuples() {
    InvalidateIndexes();
    return tuples_;
  }

  void Add(PathTuple t) {
    InvalidateIndexes();
    tuples_.push_back(t);
  }
  void Add(NodeId src, NodeId dst, Weight cost) {
    Add(PathTuple{src, dst, cost});
  }
  void Append(const Relation& other) {
    InvalidateIndexes();
    tuples_.insert(tuples_.end(), other.tuples_.begin(),
                   other.tuples_.end());
  }
  void Clear() {
    InvalidateIndexes();
    tuples_.clear();
  }

  /// Collapse duplicates: keep the minimum cost per (src, dst).
  void AggregateMin();
  /// Collapse duplicates: keep the maximum cost per (src, dst) — the
  /// aggregation of the bottleneck (max-min capacity) semiring.
  void AggregateMax();

  /// Deterministic order (src, dst, cost) — used by tests and printers.
  void SortCanonical();

  /// Lookup the best (minimum) cost for (src, dst); kInfinity if absent.
  /// Builds a hash index on first use; invalidated by any mutation after
  /// that. The lazy build means a *const* Relation is not safe to query
  /// from several threads until the indexes exist — see WarmIndexes().
  Weight BestCost(NodeId src, NodeId dst) const;
  /// Builds both lookup indexes now. Call once, single-threaded, before
  /// sharing a read-only Relation across threads: afterwards BestCost /
  /// MaxCost / Contains are pure reads and safe to call concurrently (as
  /// long as nobody mutates the relation).
  void WarmIndexes() const {
    EnsureIndex();
    EnsureMaxIndex();
  }
  /// Lookup the best (maximum) capacity for (src, dst); 0 if absent.
  Weight MaxCost(NodeId src, NodeId dst) const;
  bool Contains(NodeId src, NodeId dst) const {
    return BestCost(src, dst) != kInfinity;
  }

  std::string ToString(size_t max_rows = 32) const;

 private:
  void InvalidateIndexes() {
    index_valid_ = false;
    max_index_valid_ = false;
  }
  void EnsureIndex() const;
  void EnsureMaxIndex() const;

  std::vector<PathTuple> tuples_;
  mutable std::unordered_map<uint64_t, Weight> index_;
  mutable bool index_valid_ = false;
  mutable std::unordered_map<uint64_t, Weight> max_index_;
  mutable bool max_index_valid_ = false;
};

}  // namespace tcf
