// Relational algebra operators over path relations. These are the physical
// operators the transitive-closure strategies are built from; the
// disconnection set approach additionally uses them directly for the final
// assembly ("a sequence of binary joins between a number of very small
// relations", Sec. 2.1).
#pragma once

#include <functional>
#include <unordered_set>
#include <vector>

#include "relational/relation.h"

namespace tcf {

/// Node-set selection predicate helper.
using NodeSet = std::unordered_set<NodeId>;

/// sigma_{src in set}(r)
Relation SelectBySrc(const Relation& r, const NodeSet& set);
/// sigma_{dst in set}(r)
Relation SelectByDst(const Relation& r, const NodeSet& set);
/// Generic selection.
Relation Select(const Relation& r,
                const std::function<bool(const PathTuple&)>& pred);

/// Min-plus composition join:
///   left ⋈ right = { (l.src, r.dst, l.cost + r.cost) | l.dst = r.src },
/// followed by min-aggregation per (src, dst). This is one expansion step
/// of the shortest-path transitive closure. `join_tuples_out`, if non-null,
/// receives the pre-aggregation join cardinality (workload accounting).
Relation JoinMinPlus(const Relation& left, const Relation& right,
                     size_t* join_tuples_out = nullptr);

/// Max-min composition join (the bottleneck / capacity semiring):
///   left ⋈ right = { (l.src, r.dst, min(l.cost, r.cost)) | l.dst = r.src },
/// followed by max-aggregation per (src, dst). One expansion step of the
/// widest-path transitive closure (the paper, Sec. 2.1: complementary
/// information — and hence the closure itself — "is different for each
/// type of path problem").
Relation JoinMaxMin(const Relation& left, const Relation& right,
                    size_t* join_tuples_out = nullptr);

/// Union with min-aggregation per (src, dst).
Relation UnionMin(const Relation& a, const Relation& b);
/// Union with max-aggregation per (src, dst).
Relation UnionMax(const Relation& a, const Relation& b);

/// Tuples of `candidate` that strictly improve on `best`:
///   - reachability semiring: pairs not present in `best` at all;
///   - min-plus: pairs absent or with a strictly smaller cost.
/// This is the semi-naive delta step.
Relation ImprovingTuples(const Relation& candidate, const Relation& best,
                         bool min_plus);

/// Bottleneck delta step: tuples of `candidate` whose capacity strictly
/// exceeds the best known in `best`.
Relation ImprovingTuplesMax(const Relation& candidate, const Relation& best);

}  // namespace tcf
