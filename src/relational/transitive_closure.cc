#include "relational/transitive_closure.h"

#include "util/status.h"

namespace tcf {

namespace {

bool IsMinPlus(const TcOptions& options) {
  return options.semiring == TcSemiring::kMinPlus;
}

bool IsBottleneck(const TcOptions& options) {
  return options.semiring == TcSemiring::kBottleneck;
}

/// Semiring-dispatched physical operators.
Relation Compose(const Relation& left, const Relation& right,
                 const TcOptions& options, size_t* join_tuples) {
  return IsBottleneck(options) ? JoinMaxMin(left, right, join_tuples)
                               : JoinMinPlus(left, right, join_tuples);
}

Relation UnionBest(const Relation& a, const Relation& b,
                   const TcOptions& options) {
  return IsBottleneck(options) ? UnionMax(a, b) : UnionMin(a, b);
}

Relation Improving(const Relation& candidate, const Relation& best,
                   const TcOptions& options) {
  return IsBottleneck(options) ? ImprovingTuplesMax(candidate, best)
                               : ImprovingTuples(candidate, best,
                                                 IsMinPlus(options));
}

void Aggregate(Relation* r, const TcOptions& options) {
  if (IsBottleneck(options)) {
    r->AggregateMax();
  } else {
    r->AggregateMin();
  }
}

// A paged `base` is consumed through the cursor API throughout: the
// selection operators stream it, Compose hashes it block by block, and the
// unrestricted copy below shares the immutable store until the first
// aggregation materializes the (already small) working relation.
Relation RestrictSources(const Relation& base, const TcOptions& options) {
  if (!options.sources.has_value()) return base;
  return SelectBySrc(base, *options.sources);
}

Relation FilterTargets(Relation result, const TcOptions& options) {
  if (!options.targets.has_value()) return result;
  return SelectByDst(result, *options.targets);
}

/// Semi-naive: delta_{k+1} = improving(delta_k ⋈ R); closure accumulates.
Relation SemiNaive(const Relation& base, const TcOptions& options,
                   TcStats* stats) {
  Relation closure = RestrictSources(base, options);
  Aggregate(&closure, options);
  Relation delta = closure;
  while (!delta.empty()) {
    TCF_CHECK_MSG(stats->iterations < options.max_iterations,
                  "semi-naive TC did not converge (negative cycle?)");
    ++stats->iterations;
    size_t join_tuples = 0;
    Relation candidate = Compose(delta, base, options, &join_tuples);
    stats->join_tuples += join_tuples;
    delta = Improving(candidate, closure, options);
    stats->tuples_produced += delta.size();
    stats->max_delta_size = std::max(stats->max_delta_size, delta.size());
    if (delta.empty()) break;
    closure = UnionBest(closure, delta, options);
  }
  return closure;
}

/// Naive: closure_{k+1} = closure_k ∪ (closure_k ⋈ R), re-deriving
/// everything every round. Kept as the baseline of wasted work.
Relation Naive(const Relation& base, const TcOptions& options,
               TcStats* stats) {
  Relation closure = RestrictSources(base, options);
  Aggregate(&closure, options);
  while (true) {
    TCF_CHECK_MSG(stats->iterations < options.max_iterations,
                  "naive TC did not converge (negative cycle?)");
    ++stats->iterations;
    size_t join_tuples = 0;
    Relation candidate = Compose(closure, base, options, &join_tuples);
    stats->join_tuples += join_tuples;
    Relation improvement = Improving(candidate, closure, options);
    stats->tuples_produced += improvement.size();
    stats->max_delta_size =
        std::max(stats->max_delta_size, improvement.size());
    if (improvement.empty()) break;
    closure = UnionBest(closure, improvement, options);
  }
  return closure;
}

/// Smart / squaring: T_{k+1} = T_k ∪ (T_k ⋈ T_k); path length doubles each
/// round, so rounds ~ log2(diameter). Incompatible with a source
/// restriction (the right operand must contain all paths), so the
/// restriction is applied to the final result instead.
Relation Smart(const Relation& base, const TcOptions& options,
               TcStats* stats) {
  Relation closure = base;
  Aggregate(&closure, options);
  while (true) {
    TCF_CHECK_MSG(stats->iterations < options.max_iterations,
                  "smart TC did not converge (negative cycle?)");
    ++stats->iterations;
    size_t join_tuples = 0;
    Relation candidate = Compose(closure, closure, options, &join_tuples);
    stats->join_tuples += join_tuples;
    Relation improvement = Improving(candidate, closure, options);
    stats->tuples_produced += improvement.size();
    stats->max_delta_size =
        std::max(stats->max_delta_size, improvement.size());
    if (improvement.empty()) break;
    closure = UnionBest(closure, improvement, options);
  }
  if (options.sources.has_value()) {
    closure = SelectBySrc(closure, *options.sources);
  }
  return closure;
}

}  // namespace

Relation TransitiveClosure(const Relation& base, const TcOptions& options,
                           TcStats* stats) {
  TcStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = TcStats{};

  Relation result;
  switch (options.algorithm) {
    case TcAlgorithm::kSemiNaive:
      result = SemiNaive(base, options, stats);
      break;
    case TcAlgorithm::kNaive:
      result = Naive(base, options, stats);
      break;
    case TcAlgorithm::kSmart:
      result = Smart(base, options, stats);
      break;
  }
  result = FilterTargets(std::move(result), options);
  result.SortCanonical();
  stats->result_size = result.size();
  return result;
}

}  // namespace tcf
