#include "relational/relation.h"

#include <algorithm>
#include <sstream>

namespace tcf {

Relation Relation::FromGraph(const Graph& g) {
  Relation r;
  r.tuples_.reserve(g.NumEdges());
  for (const Edge& e : g.edges()) r.Add(e.src, e.dst, e.weight);
  return r;
}

Relation Relation::FromEdgeSubset(const Graph& g,
                                  const std::vector<EdgeId>& edge_ids) {
  Relation r;
  r.tuples_.reserve(edge_ids.size());
  for (EdgeId id : edge_ids) {
    const Edge& e = g.edge(id);
    r.Add(e.src, e.dst, e.weight);
  }
  return r;
}

void Relation::Materialize() {
  if (store_ == nullptr) return;
  // Keep the store alive until the copy finishes, then drop it: the
  // relation is memory-resident from here on (copy-on-write).
  std::shared_ptr<const TupleStore> store = std::move(store_);
  store_.reset();
  tuples_.clear();
  tuples_.reserve(store->size());
  std::unique_ptr<TupleStore::Cursor> cursor = store->NewCursor();
  for (std::span<const PathTuple> block = cursor->NextBlock(); !block.empty();
       block = cursor->NextBlock()) {
    tuples_.insert(tuples_.end(), block.begin(), block.end());
  }
  InvalidateIndexes();
}

void Relation::Append(const Relation& other) {
  Materialize();
  InvalidateIndexes();
  tuples_.reserve(tuples_.size() + other.size());
  // Streams `other` through its cursor, so appending a paged relation
  // copies tuples out of pinned pages without materializing `other`.
  other.ForEach([this](const PathTuple& t) { tuples_.push_back(t); });
}

void Relation::AggregateMin() {
  Materialize();
  std::unordered_map<uint64_t, Weight> best;
  best.reserve(tuples_.size());
  for (const PathTuple& t : tuples_) {
    auto [it, inserted] = best.emplace(PairKey(t.src, t.dst), t.cost);
    if (!inserted && t.cost < it->second) it->second = t.cost;
  }
  tuples_.clear();
  tuples_.reserve(best.size());
  for (const auto& [key, cost] : best) {
    tuples_.push_back(PathTuple{static_cast<NodeId>(key >> 32),
                                static_cast<NodeId>(key & 0xffffffffu),
                                cost});
  }
  InvalidateIndexes();
}

void Relation::AggregateMax() {
  Materialize();
  std::unordered_map<uint64_t, Weight> best;
  best.reserve(tuples_.size());
  for (const PathTuple& t : tuples_) {
    auto [it, inserted] = best.emplace(PairKey(t.src, t.dst), t.cost);
    if (!inserted && t.cost > it->second) it->second = t.cost;
  }
  tuples_.clear();
  tuples_.reserve(best.size());
  for (const auto& [key, cost] : best) {
    tuples_.push_back(PathTuple{static_cast<NodeId>(key >> 32),
                                static_cast<NodeId>(key & 0xffffffffu),
                                cost});
  }
  InvalidateIndexes();
}

void Relation::SortCanonical() {
  Materialize();
  InvalidateIndexes();
  std::sort(tuples_.begin(), tuples_.end(),
            [](const PathTuple& a, const PathTuple& b) {
              if (a.src != b.src) return a.src < b.src;
              if (a.dst != b.dst) return a.dst < b.dst;
              return a.cost < b.cost;
            });
}

void Relation::EnsureIndex() const {
  if (lazy_.min_built.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(lazy_.build_mutex);
  if (lazy_.min_built.load(std::memory_order_relaxed)) return;
  lazy_.min_index.clear();
  lazy_.min_index.reserve(size());
  ForEach([this](const PathTuple& t) {
    auto [it, inserted] = lazy_.min_index.emplace(PairKey(t.src, t.dst),
                                                  t.cost);
    if (!inserted && t.cost < it->second) it->second = t.cost;
  });
  lazy_.min_built.store(true, std::memory_order_release);
}

Weight Relation::BestCost(NodeId src, NodeId dst) const {
  EnsureIndex();
  auto it = lazy_.min_index.find(PairKey(src, dst));
  return it == lazy_.min_index.end() ? kInfinity : it->second;
}

void Relation::EnsureMaxIndex() const {
  if (lazy_.max_built.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(lazy_.build_mutex);
  if (lazy_.max_built.load(std::memory_order_relaxed)) return;
  lazy_.max_index.clear();
  lazy_.max_index.reserve(size());
  ForEach([this](const PathTuple& t) {
    auto [it, inserted] = lazy_.max_index.emplace(PairKey(t.src, t.dst),
                                                  t.cost);
    if (!inserted && t.cost > it->second) it->second = t.cost;
  });
  lazy_.max_built.store(true, std::memory_order_release);
}

Weight Relation::MaxCost(NodeId src, NodeId dst) const {
  EnsureMaxIndex();
  auto it = lazy_.max_index.find(PairKey(src, dst));
  return it == lazy_.max_index.end() ? 0.0 : it->second;
}

std::string Relation::ToString(size_t max_rows) const {
  std::ostringstream os;
  os << "Relation(" << size() << " tuples";
  if (is_paged()) os << ", paged";
  os << ")";
  size_t shown = 0;
  Cursor cursor = Scan();
  for (std::span<const PathTuple> block = cursor.NextBlock(); !block.empty();
       block = cursor.NextBlock()) {
    for (const PathTuple& t : block) {
      if (shown++ == max_rows) {
        os << "\n  ...";
        return os.str();
      }
      os << "\n  (" << t.src << " -> " << t.dst << ", " << t.cost << ")";
    }
  }
  return os.str();
}

}  // namespace tcf
