#include "relational/relation.h"

#include <algorithm>
#include <sstream>

namespace tcf {

Relation Relation::FromGraph(const Graph& g) {
  Relation r;
  r.tuples_.reserve(g.NumEdges());
  for (const Edge& e : g.edges()) r.Add(e.src, e.dst, e.weight);
  return r;
}

Relation Relation::FromEdgeSubset(const Graph& g,
                                  const std::vector<EdgeId>& edge_ids) {
  Relation r;
  r.tuples_.reserve(edge_ids.size());
  for (EdgeId id : edge_ids) {
    const Edge& e = g.edge(id);
    r.Add(e.src, e.dst, e.weight);
  }
  return r;
}

void Relation::AggregateMin() {
  std::unordered_map<uint64_t, Weight> best;
  best.reserve(tuples_.size());
  for (const PathTuple& t : tuples_) {
    auto [it, inserted] = best.emplace(PairKey(t.src, t.dst), t.cost);
    if (!inserted && t.cost < it->second) it->second = t.cost;
  }
  tuples_.clear();
  tuples_.reserve(best.size());
  for (const auto& [key, cost] : best) {
    tuples_.push_back(PathTuple{static_cast<NodeId>(key >> 32),
                                static_cast<NodeId>(key & 0xffffffffu),
                                cost});
  }
  index_valid_ = false;
  max_index_valid_ = false;
}

void Relation::AggregateMax() {
  std::unordered_map<uint64_t, Weight> best;
  best.reserve(tuples_.size());
  for (const PathTuple& t : tuples_) {
    auto [it, inserted] = best.emplace(PairKey(t.src, t.dst), t.cost);
    if (!inserted && t.cost > it->second) it->second = t.cost;
  }
  tuples_.clear();
  tuples_.reserve(best.size());
  for (const auto& [key, cost] : best) {
    tuples_.push_back(PathTuple{static_cast<NodeId>(key >> 32),
                                static_cast<NodeId>(key & 0xffffffffu),
                                cost});
  }
  index_valid_ = false;
  max_index_valid_ = false;
}

void Relation::SortCanonical() {
  std::sort(tuples_.begin(), tuples_.end(),
            [](const PathTuple& a, const PathTuple& b) {
              if (a.src != b.src) return a.src < b.src;
              if (a.dst != b.dst) return a.dst < b.dst;
              return a.cost < b.cost;
            });
}

void Relation::EnsureIndex() const {
  if (index_valid_) return;
  index_.clear();
  index_.reserve(tuples_.size());
  for (const PathTuple& t : tuples_) {
    auto [it, inserted] = index_.emplace(PairKey(t.src, t.dst), t.cost);
    if (!inserted && t.cost < it->second) it->second = t.cost;
  }
  index_valid_ = true;
}

Weight Relation::BestCost(NodeId src, NodeId dst) const {
  EnsureIndex();
  auto it = index_.find(PairKey(src, dst));
  return it == index_.end() ? kInfinity : it->second;
}

void Relation::EnsureMaxIndex() const {
  if (max_index_valid_) return;
  max_index_.clear();
  max_index_.reserve(tuples_.size());
  for (const PathTuple& t : tuples_) {
    auto [it, inserted] = max_index_.emplace(PairKey(t.src, t.dst), t.cost);
    if (!inserted && t.cost > it->second) it->second = t.cost;
  }
  max_index_valid_ = true;
}

Weight Relation::MaxCost(NodeId src, NodeId dst) const {
  EnsureMaxIndex();
  auto it = max_index_.find(PairKey(src, dst));
  return it == max_index_.end() ? 0.0 : it->second;
}

std::string Relation::ToString(size_t max_rows) const {
  std::ostringstream os;
  os << "Relation(" << tuples_.size() << " tuples)";
  size_t shown = 0;
  for (const PathTuple& t : tuples_) {
    if (shown++ == max_rows) {
      os << "\n  ...";
      break;
    }
    os << "\n  (" << t.src << " -> " << t.dst << ", " << t.cost << ")";
  }
  return os.str();
}

}  // namespace tcf
