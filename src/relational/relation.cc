#include "relational/relation.h"

#include <algorithm>
#include <sstream>

namespace tcf {

Relation Relation::FromGraph(const Graph& g) {
  Relation r;
  r.tuples_.reserve(g.NumEdges());
  for (const Edge& e : g.edges()) r.Add(e.src, e.dst, e.weight);
  return r;
}

Relation Relation::FromEdgeSubset(const Graph& g,
                                  const std::vector<EdgeId>& edge_ids) {
  Relation r;
  r.tuples_.reserve(edge_ids.size());
  for (EdgeId id : edge_ids) {
    const Edge& e = g.edge(id);
    r.Add(e.src, e.dst, e.weight);
  }
  return r;
}

Status Relation::Materialize() {
  if (store_ == nullptr) return Status::OK();
  // Copy into a local vector first and commit only on a clean scan: a
  // failed read leaves the relation exactly as it was (still paged, still
  // readable if the fault was transient).
  std::vector<PathTuple> resident;
  resident.reserve(store_->size());
  std::unique_ptr<TupleStore::Cursor> cursor = store_->NewCursor();
  for (std::span<const PathTuple> block = cursor->NextBlock(); !block.empty();
       block = cursor->NextBlock()) {
    resident.insert(resident.end(), block.begin(), block.end());
  }
  TCF_RETURN_NOT_OK(cursor->status());
  tuples_ = std::move(resident);
  store_.reset();
  InvalidateIndexes();
  return Status::OK();
}

Status Relation::Append(const Relation& other) {
  TCF_RETURN_NOT_OK(Materialize());
  InvalidateIndexes();
  tuples_.reserve(tuples_.size() + other.size());
  // Streams `other` through its cursor, so appending a paged relation
  // copies tuples out of pinned pages without materializing `other`.
  return other.ForEach([this](const PathTuple& t) { tuples_.push_back(t); });
}

void Relation::AggregateMin() {
  MaterializeOrDie();
  std::unordered_map<uint64_t, Weight> best;
  best.reserve(tuples_.size());
  for (const PathTuple& t : tuples_) {
    auto [it, inserted] = best.emplace(PairKey(t.src, t.dst), t.cost);
    if (!inserted && t.cost < it->second) it->second = t.cost;
  }
  tuples_.clear();
  tuples_.reserve(best.size());
  for (const auto& [key, cost] : best) {
    tuples_.push_back(PathTuple{static_cast<NodeId>(key >> 32),
                                static_cast<NodeId>(key & 0xffffffffu),
                                cost});
  }
  InvalidateIndexes();
}

void Relation::AggregateMax() {
  MaterializeOrDie();
  std::unordered_map<uint64_t, Weight> best;
  best.reserve(tuples_.size());
  for (const PathTuple& t : tuples_) {
    auto [it, inserted] = best.emplace(PairKey(t.src, t.dst), t.cost);
    if (!inserted && t.cost > it->second) it->second = t.cost;
  }
  tuples_.clear();
  tuples_.reserve(best.size());
  for (const auto& [key, cost] : best) {
    tuples_.push_back(PathTuple{static_cast<NodeId>(key >> 32),
                                static_cast<NodeId>(key & 0xffffffffu),
                                cost});
  }
  InvalidateIndexes();
}

void Relation::SortCanonical() {
  MaterializeOrDie();
  InvalidateIndexes();
  std::sort(tuples_.begin(), tuples_.end(),
            [](const PathTuple& a, const PathTuple& b) {
              if (a.src != b.src) return a.src < b.src;
              if (a.dst != b.dst) return a.dst < b.dst;
              return a.cost < b.cost;
            });
}

Status Relation::EnsureIndex() const {
  if (lazy_.min_built.load(std::memory_order_acquire)) return Status::OK();
  std::lock_guard<std::mutex> lock(lazy_.build_mutex);
  if (lazy_.min_built.load(std::memory_order_relaxed)) return Status::OK();
  lazy_.min_index.clear();
  lazy_.min_index.reserve(size());
  const Status scan = ForEach([this](const PathTuple& t) {
    auto [it, inserted] = lazy_.min_index.emplace(PairKey(t.src, t.dst),
                                                  t.cost);
    if (!inserted && t.cost < it->second) it->second = t.cost;
  });
  if (!scan.ok()) {
    // A partial index would answer lookups wrong; stay cold so a later
    // warm retries after the fault clears.
    lazy_.min_index.clear();
    return scan;
  }
  lazy_.min_built.store(true, std::memory_order_release);
  return Status::OK();
}

Weight Relation::BestCost(NodeId src, NodeId dst) const {
  const Status built = EnsureIndex();
  TCF_CHECK_MSG(built.ok(),
                "Relation::BestCost: index build failed (WarmIndexes first "
                "and handle its Status): " + built.ToString());
  auto it = lazy_.min_index.find(PairKey(src, dst));
  return it == lazy_.min_index.end() ? kInfinity : it->second;
}

Status Relation::EnsureMaxIndex() const {
  if (lazy_.max_built.load(std::memory_order_acquire)) return Status::OK();
  std::lock_guard<std::mutex> lock(lazy_.build_mutex);
  if (lazy_.max_built.load(std::memory_order_relaxed)) return Status::OK();
  lazy_.max_index.clear();
  lazy_.max_index.reserve(size());
  const Status scan = ForEach([this](const PathTuple& t) {
    auto [it, inserted] = lazy_.max_index.emplace(PairKey(t.src, t.dst),
                                                  t.cost);
    if (!inserted && t.cost > it->second) it->second = t.cost;
  });
  if (!scan.ok()) {
    lazy_.max_index.clear();
    return scan;
  }
  lazy_.max_built.store(true, std::memory_order_release);
  return Status::OK();
}

Weight Relation::MaxCost(NodeId src, NodeId dst) const {
  const Status built = EnsureMaxIndex();
  TCF_CHECK_MSG(built.ok(),
                "Relation::MaxCost: index build failed (WarmIndexes first "
                "and handle its Status): " + built.ToString());
  auto it = lazy_.max_index.find(PairKey(src, dst));
  return it == lazy_.max_index.end() ? 0.0 : it->second;
}

std::string Relation::ToString(size_t max_rows) const {
  std::ostringstream os;
  os << "Relation(" << size() << " tuples";
  if (is_paged()) os << ", paged";
  os << ")";
  size_t shown = 0;
  Cursor cursor = Scan();
  for (std::span<const PathTuple> block = cursor.NextBlock(); !block.empty();
       block = cursor.NextBlock()) {
    for (const PathTuple& t : block) {
      if (shown++ == max_rows) {
        os << "\n  ...";
        return os.str();
      }
      os << "\n  (" << t.src << " -> " << t.dst << ", " << t.cost << ")";
    }
  }
  if (!cursor.status().ok()) {
    os << "\n  <scan error: " << cursor.status().ToString() << ">";
  }
  return os.str();
}

}  // namespace tcf
