#include "fragment/metrics.h"

#include <sstream>

#include "graph/algorithms.h"
#include "util/stats.h"

namespace tcf {

FragmentationCharacteristics ComputeCharacteristics(const Fragmentation& frag,
                                                    bool with_diameters) {
  FragmentationCharacteristics c;
  c.num_fragments = frag.NumFragments();
  c.num_disconnection_sets = frag.disconnection_sets().size();
  c.loosely_connected = frag.IsLooselyConnected();
  c.fragmentation_graph_cycles = frag.FragmentationGraphCycles();

  Accumulator frag_sizes;
  for (FragmentId f = 0; f < frag.NumFragments(); ++f) {
    frag_sizes.Add(static_cast<double>(frag.FragmentEdges(f).size()));
  }
  if (!frag_sizes.empty()) {
    c.avg_fragment_edges = frag_sizes.Mean();
    c.dev_fragment_edges = frag_sizes.AvgDeviation();
    c.max_fragment_edges = frag_sizes.Max();
    c.min_fragment_edges = frag_sizes.Min();
  }

  Accumulator ds_sizes;
  for (const DisconnectionSet& ds : frag.disconnection_sets()) {
    ds_sizes.Add(static_cast<double>(ds.nodes.size()));
  }
  if (!ds_sizes.empty()) {
    c.avg_ds_nodes = ds_sizes.Mean();
    c.dev_ds_nodes = ds_sizes.AvgDeviation();
  }

  size_t borders = 0;
  for (NodeId v = 0; v < frag.graph().NumNodes(); ++v) {
    if (frag.IsBorderNode(v)) ++borders;
  }
  c.total_border_nodes = borders;

  if (with_diameters) {
    Accumulator diameters;
    for (FragmentId f = 0; f < frag.NumFragments(); ++f) {
      Graph sub = frag.FragmentSubgraph(f);
      diameters.Add(static_cast<double>(
          HopDiameter(sub, Direction::kUndirected)));
    }
    if (!diameters.empty()) {
      c.avg_fragment_diameter = diameters.Mean();
      c.max_fragment_diameter = diameters.Max();
    }
  }
  return c;
}

std::string CharacteristicsRow(const std::string& name,
                               const FragmentationCharacteristics& c) {
  std::ostringstream os;
  os << name << " | F=" << TablePrinter::Fmt(c.avg_fragment_edges)
     << " | DS=" << TablePrinter::Fmt(c.avg_ds_nodes)
     << " | dF=" << TablePrinter::Fmt(c.dev_fragment_edges)
     << " | dDS=" << TablePrinter::Fmt(c.dev_ds_nodes)
     << " | acyclic=" << (c.loosely_connected ? "yes" : "no");
  return os.str();
}

}  // namespace tcf
