// Persistence for fragmentation designs — the LEGACY TEXT format. A
// fragmentation is an expensive artifact (the bond-energy ordering alone is
// cubic) that a database administrator computes once and deploys; these
// helpers store and reload it next to the graph written by graph/io.h.
//
// This format stores only the edge -> fragment assignment, so reopening
// still pays the full complementary-information precompute. The binary
// paged format in storage/database_io.h supersedes it for whole databases:
// checksummed pages, graph + assignment + complementary info in one file,
// and an mmap fast path (see docs/STORAGE.md). Keep this reader/writer for
// human-inspectable assignments and old files.
#pragma once

#include <string>

#include "fragment/fragmentation.h"
#include "util/status.h"

namespace tcf {

/// Writes the edge -> fragment assignment:
///
///   tcf-fragmentation 1
///   <num_edges> <num_fragments>
///   <fragment id of edge 0..num_edges-1, whitespace separated>
Status WriteFragmentation(const Fragmentation& frag, const std::string& path);

/// Reads a fragmentation written by WriteFragmentation and re-derives all
/// structures against `graph` (which must be the same relation, e.g.
/// reloaded via ReadEdgeList). Fails if the edge count does not match.
Result<Fragmentation> ReadFragmentation(const Graph& graph,
                                        const std::string& path);

}  // namespace tcf
