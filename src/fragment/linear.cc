#include "fragment/linear.h"

#include <algorithm>

#include "util/status.h"

namespace tcf {

namespace {

/// Sort key along the sweep direction: smaller key = earlier start.
double SweepKey(const Graph& g, NodeId v, LinearOptions::Start start) {
  const Point& p = g.coordinate(v);
  switch (start) {
    case LinearOptions::Start::kLeft: return p.x;
    case LinearOptions::Start::kRight: return -p.x;
    case LinearOptions::Start::kBottom: return p.y;
    case LinearOptions::Start::kTop: return -p.y;
  }
  return p.x;
}

/// The s extreme nodes among `candidates`.
std::vector<NodeId> ExtremeNodes(const Graph& g,
                                 std::vector<NodeId> candidates, size_t s,
                                 LinearOptions::Start start) {
  std::stable_sort(candidates.begin(), candidates.end(),
                   [&](NodeId a, NodeId b) {
                     const double ka = SweepKey(g, a, start);
                     const double kb = SweepKey(g, b, start);
                     if (ka != kb) return ka < kb;
                     return a < b;
                   });
  if (candidates.size() > s) candidates.resize(s);
  return candidates;
}

}  // namespace

LinearResult LinearFragmentation(const Graph& g,
                                 const LinearOptions& options) {
  TCF_CHECK(options.num_fragments >= 1);
  TCF_CHECK_MSG(g.has_coordinates() || options.start_nodes.has_value(),
                "linear fragmentation needs coordinates or start nodes");
  const size_t m = g.NumEdges();
  const size_t threshold =
      std::max<size_t>(1, m / options.num_fragments);
  const size_t s = options.num_start_nodes > 0
                       ? options.num_start_nodes
                       : std::max<size_t>(1, g.NumNodes() / 20);

  constexpr FragmentId kUnassigned = Fragmentation::kInvalidFragment;
  std::vector<FragmentId> owner(m, kUnassigned);
  size_t remaining = m;

  // in_fragment[v]: whether v already belongs to the current fragment's
  // node set V_k (reset at each fragment switch via the epoch trick).
  std::vector<uint32_t> node_epoch(g.NumNodes(), 0);
  uint32_t epoch = 0;

  std::vector<std::vector<NodeId>> boundaries;
  std::vector<NodeId> start_n;

  auto reseed = [&]() {
    // Fresh start nodes from the extreme end of whatever still has edges.
    std::vector<NodeId> candidates;
    std::vector<char> seen(g.NumNodes(), 0);
    for (EdgeId e = 0; e < m; ++e) {
      if (owner[e] != kUnassigned) continue;
      for (NodeId v : {g.edge(e).src, g.edge(e).dst}) {
        if (!seen[v]) {
          seen[v] = 1;
          candidates.push_back(v);
        }
      }
    }
    return ExtremeNodes(g, std::move(candidates), s, options.start);
  };

  if (options.start_nodes.has_value()) {
    start_n = *options.start_nodes;
    TCF_CHECK_MSG(!start_n.empty(), "empty explicit start node set");
  } else {
    start_n = reseed();
  }

  FragmentId k = 0;
  size_t edges_in_k = 0;
  ++epoch;  // open fragment 0

  while (remaining > 0) {
    // Inner loop of Fig. 7: accumulate rings of adjacent edges until the
    // fragment reaches the threshold (or nothing is adjacent anymore).
    while (edges_in_k < threshold && remaining > 0) {
      // new_e := edges incident to start_n; mark start nodes as in V_k.
      for (NodeId v : start_n) node_epoch[v] = epoch;
      std::vector<EdgeId> new_e;
      for (NodeId v : start_n) {
        for (const OutEdge& oe : g.OutEdges(v)) {
          if (owner[oe.id] == kUnassigned) new_e.push_back(oe.id);
        }
        for (const InEdge& ie : g.InEdges(v)) {
          if (owner[ie.id] == kUnassigned) new_e.push_back(ie.id);
        }
      }
      std::sort(new_e.begin(), new_e.end());
      new_e.erase(std::unique(new_e.begin(), new_e.end()), new_e.end());

      if (new_e.empty()) {
        if (start_n.empty() || remaining > 0) {
          // Disconnected remainder (or interior dead end): re-seed. The
          // fresh nodes share nothing with previous fragments, so the
          // chain property is preserved.
          start_n = reseed();
          if (start_n.empty()) break;  // no edges left at all
          continue;
        }
        break;
      }

      // start_n := nodes newly touched by new_e that were not in V_k.
      std::vector<NodeId> next_start;
      for (EdgeId e : new_e) {
        owner[e] = k;
        ++edges_in_k;
        --remaining;
        for (NodeId v : {g.edge(e).src, g.edge(e).dst}) {
          if (node_epoch[v] != epoch) {
            node_epoch[v] = epoch;
            next_start.push_back(v);
          }
        }
      }
      std::sort(next_start.begin(), next_start.end());
      next_start.erase(std::unique(next_start.begin(), next_start.end()),
                       next_start.end());
      start_n = std::move(next_start);
    }

    if (remaining == 0) break;

    // Close fragment k: the current boundary becomes DS_k(k+1) and seeds
    // fragment k+1 (Fig. 7: DS := start_n).
    boundaries.push_back(start_n);
    ++k;
    edges_in_k = 0;
    ++epoch;
    if (start_n.empty()) {
      start_n = reseed();
      if (start_n.empty()) break;
    }
  }

  TCF_CHECK(remaining == 0);
  Fragmentation frag(&g, std::move(owner), static_cast<size_t>(k) + 1);
  return LinearResult{std::move(frag), std::move(boundaries)};
}

}  // namespace tcf
