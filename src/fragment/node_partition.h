// Conversion from a node partition (blocks of nodes, as produced by the
// bond-energy algorithm's matrix split or by the random baseline) to an
// edge-partition Fragmentation.
//
// Intra-block edges go to their block's fragment. A cross edge between
// blocks i and j is assigned to min(i, j) — and because both tuples of a
// symmetric pair get the same fragment, exactly the foreign endpoint
// becomes a border node, matching the paper's reading of the matrix ("the
// 1's for the columns of a block that fall outside the corresponding rows
// are the connections with other fragments").
#pragma once

#include <vector>

#include "fragment/fragmentation.h"

namespace tcf {

/// block_of_node[v] in [0, num_blocks). Every node must be assigned.
Fragmentation FragmentationFromNodePartition(
    const Graph& graph, const std::vector<int>& block_of_node,
    size_t num_blocks);

}  // namespace tcf
