// The fragmentation characteristics reported in Tables 1-3 of the paper:
// average fragment size F (edges), average disconnection set size DS
// (nodes), and the average deviations ΔF and ΔDS — plus the structural
// properties Sec. 2.2 identifies as the third design issue (cycles in the
// fragmentation graph).
#pragma once

#include <string>

#include "fragment/fragmentation.h"

namespace tcf {

/// Summary of one fragmentation, in the paper's vocabulary.
struct FragmentationCharacteristics {
  size_t num_fragments = 0;
  size_t num_disconnection_sets = 0;

  double avg_fragment_edges = 0.0;   // F̄   (paper column "F")
  double avg_ds_nodes = 0.0;         // DS̄  (paper column "DS")
  double dev_fragment_edges = 0.0;   // ΔF  (average deviation from F̄)
  double dev_ds_nodes = 0.0;         // ΔDS (average deviation from DS̄)

  bool loosely_connected = false;    // fragmentation graph acyclic?
  size_t fragmentation_graph_cycles = 0;

  /// Extras beyond the paper's columns, used by the workload benches.
  double max_fragment_edges = 0.0;
  double min_fragment_edges = 0.0;
  double avg_fragment_diameter = 0.0;  // hop diameter per fragment subgraph
  double max_fragment_diameter = 0.0;
  size_t total_border_nodes = 0;       // distinct nodes in >= 2 fragments
};

/// Computes the characteristics. `with_diameters` additionally materializes
/// every fragment subgraph and measures hop diameters (slower).
FragmentationCharacteristics ComputeCharacteristics(
    const Fragmentation& frag, bool with_diameters = false);

/// One formatted row "algorithm | F | DS | ΔF | ΔDS" as in Tables 1-3.
std::string CharacteristicsRow(const std::string& name,
                               const FragmentationCharacteristics& c);

}  // namespace tcf
