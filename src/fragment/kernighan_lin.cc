#include "fragment/kernighan_lin.h"

#include <algorithm>
#include <numeric>

#include "fragment/node_partition.h"

namespace tcf {

namespace {

/// One balanced bisection of `nodes` (indices into the graph) with
/// FM-style single-node move refinement. Returns side labels (0/1)
/// parallel to `nodes`.
std::vector<char> Bisect(const Graph& g, const std::vector<NodeId>& nodes,
                         const KernighanLinOptions& options, Rng* rng) {
  const size_t k = nodes.size();
  std::vector<char> side(k, 0);
  if (k < 2) return side;

  // Position of each graph node inside `nodes` (or -1 if outside the
  // region being split — edges to outside nodes do not count).
  std::vector<int> local(g.NumNodes(), -1);
  for (size_t i = 0; i < k; ++i) local[nodes[i]] = static_cast<int>(i);

  // Initial split: random halves (deterministic via rng).
  std::vector<size_t> order(k);
  std::iota(order.begin(), order.end(), 0);
  rng->Shuffle(&order);
  for (size_t i = 0; i < k / 2; ++i) side[order[i]] = 1;

  const size_t min_side = static_cast<size_t>(
      static_cast<double>(k) * (0.5 - options.balance_slack));

  auto move_gain = [&](size_t i) {
    // Crossing edges removed minus crossing edges created by flipping i.
    int internal = 0, external = 0;
    for (NodeId w : g.UndirectedNeighbors(nodes[i])) {
      const int j = local[w];
      if (j < 0) continue;
      if (side[static_cast<size_t>(j)] == side[i]) {
        ++internal;
      } else {
        ++external;
      }
    }
    return external - internal;
  };

  for (int pass = 0; pass < options.max_passes; ++pass) {
    bool improved = false;
    std::vector<char> locked(k, 0);
    size_t count1 = 0;
    for (char s : side) count1 += (s == 1);
    while (true) {
      int best_gain = 0;  // only strictly improving moves
      size_t best = k;
      for (size_t i = 0; i < k; ++i) {
        if (locked[i]) continue;
        // Balance: moving off a side must not shrink it below min_side.
        const size_t from_size = side[i] == 1 ? count1 : k - count1;
        if (from_size <= min_side) continue;
        const int gain = move_gain(i);
        if (gain > best_gain) {
          best_gain = gain;
          best = i;
        }
      }
      if (best == k) break;
      count1 += side[best] == 1 ? -1 : 1;
      side[best] = static_cast<char>(1 - side[best]);
      locked[best] = 1;
      improved = true;
    }
    if (!improved) break;
  }
  return side;
}

}  // namespace

Fragmentation KernighanLinFragmentation(const Graph& g,
                                        const KernighanLinOptions& options) {
  TCF_CHECK(options.num_fragments >= 1);
  Rng rng(options.seed);

  // Recursive bisection: always split the part with the most nodes until
  // num_fragments parts exist.
  std::vector<std::vector<NodeId>> parts(1);
  parts[0].resize(g.NumNodes());
  std::iota(parts[0].begin(), parts[0].end(), 0);
  while (parts.size() < options.num_fragments) {
    size_t largest = 0;
    for (size_t p = 1; p < parts.size(); ++p) {
      if (parts[p].size() > parts[largest].size()) largest = p;
    }
    if (parts[largest].size() < 2) break;  // nothing left to split
    std::vector<NodeId> region = std::move(parts[largest]);
    std::vector<char> side = Bisect(g, region, options, &rng);
    std::vector<NodeId> zero, one;
    for (size_t i = 0; i < region.size(); ++i) {
      (side[i] ? one : zero).push_back(region[i]);
    }
    // A degenerate split (everything on one side) would loop forever.
    if (zero.empty() || one.empty()) {
      const size_t half = region.size() / 2;
      zero.assign(region.begin(), region.begin() + half);
      one.assign(region.begin() + half, region.end());
    }
    parts[largest] = std::move(zero);
    parts.push_back(std::move(one));
  }

  std::vector<int> block(g.NumNodes(), 0);
  for (size_t p = 0; p < parts.size(); ++p) {
    for (NodeId v : parts[p]) block[v] = static_cast<int>(p);
  }
  return FragmentationFromNodePartition(g, block, parts.size());
}

}  // namespace tcf
