// The authors' abandoned first idea (Sec. 3, before 3.1): investigate the
// k-connectivity of the graph and mark as 'relevant' the nodes whose
// removal would increase it — candidates for disconnection sets. They
// report two problems: cycles in the fragmentation graph let paths detour
// through other fragments and distort the measure, and "all possible
// combinations of nodes and paths have to be taken into account", which is
// very computation intensive. We implement it as an analysis/ablation so
// the benches can demonstrate exactly that cost.
#pragma once

#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace tcf {

struct RelevantNodesOptions {
  /// Number of non-adjacent node pairs sampled for min-vertex-cut probing;
  /// 0 means all pairs (quadratic — only for tiny graphs).
  size_t sample_pairs = 64;
  uint64_t seed = 42;
};

/// A node together with how often it appeared in a sampled minimum cut.
struct RelevantNode {
  NodeId node = kInvalidNode;
  size_t cut_count = 0;
};

/// Nodes appearing in minimum s-t vertex cuts between sampled non-adjacent
/// pairs, most frequent first. These are the nodes "whose removal would
/// increase the k-connectivity".
std::vector<RelevantNode> FindRelevantNodes(
    const Graph& g, const RelevantNodesOptions& options = {});

}  // namespace tcf
