#include "fragment/fragmentation_io.h"

#include <fstream>

namespace tcf {

Status WriteFragmentation(const Fragmentation& frag,
                          const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  out << "tcf-fragmentation 1\n";
  out << frag.fragment_of_edge().size() << " " << frag.NumFragments()
      << "\n";
  for (size_t e = 0; e < frag.fragment_of_edge().size(); ++e) {
    out << frag.fragment_of_edge()[e]
        << (e + 1 == frag.fragment_of_edge().size() ? '\n' : ' ');
  }
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<Fragmentation> ReadFragmentation(const Graph& graph,
                                        const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for reading: " + path);
  std::string magic;
  int version = 0;
  in >> magic >> version;
  if (magic != "tcf-fragmentation" || version != 1) {
    return Status::InvalidArgument("not a tcf-fragmentation v1 file: " +
                                   path);
  }
  size_t num_edges = 0, num_fragments = 0;
  in >> num_edges >> num_fragments;
  if (!in) return Status::InvalidArgument("bad header: " + path);
  if (num_edges != graph.NumEdges()) {
    return Status::FailedPrecondition(
        "fragmentation is for a different relation (edge count mismatch)");
  }
  std::vector<FragmentId> owner(num_edges);
  for (size_t e = 0; e < num_edges; ++e) {
    uint64_t f = 0;
    in >> f;
    if (!in) return Status::InvalidArgument("truncated assignment: " + path);
    if (f >= num_fragments) {
      return Status::OutOfRange("fragment id out of range: " + path);
    }
    owner[e] = static_cast<FragmentId>(f);
  }
  return Fragmentation(&graph, std::move(owner), num_fragments);
}

}  // namespace tcf
