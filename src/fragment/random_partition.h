// Baseline fragmentation: assign every node to a uniformly random block.
// No paper algorithm should ever be worse than this on its own goal; the
// benches use it to put Tables 1-3 in context.
#pragma once

#include "fragment/fragmentation.h"
#include "util/rng.h"

namespace tcf {

/// Uniform random node partition into `num_fragments` blocks, converted to
/// an edge fragmentation via the standard node-partition rule.
Fragmentation RandomFragmentation(const Graph& g, size_t num_fragments,
                                  Rng* rng);

}  // namespace tcf
