#include "fragment/random_partition.h"

#include "fragment/node_partition.h"

namespace tcf {

Fragmentation RandomFragmentation(const Graph& g, size_t num_fragments,
                                  Rng* rng) {
  TCF_CHECK(rng != nullptr);
  TCF_CHECK(num_fragments >= 1);
  std::vector<int> block(g.NumNodes());
  for (auto& b : block) {
    b = static_cast<int>(rng->NextBounded(num_fragments));
  }
  return FragmentationFromNodePartition(g, block, num_fragments);
}

}  // namespace tcf
