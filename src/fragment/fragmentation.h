// The fragmentation model of Sec. 2: the relation R is partitioned into n
// fragments R_i; this induces subgraphs G_i; the disconnection sets are the
// node intersections DS_ij = G_i ∩ G_j; the fragmentation graph G' has one
// node per fragment and an edge per nonempty disconnection set, and the
// fragmentation is "loosely connected" when G' is acyclic.
#pragma once

#include <vector>

#include "graph/graph.h"

namespace tcf {

using FragmentId = uint32_t;

/// A disconnection set DS_ij (i < j): the nodes shared by fragments i and j.
struct DisconnectionSet {
  FragmentId frag_a = 0;
  FragmentId frag_b = 0;
  std::vector<NodeId> nodes;  // sorted
};

/// An edge-partition of a graph together with everything the disconnection
/// set approach derives from it. Immutable once constructed.
class Fragmentation {
 public:
  /// Builds from an edge -> fragment assignment (every edge must be
  /// assigned; fragment ids must be < num_fragments). Empty fragments are
  /// compacted away, preserving relative order.
  Fragmentation(const Graph* graph, std::vector<FragmentId> fragment_of_edge,
                size_t num_fragments);

  const Graph& graph() const { return *graph_; }
  size_t NumFragments() const { return fragment_edges_.size(); }

  /// Which fragment owns each edge (compacted ids).
  const std::vector<FragmentId>& fragment_of_edge() const {
    return fragment_of_edge_;
  }
  /// Edge ids of fragment f.
  const std::vector<EdgeId>& FragmentEdges(FragmentId f) const {
    TCF_CHECK(f < fragment_edges_.size());
    return fragment_edges_[f];
  }
  /// Sorted node ids of fragment f (nodes incident to its edges).
  const std::vector<NodeId>& FragmentNodes(FragmentId f) const {
    TCF_CHECK(f < fragment_nodes_.size());
    return fragment_nodes_[f];
  }
  /// All fragments containing `node` (possibly several: border nodes).
  const std::vector<FragmentId>& FragmentsOfNode(NodeId node) const {
    TCF_CHECK(node < fragments_of_node_.size());
    return fragments_of_node_[node];
  }
  /// True if `node` belongs to >= 2 fragments.
  bool IsBorderNode(NodeId node) const {
    return FragmentsOfNode(node).size() >= 2;
  }
  /// All border nodes of fragment f (nodes of f shared with any other
  /// fragment), sorted.
  const std::vector<NodeId>& BorderNodes(FragmentId f) const {
    TCF_CHECK(f < border_nodes_.size());
    return border_nodes_[f];
  }

  /// The nonempty disconnection sets, sorted by (frag_a, frag_b).
  const std::vector<DisconnectionSet>& disconnection_sets() const {
    return disconnection_sets_;
  }
  /// The disconnection set between a and b, or nullptr if empty.
  const DisconnectionSet* FindDisconnectionSet(FragmentId a,
                                               FragmentId b) const;

  /// Fragmentation graph adjacency: neighbors of fragment f in G'.
  const std::vector<FragmentId>& FragmentNeighbors(FragmentId f) const {
    TCF_CHECK(f < fragment_adjacency_.size());
    return fragment_adjacency_[f];
  }

  /// Sec. 2.1: loosely connected == the fragmentation graph is acyclic.
  bool IsLooselyConnected() const { return loosely_connected_; }

  /// Number of independent cycles in the fragmentation graph
  /// (edges - nodes + components).
  size_t FragmentationGraphCycles() const { return cycles_; }

  /// The fragment that contains `node` interior-ly, or the first fragment
  /// containing it if it is a border node; kInvalidFragment if isolated.
  static constexpr FragmentId kInvalidFragment =
      std::numeric_limits<FragmentId>::max();
  FragmentId HomeFragment(NodeId node) const {
    const auto& frags = FragmentsOfNode(node);
    return frags.empty() ? kInvalidFragment : frags.front();
  }

  /// Materializes fragment f as a standalone Graph over the *global* node
  /// id space (node count = graph().NumNodes(), edges = fragment edges).
  Graph FragmentSubgraph(FragmentId f) const;

  /// Node -> fragment map for visualisation: border nodes get the first
  /// fragment, isolated nodes -1.
  std::vector<int> NodeGroups() const;

 private:
  const Graph* graph_;
  std::vector<FragmentId> fragment_of_edge_;
  std::vector<std::vector<EdgeId>> fragment_edges_;
  std::vector<std::vector<NodeId>> fragment_nodes_;
  std::vector<std::vector<FragmentId>> fragments_of_node_;
  std::vector<std::vector<NodeId>> border_nodes_;
  std::vector<DisconnectionSet> disconnection_sets_;
  std::vector<std::vector<FragmentId>> fragment_adjacency_;
  bool loosely_connected_ = true;
  size_t cycles_ = 0;
};

}  // namespace tcf
