// The linear fragmentation algorithm of Sec. 3.3 (Figs. 6-8): sweep the
// graph from one extreme end using the node coordinates, accumulating
// adjacent edges into the current fragment; when the fragment reaches the
// threshold |E| / f, the current boundary nodes become the disconnection
// set and seed the next fragment. Fragments therefore form a chain
// G1 - DS12 - G2 - DS23 - ..., so the fragmentation graph is *guaranteed
// acyclic* (loosely connected) — at the price of potentially large
// disconnection sets and unbalanced fragments.
#pragma once

#include <optional>
#include <vector>

#include "fragment/fragmentation.h"

namespace tcf {

struct LinearOptions {
  /// f: the threshold is |E| / f. The realized fragment count may differ
  /// ("fragments that are just the size of the threshold but also
  /// fragments that are much larger").
  size_t num_fragments = 4;

  /// s: how many extreme nodes seed the sweep; 0 -> max(1, n / 20).
  size_t num_start_nodes = 0;

  /// Which extreme end to start from (Fig. 8: the choice matters).
  enum class Start { kLeft, kRight, kBottom, kTop };
  Start start = Start::kLeft;

  /// Explicit user-provided start nodes ("for actual applications we might
  /// ask the user to provide us with the start nodes").
  std::optional<std::vector<NodeId>> start_nodes;
};

/// Result with the boundary sets the algorithm recorded (Fig. 7's
/// DS_k(k+1) — the formal disconnection sets of the Fragmentation are the
/// node intersections, which tests compare against these).
struct LinearResult {
  Fragmentation fragmentation;
  std::vector<std::vector<NodeId>> recorded_boundaries;
};

/// Runs the linear fragmentation. Requires coordinates unless explicit
/// start nodes are given. Disconnected remainders re-seed the sweep from
/// the extreme end of what is left (still cycle-free: fresh components
/// share no nodes with earlier fragments).
LinearResult LinearFragmentation(const Graph& g, const LinearOptions& options);

}  // namespace tcf
