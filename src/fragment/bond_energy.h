// The bond-energy fragmentation of Sec. 3.2: a variant of the Bond Energy
// Algorithm of McCormick, Schweitzer & White (Oper. Res. 1972). The
// adjacency matrix (with a 1 diagonal) is column-reordered so that closely
// related nodes end up adjacent — clusters form along the diagonal — and
// the reordered matrix is then split into blocks of contiguous columns so
// that few 1s fall outside the blocks. Its design goal is *small
// disconnection sets*.
//
// Placement: at each step the (unplaced column, position) pair that
// maximizes the total sum of neighboring-column inner products is chosen.
// The outcome depends on the first column placed, so several seed columns
// are tried and the ordering with the greatest total bond energy wins
// (the paper iterates over all columns; `max_seed_columns` bounds that).
//
// Split scan (Sec. 3.2 last paragraphs): the ordered columns are scanned
// once, left to right; the current block is closed when the number of
// connections from the block to the not-yet-scanned columns is at most
// `threshold` — a narrow waist — provided the block already has at least
// `min_fragment_edges` edges ("avoids generating fragments that are too
// small"). A local-minimum split rule is provided as the alternative the
// paper mentions (and found inferior).
#pragma once

#include <optional>
#include <vector>

#include "fragment/fragmentation.h"
#include "util/bit_matrix.h"

namespace tcf {

struct BondEnergyOptions {
  /// Desired number of fragments f; drives the default threshold and the
  /// default minimum block size. The split scan may produce a slightly
  /// different count ("a slight variation in number of fragments").
  size_t num_fragments = 4;

  enum class SplitRule { kThreshold, kLocalMinimum };
  SplitRule split_rule = SplitRule::kThreshold;

  /// Max out-of-block connections at which the block may be closed.
  /// Default (nullopt): 3 undirected connections, then adaptively doubled
  /// until the scan yields at least 2 blocks.
  std::optional<double> threshold;

  /// Minimum edges per block before a split is allowed; 0 -> |E| / (4 f).
  size_t min_fragment_edges = 0;

  /// Seed columns tried for the BEA placement (paper: all of them).
  size_t max_seed_columns = 8;
  bool try_all_seed_columns = false;
};

/// Intermediate result of the matrix phase, exposed for tests/benches.
struct BondEnergyOrdering {
  std::vector<NodeId> column_order;  // permutation of nodes
  double energy = 0.0;               // sum of adjacent-column inner products
};

/// Builds the undirected adjacency matrix of g (M[i][i] = 1).
BitMatrix AdjacencyMatrix(const Graph& g);

/// Runs only the BEA ordering phase.
BondEnergyOrdering ComputeBondEnergyOrdering(const Graph& g,
                                             const BondEnergyOptions& options);

/// Full bond-energy fragmentation: ordering + split + node-partition
/// conversion.
Fragmentation BondEnergyFragmentation(const Graph& g,
                                      const BondEnergyOptions& options);

}  // namespace tcf
