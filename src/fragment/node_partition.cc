#include "fragment/node_partition.h"

#include <algorithm>

namespace tcf {

Fragmentation FragmentationFromNodePartition(
    const Graph& graph, const std::vector<int>& block_of_node,
    size_t num_blocks) {
  TCF_CHECK_MSG(block_of_node.size() == graph.NumNodes(),
                "every node needs a block");
  std::vector<FragmentId> fragment_of_edge(graph.NumEdges());
  for (EdgeId e = 0; e < graph.NumEdges(); ++e) {
    const Edge& edge = graph.edge(e);
    const int bs = block_of_node[edge.src];
    const int bd = block_of_node[edge.dst];
    TCF_CHECK(bs >= 0 && static_cast<size_t>(bs) < num_blocks);
    TCF_CHECK(bd >= 0 && static_cast<size_t>(bd) < num_blocks);
    fragment_of_edge[e] = static_cast<FragmentId>(std::min(bs, bd));
  }
  return Fragmentation(&graph, std::move(fragment_of_edge), num_blocks);
}

}  // namespace tcf
