#include "fragment/bond_energy.h"

#include <algorithm>

#include "fragment/node_partition.h"
#include "util/logging.h"
#include "util/status.h"

namespace tcf {

namespace {

/// Bond cache: inner products between columns, computed on demand.
class BondCache {
 public:
  explicit BondCache(const BitMatrix& m)
      : m_(m), cache_(m.size() * m.size(), -1) {}

  double Bond(size_t a, size_t b) {
    int& slot = cache_[a * m_.size() + b];
    if (slot < 0) {
      slot = static_cast<int>(m_.ColumnInnerProduct(a, b));
      cache_[b * m_.size() + a] = slot;
    }
    return static_cast<double>(slot);
  }

 private:
  const BitMatrix& m_;
  std::vector<int> cache_;
};

/// Greedy BEA placement starting from `seed`. Returns the ordering and its
/// total energy.
BondEnergyOrdering PlaceFromSeed(const BitMatrix& m, BondCache* bonds,
                                 size_t seed) {
  const size_t n = m.size();
  BondEnergyOrdering result;
  std::vector<size_t> placed = {seed};
  std::vector<char> is_placed(n, 0);
  is_placed[seed] = 1;

  for (size_t step = 1; step < n; ++step) {
    double best_gain = -1.0;
    size_t best_col = 0, best_pos = 0;
    for (size_t col = 0; col < n; ++col) {
      if (is_placed[col]) continue;
      // Position p means: insert before placed[p]; p == placed.size()
      // appends at the right end.
      for (size_t p = 0; p <= placed.size(); ++p) {
        double gain;
        if (p == 0) {
          gain = bonds->Bond(col, placed.front());
        } else if (p == placed.size()) {
          gain = bonds->Bond(placed.back(), col);
        } else {
          gain = bonds->Bond(placed[p - 1], col) +
                 bonds->Bond(col, placed[p]) -
                 bonds->Bond(placed[p - 1], placed[p]);
        }
        if (gain > best_gain) {
          best_gain = gain;
          best_col = col;
          best_pos = p;
        }
      }
    }
    placed.insert(placed.begin() + static_cast<ptrdiff_t>(best_pos),
                  best_col);
    is_placed[best_col] = 1;
  }

  // Iterative refinement: repeatedly pull one column out and re-insert it
  // at its best position. Fixes the stray columns a single greedy pass
  // tends to leave at the ends of the ordering.
  auto energy_of = [&](const std::vector<size_t>& ord) {
    double e = 0.0;
    for (size_t i = 0; i + 1 < ord.size(); ++i) {
      e += bonds->Bond(ord[i], ord[i + 1]);
    }
    return e;
  };
  bool improved = true;
  for (int pass = 0; pass < 8 && improved; ++pass) {
    improved = false;
    // 2-opt segment reversals. Maximizing the sum of adjacent bonds is a
    // max-TSP path problem; since bonds are symmetric a reversal only
    // changes the two boundary bonds, so the delta is O(1). This merges
    // cluster runs that the greedy insertion left separated.
    for (size_t i = 0; i + 1 < placed.size(); ++i) {
      for (size_t j = i + 1; j < placed.size(); ++j) {
        const double before =
            (i > 0 ? bonds->Bond(placed[i - 1], placed[i]) : 0.0) +
            (j + 1 < placed.size() ? bonds->Bond(placed[j], placed[j + 1])
                                   : 0.0);
        const double after =
            (i > 0 ? bonds->Bond(placed[i - 1], placed[j]) : 0.0) +
            (j + 1 < placed.size() ? bonds->Bond(placed[i], placed[j + 1])
                                   : 0.0);
        if (after > before + 1e-9) {
          std::reverse(placed.begin() + static_cast<ptrdiff_t>(i),
                       placed.begin() + static_cast<ptrdiff_t>(j) + 1);
          improved = true;
        }
      }
    }
    // Single-column re-insertion (Or-opt of size 1).
    for (size_t i = 0; i < placed.size(); ++i) {
      const size_t col = placed[i];
      // Gain lost by removing col from position i.
      const double left = i > 0 ? bonds->Bond(placed[i - 1], col) : 0.0;
      const double right =
          i + 1 < placed.size() ? bonds->Bond(col, placed[i + 1]) : 0.0;
      const double rejoin = (i > 0 && i + 1 < placed.size())
                                ? bonds->Bond(placed[i - 1], placed[i + 1])
                                : 0.0;
      const double removal_loss = left + right - rejoin;
      // Best alternative position.
      std::vector<size_t> without = placed;
      without.erase(without.begin() + static_cast<ptrdiff_t>(i));
      double best_gain = removal_loss;
      size_t best_pos = i;
      for (size_t p = 0; p <= without.size(); ++p) {
        double gain;
        if (p == 0) {
          gain = bonds->Bond(col, without.front());
        } else if (p == without.size()) {
          gain = bonds->Bond(without.back(), col);
        } else {
          gain = bonds->Bond(without[p - 1], col) +
                 bonds->Bond(col, without[p]) -
                 bonds->Bond(without[p - 1], without[p]);
        }
        if (gain > best_gain + 1e-9) {
          best_gain = gain;
          best_pos = p;
        }
      }
      if (best_pos != i || best_gain > removal_loss + 1e-9) {
        without.insert(without.begin() + static_cast<ptrdiff_t>(best_pos),
                       col);
        placed = std::move(without);
        improved = true;
      }
    }
  }

  result.column_order.assign(placed.begin(), placed.end());
  result.energy = energy_of(placed);
  return result;
}

/// Out-of-block connection counts for every prefix cut of the ordering:
/// cut[p] = # of undirected adjacencies between order[0..p] and
/// order[p+1..n-1] (diagonal entries never cross).
std::vector<size_t> PrefixCuts(const Graph& g,
                               const std::vector<NodeId>& order) {
  const size_t n = order.size();
  std::vector<size_t> position(n);
  for (size_t i = 0; i < n; ++i) position[order[i]] = i;
  std::vector<size_t> cut(n, 0);
  size_t current = 0;
  for (size_t p = 0; p < n; ++p) {
    const NodeId v = order[p];
    // Adding v to the block: adjacencies to the right side increase the
    // cut; adjacencies to the already-scanned side decrease it.
    for (NodeId w : g.UndirectedNeighbors(v)) {
      if (position[w] > p) {
        ++current;
      } else if (position[w] < p) {
        --current;
      }
    }
    cut[p] = current;
  }
  return cut;
}

}  // namespace

BitMatrix AdjacencyMatrix(const Graph& g) {
  BitMatrix m(g.NumNodes());
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    m.Set(v, v, true);
    for (NodeId w : g.UndirectedNeighbors(v)) {
      m.Set(v, w, true);
      m.Set(w, v, true);
    }
  }
  return m;
}

BondEnergyOrdering ComputeBondEnergyOrdering(
    const Graph& g, const BondEnergyOptions& options) {
  const size_t n = g.NumNodes();
  TCF_CHECK(n >= 1);
  BitMatrix m = AdjacencyMatrix(g);
  BondCache bonds(m);

  size_t num_seeds =
      options.try_all_seed_columns ? n : std::min(n, options.max_seed_columns);
  BondEnergyOrdering best;
  best.energy = -1.0;
  // Deterministic seed choice: spread over the id space.
  for (size_t s = 0; s < num_seeds; ++s) {
    const size_t seed = (s * n) / num_seeds;
    BondEnergyOrdering cand = PlaceFromSeed(m, &bonds, seed);
    if (cand.energy > best.energy) best = std::move(cand);
  }
  return best;
}

Fragmentation BondEnergyFragmentation(const Graph& g,
                                      const BondEnergyOptions& options) {
  TCF_CHECK(options.num_fragments >= 1);
  const size_t n = g.NumNodes();
  BondEnergyOrdering ordering = ComputeBondEnergyOrdering(g, options);
  const std::vector<NodeId>& order = ordering.column_order;
  const std::vector<size_t> cut = PrefixCuts(g, order);

  // Undirected edge count inside a growing block, to enforce the minimum
  // block size in *edges* (the paper's fragment sizes are edge counts).
  std::vector<size_t> position(n);
  for (size_t i = 0; i < n; ++i) position[order[i]] = i;

  const size_t min_edges =
      options.min_fragment_edges > 0
          ? options.min_fragment_edges
          : g.NumEdges() / (4 * options.num_fragments) + 1;

  // suffix_intra[p]: tuples with both endpoints strictly right of p — the
  // edges the remaining blocks could still own. A split that would leave
  // less than a minimum-size fragment's worth of them is pointless (it
  // produces the "too small" fragments the paper's finetuning avoids).
  std::vector<size_t> suffix_intra(n + 1, 0);
  {
    std::vector<size_t> minpos_hist(n + 1, 0);
    for (const Edge& e : g.edges()) {
      ++minpos_hist[std::min(position[e.src], position[e.dst])];
    }
    // suffix_intra[p] = #tuples with min position > p.
    size_t acc = 0;
    for (size_t p = n; p-- > 0;) {
      suffix_intra[p] = acc;          // tuples with minpos >= p+1
      acc += minpos_hist[p];
    }
  }

  // One scan of the ordered columns with a given threshold. Returns the
  // node blocks (paper: "the columns of the matrix are scanned only once,
  // from left to right; local conditions are used to determine if a good
  // place to split the matrix has been encountered").
  const size_t f = options.num_fragments;
  auto scan = [&](double threshold) {
    std::vector<int> block_of_node(n, -1);
    int block = 0;
    size_t block_edges = 0;
    for (size_t p = 0; p < n; ++p) {
      const NodeId v = order[p];
      block_of_node[v] = block;
      // Edges (tuples) fully inside the current block once v joins: count
      // tuples between v and already-in-block nodes.
      for (const OutEdge& oe : g.OutEdges(v)) {
        if (block_of_node[oe.dst] == block) ++block_edges;
      }
      for (const InEdge& ie : g.InEdges(v)) {
        if (ie.src != v && block_of_node[ie.src] == block) ++block_edges;
      }
      const bool last_column = (p + 1 == n);
      if (last_column) break;
      bool do_split = false;
      if (options.split_rule == BondEnergyOptions::SplitRule::kThreshold) {
        do_split = static_cast<double>(cut[p]) <= threshold;
      } else {
        // Local minimum: split as soon as the cut is about to increase.
        do_split = cut[p + 1] > cut[p];
      }
      // The block-size guards are the paper's finetuning ("taking into
      // account the number of edges in the current block ... avoids
      // generating fragments that are 'too small'"), applied to both the
      // closing block and the remainder; the 2f cap keeps an over-relaxed
      // threshold from shredding the matrix.
      if (do_split && block_edges >= min_edges &&
          suffix_intra[p] >= min_edges &&
          static_cast<size_t>(block) + 1 < 2 * f) {
        ++block;
        block_edges = 0;
      }
    }
    return block_of_node;
  };

  if (options.split_rule == BondEnergyOptions::SplitRule::kLocalMinimum) {
    std::vector<int> blocks = scan(0.0);
    const size_t made =
        static_cast<size_t>(*std::max_element(blocks.begin(), blocks.end())) +
        1;
    return FragmentationFromNodePartition(g, blocks, made);
  }

  // Threshold rule: start strict (small disconnection sets) and relax the
  // threshold until the scan yields about the requested number of blocks;
  // keep the attempt whose block count lands closest to f, preferring
  // stricter thresholds on ties.
  std::vector<int> best_blocks(n, 0);
  size_t best_made = 1;
  auto badness = [&](size_t count) {
    return count >= f ? count - f : (f - count);
  };
  auto consider = [&](double threshold) {
    std::vector<int> blocks = scan(threshold);
    const size_t made =
        static_cast<size_t>(*std::max_element(blocks.begin(), blocks.end())) +
        1;
    if (made > 1 && (best_made <= 1 || badness(made) < badness(best_made))) {
      best_blocks = std::move(blocks);
      best_made = made;
    }
    return made;
  };

  double lo = options.threshold.value_or(3.0);
  double hi = lo;
  size_t made = consider(lo);
  for (int attempt = 0; attempt < 16 && made < f; ++attempt) {
    hi = std::max(hi * 2.0, 1.0);
    made = consider(hi);
    if (made < f) lo = hi;
    TCF_LOG(Debug) << "bond-energy: relaxed threshold to " << hi;
  }
  // The doubling may overshoot f; bisect between the last under-shooting
  // and the first over-shooting threshold for the closest block count.
  for (int step = 0; step < 10 && best_made != f && hi - lo > 0.5; ++step) {
    const double mid = 0.5 * (lo + hi);
    if (consider(mid) < f) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return FragmentationFromNodePartition(g, best_blocks, best_made);
}

}  // namespace tcf
