#include "fragment/relevant_nodes.h"

#include <algorithm>

#include "graph/min_cut.h"

namespace tcf {

std::vector<RelevantNode> FindRelevantNodes(
    const Graph& g, const RelevantNodesOptions& options) {
  const size_t n = g.NumNodes();
  std::vector<size_t> counts(n, 0);
  if (n < 3) return {};

  auto probe = [&](NodeId a, NodeId b) {
    if (a == b) return;
    auto nbrs = g.UndirectedNeighbors(a);
    if (std::binary_search(nbrs.begin(), nbrs.end(), b)) return;
    VertexCut cut = MinVertexCut(g, a, b);
    for (NodeId v : cut.nodes) ++counts[v];
  };

  if (options.sample_pairs == 0) {
    for (NodeId a = 0; a < n; ++a) {
      for (NodeId b = a + 1; b < n; ++b) probe(a, b);
    }
  } else {
    Rng rng(options.seed);
    for (size_t i = 0; i < options.sample_pairs; ++i) {
      const NodeId a = static_cast<NodeId>(rng.NextBounded(n));
      const NodeId b = static_cast<NodeId>(rng.NextBounded(n));
      probe(a, b);
    }
  }

  std::vector<RelevantNode> result;
  for (NodeId v = 0; v < n; ++v) {
    if (counts[v] > 0) result.push_back(RelevantNode{v, counts[v]});
  }
  std::stable_sort(result.begin(), result.end(),
                   [](const RelevantNode& a, const RelevantNode& b) {
                     if (a.cut_count != b.cut_count) {
                       return a.cut_count > b.cut_count;
                     }
                     return a.node < b.node;
                   });
  return result;
}

}  // namespace tcf
