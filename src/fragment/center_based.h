// The center-based algorithm of Sec. 3.1 (Fig. 4): pick n "centers"
// (gravity points of the graph, scored by the status-score variant), then
// grow fragments around them by repeatedly adding the edges adjacent to
// what has been assigned so far. Its design goal is a *balanced workload*:
// fragments that take about the same time to process.
//
// Two growth variants (both in the paper):
//   - kRoundRobin: every fragment performs one expansion step per round
//     ("one addition of edges is done at each iteration"), bounding the
//     resulting *diameter* per fragment;
//   - kSmallestFirst: "the fragment with the least number of edges is
//     chosen for expansion until another fragment becomes the smallest",
//     balancing the *size* (tuple count) per fragment.
//
// The distributed-centers refinement of Sec. 4.2.1: candidate centers that
// are too close together produce overlapping fragments and huge
// disconnection sets (Table 2's DS = 69.5); using the node coordinates to
// spread the chosen centers fixes this (DS = 4.3).
#pragma once

#include "fragment/fragmentation.h"
#include "graph/status_score.h"

namespace tcf {

struct CenterBasedOptions {
  /// Number of fragments == number of centers ("may depend on factors such
  /// as the number of processors available").
  size_t num_fragments = 4;

  enum class Growth { kRoundRobin, kSmallestFirst };
  Growth growth = Growth::kRoundRobin;

  /// Center-selection weight function parameters (Sec. 3.1 formula).
  StatusScoreOptions score;

  /// Spread centers using node coordinates (requires coordinates): accept
  /// nodes in descending score order subject to a minimum pairwise
  /// distance, halving the distance until num_fragments centers fit.
  bool distributed_centers = false;
};

/// Returns the chosen centers (exposed for tests and the ablation bench).
std::vector<NodeId> DetermineCenters(const Graph& g,
                                     const CenterBasedOptions& options);

/// Runs the center-based fragmentation. Edges unreachable from every center
/// (disconnected leftovers) are grafted onto the currently smallest
/// fragment, one weak component at a time.
Fragmentation CenterBasedFragmentation(const Graph& g,
                                       const CenterBasedOptions& options);

}  // namespace tcf
