#include "fragment/fragmentation.h"

#include <algorithm>
#include <map>
#include <numeric>

#include "graph/builder.h"

namespace tcf {

Fragmentation::Fragmentation(const Graph* graph,
                             std::vector<FragmentId> fragment_of_edge,
                             size_t num_fragments)
    : graph_(graph) {
  TCF_CHECK(graph != nullptr);
  TCF_CHECK_MSG(fragment_of_edge.size() == graph->NumEdges(),
                "every edge must be assigned to a fragment");

  // Compact away empty fragments, preserving order.
  std::vector<size_t> counts(num_fragments, 0);
  for (FragmentId f : fragment_of_edge) {
    TCF_CHECK_MSG(f < num_fragments, "fragment id out of range");
    ++counts[f];
  }
  std::vector<FragmentId> remap(num_fragments, 0);
  FragmentId next = 0;
  for (size_t f = 0; f < num_fragments; ++f) {
    remap[f] = next;
    if (counts[f] > 0) ++next;
  }
  const size_t nf = next;
  fragment_of_edge_.resize(fragment_of_edge.size());
  for (size_t e = 0; e < fragment_of_edge.size(); ++e) {
    fragment_of_edge_[e] = remap[fragment_of_edge[e]];
  }

  // Edge and node sets per fragment.
  fragment_edges_.resize(nf);
  for (EdgeId e = 0; e < fragment_of_edge_.size(); ++e) {
    fragment_edges_[fragment_of_edge_[e]].push_back(e);
  }
  fragment_nodes_.resize(nf);
  for (FragmentId f = 0; f < nf; ++f) {
    auto& nodes = fragment_nodes_[f];
    for (EdgeId e : fragment_edges_[f]) {
      nodes.push_back(graph_->edge(e).src);
      nodes.push_back(graph_->edge(e).dst);
    }
    std::sort(nodes.begin(), nodes.end());
    nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  }

  // Node -> fragments.
  fragments_of_node_.resize(graph_->NumNodes());
  for (FragmentId f = 0; f < nf; ++f) {
    for (NodeId v : fragment_nodes_[f]) fragments_of_node_[v].push_back(f);
  }

  // Disconnection sets DS_ij = V_i ∩ V_j, discovered through border nodes.
  std::map<std::pair<FragmentId, FragmentId>, std::vector<NodeId>> ds;
  border_nodes_.resize(nf);
  for (NodeId v = 0; v < graph_->NumNodes(); ++v) {
    const auto& frags = fragments_of_node_[v];
    if (frags.size() < 2) continue;
    for (size_t i = 0; i < frags.size(); ++i) {
      border_nodes_[frags[i]].push_back(v);
      for (size_t j = i + 1; j < frags.size(); ++j) {
        ds[{frags[i], frags[j]}].push_back(v);
      }
    }
  }
  for (auto& [key, nodes] : ds) {
    std::sort(nodes.begin(), nodes.end());
    disconnection_sets_.push_back(
        DisconnectionSet{key.first, key.second, std::move(nodes)});
  }
  for (auto& nodes : border_nodes_) {
    std::sort(nodes.begin(), nodes.end());
    nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  }

  // Fragmentation graph G' and its cycle structure.
  fragment_adjacency_.resize(nf);
  for (const DisconnectionSet& d : disconnection_sets_) {
    fragment_adjacency_[d.frag_a].push_back(d.frag_b);
    fragment_adjacency_[d.frag_b].push_back(d.frag_a);
  }
  for (auto& adj : fragment_adjacency_) std::sort(adj.begin(), adj.end());

  // cycles = E' - N' + components(G').
  std::vector<int> comp(nf, -1);
  int num_comps = 0;
  for (FragmentId start = 0; start < nf; ++start) {
    if (comp[start] >= 0) continue;
    ++num_comps;
    std::vector<FragmentId> stack = {start};
    comp[start] = num_comps - 1;
    while (!stack.empty()) {
      FragmentId f = stack.back();
      stack.pop_back();
      for (FragmentId g : fragment_adjacency_[f]) {
        if (comp[g] < 0) {
          comp[g] = num_comps - 1;
          stack.push_back(g);
        }
      }
    }
  }
  const size_t num_frag_edges = disconnection_sets_.size();
  cycles_ = num_frag_edges + static_cast<size_t>(num_comps) >= nf
                ? num_frag_edges + static_cast<size_t>(num_comps) - nf
                : 0;
  loosely_connected_ = (cycles_ == 0);
}

const DisconnectionSet* Fragmentation::FindDisconnectionSet(
    FragmentId a, FragmentId b) const {
  if (a > b) std::swap(a, b);
  for (const DisconnectionSet& d : disconnection_sets_) {
    if (d.frag_a == a && d.frag_b == b) return &d;
  }
  return nullptr;
}

Graph Fragmentation::FragmentSubgraph(FragmentId f) const {
  TCF_CHECK(f < NumFragments());
  GraphBuilder builder;
  if (graph_->has_coordinates()) {
    for (const Point& p : graph_->coordinates()) builder.AddNode(p);
  } else {
    builder.EnsureNodes(graph_->NumNodes());
  }
  for (EdgeId e : fragment_edges_[f]) {
    const Edge& edge = graph_->edge(e);
    builder.AddEdge(edge.src, edge.dst, edge.weight);
  }
  return builder.Build();
}

std::vector<int> Fragmentation::NodeGroups() const {
  std::vector<int> groups(graph_->NumNodes(), -1);
  for (NodeId v = 0; v < graph_->NumNodes(); ++v) {
    const auto& frags = fragments_of_node_[v];
    if (!frags.empty()) groups[v] = static_cast<int>(frags.front());
  }
  return groups;
}

}  // namespace tcf
