// A min-edge-cut fragmenter in the Kernighan–Lin / Fiduccia–Mattheyses
// family, as a forward-looking baseline: the paper closes with "It may
// well be the case that the actual algorithm to be used for data
// fragmentation depends on the type of graph that is considered" (Sec. 5),
// and graph-partitioning heuristics of this family became the standard
// answer. Recursive balanced bisection with single-node move refinement;
// small disconnection sets *and* balanced fragments are optimized
// together, at a cost the 1993 algorithms avoid.
#pragma once

#include "fragment/fragmentation.h"
#include "util/rng.h"

namespace tcf {

struct KernighanLinOptions {
  size_t num_fragments = 4;
  /// Allowed imbalance per bisection: a side may hold up to
  /// (0.5 + balance_slack) of the nodes.
  double balance_slack = 0.1;
  /// Refinement passes per bisection.
  int max_passes = 8;
  uint64_t seed = 1;
};

/// Recursive balanced min-cut partition of the nodes, converted to an edge
/// fragmentation via the standard node-partition rule.
Fragmentation KernighanLinFragmentation(const Graph& g,
                                        const KernighanLinOptions& options);

}  // namespace tcf
