#include "fragment/center_based.h"

#include <algorithm>
#include <queue>

#include "util/logging.h"

namespace tcf {

namespace {

/// Coordinate-based spreading ("we used the coordinates assigned to the
/// nodes to make sure that the selected nodes would not be too close
/// together", Sec. 4.2.1), in two phases:
///   1. farthest-point traversal over all nodes (seeded at the best-scored
///      node) guarantees one seed per spatial region;
///   2. each seed is replaced by the best-scored node of its Voronoi cell,
///      so the final centers are gravity points, not peripheral corners.
/// Phase 2 is iterated until the assignment stabilizes (a couple of
/// rounds in practice).
std::vector<NodeId> SpreadCenters(const Graph& g,
                                  const std::vector<double>& scores,
                                  size_t count) {
  TCF_CHECK(g.has_coordinates());
  const size_t n = g.NumNodes();
  TCF_CHECK(count <= n);

  // Phase 1: farthest-point traversal.
  NodeId best_scored = 0;
  for (NodeId v = 1; v < n; ++v) {
    if (scores[v] > scores[best_scored]) best_scored = v;
  }
  std::vector<NodeId> centers = {best_scored};
  std::vector<double> dist_to_centers(n, kInfinity);
  while (centers.size() < count) {
    const NodeId latest = centers.back();
    NodeId farthest = kInvalidNode;
    for (NodeId v = 0; v < n; ++v) {
      dist_to_centers[v] = std::min(
          dist_to_centers[v], Distance(g.coordinate(v), g.coordinate(latest)));
      const bool taken =
          std::find(centers.begin(), centers.end(), v) != centers.end();
      if (!taken && (farthest == kInvalidNode ||
                     dist_to_centers[v] > dist_to_centers[farthest])) {
        farthest = v;
      }
    }
    TCF_CHECK(farthest != kInvalidNode);
    centers.push_back(farthest);
  }

  // Phase 2: re-center each Voronoi cell on its best-scored node.
  for (int round = 0; round < 4; ++round) {
    std::vector<NodeId> best_of_cell(count, kInvalidNode);
    for (NodeId v = 0; v < n; ++v) {
      size_t cell = 0;
      double best_dist = kInfinity;
      for (size_t c = 0; c < count; ++c) {
        const double d = Distance(g.coordinate(v), g.coordinate(centers[c]));
        if (d < best_dist) {
          best_dist = d;
          cell = c;
        }
      }
      NodeId& champion = best_of_cell[cell];
      if (champion == kInvalidNode || scores[v] > scores[champion] ||
          (scores[v] == scores[champion] && v < champion)) {
        champion = v;
      }
    }
    bool changed = false;
    for (size_t c = 0; c < count; ++c) {
      if (best_of_cell[c] != kInvalidNode && best_of_cell[c] != centers[c]) {
        centers[c] = best_of_cell[c];
        changed = true;
      }
    }
    if (!changed) break;
  }
  return centers;
}

}  // namespace

std::vector<NodeId> DetermineCenters(const Graph& g,
                                     const CenterBasedOptions& options) {
  TCF_CHECK(options.num_fragments >= 1);
  TCF_CHECK_MSG(options.num_fragments <= g.NumNodes(),
                "more centers than nodes");
  if (!options.distributed_centers) {
    return TopStatusNodes(g, options.num_fragments, options.score);
  }
  TCF_CHECK_MSG(g.has_coordinates(),
                "distributed centers require node coordinates");
  return SpreadCenters(g, StatusScores(g, options.score),
                       options.num_fragments);
}

Fragmentation CenterBasedFragmentation(const Graph& g,
                                       const CenterBasedOptions& options) {
  const std::vector<NodeId> centers = DetermineCenters(g, options);
  const size_t n = centers.size();
  const size_t m = g.NumEdges();

  constexpr FragmentId kUnassigned = Fragmentation::kInvalidFragment;
  std::vector<FragmentId> owner(m, kUnassigned);
  std::vector<std::vector<char>> in_fragment(
      n, std::vector<char>(g.NumNodes(), 0));
  // Frontier nodes per fragment whose incident edges may be claimable.
  std::vector<std::vector<NodeId>> frontier(n);
  std::vector<size_t> edge_count(n, 0);
  size_t remaining = m;

  auto claim_node_edges = [&](FragmentId f, NodeId v) {
    // Claim all still-unassigned edges incident to v.
    size_t claimed = 0;
    auto claim = [&](EdgeId e, NodeId other) {
      if (owner[e] != kUnassigned) return;
      owner[e] = f;
      ++edge_count[f];
      ++claimed;
      --remaining;
      if (!in_fragment[f][other]) {
        in_fragment[f][other] = 1;
        frontier[f].push_back(other);
      }
    };
    for (const OutEdge& oe : g.OutEdges(v)) claim(oe.id, oe.dst);
    for (const InEdge& ie : g.InEdges(v)) claim(ie.id, ie.src);
    return claimed;
  };

  // Initialisation (Fig. 4): V_i = {c_i}; E_i = edges adjacent to c_i.
  // Centers are processed in score order; an edge adjacent to two centers
  // goes to the earlier one.
  for (FragmentId f = 0; f < n; ++f) {
    in_fragment[f][centers[f]] = 1;
    frontier[f].push_back(centers[f]);
  }
  for (FragmentId f = 0; f < n; ++f) {
    claim_node_edges(f, centers[f]);
  }

  // One expansion step of fragment f: absorb every unassigned edge adjacent
  // to its current node set (one "relational join" round).
  auto expand = [&](FragmentId f) {
    std::vector<NodeId> old_frontier = std::move(frontier[f]);
    frontier[f].clear();
    size_t claimed = 0;
    for (NodeId v : old_frontier) claimed += claim_node_edges(f, v);
    if (claimed == 0) {
      // Frontier may still be useful later if another fragment frees
      // nothing — but edges only ever get claimed, so an empty harvest
      // means this frontier is exhausted for good.
      return claimed;
    }
    return claimed;
  };

  if (options.growth == CenterBasedOptions::Growth::kRoundRobin) {
    // Fig. 4 main loop: k cycles over fragments until E is empty; stall
    // detection added for disconnected leftovers.
    size_t stalled_rounds = 0;
    FragmentId k = 0;
    while (remaining > 0 && stalled_rounds < n) {
      const size_t claimed = expand(k);
      stalled_rounds = claimed == 0 ? stalled_rounds + 1 : 0;
      k = static_cast<FragmentId>((k + 1) % n);
    }
  } else {
    // Smallest-first: expand the fragment with the fewest edges among those
    // that can still grow.
    std::vector<char> exhausted(n, 0);
    while (remaining > 0) {
      FragmentId best = kUnassigned;
      for (FragmentId f = 0; f < n; ++f) {
        if (exhausted[f] || frontier[f].empty()) continue;
        if (best == kUnassigned || edge_count[f] < edge_count[best]) {
          best = f;
        }
      }
      if (best == kUnassigned) break;  // nothing can grow
      if (expand(best) == 0 && frontier[best].empty()) exhausted[best] = 1;
    }
  }

  // Disconnected leftovers: graft each remaining weak component (over
  // unassigned edges) onto the currently smallest fragment.
  if (remaining > 0) {
    TCF_LOG(Debug) << remaining
                   << " edges unreachable from all centers; grafting";
    std::vector<char> edge_seen(m, 0);
    for (EdgeId seed = 0; seed < m; ++seed) {
      if (owner[seed] != kUnassigned || edge_seen[seed]) continue;
      // Collect the component of `seed` over unassigned edges.
      std::vector<EdgeId> component;
      std::vector<NodeId> stack = {g.edge(seed).src};
      std::vector<char> node_seen(g.NumNodes(), 0);
      node_seen[g.edge(seed).src] = 1;
      while (!stack.empty()) {
        NodeId v = stack.back();
        stack.pop_back();
        auto visit = [&](EdgeId e, NodeId other) {
          if (owner[e] != kUnassigned || edge_seen[e]) return;
          edge_seen[e] = 1;
          component.push_back(e);
          if (!node_seen[other]) {
            node_seen[other] = 1;
            stack.push_back(other);
          }
        };
        for (const OutEdge& oe : g.OutEdges(v)) visit(oe.id, oe.dst);
        for (const InEdge& ie : g.InEdges(v)) visit(ie.id, ie.src);
      }
      FragmentId smallest = 0;
      for (FragmentId f = 1; f < n; ++f) {
        if (edge_count[f] < edge_count[smallest]) smallest = f;
      }
      for (EdgeId e : component) {
        owner[e] = smallest;
        ++edge_count[smallest];
        --remaining;
      }
    }
  }
  TCF_CHECK(remaining == 0);
  return Fragmentation(&g, std::move(owner), n);
}

}  // namespace tcf
