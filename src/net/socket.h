// A thin RAII layer over POSIX TCP sockets — just enough for the loopback
// daemon, the client library, and the socket site-transport: listen,
// accept, connect, full reads/writes, and half-close. All failures travel
// as Status/Result values (util/status.h); nothing here throws and nothing
// aborts on peer misbehavior.
#pragma once

#include <cstdint>
#include <string>

#include "util/status.h"

namespace tcf {

/// Move-only owner of one file descriptor. Closing is idempotent.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  void Close();

  /// shutdown(2) the read side: a thread blocked in recv on this socket
  /// wakes with EOF. The fd stays open (Close still required).
  void ShutdownRead() const;
  /// shutdown(2) both directions: wakes blocked readers AND unblocks a
  /// thread parked in accept(2) on a listening socket.
  void ShutdownBoth() const;

 private:
  int fd_ = -1;
};

/// Binds and listens on `address:port` (port 0 picks an ephemeral port —
/// read it back with LocalPort). The daemon and all tests bind loopback.
Result<Socket> ListenTcp(const std::string& address, uint16_t port);

/// The port a bound socket actually listens on.
Result<uint16_t> LocalPort(const Socket& listener);

/// Blocks for one inbound connection. An error after ShutdownBoth() on
/// the listener is the normal stop path.
Result<Socket> AcceptConnection(const Socket& listener);

/// Blocking connect to `host:port` (numeric address or hostname).
Result<Socket> ConnectTcp(const std::string& host, uint16_t port);

/// Writes all `size` bytes (retrying short writes and EINTR).
Status WriteAll(const Socket& socket, const void* data, size_t size);

/// Reads until `size` bytes or EOF. Returns the byte count: `size` on
/// success, 0 when the peer closed before the first byte (clean EOF), a
/// short count when it closed mid-read; socket errors come back as a
/// non-OK Status.
Result<size_t> ReadFull(const Socket& socket, void* data, size_t size);

}  // namespace tcf
