#include "net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

namespace tcf {

namespace {

std::string ErrnoMessage(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

}  // namespace

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::ShutdownRead() const {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

void Socket::ShutdownBoth() const {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Result<Socket> ListenTcp(const std::string& address, uint16_t port) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return Status::IOError(ErrnoMessage("socket"));

  const int one = 1;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad bind address: " + address);
  }
  if (::bind(sock.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::IOError(ErrnoMessage("bind " + address));
  }
  if (::listen(sock.fd(), SOMAXCONN) != 0) {
    return Status::IOError(ErrnoMessage("listen"));
  }
  return sock;
}

Result<uint16_t> LocalPort(const Socket& listener) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(listener.fd(), reinterpret_cast<sockaddr*>(&addr),
                    &len) != 0) {
    return Status::IOError(ErrnoMessage("getsockname"));
  }
  return static_cast<uint16_t>(ntohs(addr.sin_port));
}

Result<Socket> AcceptConnection(const Socket& listener) {
  for (;;) {
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) {
      // The protocol is request/response with tiny frames; latency wins
      // over segment coalescing.
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return Socket(fd);
    }
    if (errno == EINTR) continue;
    return Status::IOError(ErrnoMessage("accept"));
  }
}

Result<Socket> ConnectTcp(const std::string& host, uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* info = nullptr;
  const int rc =
      ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints, &info);
  if (rc != 0) {
    return Status::IOError("getaddrinfo " + host + ": " + gai_strerror(rc));
  }

  Status last = Status::IOError("no addresses for " + host);
  for (addrinfo* ai = info; ai != nullptr; ai = ai->ai_next) {
    Socket sock(::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
    if (!sock.valid()) {
      last = Status::IOError(ErrnoMessage("socket"));
      continue;
    }
    if (::connect(sock.fd(), ai->ai_addr, ai->ai_addrlen) == 0) {
      const int one = 1;
      ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      ::freeaddrinfo(info);
      return sock;
    }
    last = Status::IOError(ErrnoMessage("connect " + host));
  }
  ::freeaddrinfo(info);
  return last;
}

Status WriteAll(const Socket& socket, const void* data, size_t size) {
  const char* p = static_cast<const char*>(data);
  size_t remaining = size;
  while (remaining > 0) {
    // MSG_NOSIGNAL: a peer that closed mid-write costs this connection an
    // EPIPE status, not the whole process a SIGPIPE.
    const ssize_t n = ::send(socket.fd(), p, remaining, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(ErrnoMessage("send"));
    }
    p += n;
    remaining -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<size_t> ReadFull(const Socket& socket, void* data, size_t size) {
  char* p = static_cast<char*>(data);
  size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(socket.fd(), p + got, size - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(ErrnoMessage("recv"));
    }
    if (n == 0) break;  // EOF
    got += static_cast<size_t>(n);
  }
  return got;
}

}  // namespace tcf
