// Bounds-checked binary encoding primitives for the wire protocol. Every
// multi-byte integer travels little-endian at a fixed width; the reader is
// a cursor over a caller-owned buffer that can NEVER over-read — every
// Read* checks the remaining byte count first and fails by returning false
// instead of touching out-of-range memory. That property is what the frame
// fuzzer in tests/net_protocol_test.cc leans on: arbitrary hostile bytes
// flow through these readers under ASan/UBSan and must only ever produce a
// clean decode failure.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace tcf {

/// Append-only encoder; the buffer is a std::string so it can be handed to
/// socket writers without a copy.
class WireWriter {
 public:
  void PutU8(uint8_t v) { buffer_.push_back(static_cast<char>(v)); }
  void PutU16(uint16_t v) { PutLittleEndian(v); }
  void PutU32(uint32_t v) { PutLittleEndian(v); }
  void PutU64(uint64_t v) { PutLittleEndian(v); }
  /// IEEE-754 doubles travel as their 8-byte representation (the library
  /// already requires IEEE doubles for kInfinity semantics).
  void PutF64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    PutU64(bits);
  }
  void PutBytes(std::string_view bytes) { buffer_.append(bytes); }

  const std::string& buffer() const { return buffer_; }
  std::string&& TakeBuffer() { return std::move(buffer_); }
  size_t size() const { return buffer_.size(); }

 private:
  template <typename T>
  void PutLittleEndian(T v) {
    for (size_t i = 0; i < sizeof(T); ++i) {
      buffer_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }

  std::string buffer_;
};

/// Cursor over `[data, data + size)`. Does not own the bytes; the caller
/// keeps them alive for the reader's lifetime.
class WireReader {
 public:
  WireReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit WireReader(std::string_view bytes)
      : data_(reinterpret_cast<const uint8_t*>(bytes.data())),
        size_(bytes.size()) {}

  size_t remaining() const { return size_ - pos_; }
  bool exhausted() const { return pos_ == size_; }

  bool ReadU8(uint8_t* out) {
    if (remaining() < 1) return false;
    *out = data_[pos_++];
    return true;
  }
  bool ReadU16(uint16_t* out) { return ReadLittleEndian(out); }
  bool ReadU32(uint32_t* out) { return ReadLittleEndian(out); }
  bool ReadU64(uint64_t* out) { return ReadLittleEndian(out); }
  bool ReadF64(double* out) {
    uint64_t bits;
    if (!ReadU64(&bits)) return false;
    std::memcpy(out, &bits, sizeof(bits));
    return true;
  }
  bool ReadBytes(size_t n, std::string* out) {
    if (remaining() < n) return false;
    out->assign(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return true;
  }

 private:
  template <typename T>
  bool ReadLittleEndian(T* out) {
    if (remaining() < sizeof(T)) return false;
    T v = 0;
    for (size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += sizeof(T);
    *out = v;
    return true;
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace tcf
