#include "net/site_transport.h"

#include <atomic>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "net/frame.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "util/channel.h"

namespace tcf {

namespace {

// ---------------------------------------------------------------------------
// In-process fabric: the original mailboxes, behind the seam.
// ---------------------------------------------------------------------------

class InProcessSiteTransport final : public SiteTransport {
 public:
  explicit InProcessSiteTransport(size_t num_sites) {
    mailboxes_.reserve(num_sites);
    for (size_t i = 0; i < num_sites; ++i) {
      mailboxes_.push_back(std::make_unique<Channel<SiteWireSubquery>>());
    }
  }

  ~InProcessSiteTransport() override { Shutdown(); }

  void SendSubquery(FragmentId site, SiteWireSubquery message) override {
    mailboxes_[site]->Send(std::move(message));
  }

  std::optional<SiteWireResult> ReceiveResult() override {
    return coordinator_inbox_.Receive();
  }

  std::optional<SiteWireSubquery> ReceiveSubquery(FragmentId site) override {
    return mailboxes_[site]->Receive();
  }

  void SendResult(FragmentId /*site*/, SiteWireResult message) override {
    coordinator_inbox_.Send(std::move(message));
  }

  void Shutdown() override {
    for (auto& mailbox : mailboxes_) mailbox->Close();
    coordinator_inbox_.Close();
  }

 private:
  std::vector<std::unique_ptr<Channel<SiteWireSubquery>>> mailboxes_;
  Channel<SiteWireResult> coordinator_inbox_;
};

// ---------------------------------------------------------------------------
// Socket fabric: one loopback TCP connection per site; every message is a
// real kSiteSubquery / kSiteResult frame (serialize, send, receive,
// deserialize) so the simulation exercises the actual wire codec.
// ---------------------------------------------------------------------------

class SocketSiteTransport final : public SiteTransport {
 public:
  /// `coordinator_ends[f]` / `site_ends[f]` are the two ends of site f's
  /// connection. Spawns one coordinator-side demux thread per site that
  /// funnels kSiteResult frames into the shared result channel.
  SocketSiteTransport(std::vector<Socket> coordinator_ends,
                      std::vector<Socket> site_ends)
      : coordinator_ends_(std::move(coordinator_ends)),
        site_ends_(std::move(site_ends)),
        live_demuxers_(coordinator_ends_.size()) {
    demuxers_.reserve(coordinator_ends_.size());
    for (size_t f = 0; f < coordinator_ends_.size(); ++f) {
      demuxers_.emplace_back([this, f]() { DemuxLoop(f); });
    }
  }

  ~SocketSiteTransport() override { Shutdown(); }

  void SendSubquery(FragmentId site, SiteWireSubquery message) override {
    SiteSubqueryMsg msg;
    msg.spec = std::move(message.spec);
    // A send failure means the link died; the matching result will never
    // arrive and ReceiveResult reports the shutdown via nullopt instead.
    (void)WriteFrame(coordinator_ends_[site], MessageType::kSiteSubquery,
                     message.request_id, EncodeSiteSubquery(msg));
  }

  std::optional<SiteWireResult> ReceiveResult() override {
    return results_.Receive();
  }

  std::optional<SiteWireSubquery> ReceiveSubquery(FragmentId site) override {
    Result<Frame> read = ReadFrame(site_ends_[site], kMaxPayloadBytes);
    if (!read.ok()) return std::nullopt;  // shutdown or dead link
    const Frame& frame = read.value();
    if (frame.header.type != MessageType::kSiteSubquery) return std::nullopt;
    SiteSubqueryMsg msg;
    if (!DecodeSiteSubquery(frame.payload_view(), &msg).ok()) {
      return std::nullopt;
    }
    SiteWireSubquery out;
    out.request_id = frame.header.request_id;
    out.spec = std::move(msg.spec);
    return out;
  }

  void SendResult(FragmentId site, SiteWireResult message) override {
    SiteResultMsg msg;
    msg.fragment = message.fragment;
    msg.paths = std::move(message.paths);
    (void)WriteFrame(site_ends_[site], MessageType::kSiteResult,
                     message.request_id, EncodeSiteResult(msg));
  }

  void Shutdown() override {
    if (shut_down_.exchange(true)) {
      for (auto& t : demuxers_) {
        if (t.joinable()) t.join();
      }
      return;
    }
    // Both ends wake out of recv with an error: site loops and demuxers
    // exit; the last demuxer closes the result channel, which is what
    // unblocks a coordinator parked in ReceiveResult.
    for (const Socket& s : coordinator_ends_) s.ShutdownBoth();
    for (const Socket& s : site_ends_) s.ShutdownBoth();
    for (auto& t : demuxers_) {
      if (t.joinable()) t.join();
    }
  }

 private:
  void DemuxLoop(size_t site) {
    for (;;) {
      Result<Frame> read = ReadFrame(coordinator_ends_[site], kMaxPayloadBytes);
      if (!read.ok()) break;
      const Frame& frame = read.value();
      if (frame.header.type != MessageType::kSiteResult) break;
      SiteResultMsg msg;
      if (!DecodeSiteResult(frame.payload_view(), &msg).ok()) break;
      SiteWireResult result;
      result.request_id = frame.header.request_id;
      result.fragment = msg.fragment;
      result.paths = std::move(msg.paths);
      results_.Send(std::move(result));
    }
    if (live_demuxers_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      results_.Close();
    }
  }

  std::vector<Socket> coordinator_ends_;
  std::vector<Socket> site_ends_;
  Channel<SiteWireResult> results_;
  std::vector<std::thread> demuxers_;
  std::atomic<size_t> live_demuxers_;
  std::atomic<bool> shut_down_{false};
};

}  // namespace

std::unique_ptr<SiteTransport> MakeInProcessSiteTransport(size_t num_sites) {
  return std::make_unique<InProcessSiteTransport>(num_sites);
}

Result<std::unique_ptr<SiteTransport>> MakeSocketSiteTransport(
    size_t num_sites) {
  std::vector<Socket> coordinator_ends;
  std::vector<Socket> site_ends;
  coordinator_ends.reserve(num_sites);
  site_ends.reserve(num_sites);
  for (size_t f = 0; f < num_sites; ++f) {
    Result<Socket> listener = ListenTcp("127.0.0.1", 0);
    if (!listener.ok()) return listener.status();
    Result<uint16_t> port = LocalPort(listener.value());
    if (!port.ok()) return port.status();
    Result<Socket> coordinator_end = ConnectTcp("127.0.0.1", port.value());
    if (!coordinator_end.ok()) return coordinator_end.status();
    Result<Socket> site_end = AcceptConnection(listener.value());
    if (!site_end.ok()) return site_end.status();
    coordinator_ends.push_back(std::move(coordinator_end).value());
    site_ends.push_back(std::move(site_end).value());
  }
  return std::unique_ptr<SiteTransport>(new SocketSiteTransport(
      std::move(coordinator_ends), std::move(site_ends)));
}

}  // namespace tcf
