#include "net/protocol.h"

#include "net/wire.h"

namespace tcf {

namespace {

Status Malformed(const char* what) {
  return Status::InvalidArgument(std::string("malformed payload: ") + what);
}

/// Every decoder ends here: a payload with bytes left over after its
/// message is malformed, not "a message plus noise".
Status ExpectExhausted(const WireReader& r) {
  if (!r.exhausted()) return Malformed("trailing bytes");
  return Status::OK();
}

void AppendNodeSet(const NodeSet& nodes, WireWriter* w) {
  w->PutU32(static_cast<uint32_t>(nodes.size()));
  for (NodeId v : nodes) w->PutU32(v);
}

Status ReadNodeSet(WireReader* r, NodeSet* out) {
  uint32_t count = 0;
  if (!r->ReadU32(&count)) return Malformed("node-set count");
  // The announced count must be backed by bytes BEFORE any allocation.
  if (static_cast<size_t>(count) * sizeof(NodeId) > r->remaining()) {
    return Malformed("node-set count exceeds payload");
  }
  out->clear();
  out->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    NodeId v = 0;
    if (!r->ReadU32(&v)) return Malformed("node-set entry");
    out->insert(v);
  }
  return Status::OK();
}

}  // namespace

Status ErrorResponseMsg::ToStatus() const {
  switch (code) {
    case StatusCode::kOk: return Status::OK();
    case StatusCode::kInvalidArgument: return Status::InvalidArgument(message);
    case StatusCode::kNotFound: return Status::NotFound(message);
    case StatusCode::kOutOfRange: return Status::OutOfRange(message);
    case StatusCode::kFailedPrecondition:
      return Status::FailedPrecondition(message);
    case StatusCode::kInternal: return Status::Internal(message);
    case StatusCode::kIOError: return Status::IOError(message);
  }
  return Status::Internal(message);
}

std::string EncodeQueryRequest(const QueryRequestMsg& msg) {
  WireWriter w;
  w.PutU32(msg.from);
  w.PutU32(msg.to);
  w.PutU8(static_cast<uint8_t>(msg.kind));
  return w.TakeBuffer();
}

Status DecodeQueryRequest(std::string_view payload, QueryRequestMsg* out) {
  WireReader r(payload);
  uint8_t kind = 0;
  if (!r.ReadU32(&out->from) || !r.ReadU32(&out->to) || !r.ReadU8(&kind)) {
    return Malformed("query request truncated");
  }
  if (kind > static_cast<uint8_t>(QueryKind::kReachability)) {
    return Malformed("unknown query kind");
  }
  out->kind = static_cast<QueryKind>(kind);
  return ExpectExhausted(r);
}

std::string EncodeQueryResponse(const QueryResponseMsg& msg) {
  WireWriter w;
  w.PutF64(msg.cost);
  return w.TakeBuffer();
}

Status DecodeQueryResponse(std::string_view payload, QueryResponseMsg* out) {
  WireReader r(payload);
  if (!r.ReadF64(&out->cost)) return Malformed("query response truncated");
  return ExpectExhausted(r);
}

std::string EncodeUpdateRequest(const UpdateRequestMsg& msg) {
  WireWriter w;
  w.PutU8(static_cast<uint8_t>(msg.update.kind));
  w.PutU32(msg.update.src);
  w.PutU32(msg.update.dst);
  w.PutF64(msg.update.weight);
  w.PutU8(msg.update.target.has_value() ? 1 : 0);
  w.PutU32(msg.update.target.value_or(0));
  return w.TakeBuffer();
}

Status DecodeUpdateRequest(std::string_view payload, UpdateRequestMsg* out) {
  WireReader r(payload);
  uint8_t kind = 0, has_target = 0;
  uint32_t target = 0;
  if (!r.ReadU8(&kind) || !r.ReadU32(&out->update.src) ||
      !r.ReadU32(&out->update.dst) || !r.ReadF64(&out->update.weight) ||
      !r.ReadU8(&has_target) || !r.ReadU32(&target)) {
    return Malformed("update request truncated");
  }
  if (kind > static_cast<uint8_t>(EdgeUpdate::Kind::kReweight)) {
    return Malformed("unknown update kind");
  }
  if (has_target > 1) return Malformed("bad target flag");
  out->update.kind = static_cast<EdgeUpdate::Kind>(kind);
  out->update.target =
      has_target ? std::optional<FragmentId>(target) : std::nullopt;
  return ExpectExhausted(r);
}

std::string EncodeUpdateResponse(const UpdateResponseMsg& msg) {
  WireWriter w;
  w.PutU64(msg.epoch);
  return w.TakeBuffer();
}

Status DecodeUpdateResponse(std::string_view payload, UpdateResponseMsg* out) {
  WireReader r(payload);
  if (!r.ReadU64(&out->epoch)) return Malformed("update response truncated");
  return ExpectExhausted(r);
}

std::string EncodeErrorResponse(const ErrorResponseMsg& msg) {
  WireWriter w;
  w.PutU8(static_cast<uint8_t>(msg.code));
  w.PutU32(static_cast<uint32_t>(msg.message.size()));
  w.PutBytes(msg.message);
  return w.TakeBuffer();
}

Status DecodeErrorResponse(std::string_view payload, ErrorResponseMsg* out) {
  WireReader r(payload);
  uint8_t code = 0;
  uint32_t len = 0;
  if (!r.ReadU8(&code) || !r.ReadU32(&len)) {
    return Malformed("error response truncated");
  }
  if (!r.ReadBytes(len, &out->message)) {
    return Malformed("error message exceeds payload");
  }
  // An unknown code from a newer peer degrades to kInternal instead of
  // failing the decode: the reply is still a well-formed error.
  out->code = code > static_cast<uint8_t>(StatusCode::kIOError)
                  ? StatusCode::kInternal
                  : static_cast<StatusCode>(code);
  return ExpectExhausted(r);
}

std::string EncodeSiteSubquery(const SiteSubqueryMsg& msg) {
  WireWriter w;
  w.PutU32(msg.spec.fragment);
  AppendNodeSet(msg.spec.sources, &w);
  AppendNodeSet(msg.spec.targets, &w);
  return w.TakeBuffer();
}

Status DecodeSiteSubquery(std::string_view payload, SiteSubqueryMsg* out) {
  WireReader r(payload);
  if (!r.ReadU32(&out->spec.fragment)) return Malformed("subquery truncated");
  TCF_RETURN_NOT_OK(ReadNodeSet(&r, &out->spec.sources));
  TCF_RETURN_NOT_OK(ReadNodeSet(&r, &out->spec.targets));
  return ExpectExhausted(r);
}

std::string EncodeSiteResult(const SiteResultMsg& msg) {
  WireWriter w;
  w.PutU32(msg.fragment);
  w.PutU32(static_cast<uint32_t>(msg.paths.size()));
  for (const PathTuple& t : msg.paths.tuples()) {
    w.PutU32(t.src);
    w.PutU32(t.dst);
    w.PutF64(t.cost);
  }
  return w.TakeBuffer();
}

Status DecodeSiteResult(std::string_view payload, SiteResultMsg* out) {
  WireReader r(payload);
  uint32_t count = 0;
  if (!r.ReadU32(&out->fragment) || !r.ReadU32(&count)) {
    return Malformed("site result truncated");
  }
  constexpr size_t kTupleWireSize = 2 * sizeof(uint32_t) + sizeof(double);
  if (static_cast<size_t>(count) * kTupleWireSize > r.remaining()) {
    return Malformed("tuple count exceeds payload");
  }
  std::vector<PathTuple> tuples;
  tuples.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    PathTuple t;
    if (!r.ReadU32(&t.src) || !r.ReadU32(&t.dst) || !r.ReadF64(&t.cost)) {
      return Malformed("tuple truncated");
    }
    tuples.push_back(t);
  }
  out->paths = Relation(std::move(tuples));
  return ExpectExhausted(r);
}

}  // namespace tcf
