// The network edge: a TCP server that speaks the tcfrag wire protocol
// (net/frame.h, net/protocol.h) and routes decoded requests into a
// QueryService — the daemon behind tools/tcfragd.cc. Connections are
// fully pipelined: a client may keep any number of requests in flight;
// each request is submitted to the service the moment it decodes, so
// concurrent in-flight requests feed the service's micro-batcher exactly
// like concurrent in-process submitters do.
//
// Per connection, two threads:
//   - the READER owns the socket's receive side: it reads frames,
//     decodes, submits to the service, and enqueues the resulting future
//     (tagged with the request id) to the writer. Flow control is the
//     service's own admission backpressure — a full admission shard
//     blocks the reader, which stops draining the socket, which is TCP
//     backpressure to the client.
//   - the WRITER owns the send side: it resolves futures in submission
//     order and writes response frames. A future that resolves to an
//     exception (validation failure, service shutdown) becomes a clean
//     kError frame for that request id.
//
// Error-isolation contract (the hard one — see docs/ARCHITECTURE.md):
//   - a request-level fault (undecodable payload, unknown message type,
//     unsupported query kind, out-of-range endpoint, service shutting
//     down) fails ONLY that request: the connection gets a kError frame
//     echoing the request id and keeps streaming;
//   - a connection-level fault (bad magic, version mismatch, oversized or
//     truncated frame — the framing itself can no longer be trusted)
//     costs the connection: one final kError frame with request id 0,
//     then the socket closes;
//   - nothing a peer sends can take down the daemon or any OTHER
//     connection.
//
// Stop() ordering (the shutdown-drain contract): Stop() half-closes every
// connection's receive side, so readers stop admitting; writers then
// DRAIN — every already-submitted future is resolved by the (still live)
// service and answered on the wire before the socket closes. Stop the
// server BEFORE shutting down the service and no client is ever left
// holding an unanswered pipelined request; in the other order every
// admitted future is still fulfilled by the service's own drain, and
// later arrivals get clean shutdown errors (regression-tested in
// tests/net_daemon_test.cc).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dsa/service.h"
#include "net/socket.h"

namespace tcf {

struct ServerOptions {
  /// Bind address; the daemon binds loopback unless told otherwise.
  std::string bind_address = "127.0.0.1";
  /// 0 picks an ephemeral port (read the real one back with port()).
  uint16_t port = 0;
  /// Per-frame payload cap for inbound frames. Client requests are tens
  /// of bytes; anything near this limit is hostile or a framing bug.
  size_t max_payload_bytes = 1 << 20;
};

/// Accounting snapshot, via Server::stats().
struct ServerStats {
  uint64_t connections_accepted = 0;
  /// Connections the server closed on a connection-level protocol fault.
  uint64_t connections_dropped = 0;
  uint64_t requests = 0;      // frames decoded as requests
  uint64_t replies_ok = 0;    // value-bearing responses written
  uint64_t replies_error = 0; // kError frames written
};

/// `service` must outlive the server; Stop() (or the destructor) must run
/// before the service is destroyed, and SHOULD run before the service is
/// shut down so in-flight replies drain onto the wire (see above).
class Server {
 public:
  explicit Server(QueryService* service, ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the accept loop. Fails cleanly (no
  /// threads started) if the port cannot be bound.
  Status Start();

  /// The port actually bound (resolves an ephemeral request). 0 before
  /// Start() succeeds.
  uint16_t port() const { return port_; }

  /// Stops accepting, half-closes all connections, drains in-flight
  /// replies, joins every thread. Idempotent; implied by the destructor.
  void Stop();

  ServerStats stats() const;

 private:
  struct Connection;

  void AcceptLoop();
  void ReaderLoop(Connection* conn);
  void WriterLoop(Connection* conn);
  /// Joins and discards connections whose threads have finished (called
  /// from the accept loop so a long-lived daemon does not accumulate
  /// dead connection state).
  void ReapFinished();

  QueryService* service_;
  ServerOptions options_;
  Socket listener_;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;

  std::mutex connections_mutex_;
  std::vector<std::unique_ptr<Connection>> connections_;

  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_dropped_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> replies_ok_{0};
  std::atomic<uint64_t> replies_error_{0};
};

}  // namespace tcf
