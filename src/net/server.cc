#include "net/server.h"

#include <stdexcept>
#include <utility>

#include "net/frame.h"
#include "net/protocol.h"
#include "util/channel.h"

namespace tcf {

namespace {

/// What the reader hands the writer: a response to produce, in submission
/// order. Exactly one of the future members is valid, selected by `type`.
struct Reply {
  uint64_t request_id = 0;
  MessageType type = MessageType::kError;
  std::future<Weight> cost;     // kQueryResponse
  std::future<uint64_t> epoch;  // kUpdateResponse
  ErrorResponseMsg error;       // kError
  /// Connection-level fault: write this final frame, then close.
  bool close_after = false;
};

Reply ErrorReply(uint64_t request_id, StatusCode code, std::string message,
                 bool close_after = false) {
  Reply reply;
  reply.request_id = request_id;
  reply.type = MessageType::kError;
  reply.error.code = code;
  reply.error.message = std::move(message);
  reply.close_after = close_after;
  return reply;
}

}  // namespace

struct Server::Connection {
  Socket socket;
  Channel<Reply> replies;
  std::thread reader;
  std::thread writer;
  /// Loops still running; the accept loop reaps at zero (joining is then
  /// a bounded wait for the final returns, never for live work).
  std::atomic<int> live{2};
};

Server::Server(QueryService* service, ServerOptions options)
    : service_(service), options_(std::move(options)) {
  TCF_CHECK(service != nullptr);
}

Server::~Server() { Stop(); }

Status Server::Start() {
  Result<Socket> listener = ListenTcp(options_.bind_address, options_.port);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(listener).value();
  Result<uint16_t> port = LocalPort(listener_);
  if (!port.ok()) return port.status();
  port_ = port.value();
  accept_thread_ = std::thread([this]() { AcceptLoop(); });
  return Status::OK();
}

void Server::Stop() {
  if (stopping_.exchange(true)) {
    // A concurrent Stop already ran (or is running) the teardown; the
    // accept thread may still be joining connections — wait for it.
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  // Wake the accept loop out of accept(2), then the readers out of
  // recv(2). Readers see EOF, stop admitting, and close their reply
  // channels; writers drain every in-flight future onto the wire first —
  // that order is the no-hung-socket guarantee.
  listener_.ShutdownBoth();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::unique_ptr<Connection>> connections;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connections.swap(connections_);
  }
  for (auto& conn : connections) {
    conn->socket.ShutdownRead();
  }
  for (auto& conn : connections) {
    if (conn->reader.joinable()) conn->reader.join();
    if (conn->writer.joinable()) conn->writer.join();
  }
  listener_.Close();
}

ServerStats Server::stats() const {
  ServerStats s;
  s.connections_accepted = connections_accepted_.load();
  s.connections_dropped = connections_dropped_.load();
  s.requests = requests_.load();
  s.replies_ok = replies_ok_.load();
  s.replies_error = replies_error_.load();
  return s;
}

void Server::ReapFinished() {
  std::lock_guard<std::mutex> lock(connections_mutex_);
  for (size_t i = 0; i < connections_.size();) {
    if (connections_[i]->live.load(std::memory_order_acquire) == 0) {
      connections_[i]->reader.join();
      connections_[i]->writer.join();
      connections_[i] = std::move(connections_.back());
      connections_.pop_back();
    } else {
      ++i;
    }
  }
}

void Server::AcceptLoop() {
  for (;;) {
    Result<Socket> accepted = AcceptConnection(listener_);
    if (stopping_.load(std::memory_order_acquire)) return;
    if (!accepted.ok()) continue;  // transient accept failure
    ReapFinished();
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);

    auto conn = std::make_unique<Connection>();
    conn->socket = std::move(accepted).value();
    Connection* raw = conn.get();
    {
      // Stop() joins this thread BEFORE swapping the list out, so a
      // connection pushed here is always picked up by its teardown.
      std::lock_guard<std::mutex> lock(connections_mutex_);
      connections_.push_back(std::move(conn));
    }
    raw->reader = std::thread([this, raw]() { ReaderLoop(raw); });
    raw->writer = std::thread([this, raw]() { WriterLoop(raw); });
  }
}

void Server::ReaderLoop(Connection* conn) {
  for (;;) {
    Result<Frame> read = ReadFrame(conn->socket, options_.max_payload_bytes);
    if (!read.ok()) {
      // Clean EOF at a frame boundary: the client finished; anything else
      // is a connection-level fault — one last error frame (request id 0:
      // after header-level garbage no id can be trusted), then close.
      if (read.status().code() != StatusCode::kNotFound) {
        connections_dropped_.fetch_add(1, std::memory_order_relaxed);
        conn->replies.Send(ErrorReply(0, read.status().code(),
                                      read.status().message(),
                                      /*close_after=*/true));
      }
      break;
    }

    const Frame& frame = read.value();
    const uint64_t id = frame.header.request_id;
    requests_.fetch_add(1, std::memory_order_relaxed);

    // Request-level dispatch: every failure from here on fails only this
    // request id; the connection keeps streaming.
    switch (frame.header.type) {
      case MessageType::kPing: {
        Reply reply;
        reply.request_id = id;
        reply.type = MessageType::kPong;
        conn->replies.Send(std::move(reply));
        break;
      }
      case MessageType::kQueryRequest: {
        QueryRequestMsg msg;
        Status decoded = DecodeQueryRequest(frame.payload_view(), &msg);
        if (!decoded.ok()) {
          conn->replies.Send(
              ErrorReply(id, decoded.code(), decoded.message()));
          break;
        }
        if (msg.kind != QueryKind::kCost) {
          conn->replies.Send(ErrorReply(
              id, StatusCode::kInvalidArgument,
              "only cost queries are served over the wire protocol"));
          break;
        }
        if (service_->IsShuttingDown()) {
          conn->replies.Send(ErrorReply(id, StatusCode::kFailedPrecondition,
                                        "service is shutting down"));
          break;
        }
        // Blocking admission: a full admission shard holds the reader
        // here, which is exactly the backpressure the socket should see.
        Reply reply;
        reply.request_id = id;
        reply.type = MessageType::kQueryResponse;
        reply.cost = service_->SubmitShortestPath(msg.from, msg.to);
        conn->replies.Send(std::move(reply));
        break;
      }
      case MessageType::kUpdateRequest: {
        UpdateRequestMsg msg;
        Status decoded = DecodeUpdateRequest(frame.payload_view(), &msg);
        if (!decoded.ok()) {
          conn->replies.Send(
              ErrorReply(id, decoded.code(), decoded.message()));
          break;
        }
        if (service_->IsShuttingDown()) {
          conn->replies.Send(ErrorReply(id, StatusCode::kFailedPrecondition,
                                        "service is shutting down"));
          break;
        }
        Reply reply;
        reply.request_id = id;
        reply.type = MessageType::kUpdateResponse;
        reply.epoch = service_->SubmitUpdate(msg.update);
        conn->replies.Send(std::move(reply));
        break;
      }
      default:
        conn->replies.Send(ErrorReply(
            id, StatusCode::kInvalidArgument,
            std::string("unexpected message type: ") +
                MessageTypeName(frame.header.type)));
        break;
    }
  }
  // No more replies will be produced; the writer drains what is queued
  // (resolving every in-flight future) and then exits.
  conn->replies.Close();
  conn->live.fetch_sub(1, std::memory_order_acq_rel);
}

void Server::WriterLoop(Connection* conn) {
  for (;;) {
    std::optional<Reply> popped = conn->replies.Receive();
    if (!popped.has_value()) break;  // channel closed and drained
    Reply reply = std::move(*popped);

    std::string payload;
    MessageType type = reply.type;
    switch (reply.type) {
      case MessageType::kPong:
        break;
      case MessageType::kQueryResponse:
        try {
          payload = EncodeQueryResponse({reply.cost.get()});
        } catch (const std::out_of_range& e) {
          type = MessageType::kError;
          payload = EncodeErrorResponse({StatusCode::kOutOfRange, e.what()});
        } catch (const std::exception& e) {
          // The service shut down under this request; still a clean,
          // per-request error on the wire — never a silent disconnect.
          type = MessageType::kError;
          payload =
              EncodeErrorResponse({StatusCode::kFailedPrecondition, e.what()});
        }
        break;
      case MessageType::kUpdateResponse:
        try {
          payload = EncodeUpdateResponse({reply.epoch.get()});
        } catch (const std::out_of_range& e) {
          type = MessageType::kError;
          payload = EncodeErrorResponse({StatusCode::kOutOfRange, e.what()});
        } catch (const std::exception& e) {
          type = MessageType::kError;
          payload =
              EncodeErrorResponse({StatusCode::kFailedPrecondition, e.what()});
        }
        break;
      default:
        type = MessageType::kError;
        payload = EncodeErrorResponse(reply.error);
        break;
    }

    if (type == MessageType::kError) {
      replies_error_.fetch_add(1, std::memory_order_relaxed);
    } else {
      replies_ok_.fetch_add(1, std::memory_order_relaxed);
    }
    if (!WriteFrame(conn->socket, type, reply.request_id, payload).ok()) {
      // Peer is gone; wake the reader (it may be blocked in recv) and
      // stop. Remaining queued futures are dropped — there is no wire
      // left to answer on (Channel::Send never blocks, so the reader
      // cannot wedge on the abandoned queue).
      conn->socket.ShutdownRead();
      break;
    }
    if (reply.close_after) {
      conn->socket.ShutdownBoth();
      break;
    }
  }
  conn->live.fetch_sub(1, std::memory_order_acq_rel);
}

}  // namespace tcf
