#include "net/client.h"

#include <utility>

#include "net/frame.h"
#include "net/protocol.h"

namespace tcf {

Result<std::unique_ptr<Client>> Client::Connect(const std::string& host,
                                                uint16_t port,
                                                ClientOptions options) {
  Result<Socket> socket = ConnectTcp(host, port);
  if (!socket.ok()) return socket.status();
  return std::unique_ptr<Client>(
      new Client(std::move(socket).value(), options));
}

Client::Client(Socket socket, ClientOptions options)
    : socket_(std::move(socket)), options_(options) {
  demux_thread_ = std::thread([this]() { DemuxLoop(); });
}

Client::~Client() {
  Close();
  if (demux_thread_.joinable()) demux_thread_.join();
}

void Client::Close() {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (closed_) return;
    closed_ = true;
  }
  // Wakes the demux thread out of recv; it fails whatever is still
  // pending on its way out.
  socket_.ShutdownBoth();
}

void Client::FailCall(PendingCall* call, const Status& status) {
  if (call->expect == MessageType::kQueryResponse) {
    call->cost.set_value(status);
  } else {
    call->epoch.set_value(status);
  }
}

void Client::FailAllPending(const Status& status) {
  std::unordered_map<uint64_t, PendingCall> orphaned;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    orphaned.swap(pending_);
    closed_ = true;
  }
  for (auto& [id, call] : orphaned) FailCall(&call, status);
}

void Client::Dispatch(MessageType type, const std::string& payload,
                      PendingCall call) {
  const uint64_t id =
      next_request_id_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (closed_) {
      FailCall(&call, Status::IOError("client is closed"));
      return;
    }
    pending_.emplace(id, std::move(call));
  }
  Status written;
  {
    std::lock_guard<std::mutex> lock(send_mutex_);
    written = WriteFrame(socket_, type, id, payload);
  }
  if (!written.ok()) {
    // Pull the call back out (the demux thread may already have failed
    // everything if it saw the broken socket first).
    std::optional<PendingCall> orphan;
    {
      std::lock_guard<std::mutex> lock(state_mutex_);
      auto it = pending_.find(id);
      if (it != pending_.end()) {
        orphan = std::move(it->second);
        pending_.erase(it);
      }
    }
    if (orphan.has_value()) FailCall(&*orphan, written);
  }
}

std::future<Result<Weight>> Client::SubmitShortestPath(NodeId from,
                                                       NodeId to) {
  PendingCall call;
  call.expect = MessageType::kQueryResponse;
  std::future<Result<Weight>> future = call.cost.get_future();
  Dispatch(MessageType::kQueryRequest,
           EncodeQueryRequest({from, to, QueryKind::kCost}), std::move(call));
  return future;
}

Result<Weight> Client::ShortestPathCost(NodeId from, NodeId to) {
  return SubmitShortestPath(from, to).get();
}

std::future<Result<uint64_t>> Client::SubmitUpdate(const EdgeUpdate& update) {
  PendingCall call;
  call.expect = MessageType::kUpdateResponse;
  std::future<Result<uint64_t>> future = call.epoch.get_future();
  Dispatch(MessageType::kUpdateRequest, EncodeUpdateRequest({update}),
           std::move(call));
  return future;
}

Status Client::Ping() {
  PendingCall call;
  call.expect = MessageType::kPong;
  std::future<Result<uint64_t>> future = call.epoch.get_future();
  Dispatch(MessageType::kPing, "", std::move(call));
  Result<uint64_t> result = future.get();
  return result.ok() ? Status::OK() : result.status();
}

void Client::CompleteCall(PendingCall* call, MessageType type,
                          std::string_view payload) {
  if (type == MessageType::kError) {
    ErrorResponseMsg err;
    Status decoded = DecodeErrorResponse(payload, &err);
    FailCall(call, decoded.ok() ? err.ToStatus() : decoded);
    return;
  }
  if (type != call->expect) {
    FailCall(call, Status::Internal(
                       std::string("response type mismatch: expected ") +
                       MessageTypeName(call->expect) + ", got " +
                       MessageTypeName(type)));
    return;
  }
  switch (type) {
    case MessageType::kQueryResponse: {
      QueryResponseMsg msg;
      Status decoded = DecodeQueryResponse(payload, &msg);
      if (decoded.ok()) {
        call->cost.set_value(msg.cost);
      } else {
        FailCall(call, decoded);
      }
      break;
    }
    case MessageType::kUpdateResponse: {
      UpdateResponseMsg msg;
      Status decoded = DecodeUpdateResponse(payload, &msg);
      if (decoded.ok()) {
        call->epoch.set_value(msg.epoch);
      } else {
        FailCall(call, decoded);
      }
      break;
    }
    case MessageType::kPong:
      call->epoch.set_value(uint64_t{0});
      break;
    default:
      FailCall(call, Status::Internal("unexpected response type"));
      break;
  }
}

void Client::DemuxLoop() {
  for (;;) {
    Result<Frame> read = ReadFrame(socket_, options_.max_payload_bytes);
    if (!read.ok()) {
      FailAllPending(read.status().code() == StatusCode::kNotFound
                         ? Status::IOError("connection closed by server")
                         : read.status());
      return;
    }
    const Frame& frame = read.value();
    const uint64_t id = frame.header.request_id;

    // Request id 0 is the server's connection-level death notice (the
    // socket closes right behind it): fail everything with its message.
    if (id == 0 && frame.header.type == MessageType::kError) {
      ErrorResponseMsg err;
      Status decoded = DecodeErrorResponse(frame.payload_view(), &err);
      FailAllPending(decoded.ok() ? err.ToStatus() : decoded);
      return;
    }

    std::optional<PendingCall> call;
    {
      std::lock_guard<std::mutex> lock(state_mutex_);
      auto it = pending_.find(id);
      if (it != pending_.end()) {
        call = std::move(it->second);
        pending_.erase(it);
      }
    }
    if (!call.has_value()) {
      // A response for a request we never made: the stream cannot be
      // trusted anymore.
      FailAllPending(Status::Internal("response for unknown request id " +
                                      std::to_string(id)));
      socket_.ShutdownBoth();
      return;
    }
    CompleteCall(&*call, frame.header.type, frame.payload_view());
  }
}

}  // namespace tcf
