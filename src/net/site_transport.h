// The transport seam under dsa/sites.h: the coordinator/site message
// protocol (one subquery message per (fragment, selection), one result
// message back, nothing site-to-site) expressed as an interface so the
// SAME SiteNetwork protocol logic can run over two fabrics:
//
//   - MakeInProcessSiteTransport: per-site Channel mailboxes plus a
//     shared coordinator inbox — the original simulation fabric.
//   - MakeSocketSiteTransport: one loopback TCP connection per site,
//     messages as kSiteSubquery / kSiteResult frames of the tcfrag wire
//     protocol (net/frame.h, net/protocol.h) — the deployment shape the
//     paper's PRISMA target implies, with real serialization on every
//     hop. tests/sites_test.cc asserts answer-equality between the two.
//
// Threading contract (what SiteNetwork provides): one coordinator thread
// at a time drives SendSubquery/ReceiveResult (serialized by its
// coordinator mutex); each site f has exactly one thread calling
// ReceiveSubquery(f)/SendResult(f). Shutdown() may race with blocked
// receivers on either side and unblocks them all with nullopt.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "dsa/local_query.h"
#include "util/status.h"

namespace tcf {

/// Coordinator -> site: run this local query, tag the answer with the id.
struct SiteWireSubquery {
  uint64_t request_id = 0;
  LocalQuerySpec spec;
};

/// Site -> coordinator: the phase-1 result relation for one subquery.
struct SiteWireResult {
  uint64_t request_id = 0;
  FragmentId fragment = 0;
  Relation paths;
};

class SiteTransport {
 public:
  virtual ~SiteTransport() = default;

  // -- coordinator side --------------------------------------------------
  virtual void SendSubquery(FragmentId site, SiteWireSubquery message) = 0;
  /// Blocks for the next result from ANY site; nullopt after Shutdown().
  virtual std::optional<SiteWireResult> ReceiveResult() = 0;

  // -- site side ---------------------------------------------------------
  /// Blocks for the next subquery addressed to `site`; nullopt means the
  /// transport shut down and the site loop should exit.
  virtual std::optional<SiteWireSubquery> ReceiveSubquery(FragmentId site) = 0;
  virtual void SendResult(FragmentId site, SiteWireResult message) = 0;

  /// Unblocks every receiver on both sides with nullopt. Idempotent; must
  /// only run when no protocol round is in flight (the SiteNetwork
  /// destructor, which holds that guarantee by construction).
  virtual void Shutdown() = 0;
};

std::unique_ptr<SiteTransport> MakeInProcessSiteTransport(size_t num_sites);

/// Builds num_sites loopback socket pairs. Fails (without leaking threads
/// or fds) if loopback listen/connect fails.
Result<std::unique_ptr<SiteTransport>> MakeSocketSiteTransport(
    size_t num_sites);

}  // namespace tcf
