// Payload codecs of the tcfrag wire protocol: the request/response structs
// that travel inside frames (net/frame.h) and their encode/decode
// functions. Decoders are fully defensive — they parse hostile bytes with
// the bounds-checked WireReader, validate every enum and count against its
// domain, and require the payload to be consumed EXACTLY (trailing bytes
// are an error: a frame that frames more than its message is malformed).
// A decode failure is a clean Status and fails only the one request that
// carried it.
//
// Size-prefixed collections (node sets, relations) additionally check the
// announced element count against the bytes actually present BEFORE
// reserving memory, so a hostile count cannot drive an allocation the
// payload could never back.
#pragma once

#include <string>
#include <string_view>

#include "dsa/batch.h"
#include "dsa/local_query.h"
#include "dsa/maintenance.h"
#include "util/status.h"

namespace tcf {

// ------------------------------------------------------------ client <-> daemon

/// One pipelined shortest-path request. `kind` is carried for protocol
/// evolution; the daemon currently serves kCost (others fail cleanly).
struct QueryRequestMsg {
  NodeId from = 0;
  NodeId to = 0;
  QueryKind kind = QueryKind::kCost;

  bool operator==(const QueryRequestMsg&) const = default;
};

struct QueryResponseMsg {
  Weight cost = kInfinity;

  bool operator==(const QueryResponseMsg&) const = default;
};

struct UpdateRequestMsg {
  EdgeUpdate update;
};

struct UpdateResponseMsg {
  uint64_t epoch = 0;

  bool operator==(const UpdateResponseMsg&) const = default;
};

/// A clean failure reply: the StatusCode plus a bounded human-readable
/// message. Request-scoped when it echoes the failed request id;
/// connection-scoped (the peer will close after sending) when the request
/// id is 0 — header-level garbage has no trustworthy id to echo.
struct ErrorResponseMsg {
  StatusCode code = StatusCode::kInternal;
  std::string message;

  bool operator==(const ErrorResponseMsg&) const = default;

  Status ToStatus() const;
};

std::string EncodeQueryRequest(const QueryRequestMsg& msg);
Status DecodeQueryRequest(std::string_view payload, QueryRequestMsg* out);

std::string EncodeQueryResponse(const QueryResponseMsg& msg);
Status DecodeQueryResponse(std::string_view payload, QueryResponseMsg* out);

std::string EncodeUpdateRequest(const UpdateRequestMsg& msg);
Status DecodeUpdateRequest(std::string_view payload, UpdateRequestMsg* out);

std::string EncodeUpdateResponse(const UpdateResponseMsg& msg);
Status DecodeUpdateResponse(std::string_view payload, UpdateResponseMsg* out);

std::string EncodeErrorResponse(const ErrorResponseMsg& msg);
Status DecodeErrorResponse(std::string_view payload, ErrorResponseMsg* out);

// ------------------------------------------------------- coordinator <-> site

/// Phase-0 message of the distributed protocol: one keyhole subquery for
/// one site (net/site_transport.h carries it over sockets).
struct SiteSubqueryMsg {
  LocalQuerySpec spec;
};

/// Phase-2 message: the site's small border-to-border path relation.
struct SiteResultMsg {
  FragmentId fragment = 0;
  Relation paths;
};

std::string EncodeSiteSubquery(const SiteSubqueryMsg& msg);
Status DecodeSiteSubquery(std::string_view payload, SiteSubqueryMsg* out);

std::string EncodeSiteResult(const SiteResultMsg& msg);
Status DecodeSiteResult(std::string_view payload, SiteResultMsg* out);

}  // namespace tcf
