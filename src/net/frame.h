// The framing layer of the tcfrag wire protocol: every message on a
// connection is one length-prefixed frame —
//
//   offset size  field
//   0      4     magic          0x54434652 ("TCFR", little-endian u32)
//   4      1     version        kProtocolVersion
//   5      1     type           MessageType
//   6      2     flags          reserved, must be zero
//   8      8     request_id     u64, chosen by the requester; responses
//                               echo it, which is what makes PIPELINING
//                               work (many requests in flight per
//                               connection, answered in any order)
//   16     4     payload_length u32, bytes following the header
//
// The error-isolation contract starts here: DecodeFrameHeader validates
// magic, version, flags, and the payload bound and reports failures as a
// clean Status — a hostile or truncated header can refuse to parse but can
// never make the decoder read past the bytes it was given (see
// net/wire.h). Payload-level decode errors are the next layer up
// (net/protocol.h) and fail only their own request; header-level errors
// poison the stream (framing can no longer be trusted) and cost the
// connection — never the process.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace tcf {

inline constexpr uint32_t kFrameMagic = 0x54434652;  // "TCFR"
inline constexpr uint8_t kProtocolVersion = 1;
inline constexpr size_t kFrameHeaderSize = 20;
/// Hard codec-level payload cap; endpoints usually configure a tighter
/// one (ServerOptions::max_payload_bytes). Site-transport result
/// relations are the biggest legitimate payloads.
inline constexpr size_t kMaxPayloadBytes = 16u << 20;

/// Every message kind that can travel in a frame.
enum class MessageType : uint8_t {
  kPing = 1,           // liveness probe, empty payload
  kPong = 2,           // reply to kPing, empty payload
  kQueryRequest = 3,   // shortest-path query (net/protocol.h)
  kQueryResponse = 4,  // its answer
  kUpdateRequest = 5,  // one EdgeUpdate
  kUpdateResponse = 6, // the epoch that applied it
  kError = 7,          // clean failure of the echoed request id
  kSiteSubquery = 8,   // coordinator -> site (net/site_transport.h)
  kSiteResult = 9,     // site -> coordinator
};

const char* MessageTypeName(MessageType type);

struct FrameHeader {
  uint8_t version = kProtocolVersion;
  MessageType type = MessageType::kPing;
  uint64_t request_id = 0;
  uint32_t payload_size = 0;
};

/// Appends the 20-byte header followed by `payload` to `out`.
/// TCF_CHECKs the payload against kMaxPayloadBytes — oversize is a
/// programming error on the sending side (the receiving side handles it
/// as data, via DecodeFrameHeader).
void AppendFrame(MessageType type, uint64_t request_id,
                 std::string_view payload, std::string* out);

/// Convenience: one frame as a fresh buffer.
std::string EncodeFrame(MessageType type, uint64_t request_id,
                        std::string_view payload);

/// Parses and validates the first kFrameHeaderSize bytes of
/// `[data, data+size)`. Errors, in checking order:
///   - kInvalidArgument: short buffer, bad magic, or nonzero flags,
///   - kFailedPrecondition: protocol version mismatch,
///   - kOutOfRange: payload_length exceeds max_payload.
/// The type byte is NOT range-checked here: unknown types frame correctly
/// (length-prefixed), so the endpoint can fail just that request.
Status DecodeFrameHeader(const uint8_t* data, size_t size,
                         size_t max_payload, FrameHeader* out);

class Socket;

/// One decoded frame off a socket.
struct Frame {
  FrameHeader header;
  std::vector<uint8_t> payload;

  std::string_view payload_view() const {
    return {reinterpret_cast<const char*>(payload.data()), payload.size()};
  }
};

/// Writes one frame to the socket (header + payload, full write).
Status WriteFrame(const Socket& socket, MessageType type, uint64_t request_id,
                  std::string_view payload);

/// Reads exactly one frame. Error taxonomy, which the connection loops
/// dispatch on:
///   - kNotFound "connection closed": clean EOF at a frame boundary (the
///     peer finished) — not a protocol violation,
///   - kIOError: socket error or EOF in the middle of a frame (truncated),
///   - header validation errors as in DecodeFrameHeader.
Result<Frame> ReadFrame(const Socket& socket, size_t max_payload);

}  // namespace tcf
