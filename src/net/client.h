// Client side of the tcfrag wire protocol: one TCP connection to a
// tcfragd server, with both a blocking RPC surface and a PIPELINED async
// surface — Submit* returns immediately with a std::future, any number of
// requests may be in flight, and a background demux thread matches
// response frames back to their futures by request id (responses may
// arrive in any order). All failures — transport errors, per-request
// kError frames, a dropped connection — surface as non-OK Status values
// inside the returned Result; the client never throws and a broken
// connection fails every in-flight future instead of hanging it.
//
// Thread-safety: all public methods may be called from any number of
// threads (sends are serialized internally; the demux map has its own
// lock).
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "dsa/batch.h"
#include "dsa/maintenance.h"
#include "net/frame.h"
#include "net/socket.h"

namespace tcf {

struct ClientOptions {
  /// Per-frame payload cap for inbound response frames.
  size_t max_payload_bytes = 1 << 20;
};

class Client {
 public:
  /// Connects and starts the demux thread.
  static Result<std::unique_ptr<Client>> Connect(const std::string& host,
                                                 uint16_t port,
                                                 ClientOptions options = {});
  /// Closes (failing any in-flight requests) and joins the demux thread.
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Pipelined shortest-path cost query: returns at once, the future
  /// resolves when the response frame arrives. The value is the cost
  /// (kInfinity when unconnected) or the server's error as a Status.
  std::future<Result<Weight>> SubmitShortestPath(NodeId from, NodeId to);

  /// Blocking wrapper: one round trip.
  Result<Weight> ShortestPathCost(NodeId from, NodeId to);

  /// Pipelined edge update; resolves to the maintenance epoch that
  /// applied it (see QueryService::SubmitUpdate for the ordering
  /// guarantee the epoch conveys).
  std::future<Result<uint64_t>> SubmitUpdate(const EdgeUpdate& update);

  /// Blocking liveness probe.
  Status Ping();

  /// Half-closes the connection and fails every in-flight future with an
  /// IOError. Idempotent; implied by the destructor.
  void Close();

 private:
  Client(Socket socket, ClientOptions options);

  /// One in-flight request awaiting its response frame.
  struct PendingCall {
    MessageType expect = MessageType::kPong;
    std::promise<Result<Weight>> cost;     // expect == kQueryResponse
    std::promise<Result<uint64_t>> epoch;  // kUpdateResponse and kPong
  };

  /// Registers the call under a fresh request id and writes the frame;
  /// on a write failure the call is immediately failed instead.
  void Dispatch(MessageType type, const std::string& payload,
                PendingCall call);
  void DemuxLoop();
  /// Fails `call` (whatever its expectation) with `status`.
  static void FailCall(PendingCall* call, const Status& status);
  /// Fulfills `call` from a received frame payload.
  void CompleteCall(PendingCall* call, MessageType type,
                    std::string_view payload);
  void FailAllPending(const Status& status);

  Socket socket_;
  ClientOptions options_;
  std::thread demux_thread_;

  std::mutex send_mutex_;  // serializes socket writes

  std::mutex state_mutex_;  // guards the two fields below
  std::unordered_map<uint64_t, PendingCall> pending_;
  bool closed_ = false;

  std::atomic<uint64_t> next_request_id_{1};
};

}  // namespace tcf
