#include "net/frame.h"

#include "net/socket.h"
#include "net/wire.h"

namespace tcf {

const char* MessageTypeName(MessageType type) {
  switch (type) {
    case MessageType::kPing: return "Ping";
    case MessageType::kPong: return "Pong";
    case MessageType::kQueryRequest: return "QueryRequest";
    case MessageType::kQueryResponse: return "QueryResponse";
    case MessageType::kUpdateRequest: return "UpdateRequest";
    case MessageType::kUpdateResponse: return "UpdateResponse";
    case MessageType::kError: return "Error";
    case MessageType::kSiteSubquery: return "SiteSubquery";
    case MessageType::kSiteResult: return "SiteResult";
  }
  return "Unknown";
}

void AppendFrame(MessageType type, uint64_t request_id,
                 std::string_view payload, std::string* out) {
  TCF_CHECK_MSG(payload.size() <= kMaxPayloadBytes,
                "frame payload exceeds the codec cap");
  WireWriter w;
  w.PutU32(kFrameMagic);
  w.PutU8(kProtocolVersion);
  w.PutU8(static_cast<uint8_t>(type));
  w.PutU16(0);  // flags
  w.PutU64(request_id);
  w.PutU32(static_cast<uint32_t>(payload.size()));
  out->append(w.buffer());
  out->append(payload);
}

std::string EncodeFrame(MessageType type, uint64_t request_id,
                        std::string_view payload) {
  std::string out;
  out.reserve(kFrameHeaderSize + payload.size());
  AppendFrame(type, request_id, payload, &out);
  return out;
}

Status DecodeFrameHeader(const uint8_t* data, size_t size,
                         size_t max_payload, FrameHeader* out) {
  WireReader r(data, size);
  uint32_t magic = 0;
  uint16_t flags = 0;
  uint8_t type = 0;
  uint32_t payload_size = 0;
  if (!r.ReadU32(&magic) || !r.ReadU8(&out->version) || !r.ReadU8(&type) ||
      !r.ReadU16(&flags) || !r.ReadU64(&out->request_id) ||
      !r.ReadU32(&payload_size)) {
    return Status::InvalidArgument("frame header truncated");
  }
  if (magic != kFrameMagic) {
    return Status::InvalidArgument("bad frame magic");
  }
  if (flags != 0) {
    return Status::InvalidArgument("reserved frame flags set");
  }
  if (out->version != kProtocolVersion) {
    return Status::FailedPrecondition(
        "protocol version mismatch: peer speaks v" +
        std::to_string(out->version) + ", this build speaks v" +
        std::to_string(kProtocolVersion));
  }
  if (payload_size > max_payload || payload_size > kMaxPayloadBytes) {
    return Status::OutOfRange("frame payload of " +
                              std::to_string(payload_size) +
                              " bytes exceeds the limit of " +
                              std::to_string(max_payload));
  }
  out->type = static_cast<MessageType>(type);
  out->payload_size = payload_size;
  return Status::OK();
}

Status WriteFrame(const Socket& socket, MessageType type, uint64_t request_id,
                  std::string_view payload) {
  const std::string frame = EncodeFrame(type, request_id, payload);
  return WriteAll(socket, frame.data(), frame.size());
}

Result<Frame> ReadFrame(const Socket& socket, size_t max_payload) {
  uint8_t header_bytes[kFrameHeaderSize];
  Result<size_t> got = ReadFull(socket, header_bytes, kFrameHeaderSize);
  if (!got.ok()) return got.status();
  if (got.value() == 0) return Status::NotFound("connection closed");
  if (got.value() < kFrameHeaderSize) {
    return Status::IOError("connection closed inside a frame header");
  }

  Frame frame;
  TCF_RETURN_NOT_OK(DecodeFrameHeader(header_bytes, kFrameHeaderSize,
                                      max_payload, &frame.header));
  frame.payload.resize(frame.header.payload_size);
  if (frame.header.payload_size > 0) {
    got = ReadFull(socket, frame.payload.data(), frame.payload.size());
    if (!got.ok()) return got.status();
    if (got.value() < frame.payload.size()) {
      return Status::IOError("connection closed inside a frame payload");
    }
  }
  return frame;
}

}  // namespace tcf
