#include "dsa/executor.h"

#include <future>

#include "util/timer.h"

namespace tcf {

double ExecutionReport::SlowestSiteSeconds() const {
  double worst = 0.0;
  for (const SiteReport& s : sites) worst = std::max(worst, s.seconds);
  return worst;
}

double ExecutionReport::TotalSiteSeconds() const {
  double total = 0.0;
  for (const SiteReport& s : sites) total += s.seconds;
  return total;
}

std::vector<LocalQueryResult> RunSites(
    const Fragmentation& frag, const ComplementaryInfo* complementary,
    const std::vector<LocalQuerySpec>& specs, LocalEngine engine,
    ThreadPool* pool, ExecutionReport* report) {
  std::vector<LocalQueryResult> results(specs.size());
  std::vector<double> seconds(specs.size(), 0.0);

  WallTimer phase_timer;
  auto run_one = [&](size_t i) {
    WallTimer site_timer;
    results[i] = RunLocalQuery(frag, complementary, specs[i], engine);
    seconds[i] = site_timer.ElapsedSeconds();
  };
  if (pool != nullptr) {
    pool->ParallelFor(specs.size(), run_one);
  } else {
    for (size_t i = 0; i < specs.size(); ++i) run_one(i);
  }
  const double wall = phase_timer.ElapsedSeconds();

  if (report != nullptr) {
    report->phase1_wall_seconds += wall;
    for (size_t i = 0; i < specs.size(); ++i) {
      SiteReport site;
      site.fragment = specs[i].fragment;
      site.stats = results[i].stats;
      site.seconds = seconds[i];
      site.result_tuples = results[i].paths.size();
      report->phase1_cpu_seconds += site.seconds;
      report->communication_tuples += site.result_tuples;
      report->sites.push_back(std::move(site));
    }
  }
  return results;
}

Relation AssembleChain(const std::vector<const Relation*>& chain_results,
                       ExecutionReport* report) {
  TCF_CHECK(!chain_results.empty());
  WallTimer timer;
  Relation acc = *chain_results.front();
  for (size_t i = 1; i < chain_results.size(); ++i) {
    size_t join_tuples = 0;
    acc = JoinMinPlus(acc, *chain_results[i], &join_tuples);
    if (report != nullptr) report->assembly_join_tuples += join_tuples;
  }
  if (report != nullptr) report->assembly_seconds += timer.ElapsedSeconds();
  return acc;
}

}  // namespace tcf
