#include "dsa/executor.h"

#include <algorithm>
#include <atomic>
#include <unordered_map>

#include "graph/algorithms.h"
#include "util/timer.h"

namespace tcf {

double ExecutionReport::SlowestSiteSeconds() const {
  double worst = 0.0;
  for (const SiteReport& s : sites) worst = std::max(worst, s.seconds);
  return worst;
}

double ExecutionReport::TotalSiteSeconds() const {
  double total = 0.0;
  for (const SiteReport& s : sites) total += s.seconds;
  return total;
}

void ExecutionReport::Merge(const ExecutionReport& other) {
  sites.insert(sites.end(), other.sites.begin(), other.sites.end());
  phase1_wall_seconds += other.phase1_wall_seconds;
  phase1_cpu_seconds += other.phase1_cpu_seconds;
  assembly_seconds += other.assembly_seconds;
  assembly_join_tuples += other.assembly_join_tuples;
  communication_tuples += other.communication_tuples;
}

SpecKey MakeSpecKey(const LocalQuerySpec& spec) {
  auto sorted = [](const NodeSet& s) {
    std::vector<NodeId> v(s.begin(), s.end());
    std::sort(v.begin(), v.end());
    return v;
  };
  return std::make_tuple(spec.fragment, sorted(spec.sources),
                         sorted(spec.targets));
}

LocalQuerySpec SpecFromKey(const SpecKey& key) {
  LocalQuerySpec spec;
  spec.fragment = std::get<0>(key);
  spec.sources = NodeSet(std::get<1>(key).begin(), std::get<1>(key).end());
  spec.targets = NodeSet(std::get<2>(key).begin(), std::get<2>(key).end());
  return spec;
}

size_t SpecKeyHash::operator()(const SpecKey& key) const {
  // FNV-ish combine; the node lists are sorted, so equal specs always
  // produce equal hashes.
  uint64_t h = 0x9e3779b97f4a7c15ull ^ std::get<0>(key);
  auto mix = [&h](const std::vector<NodeId>& nodes) {
    h ^= nodes.size() + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    for (NodeId n : nodes) {
      h ^= n + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    }
  };
  mix(std::get<1>(key));
  mix(std::get<2>(key));
  return static_cast<size_t>(h);
}

size_t SpecTable::Intern(SpecKey key) {
  auto it = index_.find(key);
  if (it == index_.end()) {
    specs_.push_back(SpecFromKey(key));
    it = index_.emplace(std::move(key), specs_.size() - 1).first;
  }
  return it->second;
}

ShardedSpecTable::ShardedSpecTable(size_t num_shards) : table_(num_shards) {}

size_t ShardedSpecTable::Intern(SpecKey key) {
  auto result = table_.Intern(
      std::move(key), [](const SpecKey& k) { return SpecFromKey(k); });
  return static_cast<size_t>(result.handle);
}

size_t ShardedSpecTable::Flat::IndexOf(size_t ref) const {
  using Table = ShardedTable<SpecKey, LocalQuerySpec, SpecKeyHash>;
  return offsets[Table::ShardOf(ref)] + Table::SlotOf(ref);
}

ShardedSpecTable::Flat ShardedSpecTable::Flatten() {
  auto flattened = table_.Flatten();
  Flat flat;
  flat.specs = std::move(flattened.values);
  flat.offsets = std::move(flattened.offsets);
  return flat;
}

namespace {

// Appends one chain to `plan`: stamp the query constants into the hop
// templates and intern one subquery per hop — shared between chains
// (and, via a shared sink, between batched queries) when identical, so a
// fragment computes each selection once.
void StampChain(const FragmentChain& chain,
                const std::vector<HopTemplate>& hops, NodeId from, NodeId to,
                SpecSink* specs, QueryPlan* plan) {
  plan->chains.push_back(chain);
  std::vector<size_t>& refs = plan->chain_specs.emplace_back();
  refs.reserve(hops.size());
  for (const HopTemplate& hop : hops) {
    SpecKey key(hop.fragment,
                hop.source_is_endpoint ? std::vector<NodeId>{from}
                                       : hop.sources,
                hop.target_is_endpoint ? std::vector<NodeId>{to}
                                       : hop.targets);
    refs.push_back(specs->Intern(std::move(key)));
  }
}

// The reverse-orientation twin of StampChain, used when a plan cached for
// (a, b) serves a (b, a) query: the chain is traversed back-to-front and
// each hop's source/target roles swap. A hop's fixed selections are
// disconnection sets, which are symmetric, so the reversed hop's sources
// are exactly the original hop's targets; the original first hop's
// endpoint slot (the cached plan's `from`) becomes the reversed last
// hop's target, stamped with the caller's `to` — which IS the cached
// `from`, so the stamped constants are the same nodes, just on swapped
// sides.
void StampChainReversed(const FragmentChain& chain,
                        const std::vector<HopTemplate>& hops, NodeId from,
                        NodeId to, SpecSink* specs, QueryPlan* plan) {
  plan->chains.emplace_back(chain.rbegin(), chain.rend());
  std::vector<size_t>& refs = plan->chain_specs.emplace_back();
  refs.reserve(hops.size());
  for (auto it = hops.rbegin(); it != hops.rend(); ++it) {
    const HopTemplate& hop = *it;
    SpecKey key(hop.fragment,
                hop.target_is_endpoint ? std::vector<NodeId>{from}
                                       : hop.targets,
                hop.source_is_endpoint ? std::vector<NodeId>{to}
                                       : hop.sources);
    refs.push_back(specs->Intern(std::move(key)));
  }
}

}  // namespace

QueryPlan InstantiateInternedPlan(const InternedPlan& plan, NodeId from,
                                  NodeId to, SpecSink* specs) {
  TCF_CHECK(specs != nullptr);
  const bool forward = from == plan.from && to == plan.to;
  TCF_CHECK_MSG(forward || (from == plan.to && to == plan.from),
                "interned plan endpoints do not match the query");
  QueryPlan out;
  out.chains.reserve(plan.num_chains());
  out.chain_specs.reserve(plan.num_chains());
  for (size_t c = 0; c < plan.num_chains(); ++c) {
    if (forward) {
      StampChain(plan.chain(c), plan.hops(c), from, to, specs, &out);
    } else {
      StampChainReversed(plan.chain(c), plan.hops(c), from, to, specs, &out);
    }
  }
  return out;
}

QueryPlan BuildQueryPlan(const Fragmentation& frag, NodeId from, NodeId to,
                         size_t max_chains, ChainPlanCache* chain_cache,
                         SpecSink* specs) {
  TCF_CHECK(specs != nullptr);
  TCF_CHECK(from != to);

  if (chain_cache != nullptr) {
    bool was_hit = false;
    std::shared_ptr<const InternedPlan> interned =
        chain_cache->PlanFor(frag, from, to, max_chains, &was_hit);
    QueryPlan plan = InstantiateInternedPlan(*interned, from, to, specs);
    if (!was_hit) {
      // The skeleton lookups happened inside BuildInternedPlan on behalf
      // of this call; a cache hit performed none.
      plan.cache_hits = interned->cache_hits;
      plan.cache_misses = interned->cache_misses;
    }
    return plan;
  }

  QueryPlan plan;
  // Locate the query constants; a border node lives in several fragments
  // and every one of them is a valid chain endpoint.
  for (FragmentId fa : frag.FragmentsOfNode(from)) {
    for (FragmentId fb : frag.FragmentsOfNode(to)) {
      const PlanSkeleton skeleton = BuildPlanSkeleton(frag, fa, fb, max_chains);
      for (size_t c = 0; c < skeleton.chains.size(); ++c) {
        if (std::find(plan.chains.begin(), plan.chains.end(),
                      skeleton.chains[c]) != plan.chains.end()) {
          continue;
        }
        StampChain(skeleton.chains[c], skeleton.hops[c], from, to, specs,
                   &plan);
      }
    }
  }
  return plan;
}

ParallelPlanResult PlanBatchInParallel(
    const Fragmentation& frag,
    const std::vector<std::pair<NodeId, NodeId>>& endpoints,
    size_t max_chains, ChainPlanCache* chain_cache, ThreadPool* pool) {
  ParallelPlanResult out;
  out.plans.assign(endpoints.size(), nullptr);
  out.memo = std::make_unique<
      ShardedTable<uint64_t, QueryPlan, PairKeyHash>>();
  ShardedSpecTable specs;
  std::atomic<size_t> memo_hits{0};
  std::atomic<size_t> interned_hits{0};
  std::atomic<size_t> interned_misses{0};

  // Three layers of reuse keep the coordinator scalable: the per-batch
  // plan memo interns whole plans by (from, to) — repeats (hot-pair
  // traffic) skip even spec interning — the cross-batch interned-plan
  // cache (inside chain_cache) hands back skeleton-relative plans
  // interned by *earlier* batches so hot pairs skip chain lookup and
  // dedup entirely, and the sharded spec table interns keyhole subqueries
  // without a global lock, so identical selections within a query's
  // chains or across queries are computed once. Plan refs stay
  // shard-encoded until the table is sealed below.
  auto build_plan = [&](NodeId from, NodeId to) {
    if (chain_cache == nullptr) {
      return BuildQueryPlan(frag, from, to, max_chains, nullptr, &specs);
    }
    bool plan_hit = false;
    std::shared_ptr<const InternedPlan> interned =
        chain_cache->PlanFor(frag, from, to, max_chains, &plan_hit);
    QueryPlan plan = InstantiateInternedPlan(*interned, from, to, &specs);
    if (plan_hit) {
      interned_hits.fetch_add(1, std::memory_order_relaxed);
    } else {
      interned_misses.fetch_add(1, std::memory_order_relaxed);
      plan.cache_hits = interned->cache_hits;
      plan.cache_misses = interned->cache_misses;
    }
    return plan;
  };
  auto plan_range = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const auto [from, to] = endpoints[i];
      if (from == to) continue;
      auto interned = out.memo->Intern(
          PairKey(from, to),
          [&](const uint64_t&) { return build_plan(from, to); });
      out.plans[i] = interned.value;
      if (!interned.inserted) {
        memo_hits.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };
  if (pool != nullptr) {
    pool->ParallelForRanges(endpoints.size(), plan_range);
  } else {
    plan_range(0, endpoints.size());
  }

  // Seal the sharded table into the flat spec vector phase 1 consumes,
  // and rewrite each distinct plan's shard handles to flat indices —
  // once per plan, not per endpoint pair.
  out.flat = specs.Flatten();
  out.memo->ForEach([&](QueryPlan& plan) {
    for (std::vector<size_t>& hops : plan.chain_specs) {
      for (size_t& ref : hops) ref = out.flat.IndexOf(ref);
    }
    out.cache_hits += plan.cache_hits;
    out.cache_misses += plan.cache_misses;
  });
  out.memo_hits = memo_hits.load(std::memory_order_relaxed);
  out.interned_plan_hits = interned_hits.load(std::memory_order_relaxed);
  out.interned_plan_misses = interned_misses.load(std::memory_order_relaxed);
  return out;
}

std::vector<FragmentId> InvolvedFragments(
    const Fragmentation& frag, const QueryPlan& plan,
    const std::vector<LocalQuerySpec>& specs) {
  std::vector<char> involved(frag.NumFragments(), 0);
  for (const std::vector<size_t>& hops : plan.chain_specs) {
    for (size_t idx : hops) involved[specs[idx].fragment] = 1;
  }
  std::vector<FragmentId> out;
  for (FragmentId f = 0; f < frag.NumFragments(); ++f) {
    if (involved[f]) out.push_back(f);
  }
  return out;
}

std::vector<LocalQueryResult> RunSites(
    const Fragmentation& frag, const ComplementaryInfo* complementary,
    const std::vector<LocalQuerySpec>& specs, LocalEngine engine,
    ThreadPool* pool, ExecutionReport* report) {
  std::vector<LocalQueryResult> results(specs.size());
  std::vector<double> seconds(specs.size(), 0.0);

  WallTimer phase_timer;
  auto run_one = [&](size_t i) {
    WallTimer site_timer;
    results[i] = RunLocalQuery(frag, complementary, specs[i], engine);
    seconds[i] = site_timer.ElapsedSeconds();
  };
  if (pool != nullptr) {
    pool->ParallelFor(specs.size(), run_one);
  } else {
    for (size_t i = 0; i < specs.size(); ++i) run_one(i);
  }
  const double wall = phase_timer.ElapsedSeconds();

  if (report != nullptr) {
    report->phase1_wall_seconds += wall;
    for (size_t i = 0; i < specs.size(); ++i) {
      SiteReport site;
      site.fragment = specs[i].fragment;
      site.stats = results[i].stats;
      site.seconds = seconds[i];
      site.result_tuples = results[i].paths.size();
      report->phase1_cpu_seconds += site.seconds;
      report->communication_tuples += site.result_tuples;
      report->sites.push_back(std::move(site));
    }
  }
  return results;
}

namespace {

// First failure among the phase-1 results a plan consumes (OK when all
// its subqueries read their storage cleanly). Assembly over a failed
// subquery would compute a confidently wrong answer from partial paths.
Status PlanResultsStatus(const QueryPlan& plan,
                         const std::vector<LocalQueryResult>& results) {
  for (const std::vector<size_t>& hops : plan.chain_specs) {
    for (size_t idx : hops) {
      if (!results[idx].status.ok()) return results[idx].status;
    }
  }
  return Status::OK();
}

}  // namespace

Relation AssembleChain(const std::vector<const Relation*>& chain_results,
                       ExecutionReport* report) {
  TCF_CHECK(!chain_results.empty());
  WallTimer timer;
  Relation acc = *chain_results.front();
  for (size_t i = 1; i < chain_results.size(); ++i) {
    size_t join_tuples = 0;
    acc = JoinMinPlus(acc, *chain_results[i], &join_tuples);
    if (report != nullptr) report->assembly_join_tuples += join_tuples;
  }
  if (report != nullptr) report->assembly_seconds += timer.ElapsedSeconds();
  return acc;
}

QueryAnswer AssembleCostAnswer(const Fragmentation& frag,
                               const QueryPlan& plan,
                               const std::vector<LocalQuerySpec>& specs,
                               NodeId from, NodeId to,
                               const std::vector<LocalQueryResult>& results,
                               ExecutionReport* report) {
  QueryAnswer answer;
  answer.chains_considered = plan.chains.size();
  if (plan.chains.empty()) return answer;
  answer.fragments_involved = InvolvedFragments(frag, plan, specs);
  answer.status = PlanResultsStatus(plan, results);
  if (!answer.status.ok()) return answer;

  // Assemble each chain; the overall best is the answer.
  for (size_t c = 0; c < plan.chains.size(); ++c) {
    std::vector<const Relation*> hop_results;
    hop_results.reserve(plan.chain_specs[c].size());
    for (size_t idx : plan.chain_specs[c]) {
      hop_results.push_back(&results[idx].paths);
    }
    Relation final = AssembleChain(hop_results, report);
    const Weight cost = final.BestCost(from, to);
    if (cost < answer.cost) answer.cost = cost;
  }
  answer.connected = answer.cost != kInfinity;
  return answer;
}

RouteAnswer AssembleRouteAnswer(const Fragmentation& frag,
                                const ComplementaryInfo& complementary,
                                const QueryPlan& plan,
                                const std::vector<LocalQuerySpec>& specs,
                                NodeId from, NodeId to,
                                const std::vector<LocalQueryResult>& results,
                                ExecutionReport* report) {
  RouteAnswer out;
  out.answer.chains_considered = plan.chains.size();
  if (plan.chains.empty()) return out;
  out.answer.fragments_involved = InvolvedFragments(frag, plan, specs);
  out.answer.status = PlanResultsStatus(plan, results);
  if (!out.answer.status.ok()) return out;
  WallTimer timer;

  // Dynamic program over each chain's relay layers, keeping predecessors.
  // Layers: {from}, DS_1, ..., DS_{m-1}, {to}; hop i's relation connects
  // layer i to layer i+1.
  size_t best_chain = 0;
  Weight best_cost = kInfinity;
  std::vector<NodeId> best_relays;  // relay node at each layer boundary
  for (size_t c = 0; c < plan.chains.size(); ++c) {
    const auto& hop_specs = plan.chain_specs[c];
    std::unordered_map<NodeId, Weight> dist = {{from, 0.0}};
    std::vector<std::unordered_map<NodeId, NodeId>> pred(hop_specs.size());
    for (size_t i = 0; i < hop_specs.size(); ++i) {
      const Relation& rel = results[hop_specs[i]].paths;
      std::unordered_map<NodeId, Weight> next;
      rel.ForEach([&](const PathTuple& t) {
        auto it = dist.find(t.src);
        if (it == dist.end()) return;
        const Weight d = it->second + t.cost;
        auto [slot, inserted] = next.emplace(t.dst, d);
        if (inserted || d < slot->second) {
          slot->second = d;
          pred[i][t.dst] = t.src;
        }
      });
      dist = std::move(next);
    }
    auto it = dist.find(to);
    if (it == dist.end() || it->second >= best_cost) continue;
    best_cost = it->second;
    best_chain = c;
    // Backtrack the relay sequence from..to.
    std::vector<NodeId> relays(hop_specs.size() + 1);
    relays.back() = to;
    for (size_t i = hop_specs.size(); i-- > 0;) {
      relays[i] = pred[i].at(relays[i + 1]);
    }
    best_relays = std::move(relays);
  }

  out.answer.cost = best_cost;
  out.answer.connected = best_cost != kInfinity;
  if (!out.answer.connected) {
    if (report != nullptr) report->assembly_seconds += timer.ElapsedSeconds();
    return out;
  }

  // Expand each leg inside its fragment's augmented graph; shortcut hops
  // (edge ids past the real-edge count) are replaced by their witnesses.
  const FragmentChain& chain = plan.chains[best_chain];
  out.route = {from};
  for (size_t i = 0; i < chain.size(); ++i) {
    const NodeId u = best_relays[i];
    const NodeId v = best_relays[i + 1];
    if (u == v) continue;  // pass-through at a shared border node
    size_t real_edges = 0;
    Result<Graph> built = BuildAugmentedFragment(frag, &complementary,
                                                 chain[i], &real_edges);
    if (!built.ok()) {
      // The re-expansion re-reads the shortcut store; a read failure here
      // fails the route query just like a phase-1 failure would.
      out.answer = QueryAnswer();
      out.answer.chains_considered = plan.chains.size();
      out.answer.status = built.status();
      out.route.clear();
      if (report != nullptr) {
        report->assembly_seconds += timer.ElapsedSeconds();
      }
      return out;
    }
    const Graph augmented = std::move(built).value();
    ShortestPaths sp = Dijkstra(augmented, u);
    TCF_CHECK_MSG(sp.distance[v] != kInfinity,
                  "relay pair unreachable during reconstruction");
    std::vector<NodeId> nodes = sp.PathTo(v);
    std::vector<EdgeId> edges = sp.EdgesTo(v);
    for (size_t k = 0; k < edges.size(); ++k) {
      if (edges[k] < real_edges) {
        out.route.push_back(nodes[k + 1]);
      } else {
        const auto& witness =
            complementary.witness.at(PairKey(nodes[k], nodes[k + 1]));
        out.route.insert(out.route.end(), witness.begin() + 1, witness.end());
      }
    }
  }
  if (report != nullptr) report->assembly_seconds += timer.ElapsedSeconds();
  return out;
}

}  // namespace tcf
