#include "dsa/chains.h"

#include <algorithm>

namespace tcf {

namespace {

void Dfs(const Fragmentation& frag, FragmentId current, FragmentId target,
         std::vector<FragmentId>* path, std::vector<char>* on_path,
         std::vector<FragmentChain>* out, size_t max_chains) {
  if (out->size() >= max_chains) return;
  if (current == target) {
    out->push_back(*path);
    return;
  }
  for (FragmentId next : frag.FragmentNeighbors(current)) {
    if ((*on_path)[next]) continue;
    (*on_path)[next] = 1;
    path->push_back(next);
    Dfs(frag, next, target, path, on_path, out, max_chains);
    path->pop_back();
    (*on_path)[next] = 0;
  }
}

}  // namespace

std::vector<FragmentChain> FindChains(const Fragmentation& frag,
                                      FragmentId from, FragmentId to,
                                      size_t max_chains) {
  TCF_CHECK(from < frag.NumFragments() && to < frag.NumFragments());
  TCF_CHECK(max_chains >= 1);
  std::vector<FragmentChain> chains;
  std::vector<FragmentId> path = {from};
  std::vector<char> on_path(frag.NumFragments(), 0);
  on_path[from] = 1;
  Dfs(frag, from, to, &path, &on_path, &chains, max_chains);
  std::stable_sort(chains.begin(), chains.end(),
                   [](const FragmentChain& a, const FragmentChain& b) {
                     if (a.size() != b.size()) return a.size() < b.size();
                     return a < b;
                   });
  return chains;
}

PlanSkeleton BuildPlanSkeleton(const Fragmentation& frag, FragmentId from,
                               FragmentId to, size_t max_chains) {
  PlanSkeleton skeleton;
  skeleton.chains = FindChains(frag, from, to, max_chains);
  skeleton.hops.resize(skeleton.chains.size());
  auto ds_nodes = [&](FragmentId a, FragmentId b) {
    const DisconnectionSet* ds = frag.FindDisconnectionSet(a, b);
    TCF_CHECK_MSG(ds != nullptr, "chain hop without disconnection set");
    return ds->nodes;  // already sorted
  };
  for (size_t c = 0; c < skeleton.chains.size(); ++c) {
    const FragmentChain& chain = skeleton.chains[c];
    skeleton.hops[c].reserve(chain.size());
    for (size_t i = 0; i < chain.size(); ++i) {
      HopTemplate hop;
      hop.fragment = chain[i];
      if (i == 0) {
        hop.source_is_endpoint = true;
      } else {
        hop.sources = ds_nodes(chain[i - 1], chain[i]);
      }
      if (i + 1 == chain.size()) {
        hop.target_is_endpoint = true;
      } else {
        hop.targets = ds_nodes(chain[i], chain[i + 1]);
      }
      skeleton.hops[c].push_back(std::move(hop));
    }
  }
  return skeleton;
}

ChainPlanCache::ChainPlanCache(size_t capacity, size_t plan_capacity)
    : cache_(capacity) {
  if (plan_capacity > 0) {
    plan_cache_ = std::make_unique<
        LruCache<uint64_t, InternedPlan, PairKeyHash>>(plan_capacity);
  }
}

std::shared_ptr<const PlanSkeleton> ChainPlanCache::SkeletonFor(
    const Fragmentation& frag, FragmentId from, FragmentId to,
    size_t max_chains, bool* was_hit_out) {
  const uint64_t key = (static_cast<uint64_t>(from) << 32) | to;
  return cache_.GetOrCompute(
      key,
      [&]() {
        return std::make_shared<const PlanSkeleton>(
            BuildPlanSkeleton(frag, from, to, max_chains));
      },
      was_hit_out);
}

std::shared_ptr<const std::vector<FragmentChain>>
ChainPlanCache::ChainsBetween(const Fragmentation& frag, FragmentId from,
                              FragmentId to, size_t max_chains,
                              bool* was_hit_out) {
  std::shared_ptr<const PlanSkeleton> skeleton =
      SkeletonFor(frag, from, to, max_chains, was_hit_out);
  return std::shared_ptr<const std::vector<FragmentChain>>(
      skeleton, &skeleton->chains);
}

InternedPlan BuildInternedPlan(const Fragmentation& frag, NodeId from,
                               NodeId to, size_t max_chains,
                               ChainPlanCache* cache) {
  TCF_CHECK(cache != nullptr);
  TCF_CHECK(from != to);
  InternedPlan plan;
  plan.from = from;
  plan.to = to;

  // A border node lives in several fragments and every one of them is a
  // valid chain endpoint; chains shared between the endpoint-pair
  // skeletons are deduplicated here, once, in first-seen order — the same
  // order the per-batch planner used to produce, so instantiated plans
  // are bit-identical to directly built ones.
  for (FragmentId fa : frag.FragmentsOfNode(from)) {
    for (FragmentId fb : frag.FragmentsOfNode(to)) {
      bool was_hit = false;
      std::shared_ptr<const PlanSkeleton> skeleton =
          cache->SkeletonFor(frag, fa, fb, max_chains, &was_hit);
      (was_hit ? plan.cache_hits : plan.cache_misses) += 1;
      const uint32_t skeleton_index =
          static_cast<uint32_t>(plan.skeletons.size());
      plan.skeletons.push_back(skeleton);
      for (size_t c = 0; c < skeleton->chains.size(); ++c) {
        const FragmentChain& chain = skeleton->chains[c];
        bool seen = false;
        for (size_t i = 0; i < plan.num_chains() && !seen; ++i) {
          seen = plan.chain(i) == chain;
        }
        if (seen) continue;
        plan.chain_refs.push_back(
            InternedPlan::ChainRef{skeleton_index, static_cast<uint32_t>(c)});
      }
    }
  }
  return plan;
}

namespace {

bool ChainTouchesDirty(const FragmentChain& chain,
                       const std::vector<bool>& dirty_fragment) {
  for (FragmentId f : chain) {
    if (f < dirty_fragment.size() && dirty_fragment[f]) return true;
  }
  return false;
}

}  // namespace

ChainPlanCache::EpochCarry ChainPlanCache::NextEpoch(
    const std::vector<bool>& dirty_fragment,
    const std::vector<bool>& endpoint_changed, uint64_t new_epoch) const {
  EpochCarry carry;
  carry.cache =
      std::make_unique<ChainPlanCache>(cache_.capacity(), plan_capacity());
  carry.cache->epoch_ = new_epoch;

  cache_.ForEachOldestFirst(
      [&](uint64_t key, const std::shared_ptr<const PlanSkeleton>& skeleton) {
        for (const FragmentChain& chain : skeleton->chains) {
          if (ChainTouchesDirty(chain, dirty_fragment)) {
            ++carry.skeletons_dropped;
            return;
          }
        }
        ++carry.skeletons_kept;
        carry.cache->cache_.Put(key, skeleton);
      });

  if (plan_cache_ != nullptr) {
    plan_cache_->ForEachOldestFirst(
        [&](uint64_t key, const std::shared_ptr<const InternedPlan>& plan) {
          bool valid = plan->from >= endpoint_changed.size() ||
                       !endpoint_changed[plan->from];
          valid = valid && (plan->to >= endpoint_changed.size() ||
                            !endpoint_changed[plan->to]);
          for (size_t i = 0; valid && i < plan->num_chains(); ++i) {
            valid = !ChainTouchesDirty(plan->chain(i), dirty_fragment);
          }
          if (!valid) {
            ++carry.plans_dropped;
            return;
          }
          ++carry.plans_kept;
          carry.cache->plan_cache_->Put(key, plan);
        });
  }
  return carry;
}

std::shared_ptr<const InternedPlan> ChainPlanCache::PlanFor(
    const Fragmentation& frag, NodeId from, NodeId to, size_t max_chains,
    bool* was_hit_out) {
  if (plan_cache_ == nullptr) {
    if (was_hit_out != nullptr) *was_hit_out = false;
    return std::make_shared<const InternedPlan>(
        BuildInternedPlan(frag, from, to, max_chains, this));
  }
  // Symmetric aliasing: (from, to) and (to, from) share one entry keyed by
  // the unordered pair. Disconnection sets are direction-free
  // (FindDisconnectionSet normalizes its arguments) and the fragmentation
  // graph is undirected, so the reverse pair's chains are exactly the
  // element-wise reversals of the stored plan's chains — the instantiator
  // reverses them on the fly (see InstantiateInternedPlan). The stored
  // plan's own from/to record which direction built it. This doubles the
  // cache's effective node-pair capacity, which matters once concurrent
  // flush workers hammer it from both directions of hot pairs.
  const NodeId lo = std::min(from, to);
  const NodeId hi = std::max(from, to);
  const uint64_t key = (static_cast<uint64_t>(lo) << 32) | hi;
  if (std::shared_ptr<const InternedPlan> hit = plan_cache_->Get(key)) {
    if (was_hit_out != nullptr) *was_hit_out = true;
    return hit;
  }
  if (was_hit_out != nullptr) *was_hit_out = false;
  // Build outside the cache lock and return OUR build even if a racer put
  // the same key first: the racer's plan is semantically identical, and
  // returning our own keeps the caller's skeleton-lookup accounting
  // (plan.cache_hits/misses) consistent with what this call really did.
  auto built = std::make_shared<const InternedPlan>(
      BuildInternedPlan(frag, from, to, max_chains, this));
  plan_cache_->Put(key, built);
  return built;
}

}  // namespace tcf
