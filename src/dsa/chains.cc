#include "dsa/chains.h"

#include <algorithm>

namespace tcf {

namespace {

void Dfs(const Fragmentation& frag, FragmentId current, FragmentId target,
         std::vector<FragmentId>* path, std::vector<char>* on_path,
         std::vector<FragmentChain>* out, size_t max_chains) {
  if (out->size() >= max_chains) return;
  if (current == target) {
    out->push_back(*path);
    return;
  }
  for (FragmentId next : frag.FragmentNeighbors(current)) {
    if ((*on_path)[next]) continue;
    (*on_path)[next] = 1;
    path->push_back(next);
    Dfs(frag, next, target, path, on_path, out, max_chains);
    path->pop_back();
    (*on_path)[next] = 0;
  }
}

}  // namespace

std::vector<FragmentChain> FindChains(const Fragmentation& frag,
                                      FragmentId from, FragmentId to,
                                      size_t max_chains) {
  TCF_CHECK(from < frag.NumFragments() && to < frag.NumFragments());
  TCF_CHECK(max_chains >= 1);
  std::vector<FragmentChain> chains;
  std::vector<FragmentId> path = {from};
  std::vector<char> on_path(frag.NumFragments(), 0);
  on_path[from] = 1;
  Dfs(frag, from, to, &path, &on_path, &chains, max_chains);
  std::stable_sort(chains.begin(), chains.end(),
                   [](const FragmentChain& a, const FragmentChain& b) {
                     if (a.size() != b.size()) return a.size() < b.size();
                     return a < b;
                   });
  return chains;
}

ChainPlanCache::ChainPlanCache(size_t capacity) : cache_(capacity) {}

std::shared_ptr<const std::vector<FragmentChain>>
ChainPlanCache::ChainsBetween(const Fragmentation& frag, FragmentId from,
                              FragmentId to, size_t max_chains,
                              bool* was_hit_out) {
  const uint64_t key = (static_cast<uint64_t>(from) << 32) | to;
  return cache_.GetOrCompute(
      key,
      [&]() {
        return std::make_shared<const std::vector<FragmentChain>>(
            FindChains(frag, from, to, max_chains));
      },
      was_hit_out);
}

}  // namespace tcf
