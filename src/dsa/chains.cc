#include "dsa/chains.h"

#include <algorithm>

namespace tcf {

namespace {

void Dfs(const Fragmentation& frag, FragmentId current, FragmentId target,
         std::vector<FragmentId>* path, std::vector<char>* on_path,
         std::vector<FragmentChain>* out, size_t max_chains) {
  if (out->size() >= max_chains) return;
  if (current == target) {
    out->push_back(*path);
    return;
  }
  for (FragmentId next : frag.FragmentNeighbors(current)) {
    if ((*on_path)[next]) continue;
    (*on_path)[next] = 1;
    path->push_back(next);
    Dfs(frag, next, target, path, on_path, out, max_chains);
    path->pop_back();
    (*on_path)[next] = 0;
  }
}

}  // namespace

std::vector<FragmentChain> FindChains(const Fragmentation& frag,
                                      FragmentId from, FragmentId to,
                                      size_t max_chains) {
  TCF_CHECK(from < frag.NumFragments() && to < frag.NumFragments());
  TCF_CHECK(max_chains >= 1);
  std::vector<FragmentChain> chains;
  std::vector<FragmentId> path = {from};
  std::vector<char> on_path(frag.NumFragments(), 0);
  on_path[from] = 1;
  Dfs(frag, from, to, &path, &on_path, &chains, max_chains);
  std::stable_sort(chains.begin(), chains.end(),
                   [](const FragmentChain& a, const FragmentChain& b) {
                     if (a.size() != b.size()) return a.size() < b.size();
                     return a < b;
                   });
  return chains;
}

PlanSkeleton BuildPlanSkeleton(const Fragmentation& frag, FragmentId from,
                               FragmentId to, size_t max_chains) {
  PlanSkeleton skeleton;
  skeleton.chains = FindChains(frag, from, to, max_chains);
  skeleton.hops.resize(skeleton.chains.size());
  auto ds_nodes = [&](FragmentId a, FragmentId b) {
    const DisconnectionSet* ds = frag.FindDisconnectionSet(a, b);
    TCF_CHECK_MSG(ds != nullptr, "chain hop without disconnection set");
    return ds->nodes;  // already sorted
  };
  for (size_t c = 0; c < skeleton.chains.size(); ++c) {
    const FragmentChain& chain = skeleton.chains[c];
    skeleton.hops[c].reserve(chain.size());
    for (size_t i = 0; i < chain.size(); ++i) {
      HopTemplate hop;
      hop.fragment = chain[i];
      if (i == 0) {
        hop.source_is_endpoint = true;
      } else {
        hop.sources = ds_nodes(chain[i - 1], chain[i]);
      }
      if (i + 1 == chain.size()) {
        hop.target_is_endpoint = true;
      } else {
        hop.targets = ds_nodes(chain[i], chain[i + 1]);
      }
      skeleton.hops[c].push_back(std::move(hop));
    }
  }
  return skeleton;
}

ChainPlanCache::ChainPlanCache(size_t capacity) : cache_(capacity) {}

std::shared_ptr<const PlanSkeleton> ChainPlanCache::SkeletonFor(
    const Fragmentation& frag, FragmentId from, FragmentId to,
    size_t max_chains, bool* was_hit_out) {
  const uint64_t key = (static_cast<uint64_t>(from) << 32) | to;
  return cache_.GetOrCompute(
      key,
      [&]() {
        return std::make_shared<const PlanSkeleton>(
            BuildPlanSkeleton(frag, from, to, max_chains));
      },
      was_hit_out);
}

std::shared_ptr<const std::vector<FragmentChain>>
ChainPlanCache::ChainsBetween(const Fragmentation& frag, FragmentId from,
                              FragmentId to, size_t max_chains,
                              bool* was_hit_out) {
  std::shared_ptr<const PlanSkeleton> skeleton =
      SkeletonFor(frag, from, to, max_chains, was_hit_out);
  return std::shared_ptr<const std::vector<FragmentChain>>(
      skeleton, &skeleton->chains);
}

}  // namespace tcf
