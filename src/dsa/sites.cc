#include "dsa/sites.h"

#include <algorithm>
#include <map>
#include <tuple>
#include <unordered_map>

#include "dsa/chains.h"
#include "dsa/executor.h"

namespace tcf {

SiteNetwork::SiteNetwork(const Fragmentation* frag, LocalEngine engine)
    : frag_(frag), engine_(engine) {
  TCF_CHECK(frag != nullptr);
  complementary_ = PrecomputeComplementary(*frag_);
  mailboxes_.reserve(frag_->NumFragments());
  for (FragmentId f = 0; f < frag_->NumFragments(); ++f) {
    mailboxes_.push_back(std::make_unique<Channel<Subquery>>());
  }
  sites_.reserve(frag_->NumFragments());
  for (FragmentId f = 0; f < frag_->NumFragments(); ++f) {
    sites_.emplace_back([this, f]() { SiteLoop(f); });
  }
}

SiteNetwork::~SiteNetwork() {
  for (auto& mailbox : mailboxes_) {
    Subquery poison;
    poison.shutdown = true;
    mailbox->Send(poison);
    mailbox->Close();
  }
  for (auto& site : sites_) site.join();
}

void SiteNetwork::SiteLoop(FragmentId fragment) {
  while (true) {
    std::optional<Subquery> message = mailboxes_[fragment]->Receive();
    if (!message.has_value() || message->shutdown) return;
    // Phase 1: purely local work — the site touches only its own fragment
    // and its own complementary relation; no other site is contacted.
    LocalQueryResult local =
        RunLocalQuery(*frag_, &complementary_, message->spec, engine_);
    SiteResult result;
    result.request_id = message->request_id;
    result.fragment = fragment;
    result.paths = std::move(local.paths);
    coordinator_inbox_.Send(std::move(result));
  }
}

Weight SiteNetwork::ShortestPathCost(NodeId from, NodeId to,
                                     SiteTraffic* traffic) {
  TCF_CHECK(from < frag_->graph().NumNodes());
  TCF_CHECK(to < frag_->graph().NumNodes());
  SiteTraffic local_traffic;
  if (traffic == nullptr) traffic = &local_traffic;
  *traffic = SiteTraffic{};
  if (from == to) return 0.0;

  // Plan: chains and deduplicated subquery specs (the coordinator knows
  // the fragmentation graph and the disconnection sets — tiny metadata).
  const auto& from_frags = frag_->FragmentsOfNode(from);
  const auto& to_frags = frag_->FragmentsOfNode(to);
  std::vector<FragmentChain> chains;
  for (FragmentId fa : from_frags) {
    for (FragmentId fb : to_frags) {
      for (FragmentChain& c : FindChains(*frag_, fa, fb, 64)) {
        if (std::find(chains.begin(), chains.end(), c) == chains.end()) {
          chains.push_back(std::move(c));
        }
      }
    }
  }
  if (chains.empty()) return kInfinity;

  auto ds_nodes = [&](FragmentId a, FragmentId b) {
    const DisconnectionSet* ds = frag_->FindDisconnectionSet(a, b);
    TCF_CHECK(ds != nullptr);
    return NodeSet(ds->nodes.begin(), ds->nodes.end());
  };
  auto sorted = [](const NodeSet& s) {
    std::vector<NodeId> v(s.begin(), s.end());
    std::sort(v.begin(), v.end());
    return v;
  };

  std::map<std::tuple<FragmentId, std::vector<NodeId>, std::vector<NodeId>>,
           uint64_t>
      spec_request;
  std::vector<std::vector<uint64_t>> chain_requests(chains.size());
  size_t outstanding = 0;
  for (size_t c = 0; c < chains.size(); ++c) {
    const FragmentChain& chain = chains[c];
    for (size_t i = 0; i < chain.size(); ++i) {
      LocalQuerySpec spec;
      spec.fragment = chain[i];
      spec.sources =
          (i == 0) ? NodeSet{from} : ds_nodes(chain[i - 1], chain[i]);
      spec.targets = (i + 1 == chain.size())
                         ? NodeSet{to}
                         : ds_nodes(chain[i], chain[i + 1]);
      auto key = std::make_tuple(spec.fragment, sorted(spec.sources),
                                 sorted(spec.targets));
      auto it = spec_request.find(key);
      if (it == spec_request.end()) {
        const uint64_t id = next_request_id_++;
        it = spec_request.emplace(std::move(key), id).first;
        Subquery message;
        message.request_id = id;
        message.spec = std::move(spec);
        mailboxes_[chain[i]]->Send(std::move(message));
        ++traffic->subquery_messages;
        ++outstanding;
      }
      chain_requests[c].push_back(it->second);
    }
  }

  // Phase 2: collect the (small) result relations.
  std::unordered_map<uint64_t, Relation> results;
  while (outstanding > 0) {
    std::optional<SiteResult> result = coordinator_inbox_.Receive();
    TCF_CHECK(result.has_value());
    ++traffic->result_messages;
    traffic->result_tuples += result->paths.size();
    results.emplace(result->request_id, std::move(result->paths));
    --outstanding;
  }

  // Final joins at the coordinator.
  Weight best = kInfinity;
  for (size_t c = 0; c < chains.size(); ++c) {
    std::vector<const Relation*> hops;
    hops.reserve(chain_requests[c].size());
    for (uint64_t id : chain_requests[c]) hops.push_back(&results.at(id));
    Relation final = AssembleChain(hops, nullptr);
    best = std::min(best, final.BestCost(from, to));
  }
  return best;
}

}  // namespace tcf
