#include "dsa/sites.h"

#include <algorithm>
#include <map>
#include <tuple>
#include <unordered_map>

#include "dsa/chains.h"
#include "dsa/executor.h"

namespace tcf {

SiteNetwork::SiteNetwork(const Fragmentation* frag, LocalEngine engine)
    : frag_(frag), engine_(engine) {
  TCF_CHECK(frag != nullptr);
  complementary_ = PrecomputeComplementary(*frag_);
  mailboxes_.reserve(frag_->NumFragments());
  for (FragmentId f = 0; f < frag_->NumFragments(); ++f) {
    mailboxes_.push_back(std::make_unique<Channel<Subquery>>());
  }
  sites_.reserve(frag_->NumFragments());
  for (FragmentId f = 0; f < frag_->NumFragments(); ++f) {
    sites_.emplace_back([this, f]() { SiteLoop(f); });
  }
}

SiteNetwork::~SiteNetwork() {
  for (auto& mailbox : mailboxes_) {
    Subquery poison;
    poison.shutdown = true;
    mailbox->Send(poison);
    mailbox->Close();
  }
  for (auto& site : sites_) site.join();
}

void SiteNetwork::SiteLoop(FragmentId fragment) {
  while (true) {
    std::optional<Subquery> message = mailboxes_[fragment]->Receive();
    if (!message.has_value() || message->shutdown) return;
    // Phase 1: purely local work — the site touches only its own fragment
    // and its own complementary relation; no other site is contacted.
    LocalQueryResult local =
        RunLocalQuery(*frag_, &complementary_, message->spec, engine_);
    SiteResult result;
    result.request_id = message->request_id;
    result.fragment = fragment;
    result.paths = std::move(local.paths);
    coordinator_inbox_.Send(std::move(result));
  }
}

Weight SiteNetwork::ShortestPathCost(NodeId from, NodeId to,
                                     SiteTraffic* traffic) {
  return BatchShortestPathCosts({{from, to}}, traffic).front();
}

std::vector<Weight> SiteNetwork::BatchShortestPathCosts(
    const std::vector<std::pair<NodeId, NodeId>>& queries,
    SiteTraffic* traffic) {
  SiteTraffic local_traffic;
  if (traffic == nullptr) traffic = &local_traffic;
  *traffic = SiteTraffic{};
  std::vector<Weight> answers(queries.size(), kInfinity);

  // Plan every query up front (the coordinator knows the fragmentation
  // graph and the disconnection sets — tiny metadata), deduplicating
  // subqueries batch-wide: a (fragment, selection) needed by several
  // chains or several queries is one message, one site computation.
  std::map<std::pair<FragmentId, FragmentId>, std::vector<FragmentChain>>
      chains_memo;
  auto chains_between = [&](FragmentId fa, FragmentId fb)
      -> const std::vector<FragmentChain>& {
    auto it = chains_memo.find({fa, fb});
    if (it == chains_memo.end()) {
      it = chains_memo.emplace(std::make_pair(fa, fb),
                               FindChains(*frag_, fa, fb, 64))
               .first;
    }
    return it->second;
  };
  auto ds_nodes = [&](FragmentId a, FragmentId b) {
    const DisconnectionSet* ds = frag_->FindDisconnectionSet(a, b);
    TCF_CHECK(ds != nullptr);
    return NodeSet(ds->nodes.begin(), ds->nodes.end());
  };

  struct QueryPlanEntry {
    std::vector<FragmentChain> chains;
    std::vector<std::vector<uint64_t>> chain_requests;
  };
  std::vector<QueryPlanEntry> plans(queries.size());
  std::map<SpecKey, uint64_t> spec_request;
  size_t outstanding = 0;

  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const auto [from, to] = queries[qi];
    TCF_CHECK(from < frag_->graph().NumNodes());
    TCF_CHECK(to < frag_->graph().NumNodes());
    if (from == to) {
      answers[qi] = 0.0;
      continue;
    }
    QueryPlanEntry& plan = plans[qi];
    for (FragmentId fa : frag_->FragmentsOfNode(from)) {
      for (FragmentId fb : frag_->FragmentsOfNode(to)) {
        for (const FragmentChain& c : chains_between(fa, fb)) {
          if (std::find(plan.chains.begin(), plan.chains.end(), c) ==
              plan.chains.end()) {
            plan.chains.push_back(c);
          }
        }
      }
    }
    plan.chain_requests.resize(plan.chains.size());
    for (size_t c = 0; c < plan.chains.size(); ++c) {
      const FragmentChain& chain = plan.chains[c];
      for (size_t i = 0; i < chain.size(); ++i) {
        LocalQuerySpec spec;
        spec.fragment = chain[i];
        spec.sources =
            (i == 0) ? NodeSet{from} : ds_nodes(chain[i - 1], chain[i]);
        spec.targets = (i + 1 == chain.size())
                           ? NodeSet{to}
                           : ds_nodes(chain[i], chain[i + 1]);
        SpecKey key = MakeSpecKey(spec);
        auto it = spec_request.find(key);
        if (it == spec_request.end()) {
          const uint64_t id = next_request_id_++;
          it = spec_request.emplace(std::move(key), id).first;
          Subquery message;
          message.request_id = id;
          message.spec = std::move(spec);
          mailboxes_[chain[i]]->Send(std::move(message));
          ++traffic->subquery_messages;
          ++outstanding;
        }
        plan.chain_requests[c].push_back(it->second);
      }
    }
  }

  // Phase 2: collect the (small) result relations of the whole batch.
  std::unordered_map<uint64_t, Relation> results;
  while (outstanding > 0) {
    std::optional<SiteResult> result = coordinator_inbox_.Receive();
    TCF_CHECK(result.has_value());
    ++traffic->result_messages;
    traffic->result_tuples += result->paths.size();
    results.emplace(result->request_id, std::move(result->paths));
    --outstanding;
  }

  // Final joins at the coordinator, query by query over the shared
  // results.
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const auto [from, to] = queries[qi];
    if (from == to) continue;
    Weight best = kInfinity;
    const QueryPlanEntry& plan = plans[qi];
    for (size_t c = 0; c < plan.chains.size(); ++c) {
      std::vector<const Relation*> hops;
      hops.reserve(plan.chain_requests[c].size());
      for (uint64_t id : plan.chain_requests[c]) {
        hops.push_back(&results.at(id));
      }
      Relation final = AssembleChain(hops, nullptr);
      best = std::min(best, final.BestCost(from, to));
    }
    answers[qi] = best;
  }
  return answers;
}

}  // namespace tcf
