#include "dsa/sites.h"

#include <utility>

#include "dsa/executor.h"
#include "util/thread_pool.h"

namespace tcf {

SiteNetwork::SiteNetwork(const Fragmentation* frag, LocalEngine engine,
                         SiteTransportKind transport)
    : frag_(frag), engine_(engine) {
  TCF_CHECK(frag != nullptr);
  complementary_ = PrecomputeComplementary(*frag_);
  if (transport == SiteTransportKind::kSocket) {
    Result<std::unique_ptr<SiteTransport>> made =
        MakeSocketSiteTransport(frag_->NumFragments());
    TCF_CHECK_MSG(made.ok(), made.status().ToString());
    transport_ = std::move(made).value();
  } else {
    transport_ = MakeInProcessSiteTransport(frag_->NumFragments());
  }
  sites_.reserve(frag_->NumFragments());
  for (FragmentId f = 0; f < frag_->NumFragments(); ++f) {
    sites_.emplace_back([this, f]() { SiteLoop(f); });
  }
  planner_pool_ = std::make_unique<ThreadPool>();
  plan_cache_ = std::make_unique<ChainPlanCache>();
}

SiteNetwork::~SiteNetwork() {
  transport_->Shutdown();
  for (auto& site : sites_) site.join();
}

void SiteNetwork::SiteLoop(FragmentId fragment) {
  while (true) {
    std::optional<SiteWireSubquery> message =
        transport_->ReceiveSubquery(fragment);
    if (!message.has_value()) return;  // transport shut down
    // Phase 1: purely local work — the site touches only its own fragment
    // and its own complementary relation; no other site is contacted.
    LocalQueryResult local =
        RunLocalQuery(*frag_, &complementary_, message->spec, engine_);
    SiteWireResult result;
    result.request_id = message->request_id;
    result.fragment = fragment;
    result.paths = std::move(local.paths);
    transport_->SendResult(fragment, std::move(result));
  }
}

Weight SiteNetwork::ShortestPathCost(NodeId from, NodeId to,
                                     SiteTraffic* traffic) {
  return BatchShortestPathCosts({{from, to}}, traffic).front();
}

std::vector<Weight> SiteNetwork::BatchShortestPathCosts(
    const std::vector<std::pair<NodeId, NodeId>>& queries,
    SiteTraffic* traffic) {
  // One protocol round at a time: request ids and the coordinator inbox
  // are shared, so concurrent callers queue up here.
  std::lock_guard<std::mutex> coordinator_lock(coordinator_mutex_);

  SiteTraffic local_traffic;
  if (traffic == nullptr) traffic = &local_traffic;
  *traffic = SiteTraffic{};
  std::vector<Weight> answers(queries.size(), kInfinity);
  const size_t num_nodes = frag_->graph().NumNodes();

  // Plan every query in parallel on the coordinator's planner pool,
  // through the exact machinery of the in-process batch executor
  // (PlanBatchInParallel: sharded plan memo + sharded spec table +
  // skeleton cache + the cross-batch interned-plan cache, so a round that
  // repeats an earlier round's (from, to) pairs skips planning them) —
  // one message per distinct (fragment, selection) no matter how many
  // queries or chains need it.
  for (const auto& [from, to] : queries) {
    TCF_CHECK(from < num_nodes);
    TCF_CHECK(to < num_nodes);
  }
  ParallelPlanResult planned = PlanBatchInParallel(
      *frag_, queries, kDefaultMaxChains, plan_cache_.get(),
      planner_pool_.get());
  const std::vector<LocalQuerySpec>& flat_specs = planned.flat.specs;

  // Phase 0: all subquery messages are sent before any result is awaited;
  // request ids are spec indices offset by this round's base.
  const uint64_t base_request_id = next_request_id_;
  next_request_id_ += flat_specs.size();
  for (size_t s = 0; s < flat_specs.size(); ++s) {
    SiteWireSubquery message;
    message.request_id = base_request_id + s;
    message.spec = flat_specs[s];
    transport_->SendSubquery(flat_specs[s].fragment, std::move(message));
    ++traffic->subquery_messages;
  }

  // Phase 2: collect the (small) result relations of the whole batch,
  // back into spec order.
  std::vector<LocalQueryResult> results(flat_specs.size());
  size_t outstanding = flat_specs.size();
  while (outstanding > 0) {
    std::optional<SiteWireResult> result = transport_->ReceiveResult();
    TCF_CHECK(result.has_value());
    ++traffic->result_messages;
    traffic->result_tuples += result->paths.size();
    results[result->request_id - base_request_id].paths =
        std::move(result->paths);
    --outstanding;
  }

  // Final joins at the coordinator, query by query over the shared
  // results — the same assembly as the in-process executor.
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const auto [from, to] = queries[qi];
    if (from == to) {
      answers[qi] = 0.0;
      continue;
    }
    answers[qi] = AssembleCostAnswer(*frag_, *planned.plans[qi], flat_specs,
                                     from, to, results, nullptr)
                      .cost;
  }
  return answers;
}

}  // namespace tcf
