#include "dsa/complementary.h"

#include <unordered_map>

#include "graph/algorithms.h"

namespace tcf {

ComplementaryInfo PrecomputeComplementary(const Fragmentation& frag) {
  const Graph& g = frag.graph();
  ComplementaryInfo info;
  info.shortcuts.resize(frag.NumFragments());

  // Distinct border nodes across all fragments.
  std::vector<NodeId> border;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    if (frag.IsBorderNode(v)) border.push_back(v);
  }

  // One global single-source search per border node.
  std::unordered_map<NodeId, ShortestPaths> search_from;
  search_from.reserve(border.size());
  for (NodeId v : border) {
    search_from.emplace(v, Dijkstra(g, v));
    ++info.searches;
  }

  for (FragmentId f = 0; f < frag.NumFragments(); ++f) {
    const std::vector<NodeId>& nodes = frag.BorderNodes(f);
    Relation& rel = info.shortcuts[f];
    for (NodeId x : nodes) {
      const ShortestPaths& sp = search_from.at(x);
      for (NodeId y : nodes) {
        if (x == y) continue;
        if (sp.distance[y] == kInfinity) continue;
        rel.Add(x, y, sp.distance[y]);
        info.witness.emplace(PairKey(x, y), sp.PathTo(y));
      }
    }
    rel.SortCanonical();
    info.total_tuples += rel.size();
  }
  return info;
}

}  // namespace tcf
