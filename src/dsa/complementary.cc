#include "dsa/complementary.h"

#include <unordered_map>
#include <unordered_set>

#include "graph/algorithms.h"

namespace tcf {

ComplementaryInfo PrecomputeComplementary(const Fragmentation& frag) {
  const Graph& g = frag.graph();
  ComplementaryInfo info;
  info.shortcuts.resize(frag.NumFragments());

  // Distinct border nodes across all fragments.
  std::vector<NodeId> border;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    if (frag.IsBorderNode(v)) border.push_back(v);
  }

  // One global single-source search per border node.
  std::unordered_map<NodeId, ShortestPaths> search_from;
  search_from.reserve(border.size());
  for (NodeId v : border) {
    search_from.emplace(v, Dijkstra(g, v));
    ++info.searches;
  }

  for (FragmentId f = 0; f < frag.NumFragments(); ++f) {
    const std::vector<NodeId>& nodes = frag.BorderNodes(f);
    Relation& rel = info.shortcuts[f];
    for (NodeId x : nodes) {
      const ShortestPaths& sp = search_from.at(x);
      for (NodeId y : nodes) {
        if (x == y) continue;
        if (sp.distance[y] == kInfinity) continue;
        rel.Add(x, y, sp.distance[y]);
        info.witness.emplace(PairKey(x, y), sp.PathTo(y));
      }
    }
    rel.SortCanonical();
    info.total_tuples += rel.size();
  }
  return info;
}

namespace {

// The incremental path of RefreshComplementary. It reads the old epoch's
// shortcut relations — which may be paged — so any storage failure aborts
// it with a Status (leaving `*out` partial) and the public wrapper falls
// back to a full recompute, which needs no old data.
Status TryRefreshIncremental(const Fragmentation& frag,
                             const Fragmentation& old_frag,
                             const ComplementaryInfo& old,
                             const ComplementaryDelta& delta,
                             ComplementaryRefresh* out_ptr) {
  const Graph& g = frag.graph();
  const size_t num_frags = frag.NumFragments();

  ComplementaryRefresh& out = *out_ptr;
  ComplementaryInfo& info = out.info;
  info.shortcuts.resize(num_frags);

  // Rule (a): a changed border-node set invalidates the fragment's whole
  // tuple schema — every one of its (current) border nodes is dirty. This
  // also covers nodes that became borders this epoch: they have no prior
  // search to reuse, and their appearance changed the set.
  std::vector<char> border_set_changed(num_frags, 0);
  std::vector<char> dirty(g.NumNodes(), 0);
  for (FragmentId f = 0; f < num_frags; ++f) {
    if (frag.BorderNodes(f) != old_frag.BorderNodes(f)) {
      border_set_changed[f] = 1;
      for (NodeId x : frag.BorderNodes(f)) dirty[x] = 1;
    }
  }

  // Rule (b): tightened edges can only break stored witness routes. A
  // source whose every witness avoids them keeps all its old distances.
  if (!delta.tightened.empty()) {
    std::unordered_set<uint64_t> tightened;
    tightened.reserve(delta.tightened.size());
    for (const auto& [u, v] : delta.tightened) {
      tightened.insert(PairKey(u, v));
    }
    for (const auto& [key, route] : old.witness) {
      const NodeId x = static_cast<NodeId>(key >> 32);
      if (x >= dirty.size() || dirty[x]) continue;
      for (size_t i = 0; i + 1 < route.size(); ++i) {
        if (tightened.count(PairKey(route[i], route[i + 1])) > 0) {
          dirty[x] = 1;
          break;
        }
      }
    }
  }

  // Rule (c) and the clean-source carry-over below probe the old shortcut
  // relations through BestCost. Lookups have no error channel, so warm
  // the lazy indexes first — for a paged relation this is where the store
  // is actually read, and where a disk fault surfaces as a Status instead
  // of a crash (relation.h's pre-warm discipline).
  for (FragmentId f = 0; f < num_frags; ++f) {
    if (!border_set_changed[f]) {
      TCF_RETURN_NOT_OK(old.shortcuts[f].WarmIndexes());
    }
  }

  // Rule (c): for each relaxed edge e = (u, v, w), exact new-graph
  // distances d(x, u) (backward search) and d(v, y) (forward search) let
  // us probe every still-clean co-border pair for an improvement through
  // e. Fragments with a changed border set are skipped — their borders
  // are all dirty already, and their old relation's pair schema is stale.
  for (const Edge& e : delta.relaxed) {
    const ShortestPaths to_u = Dijkstra(g, e.src, Direction::kBackward);
    const ShortestPaths from_v = Dijkstra(g, e.dst, Direction::kForward);
    info.searches += 2;
    for (FragmentId f = 0; f < num_frags; ++f) {
      if (border_set_changed[f]) continue;
      const std::vector<NodeId>& borders = frag.BorderNodes(f);
      const Relation& old_rel = old.shortcuts[f];
      for (NodeId x : borders) {
        if (dirty[x] || to_u.distance[x] == kInfinity) continue;
        for (NodeId y : borders) {
          if (y == x || from_v.distance[y] == kInfinity) continue;
          if (to_u.distance[x] + e.weight + from_v.distance[y] <
              old_rel.BestCost(x, y)) {
            dirty[x] = 1;
            break;
          }
        }
      }
    }
  }

  // Re-run the whole-graph search of exactly the dirty border nodes.
  std::unordered_map<NodeId, ShortestPaths> fresh;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    if (!frag.IsBorderNode(v)) continue;
    if (dirty[v]) {
      fresh.emplace(v, Dijkstra(g, v));
      ++info.searches;
      ++out.dirty_border_nodes;
    } else {
      ++out.reused_border_nodes;
    }
  }

  for (FragmentId f = 0; f < num_frags; ++f) {
    const std::vector<NodeId>& borders = frag.BorderNodes(f);
    bool any_dirty = border_set_changed[f] != 0;
    for (NodeId x : borders) any_dirty = any_dirty || dirty[x] != 0;

    if (!any_dirty) {
      // Untouched schema, untouched distances: the old relation (and its
      // witnesses) carry over verbatim. A paged relation carries over as a
      // shared reference to its immutable store — no copy, no decode;
      // dirty fragments below are rebuilt tuple by tuple into resident
      // memory (the copy-on-write half of the epoch contract).
      info.shortcuts[f] = old.shortcuts[f];
      TCF_RETURN_NOT_OK(
          info.shortcuts[f].ForEach([&](const PathTuple& t) {
            auto it = old.witness.find(PairKey(t.src, t.dst));
            if (it != old.witness.end()) {
              info.witness.emplace(it->first, it->second);
            }
          }));
      info.total_tuples += info.shortcuts[f].size();
      ++out.reused_fragments;
      continue;
    }

    ++out.dirty_fragments;
    Relation& rel = info.shortcuts[f];
    for (NodeId x : borders) {
      if (dirty[x]) {
        const ShortestPaths& sp = fresh.at(x);
        for (NodeId y : borders) {
          if (x == y || sp.distance[y] == kInfinity) continue;
          rel.Add(x, y, sp.distance[y]);
          info.witness.emplace(PairKey(x, y), sp.PathTo(y));
        }
      } else {
        // A clean source inside a dirty fragment (possible only when the
        // border set is unchanged): its tuples are provably unchanged.
        for (NodeId y : borders) {
          if (x == y) continue;
          const Weight c = old.shortcuts[f].BestCost(x, y);
          if (c == kInfinity) continue;
          rel.Add(x, y, c);
          auto it = old.witness.find(PairKey(x, y));
          if (it != old.witness.end()) {
            info.witness.emplace(it->first, it->second);
          }
        }
      }
    }
    rel.SortCanonical();
    info.total_tuples += rel.size();
  }
  return Status::OK();
}

}  // namespace

ComplementaryRefresh RefreshComplementary(const Fragmentation& frag,
                                          const Fragmentation& old_frag,
                                          const ComplementaryInfo& old,
                                          const ComplementaryDelta& delta) {
  TCF_CHECK(frag.NumFragments() == old_frag.NumFragments());

  ComplementaryRefresh out;
  const Status incremental =
      TryRefreshIncremental(frag, old_frag, old, delta, &out);
  if (incremental.ok()) return out;

  // The old epoch's (paged) shortcut relations could not be read. The
  // full recompute needs nothing from the old epoch, so maintenance
  // survives a damaged old database at the cost of one epoch's worth of
  // incremental savings.
  out = ComplementaryRefresh();
  out.info = PrecomputeComplementary(frag);
  out.dirty_fragments = frag.NumFragments();
  out.dirty_border_nodes = out.info.searches;
  out.fallback_cause = incremental;
  return out;
}

}  // namespace tcf
