#include "dsa/query_api.h"

namespace tcf {

DsaDatabase::DsaDatabase(const Fragmentation* frag, DsaOptions options)
    : frag_(frag), options_(options) {
  TCF_CHECK(frag != nullptr);
  if (options_.use_complementary) {
    complementary_ = PrecomputeComplementary(*frag_);
  } else {
    complementary_.shortcuts.resize(frag_->NumFragments());
  }
  // The shortcut relations are shared read-only by every concurrent query.
  // Index builds are thread-safe either way; warming resident relations
  // here just front-loads the cost. Paged relations are left cold — eager
  // indexes would decode every fragment's extent, defeating the point of
  // opening paged (queries only ever scan shortcuts, never probe them).
  for (const Relation& shortcuts : complementary_.shortcuts) {
    if (!shortcuts.is_paged()) shortcuts.WarmIndexes();
  }
  const size_t threads = options_.num_threads > 0 ? options_.num_threads
                                                  : frag_->NumFragments();
  pool_ = std::make_shared<ThreadPool>(threads);
  if (options_.plan_cache_capacity > 0) {
    plan_cache_ = std::make_unique<ChainPlanCache>(
        options_.plan_cache_capacity, options_.interned_plan_cache_capacity);
  }
}

DsaDatabase::DsaDatabase(const Fragmentation* frag, DsaOptions options,
                         EpochCarryover carry)
    : frag_(frag), options_(options), epoch_(carry.epoch) {
  TCF_CHECK(frag != nullptr);
  if (options_.use_complementary) {
    complementary_ = std::move(carry.complementary);
    TCF_CHECK_MSG(complementary_.shortcuts.size() == frag_->NumFragments(),
                  "epoch carryover does not match the fragmentation");
  } else {
    complementary_.shortcuts.resize(frag_->NumFragments());
  }
  // Adopted relations may contain freshly rebuilt (index-cold) entries;
  // warm the resident ones while still single-threaded, as the primary
  // ctor does. Paged entries stay lazy (see above).
  for (const Relation& shortcuts : complementary_.shortcuts) {
    if (!shortcuts.is_paged()) shortcuts.WarmIndexes();
  }
  if (carry.pool != nullptr) {
    pool_ = std::move(carry.pool);
  } else {
    const size_t threads = options_.num_threads > 0 ? options_.num_threads
                                                    : frag_->NumFragments();
    pool_ = std::make_shared<ThreadPool>(threads);
  }
  if (options_.plan_cache_capacity > 0) {
    if (carry.plan_cache != nullptr) {
      plan_cache_ = std::move(carry.plan_cache);
    } else {
      plan_cache_ = std::make_unique<ChainPlanCache>(
          options_.plan_cache_capacity,
          options_.interned_plan_cache_capacity);
    }
  }
}

QueryPlan DsaDatabase::Plan(NodeId from, NodeId to, SpecSink* specs) const {
  return BuildQueryPlan(*frag_, from, to, options_.max_chains,
                        plan_cache_.get(), specs);
}

QueryAnswer DsaDatabase::ShortestPath(NodeId from, NodeId to,
                                      ExecutionReport* report) const {
  TCF_CHECK(from < frag_->graph().NumNodes());
  TCF_CHECK(to < frag_->graph().NumNodes());
  if (from == to) {
    QueryAnswer answer;
    answer.connected = true;
    answer.cost = 0.0;
    return answer;
  }

  const ComplementaryInfo* comp =
      options_.use_complementary ? &complementary_ : nullptr;
  SpecTable specs;
  QueryPlan plan = Plan(from, to, &specs);
  if (plan.chains.empty()) {
    QueryAnswer answer;
    answer.chains_considered = 0;
    return answer;
  }

  std::vector<LocalQueryResult> results = RunSites(
      *frag_, comp, specs.specs(), options_.engine, pool_.get(), report);
  return AssembleCostAnswer(*frag_, plan, specs.specs(), from, to, results,
                            report);
}

RouteAnswer DsaDatabase::ShortestRoute(NodeId from, NodeId to,
                                       ExecutionReport* report) const {
  TCF_CHECK(from < frag_->graph().NumNodes());
  TCF_CHECK(to < frag_->graph().NumNodes());
  TCF_CHECK_MSG(options_.use_complementary,
                "route reconstruction requires complementary information");
  if (from == to) {
    RouteAnswer out;
    out.answer.connected = true;
    out.answer.cost = 0.0;
    out.route = {from};
    return out;
  }

  SpecTable specs;
  QueryPlan plan = Plan(from, to, &specs);
  if (plan.chains.empty()) return RouteAnswer{};

  std::vector<LocalQueryResult> results =
      RunSites(*frag_, &complementary_, specs.specs(), options_.engine,
               pool_.get(), report);
  return AssembleRouteAnswer(*frag_, complementary_, plan, specs.specs(),
                             from, to, results, report);
}

bool DsaDatabase::IsConnected(NodeId from, NodeId to,
                              ExecutionReport* report) const {
  return ShortestPath(from, to, report).connected;
}

}  // namespace tcf
