#include "dsa/query_api.h"

#include <algorithm>
#include <map>
#include <tuple>
#include <unordered_map>

#include "graph/algorithms.h"

namespace tcf {

/// The shared front half of every query: the chains connecting the two
/// endpoint fragments and the deduplicated per-fragment subquery specs.
struct DsaDatabase::QueryPlan {
  std::vector<FragmentChain> chains;
  std::vector<LocalQuerySpec> specs;
  /// chain_specs[c][i]: index into `specs` for hop i of chain c.
  std::vector<std::vector<size_t>> chain_specs;
};

DsaDatabase::DsaDatabase(const Fragmentation* frag, DsaOptions options)
    : frag_(frag), options_(options) {
  TCF_CHECK(frag != nullptr);
  if (options_.use_complementary) {
    complementary_ = PrecomputeComplementary(*frag_);
  } else {
    complementary_.shortcuts.resize(frag_->NumFragments());
  }
  const size_t threads = options_.num_threads > 0 ? options_.num_threads
                                                  : frag_->NumFragments();
  pool_ = std::make_unique<ThreadPool>(threads);
}

DsaDatabase::QueryPlan DsaDatabase::BuildPlan(NodeId from, NodeId to) const {
  QueryPlan plan;

  // Locate the query constants; a border node lives in several fragments
  // and every one of them is a valid chain endpoint.
  const auto& from_frags = frag_->FragmentsOfNode(from);
  const auto& to_frags = frag_->FragmentsOfNode(to);
  for (FragmentId fa : from_frags) {
    for (FragmentId fb : to_frags) {
      for (FragmentChain& c :
           FindChains(*frag_, fa, fb, options_.max_chains)) {
        if (std::find(plan.chains.begin(), plan.chains.end(), c) ==
            plan.chains.end()) {
          plan.chains.push_back(std::move(c));
        }
      }
    }
  }

  // One subquery per (fragment, sources, targets) — shared between chains
  // when identical, so a fragment computes each selection once.
  std::map<std::tuple<FragmentId, std::vector<NodeId>, std::vector<NodeId>>,
           size_t>
      spec_index;
  auto sorted = [](const NodeSet& s) {
    std::vector<NodeId> v(s.begin(), s.end());
    std::sort(v.begin(), v.end());
    return v;
  };
  auto ds_nodes = [&](FragmentId a, FragmentId b) {
    const DisconnectionSet* ds = frag_->FindDisconnectionSet(a, b);
    TCF_CHECK_MSG(ds != nullptr, "chain hop without disconnection set");
    return NodeSet(ds->nodes.begin(), ds->nodes.end());
  };
  plan.chain_specs.resize(plan.chains.size());
  for (size_t c = 0; c < plan.chains.size(); ++c) {
    const FragmentChain& chain = plan.chains[c];
    for (size_t i = 0; i < chain.size(); ++i) {
      LocalQuerySpec spec;
      spec.fragment = chain[i];
      spec.sources =
          (i == 0) ? NodeSet{from} : ds_nodes(chain[i - 1], chain[i]);
      spec.targets = (i + 1 == chain.size())
                         ? NodeSet{to}
                         : ds_nodes(chain[i], chain[i + 1]);
      auto key = std::make_tuple(spec.fragment, sorted(spec.sources),
                                 sorted(spec.targets));
      auto it = spec_index.find(key);
      if (it == spec_index.end()) {
        it = spec_index.emplace(std::move(key), plan.specs.size()).first;
        plan.specs.push_back(std::move(spec));
      }
      plan.chain_specs[c].push_back(it->second);
    }
  }
  return plan;
}

QueryAnswer DsaDatabase::ShortestPath(NodeId from, NodeId to,
                                      ExecutionReport* report) const {
  TCF_CHECK(from < frag_->graph().NumNodes());
  TCF_CHECK(to < frag_->graph().NumNodes());
  QueryAnswer answer;
  if (from == to) {
    answer.connected = true;
    answer.cost = 0.0;
    return answer;
  }

  const ComplementaryInfo* comp =
      options_.use_complementary ? &complementary_ : nullptr;
  QueryPlan plan = BuildPlan(from, to);
  answer.chains_considered = plan.chains.size();
  if (plan.chains.empty()) return answer;

  std::vector<LocalQueryResult> results = RunSites(
      *frag_, comp, plan.specs, options_.engine, pool_.get(), report);

  std::vector<char> involved(frag_->NumFragments(), 0);
  for (const LocalQuerySpec& spec : plan.specs) involved[spec.fragment] = 1;
  for (FragmentId f = 0; f < frag_->NumFragments(); ++f) {
    if (involved[f]) answer.fragments_involved.push_back(f);
  }

  // Assemble each chain; the overall best is the answer.
  for (size_t c = 0; c < plan.chains.size(); ++c) {
    std::vector<const Relation*> hop_results;
    hop_results.reserve(plan.chain_specs[c].size());
    for (size_t idx : plan.chain_specs[c]) {
      hop_results.push_back(&results[idx].paths);
    }
    Relation final = AssembleChain(hop_results, report);
    const Weight cost = final.BestCost(from, to);
    if (cost < answer.cost) answer.cost = cost;
  }
  answer.connected = answer.cost != kInfinity;
  return answer;
}

RouteAnswer DsaDatabase::ShortestRoute(NodeId from, NodeId to,
                                       ExecutionReport* report) const {
  TCF_CHECK(from < frag_->graph().NumNodes());
  TCF_CHECK(to < frag_->graph().NumNodes());
  TCF_CHECK_MSG(options_.use_complementary,
                "route reconstruction requires complementary information");
  RouteAnswer out;
  if (from == to) {
    out.answer.connected = true;
    out.answer.cost = 0.0;
    out.route = {from};
    return out;
  }

  QueryPlan plan = BuildPlan(from, to);
  out.answer.chains_considered = plan.chains.size();
  if (plan.chains.empty()) return out;

  std::vector<LocalQueryResult> results =
      RunSites(*frag_, &complementary_, plan.specs, options_.engine,
               pool_.get(), report);

  std::vector<char> involved(frag_->NumFragments(), 0);
  for (const LocalQuerySpec& spec : plan.specs) involved[spec.fragment] = 1;
  for (FragmentId f = 0; f < frag_->NumFragments(); ++f) {
    if (involved[f]) out.answer.fragments_involved.push_back(f);
  }

  // Dynamic program over each chain's relay layers, keeping predecessors.
  // Layers: {from}, DS_1, ..., DS_{m-1}, {to}; hop i's relation connects
  // layer i to layer i+1.
  size_t best_chain = 0;
  Weight best_cost = kInfinity;
  std::vector<NodeId> best_relays;  // relay node at each layer boundary
  for (size_t c = 0; c < plan.chains.size(); ++c) {
    const auto& hop_specs = plan.chain_specs[c];
    std::unordered_map<NodeId, Weight> dist = {{from, 0.0}};
    std::vector<std::unordered_map<NodeId, NodeId>> pred(hop_specs.size());
    for (size_t i = 0; i < hop_specs.size(); ++i) {
      const Relation& rel = results[hop_specs[i]].paths;
      std::unordered_map<NodeId, Weight> next;
      for (const PathTuple& t : rel.tuples()) {
        auto it = dist.find(t.src);
        if (it == dist.end()) continue;
        const Weight d = it->second + t.cost;
        auto [slot, inserted] = next.emplace(t.dst, d);
        if (inserted || d < slot->second) {
          slot->second = d;
          pred[i][t.dst] = t.src;
        }
      }
      dist = std::move(next);
    }
    auto it = dist.find(to);
    if (it == dist.end() || it->second >= best_cost) continue;
    best_cost = it->second;
    best_chain = c;
    // Backtrack the relay sequence from..to.
    std::vector<NodeId> relays(hop_specs.size() + 1);
    relays.back() = to;
    for (size_t i = hop_specs.size(); i-- > 0;) {
      relays[i] = pred[i].at(relays[i + 1]);
    }
    best_relays = std::move(relays);
  }

  out.answer.cost = best_cost;
  out.answer.connected = best_cost != kInfinity;
  if (!out.answer.connected) return out;

  // Expand each leg inside its fragment's augmented graph; shortcut hops
  // (edge ids past the real-edge count) are replaced by their witnesses.
  const FragmentChain& chain = plan.chains[best_chain];
  out.route = {from};
  for (size_t i = 0; i < chain.size(); ++i) {
    const NodeId u = best_relays[i];
    const NodeId v = best_relays[i + 1];
    if (u == v) continue;  // pass-through at a shared border node
    size_t real_edges = 0;
    Graph augmented = BuildAugmentedFragment(*frag_, &complementary_,
                                             chain[i], &real_edges);
    ShortestPaths sp = Dijkstra(augmented, u);
    TCF_CHECK_MSG(sp.distance[v] != kInfinity,
                  "relay pair unreachable during reconstruction");
    std::vector<NodeId> nodes = sp.PathTo(v);
    std::vector<EdgeId> edges = sp.EdgesTo(v);
    for (size_t k = 0; k < edges.size(); ++k) {
      if (edges[k] < real_edges) {
        out.route.push_back(nodes[k + 1]);
      } else {
        const auto& witness =
            complementary_.witness.at(PairKey(nodes[k], nodes[k + 1]));
        out.route.insert(out.route.end(), witness.begin() + 1,
                         witness.end());
      }
    }
  }
  return out;
}

bool DsaDatabase::IsConnected(NodeId from, NodeId to,
                              ExecutionReport* report) const {
  return ShortestPath(from, to, report).connected;
}

}  // namespace tcf
