#include "dsa/bottleneck.h"

#include <algorithm>
#include <unordered_map>

#include "dsa/local_query.h"
#include "graph/algorithms.h"

namespace tcf {

ComplementaryInfo PrecomputeCapacityComplementary(const Fragmentation& frag) {
  const Graph& g = frag.graph();
  ComplementaryInfo info;
  info.shortcuts.resize(frag.NumFragments());

  std::vector<NodeId> border;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    if (frag.IsBorderNode(v)) border.push_back(v);
  }
  std::unordered_map<NodeId, WidestPaths> search_from;
  search_from.reserve(border.size());
  for (NodeId v : border) {
    search_from.emplace(v, WidestPathsFrom(g, v));
    ++info.searches;
  }
  for (FragmentId f = 0; f < frag.NumFragments(); ++f) {
    const std::vector<NodeId>& nodes = frag.BorderNodes(f);
    Relation& rel = info.shortcuts[f];
    for (NodeId x : nodes) {
      const WidestPaths& wp = search_from.at(x);
      for (NodeId y : nodes) {
        if (x == y || wp.capacity[y] <= 0.0) continue;
        rel.Add(x, y, wp.capacity[y]);
      }
    }
    rel.SortCanonical();
    info.total_tuples += rel.size();
  }
  return info;
}

BottleneckDsa::BottleneckDsa(const Fragmentation* frag, size_t max_chains)
    : frag_(frag), max_chains_(max_chains) {
  TCF_CHECK(frag != nullptr);
  complementary_ = PrecomputeCapacityComplementary(*frag_);
}

Relation BottleneckDsa::LocalWidest(FragmentId fragment,
                                    const NodeSet& sources,
                                    const NodeSet& targets) const {
  // The capacity complementary is always freshly precomputed (resident),
  // so augmentation cannot hit a storage error.
  Result<Graph> built =
      BuildAugmentedFragment(*frag_, &complementary_, fragment);
  TCF_CHECK_MSG(built.ok(), built.status().ToString());
  const Graph augmented = std::move(built).value();
  Relation out;
  for (NodeId s : sources) {
    WidestPaths wp = WidestPathsFrom(augmented, s);
    for (NodeId t : targets) {
      if (t == s) {
        out.Add(s, t, kInfinity);  // passing through costs no capacity
      } else if (wp.capacity[t] > 0.0) {
        out.Add(s, t, wp.capacity[t]);
      }
    }
  }
  out.AggregateMax();
  return out;
}

BottleneckAnswer BottleneckDsa::WidestPath(NodeId from, NodeId to,
                                           ExecutionReport* report) const {
  TCF_CHECK(from < frag_->graph().NumNodes());
  TCF_CHECK(to < frag_->graph().NumNodes());
  BottleneckAnswer answer;
  if (from == to) {
    answer.connected = true;
    answer.capacity = kInfinity;
    return answer;
  }
  const auto& from_frags = frag_->FragmentsOfNode(from);
  const auto& to_frags = frag_->FragmentsOfNode(to);
  std::vector<FragmentChain> chains;
  for (FragmentId fa : from_frags) {
    for (FragmentId fb : to_frags) {
      for (FragmentChain& c : FindChains(*frag_, fa, fb, max_chains_)) {
        if (std::find(chains.begin(), chains.end(), c) == chains.end()) {
          chains.push_back(std::move(c));
        }
      }
    }
  }
  answer.chains_considered = chains.size();

  auto ds_nodes = [&](FragmentId a, FragmentId b) {
    const DisconnectionSet* ds = frag_->FindDisconnectionSet(a, b);
    TCF_CHECK(ds != nullptr);
    return NodeSet(ds->nodes.begin(), ds->nodes.end());
  };

  for (const FragmentChain& chain : chains) {
    Relation acc;
    for (size_t i = 0; i < chain.size(); ++i) {
      const NodeSet sources =
          (i == 0) ? NodeSet{from} : ds_nodes(chain[i - 1], chain[i]);
      const NodeSet targets = (i + 1 == chain.size())
                                  ? NodeSet{to}
                                  : ds_nodes(chain[i], chain[i + 1]);
      Relation local = LocalWidest(chain[i], sources, targets);
      if (report != nullptr) {
        SiteReport site;
        site.fragment = chain[i];
        site.result_tuples = local.size();
        report->sites.push_back(site);
        report->communication_tuples += local.size();
      }
      acc = (i == 0) ? std::move(local) : JoinMaxMin(acc, local);
    }
    answer.capacity = std::max(answer.capacity, acc.MaxCost(from, to));
  }
  answer.connected = answer.capacity > 0.0;
  return answer;
}

}  // namespace tcf
