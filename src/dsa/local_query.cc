#include "dsa/local_query.h"

#include <unordered_map>
#include <utility>

#include "graph/algorithms.h"
#include "graph/builder.h"

namespace tcf {

namespace {

/// Fragment base relation plus the fragment's shortcut relation. Fails
/// when the (paged) shortcut relation cannot be read — a base relation
/// missing shortcuts would silently answer queries wrong.
Result<Relation> AugmentedRelation(const Fragmentation& frag,
                                   const ComplementaryInfo* complementary,
                                   FragmentId f) {
  Relation base = Relation::FromEdgeSubset(frag.graph(),
                                           frag.FragmentEdges(f));
  if (complementary != nullptr) {
    // Append streams the shortcut relation through its cursor: when the
    // shortcuts are paged, only this fragment's extent is pinned, and only
    // for the duration of the copy — the keyhole property at the storage
    // layer.
    TCF_RETURN_NOT_OK(base.Append(complementary->ForFragment(f)));
    base.AggregateMin();
  }
  return base;
}

}  // namespace

Result<Graph> BuildAugmentedFragment(const Fragmentation& frag,
                                     const ComplementaryInfo* complementary,
                                     FragmentId fragment,
                                     size_t* num_real_edges_out) {
  const Graph& g = frag.graph();
  GraphBuilder builder;
  builder.EnsureNodes(g.NumNodes());
  for (EdgeId e : frag.FragmentEdges(fragment)) {
    const Edge& edge = g.edge(e);
    builder.AddEdge(edge.src, edge.dst, edge.weight);
  }
  if (num_real_edges_out != nullptr) {
    *num_real_edges_out = frag.FragmentEdges(fragment).size();
  }
  if (complementary != nullptr) {
    TCF_RETURN_NOT_OK(complementary->ForFragment(fragment)
                          .ForEach([&](const PathTuple& t) {
                            builder.AddEdge(t.src, t.dst, t.cost);
                          }));
  }
  return builder.Build();
}

namespace {

LocalQueryResult RunRelational(const Fragmentation& frag,
                               const ComplementaryInfo* complementary,
                               const LocalQuerySpec& spec,
                               TcAlgorithm algorithm) {
  LocalQueryResult result;
  Result<Relation> base = AugmentedRelation(frag, complementary,
                                            spec.fragment);
  if (!base.ok()) {
    result.status = base.status();
    return result;
  }
  TcOptions options;
  options.algorithm = algorithm;
  options.semiring = TcSemiring::kMinPlus;
  options.sources = spec.sources;
  options.targets = spec.targets;
  result.paths = TransitiveClosure(base.value(), options, &result.stats);
  return result;
}

LocalQueryResult RunDijkstra(const Fragmentation& frag,
                             const ComplementaryInfo* complementary,
                             const LocalQuerySpec& spec) {
  LocalQueryResult result;
  Result<Graph> built = BuildAugmentedFragment(frag, complementary,
                                               spec.fragment);
  if (!built.ok()) {
    result.status = built.status();
    return result;
  }
  const Graph augmented = std::move(built).value();
  for (NodeId s : spec.sources) {
    ShortestPaths sp = Dijkstra(augmented, s);
    size_t settled = 0;
    for (Weight d : sp.distance) {
      if (d != kInfinity) ++settled;
    }
    result.stats.iterations += settled;
    for (NodeId t : spec.targets) {
      if (t == s) continue;
      if (sp.distance[t] != kInfinity) {
        result.paths.Add(s, t, sp.distance[t]);
      }
    }
  }
  return result;
}

}  // namespace

LocalQueryResult RunLocalQuery(const Fragmentation& frag,
                               const ComplementaryInfo* complementary,
                               const LocalQuerySpec& spec,
                               LocalEngine engine) {
  TCF_CHECK(spec.fragment < frag.NumFragments());
  TCF_CHECK(!spec.sources.empty() && !spec.targets.empty());

  LocalQueryResult result;
  switch (engine) {
    case LocalEngine::kSemiNaive:
      result = RunRelational(frag, complementary, spec, TcAlgorithm::kSemiNaive);
      break;
    case LocalEngine::kSmart:
      result = RunRelational(frag, complementary, spec, TcAlgorithm::kSmart);
      break;
    case LocalEngine::kDijkstra:
      result = RunDijkstra(frag, complementary, spec);
      break;
  }
  // A failed subquery stays failed: no post-processing can repair a
  // partial path relation.
  if (!result.status.ok()) return result;

  // Zero-cost pass-through tuples for shared source/target nodes. The
  // relational closure only derives paths of length >= 1, and a chain may
  // cross a fragment at a single disconnection-set node.
  for (NodeId v : spec.sources) {
    if (spec.targets.count(v)) result.paths.Add(v, v, 0.0);
  }
  result.paths.AggregateMin();
  result.paths.SortCanonical();
  result.stats.result_size = result.paths.size();
  return result;
}

}  // namespace tcf
