// The disconnection set approach instantiated for a second path problem —
// widest (bottleneck-capacity) paths: "what is the largest shipment that
// can travel from A to B?". Sec. 2.1: "these properties depend on the
// particular path problem considered" and "Complementary information is
// different for each type of path problem" — here it is the globally
// *widest* capacity between any two border nodes of a fragment, and the
// final assembly combines per-fragment answers with max-min joins instead
// of min-plus ones.
//
// Edge weights are interpreted as capacities and must be > 0.
#pragma once

#include <memory>

#include "dsa/chains.h"
#include "dsa/complementary.h"
#include "dsa/executor.h"

namespace tcf {

struct BottleneckAnswer {
  bool connected = false;
  /// Max over paths of the min edge capacity; kInfinity when from == to.
  Weight capacity = 0.0;
  size_t chains_considered = 0;
};

/// Bottleneck-path database over a fragmentation. Precomputes capacity
/// complementary information on construction; `frag` must outlive it.
class BottleneckDsa {
 public:
  explicit BottleneckDsa(const Fragmentation* frag, size_t max_chains = 64);

  const ComplementaryInfo& complementary() const { return complementary_; }

  BottleneckAnswer WidestPath(NodeId from, NodeId to,
                              ExecutionReport* report = nullptr) const;

 private:
  /// Widest capacities from every node of `sources` to every node of
  /// `targets` inside the capacity-augmented fragment.
  Relation LocalWidest(FragmentId fragment, const NodeSet& sources,
                       const NodeSet& targets) const;

  const Fragmentation* frag_;
  size_t max_chains_;
  ComplementaryInfo complementary_;  // shortcut costs = capacities
};

/// Builds the capacity complementary information: for every fragment, the
/// globally widest capacity between each ordered pair of its border nodes.
ComplementaryInfo PrecomputeCapacityComplementary(const Fragmentation& frag);

}  // namespace tcf
