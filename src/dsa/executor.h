// Phase orchestration of the disconnection set approach: run the per-site
// subqueries in parallel ("neither communication nor synchronization is
// required during the first phase"), then assemble the answer with "a
// sequence of binary joins between a number of very small relations"
// (Sec. 2.1), accounting for the communication the final phase causes.
#pragma once

#include <vector>

#include "dsa/local_query.h"
#include "util/thread_pool.h"

namespace tcf {

/// Per-site execution record.
struct SiteReport {
  FragmentId fragment = 0;
  TcStats stats;
  double seconds = 0.0;       // site compute time
  size_t result_tuples = 0;   // tuples shipped to the coordinator
};

/// Whole-query execution record — the quantities behind the paper's
/// performance claims (speed-up, workload balance, keyhole selectivity).
struct ExecutionReport {
  std::vector<SiteReport> sites;

  double phase1_wall_seconds = 0.0;  // parallel elapsed time
  double phase1_cpu_seconds = 0.0;   // sum of site seconds (1-processor cost)
  double assembly_seconds = 0.0;
  size_t assembly_join_tuples = 0;   // pre-aggregation join cardinality
  size_t communication_tuples = 0;   // phase-2 input tuples moved

  /// Max site seconds: the straggler that bounds the parallel finish time
  /// (Sec. 2.2's workload-balance issue).
  double SlowestSiteSeconds() const;
  double TotalSiteSeconds() const;
};

/// Runs all `specs` in parallel on `pool` (or sequentially when pool is
/// null) and appends one SiteReport each. Results are returned in spec
/// order.
std::vector<LocalQueryResult> RunSites(const Fragmentation& frag,
                                       const ComplementaryInfo* complementary,
                                       const std::vector<LocalQuerySpec>& specs,
                                       LocalEngine engine, ThreadPool* pool,
                                       ExecutionReport* report);

/// Left-fold min-plus join over a chain's local results; returns the final
/// small relation. Join statistics are added to `report`.
Relation AssembleChain(const std::vector<const Relation*>& chain_results,
                       ExecutionReport* report);

}  // namespace tcf
