// Phase orchestration of the disconnection set approach: run the per-site
// subqueries in parallel ("neither communication nor synchronization is
// required during the first phase"), then assemble the answer with "a
// sequence of binary joins between a number of very small relations"
// (Sec. 2.1), accounting for the communication the final phase causes.
//
// This header is the *re-entrant execution core* shared by the single-query
// API (dsa/query_api.h) and the batch executor (dsa/batch.h): planning
// (chain lookup + subquery interning), phase-1 fan-out, and per-chain
// assembly are all free functions over immutable inputs, so any number of
// coordinator threads may run queries against the same fragmentation and
// complementary information concurrently.
#pragma once

#include <map>
#include <vector>

#include "dsa/chains.h"
#include "dsa/complementary.h"
#include "dsa/local_query.h"
#include "util/thread_pool.h"

namespace tcf {

/// Per-site execution record.
struct SiteReport {
  FragmentId fragment = 0;
  TcStats stats;
  double seconds = 0.0;       // site compute time
  size_t result_tuples = 0;   // tuples shipped to the coordinator
};

/// Whole-query execution record — the quantities behind the paper's
/// performance claims (speed-up, workload balance, keyhole selectivity).
struct ExecutionReport {
  std::vector<SiteReport> sites;

  double phase1_wall_seconds = 0.0;  // parallel elapsed time
  double phase1_cpu_seconds = 0.0;   // sum of site seconds (1-processor cost)
  double assembly_seconds = 0.0;
  size_t assembly_join_tuples = 0;   // pre-aggregation join cardinality
  size_t communication_tuples = 0;   // phase-2 input tuples moved

  /// Max site seconds: the straggler that bounds the parallel finish time
  /// (Sec. 2.2's workload-balance issue).
  double SlowestSiteSeconds() const;
  double TotalSiteSeconds() const;

  /// Folds `other`'s counters and site records into this report.
  void Merge(const ExecutionReport& other);
};

/// Answer to one query.
struct QueryAnswer {
  bool connected = false;
  Weight cost = kInfinity;            // shortest-path cost (min-plus)
  size_t chains_considered = 0;
  std::vector<FragmentId> fragments_involved;  // distinct, phase-1 sites
};

/// Answer to a route query: the cost plus the realizing node sequence in
/// the base graph (shortcut hops expanded through the complementary
/// witnesses). `route` is empty when unconnected, {from} when from == to.
struct RouteAnswer {
  QueryAnswer answer;
  std::vector<NodeId> route;
};

/// Interning table for keyhole subqueries: one entry per distinct
/// (fragment, sources, targets) triple, so a fragment computes each
/// selection once no matter how many chains — or, in a batch, how many
/// *queries* — need it. Not internally synchronized: each single query
/// interns into its own table, and the batch executor interns its whole
/// batch from the coordinator thread before the parallel phase.
class SpecTable {
 public:
  /// Returns the index of `spec`, inserting it if new.
  size_t Intern(LocalQuerySpec spec);

  const std::vector<LocalQuerySpec>& specs() const { return specs_; }
  size_t size() const { return specs_.size(); }

 private:
  std::map<std::tuple<FragmentId, std::vector<NodeId>, std::vector<NodeId>>,
           size_t>
      index_;
  std::vector<LocalQuerySpec> specs_;
};

/// The shared front half of every query: the chains connecting the two
/// endpoint fragments, with each hop resolved to an interned subquery.
struct QueryPlan {
  std::vector<FragmentChain> chains;
  /// chain_specs[c][i]: SpecTable index for hop i of chain c.
  std::vector<std::vector<size_t>> chain_specs;
  /// Plan-cache accounting for this plan's chain lookups (zero when no
  /// cache was supplied).
  size_t cache_hits = 0;
  size_t cache_misses = 0;
};

/// Builds the plan for a (from, to) query: enumerate the chains between
/// every endpoint-fragment pair (through `chain_cache` when non-null),
/// dedupe them, and intern one subquery per chain hop into `specs`.
/// Requires from != to. Thread-safe for concurrent callers as long as each
/// passes its own SpecTable.
QueryPlan BuildQueryPlan(const Fragmentation& frag, NodeId from, NodeId to,
                         size_t max_chains, ChainPlanCache* chain_cache,
                         SpecTable* specs);

/// The distinct fragments the plan's subqueries touch, ascending.
std::vector<FragmentId> InvolvedFragments(const Fragmentation& frag,
                                          const QueryPlan& plan,
                                          const SpecTable& specs);

/// Runs all `specs` in parallel on `pool` (or sequentially when pool is
/// null) and appends one SiteReport each. Results are returned in spec
/// order. Safe to call concurrently from several coordinator threads
/// sharing one pool.
std::vector<LocalQueryResult> RunSites(const Fragmentation& frag,
                                       const ComplementaryInfo* complementary,
                                       const std::vector<LocalQuerySpec>& specs,
                                       LocalEngine engine, ThreadPool* pool,
                                       ExecutionReport* report);

/// Left-fold min-plus join over a chain's local results; returns the final
/// small relation. Join statistics are added to `report`.
Relation AssembleChain(const std::vector<const Relation*>& chain_results,
                       ExecutionReport* report);

/// Assembles the shortest-path cost answer from phase-1 results, where
/// `results[i]` answers `specs`' i-th subquery. Handles the empty-plan
/// (disconnected fragments) case; `from == to` must be short-circuited by
/// the caller. Only reads shared state, so concurrent assembly of
/// different queries over one results vector is safe.
QueryAnswer AssembleCostAnswer(const Fragmentation& frag,
                               const QueryPlan& plan, const SpecTable& specs,
                               NodeId from, NodeId to,
                               const std::vector<LocalQueryResult>& results,
                               ExecutionReport* report);

/// Assembles the cost *and* the realizing route: a dynamic program over
/// each chain's relay layers picks the winning chain and relay sequence,
/// then each leg is re-expanded inside its fragment with shortcut hops
/// replaced by their complementary witnesses. Same concurrency contract as
/// AssembleCostAnswer.
RouteAnswer AssembleRouteAnswer(const Fragmentation& frag,
                                const ComplementaryInfo& complementary,
                                const QueryPlan& plan, const SpecTable& specs,
                                NodeId from, NodeId to,
                                const std::vector<LocalQueryResult>& results,
                                ExecutionReport* report);

}  // namespace tcf
