// Phase orchestration of the disconnection set approach: run the per-site
// subqueries in parallel ("neither communication nor synchronization is
// required during the first phase"), then assemble the answer with "a
// sequence of binary joins between a number of very small relations"
// (Sec. 2.1), accounting for the communication the final phase causes.
//
// This header is the *re-entrant execution core* shared by the single-query
// API (dsa/query_api.h) and the batch executor (dsa/batch.h): planning
// (chain lookup + subquery interning), phase-1 fan-out, and per-chain
// assembly are all free functions over immutable inputs, so any number of
// coordinator threads may run queries against the same fragmentation and
// complementary information concurrently.
#pragma once

#include <map>
#include <memory>
#include <tuple>
#include <utility>
#include <vector>

#include "dsa/chains.h"
#include "dsa/complementary.h"
#include "dsa/local_query.h"
#include "util/sharded_table.h"
#include "util/thread_pool.h"

namespace tcf {

/// Per-site execution record.
struct SiteReport {
  FragmentId fragment = 0;
  TcStats stats;
  double seconds = 0.0;       // site compute time
  size_t result_tuples = 0;   // tuples shipped to the coordinator
};

/// Whole-query execution record — the quantities behind the paper's
/// performance claims (speed-up, workload balance, keyhole selectivity).
struct ExecutionReport {
  std::vector<SiteReport> sites;

  double phase1_wall_seconds = 0.0;  // parallel elapsed time
  double phase1_cpu_seconds = 0.0;   // sum of site seconds (1-processor cost)
  double assembly_seconds = 0.0;
  size_t assembly_join_tuples = 0;   // pre-aggregation join cardinality
  size_t communication_tuples = 0;   // phase-2 input tuples moved

  /// Max site seconds: the straggler that bounds the parallel finish time
  /// (Sec. 2.2's workload-balance issue).
  double SlowestSiteSeconds() const;
  double TotalSiteSeconds() const;

  /// Folds `other`'s counters and site records into this report.
  void Merge(const ExecutionReport& other);
};

/// Answer to one query. `status` is OK for every successful evaluation —
/// including a clean "not connected" — and non-OK when a phase-1 subquery
/// could not read its (paged) storage: then connected/cost are
/// meaningless and the caller must surface the error, not the answer.
struct QueryAnswer {
  bool connected = false;
  Weight cost = kInfinity;            // shortest-path cost (min-plus)
  size_t chains_considered = 0;
  std::vector<FragmentId> fragments_involved;  // distinct, phase-1 sites
  Status status = Status::OK();
};

/// Answer to a route query: the cost plus the realizing node sequence in
/// the base graph (shortcut hops expanded through the complementary
/// witnesses). `route` is empty when unconnected, {from} when from == to.
struct RouteAnswer {
  QueryAnswer answer;
  std::vector<NodeId> route;
};

/// Canonical identity of a keyhole subquery: (fragment, sorted sources,
/// sorted targets). The key carries everything a LocalQuerySpec holds, so
/// interning tables materialize the spec from the key on first sight.
using SpecKey =
    std::tuple<FragmentId, std::vector<NodeId>, std::vector<NodeId>>;

/// Builds the canonical key of `spec` (sorts its node sets).
SpecKey MakeSpecKey(const LocalQuerySpec& spec);
/// Materializes the spec a key denotes.
LocalQuerySpec SpecFromKey(const SpecKey& key);

struct SpecKeyHash {
  size_t operator()(const SpecKey& key) const;
};

/// Where a planner interns its keyhole subqueries. Intern returns an
/// opaque ref: for SpecTable it is the flat index into specs(); for
/// ShardedSpecTable it is a shard-encoded handle that Flatten() later maps
/// to a flat index. Refs from one sink must never be mixed with another's.
class SpecSink {
 public:
  virtual ~SpecSink() = default;

  /// Returns the ref of the subquery `key` denotes, interning it if new.
  virtual size_t Intern(SpecKey key) = 0;
};

/// Interning table for keyhole subqueries: one entry per distinct
/// (fragment, sources, targets) triple, so a fragment computes each
/// selection once no matter how many chains need it. Not internally
/// synchronized — each single query interns into its own table; batched
/// queries intern concurrently into a ShardedSpecTable instead.
class SpecTable : public SpecSink {
 public:
  /// Returns the index of the spec `key` denotes, inserting it if new.
  size_t Intern(SpecKey key) override;

  const std::vector<LocalQuerySpec>& specs() const { return specs_; }
  size_t size() const { return specs_.size(); }

 private:
  std::map<SpecKey, size_t> index_;
  std::vector<LocalQuerySpec> specs_;
};

/// The batch executor's interning table: mutex-striped shards keyed by the
/// hash of the (fragment, sources, targets) triple, so any number of
/// coordinator threads intern concurrently and contend only on hash
/// collisions. Refs are shard-encoded handles; after the parallel planning
/// phase, Flatten() seals the table into the flat spec vector the phase-1
/// fan-out consumes and maps every handle to its flat index.
class ShardedSpecTable : public SpecSink {
 public:
  explicit ShardedSpecTable(size_t num_shards = 64);

  /// Thread-safe. Returns a shard-encoded handle, NOT a flat index.
  size_t Intern(SpecKey key) override;

  size_t size() const { return table_.size(); }

  struct Flat {
    std::vector<LocalQuerySpec> specs;
    std::vector<size_t> offsets;

    /// Maps an Intern handle to its index in `specs`.
    size_t IndexOf(size_t ref) const;
  };

  /// Moves all specs into one flat vector (shard-major order) and leaves
  /// the table empty. Callers must be quiescent (no concurrent Intern).
  Flat Flatten();

 private:
  ShardedTable<SpecKey, LocalQuerySpec, SpecKeyHash> table_;
};

/// The shared front half of every query: the chains connecting the two
/// endpoint fragments, with each hop resolved to an interned subquery.
struct QueryPlan {
  std::vector<FragmentChain> chains;
  /// chain_specs[c][i]: SpecTable index for hop i of chain c.
  std::vector<std::vector<size_t>> chain_specs;
  /// Plan-cache accounting for this plan's chain lookups (zero when no
  /// cache was supplied).
  size_t cache_hits = 0;
  size_t cache_misses = 0;
};

/// Builds the plan for a (from, to) query. With a cache, the (from, to)
/// node pair's *interned plan* is fetched (built through the cache's
/// skeletons on a miss — it survives batch boundaries, so hot pairs skip
/// fragment location, skeleton lookups, and chain dedup on every later
/// query) and instantiated into `specs`; without one, every skeleton is
/// expanded on the spot. Either way each chain hop's subquery is interned
/// into `specs` with the query constants stamped into the endpoint slots.
/// Requires from != to. Thread-safe for concurrent callers sharing one
/// cache, as long as the sink is its own (SpecTable) or internally
/// synchronized (ShardedSpecTable).
QueryPlan BuildQueryPlan(const Fragmentation& frag, NodeId from, NodeId to,
                         size_t max_chains, ChainPlanCache* chain_cache,
                         SpecSink* specs);

/// Stamps an interned plan's endpoints into its skeleton-relative hop
/// templates and interns one subquery per hop into `specs` — the
/// cross-batch fast path of BuildQueryPlan. `(from, to)` is the pair the
/// CALLER is planning: it must equal the plan's own endpoints in either
/// orientation (ChainPlanCache::PlanFor aliases the unordered pair onto
/// one entry). In the forward orientation the produced QueryPlan is
/// bit-identical to building from scratch; in the reverse orientation
/// every chain and its hops are emitted element-wise reversed with the
/// source/target selections swapped — valid because disconnection sets
/// and fragment adjacency are symmetric, and answer assembly minimizes
/// over chains, so chain direction is immaterial to cost and route
/// correctness. cache_hits/cache_misses are zero either way
/// (instantiation performs no skeleton lookups).
QueryPlan InstantiateInternedPlan(const InternedPlan& plan, NodeId from,
                                  NodeId to, SpecSink* specs);

/// A whole batch of endpoint pairs planned in parallel: one plan pointer
/// per pair (nullptr for trivial from == to pairs), the sealed flat spec
/// vector phase 1 consumes, and the sharing/cache accounting.
struct ParallelPlanResult {
  std::vector<const QueryPlan*> plans;
  ShardedSpecTable::Flat flat;
  /// Owns the distinct plans `plans` points into.
  std::unique_ptr<ShardedTable<uint64_t, QueryPlan, PairKeyHash>> memo;
  /// Pairs whose (from, to) plan was already interned — they skipped
  /// chain lookup and subquery interning outright.
  size_t memo_hits = 0;
  /// Cross-batch interned-plan cache accounting, counted per distinct
  /// pair planned this batch: a hit instantiated a plan interned by an
  /// earlier batch (or single query); a miss built and published it.
  size_t interned_plan_hits = 0;
  size_t interned_plan_misses = 0;
  /// Skeleton-cache accounting summed over the distinct plans.
  size_t cache_hits = 0;
  size_t cache_misses = 0;

  size_t distinct_plans() const { return memo->size(); }
};

/// The shared coordinator path of BatchExecutor and SiteNetwork: plans
/// every endpoint pair in parallel on `pool` (sequentially when null).
/// Whole plans intern into a sharded memo by (from, to) so repeats skip
/// planning, keyhole subqueries intern into one ShardedSpecTable
/// batch-wide, and the table is sealed with every plan's refs rewritten
/// to flat spec indices. Endpoints must be in range (callers validate);
/// from == to pairs yield a null plan.
ParallelPlanResult PlanBatchInParallel(
    const Fragmentation& frag,
    const std::vector<std::pair<NodeId, NodeId>>& endpoints,
    size_t max_chains, ChainPlanCache* chain_cache, ThreadPool* pool);

/// The distinct fragments the plan's subqueries touch, ascending. `specs`
/// is the flat spec vector the plan's refs index (SpecTable::specs(), or a
/// sealed ShardedSpecTable::Flat::specs).
std::vector<FragmentId> InvolvedFragments(
    const Fragmentation& frag, const QueryPlan& plan,
    const std::vector<LocalQuerySpec>& specs);

/// Runs all `specs` in parallel on `pool` (or sequentially when pool is
/// null) and appends one SiteReport each. Results are returned in spec
/// order. Safe to call concurrently from several coordinator threads
/// sharing one pool.
std::vector<LocalQueryResult> RunSites(const Fragmentation& frag,
                                       const ComplementaryInfo* complementary,
                                       const std::vector<LocalQuerySpec>& specs,
                                       LocalEngine engine, ThreadPool* pool,
                                       ExecutionReport* report);

/// Left-fold min-plus join over a chain's local results; returns the final
/// small relation. Join statistics are added to `report`.
Relation AssembleChain(const std::vector<const Relation*>& chain_results,
                       ExecutionReport* report);

/// Assembles the shortest-path cost answer from phase-1 results, where
/// `results[i]` answers `specs`' i-th subquery. Handles the empty-plan
/// (disconnected fragments) case; `from == to` must be short-circuited by
/// the caller. Only reads shared state, so concurrent assembly of
/// different queries over one results vector is safe.
QueryAnswer AssembleCostAnswer(const Fragmentation& frag,
                               const QueryPlan& plan,
                               const std::vector<LocalQuerySpec>& specs,
                               NodeId from, NodeId to,
                               const std::vector<LocalQueryResult>& results,
                               ExecutionReport* report);

/// Assembles the cost *and* the realizing route: a dynamic program over
/// each chain's relay layers picks the winning chain and relay sequence,
/// then each leg is re-expanded inside its fragment with shortcut hops
/// replaced by their complementary witnesses. Same concurrency contract as
/// AssembleCostAnswer.
RouteAnswer AssembleRouteAnswer(const Fragmentation& frag,
                                const ComplementaryInfo& complementary,
                                const QueryPlan& plan,
                                const std::vector<LocalQuerySpec>& specs,
                                NodeId from, NodeId to,
                                const std::vector<LocalQueryResult>& results,
                                ExecutionReport* report);

}  // namespace tcf
