// Standardized multi-query workload generation for the batch layer, in the
// style of workload suites like SMOL: a WorkloadSpec names a query mix and
// a size, and GenerateWorkload materializes a deterministic query vector
// for a concrete fragmentation. The mixes stress different parts of the
// execution pipeline:
//
//   kUniform         — endpoints uniform over all nodes: baseline, little
//                      sharing beyond chance collisions.
//   kHotPair         — a Zipf-like skew: most queries repeat a small set of
//                      hot endpoint pairs. The best case for the chain-plan
//                      cache and cross-query subquery deduplication.
//   kWithinFragment  — both endpoints in one fragment: single-site queries
//                      that never touch a disconnection set.
//   kCrossChain      — endpoints in fragments far apart in the
//                      fragmentation graph: maximum-length chains, the
//                      worst case for phase-2 assembly.
#pragma once

#include <vector>

#include "dsa/batch.h"
#include "util/rng.h"

namespace tcf {

enum class WorkloadMix { kUniform, kHotPair, kWithinFragment, kCrossChain };

const char* WorkloadMixName(WorkloadMix mix);

struct WorkloadSpec {
  WorkloadMix mix = WorkloadMix::kUniform;
  size_t num_queries = 1000;
  /// Kind stamped on every generated query.
  QueryKind kind = QueryKind::kCost;
  /// kHotPair: fraction of queries drawn from the hot set and its size.
  double hot_fraction = 0.9;
  size_t num_hot_pairs = 8;
};

/// Generates `spec.num_queries` queries over `frag`'s graph, deterministic
/// in `rng`'s state. Mixes that need structure the fragmentation cannot
/// offer (e.g. kCrossChain on a single-fragment database) degrade to the
/// nearest simpler mix rather than failing.
std::vector<Query> GenerateWorkload(const Fragmentation& frag,
                                    const WorkloadSpec& spec, Rng* rng);

}  // namespace tcf
