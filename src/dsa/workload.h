// Standardized multi-query workload generation for the batch layer, in the
// style of workload suites like SMOL: a WorkloadSpec names a query mix and
// a size, and GenerateWorkload materializes a deterministic query vector
// for a concrete fragmentation. The mixes stress different parts of the
// execution pipeline:
//
//   kUniform         — endpoints uniform over all nodes: baseline, little
//                      sharing beyond chance collisions.
//   kHotPair         — a Zipf-like skew: most queries repeat a small set of
//                      hot endpoint pairs. The best case for the chain-plan
//                      cache and cross-query subquery deduplication.
//   kWithinFragment  — both endpoints in one fragment: single-site queries
//                      that never touch a disconnection set.
//   kCrossChain      — endpoints in fragments far apart in the
//                      fragmentation graph: maximum-length chains, the
//                      worst case for phase-2 assembly.
#pragma once

#include <vector>

#include "dsa/batch.h"
#include "dsa/maintenance.h"
#include "util/rng.h"

namespace tcf {

enum class WorkloadMix { kUniform, kHotPair, kWithinFragment, kCrossChain };

const char* WorkloadMixName(WorkloadMix mix);

/// How a streaming workload's queries arrive in time (the admission
/// layer's load shape, see dsa/service.h):
///
///   kUniform — a steady trickle: arrivals evenly spaced at the mean rate
///              with bounded jitter. Micro-batches fill by rate alone.
///   kBursty  — on/off traffic: bursts of back-to-back arrivals much
///              faster than the mean rate, separated by idle gaps that
///              restore the mean. The stress case for flush-on-size vs
///              flush-on-time and for queue backpressure.
enum class ArrivalProcess { kUniform, kBursty };

const char* ArrivalProcessName(ArrivalProcess process);

struct WorkloadSpec {
  WorkloadMix mix = WorkloadMix::kUniform;
  size_t num_queries = 1000;
  /// Kind stamped on every generated query.
  QueryKind kind = QueryKind::kCost;
  /// kHotPair: fraction of queries drawn from the hot set and its size.
  double hot_fraction = 0.9;
  size_t num_hot_pairs = 8;
  /// kHotPair: fraction of hot-set draws emitted REVERSED — (to, from)
  /// instead of (from, to). 0.0 keeps every draw forward (the historical
  /// shape); 0.5 models symmetric traffic (A→B commutes paired with
  /// B→A), the case the plan cache's unordered-pair aliasing serves from
  /// one entry.
  double hot_reverse_fraction = 0.0;

  /// Streaming arrivals (GenerateArrivalTimes): process shape and mean
  /// offered rate.
  ArrivalProcess arrivals = ArrivalProcess::kUniform;
  double arrival_rate_qps = 50000.0;
  /// kBursty: bursts hold about this many back-to-back queries...
  size_t burst_size = 32;
  /// ...arriving this many times faster than the mean rate (the idle gap
  /// after each burst restores the mean).
  double burst_speedup = 10.0;

  /// GenerateMixedWorkload: fraction of operations that are edge updates
  /// (reweight / insert / delete of random edges) instead of queries.
  /// 0.0 reproduces GenerateWorkload's pure-query stream.
  double write_fraction = 0.0;
};

/// Generates `spec.num_queries` queries over `frag`'s graph, deterministic
/// in `rng`'s state. Mixes that need structure the fragmentation cannot
/// offer (e.g. kCrossChain on a single-fragment database) degrade to the
/// nearest simpler mix rather than failing.
std::vector<Query> GenerateWorkload(const Fragmentation& frag,
                                    const WorkloadSpec& spec, Rng* rng);

/// One operation of a read/write mixed stream: a query or an edge update.
struct MixedOp {
  bool is_update = false;
  Query query;        // valid when !is_update
  EdgeUpdate update;  // valid when is_update
};

/// Generates `spec.num_queries` operations over `frag`, deterministic in
/// `rng`'s state: each op is an update with probability
/// `spec.write_fraction`, else a query drawn exactly as GenerateWorkload
/// draws them. Updates are sampled uniformly over {reweight a random
/// existing edge to a fresh weight, insert an edge between random nodes,
/// delete a random existing edge} against the INITIAL edge list — a
/// replayable script, so the same (spec, seed) always yields the same op
/// stream regardless of how it is applied.
std::vector<MixedOp> GenerateMixedWorkload(const Fragmentation& frag,
                                           const WorkloadSpec& spec,
                                           Rng* rng);

/// Arrival offsets in seconds for `spec.num_queries` queries —
/// nondecreasing, starting at 0, deterministic in `rng`'s state, with mean
/// rate `spec.arrival_rate_qps`. An open-loop load driver sleeps until
/// each offset before submitting the matching query of GenerateWorkload.
std::vector<double> GenerateArrivalTimes(const WorkloadSpec& spec, Rng* rng);

}  // namespace tcf
