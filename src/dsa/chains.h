// Chain finding in the fragmentation graph (Sec. 2.1): "for any two nodes
// in G there is only one chain of fragments G_i such that the first one
// includes the first node [...]" — when the fragmentation is loosely
// connected. "If the fragmentation is not loosely connected, it is required
// to consider all possible chains of fragments independently."
//
// On top of raw chain enumeration this header defines the *plan skeleton*:
// a fragment pair's chains fully expanded into per-hop subquery templates
// (fragment + keyhole selections, pre-sorted for interning). A skeleton
// depends only on the fragmentation — not on the query constants — so the
// ChainPlanCache keeps whole skeletons resident and a query is planned by
// stamping its two endpoints into a cached skeleton, skipping both chain
// enumeration and disconnection-set expansion on every hot fragment pair.
#pragma once

#include <memory>
#include <vector>

#include "fragment/fragmentation.h"
#include "util/lru_cache.h"

namespace tcf {

using FragmentChain = std::vector<FragmentId>;

/// All simple paths from fragment `from` to fragment `to` in the
/// fragmentation graph, shortest first, capped at `max_chains` (the paper's
/// Parallel Hierarchical Evaluation exists because this can blow up).
/// `from == to` yields the single trivial chain {from}.
std::vector<FragmentChain> FindChains(const Fragmentation& frag,
                                      FragmentId from, FragmentId to,
                                      size_t max_chains = 64);

/// One hop of a plan skeleton: the fragment plus its keyhole selections,
/// already sorted the way subquery interning wants them. An endpoint hop
/// (first / last of a chain) has no fixed selection — the planner
/// substitutes the query constant — so its side is flagged and left empty.
struct HopTemplate {
  FragmentId fragment = 0;
  std::vector<NodeId> sources;  // sorted DS nodes; empty when endpoint
  std::vector<NodeId> targets;
  bool source_is_endpoint = false;
  bool target_is_endpoint = false;
};

/// A fragment pair's fully expanded plan: every chain with its per-hop
/// subquery templates. Pure fragmentation metadata — the unit the
/// interned-plan cache stores.
struct PlanSkeleton {
  std::vector<FragmentChain> chains;           // FindChains order
  std::vector<std::vector<HopTemplate>> hops;  // parallel to chains
};

/// Expands FindChains(frag, from, to) into a skeleton: each chain hop gets
/// its disconnection-set selections resolved and sorted once.
PlanSkeleton BuildPlanSkeleton(const Fragmentation& frag, FragmentId from,
                               FragmentId to, size_t max_chains);

/// A thread-safe LRU cache of plan skeletons keyed by (from, to) fragment
/// pair. Skeletons are pure fragmentation-graph work — they depend on
/// neither the query constants nor the data — so every query between the
/// same endpoint fragments reuses one expansion. With F fragments there are
/// at most F^2 keys, so a modest capacity usually caches the whole
/// fragmentation graph; the LRU bound matters for large F (sharded
/// deployments) and keeps hot pairs resident.
///
/// One cache serves one (Fragmentation, max_chains) combination: both are
/// fixed per DsaDatabase, which owns the cache. All methods may be called
/// concurrently.
class ChainPlanCache {
 public:
  explicit ChainPlanCache(size_t capacity = 4096);

  /// The plan skeleton for `from` -> `to`, computed via BuildPlanSkeleton
  /// on a miss. `was_hit_out`, if non-null, reports whether this lookup was
  /// a cache hit (used for per-batch accounting on top of the cumulative
  /// Stats()).
  std::shared_ptr<const PlanSkeleton> SkeletonFor(const Fragmentation& frag,
                                                  FragmentId from,
                                                  FragmentId to,
                                                  size_t max_chains,
                                                  bool* was_hit_out = nullptr);

  /// The chains between `from` and `to` — a view into the cached skeleton
  /// (same entry, same stats).
  std::shared_ptr<const std::vector<FragmentChain>> ChainsBetween(
      const Fragmentation& frag, FragmentId from, FragmentId to,
      size_t max_chains, bool* was_hit_out = nullptr);

  /// Cumulative hit/miss/eviction counters and resident entry count.
  LruCacheStats Stats() const { return cache_.Stats(); }
  size_t capacity() const { return cache_.capacity(); }
  void Clear() { cache_.Clear(); }

 private:
  LruCache<uint64_t, PlanSkeleton> cache_;
};

}  // namespace tcf
