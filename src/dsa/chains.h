// Chain finding in the fragmentation graph (Sec. 2.1): "for any two nodes
// in G there is only one chain of fragments G_i such that the first one
// includes the first node [...]" — when the fragmentation is loosely
// connected. "If the fragmentation is not loosely connected, it is required
// to consider all possible chains of fragments independently."
//
// On top of raw chain enumeration this header defines the *plan skeleton*:
// a fragment pair's chains fully expanded into per-hop subquery templates
// (fragment + keyhole selections, pre-sorted for interning). A skeleton
// depends only on the fragmentation — not on the query constants — so the
// ChainPlanCache keeps whole skeletons resident and a query is planned by
// stamping its two endpoints into a cached skeleton, skipping both chain
// enumeration and disconnection-set expansion on every hot fragment pair.
//
// One level up sits the *interned plan* (InternedPlan): a (from, to) NODE
// pair's whole plan — its deduplicated chains, each referring back into
// the skeletons it came from by skeleton-relative (skeleton, chain) refs.
// Those refs are pure fragmentation metadata plus the two query constants;
// they name no SpecTable slots, so they outlive any batch's spec-table
// sealing. The ChainPlanCache keeps interned plans resident across batch
// boundaries: a later batch (or single query) that repeats a hot (from,
// to) pair skips endpoint-fragment location, skeleton lookups, and chain
// deduplication outright, and only re-stamps the hop templates into its
// own spec sink (see InstantiateInternedPlan in dsa/executor.h).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "fragment/fragmentation.h"
#include "util/lru_cache.h"

namespace tcf {

/// Hash for PairKey-encoded (from, to) keys in plan caches and sharded
/// plan memos. std::hash<uint64_t> is the identity on the common standard
/// libraries, which would shard a memo by `to % num_shards` — a
/// hub-destination batch would then serialize all planning on one shard
/// mutex. Finalize with a full-avalanche mix (splitmix64) instead.
struct PairKeyHash {
  size_t operator()(uint64_t key) const {
    key += 0x9e3779b97f4a7c15ull;
    key = (key ^ (key >> 30)) * 0xbf58476d1ce4e5b9ull;
    key = (key ^ (key >> 27)) * 0x94d049bb133111ebull;
    return static_cast<size_t>(key ^ (key >> 31));
  }
};

using FragmentChain = std::vector<FragmentId>;

/// Default cap on enumerated chains per fragment pair — the single source
/// of truth shared by DsaOptions::max_chains and the SiteNetwork
/// coordinator planner (which must plan with the same cap to produce the
/// same chain sets).
inline constexpr size_t kDefaultMaxChains = 64;

/// All simple paths from fragment `from` to fragment `to` in the
/// fragmentation graph, shortest first, capped at `max_chains` (the paper's
/// Parallel Hierarchical Evaluation exists because this can blow up).
/// `from == to` yields the single trivial chain {from}.
std::vector<FragmentChain> FindChains(const Fragmentation& frag,
                                      FragmentId from, FragmentId to,
                                      size_t max_chains = 64);

/// One hop of a plan skeleton: the fragment plus its keyhole selections,
/// already sorted the way subquery interning wants them. An endpoint hop
/// (first / last of a chain) has no fixed selection — the planner
/// substitutes the query constant — so its side is flagged and left empty.
struct HopTemplate {
  FragmentId fragment = 0;
  std::vector<NodeId> sources;  // sorted DS nodes; empty when endpoint
  std::vector<NodeId> targets;
  bool source_is_endpoint = false;
  bool target_is_endpoint = false;
};

/// A fragment pair's fully expanded plan: every chain with its per-hop
/// subquery templates. Pure fragmentation metadata — the unit the
/// interned-plan cache stores.
struct PlanSkeleton {
  std::vector<FragmentChain> chains;           // FindChains order
  std::vector<std::vector<HopTemplate>> hops;  // parallel to chains
};

/// Expands FindChains(frag, from, to) into a skeleton: each chain hop gets
/// its disconnection-set selections resolved and sorted once.
PlanSkeleton BuildPlanSkeleton(const Fragmentation& frag, FragmentId from,
                               FragmentId to, size_t max_chains);

/// A (from, to) NODE pair's plan in skeleton-relative form: the
/// deduplicated chains of every endpoint-fragment pair, each chain a
/// (skeleton, chain) ref into one of the cached skeletons the plan holds
/// alive. Nothing here names a SpecTable slot, so an interned plan
/// survives batch boundaries — instantiation stamps `from`/`to` into the
/// referenced hop templates and interns the hops into the *current*
/// batch's spec sink (InstantiateInternedPlan in dsa/executor.h).
struct InternedPlan {
  NodeId from = 0;
  NodeId to = 0;

  /// A chain's home in the skeletons this plan references.
  struct ChainRef {
    uint32_t skeleton = 0;  // index into `skeletons`
    uint32_t chain = 0;     // chain index within that skeleton
  };

  /// The distinct chains in BuildQueryPlan's first-seen order (border
  /// nodes make several endpoint-fragment pairs contribute; duplicates
  /// between their skeletons are dropped here, once, instead of per
  /// batch) — stored as refs only, so a resident plan adds no chain
  /// copies on top of the skeletons it pins.
  std::vector<ChainRef> chain_refs;
  /// The skeletons `chain_refs` index, kept alive for the plan's lifetime
  /// (eviction from the skeleton cache cannot invalidate a plan — which
  /// also means resident plans, not the skeleton cache's capacity, bound
  /// skeleton memory once this cache is in play).
  std::vector<std::shared_ptr<const PlanSkeleton>> skeletons;

  /// Number of distinct chains.
  size_t num_chains() const { return chain_refs.size(); }
  /// The i-th distinct chain, resolved through its skeleton.
  const FragmentChain& chain(size_t i) const {
    const ChainRef ref = chain_refs[i];
    return skeletons[ref.skeleton]->chains[ref.chain];
  }
  /// The i-th chain's hop templates.
  const std::vector<HopTemplate>& hops(size_t i) const {
    const ChainRef ref = chain_refs[i];
    return skeletons[ref.skeleton]->hops[ref.chain];
  }

  /// Skeleton-cache lookups performed when this plan was built (the
  /// per-batch accounting attributes them to the batch that built the
  /// plan; cache hits of the plan itself cost zero skeleton lookups).
  size_t cache_hits = 0;
  size_t cache_misses = 0;
};

/// A thread-safe LRU cache of plan skeletons keyed by (from, to) fragment
/// pair, plus an LRU cache of interned plans keyed by (from, to) NODE
/// pair. Skeletons are pure fragmentation-graph work — they depend on
/// neither the query constants nor the data — so every query between the
/// same endpoint fragments reuses one expansion. With F fragments there are
/// at most F^2 keys, so a modest capacity usually caches the whole
/// fragmentation graph; the LRU bound matters for large F (sharded
/// deployments) and keeps hot pairs resident. Interned plans have up to
/// N^2 node-pair keys, so their LRU bound does real work: it keeps the
/// hot-pair plans of repeated traffic resident across batch boundaries.
///
/// One cache serves one (Fragmentation, max_chains) combination — and,
/// under live updates, one *maintenance epoch* of it. Epoch invalidation
/// is by version succession, never in place: each cache instance is
/// stamped with the epoch it serves, and a maintenance epoch builds the
/// next version with NextEpoch(), carrying over exactly the entries the
/// new fragmentation cannot have changed. The old instance keeps serving
/// in-flight queries pinned to the old snapshot unmodified — neither
/// epoch's readers can observe (or poison) the other's entries. All
/// methods may be called concurrently.
class ChainPlanCache {
 public:
  static constexpr size_t kDefaultPlanCapacity = 1 << 16;

  /// `capacity` bounds the skeleton cache (fragment-pair keys);
  /// `plan_capacity` bounds the interned-plan cache (node-pair keys), with
  /// 0 disabling cross-batch plan interning (PlanFor then builds every
  /// time — the skeleton cache still serves the chain lookups).
  explicit ChainPlanCache(size_t capacity = 4096,
                          size_t plan_capacity = kDefaultPlanCapacity);

  /// The plan skeleton for `from` -> `to`, computed via BuildPlanSkeleton
  /// on a miss. `was_hit_out`, if non-null, reports whether this lookup was
  /// a cache hit (used for per-batch accounting on top of the cumulative
  /// Stats()).
  std::shared_ptr<const PlanSkeleton> SkeletonFor(const Fragmentation& frag,
                                                  FragmentId from,
                                                  FragmentId to,
                                                  size_t max_chains,
                                                  bool* was_hit_out = nullptr);

  /// The chains between `from` and `to` — a view into the cached skeleton
  /// (same entry, same stats).
  std::shared_ptr<const std::vector<FragmentChain>> ChainsBetween(
      const Fragmentation& frag, FragmentId from, FragmentId to,
      size_t max_chains, bool* was_hit_out = nullptr);

  /// The interned plan for the NODE pair `from` -> `to`, built through
  /// this cache's skeletons on a miss. Entries are keyed by the UNORDERED
  /// pair: (a, b) and (b, a) alias one entry (2× effective capacity), and
  /// the returned plan's own from/to say which direction built it — a
  /// caller querying the reverse direction must instantiate it reversed
  /// (InstantiateInternedPlan in dsa/executor.h does this transparently;
  /// valid because disconnection sets and fragment adjacency are
  /// symmetric, so the reverse pair's chains are the element-wise
  /// reversals of the stored ones). A racing build of the same cold
  /// pair may run twice (the loser's plan is returned to its caller and
  /// simply not cached), which keeps every caller's skeleton-lookup
  /// accounting consistent with the cumulative Stats(). `was_hit_out`, if
  /// non-null, reports whether the plan came from cache. Requires
  /// from != to.
  std::shared_ptr<const InternedPlan> PlanFor(const Fragmentation& frag,
                                              NodeId from, NodeId to,
                                              size_t max_chains,
                                              bool* was_hit_out = nullptr);

  /// Carry-over accounting of one NextEpoch() call, for the maintenance
  /// meters and the cache-invalidation-precision tests.
  struct EpochCarry {
    std::unique_ptr<ChainPlanCache> cache;
    size_t skeletons_kept = 0;
    size_t skeletons_dropped = 0;
    size_t plans_kept = 0;
    size_t plans_dropped = 0;
  };

  /// Builds this cache's successor version for the epoch `new_epoch`
  /// snapshot. `dirty_fragment[f]` marks fragments whose node set changed
  /// this epoch; `endpoint_changed[v]` marks nodes whose fragment
  /// membership changed. A skeleton survives iff none of its chains
  /// touches a dirty fragment; an interned plan additionally requires
  /// both its endpoints' memberships unchanged. The rule is exact under
  /// the caller's precondition that the epoch kept fragment ids and the
  /// fragmentation-graph adjacency intact (chains are paths in the
  /// adjacency graph, so no *new* chain can appear outside dirty
  /// fragments; a changed disconnection set always has a dirty endpoint
  /// fragment, and both endpoints of every DS crossing are on the chain).
  /// When adjacency or the fragment count changed, start cold instead
  /// (fresh ChainPlanCache). Recency and capacities carry over; counters
  /// start at zero — the new version's hit rates are its own.
  EpochCarry NextEpoch(const std::vector<bool>& dirty_fragment,
                       const std::vector<bool>& endpoint_changed,
                       uint64_t new_epoch) const;

  /// The maintenance epoch this cache version serves (0 for a fresh
  /// database).
  uint64_t epoch() const { return epoch_; }

  /// Cumulative skeleton-cache counters and resident entry count.
  LruCacheStats Stats() const { return cache_.Stats(); }
  /// Cumulative interned-plan-cache counters (all zero when disabled).
  LruCacheStats PlanStats() const {
    return plan_cache_ == nullptr ? LruCacheStats{} : plan_cache_->Stats();
  }
  size_t capacity() const { return cache_.capacity(); }
  size_t plan_capacity() const {
    return plan_cache_ == nullptr ? 0 : plan_cache_->capacity();
  }
  void Clear() {
    cache_.Clear();
    if (plan_cache_ != nullptr) plan_cache_->Clear();
  }

 private:
  uint64_t epoch_ = 0;
  LruCache<uint64_t, PlanSkeleton> cache_;
  /// Interned plans by PairKey(min(from, to), max(from, to)) — the
  /// unordered node pair; null when plan_capacity == 0.
  std::unique_ptr<LruCache<uint64_t, InternedPlan, PairKeyHash>> plan_cache_;
};

/// Builds the interned plan of a (from, to) node pair through `cache`'s
/// skeletons: locate the endpoint fragments, fetch (or expand) each
/// endpoint-pair skeleton, and dedupe the chains into skeleton-relative
/// refs. Skeleton-cache accounting lands in the returned plan's
/// cache_hits/cache_misses. Requires from != to.
InternedPlan BuildInternedPlan(const Fragmentation& frag, NodeId from,
                               NodeId to, size_t max_chains,
                               ChainPlanCache* cache);

}  // namespace tcf
