// Chain finding in the fragmentation graph (Sec. 2.1): "for any two nodes
// in G there is only one chain of fragments G_i such that the first one
// includes the first node [...]" — when the fragmentation is loosely
// connected. "If the fragmentation is not loosely connected, it is required
// to consider all possible chains of fragments independently."
#pragma once

#include <vector>

#include "fragment/fragmentation.h"

namespace tcf {

using FragmentChain = std::vector<FragmentId>;

/// All simple paths from fragment `from` to fragment `to` in the
/// fragmentation graph, shortest first, capped at `max_chains` (the paper's
/// Parallel Hierarchical Evaluation exists because this can blow up).
/// `from == to` yields the single trivial chain {from}.
std::vector<FragmentChain> FindChains(const Fragmentation& frag,
                                      FragmentId from, FragmentId to,
                                      size_t max_chains = 64);

}  // namespace tcf
