// Chain finding in the fragmentation graph (Sec. 2.1): "for any two nodes
// in G there is only one chain of fragments G_i such that the first one
// includes the first node [...]" — when the fragmentation is loosely
// connected. "If the fragmentation is not loosely connected, it is required
// to consider all possible chains of fragments independently."
#pragma once

#include <memory>
#include <vector>

#include "fragment/fragmentation.h"
#include "util/lru_cache.h"

namespace tcf {

using FragmentChain = std::vector<FragmentId>;

/// All simple paths from fragment `from` to fragment `to` in the
/// fragmentation graph, shortest first, capped at `max_chains` (the paper's
/// Parallel Hierarchical Evaluation exists because this can blow up).
/// `from == to` yields the single trivial chain {from}.
std::vector<FragmentChain> FindChains(const Fragmentation& frag,
                                      FragmentId from, FragmentId to,
                                      size_t max_chains = 64);

/// A thread-safe LRU cache of FindChains results keyed by (from, to)
/// fragment pair. Chain enumeration is pure fragmentation-graph work — it
/// depends on neither the query constants nor the data — so every query
/// between the same endpoint fragments reuses one enumeration. With F
/// fragments there are at most F^2 keys, so a modest capacity usually
/// caches the whole fragmentation graph; the LRU bound matters for large
/// F (sharded deployments) and keeps hot pairs resident.
///
/// One cache serves one (Fragmentation, max_chains) combination: both are
/// fixed per DsaDatabase, which owns the cache. All methods may be called
/// concurrently.
class ChainPlanCache {
 public:
  explicit ChainPlanCache(size_t capacity = 4096);

  /// The chains between `from` and `to`, computed via FindChains on a miss.
  /// `was_hit_out`, if non-null, reports whether this lookup was a cache
  /// hit (used for per-batch accounting on top of the cumulative Stats()).
  std::shared_ptr<const std::vector<FragmentChain>> ChainsBetween(
      const Fragmentation& frag, FragmentId from, FragmentId to,
      size_t max_chains, bool* was_hit_out = nullptr);

  /// Cumulative hit/miss/eviction counters and resident entry count.
  LruCacheStats Stats() const { return cache_.Stats(); }
  size_t capacity() const { return cache_.capacity(); }
  void Clear() { cache_.Clear(); }

 private:
  LruCache<uint64_t, std::vector<FragmentChain>> cache_;
};

}  // namespace tcf
