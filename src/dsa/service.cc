#include "dsa/service.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "dsa/sites.h"

namespace tcf {

namespace {

void AccumulateBatchStats(BatchStats* into, const BatchStats& stats) {
  into->num_queries += stats.num_queries;
  into->subqueries_requested += stats.subqueries_requested;
  into->subqueries_executed += stats.subqueries_executed;
  into->plan_cache_hits += stats.plan_cache_hits;
  into->plan_cache_misses += stats.plan_cache_misses;
  into->plan_memo_hits += stats.plan_memo_hits;
  into->plan_memo_misses += stats.plan_memo_misses;
  into->interned_plan_hits += stats.interned_plan_hits;
  into->interned_plan_misses += stats.interned_plan_misses;
  into->plan_seconds += stats.plan_seconds;
  into->phase1_seconds += stats.phase1_seconds;
  into->assemble_seconds += stats.assemble_seconds;
  into->wall_seconds += stats.wall_seconds;
}

std::vector<Result<Weight>> CostsOf(const BatchResult& result) {
  std::vector<Result<Weight>> costs;
  costs.reserve(result.answers.size());
  for (const RouteAnswer& answer : result.answers) {
    if (answer.answer.status.ok()) {
      costs.push_back(answer.answer.cost);
    } else {
      // A query that could not read its (paged) storage fails with its
      // Status; the flush worker turns it into a failed future for just
      // that query.
      costs.push_back(answer.answer.status);
    }
  }
  return costs;
}

}  // namespace

uint64_t ServiceBackend::ApplyUpdates(const std::vector<EdgeUpdate>&) {
  TCF_CHECK_MSG(false, "backend does not support updates");
  return 0;
}

std::vector<Result<Weight>> DatabaseBackend::ExecuteBatch(
    const std::vector<Query>& queries) {
  BatchResult result = executor_.Execute(queries);
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    AccumulateBatchStats(&cumulative_, result.stats);
  }
  return CostsOf(result);
}

BatchStats DatabaseBackend::cumulative_stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return cumulative_;
}

std::vector<Result<Weight>> MaintainedBackend::ExecuteBatch(
    const std::vector<Query>& queries) {
  // Pin the epoch for the whole micro-batch: a concurrent ApplyEpoch
  // publishes a successor, but this batch keeps the snapshot (and its
  // plan caches, pool, complementary info) it started with. Concurrent
  // flush workers each pin independently — this is the per-batch epoch
  // barrier: a worker picks up a published epoch at its next batch
  // boundary, never mid-batch.
  const DsaSnapshot snap = mdb_->Snapshot();
  BatchExecutor executor(snap.db.get());
  BatchResult result = executor.Execute(queries);
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    AccumulateBatchStats(&cumulative_, result.stats);
  }
  last_batch_epoch_.store(result.epoch, std::memory_order_relaxed);
  return CostsOf(result);
}

BatchStats MaintainedBackend::cumulative_stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return cumulative_;
}

uint64_t MaintainedBackend::ApplyUpdates(
    const std::vector<EdgeUpdate>& updates) {
  return mdb_->ApplyEpoch(updates).epoch;
}

std::vector<Result<Weight>> SiteNetworkBackend::ExecuteBatch(
    const std::vector<Query>& queries) {
  std::vector<std::pair<NodeId, NodeId>> pairs;
  pairs.reserve(queries.size());
  for (const Query& q : queries) pairs.emplace_back(q.from, q.to);
  const std::vector<Weight> costs = net_->BatchShortestPathCosts(pairs);
  return std::vector<Result<Weight>>(costs.begin(), costs.end());
}

namespace {

size_t ClampShards(size_t requested) {
  return std::clamp<size_t>(requested, 1, 256);
}

size_t ClampFlushWorkers(size_t requested) {
  if (requested == 0) {
    requested = std::max(1u, std::thread::hardware_concurrency());
  }
  return std::clamp<size_t>(requested, 1, 64);
}

}  // namespace

QueryService::QueryService(const DsaDatabase* db, ServiceOptions options)
    : options_(options),
      owned_backend_(std::make_unique<DatabaseBackend>(db)),
      backend_(owned_backend_.get()),
      validate_num_nodes_(db->fragmentation().graph().NumNodes()),
      routes_supported_(db->options().use_complementary) {
  Start();
}

QueryService::QueryService(MaintainedDatabase* mdb, ServiceOptions options)
    : options_(options),
      owned_backend_(std::make_unique<MaintainedBackend>(mdb)),
      backend_(owned_backend_.get()) {
  const DsaSnapshot snap = mdb->Snapshot();
  validate_num_nodes_ = snap.graph->NumNodes();
  routes_supported_ = snap.db->options().use_complementary;
  Start();
}

QueryService::QueryService(ServiceBackend* backend, ServiceOptions options)
    : options_(options), backend_(backend) {
  TCF_CHECK(backend != nullptr);
  Start();
}

void QueryService::Start() {
  TCF_CHECK(options_.max_batch > 0);
  TCF_CHECK(options_.queue_capacity > 0);
  options_.admission_shards = ClampShards(options_.admission_shards);
  options_.flush_workers = ClampFlushWorkers(options_.flush_workers);
  shards_.resize(options_.admission_shards);
  for (auto& shard : shards_) shard = std::make_unique<Shard>();

  const size_t workers = options_.flush_workers;
  group_shards_.assign(workers, {});
  all_shards_.resize(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    all_shards_[s] = s;
    group_shards_[s % workers].push_back(s);  // ascending within a group
  }

  stats_.latency_seconds = Accumulator(options_.latency_sample_cap);
  stats_.update_latency_seconds = Accumulator(options_.latency_sample_cap);
  stats_.batch_fill = Accumulator(options_.latency_sample_cap);
  start_time_ = std::chrono::steady_clock::now();

  const bool updates = backend_->SupportsUpdates();
  live_flushers_.store(static_cast<int>(workers) + (updates ? 1 : 0),
                       std::memory_order_relaxed);
  flush_threads_.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    flush_threads_.emplace_back([this, w]() { FlushWorkerLoop(w); });
  }
  if (updates) {
    update_thread_ = std::thread([this]() { UpdateLoop(); });
  }
}

QueryService::~QueryService() { Shutdown(); }

QueryService::Shard& QueryService::ShardForThisThread() {
  // Per-client (thread) affinity: one client's queries stay FIFO within
  // its stripe and two clients contend only on a hash collision. Thread
  // ids hash poorly on common standard libraries (they are pointers or
  // small integers), so finish with a full-avalanche mix.
  const size_t raw = std::hash<std::thread::id>{}(std::this_thread::get_id());
  return *shards_[PairKeyHash{}(static_cast<uint64_t>(raw)) % shards_.size()];
}

std::optional<std::future<Weight>> QueryService::Admit(Query query,
                                                       bool blocking) {
  Pending pending;
  pending.query = query;
  pending.submit_time = std::chrono::steady_clock::now();
  std::future<Weight> future = pending.promise.get_future();

  // Validate at admission when the domain is known: one bad query must
  // fail its own future, not trip the backend's TCF_CHECK on a flush
  // worker and take the whole service down.
  if (validate_num_nodes_ > 0) {
    if (query.from >= validate_num_nodes_ || query.to >= validate_num_nodes_) {
      pending.promise.set_exception(std::make_exception_ptr(
          std::out_of_range("query endpoint out of range")));
      return future;
    }
    if (query.kind == QueryKind::kRoute && !routes_supported_) {
      pending.promise.set_exception(std::make_exception_ptr(std::out_of_range(
          "route queries require complementary information")));
      return future;
    }
  }

  Shard& shard = ShardForThisThread();
  bool ring = false;
  {
    std::unique_lock<std::mutex> lock(shard.mutex);
    if (blocking) {
      shard.space_cv.wait(lock, [&]() {
        return shard.queue.size() < options_.queue_capacity || shard.stopping;
      });
      if (shard.stopping) {
        pending.promise.set_exception(std::make_exception_ptr(
            std::runtime_error("QueryService is shut down")));
        return future;
      }
    } else {
      if (shard.stopping) return std::nullopt;
      if (shard.queue.size() >= options_.queue_capacity) {
        ++shard.rejected;
        return std::nullopt;
      }
    }
    shard.queue.push_back(std::move(pending));
    ++shard.submitted;
    const size_t before = pending_.fetch_add(1, std::memory_order_relaxed);
    ring = before == 0 || before + 1 == options_.max_batch;
  }
  if (ring) RingDoorbell();
  return future;
}

void QueryService::RingDoorbell() {
  // The empty critical section is what makes the notify reliable: flush
  // workers evaluate their sleep predicates while holding flush_mutex_,
  // so the notify cannot land inside a check-then-sleep window. Only the
  // submitter whose push made the total pending count non-empty (workers
  // may be sleeping with no deadline) or made it cross max_batch (workers
  // may be sleeping until a max_wait deadline) rings; every other submit
  // touches no global state beyond one uncontended atomic increment.
  // notify_all, not notify_one: several workers may be coalescing toward
  // different deadlines and the one woken by notify_one might not be the
  // owner of the shard group that just filled.
  { std::lock_guard<std::mutex> doorbell(flush_mutex_); }
  flush_cv_.notify_all();
}

std::future<Weight> QueryService::SubmitShortestPath(NodeId from, NodeId to) {
  return *Admit(Query{from, to, QueryKind::kCost}, /*blocking=*/true);
}

std::optional<std::future<Weight>> QueryService::TrySubmit(NodeId from,
                                                           NodeId to) {
  return Admit(Query{from, to, QueryKind::kCost}, /*blocking=*/false);
}

std::vector<std::future<Weight>> QueryService::SubmitBatch(
    const std::vector<Query>& queries) {
  std::vector<std::future<Weight>> futures;
  futures.reserve(queries.size());
  for (const Query& q : queries) {
    futures.push_back(*Admit(q, /*blocking=*/true));
  }
  return futures;
}

std::future<uint64_t> QueryService::SubmitUpdate(EdgeUpdate update) {
  PendingUpdate pending;
  pending.update = update;
  pending.submit_time = std::chrono::steady_clock::now();
  std::future<uint64_t> future = pending.promise.get_future();

  if (!backend_->SupportsUpdates()) {
    pending.promise.set_exception(std::make_exception_ptr(
        std::runtime_error("backend does not support updates")));
    return future;
  }
  if (validate_num_nodes_ > 0 && (update.src >= validate_num_nodes_ ||
                                  update.dst >= validate_num_nodes_)) {
    pending.promise.set_exception(std::make_exception_ptr(
        std::out_of_range("update endpoint out of range")));
    return future;
  }

  {
    std::lock_guard<std::mutex> lock(update_mutex_);
    if (updates_stopping_) {
      pending.promise.set_exception(std::make_exception_ptr(
          std::runtime_error("QueryService is shut down")));
      return future;
    }
    update_queue_.push_back(std::move(pending));
  }
  // Updates wake their own applier thread — they neither ring the query
  // doorbell nor cut a flush worker's coalescing window short; workers
  // pick up the published epoch at their next batch boundary.
  update_cv_.notify_one();
  return future;
}

void QueryService::Shutdown() {
  // Stop the update lane first (mirroring the shard-flag protocol below):
  // an update admitted under `updates_stopping_ == false` is ordered
  // before this flag flip by update_mutex_, so the applier's final drain
  // sees it before exiting.
  {
    std::lock_guard<std::mutex> lock(update_mutex_);
    updates_stopping_ = true;
  }
  update_cv_.notify_all();
  // Flag every shard under its own lock FIRST: a submitter that pushed
  // after reading `stopping == false` is ordered before this sweep by the
  // shard mutex, and the sweep is ordered before the release-store of
  // stop_requested_ — so when a flush worker acquires the flag and
  // drains, every admitted entry is visible to it. Submitters blocked on
  // a full shard are woken here and rejected instead of deadlocking.
  for (auto& shard : shards_) {
    {
      std::lock_guard<std::mutex> lock(shard->mutex);
      shard->stopping = true;
    }
    shard->space_cv.notify_all();
  }
  stop_requested_.store(true, std::memory_order_release);
  { std::lock_guard<std::mutex> doorbell(flush_mutex_); }
  flush_cv_.notify_all();
  // join() exactly once even when Shutdown races itself (it is documented
  // thread-safe like every other public method).
  std::call_once(join_once_, [this]() {
    for (std::thread& t : flush_threads_) t.join();
    if (update_thread_.joinable()) update_thread_.join();
  });
}

ServiceStats QueryService::Stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ServiceStats snapshot = stats_;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> shard_lock(shard->mutex);
    snapshot.submitted += shard->submitted;
    snapshot.rejected += shard->rejected;
  }
  const auto end = stopped_ ? stop_time_ : std::chrono::steady_clock::now();
  snapshot.elapsed_seconds =
      std::chrono::duration<double>(end - start_time_).count();
  return snapshot;
}

std::chrono::steady_clock::time_point QueryService::FlushDeadline(
    std::chrono::steady_clock::time_point oldest,
    std::chrono::microseconds max_wait) {
  using TimePoint = std::chrono::steady_clock::time_point;
  const auto wait = std::chrono::duration_cast<TimePoint::duration>(max_wait);
  // Covers both the "queues raced empty" sentinel (oldest == max()) and
  // any near-max value whose addition would overflow into UB.
  if (oldest >= TimePoint::max() - wait) return TimePoint::max();
  return oldest + wait;
}

std::chrono::steady_clock::time_point QueryService::OldestSubmitTimeOf(
    const std::vector<size_t>& shard_indices) const {
  auto oldest = std::chrono::steady_clock::time_point::max();
  for (size_t s : shard_indices) {
    std::lock_guard<std::mutex> lock(shards_[s]->mutex);
    if (!shards_[s]->queue.empty()) {
      oldest = std::min(oldest, shards_[s]->queue.front().submit_time);
    }
  }
  return oldest;
}

std::vector<QueryService::Pending> QueryService::CollectFromShards(
    const std::vector<size_t>& shard_indices) {
  std::vector<Pending> admitted;

  // Hold every listed shard lock for the merge, acquired in ascending
  // shard-index order (shard_indices is ascending by construction — see
  // the Shard lock-order comment for why concurrent sweeps over
  // overlapping subsets cannot deadlock): entries are popped oldest-first
  // across the subset, which is the single-queue admission order
  // restricted to it, so no stripe can starve under overload.
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shard_indices.size());
  for (size_t s : shard_indices) locks.emplace_back(shards_[s]->mutex);

  std::vector<bool> popped(shard_indices.size(), false);
  while (admitted.size() < options_.max_batch) {
    size_t best = shard_indices.size();
    auto best_time = std::chrono::steady_clock::time_point::max();
    for (size_t i = 0; i < shard_indices.size(); ++i) {
      const auto& queue = shards_[shard_indices[i]]->queue;
      if (!queue.empty() && queue.front().submit_time < best_time) {
        best_time = queue.front().submit_time;
        best = i;
      }
    }
    if (best == shard_indices.size()) break;  // all listed shards empty
    auto& queue = shards_[shard_indices[best]]->queue;
    admitted.push_back(std::move(queue.front()));
    queue.pop_front();
    popped[best] = true;
  }
  pending_.fetch_sub(admitted.size(), std::memory_order_relaxed);

  for (size_t i = 0; i < shard_indices.size(); ++i) {
    locks[i].unlock();
    if (popped[i]) shards_[shard_indices[i]]->space_cv.notify_all();
  }
  return admitted;
}

std::vector<QueryService::Pending> QueryService::CollectBatch(size_t worker) {
  const std::vector<size_t>& own = group_shards_[worker];
  std::vector<Pending> admitted = CollectFromShards(own);
  if (admitted.empty() && own.size() < shards_.size()) {
    // Steal: the worker's own group is empty, so sweep everything,
    // globally oldest-first — a hot group drains through every idle
    // worker, not just its owner.
    admitted = CollectFromShards(all_shards_);
  }
  return admitted;
}

void QueryService::UpdateLoop() {
  for (;;) {
    std::vector<PendingUpdate> pending;
    {
      std::unique_lock<std::mutex> lock(update_mutex_);
      update_cv_.wait(lock, [this]() {
        return updates_stopping_ || !update_queue_.empty();
      });
      if (update_queue_.empty()) break;  // stopping, and fully drained
      pending.swap(update_queue_);
    }

    // All pending updates become ONE maintenance epoch. The snapshot swap
    // inside ApplyUpdates is the epoch barrier: flush workers executing
    // concurrently keep their pinned snapshots, and every batch collected
    // afterwards pins the new epoch (or a later one).
    std::vector<EdgeUpdate> ops;
    ops.reserve(pending.size());
    for (const PendingUpdate& p : pending) ops.push_back(p.update);
    const uint64_t epoch = backend_->ApplyUpdates(ops);

    // Record stats BEFORE fulfilling the promises, for the same
    // wake-then-snapshot consistency the query path guarantees.
    const auto done = std::chrono::steady_clock::now();
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.update_epochs;
      stats_.updates += pending.size();
      for (const PendingUpdate& p : pending) {
        stats_.update_latency_seconds.Add(
            std::chrono::duration<double>(done - p.submit_time).count());
      }
    }
    for (PendingUpdate& p : pending) p.promise.set_value(epoch);
  }
  if (live_flushers_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stopped_ = true;
    stop_time_ = std::chrono::steady_clock::now();
  }
}

void QueryService::FlushWorkerLoop(size_t worker) {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(flush_mutex_);
      flush_cv_.wait(lock, [this]() {
        return stop_requested_.load(std::memory_order_acquire) ||
               pending_.load(std::memory_order_relaxed) > 0;
      });
      if (!stop_requested_.load(std::memory_order_acquire) &&
          pending_.load(std::memory_order_relaxed) < options_.max_batch) {
        // Coalesce: sleep until the worker's own oldest entry has waited
        // max_wait. A worker whose own group is empty coalesces toward
        // the GLOBAL oldest entry's deadline instead — under saturation
        // the size predicate below fires immediately and it steals right
        // away; under a trickle the owner usually collects first and the
        // thief's sweep comes up empty. Any entry a worker pops at its
        // deadline is older than its own group's oldest, so the max_wait
        // latency bound holds either way. The deadline is advisory: a
        // concurrent popper may already have taken the entry behind it,
        // which is why FlushDeadline clamps the max() sentinel instead of
        // letting the addition overflow.
        auto oldest = OldestSubmitTimeOf(group_shards_[worker]);
        if (oldest == std::chrono::steady_clock::time_point::max()) {
          oldest = OldestSubmitTimeOf(all_shards_);
        }
        const auto deadline = FlushDeadline(oldest, options_.max_wait);
        if (deadline != std::chrono::steady_clock::time_point::max()) {
          flush_cv_.wait_until(lock, deadline, [this]() {
            return stop_requested_.load(std::memory_order_acquire) ||
                   pending_.load(std::memory_order_relaxed) >=
                       options_.max_batch;
          });
        }
      }
    }

    std::vector<Pending> admitted = CollectBatch(worker);
    if (admitted.empty()) {
      // CollectBatch returns empty only after a sweep of EVERY shard
      // found nothing, so with stop_requested_ set there is nothing left
      // to drain (the shard-flag protocol in Shutdown() guarantees no
      // admission can appear after that sweep).
      if (stop_requested_.load(std::memory_order_acquire)) break;
      continue;
    }

    std::vector<Query> batch;
    batch.reserve(admitted.size());
    for (const Pending& p : admitted) batch.push_back(p.query);
    const std::vector<Result<Weight>> costs = backend_->ExecuteBatch(batch);
    TCF_CHECK(costs.size() == admitted.size());

    // Record stats BEFORE fulfilling the promises: a client that wakes
    // from future.get() and immediately snapshots Stats() must already
    // see its own query counted.
    const auto done = std::chrono::steady_clock::now();
    std::vector<double> latencies;
    latencies.reserve(admitted.size());
    for (const Pending& p : admitted) {
      latencies.push_back(
          std::chrono::duration<double>(done - p.submit_time).count());
    }
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.batches;
      stats_.completed += admitted.size();
      stats_.batch_fill.Add(static_cast<double>(admitted.size()));
      stats_.latency_seconds.AddAll(latencies);
    }

    for (size_t i = 0; i < admitted.size(); ++i) {
      if (costs[i].ok()) {
        admitted[i].promise.set_value(costs[i].value());
      } else {
        // One failed query fails its own future; the rest of the batch
        // (and the daemon) are unaffected. The network edge's WriterLoop
        // already turns a future exception into an error frame.
        admitted[i].promise.set_exception(std::make_exception_ptr(
            std::runtime_error(costs[i].status().ToString())));
      }
    }
  }
  // The LAST flush-role thread out (worker or update applier) freezes the
  // service clock, so post-Shutdown Stats() reads one stable
  // elapsed_seconds regardless of which worker drained the final batch.
  if (live_flushers_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stopped_ = true;
    stop_time_ = std::chrono::steady_clock::now();
  }
}

}  // namespace tcf
