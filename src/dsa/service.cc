#include "dsa/service.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "dsa/sites.h"

namespace tcf {

std::vector<Weight> DatabaseBackend::ExecuteBatch(
    const std::vector<Query>& queries) {
  BatchResult result = executor_.Execute(queries);
  cumulative_.num_queries += result.stats.num_queries;
  cumulative_.subqueries_requested += result.stats.subqueries_requested;
  cumulative_.subqueries_executed += result.stats.subqueries_executed;
  cumulative_.plan_cache_hits += result.stats.plan_cache_hits;
  cumulative_.plan_cache_misses += result.stats.plan_cache_misses;
  cumulative_.plan_memo_hits += result.stats.plan_memo_hits;
  cumulative_.plan_memo_misses += result.stats.plan_memo_misses;
  cumulative_.plan_seconds += result.stats.plan_seconds;
  cumulative_.phase1_seconds += result.stats.phase1_seconds;
  cumulative_.assemble_seconds += result.stats.assemble_seconds;
  cumulative_.wall_seconds += result.stats.wall_seconds;

  std::vector<Weight> costs;
  costs.reserve(result.answers.size());
  for (const RouteAnswer& answer : result.answers) {
    costs.push_back(answer.answer.cost);
  }
  return costs;
}

std::vector<Weight> SiteNetworkBackend::ExecuteBatch(
    const std::vector<Query>& queries) {
  std::vector<std::pair<NodeId, NodeId>> pairs;
  pairs.reserve(queries.size());
  for (const Query& q : queries) pairs.emplace_back(q.from, q.to);
  return net_->BatchShortestPathCosts(pairs);
}

QueryService::QueryService(const DsaDatabase* db, ServiceOptions options)
    : options_(options),
      owned_backend_(std::make_unique<DatabaseBackend>(db)),
      backend_(owned_backend_.get()),
      start_time_(std::chrono::steady_clock::now()) {
  TCF_CHECK(options_.max_batch > 0);
  TCF_CHECK(options_.queue_capacity > 0);
  admission_thread_ = std::thread([this]() { AdmissionLoop(); });
}

QueryService::QueryService(ServiceBackend* backend, ServiceOptions options)
    : options_(options),
      backend_(backend),
      start_time_(std::chrono::steady_clock::now()) {
  TCF_CHECK(backend != nullptr);
  TCF_CHECK(options_.max_batch > 0);
  TCF_CHECK(options_.queue_capacity > 0);
  admission_thread_ = std::thread([this]() { AdmissionLoop(); });
}

QueryService::~QueryService() { Shutdown(); }

std::future<Weight> QueryService::Enqueue(Query query, bool* accepted_out) {
  Pending pending;
  pending.query = query;
  pending.submit_time = std::chrono::steady_clock::now();
  std::future<Weight> future = pending.promise.get_future();

  std::unique_lock<std::mutex> lock(mutex_);
  space_cv_.wait(lock, [this]() {
    return queue_.size() < options_.queue_capacity || stop_requested_;
  });
  if (stop_requested_) {
    if (accepted_out != nullptr) *accepted_out = false;
    pending.promise.set_exception(std::make_exception_ptr(
        std::runtime_error("QueryService is shut down")));
    return future;
  }
  queue_.push_back(std::move(pending));
  ++stats_.submitted;
  if (accepted_out != nullptr) *accepted_out = true;
  lock.unlock();
  queue_cv_.notify_one();
  return future;
}

std::future<Weight> QueryService::SubmitShortestPath(NodeId from, NodeId to) {
  return Enqueue(Query{from, to, QueryKind::kCost}, nullptr);
}

std::optional<std::future<Weight>> QueryService::TrySubmit(NodeId from,
                                                           NodeId to) {
  Pending pending;
  pending.query = Query{from, to, QueryKind::kCost};
  pending.submit_time = std::chrono::steady_clock::now();
  std::future<Weight> future = pending.promise.get_future();

  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_requested_) return std::nullopt;
    if (queue_.size() >= options_.queue_capacity) {
      ++stats_.rejected;
      return std::nullopt;
    }
    queue_.push_back(std::move(pending));
    ++stats_.submitted;
  }
  queue_cv_.notify_one();
  return future;
}

std::vector<std::future<Weight>> QueryService::SubmitBatch(
    const std::vector<Query>& queries) {
  std::vector<std::future<Weight>> futures;
  futures.reserve(queries.size());
  for (const Query& q : queries) futures.push_back(Enqueue(q, nullptr));
  return futures;
}

void QueryService::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_requested_ = true;
  }
  queue_cv_.notify_all();
  space_cv_.notify_all();
  // join() exactly once even when Shutdown races itself (it is documented
  // thread-safe like every other public method).
  std::call_once(join_once_, [this]() { admission_thread_.join(); });
}

ServiceStats QueryService::Stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ServiceStats snapshot = stats_;
  const auto end = stopped_ ? stop_time_ : std::chrono::steady_clock::now();
  snapshot.elapsed_seconds =
      std::chrono::duration<double>(end - start_time_).count();
  return snapshot;
}

void QueryService::AdmissionLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    queue_cv_.wait(lock,
                   [this]() { return !queue_.empty() || stop_requested_; });
    if (queue_.empty()) {
      // stop_requested_ and nothing left to drain.
      break;
    }
    // Flush on size or on the oldest entry's time window; a shutdown
    // request drains immediately.
    const auto deadline = queue_.front().submit_time + options_.max_wait;
    queue_cv_.wait_until(lock, deadline, [this]() {
      return queue_.size() >= options_.max_batch || stop_requested_;
    });

    const size_t fill = std::min(queue_.size(), options_.max_batch);
    std::vector<Pending> admitted;
    admitted.reserve(fill);
    for (size_t i = 0; i < fill; ++i) {
      admitted.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    lock.unlock();
    space_cv_.notify_all();

    std::vector<Query> batch;
    batch.reserve(admitted.size());
    for (const Pending& p : admitted) batch.push_back(p.query);
    const std::vector<Weight> costs = backend_->ExecuteBatch(batch);
    TCF_CHECK(costs.size() == admitted.size());

    // Record stats BEFORE fulfilling the promises: a client that wakes
    // from future.get() and immediately snapshots Stats() must already
    // see its own query counted.
    const auto done = std::chrono::steady_clock::now();
    std::vector<double> latencies;
    latencies.reserve(admitted.size());
    for (const Pending& p : admitted) {
      latencies.push_back(
          std::chrono::duration<double>(done - p.submit_time).count());
    }
    lock.lock();
    ++stats_.batches;
    stats_.completed += admitted.size();
    stats_.batch_fill.Add(static_cast<double>(admitted.size()));
    stats_.latency_seconds.AddAll(latencies);
    lock.unlock();

    for (size_t i = 0; i < admitted.size(); ++i) {
      admitted[i].promise.set_value(costs[i]);
    }
    lock.lock();
  }
  stopped_ = true;
  stop_time_ = std::chrono::steady_clock::now();
}

}  // namespace tcf
