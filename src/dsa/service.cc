#include "dsa/service.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "dsa/sites.h"

namespace tcf {

std::vector<Weight> DatabaseBackend::ExecuteBatch(
    const std::vector<Query>& queries) {
  BatchResult result = executor_.Execute(queries);
  cumulative_.num_queries += result.stats.num_queries;
  cumulative_.subqueries_requested += result.stats.subqueries_requested;
  cumulative_.subqueries_executed += result.stats.subqueries_executed;
  cumulative_.plan_cache_hits += result.stats.plan_cache_hits;
  cumulative_.plan_cache_misses += result.stats.plan_cache_misses;
  cumulative_.plan_memo_hits += result.stats.plan_memo_hits;
  cumulative_.plan_memo_misses += result.stats.plan_memo_misses;
  cumulative_.interned_plan_hits += result.stats.interned_plan_hits;
  cumulative_.interned_plan_misses += result.stats.interned_plan_misses;
  cumulative_.plan_seconds += result.stats.plan_seconds;
  cumulative_.phase1_seconds += result.stats.phase1_seconds;
  cumulative_.assemble_seconds += result.stats.assemble_seconds;
  cumulative_.wall_seconds += result.stats.wall_seconds;

  std::vector<Weight> costs;
  costs.reserve(result.answers.size());
  for (const RouteAnswer& answer : result.answers) {
    costs.push_back(answer.answer.cost);
  }
  return costs;
}

std::vector<Weight> SiteNetworkBackend::ExecuteBatch(
    const std::vector<Query>& queries) {
  std::vector<std::pair<NodeId, NodeId>> pairs;
  pairs.reserve(queries.size());
  for (const Query& q : queries) pairs.emplace_back(q.from, q.to);
  return net_->BatchShortestPathCosts(pairs);
}

namespace {

size_t ClampShards(size_t requested) {
  return std::clamp<size_t>(requested, 1, 256);
}

}  // namespace

QueryService::QueryService(const DsaDatabase* db, ServiceOptions options)
    : options_(options),
      owned_backend_(std::make_unique<DatabaseBackend>(db)),
      backend_(owned_backend_.get()),
      db_(db) {
  Start();
}

QueryService::QueryService(ServiceBackend* backend, ServiceOptions options)
    : options_(options), backend_(backend) {
  TCF_CHECK(backend != nullptr);
  Start();
}

void QueryService::Start() {
  TCF_CHECK(options_.max_batch > 0);
  TCF_CHECK(options_.queue_capacity > 0);
  options_.admission_shards = ClampShards(options_.admission_shards);
  shards_.resize(options_.admission_shards);
  for (auto& shard : shards_) shard = std::make_unique<Shard>();
  stats_.latency_seconds = Accumulator(options_.latency_sample_cap);
  stats_.batch_fill = Accumulator(options_.latency_sample_cap);
  start_time_ = std::chrono::steady_clock::now();
  admission_thread_ = std::thread([this]() { AdmissionLoop(); });
}

QueryService::~QueryService() { Shutdown(); }

QueryService::Shard& QueryService::ShardForThisThread() {
  // Per-client (thread) affinity: one client's queries stay FIFO within
  // its stripe and two clients contend only on a hash collision. Thread
  // ids hash poorly on common standard libraries (they are pointers or
  // small integers), so finish with a full-avalanche mix.
  const size_t raw = std::hash<std::thread::id>{}(std::this_thread::get_id());
  return *shards_[PairKeyHash{}(static_cast<uint64_t>(raw)) % shards_.size()];
}

std::optional<std::future<Weight>> QueryService::Admit(Query query,
                                                       bool blocking) {
  Pending pending;
  pending.query = query;
  pending.submit_time = std::chrono::steady_clock::now();
  std::future<Weight> future = pending.promise.get_future();

  // Validate at admission when the domain is known: one bad query must
  // fail its own future, not trip the backend's TCF_CHECK on the flush
  // thread and take the whole service down.
  if (db_ != nullptr) {
    const size_t num_nodes = db_->fragmentation().graph().NumNodes();
    if (query.from >= num_nodes || query.to >= num_nodes) {
      pending.promise.set_exception(std::make_exception_ptr(
          std::out_of_range("query endpoint out of range")));
      return future;
    }
    if (query.kind == QueryKind::kRoute && !db_->options().use_complementary) {
      pending.promise.set_exception(std::make_exception_ptr(std::out_of_range(
          "route queries require complementary information")));
      return future;
    }
  }

  Shard& shard = ShardForThisThread();
  bool ring = false;
  {
    std::unique_lock<std::mutex> lock(shard.mutex);
    if (blocking) {
      shard.space_cv.wait(lock, [&]() {
        return shard.queue.size() < options_.queue_capacity || shard.stopping;
      });
      if (shard.stopping) {
        pending.promise.set_exception(std::make_exception_ptr(
            std::runtime_error("QueryService is shut down")));
        return future;
      }
    } else {
      if (shard.stopping) return std::nullopt;
      if (shard.queue.size() >= options_.queue_capacity) {
        ++shard.rejected;
        return std::nullopt;
      }
    }
    shard.queue.push_back(std::move(pending));
    ++shard.submitted;
    const size_t before = pending_.fetch_add(1, std::memory_order_relaxed);
    ring = before == 0 || before + 1 == options_.max_batch;
  }
  if (ring) RingDoorbell();
  return future;
}

void QueryService::RingDoorbell() {
  // The empty critical section is what makes the notify reliable: the
  // flush thread evaluates its sleep predicate while holding
  // flush_mutex_, so the notify cannot land inside its check-then-sleep
  // window. Only the submitter whose push made the total pending count
  // non-empty (the flush thread may be sleeping with no deadline) or
  // made it cross max_batch (the flush thread may be sleeping until the
  // max_wait deadline) rings; every other submit touches no global state
  // beyond one uncontended atomic increment.
  { std::lock_guard<std::mutex> doorbell(flush_mutex_); }
  flush_cv_.notify_one();
}

std::future<Weight> QueryService::SubmitShortestPath(NodeId from, NodeId to) {
  return *Admit(Query{from, to, QueryKind::kCost}, /*blocking=*/true);
}

std::optional<std::future<Weight>> QueryService::TrySubmit(NodeId from,
                                                           NodeId to) {
  return Admit(Query{from, to, QueryKind::kCost}, /*blocking=*/false);
}

std::vector<std::future<Weight>> QueryService::SubmitBatch(
    const std::vector<Query>& queries) {
  std::vector<std::future<Weight>> futures;
  futures.reserve(queries.size());
  for (const Query& q : queries) {
    futures.push_back(*Admit(q, /*blocking=*/true));
  }
  return futures;
}

void QueryService::Shutdown() {
  // Flag every shard under its own lock FIRST: a submitter that pushed
  // after reading `stopping == false` is ordered before this sweep by the
  // shard mutex, and the sweep is ordered before the release-store of
  // stop_requested_ — so when the flush thread acquires the flag and
  // drains, every admitted entry is visible to it. Submitters blocked on
  // a full shard are woken here and rejected instead of deadlocking.
  for (auto& shard : shards_) {
    {
      std::lock_guard<std::mutex> lock(shard->mutex);
      shard->stopping = true;
    }
    shard->space_cv.notify_all();
  }
  stop_requested_.store(true, std::memory_order_release);
  { std::lock_guard<std::mutex> doorbell(flush_mutex_); }
  flush_cv_.notify_all();
  // join() exactly once even when Shutdown races itself (it is documented
  // thread-safe like every other public method).
  std::call_once(join_once_, [this]() { admission_thread_.join(); });
}

ServiceStats QueryService::Stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ServiceStats snapshot = stats_;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> shard_lock(shard->mutex);
    snapshot.submitted += shard->submitted;
    snapshot.rejected += shard->rejected;
  }
  const auto end = stopped_ ? stop_time_ : std::chrono::steady_clock::now();
  snapshot.elapsed_seconds =
      std::chrono::duration<double>(end - start_time_).count();
  return snapshot;
}

std::chrono::steady_clock::time_point QueryService::OldestSubmitTime() const {
  auto oldest = std::chrono::steady_clock::time_point::max();
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    if (!shard->queue.empty()) {
      oldest = std::min(oldest, shard->queue.front().submit_time);
    }
  }
  return oldest;
}

std::vector<QueryService::Pending> QueryService::CollectBatch() {
  std::vector<Pending> admitted;

  // Hold every shard lock for the merge (in shard order — submitters only
  // ever take one, so the ordering cannot deadlock): entries are popped
  // globally oldest-first, which is exactly the single-queue admission
  // order, so no stripe can starve under overload.
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& shard : shards_) locks.emplace_back(shard->mutex);

  std::vector<bool> popped(shards_.size(), false);
  while (admitted.size() < options_.max_batch) {
    size_t best = shards_.size();
    auto best_time = std::chrono::steady_clock::time_point::max();
    for (size_t s = 0; s < shards_.size(); ++s) {
      const auto& queue = shards_[s]->queue;
      if (!queue.empty() && queue.front().submit_time < best_time) {
        best_time = queue.front().submit_time;
        best = s;
      }
    }
    if (best == shards_.size()) break;  // all shards empty
    admitted.push_back(std::move(shards_[best]->queue.front()));
    shards_[best]->queue.pop_front();
    popped[best] = true;
  }
  pending_.fetch_sub(admitted.size(), std::memory_order_relaxed);

  for (size_t s = 0; s < shards_.size(); ++s) {
    locks[s].unlock();
    if (popped[s]) shards_[s]->space_cv.notify_all();
  }
  return admitted;
}

void QueryService::AdmissionLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(flush_mutex_);
      flush_cv_.wait(lock, [this]() {
        return stop_requested_.load(std::memory_order_acquire) ||
               pending_.load(std::memory_order_relaxed) > 0;
      });
      if (!stop_requested_.load(std::memory_order_acquire)) {
        // Flush on size or on the oldest entry's time window; a shutdown
        // request drains immediately. Only this thread pops, so the
        // pending entry behind OldestSubmitTime() cannot vanish while we
        // wait.
        const auto deadline = OldestSubmitTime() + options_.max_wait;
        flush_cv_.wait_until(lock, deadline, [this]() {
          return stop_requested_.load(std::memory_order_acquire) ||
                 pending_.load(std::memory_order_relaxed) >=
                     options_.max_batch;
        });
      }
    }

    std::vector<Pending> admitted = CollectBatch();
    if (admitted.empty()) {
      // stop_requested_ and nothing left to drain (the shard-flag
      // protocol in Shutdown() guarantees no admission can appear after
      // this sweep).
      if (stop_requested_.load(std::memory_order_acquire)) break;
      continue;
    }

    std::vector<Query> batch;
    batch.reserve(admitted.size());
    for (const Pending& p : admitted) batch.push_back(p.query);
    const std::vector<Weight> costs = backend_->ExecuteBatch(batch);
    TCF_CHECK(costs.size() == admitted.size());

    // Record stats BEFORE fulfilling the promises: a client that wakes
    // from future.get() and immediately snapshots Stats() must already
    // see its own query counted.
    const auto done = std::chrono::steady_clock::now();
    std::vector<double> latencies;
    latencies.reserve(admitted.size());
    for (const Pending& p : admitted) {
      latencies.push_back(
          std::chrono::duration<double>(done - p.submit_time).count());
    }
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.batches;
      stats_.completed += admitted.size();
      stats_.batch_fill.Add(static_cast<double>(admitted.size()));
      stats_.latency_seconds.AddAll(latencies);
    }

    for (size_t i = 0; i < admitted.size(); ++i) {
      admitted[i].promise.set_value(costs[i]);
    }
  }
  std::lock_guard<std::mutex> lock(stats_mutex_);
  stopped_ = true;
  stop_time_ = std::chrono::steady_clock::now();
}

}  // namespace tcf
