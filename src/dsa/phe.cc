#include "dsa/phe.h"

#include <algorithm>

#include "graph/algorithms.h"
#include "graph/builder.h"
#include "util/timer.h"

namespace tcf {

PheDatabase::PheDatabase(const Fragmentation* frag, PheOptions options)
    : frag_(frag), options_(options) {
  TCF_CHECK(frag != nullptr);
  complementary_ = PrecomputeComplementary(*frag_);

  // High-speed network: all per-fragment shortcut relations merged into one
  // graph over the global node-id space (only border nodes carry edges).
  GraphBuilder builder;
  builder.EnsureNodes(frag_->graph().NumNodes());
  for (FragmentId f = 0; f < frag_->NumFragments(); ++f) {
    complementary_.ForFragment(f).ForEach([&](const PathTuple& t) {
      builder.AddEdge(t.src, t.dst, t.cost);
    });
  }
  builder.DeduplicateEdges();
  backbone_ = builder.Build();

  pool_ = std::make_unique<ThreadPool>(std::max<size_t>(options_.num_threads,
                                                        1));
}

QueryAnswer PheDatabase::ShortestPath(NodeId from, NodeId to,
                                      ExecutionReport* report) const {
  TCF_CHECK(from < frag_->graph().NumNodes());
  TCF_CHECK(to < frag_->graph().NumNodes());
  QueryAnswer answer;
  if (from == to) {
    answer.connected = true;
    answer.cost = 0.0;
    return answer;
  }
  const FragmentId fa = frag_->HomeFragment(from);
  const FragmentId fb = frag_->HomeFragment(to);
  if (fa == Fragmentation::kInvalidFragment ||
      fb == Fragmentation::kInvalidFragment) {
    return answer;  // isolated node
  }
  answer.chains_considered = 1;
  answer.fragments_involved = {fa};
  if (fb != fa) answer.fragments_involved.push_back(fb);
  std::sort(answer.fragments_involved.begin(),
            answer.fragments_involved.end());

  const auto& borders_a = frag_->BorderNodes(fa);
  const auto& borders_b = frag_->BorderNodes(fb);

  // Same fragment: one local subquery suffices — and is exact thanks to
  // the complementary augmentation — so the backbone route is skipped and
  // PHE never runs more than three subqueries.
  Weight best = kInfinity;

  std::vector<LocalQuerySpec> specs;
  if (fa == fb) {
    specs.push_back(LocalQuerySpec{fa, {from}, {to}});
  }
  // Hierarchical route: fragment(a) -> backbone -> fragment(b).
  const bool backbone_route =
      fa != fb && !borders_a.empty() && !borders_b.empty();
  size_t spec_up = 0, spec_down = 0;
  if (backbone_route) {
    spec_up = specs.size();
    specs.push_back(LocalQuerySpec{
        fa, {from}, NodeSet(borders_a.begin(), borders_a.end())});
    spec_down = specs.size();
    specs.push_back(LocalQuerySpec{
        fb, NodeSet(borders_b.begin(), borders_b.end()), {to}});
  }

  std::vector<LocalQueryResult> results =
      RunSites(*frag_, &complementary_, specs, options_.engine, pool_.get(),
               report);

  if (fa == fb) {
    best = std::min(best, results[0].paths.BestCost(from, to));
  }

  if (backbone_route) {
    // Middle subquery: shortest paths across the high-speed network.
    WallTimer timer;
    Relation middle;
    for (NodeId s : borders_a) {
      ShortestPaths sp = Dijkstra(backbone_, s);
      for (NodeId t : borders_b) {
        if (s == t) {
          middle.Add(s, t, 0.0);
        } else if (sp.distance[t] != kInfinity) {
          middle.Add(s, t, sp.distance[t]);
        }
      }
    }
    middle.AggregateMin();
    if (report != nullptr) {
      SiteReport site;
      site.fragment = static_cast<FragmentId>(frag_->NumFragments());
      site.seconds = timer.ElapsedSeconds();
      site.result_tuples = middle.size();
      report->sites.push_back(site);
      report->communication_tuples += middle.size();
    }
    std::vector<const Relation*> hops = {&results[spec_up].paths, &middle,
                                         &results[spec_down].paths};
    Relation assembled = AssembleChain(hops, report);
    best = std::min(best, assembled.BestCost(from, to));
  }

  answer.cost = best;
  answer.connected = best != kInfinity;
  return answer;
}

}  // namespace tcf
