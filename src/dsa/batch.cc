#include "dsa/batch.h"

#include <utility>

#include "util/timer.h"

namespace tcf {

BatchExecutor::BatchExecutor(const DsaDatabase* db) : db_(db) {
  TCF_CHECK(db != nullptr);
}

BatchResult BatchExecutor::Execute(const std::vector<Query>& queries) const {
  const Fragmentation& frag = db_->fragmentation();
  const DsaOptions& options = db_->options();
  const size_t num_nodes = frag.graph().NumNodes();
  ThreadPool* pool = db_->pool();

  BatchResult result;
  result.answers.resize(queries.size());
  result.stats.num_queries = queries.size();
  result.epoch = db_->epoch();
  WallTimer batch_timer;

  // Validate up front (cheap next to planning), then plan the whole batch
  // through the shared parallel planner — the same sharded plan memo +
  // spec table path the SiteNetwork coordinator uses.
  WallTimer plan_timer;
  std::vector<std::pair<NodeId, NodeId>> endpoints;
  endpoints.reserve(queries.size());
  for (const Query& q : queries) {
    TCF_CHECK(q.from < num_nodes && q.to < num_nodes);
    TCF_CHECK_MSG(q.kind != QueryKind::kRoute || options.use_complementary,
                  "route queries require complementary information");
    endpoints.emplace_back(q.from, q.to);
  }
  ParallelPlanResult planned = PlanBatchInParallel(
      frag, endpoints, options.max_chains, db_->plan_cache_.get(), pool);
  const std::vector<LocalQuerySpec>& flat_specs = planned.flat.specs;

  result.stats.plan_cache_hits = planned.cache_hits;
  result.stats.plan_cache_misses = planned.cache_misses;
  for (const QueryPlan* plan : planned.plans) {
    if (plan == nullptr) continue;  // trivial query
    for (const std::vector<size_t>& hops : plan->chain_specs) {
      result.stats.subqueries_requested += hops.size();
    }
  }
  result.stats.plan_memo_hits = planned.memo_hits;
  result.stats.plan_memo_misses = planned.distinct_plans();
  result.stats.interned_plan_hits = planned.interned_plan_hits;
  result.stats.interned_plan_misses = planned.interned_plan_misses;
  result.stats.subqueries_executed = flat_specs.size();
  result.stats.plan_seconds = plan_timer.ElapsedSeconds();

  // Phase 1, once for the whole batch: every deduplicated subquery is one
  // task on the database's shared pool.
  WallTimer phase1_timer;
  const ComplementaryInfo* comp =
      options.use_complementary ? &db_->complementary() : nullptr;
  std::vector<LocalQueryResult> site_results = RunSites(
      frag, comp, flat_specs, options.engine, pool, &result.report);
  result.stats.phase1_seconds = phase1_timer.ElapsedSeconds();

  // Assemble every query in parallel. Assembly only *reads* the shared
  // site results (the chain joins and the route dynamic program work on
  // copies), so queries are independent again; each task fills its own
  // answer slot and report.
  WallTimer assemble_timer;
  std::vector<ExecutionReport> reports(queries.size());
  auto assemble_one = [&](size_t i) {
    const Query& q = queries[i];
    RouteAnswer& out = result.answers[i];
    if (q.from == q.to) {
      out.answer.connected = true;
      out.answer.cost = 0.0;
      if (q.kind == QueryKind::kRoute) out.route = {q.from};
      return;
    }
    const QueryPlan& plan = *planned.plans[i];
    switch (q.kind) {
      case QueryKind::kCost:
      case QueryKind::kReachability:
        out.answer = AssembleCostAnswer(frag, plan, flat_specs, q.from, q.to,
                                        site_results, &reports[i]);
        break;
      case QueryKind::kRoute:
        out = AssembleRouteAnswer(frag, db_->complementary(), plan,
                                  flat_specs, q.from, q.to, site_results,
                                  &reports[i]);
        break;
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(queries.size(), assemble_one);
  } else {
    for (size_t i = 0; i < queries.size(); ++i) assemble_one(i);
  }
  for (const ExecutionReport& r : reports) result.report.Merge(r);
  result.stats.assemble_seconds = assemble_timer.ElapsedSeconds();
  result.stats.wall_seconds = batch_timer.ElapsedSeconds();
  return result;
}

}  // namespace tcf
