#include "dsa/batch.h"

#include <atomic>

#include "relational/relation.h"
#include "util/sharded_table.h"
#include "util/timer.h"

namespace tcf {

namespace {

// std::hash<uint64_t> is the identity on the common standard libraries,
// which would shard the plan memo by `to % num_shards` — a hub-destination
// batch would then serialize all planning on one shard mutex. Finalize the
// key with a full-avalanche mix (splitmix64) instead.
struct PairKeyHash {
  size_t operator()(uint64_t key) const {
    key += 0x9e3779b97f4a7c15ull;
    key = (key ^ (key >> 30)) * 0xbf58476d1ce4e5b9ull;
    key = (key ^ (key >> 27)) * 0x94d049bb133111ebull;
    return static_cast<size_t>(key ^ (key >> 31));
  }
};

}  // namespace

BatchExecutor::BatchExecutor(const DsaDatabase* db) : db_(db) {
  TCF_CHECK(db != nullptr);
}

BatchResult BatchExecutor::Execute(const std::vector<Query>& queries) const {
  const Fragmentation& frag = db_->fragmentation();
  const DsaOptions& options = db_->options();
  const size_t num_nodes = frag.graph().NumNodes();
  ThreadPool* pool = db_->pool();

  BatchResult result;
  result.answers.resize(queries.size());
  result.stats.num_queries = queries.size();
  WallTimer batch_timer;

  // Plan in parallel on the shared pool. Two layers of striping keep the
  // coordinator scalable:
  //   - the plan memo interns whole plans by (from, to), so each distinct
  //     pair is planned exactly once and repeats (hot-pair traffic) skip
  //     chain lookup *and* subquery interning;
  //   - the sharded spec table interns keyhole subqueries, so identical
  //     selections — within a query's chains or across queries — are
  //     computed once, without a global interning lock.
  // Plan refs stay shard-encoded until the table is sealed below.
  WallTimer plan_timer;
  ShardedSpecTable specs;
  ShardedTable<uint64_t, QueryPlan, PairKeyHash> plan_memo;
  std::vector<const QueryPlan*> plans(queries.size(), nullptr);
  std::vector<char> trivial(queries.size(), 0);
  std::atomic<size_t> memo_hits{0};
  auto plan_range = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const Query& q = queries[i];
      TCF_CHECK(q.from < num_nodes && q.to < num_nodes);
      TCF_CHECK_MSG(q.kind != QueryKind::kRoute || options.use_complementary,
                    "route queries require complementary information");
      if (q.from == q.to) {
        trivial[i] = 1;
        continue;
      }
      auto interned = plan_memo.Intern(
          PairKey(q.from, q.to),
          [&](const uint64_t&) { return db_->Plan(q.from, q.to, &specs); });
      plans[i] = interned.value;
      if (!interned.inserted) {
        memo_hits.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };
  if (pool != nullptr) {
    pool->ParallelForRanges(queries.size(), plan_range);
  } else {
    plan_range(0, queries.size());
  }

  // Seal the sharded table into the flat spec vector phase 1 consumes, and
  // rewrite each distinct plan's shard handles to flat indices — once per
  // plan, not per query.
  ShardedSpecTable::Flat flat = specs.Flatten();
  plan_memo.ForEach([&](QueryPlan& plan) {
    for (std::vector<size_t>& hops : plan.chain_specs) {
      for (size_t& ref : hops) ref = flat.IndexOf(ref);
    }
    result.stats.plan_cache_hits += plan.cache_hits;
    result.stats.plan_cache_misses += plan.cache_misses;
  });
  for (const QueryPlan* plan : plans) {
    if (plan == nullptr) continue;  // trivial query
    for (const std::vector<size_t>& hops : plan->chain_specs) {
      result.stats.subqueries_requested += hops.size();
    }
  }
  result.stats.plan_memo_hits = memo_hits.load(std::memory_order_relaxed);
  result.stats.plan_memo_misses = plan_memo.size();
  result.stats.subqueries_executed = flat.specs.size();
  result.stats.plan_seconds = plan_timer.ElapsedSeconds();

  // Phase 1, once for the whole batch: every deduplicated subquery is one
  // task on the database's shared pool.
  WallTimer phase1_timer;
  const ComplementaryInfo* comp =
      options.use_complementary ? &db_->complementary() : nullptr;
  std::vector<LocalQueryResult> site_results = RunSites(
      frag, comp, flat.specs, options.engine, pool, &result.report);
  result.stats.phase1_seconds = phase1_timer.ElapsedSeconds();

  // Assemble every query in parallel. Assembly only *reads* the shared
  // site results (the chain joins and the route dynamic program work on
  // copies), so queries are independent again; each task fills its own
  // answer slot and report.
  WallTimer assemble_timer;
  std::vector<ExecutionReport> reports(queries.size());
  auto assemble_one = [&](size_t i) {
    const Query& q = queries[i];
    RouteAnswer& out = result.answers[i];
    if (trivial[i]) {
      out.answer.connected = true;
      out.answer.cost = 0.0;
      if (q.kind == QueryKind::kRoute) out.route = {q.from};
      return;
    }
    const QueryPlan& plan = *plans[i];
    switch (q.kind) {
      case QueryKind::kCost:
      case QueryKind::kReachability:
        out.answer = AssembleCostAnswer(frag, plan, flat.specs, q.from, q.to,
                                        site_results, &reports[i]);
        break;
      case QueryKind::kRoute:
        out = AssembleRouteAnswer(frag, db_->complementary(), plan,
                                  flat.specs, q.from, q.to, site_results,
                                  &reports[i]);
        break;
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(queries.size(), assemble_one);
  } else {
    for (size_t i = 0; i < queries.size(); ++i) assemble_one(i);
  }
  for (const ExecutionReport& r : reports) result.report.Merge(r);
  result.stats.assemble_seconds = assemble_timer.ElapsedSeconds();
  result.stats.wall_seconds = batch_timer.ElapsedSeconds();
  return result;
}

}  // namespace tcf
