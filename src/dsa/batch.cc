#include "dsa/batch.h"

#include "util/timer.h"

namespace tcf {

BatchExecutor::BatchExecutor(const DsaDatabase* db) : db_(db) {
  TCF_CHECK(db != nullptr);
}

BatchResult BatchExecutor::Execute(const std::vector<Query>& queries) const {
  const Fragmentation& frag = db_->fragmentation();
  const DsaOptions& options = db_->options();
  const size_t num_nodes = frag.graph().NumNodes();

  BatchResult result;
  result.answers.resize(queries.size());
  result.stats.num_queries = queries.size();
  WallTimer batch_timer;

  // Plan every query from the coordinator thread, interning all keyhole
  // subqueries into one table so identical selections — within a query's
  // chains or across queries — are computed once. Planning is cheap
  // relative to phase 1 (chain lookups hit the shared LRU cache), so it is
  // not worth parallelizing and the SpecTable needs no lock.
  WallTimer plan_timer;
  SpecTable specs;
  std::vector<QueryPlan> plans(queries.size());
  std::vector<char> trivial(queries.size(), 0);
  for (size_t i = 0; i < queries.size(); ++i) {
    const Query& q = queries[i];
    TCF_CHECK(q.from < num_nodes && q.to < num_nodes);
    TCF_CHECK_MSG(q.kind != QueryKind::kRoute || options.use_complementary,
                  "route queries require complementary information");
    if (q.from == q.to) {
      trivial[i] = 1;
      continue;
    }
    plans[i] = db_->Plan(q.from, q.to, &specs);
    for (const std::vector<size_t>& hops : plans[i].chain_specs) {
      result.stats.subqueries_requested += hops.size();
    }
    result.stats.plan_cache_hits += plans[i].cache_hits;
    result.stats.plan_cache_misses += plans[i].cache_misses;
  }
  result.stats.subqueries_executed = specs.size();
  result.stats.plan_seconds = plan_timer.ElapsedSeconds();

  // Phase 1, once for the whole batch: every deduplicated subquery is one
  // task on the database's shared pool.
  WallTimer phase1_timer;
  const ComplementaryInfo* comp =
      options.use_complementary ? &db_->complementary() : nullptr;
  std::vector<LocalQueryResult> site_results = RunSites(
      frag, comp, specs.specs(), options.engine, db_->pool(), &result.report);
  result.stats.phase1_seconds = phase1_timer.ElapsedSeconds();

  // Assemble every query in parallel. Assembly only *reads* the shared
  // site results (the chain joins and the route dynamic program work on
  // copies), so queries are independent again; each task fills its own
  // answer slot and report.
  WallTimer assemble_timer;
  std::vector<ExecutionReport> reports(queries.size());
  auto assemble_one = [&](size_t i) {
    const Query& q = queries[i];
    RouteAnswer& out = result.answers[i];
    if (trivial[i]) {
      out.answer.connected = true;
      out.answer.cost = 0.0;
      if (q.kind == QueryKind::kRoute) out.route = {q.from};
      return;
    }
    switch (q.kind) {
      case QueryKind::kCost:
      case QueryKind::kReachability:
        out.answer = AssembleCostAnswer(frag, plans[i], specs, q.from, q.to,
                                        site_results, &reports[i]);
        break;
      case QueryKind::kRoute:
        out = AssembleRouteAnswer(frag, db_->complementary(), plans[i], specs,
                                  q.from, q.to, site_results, &reports[i]);
        break;
    }
  };
  if (db_->pool() != nullptr) {
    db_->pool()->ParallelFor(queries.size(), assemble_one);
  } else {
    for (size_t i = 0; i < queries.size(); ++i) assemble_one(i);
  }
  for (const ExecutionReport& r : reports) result.report.Merge(r);
  result.stats.assemble_seconds = assemble_timer.ElapsedSeconds();
  result.stats.wall_seconds = batch_timer.ElapsedSeconds();
  return result;
}

}  // namespace tcf
