// Batched query execution over a DsaDatabase. The paper's phase-1 property
// — per-fragment subqueries are fully independent — holds across *queries*
// as well as across chains, so a batch of queries is executed as one big
// fan-out:
//
//   1. plan every query *in parallel* on the database's shared ThreadPool:
//      each (from, to) pair is planned exactly once into a per-batch
//      interned-plan memo (repeats — the whole point of hot-pair traffic —
//      skip planning outright); distinct pairs first consult the
//      *cross-batch* interned-plan cache (skeleton-relative plans that
//      survive spec-table sealing, see dsa/chains.h), so a pair planned by
//      an EARLIER batch skips chain lookup and dedup too and only
//      re-stamps its hops into this batch's spec table,
//   2. intern all keyhole subqueries into one mutex-striped
//      ShardedSpecTable, so queries that hit the same (fragment,
//      source-DS, target-DS) triple share a single site computation — and
//      interning itself no longer serializes the coordinator,
//   3. seal the sharded table into one flat spec vector and run the
//      deduplicated subqueries on the same pool in a single ParallelFor
//      (no per-query pools, no per-query barriers),
//   4. assemble every query's answer in parallel on the same pool (pure
//      reads of the shared phase-1 results).
//
// Parallel planning is answer-preserving: plans, spec contents, dedup
// counts, and every per-query answer are identical to a sequential
// planning loop. Only the spec numbering depends on scheduling, which
// shows solely as the ordering of BatchResult::report.sites (a multiset
// that is itself scheduling-stable).
//
// BatchExecutor is stateless apart from the database reference: Execute()
// is const, re-entrant, and may run concurrently with other batches and
// with single DsaDatabase queries.
#pragma once

#include <vector>

#include "dsa/query_api.h"

namespace tcf {

/// What a batched query should compute. kCost and kReachability fill
/// RouteAnswer::answer only; kRoute additionally fills the realizing route
/// (and requires the database to have complementary information).
enum class QueryKind { kCost, kRoute, kReachability };

/// One query of a batch.
struct Query {
  NodeId from = 0;
  NodeId to = 0;
  QueryKind kind = QueryKind::kCost;
};

/// Batch-level accounting: how much work sharing saved and how the plan
/// cache performed for this batch.
struct BatchStats {
  size_t num_queries = 0;
  /// Chain-hop subquery requests before cross-query deduplication (every
  /// hop of every chain of every query).
  size_t subqueries_requested = 0;
  /// Distinct subqueries actually executed (the SpecTable size).
  size_t subqueries_executed = 0;
  /// Skeleton-cache (ChainPlanCache) hits/misses for this batch's
  /// fragment-pair lookups. Each distinct (from, to) pair is planned once,
  /// so these count per *distinct* pair, not per query.
  size_t plan_cache_hits = 0;
  size_t plan_cache_misses = 0;
  /// Interned-plan reuse inside this batch: a hit is a query whose
  /// (from, to) pair was already planned — it skipped chain lookup and
  /// subquery interning entirely. Misses count the distinct pairs planned.
  size_t plan_memo_hits = 0;
  size_t plan_memo_misses = 0;
  /// Cross-batch interned-plan cache reuse, per distinct pair planned this
  /// batch: a hit instantiated a skeleton-relative plan interned by an
  /// *earlier* batch (or single query) against this database — no chain
  /// lookup, no skeleton fetch, no chain dedup; a miss built and published
  /// the plan for later batches. Both zero only when the whole chain-plan
  /// cache is off (plan_cache_capacity == 0); with just cross-batch
  /// interning disabled (interned_plan_cache_capacity == 0), every
  /// distinct pair still counts as a miss (built, not published).
  size_t interned_plan_hits = 0;
  size_t interned_plan_misses = 0;

  double plan_seconds = 0.0;      // parallel planning + interning
  double phase1_seconds = 0.0;    // parallel subquery fan-out
  double assemble_seconds = 0.0;  // parallel per-query assembly
  double wall_seconds = 0.0;      // whole Execute() call

  /// Fraction of requested subqueries eliminated by sharing (0 = no
  /// sharing, 0.9 = ten requests per executed subquery on average).
  double DedupSavings() const {
    return subqueries_requested == 0
               ? 0.0
               : 1.0 - static_cast<double>(subqueries_executed) /
                           static_cast<double>(subqueries_requested);
  }
  double PlanCacheHitRate() const {
    const size_t lookups = plan_cache_hits + plan_cache_misses;
    return lookups == 0 ? 0.0
                        : static_cast<double>(plan_cache_hits) / lookups;
  }
  /// Fraction of non-trivial queries that skipped planning entirely
  /// because their (from, to) pair was already interned (≈1 on hot-pair
  /// workloads).
  double PlanMemoHitRate() const {
    const size_t lookups = plan_memo_hits + plan_memo_misses;
    return lookups == 0 ? 0.0
                        : static_cast<double>(plan_memo_hits) / lookups;
  }
  /// Fraction of this batch's distinct pairs served by plans interned
  /// before the batch started (≈1 for a repeated batch on a warm cache).
  double InternedPlanHitRate() const {
    const size_t lookups = interned_plan_hits + interned_plan_misses;
    return lookups == 0
               ? 0.0
               : static_cast<double>(interned_plan_hits) / lookups;
  }
  double QueriesPerSecond() const {
    return wall_seconds == 0.0 ? 0.0 : num_queries / wall_seconds;
  }
};

/// Answers in query order plus the batch accounting. `answers[i].route` is
/// filled only for kRoute queries.
struct BatchResult {
  std::vector<RouteAnswer> answers;
  BatchStats stats;
  /// Aggregated execution report over the whole batch (site records from
  /// the shared phase 1; assembly totals summed over queries).
  ExecutionReport report;
  /// Maintenance epoch of the database that answered the batch (0 when the
  /// database was built directly rather than through MaintainedDatabase).
  uint64_t epoch = 0;
};

/// Executes query batches against one DsaDatabase.
class BatchExecutor {
 public:
  /// `db` must outlive the executor. Subqueries run on db->pool().
  explicit BatchExecutor(const DsaDatabase* db);

  /// Runs the whole batch and returns answers in query order. Thread-safe;
  /// concurrent Execute() calls share the database's pool and plan cache.
  BatchResult Execute(const std::vector<Query>& queries) const;

  const DsaDatabase& database() const { return *db_; }

 private:
  const DsaDatabase* db_;
};

}  // namespace tcf
