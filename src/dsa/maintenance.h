// Update handling for a fragmented database — the disadvantage Sec. 2.1
// names explicitly: "The disadvantage of the disconnection set approach is
// mainly due to the pre-processing required for building the complementary
// information and to the careful treatment of updates. ... As long as
// updates are not too frequent, the pre-processing costs may be amortized
// over many queries."
//
// MaintainedDatabase owns a mutable copy of the relation and its
// fragmentation and keeps a DsaDatabase consistent through edge inserts,
// deletes and re-weights. It distinguishes the two maintenance costs:
//
//   - a *complementary refresh* — any weight-affecting update can change
//     global border-to-border shortest paths, so the shortcut relations
//     must be recomputed (fragment structure intact);
//   - a *structural rebuild* — an update that changes a fragment's node
//     set (hence possibly the disconnection sets and the fragmentation
//     graph) additionally re-derives the whole Fragmentation.
//
// Both counters are exposed so benches can price an update workload.
#pragma once

#include <memory>
#include <optional>

#include "dsa/query_api.h"

namespace tcf {

class MaintainedDatabase {
 public:
  /// Takes ownership of a materialized relation (as a graph) and its
  /// edge -> fragment assignment.
  MaintainedDatabase(Graph graph, std::vector<FragmentId> fragment_of_edge,
                     size_t num_fragments, DsaOptions options = {});

  /// Builds from an existing fragmentation (copies the graph).
  static MaintainedDatabase FromFragmentation(const Fragmentation& frag,
                                              DsaOptions options = {});

  const Graph& graph() const { return graph_; }
  const Fragmentation& fragmentation() const { return *frag_; }
  const DsaDatabase& db() const { return *db_; }

  /// Inserts one edge tuple. By default it joins the fragment that already
  /// contains both endpoints, else the (smallest) fragment containing one
  /// endpoint, else the smallest fragment overall; `target` overrides.
  void InsertEdge(NodeId src, NodeId dst, Weight weight,
                  std::optional<FragmentId> target = std::nullopt);

  /// Deletes every tuple (src, dst); returns how many were removed.
  size_t DeleteEdge(NodeId src, NodeId dst);

  /// Changes the weight of every (src, dst) tuple; returns how many
  /// changed. A pure re-weight never changes fragment node sets, so it
  /// costs a complementary refresh only.
  size_t ReweightEdge(NodeId src, NodeId dst, Weight new_weight);

  /// Maintenance cost counters.
  size_t complementary_refreshes() const { return refreshes_; }
  size_t structural_rebuilds() const { return rebuilds_; }

 private:
  void Rebuild(bool structure_changed);
  FragmentId PickFragment(NodeId src, NodeId dst) const;

  Graph graph_;
  std::vector<FragmentId> fragment_of_edge_;
  size_t num_fragments_;
  DsaOptions options_;
  std::unique_ptr<Fragmentation> frag_;
  std::unique_ptr<DsaDatabase> db_;
  size_t refreshes_ = 0;
  size_t rebuilds_ = 0;
  bool edges_dirty_ = false;
};

}  // namespace tcf
