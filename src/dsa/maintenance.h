// Update handling for a fragmented database — the disadvantage Sec. 2.1
// names explicitly: "The disadvantage of the disconnection set approach is
// mainly due to the pre-processing required for building the complementary
// information and to the careful treatment of updates. ... As long as
// updates are not too frequent, the pre-processing costs may be amortized
// over many queries."
//
// MaintainedDatabase owns the authoritative mutable relation and publishes
// it to readers as immutable *epoch snapshots*: every maintenance epoch
// builds a fresh (Graph, Fragmentation, DsaDatabase) triple and atomically
// swaps it in; queries in flight keep the snapshot they pinned, so updates
// never block reads and reads never observe a half-applied epoch.
//
// Epoch cost model. An epoch batches any mix of edge inserts, deletes and
// re-weights, then pays for what actually changed:
//
//   - *complementary refresh* — shortcut relations are refreshed
//     incrementally (RefreshComplementary): only border nodes whose
//     global distances can have moved are re-searched, the rest carry
//     over. A full recompute happens only when compaction renumbered
//     fragments.
//   - *structural rebuild* — an epoch that changes fragment node sets
//     additionally re-derives disconnection sets and the fragmentation
//     graph. The legacy meters (complementary_refreshes /
//     structural_rebuilds) keep their original conservative per-update
//     semantics — a deletion that removed edges always counts as
//     structural — while EpochStats reports the exact post-hoc dirty and
//     reuse counts.
//   - *plan-cache succession* — the successor database inherits every
//     chain-plan and interned-plan entry that provably cannot have
//     changed (no chain through a dirty fragment, endpoints' fragment
//     membership intact); entries are invalidated by version succession,
//     never in place. If the fragmentation-graph adjacency (the
//     disconnection-set pair set) changed, or fragments were renumbered,
//     the successor starts cold.
//
// Thread-safety contract:
//   - Snapshot() and the meter accessors are safe from ANY thread at any
//     time.
//   - ApplyEpoch() (and the legacy InsertEdge/DeleteEdge/ReweightEdge
//     wrappers, which are single-op epochs) may be called from any thread;
//     calls are internally serialized — callers need no external lock.
//   - graph()/fragmentation()/db() return references INTO THE CURRENT
//     snapshot and are only stable until the next published epoch; they
//     exist for single-threaded callers (tests, benches). Concurrent
//     readers must pin a Snapshot() and use that.
//   - Under a QueryService (MaintainedBackend), this contract is what the
//     parallel flush pool leans on: the service's dedicated update-applier
//     thread calls ApplyEpoch() while several flush workers concurrently
//     pin Snapshot()s for their micro-batches — each batch pins its
//     snapshot AFTER popping its queries, which is what makes an epoch a
//     barrier for queries admitted after the update future resolved.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "dsa/query_api.h"

namespace tcf {

/// One edge-level update, the unit batched into a maintenance epoch.
struct EdgeUpdate {
  enum class Kind { kInsert, kDelete, kReweight };

  Kind kind = Kind::kInsert;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  /// Insert weight / reweight's new weight; ignored for deletes.
  Weight weight = 1.0;
  /// Insert only: fragment override (default: the maintained database's
  /// placement rule, see MaintainedDatabase::InsertEdge).
  std::optional<FragmentId> target;

  static EdgeUpdate Insert(NodeId src, NodeId dst, Weight weight,
                           std::optional<FragmentId> target = std::nullopt) {
    return EdgeUpdate{Kind::kInsert, src, dst, weight, target};
  }
  static EdgeUpdate Delete(NodeId src, NodeId dst) {
    return EdgeUpdate{Kind::kDelete, src, dst, 0.0, std::nullopt};
  }
  static EdgeUpdate Reweight(NodeId src, NodeId dst, Weight new_weight) {
    return EdgeUpdate{Kind::kReweight, src, dst, new_weight, std::nullopt};
  }
};

/// One published epoch: an immutable (graph, fragmentation, database)
/// triple. The shared_ptrs chain ownership (the fragmentation keeps its
/// graph alive, the database keeps its fragmentation alive), so any member
/// copied out of the snapshot remains valid on its own.
struct DsaSnapshot {
  uint64_t epoch = 0;
  std::shared_ptr<const Graph> graph;
  std::shared_ptr<const Fragmentation> frag;
  std::shared_ptr<const DsaDatabase> db;
};

/// What one ApplyEpoch call did and what it cost.
struct EpochStats {
  uint64_t epoch = 0;        // epoch id if published, else the current one
  bool published = false;    // false when every op was a no-op
  bool structural = false;   // counted on the legacy structural meter
  bool renumbered = false;   // compaction changed fragment ids (full redo)
  bool caches_reset = false;  // successor plan caches started cold

  size_t ops_applied = 0;  // ops with an effect (no-ops are skipped)
  size_t edges_inserted = 0;
  size_t edges_removed = 0;
  size_t edges_reweighted = 0;

  // Exact incremental-complementary accounting (RefreshComplementary).
  size_t complementary_searches = 0;
  size_t dirty_border_nodes = 0;
  size_t reused_border_nodes = 0;
  size_t dirty_fragments = 0;
  size_t reused_fragments = 0;

  // Plan-cache succession accounting (ChainPlanCache::NextEpoch).
  size_t skeletons_kept = 0;
  size_t skeletons_dropped = 0;
  size_t plans_kept = 0;
  size_t plans_dropped = 0;
};

class MaintainedDatabase {
 public:
  /// Takes ownership of a materialized relation (as a graph) and its
  /// edge -> fragment assignment. Publishes epoch 0.
  MaintainedDatabase(Graph graph, std::vector<FragmentId> fragment_of_edge,
                     size_t num_fragments, DsaOptions options = {});

  /// Builds from an existing fragmentation (copies the graph).
  static MaintainedDatabase FromFragmentation(const Fragmentation& frag,
                                              DsaOptions options = {});

  /// Adopts a prebuilt snapshot — e.g. one reopened from disk via
  /// storage/database_io.h — publishing it as-is (no refragmentation, no
  /// complementary recompute) and resuming updates at snapshot.epoch + 1.
  /// The snapshot must be internally consistent (its db built on its frag
  /// built on its graph), which OpenDatabase guarantees.
  MaintainedDatabase(DsaSnapshot snapshot, DsaOptions options = {});

  MaintainedDatabase(const MaintainedDatabase&) = delete;
  MaintainedDatabase& operator=(const MaintainedDatabase&) = delete;

  /// Pins the current epoch. Safe from any thread; the returned snapshot
  /// stays valid (and immutable) for as long as the caller holds it, no
  /// matter how many epochs are published meanwhile.
  DsaSnapshot Snapshot() const;

  /// Current epoch id (the one Snapshot() would return right now).
  uint64_t epoch() const;

  /// Applies `updates` in order as ONE maintenance epoch and publishes the
  /// successor snapshot (unless every op was a no-op, in which case nothing
  /// is published and `published` is false). Serialized internally; safe
  /// from any thread. Node ids must exist (checked).
  EpochStats ApplyEpoch(const std::vector<EdgeUpdate>& updates);

  // Legacy single-op epochs --------------------------------------------

  /// Inserts one edge tuple. By default it joins the fragment that already
  /// contains both endpoints, else the (smallest) fragment containing one
  /// endpoint, else the smallest fragment overall; `target` overrides.
  void InsertEdge(NodeId src, NodeId dst, Weight weight,
                  std::optional<FragmentId> target = std::nullopt);

  /// Deletes every tuple (src, dst); returns how many were removed.
  size_t DeleteEdge(NodeId src, NodeId dst);

  /// Changes the weight of every (src, dst) tuple; returns how many
  /// changed. A pure re-weight never changes fragment node sets, so it
  /// costs a complementary refresh only.
  size_t ReweightEdge(NodeId src, NodeId dst, Weight new_weight);

  // Current-snapshot accessors (see thread-safety contract above) ------

  const Graph& graph() const { return *snapshot_.graph; }
  const Fragmentation& fragmentation() const { return *snapshot_.frag; }
  const DsaDatabase& db() const { return *snapshot_.db; }

  /// Maintenance cost meters (legacy conservative semantics; cumulative
  /// over all published epochs).
  size_t complementary_refreshes() const {
    return refreshes_.load(std::memory_order_relaxed);
  }
  size_t structural_rebuilds() const {
    return rebuilds_.load(std::memory_order_relaxed);
  }

 private:
  FragmentId PickFragment(const Fragmentation& frag, NodeId src,
                          NodeId dst) const;
  void PublishInitial();

  DsaOptions options_;

  // Authoritative staged state; guarded by update_mutex_.
  std::vector<Edge> edges_;
  std::vector<Point> coords_;  // empty when the graph has no coordinates
  size_t num_nodes_ = 0;
  std::vector<FragmentId> fragment_of_edge_;
  size_t num_fragments_ = 0;
  uint64_t next_epoch_ = 1;
  std::mutex update_mutex_;

  // Published snapshot; pointer swap guarded by snapshot_mutex_.
  mutable std::mutex snapshot_mutex_;
  DsaSnapshot snapshot_;

  std::atomic<size_t> refreshes_{0};
  std::atomic<size_t> rebuilds_{0};
};

}  // namespace tcf
