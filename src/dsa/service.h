// Streaming query admission: the layer between "heavy traffic from many
// clients" and the batch core. The paper's phase-1 independence makes
// *batches* profitable (dsa/batch.h), but real traffic arrives as a stream
// of single queries from concurrent clients. A QueryService coalesces those
// arrivals into micro-batches — flush on size or on a time window — and
// runs each micro-batch through a pluggable backend, so streaming traffic
// inherits the cross-query subquery deduplication, the interned-plan memo,
// and the skeleton cache of the batch executor without any client knowing
// about batching.
//
// Admission policy (ServiceOptions):
//   - max_batch:      flush as soon as this many queries are pending,
//   - max_wait:       flush a non-empty queue no later than this after its
//                     oldest entry arrived — the latency bound: a query's
//                     p99 latency is bounded by max_wait plus one batch
//                     execution,
//   - queue_capacity: bounded admission queue. Submit* blocks when full
//                     (closed-loop backpressure); TrySubmit rejects and the
//                     rejection is counted in ServiceStats.
//
// Shutdown() drains: every query admitted before the shutdown flag is
// observed is executed and its future fulfilled; submissions arriving
// after that get a future carrying std::runtime_error instead of a value.
//
// The backend seam (ServiceBackend) is what makes the admission loop
// deployment-agnostic: DatabaseBackend drives the in-process DsaDatabase
// via BatchExecutor; SiteNetworkBackend drives a message-passing
// SiteNetwork coordinator — the protocol seed for the multi-process
// direction in ROADMAP.md.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "dsa/batch.h"
#include "util/stats.h"

namespace tcf {

class SiteNetwork;

/// Where admitted micro-batches execute. Called only from the service's
/// single admission thread, so implementations need not be re-entrant —
/// but they may be shared with other traffic (BatchExecutor is re-entrant;
/// SiteNetwork serializes its coordinator internally).
class ServiceBackend {
 public:
  virtual ~ServiceBackend() = default;

  /// Answers `queries` element-wise with shortest-path costs (kInfinity
  /// when unconnected).
  virtual std::vector<Weight> ExecuteBatch(
      const std::vector<Query>& queries) = 0;
};

/// In-process backend: one BatchExecutor::Execute per micro-batch, sharing
/// the database's pool, skeleton cache, and cross-query dedup.
class DatabaseBackend : public ServiceBackend {
 public:
  /// `db` must outlive the backend.
  explicit DatabaseBackend(const DsaDatabase* db) : executor_(db) {}

  std::vector<Weight> ExecuteBatch(const std::vector<Query>& queries) override;

  /// Batch-core accounting summed over all micro-batches this backend ran
  /// (dedup savings, plan-memo skips, ...).
  const BatchStats& cumulative_stats() const { return cumulative_; }

 private:
  BatchExecutor executor_;
  BatchStats cumulative_;
};

/// Message-passing backend: micro-batches go through the SiteNetwork
/// coordinator's batched fan-out protocol. `net` must outlive the backend.
class SiteNetworkBackend : public ServiceBackend {
 public:
  explicit SiteNetworkBackend(SiteNetwork* net) : net_(net) {}

  std::vector<Weight> ExecuteBatch(const std::vector<Query>& queries) override;

 private:
  SiteNetwork* net_;
};

/// Micro-batching policy of the admission loop; see the header comment.
struct ServiceOptions {
  size_t max_batch = 64;
  std::chrono::microseconds max_wait{2000};
  size_t queue_capacity = 4096;
};

/// Service-level accounting, snapshot via QueryService::Stats().
struct ServiceStats {
  size_t submitted = 0;  // admitted into the queue
  size_t completed = 0;  // futures fulfilled with an answer
  size_t rejected = 0;   // TrySubmit refusals on a full queue
  size_t batches = 0;    // micro-batches executed

  /// Per-query admission-to-answer latency, in seconds.
  Accumulator latency_seconds;
  /// Queries per executed micro-batch (the fill distribution: ≈max_batch
  /// under load, ≈1 under trickle traffic).
  Accumulator batch_fill;

  /// Wall time from service start to this snapshot (frozen at drain end
  /// once the service is shut down).
  double elapsed_seconds = 0.0;

  double SustainedQps() const {
    return elapsed_seconds == 0.0
               ? 0.0
               : static_cast<double>(completed) / elapsed_seconds;
  }
  /// Latency percentile in milliseconds (0 when nothing completed yet).
  double LatencyPercentileMs(double p) const {
    return latency_seconds.empty() ? 0.0
                                   : latency_seconds.Percentile(p) * 1e3;
  }
  double MeanBatchFill() const {
    return batch_fill.empty() ? 0.0 : batch_fill.Mean();
  }
};

/// The admission service: any number of client threads submit single
/// queries and receive futures; one admission thread coalesces them into
/// micro-batches and executes them on the backend. All public methods are
/// thread-safe.
class QueryService {
 public:
  /// Serve `db` through an internally owned DatabaseBackend. `db` must
  /// outlive the service.
  explicit QueryService(const DsaDatabase* db, ServiceOptions options = {});
  /// Serve an external backend (e.g. SiteNetworkBackend). `backend` must
  /// outlive the service.
  explicit QueryService(ServiceBackend* backend, ServiceOptions options = {});
  /// Shuts down (draining) if Shutdown() was not called explicitly.
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Submit one shortest-path cost query. Blocks while the queue is full;
  /// the future carries the cost (kInfinity when unconnected), or
  /// std::runtime_error if the service was already shut down.
  std::future<Weight> SubmitShortestPath(NodeId from, NodeId to);

  /// Non-blocking submit: nullopt when the queue is full (counted as a
  /// rejection) or the service is shut down.
  std::optional<std::future<Weight>> TrySubmit(NodeId from, NodeId to);

  /// Submit a pre-formed batch, keeping one future per query (in query
  /// order). Blocks element-wise when the queue fills; the admission loop
  /// may split or merge the batch with concurrent submissions.
  std::vector<std::future<Weight>> SubmitBatch(
      const std::vector<Query>& queries);

  /// Stops admission and drains: blocks until every admitted query's
  /// future is fulfilled and the admission thread has exited. Idempotent.
  void Shutdown();

  /// Snapshot of the accounting so far.
  ServiceStats Stats() const;

  const ServiceOptions& options() const { return options_; }

 private:
  struct Pending {
    Query query;
    std::promise<Weight> promise;
    std::chrono::steady_clock::time_point submit_time;
  };

  std::future<Weight> Enqueue(Query query, bool* accepted_out);
  void AdmissionLoop();

  ServiceOptions options_;
  std::unique_ptr<DatabaseBackend> owned_backend_;
  ServiceBackend* backend_;  // owned_backend_.get() or external

  mutable std::mutex mutex_;
  std::condition_variable queue_cv_;  // admission thread waits here
  std::condition_variable space_cv_;  // blocked submitters wait here
  std::deque<Pending> queue_;
  bool stop_requested_ = false;
  bool stopped_ = false;  // admission thread exited; elapsed frozen
  ServiceStats stats_;
  std::chrono::steady_clock::time_point start_time_;
  std::chrono::steady_clock::time_point stop_time_;
  std::once_flag join_once_;
  std::thread admission_thread_;
};

}  // namespace tcf
