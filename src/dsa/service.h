// Streaming query admission: the layer between "heavy traffic from many
// clients" and the batch core. The paper's phase-1 independence makes
// *batches* profitable (dsa/batch.h), but real traffic arrives as a stream
// of single queries from concurrent clients. A QueryService coalesces those
// arrivals into micro-batches — flush on size or on a time window — and
// runs each micro-batch through a pluggable backend, so streaming traffic
// inherits the cross-query subquery deduplication, the interned-plan memo,
// and the skeleton cache of the batch executor without any client knowing
// about batching.
//
// The admission path is *sharded*: submitters are striped by thread
// affinity over `admission_shards` independent bounded queues (own mutex,
// own backpressure condition), so concurrent clients contend only within
// their stripe instead of on one global admission mutex. One flush thread
// coalesces across all shards — it merges pending entries oldest-first
// into micro-batches — which preserves the single-queue semantics
// exactly: flush on size (total pending ≥ max_batch) or on time window
// (oldest pending entry older than max_wait), bounded per-shard
// backpressure, and drain-on-shutdown.
//
// Admission policy (ServiceOptions):
//   - max_batch:        flush as soon as this many queries are pending
//                       across all shards,
//   - max_wait:         flush a non-empty queue no later than this after
//                       its oldest entry arrived — the latency bound: a
//                       query's p99 latency is bounded by max_wait plus
//                       one batch execution,
//   - queue_capacity:   bounded admission queue, per shard. Submit*
//                       blocks when its shard is full (closed-loop
//                       backpressure); TrySubmit rejects and the
//                       rejection is counted in ServiceStats.
//   - admission_shards: number of admission queue stripes.
//
// Shutdown() drains: every query admitted before the shutdown flag is
// observed is executed and its future fulfilled; submissions arriving
// after that get a future carrying std::runtime_error instead of a value.
// Submitters blocked on a full shard are woken by Shutdown() and rejected
// the same way — backpressure never deadlocks a shutdown.
//
// The backend seam (ServiceBackend) is what makes the admission loop
// deployment-agnostic: DatabaseBackend drives the in-process DsaDatabase
// via BatchExecutor; MaintainedBackend drives a MaintainedDatabase, pinning
// the current epoch snapshot per micro-batch; SiteNetworkBackend drives a
// message-passing SiteNetwork coordinator — the protocol seed for the
// multi-process direction in ROADMAP.md.
//
// Update lane. Services over an updatable backend additionally accept
// SubmitUpdate(EdgeUpdate): updates queue beside the query stream and the
// flush thread applies ALL pending updates as ONE maintenance epoch at the
// start of a wake, before the next query micro-batch. Pending updates
// bypass the max_wait coalescing window (an update's latency is the epoch
// cost, not a batching delay). The returned future yields the published
// epoch id, with the ordering guarantee that matters to clients: once the
// future resolves with epoch E, every query submitted afterwards executes
// against a snapshot of epoch >= E. Queries already in flight keep their
// pinned snapshot — an overlapping query may legitimately answer from any
// epoch that was current at some instant of its admission-to-answer window.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "dsa/batch.h"
#include "dsa/maintenance.h"
#include "util/stats.h"

namespace tcf {

class SiteNetwork;

/// Where admitted micro-batches execute. Called only from the service's
/// single flush thread, so implementations need not be re-entrant — but
/// they may be shared with other traffic (BatchExecutor is re-entrant;
/// SiteNetwork serializes its coordinator internally).
class ServiceBackend {
 public:
  virtual ~ServiceBackend() = default;

  /// Answers `queries` element-wise with shortest-path costs (kInfinity
  /// when unconnected).
  virtual std::vector<Weight> ExecuteBatch(
      const std::vector<Query>& queries) = 0;

  /// True when ApplyUpdates is legal; SubmitUpdate on a service over a
  /// backend without update support fails the future instead of calling
  /// it.
  virtual bool SupportsUpdates() const { return false; }

  /// Applies `updates` in order as ONE maintenance epoch and returns the
  /// epoch id readers see afterwards (the pre-existing epoch when every op
  /// was a no-op). Like ExecuteBatch, called only from the flush thread.
  virtual uint64_t ApplyUpdates(const std::vector<EdgeUpdate>& updates);
};

/// In-process backend: one BatchExecutor::Execute per micro-batch, sharing
/// the database's pool, skeleton cache, and cross-query dedup.
class DatabaseBackend : public ServiceBackend {
 public:
  /// `db` must outlive the backend.
  explicit DatabaseBackend(const DsaDatabase* db) : executor_(db) {}

  std::vector<Weight> ExecuteBatch(const std::vector<Query>& queries) override;

  /// Batch-core accounting summed over all micro-batches this backend ran
  /// (dedup savings, plan-memo skips, cross-batch plan-cache hits, ...).
  const BatchStats& cumulative_stats() const { return cumulative_; }

 private:
  BatchExecutor executor_;
  BatchStats cumulative_;
};

/// Epoch-aware backend over a MaintainedDatabase: every micro-batch pins
/// the current snapshot (so an in-flight batch is never torn by a
/// concurrent epoch) and updates flow through as maintenance epochs.
class MaintainedBackend : public ServiceBackend {
 public:
  /// `mdb` must outlive the backend.
  explicit MaintainedBackend(MaintainedDatabase* mdb) : mdb_(mdb) {
    TCF_CHECK(mdb != nullptr);
  }

  std::vector<Weight> ExecuteBatch(const std::vector<Query>& queries) override;
  bool SupportsUpdates() const override { return true; }
  uint64_t ApplyUpdates(const std::vector<EdgeUpdate>& updates) override;

  const MaintainedDatabase& maintained() const { return *mdb_; }
  /// Batch-core accounting summed over all micro-batches this backend ran.
  const BatchStats& cumulative_stats() const { return cumulative_; }
  /// Epoch of the snapshot the most recent micro-batch executed on.
  uint64_t last_batch_epoch() const { return last_batch_epoch_; }

 private:
  MaintainedDatabase* mdb_;
  BatchStats cumulative_;
  uint64_t last_batch_epoch_ = 0;
};

/// Message-passing backend: micro-batches go through the SiteNetwork
/// coordinator's batched fan-out protocol. `net` must outlive the backend.
class SiteNetworkBackend : public ServiceBackend {
 public:
  explicit SiteNetworkBackend(SiteNetwork* net) : net_(net) {}

  std::vector<Weight> ExecuteBatch(const std::vector<Query>& queries) override;

 private:
  SiteNetwork* net_;
};

/// Micro-batching policy of the admission loop; see the header comment.
struct ServiceOptions {
  size_t max_batch = 64;
  std::chrono::microseconds max_wait{2000};
  /// Bounded admission-queue depth, PER SHARD (total admitted backlog is
  /// bounded by admission_shards * queue_capacity).
  size_t queue_capacity = 4096;
  /// Admission-queue stripes; submitters are striped by thread affinity.
  /// Clamped to [1, 256]. 1 reproduces the single-queue service.
  size_t admission_shards = 4;
  /// Cap on the stored per-query latency and per-batch fill samples
  /// behind the percentile/fill accounting (a uniform reservoir over the
  /// whole stream — see util/stats.h), so a long-running service does not
  /// grow memory without bound. 0 keeps every sample.
  size_t latency_sample_cap = 1 << 16;
};

/// Service-level accounting, snapshot via QueryService::Stats().
struct ServiceStats {
  size_t submitted = 0;  // admitted into the queue
  size_t completed = 0;  // futures fulfilled with an answer
  size_t rejected = 0;   // TrySubmit refusals on a full shard
  size_t batches = 0;    // micro-batches executed

  size_t updates = 0;        // edge updates applied through the service
  size_t update_epochs = 0;  // maintenance epochs the flush thread ran

  /// Per-query admission-to-answer latency, in seconds (sample storage
  /// capped by ServiceOptions::latency_sample_cap).
  Accumulator latency_seconds;
  /// Per-update submit-to-publish latency, in seconds (same sample cap).
  Accumulator update_latency_seconds;
  /// Queries per executed micro-batch (the fill distribution: ≈max_batch
  /// under load, ≈1 under trickle traffic; same sample cap as latency).
  Accumulator batch_fill;

  /// Wall time from service start to this snapshot (frozen at drain end
  /// once the service is shut down).
  double elapsed_seconds = 0.0;

  double SustainedQps() const {
    return elapsed_seconds == 0.0
               ? 0.0
               : static_cast<double>(completed) / elapsed_seconds;
  }
  /// Latency percentile in milliseconds (0 when nothing completed yet).
  double LatencyPercentileMs(double p) const {
    return latency_seconds.empty() ? 0.0
                                   : latency_seconds.Percentile(p) * 1e3;
  }
  double MeanBatchFill() const {
    return batch_fill.empty() ? 0.0 : batch_fill.Mean();
  }
};

/// The admission service: any number of client threads submit single
/// queries and receive futures; one flush thread coalesces them across the
/// admission shards into micro-batches and executes them on the backend.
/// All public methods are thread-safe.
class QueryService {
 public:
  /// Serve `db` through an internally owned DatabaseBackend. `db` must
  /// outlive the service.
  explicit QueryService(const DsaDatabase* db, ServiceOptions options = {});
  /// Serve `mdb` through an internally owned MaintainedBackend: queries
  /// pin epoch snapshots and SubmitUpdate works. `mdb` must outlive the
  /// service.
  explicit QueryService(MaintainedDatabase* mdb, ServiceOptions options = {});
  /// Serve an external backend (e.g. SiteNetworkBackend). `backend` must
  /// outlive the service.
  explicit QueryService(ServiceBackend* backend, ServiceOptions options = {});
  /// Shuts down (draining) if Shutdown() was not called explicitly.
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Submit one shortest-path cost query. Blocks while the submitter's
  /// shard is full; the future carries the cost (kInfinity when
  /// unconnected), or std::runtime_error if the service was already shut
  /// down, or std::out_of_range for an invalid query (database-backed
  /// services validate at admission, so one bad query fails its own
  /// future instead of reaching the flush thread).
  std::future<Weight> SubmitShortestPath(NodeId from, NodeId to);

  /// Non-blocking submit: nullopt when the shard is full (counted as a
  /// rejection) or the service is shut down. An invalid query returns a
  /// future carrying std::out_of_range (it was not rejected for space).
  std::optional<std::future<Weight>> TrySubmit(NodeId from, NodeId to);

  /// Submit a pre-formed batch, keeping one future per query (in query
  /// order). Blocks element-wise when the shard fills; the admission loop
  /// may split or merge the batch with concurrent submissions.
  std::vector<std::future<Weight>> SubmitBatch(
      const std::vector<Query>& queries);

  /// Submit one edge update. The future yields the maintenance-epoch id
  /// that includes the update; once it resolves, every query submitted
  /// afterwards executes on that epoch or later. Carries
  /// std::runtime_error if the backend has no update support or the
  /// service is shut down, std::out_of_range for unknown node ids. The
  /// update queue is unbounded — updates are expected to be orders of
  /// magnitude rarer than queries (the paper's amortization premise).
  std::future<uint64_t> SubmitUpdate(EdgeUpdate update);

  /// Stops admission and drains: blocks until every admitted query's
  /// future is fulfilled and the flush thread has exited. Idempotent.
  void Shutdown();

  /// Snapshot of the accounting so far.
  ServiceStats Stats() const;

  const ServiceOptions& options() const { return options_; }
  /// The clamped admission-shard count actually in use.
  size_t num_shards() const { return shards_.size(); }

 private:
  struct Pending {
    Query query;
    std::promise<Weight> promise;
    std::chrono::steady_clock::time_point submit_time;
  };

  /// One admission stripe: bounded queue + its backpressure condition.
  /// `mutex` guards everything in the struct. Lock ordering: a shard
  /// mutex is always the innermost lock (submitters take it alone; the
  /// flush thread takes it while holding flush_mutex_ or stats_mutex_,
  /// never the reverse).
  struct Shard {
    mutable std::mutex mutex;
    std::condition_variable space_cv;  // blocked submitters wait here
    std::deque<Pending> queue;
    size_t submitted = 0;  // admitted via this shard
    size_t rejected = 0;   // TrySubmit refusals on this shard
    /// Set under `mutex` by Shutdown(). Submitters check THIS flag, not
    /// the atomic: reading it false under the shard lock proves the push
    /// happens-before Shutdown's sweep of this shard, so the drain cannot
    /// miss an in-flight admission.
    bool stopping = false;
  };

  /// Shared constructor tail: validates options, builds the shards and
  /// capped accumulators, starts the flush thread.
  void Start();
  Shard& ShardForThisThread();
  /// The one admission path behind every Submit*: validates (when a
  /// database is known), then pushes into the submitter's shard. Blocking
  /// admission always returns a future (possibly carrying the shutdown or
  /// validation error); non-blocking returns nullopt on a full shard
  /// (counted as a rejection) or after shutdown.
  std::optional<std::future<Weight>> Admit(Query query, bool blocking);
  /// Wakes the flush thread reliably (see the definition for when
  /// submitters need to).
  void RingDoorbell();
  void AdmissionLoop();

  std::chrono::steady_clock::time_point OldestSubmitTime() const;
  /// Pops up to max_batch entries, merged globally oldest-first across
  /// all shards (no stripe can starve), notifying space on every shard it
  /// popped from.
  std::vector<Pending> CollectBatch();
  /// Applies every queued update as one maintenance epoch and fulfills
  /// their futures with the published epoch id. Flush thread only.
  void DrainUpdates();

  struct PendingUpdate {
    EdgeUpdate update;
    std::promise<uint64_t> promise;
    std::chrono::steady_clock::time_point submit_time;
  };

  ServiceOptions options_;
  std::unique_ptr<ServiceBackend> owned_backend_;
  ServiceBackend* backend_;  // owned_backend_.get() or external
  /// Admission-time validation domain: node-id bound (0 disables
  /// validation — external backends define their own domain) and whether
  /// route queries are answerable. Captured at construction; the node-id
  /// space of a MaintainedDatabase is stable across epochs.
  size_t validate_num_nodes_ = 0;
  bool routes_supported_ = true;

  std::vector<std::unique_ptr<Shard>> shards_;

  /// The update lane: one unbounded queue beside the sharded query
  /// stripes. `update_mutex_` guards the queue and the stopping flag;
  /// `updates_pending_` is the flush thread's lock-free wake hint (same
  /// role as pending_). Shutdown() sets `updates_stopping_` before the
  /// stop flag, mirroring the shard protocol, so the final drain cannot
  /// miss an admitted update.
  std::mutex update_mutex_;
  std::vector<PendingUpdate> update_queue_;
  bool updates_stopping_ = false;
  std::atomic<size_t> updates_pending_{0};

  std::atomic<bool> stop_requested_{false};
  /// Total entries across all shard queues. Incremented inside the
  /// submitter's shard critical section, decremented by CollectBatch
  /// while it holds every shard lock, so it always equals the true total
  /// at those points; the flush thread's sleep predicates read it as a
  /// lock-free hint (CollectBatch's full sweep is the authority).
  std::atomic<size_t> pending_{0};

  /// The flush thread's doorbell: submitters ring it after enqueueing;
  /// the flush thread sleeps here between micro-batches. Guards no data —
  /// the predicate reads the shard queues under their own locks.
  mutable std::mutex flush_mutex_;
  std::condition_variable flush_cv_;

  /// Guards the aggregate accounting and the start/stop timestamps.
  mutable std::mutex stats_mutex_;
  ServiceStats stats_;
  bool stopped_ = false;  // flush thread exited; elapsed frozen
  std::chrono::steady_clock::time_point start_time_;
  std::chrono::steady_clock::time_point stop_time_;

  std::once_flag join_once_;
  std::thread admission_thread_;
};

}  // namespace tcf
