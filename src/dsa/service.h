// Streaming query admission: the layer between "heavy traffic from many
// clients" and the batch core. The paper's phase-1 independence makes
// *batches* profitable (dsa/batch.h), but real traffic arrives as a stream
// of single queries from concurrent clients. A QueryService coalesces those
// arrivals into micro-batches — flush on size or on a time window — and
// runs each micro-batch through a pluggable backend, so streaming traffic
// inherits the cross-query subquery deduplication, the interned-plan memo,
// and the skeleton cache of the batch executor without any client knowing
// about batching.
//
// The admission path is *sharded*: submitters are striped by thread
// affinity over `admission_shards` independent bounded queues (own mutex,
// own backpressure condition), so concurrent clients contend only within
// their stripe instead of on one global admission mutex.
//
// Flushing is *parallel*: `flush_workers` worker threads (default: one per
// hardware thread) each own a disjoint group of admission shards — shard s
// belongs to worker s % flush_workers — and each drives its own
// CollectBatch + ExecuteBatch + promise-fulfillment cycle, so micro-batches
// execute concurrently on a re-entrant backend. A worker whose own group is
// empty *steals*: it sweeps every shard globally oldest-first, so a hot
// shard group can never starve behind one busy worker while others idle.
// With flush_workers == 1 the worker owns every shard and the service
// reproduces the single-flush-thread semantics exactly: flush on size
// (total pending ≥ max_batch) or on time window (oldest pending entry older
// than max_wait). With more workers the same per-query latency bound holds
// (a query is collected no later than max_wait after admission, by its
// owner or by a thief), but a size-triggered flush coalesces per group, so
// concurrent batches may each carry a fraction of the global backlog —
// that is the point: fill is traded for parallel execution.
//
// Admission policy (ServiceOptions):
//   - max_batch:        flush as soon as this many queries are pending
//                       across all shards,
//   - max_wait:         flush a non-empty queue no later than this after
//                       its oldest entry arrived — the latency bound: a
//                       query's p99 latency is bounded by max_wait plus
//                       one batch execution,
//   - queue_capacity:   bounded admission queue, per shard. Submit*
//                       blocks when its shard is full (closed-loop
//                       backpressure); TrySubmit rejects and the
//                       rejection is counted in ServiceStats.
//   - admission_shards: number of admission queue stripes.
//   - flush_workers:    number of concurrent flush workers (0 = one per
//                       hardware thread).
//
// Shutdown() drains: every query admitted before the shutdown flag is
// observed is executed and its future fulfilled; submissions arriving
// after that get a future carrying std::runtime_error instead of a value.
// Submitters blocked on a full shard are woken by Shutdown() and rejected
// the same way — backpressure never deadlocks a shutdown. The last flush
// worker to exit freezes the service clock, so post-shutdown Stats() is
// stable regardless of worker scheduling.
//
// The backend seam (ServiceBackend) is what makes the flush workers
// deployment-agnostic: DatabaseBackend drives the in-process DsaDatabase
// via BatchExecutor; MaintainedBackend drives a MaintainedDatabase, pinning
// the current epoch snapshot per micro-batch; SiteNetworkBackend drives a
// message-passing SiteNetwork coordinator — the protocol seed for the
// multi-process direction in ROADMAP.md.
//
// Update lane. Services over an updatable backend additionally accept
// SubmitUpdate(EdgeUpdate): updates queue beside the query stream and a
// dedicated *update-applier thread* applies ALL pending updates as ONE
// maintenance epoch per wake, concurrently with query execution — a slow
// structural epoch no longer stalls admitted reads, because flush workers
// keep executing on the previous snapshot and pick up the new epoch at
// their next batch boundary (the snapshot swap inside ApplyUpdates is the
// epoch barrier). The returned future yields the published epoch id, with
// the ordering guarantee that matters to clients: once the future resolves
// with epoch E, every query submitted afterwards executes against a
// snapshot of epoch >= E. That holds under any number of flush workers
// because a micro-batch pins its snapshot only AFTER popping its queries:
// publish(E) happens-before set_value(E) happens-before the client's
// admission happens-before the pop happens-before the snapshot pin.
// Queries already in flight keep their pinned snapshot — an overlapping
// query may legitimately answer from any epoch that was current at some
// instant of its admission-to-answer window.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "dsa/batch.h"
#include "dsa/maintenance.h"
#include "util/stats.h"

namespace tcf {

class SiteNetwork;

/// Where admitted micro-batches execute. ExecuteBatch may be called
/// CONCURRENTLY from the service's flush workers, so implementations must
/// be re-entrant or serialize internally (BatchExecutor is re-entrant;
/// SiteNetwork serializes its coordinator internally). ApplyUpdates is
/// called only from the service's single update-applier thread, one epoch
/// at a time, but concurrently with ExecuteBatch calls.
class ServiceBackend {
 public:
  virtual ~ServiceBackend() = default;

  /// Answers `queries` element-wise: a cost (kInfinity when unconnected),
  /// or a Status when that query could not be evaluated (e.g. a paged
  /// database whose pages failed to read). The service fulfills each
  /// query's future from its element, so one failed query fails its own
  /// future — never the batch, never the process.
  virtual std::vector<Result<Weight>> ExecuteBatch(
      const std::vector<Query>& queries) = 0;

  /// True when ApplyUpdates is legal; SubmitUpdate on a service over a
  /// backend without update support fails the future instead of calling
  /// it.
  virtual bool SupportsUpdates() const { return false; }

  /// Applies `updates` in order as ONE maintenance epoch and returns the
  /// epoch id readers see afterwards (the pre-existing epoch when every op
  /// was a no-op). Called only from the update-applier thread.
  virtual uint64_t ApplyUpdates(const std::vector<EdgeUpdate>& updates);
};

/// In-process backend: one BatchExecutor::Execute per micro-batch, sharing
/// the database's pool, skeleton cache, and cross-query dedup. Re-entrant:
/// concurrent micro-batches share the executor (itself re-entrant) and the
/// cumulative accounting is mutex-guarded.
class DatabaseBackend : public ServiceBackend {
 public:
  /// `db` must outlive the backend.
  explicit DatabaseBackend(const DsaDatabase* db) : executor_(db) {}

  std::vector<Result<Weight>> ExecuteBatch(
      const std::vector<Query>& queries) override;

  /// Batch-core accounting summed over all micro-batches this backend ran
  /// (dedup savings, plan-memo skips, cross-batch plan-cache hits, ...).
  /// Returned by value: the sums keep moving under concurrent flushes.
  BatchStats cumulative_stats() const;

 private:
  BatchExecutor executor_;
  mutable std::mutex stats_mutex_;
  BatchStats cumulative_;
};

/// Epoch-aware backend over a MaintainedDatabase: every micro-batch pins
/// the current snapshot (so an in-flight batch is never torn by a
/// concurrent epoch) and updates flow through as maintenance epochs.
/// Re-entrant: each micro-batch gets its own executor over its own pinned
/// snapshot; the cumulative accounting is mutex-guarded.
class MaintainedBackend : public ServiceBackend {
 public:
  /// `mdb` must outlive the backend.
  explicit MaintainedBackend(MaintainedDatabase* mdb) : mdb_(mdb) {
    TCF_CHECK(mdb != nullptr);
  }

  std::vector<Result<Weight>> ExecuteBatch(
      const std::vector<Query>& queries) override;
  bool SupportsUpdates() const override { return true; }
  uint64_t ApplyUpdates(const std::vector<EdgeUpdate>& updates) override;

  const MaintainedDatabase& maintained() const { return *mdb_; }
  /// Batch-core accounting summed over all micro-batches this backend ran.
  /// Returned by value (see DatabaseBackend::cumulative_stats).
  BatchStats cumulative_stats() const;
  /// Epoch of the snapshot a recently executed micro-batch ran on (with
  /// concurrent workers, "most recent" is whichever batch stored last).
  uint64_t last_batch_epoch() const {
    return last_batch_epoch_.load(std::memory_order_relaxed);
  }

 private:
  MaintainedDatabase* mdb_;
  mutable std::mutex stats_mutex_;
  BatchStats cumulative_;
  std::atomic<uint64_t> last_batch_epoch_{0};
};

/// Message-passing backend: micro-batches go through the SiteNetwork
/// coordinator's batched fan-out protocol (serialized by the coordinator's
/// own mutex, so concurrent flush workers are safe, just not parallel).
/// `net` must outlive the backend.
class SiteNetworkBackend : public ServiceBackend {
 public:
  explicit SiteNetworkBackend(SiteNetwork* net) : net_(net) {}

  std::vector<Result<Weight>> ExecuteBatch(
      const std::vector<Query>& queries) override;

 private:
  SiteNetwork* net_;
};

/// Micro-batching policy of the admission loop; see the header comment.
struct ServiceOptions {
  size_t max_batch = 64;
  std::chrono::microseconds max_wait{2000};
  /// Bounded admission-queue depth, PER SHARD (total admitted backlog is
  /// bounded by admission_shards * queue_capacity).
  size_t queue_capacity = 4096;
  /// Admission-queue stripes; submitters are striped by thread affinity.
  /// Clamped to [1, 256]. 1 reproduces the single-queue service.
  size_t admission_shards = 4;
  /// Concurrent flush workers, each owning the shard group
  /// {s : s % flush_workers == worker} and stealing globally when its own
  /// group is empty. 0 (the default) means one worker per hardware thread
  /// (min 1); clamped to [1, 64]. 1 reproduces the single-flush-thread
  /// service exactly.
  size_t flush_workers = 0;
  /// Cap on the stored per-query latency and per-batch fill samples
  /// behind the percentile/fill accounting (a uniform reservoir over the
  /// whole stream — see util/stats.h), so a long-running service does not
  /// grow memory without bound. 0 keeps every sample.
  size_t latency_sample_cap = 1 << 16;
};

/// Service-level accounting, snapshot via QueryService::Stats().
struct ServiceStats {
  size_t submitted = 0;  // admitted into the queue
  size_t completed = 0;  // futures fulfilled with an answer
  size_t rejected = 0;   // TrySubmit refusals on a full shard
  size_t batches = 0;    // micro-batches executed

  size_t updates = 0;        // edge updates applied through the service
  size_t update_epochs = 0;  // maintenance epochs the applier thread ran

  /// Per-query admission-to-answer latency, in seconds (sample storage
  /// capped by ServiceOptions::latency_sample_cap).
  Accumulator latency_seconds;
  /// Per-update submit-to-publish latency, in seconds (same sample cap).
  Accumulator update_latency_seconds;
  /// Queries per executed micro-batch (the fill distribution: ≈max_batch
  /// under load, ≈1 under trickle traffic; same sample cap as latency).
  Accumulator batch_fill;

  /// Wall time from service start to this snapshot (frozen when the LAST
  /// flush worker exits after Shutdown(), so post-shutdown snapshots are
  /// identical regardless of worker scheduling).
  double elapsed_seconds = 0.0;

  /// Sustained QUERY rate: completed queries per elapsed second. Updates
  /// are deliberately excluded — they are a different operation with a
  /// different cost; see SustainedUpdatesPerSec / SustainedOpsPerSec for
  /// mixed workloads.
  double SustainedQps() const {
    return elapsed_seconds == 0.0
               ? 0.0
               : static_cast<double>(completed) / elapsed_seconds;
  }
  /// Sustained UPDATE rate: edge updates applied per elapsed second.
  double SustainedUpdatesPerSec() const {
    return elapsed_seconds == 0.0
               ? 0.0
               : static_cast<double>(updates) / elapsed_seconds;
  }
  /// Sustained combined operation rate (queries + updates per second) —
  /// the number a mixed-workload bench should report as "throughput" so
  /// update work is not silently dropped from the headline.
  double SustainedOpsPerSec() const {
    return elapsed_seconds == 0.0
               ? 0.0
               : static_cast<double>(completed + updates) / elapsed_seconds;
  }
  /// Latency percentile in milliseconds (0 when nothing completed yet).
  double LatencyPercentileMs(double p) const {
    return latency_seconds.empty() ? 0.0
                                   : latency_seconds.Percentile(p) * 1e3;
  }
  double MeanBatchFill() const {
    return batch_fill.empty() ? 0.0 : batch_fill.Mean();
  }
};

/// The admission service: any number of client threads submit single
/// queries and receive futures; flush workers coalesce them across the
/// admission shards into micro-batches and execute them on the backend.
/// All public methods are thread-safe.
class QueryService {
 public:
  /// Serve `db` through an internally owned DatabaseBackend. `db` must
  /// outlive the service.
  explicit QueryService(const DsaDatabase* db, ServiceOptions options = {});
  /// Serve `mdb` through an internally owned MaintainedBackend: queries
  /// pin epoch snapshots and SubmitUpdate works. `mdb` must outlive the
  /// service.
  explicit QueryService(MaintainedDatabase* mdb, ServiceOptions options = {});
  /// Serve an external backend (e.g. SiteNetworkBackend). `backend` must
  /// outlive the service.
  explicit QueryService(ServiceBackend* backend, ServiceOptions options = {});
  /// Shuts down (draining) if Shutdown() was not called explicitly.
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Submit one shortest-path cost query. Blocks while the submitter's
  /// shard is full; the future carries the cost (kInfinity when
  /// unconnected), or std::runtime_error if the service was already shut
  /// down, or std::out_of_range for an invalid query (database-backed
  /// services validate at admission, so one bad query fails its own
  /// future instead of reaching a flush worker).
  std::future<Weight> SubmitShortestPath(NodeId from, NodeId to);

  /// Non-blocking submit: nullopt when the shard is full (counted as a
  /// rejection) or the service is shut down. An invalid query returns a
  /// future carrying std::out_of_range (it was not rejected for space).
  std::optional<std::future<Weight>> TrySubmit(NodeId from, NodeId to);

  /// Submit a pre-formed batch, keeping one future per query (in query
  /// order). Blocks element-wise when the shard fills; the flush workers
  /// may split or merge the batch with concurrent submissions.
  std::vector<std::future<Weight>> SubmitBatch(
      const std::vector<Query>& queries);

  /// Submit one edge update. The future yields the maintenance-epoch id
  /// that includes the update; once it resolves, every query submitted
  /// afterwards executes on that epoch or later (see the header comment
  /// for why this holds under concurrent flush workers). Carries
  /// std::runtime_error if the backend has no update support or the
  /// service is shut down, std::out_of_range for unknown node ids. The
  /// update queue is unbounded — updates are expected to be orders of
  /// magnitude rarer than queries (the paper's amortization premise).
  std::future<uint64_t> SubmitUpdate(EdgeUpdate update);

  /// Stops admission and drains: blocks until every admitted query's
  /// future is fulfilled and every flush worker has exited. Idempotent.
  void Shutdown();

  /// True once Shutdown() has begun (admission may already be rejecting).
  /// The network edge (net/server.h) checks this to answer requests that
  /// race a shutdown with a clean error frame instead of letting them hit
  /// the admission path's exception; queries admitted before the flag
  /// flipped are still drained and answered normally — that split is the
  /// daemon's shutdown-drain contract.
  bool IsShuttingDown() const {
    return stop_requested_.load(std::memory_order_acquire);
  }

  /// Snapshot of the accounting so far.
  ServiceStats Stats() const;

  const ServiceOptions& options() const { return options_; }
  /// The clamped admission-shard count actually in use.
  size_t num_shards() const { return shards_.size(); }
  /// The clamped flush-worker count actually in use (the resolved value
  /// when flush_workers was 0 = auto).
  size_t num_flush_workers() const { return flush_threads_.size(); }

 private:
  struct Pending {
    Query query;
    std::promise<Weight> promise;
    std::chrono::steady_clock::time_point submit_time;
  };

  /// One admission stripe: bounded queue + its backpressure condition.
  /// `mutex` guards everything in the struct.
  ///
  /// Lock order (the reason concurrent poppers cannot deadlock): shard
  /// mutexes are ranked by shard index, and every multi-shard acquisition
  /// (CollectFromShards over a group or over all shards,
  /// OldestSubmitTimeOf, Stats) takes them in ascending index order and
  /// releases all of them before acquiring any other set. Submitters hold
  /// exactly one shard mutex. stats_mutex_ is acquired either alone, or
  /// before shard mutexes (Stats), never after — flush workers release
  /// every shard lock before recording stats. So every cycle the
  /// wait-for graph could form is broken by the ascending-index rank.
  struct Shard {
    mutable std::mutex mutex;
    std::condition_variable space_cv;  // blocked submitters wait here
    std::deque<Pending> queue;
    size_t submitted = 0;  // admitted via this shard
    size_t rejected = 0;   // TrySubmit refusals on this shard
    /// Set under `mutex` by Shutdown(). Submitters check THIS flag, not
    /// the atomic: reading it false under the shard lock proves the push
    /// happens-before Shutdown's sweep of this shard, so the drain cannot
    /// miss an in-flight admission.
    bool stopping = false;
  };

  /// Shared constructor tail: validates options, builds the shards, the
  /// worker→shard-group table, and the capped accumulators, then starts
  /// the flush workers (and the update applier when the backend supports
  /// updates).
  void Start();
  Shard& ShardForThisThread();
  /// The one admission path behind every Submit*: validates (when a
  /// database is known), then pushes into the submitter's shard. Blocking
  /// admission always returns a future (possibly carrying the shutdown or
  /// validation error); non-blocking returns nullopt on a full shard
  /// (counted as a rejection) or after shutdown.
  std::optional<std::future<Weight>> Admit(Query query, bool blocking);
  /// Wakes the flush workers reliably (see the definition for when
  /// submitters need to).
  void RingDoorbell();
  /// One flush worker: coalesce, collect (own group first, then steal),
  /// execute, fulfill. The last worker to exit freezes the stats clock.
  void FlushWorkerLoop(size_t worker);
  /// The update applier: drains all pending updates as one maintenance
  /// epoch per wake, concurrently with the flush workers.
  void UpdateLoop();

  /// `OldestSubmitTime() + max_wait` clamped against overflow: when the
  /// queues race empty between the sleep-predicate check and this call
  /// (another popper got there first), OldestSubmitTime returns
  /// time_point::max() and the unclamped addition is UB. Returns
  /// time_point::max() ("no deadline") in that case.
  static std::chrono::steady_clock::time_point FlushDeadline(
      std::chrono::steady_clock::time_point oldest,
      std::chrono::microseconds max_wait);

  /// Oldest pending submit time across `shard_indices` (time_point::max()
  /// when all are empty). Takes the shard locks one at a time in ascending
  /// index order; the result is advisory — a concurrent popper may remove
  /// the entry before the caller acts on it, which is why every deadline
  /// derived from it goes through FlushDeadline and every sleep re-checks.
  std::chrono::steady_clock::time_point OldestSubmitTimeOf(
      const std::vector<size_t>& shard_indices) const;
  /// Pops up to max_batch entries merged oldest-first across
  /// `shard_indices`, holding all their locks (ascending index order) for
  /// the merge, notifying space on every shard it popped from.
  std::vector<Pending> CollectFromShards(
      const std::vector<size_t>& shard_indices);
  /// Worker collection policy: own shard group first; when the group is
  /// empty, steal globally oldest-first across ALL shards. Returns empty
  /// only when every shard was empty at the global sweep.
  std::vector<Pending> CollectBatch(size_t worker);

  struct PendingUpdate {
    EdgeUpdate update;
    std::promise<uint64_t> promise;
    std::chrono::steady_clock::time_point submit_time;
  };

  ServiceOptions options_;
  std::unique_ptr<ServiceBackend> owned_backend_;
  ServiceBackend* backend_;  // owned_backend_.get() or external
  /// Admission-time validation domain: node-id bound (0 disables
  /// validation — external backends define their own domain) and whether
  /// route queries are answerable. Captured at construction; the node-id
  /// space of a MaintainedDatabase is stable across epochs.
  size_t validate_num_nodes_ = 0;
  bool routes_supported_ = true;

  std::vector<std::unique_ptr<Shard>> shards_;
  /// group_shards_[w] = ascending shard indices owned by worker w
  /// (s % flush_workers == w); all_shards_ = every index, for steals.
  std::vector<std::vector<size_t>> group_shards_;
  std::vector<size_t> all_shards_;

  /// The update lane: one unbounded queue beside the sharded query
  /// stripes, drained by the dedicated applier thread sleeping on
  /// `update_cv_`. `update_mutex_` guards the queue and the stopping
  /// flag. Shutdown() sets `updates_stopping_` under the mutex, so an
  /// update admitted under `stopping == false` is ordered before the flag
  /// flip and the applier's final drain cannot miss it.
  std::mutex update_mutex_;
  std::condition_variable update_cv_;
  std::vector<PendingUpdate> update_queue_;
  bool updates_stopping_ = false;

  std::atomic<bool> stop_requested_{false};
  /// Total entries across all shard queues. Incremented inside the
  /// submitter's shard critical section, decremented by CollectFromShards
  /// while it holds its shard locks; the flush workers' sleep predicates
  /// read it as a lock-free hint (a collect sweep is the authority).
  std::atomic<size_t> pending_{0};

  /// The flush workers' doorbell: submitters ring it after enqueueing;
  /// workers sleep here between micro-batches. Guards no data — the
  /// predicates read the shard queues under their own locks.
  mutable std::mutex flush_mutex_;
  std::condition_variable flush_cv_;

  /// Guards the aggregate accounting and the start/stop timestamps.
  mutable std::mutex stats_mutex_;
  ServiceStats stats_;
  bool stopped_ = false;  // last flush-role thread exited; elapsed frozen
  std::chrono::steady_clock::time_point start_time_;
  std::chrono::steady_clock::time_point stop_time_;
  /// Flush-role threads (workers + applier) still running; the thread
  /// that decrements it to zero freezes the stats clock.
  std::atomic<int> live_flushers_{0};

  std::once_flag join_once_;
  std::vector<std::thread> flush_threads_;
  std::thread update_thread_;
};

}  // namespace tcf
