// The public query interface of the disconnection set approach: a
// DsaDatabase wraps a fragmentation, precomputes the complementary
// information once (the paper's amortized pre-processing), and answers
// connection and shortest-path queries by
//   1. locating the fragments of the two query constants,
//   2. finding the chain(s) of fragments connecting them,
//   3. running one independent subquery per fragment on the chain(s), in
//      parallel, with the disconnection sets as keyhole selections,
//   4. assembling the per-fragment answers with small binary joins.
#pragma once

#include <memory>
#include <optional>

#include "dsa/chains.h"
#include "dsa/executor.h"

namespace tcf {

struct DsaOptions {
  LocalEngine engine = LocalEngine::kDijkstra;
  /// Threads for phase 1; 0 = one per fragment.
  size_t num_threads = 0;
  /// Cap on enumerated chains when the fragmentation graph has cycles.
  size_t max_chains = 64;
  /// Ablation switch: evaluate without the complementary information
  /// (answers may then be over-estimates; see EXPERIMENTS.md).
  bool use_complementary = true;
};

/// Answer to one query.
struct QueryAnswer {
  bool connected = false;
  Weight cost = kInfinity;            // shortest-path cost (min-plus)
  size_t chains_considered = 0;
  std::vector<FragmentId> fragments_involved;  // distinct, phase-1 sites
};

/// Answer to a route query: the cost plus the realizing node sequence in
/// the base graph (shortcut hops expanded through the complementary
/// witnesses). `route` is empty when unconnected, {from} when from == to.
struct RouteAnswer {
  QueryAnswer answer;
  std::vector<NodeId> route;
};

/// A fragmented database ready to answer transitive-closure queries.
/// Not thread-safe for concurrent queries (each query uses the internal
/// pool for its own parallelism).
class DsaDatabase {
 public:
  /// `frag` must outlive the database. Precomputes complementary info.
  DsaDatabase(const Fragmentation* frag, DsaOptions options = {});

  const Fragmentation& fragmentation() const { return *frag_; }
  const ComplementaryInfo& complementary() const { return complementary_; }
  const DsaOptions& options() const { return options_; }

  /// Shortest-path cost between two nodes; kInfinity when unconnected.
  /// Fills `report` (if given) with the execution breakdown.
  QueryAnswer ShortestPath(NodeId from, NodeId to,
                           ExecutionReport* report = nullptr) const;

  /// Shortest path *with the realizing route* ("What is the cost of the
  /// shortest path between A and B?" needs the path itself in practice).
  /// The per-fragment answers are assembled exactly as in ShortestPath;
  /// the winning chain's relay nodes are then back-tracked and each leg is
  /// re-expanded inside its fragment, with shortcut hops replaced by their
  /// precomputed witness routes. Requires complementary information.
  RouteAnswer ShortestRoute(NodeId from, NodeId to,
                            ExecutionReport* report = nullptr) const;

  /// Reachability ("Is A connected to B?").
  bool IsConnected(NodeId from, NodeId to,
                   ExecutionReport* report = nullptr) const;

 private:
  struct QueryPlan;
  QueryPlan BuildPlan(NodeId from, NodeId to) const;

  const Fragmentation* frag_;
  DsaOptions options_;
  ComplementaryInfo complementary_;
  mutable std::unique_ptr<ThreadPool> pool_;
};

}  // namespace tcf
