// The public query interface of the disconnection set approach: a
// DsaDatabase wraps a fragmentation, precomputes the complementary
// information once (the paper's amortized pre-processing), and answers
// connection and shortest-path queries by
//   1. locating the fragments of the two query constants,
//   2. finding the chain(s) of fragments connecting them (served from a
//      thread-safe LRU plan cache — chain enumeration is pure
//      fragmentation-graph work, so hot fragment pairs are enumerated once),
//   3. running one independent subquery per fragment on the chain(s), in
//      parallel, with the disconnection sets as keyhole selections,
//   4. assembling the per-fragment answers with small binary joins.
//
// For answering *many* queries at once — sharing subqueries across queries
// as well as across chains — see dsa/batch.h.
#pragma once

#include <memory>
#include <optional>

#include "dsa/chains.h"
#include "dsa/executor.h"

namespace tcf {

struct DsaOptions {
  LocalEngine engine = LocalEngine::kDijkstra;
  /// Threads for phase 1; 0 = one per fragment.
  size_t num_threads = 0;
  /// Cap on enumerated chains when the fragmentation graph has cycles.
  size_t max_chains = kDefaultMaxChains;
  /// Ablation switch: evaluate without the complementary information
  /// (answers may then be over-estimates; see EXPERIMENTS.md).
  bool use_complementary = true;
  /// Capacity of the chain-plan LRU cache (entries are fragment pairs);
  /// 0 disables plan caching.
  size_t plan_cache_capacity = 4096;
  /// Capacity of the cross-batch interned-plan LRU cache (entries are
  /// (from, to) node pairs; plans are skeleton-relative, so they survive
  /// batch boundaries). 0 disables cross-batch plan interning; the whole
  /// cache is off when plan_cache_capacity == 0. Memory note: resident
  /// plans pin the skeletons they reference, so on workloads with few
  /// node-pair repeats (where the cache cannot pay off) this capacity —
  /// not plan_cache_capacity — is what bounds planner memory; shrink it
  /// (or disable it) there.
  size_t interned_plan_cache_capacity = ChainPlanCache::kDefaultPlanCapacity;
};

/// State a maintenance epoch hands from the outgoing DsaDatabase to its
/// successor, so the successor does not pay full pre-processing again:
/// refreshed complementary info, an epoch-filtered plan cache, and the
/// shared phase-1 worker pool (threads survive epochs; only the data
/// around them is republished).
struct EpochCarryover {
  ComplementaryInfo complementary;
  std::unique_ptr<ChainPlanCache> plan_cache;
  std::shared_ptr<ThreadPool> pool;
  uint64_t epoch = 0;
};

/// A fragmented database ready to answer transitive-closure queries.
///
/// Thread-safety contract: after construction, all query methods are
/// re-entrant and safe to call concurrently from any number of threads.
/// Every query runs its phase-1 subqueries on the one pool owned by the
/// database (sized by DsaOptions::num_threads), and the chain-plan cache is
/// internally synchronized. The fragmentation must stay immutable while
/// queries run (it always is — Fragmentation is immutable by construction).
/// A DsaDatabase never mutates after construction; updates are modeled by
/// building a successor database (see dsa/maintenance.h).
class DsaDatabase {
 public:
  /// `frag` must outlive the database. Precomputes complementary info.
  DsaDatabase(const Fragmentation* frag, DsaOptions options = {});

  /// Epoch-successor constructor: adopts the carryover instead of
  /// recomputing from scratch. `carry.complementary` must already be
  /// consistent with `frag` (RefreshComplementary or a full recompute);
  /// `carry.plan_cache` may be null to start cold; a null `carry.pool`
  /// builds a fresh pool.
  DsaDatabase(const Fragmentation* frag, DsaOptions options,
              EpochCarryover carry);

  const Fragmentation& fragmentation() const { return *frag_; }
  const ComplementaryInfo& complementary() const { return complementary_; }
  const DsaOptions& options() const { return options_; }

  /// Shortest-path cost between two nodes; kInfinity when unconnected.
  /// Fills `report` (if given) with the execution breakdown.
  QueryAnswer ShortestPath(NodeId from, NodeId to,
                           ExecutionReport* report = nullptr) const;

  /// Shortest path *with the realizing route* ("What is the cost of the
  /// shortest path between A and B?" needs the path itself in practice).
  /// The per-fragment answers are assembled exactly as in ShortestPath;
  /// the winning chain's relay nodes are then back-tracked and each leg is
  /// re-expanded inside its fragment, with shortcut hops replaced by their
  /// precomputed witness routes. Requires complementary information.
  RouteAnswer ShortestRoute(NodeId from, NodeId to,
                            ExecutionReport* report = nullptr) const;

  /// Reachability ("Is A connected to B?").
  bool IsConnected(NodeId from, NodeId to,
                   ExecutionReport* report = nullptr) const;

  /// The shared chain-plan cache (nullptr when disabled). Exposed for
  /// cache-hit-rate reporting in benches and tests.
  const ChainPlanCache* plan_cache() const { return plan_cache_.get(); }

  /// The phase-1 pool shared by all queries against this database. The
  /// batch executor schedules its deduplicated subqueries here too, so
  /// single and batched queries draw from one set of site workers.
  ThreadPool* pool() const { return pool_.get(); }

  /// The pool as a shareable handle, for carrying it into the successor
  /// database of a maintenance epoch.
  std::shared_ptr<ThreadPool> SharePool() const { return pool_; }

  /// The maintenance epoch this database was published under (0 for a
  /// freshly built database). Batch results are stamped with it so
  /// concurrent readers can tell which snapshot answered them.
  uint64_t epoch() const { return epoch_; }

 private:
  friend class BatchExecutor;

  /// Plans `from` -> `to` through the plan cache, interning subqueries
  /// into `specs` (a per-query SpecTable, or the batch executor's shared
  /// ShardedSpecTable).
  QueryPlan Plan(NodeId from, NodeId to, SpecSink* specs) const;

  const Fragmentation* frag_;
  DsaOptions options_;
  uint64_t epoch_ = 0;
  ComplementaryInfo complementary_;
  mutable std::shared_ptr<ThreadPool> pool_;
  mutable std::unique_ptr<ChainPlanCache> plan_cache_;
};

}  // namespace tcf
