// Message-passing simulation of the distributed deployment the paper
// targets (the PRISMA multiprocessor of Sec. 5): each fragment R_i is
// "stored at a different computer or processor" — here, a Site thread
// owning its fragment and complementary information, reachable only
// through its mailbox. A coordinator executes queries strictly via
// messages, which lets tests *verify* rather than assume the paper's
// phase-1 property: "neither communication nor synchronization is
// required during the first phase of the computation; ... Only at the end
// of the computation, communication is required for computing the final
// joins."
#pragma once

#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "dsa/chains.h"
#include "dsa/local_query.h"
#include "net/site_transport.h"

namespace tcf {

class ThreadPool;

/// Which fabric carries the coordinator/site messages (the protocol on
/// top is identical — see net/site_transport.h).
enum class SiteTransportKind {
  kInProcess,  // per-site Channel mailboxes (simulation default)
  kSocket,     // one loopback TCP connection per site, real wire frames
};

/// Communication accounting for one query, by protocol phase.
struct SiteTraffic {
  size_t subquery_messages = 0;       // coordinator -> sites (phase 0)
  size_t result_messages = 0;         // sites -> coordinator (phase 2)
  size_t result_tuples = 0;           // tuple volume of phase 2
  size_t inter_site_messages = 0;     // site <-> site (must stay 0!)
};

/// A network of per-fragment site threads plus a coordinator-side API.
/// Queries may be issued from any number of threads: the coordinator side
/// is serialized internally by a mutex (one query or batch protocol round
/// in flight at a time — the single coordinator of the paper's deployment).
/// Coordinator-side *planning* runs in parallel on an internal planner
/// pool through the same sharded machinery as the in-process batch
/// executor (sharded plan memo + sharded spec table + skeleton cache), so
/// large batches do not serialize on plan construction.
class SiteNetwork {
 public:
  /// Spawns one thread per fragment. `frag` must outlive the network; the
  /// complementary information is precomputed here (one copy per site in
  /// a real deployment; shared read-only storage in the simulation).
  /// `transport` picks the message fabric; kSocket runs every subquery
  /// and result through the tcfrag wire codec over loopback TCP.
  explicit SiteNetwork(const Fragmentation* frag,
                       LocalEngine engine = LocalEngine::kDijkstra,
                       SiteTransportKind transport =
                           SiteTransportKind::kInProcess);
  ~SiteNetwork();

  SiteNetwork(const SiteNetwork&) = delete;
  SiteNetwork& operator=(const SiteNetwork&) = delete;

  size_t NumSites() const { return sites_.size(); }

  /// Shortest-path cost via the full message protocol: plan chains, send
  /// one subquery message per (fragment, selection), await result
  /// messages, assemble locally. Exact (uses complementary information).
  Weight ShortestPathCost(NodeId from, NodeId to,
                          SiteTraffic* traffic = nullptr);

  /// A whole batch through the same protocol as one fan-out: every query
  /// is planned up front, subqueries are deduplicated *across queries*
  /// (one message per distinct (fragment, selection) no matter how many
  /// queries need it), all messages are sent before any result is awaited,
  /// and every answer is assembled at the coordinator. The phase-1
  /// property is preserved batch-wide: sites still never talk to each
  /// other. `traffic`, if non-null, receives the whole batch's counters.
  std::vector<Weight> BatchShortestPathCosts(
      const std::vector<std::pair<NodeId, NodeId>>& queries,
      SiteTraffic* traffic = nullptr);

 private:
  void SiteLoop(FragmentId fragment);

  const Fragmentation* frag_;
  LocalEngine engine_;
  ComplementaryInfo complementary_;
  /// The message fabric (mailboxes or loopback sockets); every subquery
  /// and result crosses it — SiteNetwork itself never hands a site a
  /// pointer.
  std::unique_ptr<SiteTransport> transport_;
  std::vector<std::thread> sites_;

  /// Serializes the coordinator protocol (mailbox fan-out + inbox drain):
  /// request ids and the shared inbox admit one protocol round at a time.
  std::mutex coordinator_mutex_;
  /// Parallel planning on the coordinator (guarded by coordinator_mutex_).
  std::unique_ptr<ThreadPool> planner_pool_;
  std::unique_ptr<ChainPlanCache> plan_cache_;
  uint64_t next_request_id_ = 1;
};

}  // namespace tcf
