// Phase 1 of the disconnection set approach: one site's subquery. "Each
// subquery determines a shortest path per fragment; note that disconnection
// sets introduce additional selections in the processing of the recursive
// query, they act as intermediate nodes that must be mandatorily
// traversed." (Sec. 2.1)
//
// A local query computes best paths from a source node set (the query
// constant or the incoming disconnection set) to a target node set (the
// outgoing disconnection set or the query constant), within one fragment
// augmented by its complementary shortcut relation.
//
// Two engines:
//   - the relational engines evaluate the recursive query with the
//     transitive-closure strategies of src/relational/ (faithful to the
//     paper's database setting, with full workload statistics);
//   - the Dijkstra engine runs graph search on the augmented fragment
//     (the "any suitable single-processor algorithm may be chosen" remark).
#pragma once

#include "dsa/complementary.h"
#include "fragment/fragmentation.h"
#include "relational/transitive_closure.h"

namespace tcf {

enum class LocalEngine {
  kSemiNaive,  // relational semi-naive iteration
  kSmart,      // relational logarithmic squaring
  kDijkstra    // graph search on the augmented fragment
};

struct LocalQuerySpec {
  FragmentId fragment = 0;
  NodeSet sources;
  NodeSet targets;
};

struct LocalQueryResult {
  /// Best (src, dst, cost) per source-target pair, including zero-cost
  /// self-tuples for nodes in sources ∩ targets (a chain may pass through
  /// a fragment at a single shared node).
  Relation paths;
  /// Workload statistics (relational engines; Dijkstra fills iterations
  /// with the number of settled nodes as a comparable work proxy).
  TcStats stats;
  /// OK unless reading the (paged) shortcut relation failed; on failure
  /// `paths` is incomplete and the query using this result must fail too.
  Status status = Status::OK();
};

/// Runs one local query. If `complementary` is null the fragment is *not*
/// augmented — the ablation showing why footnote 3's precomputation is
/// needed for correctness.
LocalQueryResult RunLocalQuery(const Fragmentation& frag,
                               const ComplementaryInfo* complementary,
                               const LocalQuerySpec& spec,
                               LocalEngine engine = LocalEngine::kDijkstra);

/// The fragment as a standalone graph over the global node-id space,
/// augmented with the fragment's shortcut relation. Edge ids below
/// `*num_real_edges_out` (if non-null) are fragment edges, in
/// FragmentEdges order; ids at or above it are shortcut edges — route
/// reconstruction uses this split to know which hops must be expanded via
/// the complementary witnesses. Fails (instead of returning a partial
/// graph) when the shortcut relation is paged and its pages cannot be
/// read.
Result<Graph> BuildAugmentedFragment(const Fragmentation& frag,
                                     const ComplementaryInfo* complementary,
                                     FragmentId fragment,
                                     size_t* num_real_edges_out = nullptr);

}  // namespace tcf
