// Complementary information of the disconnection set approach (Sec. 2.1):
// "it is required to store in addition some complementary information about
// the identity of border cities and the properties of their connections...
// for the shortest path problem it is required to precompute the shortest
// path among any two cities on the border between two fragments.
// Complementary information about DS_ij is stored at both sites storing the
// fragments R_i and R_j."
//
// Concretely we precompute, for every fragment f, the *global* shortest
// distance between every ordered pair of border nodes of f, stored as a
// small shortcut relation at site f. Footnote 3 of the paper is why these
// are global: "the shortest path might include nodes outside the chain,
// however, their contribution is precomputed in the complementary
// information." Evaluating a fragment's subquery on the fragment *augmented
// with its shortcut relation* makes chain evaluation exact (tests verify
// against a whole-graph Dijkstra oracle).
#pragma once

#include <vector>

#include "fragment/fragmentation.h"
#include "relational/relation.h"

namespace tcf {

/// Precomputed shortcut relations, one per fragment.
struct ComplementaryInfo {
  /// shortcuts[f]: tuples (x, y, d*(x, y)) for border nodes x != y of
  /// fragment f with finite global shortest distance.
  std::vector<Relation> shortcuts;

  /// Witness routes for the shortcut tuples: the realizing global node
  /// sequence x..y, keyed by PairKey(x, y). Shared across fragments (the
  /// shortcut between two border nodes is the same everywhere). Used by
  /// route reconstruction to expand shortcut hops back into real edges
  /// ("the properties of their connections", Sec. 2.1).
  std::unordered_map<uint64_t, std::vector<NodeId>> witness;

  /// Total stored tuples — the paper's pre-processing cost that "may be
  /// amortized over many queries".
  size_t total_tuples = 0;
  /// Number of single-source searches performed to build the information.
  size_t searches = 0;

  const Relation& ForFragment(FragmentId f) const {
    TCF_CHECK(f < shortcuts.size());
    return shortcuts[f];
  }
};

/// Builds the complementary information with one whole-graph Dijkstra per
/// distinct border node. For pure reachability workloads the same structure
/// is used (a tuple's presence encodes reachability; its cost is the
/// distance witness).
ComplementaryInfo PrecomputeComplementary(const Fragmentation& frag);

/// One maintenance epoch's weight-level delta, classified by how it can
/// move global shortest distances:
///   - `relaxed`: edges inserted or re-weighted DOWN (new weight) — these
///     can only create shorter paths;
///   - `tightened`: ordered endpoint pairs whose edges were deleted or
///     re-weighted UP — these can only break paths that used them.
struct ComplementaryDelta {
  std::vector<Edge> relaxed;
  std::vector<std::pair<NodeId, NodeId>> tightened;
};

/// RefreshComplementary's result: the refreshed info plus the incremental
/// accounting (how much of the paper's pre-processing cost the epoch
/// actually paid versus reused).
struct ComplementaryRefresh {
  ComplementaryInfo info;
  size_t dirty_border_nodes = 0;   // whole-graph searches re-run
  size_t reused_border_nodes = 0;  // border nodes whose tuples carried over
  size_t dirty_fragments = 0;      // shortcut relations rebuilt
  size_t reused_fragments = 0;     // shortcut relations copied verbatim
  /// OK when the incremental path ran; set to the storage error that
  /// forced a full recompute when reading the old (paged) shortcut
  /// relations failed. The refreshed info is exact either way.
  Status fallback_cause = Status::OK();
};

/// Incrementally refreshes `old` for the post-epoch fragmentation `frag`,
/// re-running the whole-graph search of exactly the border nodes whose
/// shortcut tuples can have changed. A border node x is dirty iff
///   - its fragment's border-node set changed (its tuple *schema* moved),
///   - a stored witness route from x traverses a tightened edge (a path
///     that avoids every tightened edge keeps its old cost, so an
///     untouched witness proves x's distances cannot have grown), or
///   - some relaxed edge (u, v, w) improves a pair: two auxiliary searches
///     per relaxed edge give the exact new-graph distances d(·, u) and
///     d(v, ·), and d(x,u) + w + d(v,y) < old d(x,y) for a co-border y
///     (any genuinely shorter new path decomposes at its last modified
///     edge, so the probe cannot miss an improvement).
/// Fragments with no dirty border and an unchanged border set keep their
/// shortcut relation and witnesses verbatim. Exact — tests hold the
/// result to the full-recompute oracle. Requires `frag` and `old_frag` to
/// have the same fragment count with aligned ids (the caller falls back
/// to PrecomputeComplementary when compaction renumbered fragments).
ComplementaryRefresh RefreshComplementary(const Fragmentation& frag,
                                          const Fragmentation& old_frag,
                                          const ComplementaryInfo& old,
                                          const ComplementaryDelta& delta);

}  // namespace tcf
