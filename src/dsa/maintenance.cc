#include "dsa/maintenance.h"

#include <algorithm>
#include <utility>

#include "graph/builder.h"

namespace tcf {

namespace {

Graph BuildStagedGraph(const std::vector<Point>& coords, size_t num_nodes,
                       const std::vector<Edge>& edges) {
  GraphBuilder builder;
  if (!coords.empty()) {
    for (const Point& p : coords) builder.AddNode(p);
  } else {
    builder.EnsureNodes(num_nodes);
  }
  for (const Edge& e : edges) builder.AddEdge(e.src, e.dst, e.weight);
  return builder.Build();
}

/// The fragmentation-graph adjacency as a comparable value: the sorted
/// pair set of nonempty disconnection sets. If this changes between
/// epochs, chains not enumerable in the old fragmentation graph may exist,
/// so no cached plan is trustworthy.
std::vector<std::pair<FragmentId, FragmentId>> AdjacencyPairs(
    const Fragmentation& frag) {
  std::vector<std::pair<FragmentId, FragmentId>> pairs;
  pairs.reserve(frag.disconnection_sets().size());
  for (const DisconnectionSet& ds : frag.disconnection_sets()) {
    pairs.emplace_back(ds.frag_a, ds.frag_b);
  }
  return pairs;  // disconnection_sets() is sorted by (frag_a, frag_b)
}

}  // namespace

MaintainedDatabase::MaintainedDatabase(
    Graph graph, std::vector<FragmentId> fragment_of_edge,
    size_t num_fragments, DsaOptions options)
    : options_(options),
      edges_(graph.edges()),
      coords_(graph.coordinates()),
      num_nodes_(graph.NumNodes()),
      fragment_of_edge_(std::move(fragment_of_edge)),
      num_fragments_(num_fragments) {
  TCF_CHECK(fragment_of_edge_.size() == edges_.size());
  PublishInitial();
}

MaintainedDatabase MaintainedDatabase::FromFragmentation(
    const Fragmentation& frag, DsaOptions options) {
  GraphBuilder builder;
  const Graph& g = frag.graph();
  if (g.has_coordinates()) {
    for (const Point& p : g.coordinates()) builder.AddNode(p);
  } else {
    builder.EnsureNodes(g.NumNodes());
  }
  for (const Edge& e : g.edges()) builder.AddEdge(e.src, e.dst, e.weight);
  return MaintainedDatabase(builder.Build(), frag.fragment_of_edge(),
                            frag.NumFragments(), options);
}

MaintainedDatabase::MaintainedDatabase(DsaSnapshot snapshot,
                                       DsaOptions options)
    : options_(options),
      edges_(snapshot.graph->edges()),
      coords_(snapshot.graph->coordinates()),
      num_nodes_(snapshot.graph->NumNodes()),
      fragment_of_edge_(snapshot.frag->fragment_of_edge()),
      num_fragments_(snapshot.frag->NumFragments()),
      next_epoch_(snapshot.epoch + 1) {
  TCF_CHECK(snapshot.graph != nullptr && snapshot.frag != nullptr &&
            snapshot.db != nullptr);
  TCF_CHECK(fragment_of_edge_.size() == edges_.size());
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  snapshot_ = std::move(snapshot);
}

void MaintainedDatabase::PublishInitial() {
  auto graph = std::make_shared<const Graph>(
      BuildStagedGraph(coords_, num_nodes_, edges_));
  std::shared_ptr<const Fragmentation> frag(
      new Fragmentation(graph.get(), fragment_of_edge_, num_fragments_),
      [graph](const Fragmentation* p) { delete p; });
  // Compaction may renumber fragments; adopt the compacted assignment.
  fragment_of_edge_ = frag->fragment_of_edge();
  num_fragments_ = frag->NumFragments();
  std::shared_ptr<const DsaDatabase> db(
      new DsaDatabase(frag.get(), options_),
      [frag](const DsaDatabase* p) { delete p; });
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  snapshot_ = DsaSnapshot{0, std::move(graph), std::move(frag),
                          std::move(db)};
}

DsaSnapshot MaintainedDatabase::Snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return snapshot_;
}

uint64_t MaintainedDatabase::epoch() const {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return snapshot_.epoch;
}

FragmentId MaintainedDatabase::PickFragment(const Fragmentation& frag,
                                            NodeId src, NodeId dst) const {
  // Prefer a fragment already containing both endpoints; then the smallest
  // fragment containing one; then the smallest fragment overall.
  const auto& fs = frag.FragmentsOfNode(src);
  const auto& fd = frag.FragmentsOfNode(dst);
  for (FragmentId f : fs) {
    if (std::find(fd.begin(), fd.end(), f) != fd.end()) return f;
  }
  auto smallest_of = [&](const std::vector<FragmentId>& candidates) {
    FragmentId best = Fragmentation::kInvalidFragment;
    for (FragmentId f : candidates) {
      if (best == Fragmentation::kInvalidFragment ||
          frag.FragmentEdges(f).size() < frag.FragmentEdges(best).size()) {
        best = f;
      }
    }
    return best;
  };
  std::vector<FragmentId> either(fs.begin(), fs.end());
  either.insert(either.end(), fd.begin(), fd.end());
  FragmentId best = smallest_of(either);
  if (best != Fragmentation::kInvalidFragment) return best;
  std::vector<FragmentId> all(frag.NumFragments());
  for (FragmentId f = 0; f < frag.NumFragments(); ++f) all[f] = f;
  return smallest_of(all);
}

EpochStats MaintainedDatabase::ApplyEpoch(
    const std::vector<EdgeUpdate>& updates) {
  std::lock_guard<std::mutex> update_lock(update_mutex_);
  const DsaSnapshot old_snap = Snapshot();
  const Fragmentation& old_frag = *old_snap.frag;

  EpochStats stats;
  stats.epoch = old_snap.epoch;

  // Stage every op, classifying its weight-level effect for the
  // incremental complementary refresh. Structural classification (the
  // legacy meter) is against PRE-epoch node sets, matching the single-op
  // semantics the meters always had.
  ComplementaryDelta delta;
  bool structural = false;
  for (const EdgeUpdate& u : updates) {
    switch (u.kind) {
      case EdgeUpdate::Kind::kInsert: {
        TCF_CHECK(u.src < num_nodes_ && u.dst < num_nodes_);
        const FragmentId f =
            u.target.value_or(PickFragment(old_frag, u.src, u.dst));
        TCF_CHECK(f < num_fragments_);
        const auto& nodes = old_frag.FragmentNodes(f);
        structural =
            structural ||
            !std::binary_search(nodes.begin(), nodes.end(), u.src) ||
            !std::binary_search(nodes.begin(), nodes.end(), u.dst);
        edges_.push_back(Edge{u.src, u.dst, u.weight});
        fragment_of_edge_.push_back(f);
        delta.relaxed.push_back(Edge{u.src, u.dst, u.weight});
        ++stats.edges_inserted;
        ++stats.ops_applied;
        break;
      }
      case EdgeUpdate::Kind::kDelete: {
        size_t removed = 0;
        size_t out = 0;
        for (size_t e = 0; e < edges_.size(); ++e) {
          if (edges_[e].src == u.src && edges_[e].dst == u.dst) {
            ++removed;
            continue;
          }
          edges_[out] = edges_[e];
          fragment_of_edge_[out] = fragment_of_edge_[e];
          ++out;
        }
        if (removed == 0) break;
        edges_.resize(out);
        fragment_of_edge_.resize(out);
        delta.tightened.emplace_back(u.src, u.dst);
        stats.edges_removed += removed;
        ++stats.ops_applied;
        // A deletion can shrink a fragment's node set (and thus the
        // disconnection sets), so it is always a structural event on the
        // legacy meter; the exact dirty sets below may still find nothing
        // changed.
        structural = true;
        break;
      }
      case EdgeUpdate::Kind::kReweight: {
        bool decreased = false;
        bool increased = false;
        size_t changed = 0;
        for (Edge& e : edges_) {
          if (e.src != u.src || e.dst != u.dst || e.weight == u.weight) {
            continue;
          }
          (u.weight < e.weight ? decreased : increased) = true;
          e.weight = u.weight;
          ++changed;
        }
        if (changed == 0) break;
        if (decreased) {
          delta.relaxed.push_back(Edge{u.src, u.dst, u.weight});
        }
        if (increased) delta.tightened.emplace_back(u.src, u.dst);
        stats.edges_reweighted += changed;
        ++stats.ops_applied;
        break;
      }
    }
  }
  if (stats.ops_applied == 0) return stats;  // nothing to publish

  const uint64_t epoch_id = next_epoch_++;
  stats.epoch = epoch_id;
  stats.published = true;
  stats.structural = structural;

  auto graph = std::make_shared<const Graph>(
      BuildStagedGraph(coords_, num_nodes_, edges_));
  std::shared_ptr<const Fragmentation> frag(
      new Fragmentation(graph.get(), fragment_of_edge_, num_fragments_),
      [graph](const Fragmentation* p) { delete p; });
  fragment_of_edge_ = frag->fragment_of_edge();
  const size_t new_num_fragments = frag->NumFragments();
  // Compaction preserves the relative order of nonempty fragments, so an
  // unchanged count means unchanged ids; a changed count renumbers and
  // every identity-keyed carry-over below is off the table.
  stats.renumbered = new_num_fragments != num_fragments_;
  num_fragments_ = new_num_fragments;

  // Exact post-hoc dirty sets (id-aligned epochs only).
  std::vector<bool> dirty_fragment;
  bool adjacency_changed = true;
  if (!stats.renumbered) {
    dirty_fragment.assign(num_fragments_, false);
    for (FragmentId f = 0; f < num_fragments_; ++f) {
      dirty_fragment[f] = frag->FragmentNodes(f) != old_frag.FragmentNodes(f);
    }
    adjacency_changed = AdjacencyPairs(*frag) != AdjacencyPairs(old_frag);
  }
  stats.caches_reset = stats.renumbered || adjacency_changed;

  EpochCarryover carry;
  carry.epoch = epoch_id;
  carry.pool = old_snap.db->SharePool();

  if (options_.use_complementary) {
    if (stats.renumbered) {
      carry.complementary = PrecomputeComplementary(*frag);
      stats.complementary_searches = carry.complementary.searches;
      stats.dirty_border_nodes = carry.complementary.searches;
      stats.dirty_fragments = num_fragments_;
    } else {
      ComplementaryRefresh refresh = RefreshComplementary(
          *frag, old_frag, old_snap.db->complementary(), delta);
      stats.complementary_searches = refresh.info.searches;
      stats.dirty_border_nodes = refresh.dirty_border_nodes;
      stats.reused_border_nodes = refresh.reused_border_nodes;
      stats.dirty_fragments = refresh.dirty_fragments;
      stats.reused_fragments = refresh.reused_fragments;
      carry.complementary = std::move(refresh.info);
    }
  }

  if (!stats.caches_reset && old_snap.db->plan_cache() != nullptr) {
    std::vector<bool> endpoint_changed(num_nodes_, false);
    for (NodeId v = 0; v < num_nodes_; ++v) {
      endpoint_changed[v] =
          frag->FragmentsOfNode(v) != old_frag.FragmentsOfNode(v);
    }
    ChainPlanCache::EpochCarry plan_carry =
        old_snap.db->plan_cache()->NextEpoch(dirty_fragment, endpoint_changed,
                                             epoch_id);
    carry.plan_cache = std::move(plan_carry.cache);
    stats.skeletons_kept = plan_carry.skeletons_kept;
    stats.skeletons_dropped = plan_carry.skeletons_dropped;
    stats.plans_kept = plan_carry.plans_kept;
    stats.plans_dropped = plan_carry.plans_dropped;
  }

  std::shared_ptr<const DsaDatabase> db(
      new DsaDatabase(frag.get(), options_, std::move(carry)),
      [frag](const DsaDatabase* p) { delete p; });

  refreshes_.fetch_add(1, std::memory_order_relaxed);
  if (structural) rebuilds_.fetch_add(1, std::memory_order_relaxed);

  {
    std::lock_guard<std::mutex> lock(snapshot_mutex_);
    snapshot_ = DsaSnapshot{epoch_id, std::move(graph), std::move(frag),
                            std::move(db)};
  }
  return stats;
}

void MaintainedDatabase::InsertEdge(NodeId src, NodeId dst, Weight weight,
                                    std::optional<FragmentId> target) {
  ApplyEpoch({EdgeUpdate::Insert(src, dst, weight, target)});
}

size_t MaintainedDatabase::DeleteEdge(NodeId src, NodeId dst) {
  return ApplyEpoch({EdgeUpdate::Delete(src, dst)}).edges_removed;
}

size_t MaintainedDatabase::ReweightEdge(NodeId src, NodeId dst,
                                        Weight new_weight) {
  return ApplyEpoch({EdgeUpdate::Reweight(src, dst, new_weight)})
      .edges_reweighted;
}

}  // namespace tcf
