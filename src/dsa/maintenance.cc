#include "dsa/maintenance.h"

#include <algorithm>

#include "graph/builder.h"

namespace tcf {

namespace {

Graph RebuildGraph(const Graph& old, const std::vector<Edge>& edges) {
  GraphBuilder builder;
  if (old.has_coordinates()) {
    for (const Point& p : old.coordinates()) builder.AddNode(p);
  } else {
    builder.EnsureNodes(old.NumNodes());
  }
  for (const Edge& e : edges) builder.AddEdge(e.src, e.dst, e.weight);
  return builder.Build();
}

}  // namespace

MaintainedDatabase::MaintainedDatabase(
    Graph graph, std::vector<FragmentId> fragment_of_edge,
    size_t num_fragments, DsaOptions options)
    : graph_(std::move(graph)),
      fragment_of_edge_(std::move(fragment_of_edge)),
      num_fragments_(num_fragments),
      options_(options) {
  TCF_CHECK(fragment_of_edge_.size() == graph_.NumEdges());
  edges_dirty_ = true;
  Rebuild(/*structure_changed=*/true);
  // Construction is not an update; start the meters at zero.
  refreshes_ = 0;
  rebuilds_ = 0;
}

MaintainedDatabase MaintainedDatabase::FromFragmentation(
    const Fragmentation& frag, DsaOptions options) {
  GraphBuilder builder;
  const Graph& g = frag.graph();
  if (g.has_coordinates()) {
    for (const Point& p : g.coordinates()) builder.AddNode(p);
  } else {
    builder.EnsureNodes(g.NumNodes());
  }
  for (const Edge& e : g.edges()) builder.AddEdge(e.src, e.dst, e.weight);
  return MaintainedDatabase(builder.Build(), frag.fragment_of_edge(),
                            frag.NumFragments(), options);
}

void MaintainedDatabase::Rebuild(bool structure_changed) {
  // Any edge-set change invalidates the Fragmentation's derived edge lists,
  // so the object is rebuilt whenever it might be stale; the *meter* only
  // counts updates that changed fragment node sets (what a distributed
  // deployment would have to re-negotiate between sites). Pure re-weights
  // keep the old Fragmentation (same edges, same ids).
  if (edges_dirty_ || frag_ == nullptr) {
    frag_ = std::make_unique<Fragmentation>(&graph_, fragment_of_edge_,
                                            num_fragments_);
    // Compaction may renumber fragments; adopt the compacted assignment.
    fragment_of_edge_ = frag_->fragment_of_edge();
    num_fragments_ = frag_->NumFragments();
    edges_dirty_ = false;
  }
  if (structure_changed) ++rebuilds_;
  // DsaDatabase construction recomputes the complementary information.
  db_ = std::make_unique<DsaDatabase>(frag_.get(), options_);
  ++refreshes_;
}

FragmentId MaintainedDatabase::PickFragment(NodeId src, NodeId dst) const {
  // Prefer a fragment already containing both endpoints; then the smallest
  // fragment containing one; then the smallest fragment overall.
  const auto& fs = frag_->FragmentsOfNode(src);
  const auto& fd = frag_->FragmentsOfNode(dst);
  for (FragmentId f : fs) {
    if (std::find(fd.begin(), fd.end(), f) != fd.end()) return f;
  }
  auto smallest_of = [&](const std::vector<FragmentId>& candidates) {
    FragmentId best = Fragmentation::kInvalidFragment;
    for (FragmentId f : candidates) {
      if (best == Fragmentation::kInvalidFragment ||
          frag_->FragmentEdges(f).size() < frag_->FragmentEdges(best).size()) {
        best = f;
      }
    }
    return best;
  };
  std::vector<FragmentId> either(fs.begin(), fs.end());
  either.insert(either.end(), fd.begin(), fd.end());
  FragmentId best = smallest_of(either);
  if (best != Fragmentation::kInvalidFragment) return best;
  std::vector<FragmentId> all(frag_->NumFragments());
  for (FragmentId f = 0; f < frag_->NumFragments(); ++f) all[f] = f;
  return smallest_of(all);
}

void MaintainedDatabase::InsertEdge(NodeId src, NodeId dst, Weight weight,
                                    std::optional<FragmentId> target) {
  TCF_CHECK(src < graph_.NumNodes() && dst < graph_.NumNodes());
  const FragmentId f = target.value_or(PickFragment(src, dst));
  TCF_CHECK(f < num_fragments_);

  // Structure changes iff an endpoint is new to the chosen fragment.
  const auto& nodes = frag_->FragmentNodes(f);
  const bool structure_changed =
      !std::binary_search(nodes.begin(), nodes.end(), src) ||
      !std::binary_search(nodes.begin(), nodes.end(), dst);

  std::vector<Edge> edges = graph_.edges();
  edges.push_back(Edge{src, dst, weight});
  fragment_of_edge_.push_back(f);
  graph_ = RebuildGraph(graph_, edges);
  edges_dirty_ = true;
  Rebuild(structure_changed);
}

size_t MaintainedDatabase::DeleteEdge(NodeId src, NodeId dst) {
  std::vector<Edge> kept;
  std::vector<FragmentId> kept_owner;
  size_t removed = 0;
  for (EdgeId e = 0; e < graph_.NumEdges(); ++e) {
    const Edge& edge = graph_.edge(e);
    if (edge.src == src && edge.dst == dst) {
      ++removed;
      continue;
    }
    kept.push_back(edge);
    kept_owner.push_back(fragment_of_edge_[e]);
  }
  if (removed == 0) return 0;
  graph_ = RebuildGraph(graph_, kept);
  fragment_of_edge_ = std::move(kept_owner);
  edges_dirty_ = true;
  // A deletion can shrink a fragment's node set (and thus the
  // disconnection sets), so it is always a structural event.
  Rebuild(/*structure_changed=*/true);
  return removed;
}

size_t MaintainedDatabase::ReweightEdge(NodeId src, NodeId dst,
                                        Weight new_weight) {
  std::vector<Edge> edges = graph_.edges();
  size_t changed = 0;
  for (Edge& e : edges) {
    if (e.src == src && e.dst == dst && e.weight != new_weight) {
      e.weight = new_weight;
      ++changed;
    }
  }
  if (changed == 0) return 0;
  graph_ = RebuildGraph(graph_, edges);
  Rebuild(/*structure_changed=*/false);
  return changed;
}

}  // namespace tcf
