#include "dsa/workload.h"

#include <deque>

namespace tcf {

const char* WorkloadMixName(WorkloadMix mix) {
  switch (mix) {
    case WorkloadMix::kUniform: return "uniform";
    case WorkloadMix::kHotPair: return "hot-pair";
    case WorkloadMix::kWithinFragment: return "within-fragment";
    case WorkloadMix::kCrossChain: return "cross-chain";
  }
  return "?";
}

const char* ArrivalProcessName(ArrivalProcess process) {
  switch (process) {
    case ArrivalProcess::kUniform: return "uniform";
    case ArrivalProcess::kBursty: return "bursty";
  }
  return "?";
}

namespace {

NodeId UniformNode(const Graph& g, Rng* rng) {
  return static_cast<NodeId>(rng->NextBounded(g.NumNodes()));
}

NodeId NodeOfFragment(const Fragmentation& frag, FragmentId f, Rng* rng) {
  const std::vector<NodeId>& nodes = frag.FragmentNodes(f);
  return nodes[rng->NextBounded(nodes.size())];
}

/// Hop distances from `from` in the fragmentation graph; kInvalid for
/// unreachable fragments.
std::vector<size_t> FragmentHops(const Fragmentation& frag, FragmentId from) {
  constexpr size_t kUnreached = static_cast<size_t>(-1);
  std::vector<size_t> hops(frag.NumFragments(), kUnreached);
  hops[from] = 0;
  std::deque<FragmentId> queue = {from};
  while (!queue.empty()) {
    const FragmentId f = queue.front();
    queue.pop_front();
    for (FragmentId next : frag.FragmentNeighbors(f)) {
      if (hops[next] != kUnreached) continue;
      hops[next] = hops[f] + 1;
      queue.push_back(next);
    }
  }
  return hops;
}

}  // namespace

std::vector<Query> GenerateWorkload(const Fragmentation& frag,
                                    const WorkloadSpec& spec, Rng* rng) {
  TCF_CHECK(rng != nullptr);
  const Graph& g = frag.graph();
  TCF_CHECK(g.NumNodes() > 0);

  std::vector<Query> queries;
  queries.reserve(spec.num_queries);
  auto push = [&](NodeId from, NodeId to) {
    queries.push_back(Query{from, to, spec.kind});
  };

  switch (spec.mix) {
    case WorkloadMix::kUniform: {
      for (size_t i = 0; i < spec.num_queries; ++i) {
        push(UniformNode(g, rng), UniformNode(g, rng));
      }
      break;
    }

    case WorkloadMix::kHotPair: {
      const size_t num_hot = std::max<size_t>(1, spec.num_hot_pairs);
      std::vector<std::pair<NodeId, NodeId>> hot;
      hot.reserve(num_hot);
      for (size_t i = 0; i < num_hot; ++i) {
        hot.emplace_back(UniformNode(g, rng), UniformNode(g, rng));
      }
      for (size_t i = 0; i < spec.num_queries; ++i) {
        if (rng->NextBool(spec.hot_fraction)) {
          const auto& [from, to] = hot[rng->NextBounded(hot.size())];
          if (spec.hot_reverse_fraction > 0.0 &&
              rng->NextBool(spec.hot_reverse_fraction)) {
            push(to, from);
          } else {
            push(from, to);
          }
        } else {
          push(UniformNode(g, rng), UniformNode(g, rng));
        }
      }
      break;
    }

    case WorkloadMix::kWithinFragment: {
      if (frag.NumFragments() == 0) {
        for (size_t i = 0; i < spec.num_queries; ++i) {
          push(UniformNode(g, rng), UniformNode(g, rng));
        }
        break;
      }
      for (size_t i = 0; i < spec.num_queries; ++i) {
        const FragmentId f =
            static_cast<FragmentId>(rng->NextBounded(frag.NumFragments()));
        push(NodeOfFragment(frag, f, rng), NodeOfFragment(frag, f, rng));
      }
      break;
    }

    case WorkloadMix::kCrossChain: {
      if (frag.NumFragments() < 2) {
        for (size_t i = 0; i < spec.num_queries; ++i) {
          push(UniformNode(g, rng), UniformNode(g, rng));
        }
        break;
      }
      // Per source fragment, the fragments at maximal hop distance in the
      // fragmentation graph — the connecting chain is then as long as the
      // fragmentation allows. One BFS per fragment, reused by all queries.
      std::vector<std::vector<FragmentId>> farthest_of(frag.NumFragments());
      for (FragmentId a = 0; a < frag.NumFragments(); ++a) {
        const std::vector<size_t> hops = FragmentHops(frag, a);
        size_t max_hops = 0;
        for (FragmentId f = 0; f < frag.NumFragments(); ++f) {
          if (hops[f] != static_cast<size_t>(-1)) {
            max_hops = std::max(max_hops, hops[f]);
          }
        }
        for (FragmentId f = 0; f < frag.NumFragments(); ++f) {
          if (hops[f] == max_hops && f != a) farthest_of[a].push_back(f);
        }
      }
      for (size_t i = 0; i < spec.num_queries; ++i) {
        const FragmentId a =
            static_cast<FragmentId>(rng->NextBounded(frag.NumFragments()));
        const std::vector<FragmentId>& farthest = farthest_of[a];
        const FragmentId b =
            farthest.empty() ? a
                             : farthest[rng->NextBounded(farthest.size())];
        push(NodeOfFragment(frag, a, rng), NodeOfFragment(frag, b, rng));
      }
      break;
    }
  }
  return queries;
}

std::vector<MixedOp> GenerateMixedWorkload(const Fragmentation& frag,
                                           const WorkloadSpec& spec,
                                           Rng* rng) {
  TCF_CHECK(rng != nullptr);
  TCF_CHECK(spec.write_fraction >= 0.0 && spec.write_fraction <= 1.0);
  const Graph& g = frag.graph();

  // Queries come from a forked stream so their draws are identical to a
  // pure GenerateWorkload run with that fork, independent of how many
  // update draws interleave; coin flips and update parameters come from
  // the primary stream. Deterministic either way.
  Rng query_rng = rng->Fork();
  const std::vector<Query> queries = GenerateWorkload(frag, spec, &query_rng);
  const std::vector<Edge>& initial_edges = g.edges();

  auto make_update = [&]() {
    // Uniform over the update kinds the initial edge list supports.
    const uint64_t kind = initial_edges.empty() ? 1 : rng->NextBounded(3);
    switch (kind) {
      case 0: {  // reweight a random initial edge to a fresh weight
        const Edge& e = initial_edges[rng->NextBounded(initial_edges.size())];
        return EdgeUpdate::Reweight(e.src, e.dst,
                                    e.weight * (0.5 + rng->NextDouble()));
      }
      case 1: {  // insert between random nodes
        const NodeId src = UniformNode(g, rng);
        const NodeId dst = UniformNode(g, rng);
        return EdgeUpdate::Insert(src, dst, 1.0 + 9.0 * rng->NextDouble());
      }
      default: {  // delete a random initial edge (no-op if already gone)
        const Edge& e = initial_edges[rng->NextBounded(initial_edges.size())];
        return EdgeUpdate::Delete(e.src, e.dst);
      }
    }
  };

  std::vector<MixedOp> ops;
  ops.reserve(spec.num_queries);
  for (size_t i = 0; i < spec.num_queries; ++i) {
    MixedOp op;
    op.is_update = rng->NextBool(spec.write_fraction);
    if (op.is_update) {
      op.update = make_update();
    } else {
      op.query = queries[i];
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

std::vector<double> GenerateArrivalTimes(const WorkloadSpec& spec, Rng* rng) {
  TCF_CHECK(rng != nullptr);
  TCF_CHECK(spec.arrival_rate_qps > 0.0);
  const double mean_gap = 1.0 / spec.arrival_rate_qps;
  std::vector<double> arrivals;
  arrivals.reserve(spec.num_queries);

  switch (spec.arrivals) {
    case ArrivalProcess::kUniform: {
      // Evenly spaced with ±50% jitter: gaps average mean_gap, never
      // negative, so the offered rate is the mean rate throughout.
      double t = 0.0;
      for (size_t i = 0; i < spec.num_queries; ++i) {
        arrivals.push_back(t);
        t += mean_gap * (0.5 + rng->NextDouble());
      }
      break;
    }

    case ArrivalProcess::kBursty: {
      // On/off: a burst of L back-to-back queries at burst_speedup times
      // the mean rate, then an idle gap sized so the burst's span totals
      // L * mean_gap — the mean rate is preserved per burst.
      TCF_CHECK(spec.burst_speedup >= 1.0);
      const size_t mean_burst = std::max<size_t>(1, spec.burst_size);
      const double intra_gap = mean_gap / spec.burst_speedup;
      double t = 0.0;
      while (arrivals.size() < spec.num_queries) {
        // Burst length in [mean/2, 3*mean/2], clipped to what remains.
        const size_t len = std::min(
            spec.num_queries - arrivals.size(),
            mean_burst / 2 + 1 + rng->NextBounded(mean_burst));
        for (size_t i = 0; i < len; ++i) {
          arrivals.push_back(t);
          t += intra_gap;
        }
        t += static_cast<double>(len) * (mean_gap - intra_gap);
      }
      break;
    }
  }
  return arrivals;
}

}  // namespace tcf
