// Parallel Hierarchical Evaluation (Sec. 5 / reference [12]): when the
// fragmentation graph is complex, enumerating all chains of fragments
// becomes expensive. PHE introduces "a 'high-speed network'; this is a
// separate fragment that mandatorily has to be traversed when going to a
// non-adjacent fragment."
//
// We synthesize the high-speed fragment from the complementary
// information: a backbone graph over all border nodes whose edges are the
// per-fragment shortcut relations. Any query then needs at most three
// subqueries — source fragment, backbone, destination fragment — no matter
// how tangled the fragmentation graph is; tests verify PHE answers match
// the chain-based DsaDatabase and the whole-graph oracle.
#pragma once

#include <memory>

#include "dsa/query_api.h"

namespace tcf {

struct PheOptions {
  LocalEngine engine = LocalEngine::kDijkstra;
  size_t num_threads = 3;  // the three subqueries
};

/// Hierarchical evaluator over a fragmentation. Precomputes the backbone
/// once; `frag` must outlive the evaluator.
class PheDatabase {
 public:
  explicit PheDatabase(const Fragmentation* frag, PheOptions options = {});

  /// Shortest-path cost between two nodes; kInfinity when unconnected.
  QueryAnswer ShortestPath(NodeId from, NodeId to,
                           ExecutionReport* report = nullptr) const;

  /// The synthesized high-speed network (exposed for tests/benches).
  const Graph& backbone() const { return backbone_; }

 private:
  const Fragmentation* frag_;
  PheOptions options_;
  ComplementaryInfo complementary_;
  Graph backbone_;
  mutable std::unique_ptr<ThreadPool> pool_;
};

}  // namespace tcf
