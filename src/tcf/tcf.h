// Umbrella header for the tcfrag library — data fragmentation for parallel
// transitive closure strategies (Houtsma, Apers & Schipper, ICDE 1993).
//
// Typical usage (see examples/quickstart.cc):
//
//   tcf::Rng rng(7);
//   tcf::TransportationGraphOptions gen;
//   auto t = tcf::GenerateTransportationGraph(gen, &rng);
//
//   tcf::BondEnergyOptions bea;
//   tcf::Fragmentation frag = tcf::BondEnergyFragmentation(t.graph, bea);
//
//   tcf::DsaDatabase db(&frag);
//   auto answer = db.ShortestPath(0, 99);
#pragma once

#include "dsa/batch.h"           // IWYU pragma: export
#include "dsa/bottleneck.h"      // IWYU pragma: export
#include "dsa/chains.h"          // IWYU pragma: export
#include "dsa/complementary.h"   // IWYU pragma: export
#include "dsa/executor.h"        // IWYU pragma: export
#include "dsa/local_query.h"     // IWYU pragma: export
#include "dsa/maintenance.h"     // IWYU pragma: export
#include "dsa/phe.h"             // IWYU pragma: export
#include "dsa/query_api.h"       // IWYU pragma: export
#include "dsa/sites.h"           // IWYU pragma: export
#include "fragment/bond_energy.h"       // IWYU pragma: export
#include "fragment/center_based.h"      // IWYU pragma: export
#include "fragment/fragmentation.h"     // IWYU pragma: export
#include "fragment/fragmentation_io.h"  // IWYU pragma: export
#include "fragment/kernighan_lin.h"     // IWYU pragma: export
#include "fragment/linear.h"            // IWYU pragma: export
#include "fragment/metrics.h"           // IWYU pragma: export
#include "fragment/node_partition.h"    // IWYU pragma: export
#include "fragment/random_partition.h"  // IWYU pragma: export
#include "fragment/relevant_nodes.h"    // IWYU pragma: export
#include "graph/algorithms.h"    // IWYU pragma: export
#include "graph/builder.h"       // IWYU pragma: export
#include "graph/generator.h"     // IWYU pragma: export
#include "graph/graph.h"         // IWYU pragma: export
#include "graph/io.h"            // IWYU pragma: export
#include "graph/min_cut.h"       // IWYU pragma: export
#include "graph/status_score.h"  // IWYU pragma: export
#include "relational/operators.h"           // IWYU pragma: export
#include "relational/relation.h"            // IWYU pragma: export
#include "relational/transitive_closure.h"  // IWYU pragma: export
#include "relational/warshall.h"            // IWYU pragma: export
#include "storage/buffer_pool.h"  // IWYU pragma: export
#include "storage/crc32c.h"       // IWYU pragma: export
#include "storage/database_io.h"  // IWYU pragma: export
#include "storage/page.h"         // IWYU pragma: export
#include "storage/page_store.h"   // IWYU pragma: export
#include "util/logging.h"      // IWYU pragma: export
#include "util/lru_cache.h"    // IWYU pragma: export
#include "util/rng.h"          // IWYU pragma: export
#include "util/stats.h"        // IWYU pragma: export
#include "util/status.h"       // IWYU pragma: export
#include "util/channel.h"      // IWYU pragma: export
#include "util/thread_pool.h"  // IWYU pragma: export
#include "util/timer.h"        // IWYU pragma: export
