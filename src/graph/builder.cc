#include "graph/builder.h"

#include <algorithm>
#include <utility>

namespace tcf {

NodeId GraphBuilder::AddNode(Point coordinate) {
  NodeId id = static_cast<NodeId>(num_nodes_);
  coordinates_.resize(num_nodes_);  // pad any implicitly created nodes
  coordinates_.push_back(coordinate);
  ++num_nodes_;
  return id;
}

void GraphBuilder::AddEdge(NodeId src, NodeId dst, Weight weight) {
  TCF_CHECK(src != kInvalidNode && dst != kInvalidNode);
  num_nodes_ = std::max(num_nodes_, static_cast<size_t>(
                                        std::max(src, dst)) + 1);
  edges_.push_back(Edge{src, dst, weight});
}

void GraphBuilder::AddSymmetricEdge(NodeId src, NodeId dst, Weight weight) {
  AddEdge(src, dst, weight);
  AddEdge(dst, src, weight);
}

void GraphBuilder::EnsureNodes(size_t n) {
  num_nodes_ = std::max(num_nodes_, n);
}

void GraphBuilder::DeduplicateEdges() {
  std::sort(edges_.begin(), edges_.end(), [](const Edge& a, const Edge& b) {
    if (a.src != b.src) return a.src < b.src;
    if (a.dst != b.dst) return a.dst < b.dst;
    return a.weight < b.weight;
  });
  edges_.erase(std::unique(edges_.begin(), edges_.end(),
                           [](const Edge& a, const Edge& b) {
                             return a.src == b.src && a.dst == b.dst;
                           }),
               edges_.end());
}

Graph GraphBuilder::Build() {
  Graph g;
  g.num_nodes_ = num_nodes_;
  g.edges_ = std::move(edges_);
  if (coordinates_.size() == num_nodes_) {
    g.coordinates_ = std::move(coordinates_);
  }
  edges_.clear();
  coordinates_.clear();
  num_nodes_ = 0;

  const size_t n = g.num_nodes_;
  const size_t m = g.edges_.size();

  // Out-CSR via counting sort on src.
  g.out_offsets_.assign(n + 1, 0);
  for (const Edge& e : g.edges_) ++g.out_offsets_[e.src + 1];
  for (size_t i = 0; i < n; ++i) g.out_offsets_[i + 1] += g.out_offsets_[i];
  g.out_adj_.resize(m);
  {
    std::vector<size_t> cursor(g.out_offsets_.begin(),
                               g.out_offsets_.end() - 1);
    for (EdgeId id = 0; id < m; ++id) {
      const Edge& e = g.edges_[id];
      g.out_adj_[cursor[e.src]++] = OutEdge{e.dst, e.weight, id};
    }
  }

  // In-CSR via counting sort on dst.
  g.in_offsets_.assign(n + 1, 0);
  for (const Edge& e : g.edges_) ++g.in_offsets_[e.dst + 1];
  for (size_t i = 0; i < n; ++i) g.in_offsets_[i + 1] += g.in_offsets_[i];
  g.in_adj_.resize(m);
  {
    std::vector<size_t> cursor(g.in_offsets_.begin(),
                               g.in_offsets_.end() - 1);
    for (EdgeId id = 0; id < m; ++id) {
      const Edge& e = g.edges_[id];
      g.in_adj_[cursor[e.dst]++] = InEdge{e.src, e.weight, id};
    }
  }

  // Undirected deduplicated neighbor lists.
  g.und_offsets_.assign(n + 1, 0);
  g.und_adj_.clear();
  std::vector<NodeId> scratch;
  for (NodeId v = 0; v < n; ++v) {
    scratch.clear();
    for (const OutEdge& oe : g.OutEdges(v)) {
      if (oe.dst != v) scratch.push_back(oe.dst);
    }
    for (const InEdge& ie : g.InEdges(v)) {
      if (ie.src != v) scratch.push_back(ie.src);
    }
    std::sort(scratch.begin(), scratch.end());
    scratch.erase(std::unique(scratch.begin(), scratch.end()), scratch.end());
    g.und_adj_.insert(g.und_adj_.end(), scratch.begin(), scratch.end());
    g.und_offsets_[v + 1] = g.und_adj_.size();
  }
  return g;
}

}  // namespace tcf
