// Classic graph algorithms used as oracles (tests verify the relational
// engine and the disconnection set approach against them) and as building
// blocks of the fragmentation algorithms (BFS layers for the status score,
// diameter for the workload model of Sec. 2.2).
#pragma once

#include <vector>

#include "graph/graph.h"

namespace tcf {

/// Edge-direction handling for traversals.
enum class Direction {
  kForward,    // follow edges src -> dst
  kBackward,   // follow edges dst -> src
  kUndirected  // follow both
};

/// Hop distances from `source` (-1 for unreachable nodes).
std::vector<int> BfsHops(const Graph& g, NodeId source,
                         Direction dir = Direction::kForward);

/// Sentinel for "no edge".
inline constexpr EdgeId kInvalidEdge = std::numeric_limits<EdgeId>::max();

/// Shortest-path result from a single source.
struct ShortestPaths {
  std::vector<Weight> distance;     // kInfinity for unreachable
  std::vector<NodeId> parent;       // kInvalidNode for source/unreachable
  std::vector<EdgeId> parent_edge;  // edge taken into each node

  /// Reconstruct the node sequence source..target; empty if unreachable.
  std::vector<NodeId> PathTo(NodeId target) const;
  /// The edge ids of PathTo, in order (one fewer than the nodes).
  std::vector<EdgeId> EdgesTo(NodeId target) const;
};

/// Dijkstra from `source`. All edge weights must be >= 0 (checked).
ShortestPaths Dijkstra(const Graph& g, NodeId source,
                       Direction dir = Direction::kForward);

/// All-pairs shortest path distances by Floyd–Warshall. O(n^3); intended
/// for tests and the small complementary-information relations only.
std::vector<std::vector<Weight>> FloydWarshall(const Graph& g);

/// Widest-path (bottleneck) result from a single source: capacity[v] is
/// the maximum over paths of the minimum edge weight along the path
/// ("what is the largest shipment that can travel from A to B?").
/// capacity[source] = kInfinity; unreachable nodes have capacity 0.
struct WidestPaths {
  std::vector<Weight> capacity;
  std::vector<NodeId> parent;
};

/// Max-min Dijkstra over forward edges. Edge weights must be >= 0.
WidestPaths WidestPathsFrom(const Graph& g, NodeId source);

/// Weakly connected component id per node, ids dense from 0.
struct Components {
  std::vector<int> component;
  int count = 0;
};
Components WeaklyConnectedComponents(const Graph& g);

/// Eccentricity (max finite hop distance) of `node`, ignoring unreachable
/// nodes; -1 if the node reaches nothing.
int Eccentricity(const Graph& g, NodeId node,
                 Direction dir = Direction::kUndirected);

/// Hop diameter: max eccentricity over all nodes (per component; unreachable
/// pairs are ignored). The paper uses the diameter as the driver of the
/// number of transitive-closure iterations.
int HopDiameter(const Graph& g, Direction dir = Direction::kUndirected);

/// True if there is a directed path from `from` to `to`.
bool Reachable(const Graph& g, NodeId from, NodeId to);

}  // namespace tcf
