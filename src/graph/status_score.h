// The center-selection weight function of Sec. 3.1, a variation of Hoede's
// status score [9]:
//
//   score(i) = grade(i) + a * sum_{j at 1 edge} grade(j)
//                       + a^2 * sum_{j at 2 edges} grade(j)
//                       + a^3 * sum_{j at 3 edges} grade(j)
//
// with a < 1. Nodes with high scores are "gravity points" of the graph,
// "very much like spiders in a web".
#pragma once

#include <vector>

#include "graph/graph.h"

namespace tcf {

struct StatusScoreOptions {
  /// Attenuation factor a (< 1).
  double alpha = 0.5;
  /// Horizon: how many BFS rings contribute (the paper uses 3).
  int depth = 3;
};

/// Status score per node. Distances are undirected hop counts; grade is the
/// number of adjacent edge tuples (paper's grade(i)).
std::vector<double> StatusScores(const Graph& g,
                                 const StatusScoreOptions& options = {});

/// Indices of the `count` nodes with the highest status score
/// (ties broken by node id for determinism), best first.
std::vector<NodeId> TopStatusNodes(const Graph& g, size_t count,
                                   const StatusScoreOptions& options = {});

}  // namespace tcf
