#include "graph/graph.h"

#include <algorithm>

namespace tcf {

bool Graph::IsSymmetric() const {
  for (const Edge& e : edges_) {
    auto out = OutEdges(e.dst);
    bool found = std::any_of(out.begin(), out.end(), [&](const OutEdge& oe) {
      return oe.dst == e.src;
    });
    if (!found) return false;
  }
  return true;
}

}  // namespace tcf
