#include "graph/generator.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "graph/algorithms.h"
#include "graph/builder.h"
#include "util/logging.h"

namespace tcf {

namespace {

std::vector<Point> DrawCoordinates(size_t n, const Region& region, Rng* rng) {
  std::vector<Point> coords(n);
  for (auto& p : coords) {
    p.x = rng->NextDouble(region.x0, region.x1);
    p.y = rng->NextDouble(region.y0, region.y1);
  }
  return coords;
}

Weight EdgeWeight(const Point& a, const Point& b, WeightModel model) {
  switch (model) {
    case WeightModel::kUnit: return 1.0;
    case WeightModel::kDistance: return Distance(a, b);
  }
  return 1.0;
}

}  // namespace

Graph GenerateGeneralGraph(const GeneralGraphOptions& options, Rng* rng) {
  TCF_CHECK(rng != nullptr);
  TCF_CHECK(options.num_nodes >= 1);
  TCF_CHECK_MSG(options.c1.has_value() || options.target_edges.has_value(),
                "give either c1 or target_edges");
  const size_t n = options.num_nodes;
  std::vector<Point> coords = DrawCoordinates(n, options.region, rng);

  // Decay sums for calibration: S = sum over unordered pairs of e^(-c2 d).
  double c1;
  if (options.c1.has_value()) {
    c1 = *options.c1;
  } else {
    double decay_sum = 0.0;
    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        decay_sum += std::exp(-options.c2 * Distance(coords[p], coords[q]));
      }
    }
    // Expected tuples = 2 * (c1/n^2) * decay_sum, whether the two tuples of
    // a pair are drawn together (symmetric) or independently (directed).
    TCF_CHECK_MSG(decay_sum > 0.0, "degenerate coordinate draw");
    c1 = *options.target_edges * static_cast<double>(n) *
         static_cast<double>(n) / (2.0 * decay_sum);
  }

  GraphBuilder builder;
  for (const Point& p : coords) builder.AddNode(p);

  const double scale = c1 / (static_cast<double>(n) * static_cast<double>(n));
  for (size_t p = 0; p < n; ++p) {
    for (size_t q = p + 1; q < n; ++q) {
      const double prob =
          scale * std::exp(-options.c2 * Distance(coords[p], coords[q]));
      const Weight w =
          EdgeWeight(coords[p], coords[q], options.weight_model);
      if (options.symmetric) {
        if (rng->NextBool(prob)) {
          builder.AddSymmetricEdge(static_cast<NodeId>(p),
                                   static_cast<NodeId>(q), w);
        }
      } else {
        if (rng->NextBool(prob)) {
          builder.AddEdge(static_cast<NodeId>(p), static_cast<NodeId>(q), w);
        }
        if (rng->NextBool(prob)) {
          builder.AddEdge(static_cast<NodeId>(q), static_cast<NodeId>(p), w);
        }
      }
    }
  }

  Graph g = builder.Build();
  if (!options.ensure_connected) return g;

  // Patch connectivity: link each non-primary component to the nearest node
  // of the growing connected part.
  while (true) {
    Components comps = WeaklyConnectedComponents(g);
    if (comps.count <= 1) break;
    // Find globally closest pair of nodes in different components.
    size_t best_p = 0, best_q = 0;
    double best_d = kInfinity;
    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        if (comps.component[p] == comps.component[q]) continue;
        const double d = Distance(coords[p], coords[q]);
        if (d < best_d) {
          best_d = d;
          best_p = p;
          best_q = q;
        }
      }
    }
    GraphBuilder patch;
    for (const Point& p : coords) patch.AddNode(p);
    for (const Edge& e : g.edges()) patch.AddEdge(e.src, e.dst, e.weight);
    const Weight w =
        EdgeWeight(coords[best_p], coords[best_q], options.weight_model);
    if (options.symmetric) {
      patch.AddSymmetricEdge(static_cast<NodeId>(best_p),
                             static_cast<NodeId>(best_q), w);
    } else {
      patch.AddEdge(static_cast<NodeId>(best_p), static_cast<NodeId>(best_q),
                    w);
    }
    g = patch.Build();
  }
  return g;
}

TransportationGraph GenerateTransportationGraph(
    const TransportationGraphOptions& options, Rng* rng) {
  TCF_CHECK(rng != nullptr);
  TCF_CHECK(options.num_clusters >= 1);
  const size_t k = options.num_clusters;
  const size_t nc = options.nodes_per_cluster;

  // Lay clusters out on a near-square grid of unit cells.
  const size_t grid_cols =
      static_cast<size_t>(std::ceil(std::sqrt(static_cast<double>(k))));

  TransportationGraph result;
  GraphBuilder builder;
  result.cluster_of_node.assign(k * nc, 0);

  std::vector<Point> coords;
  coords.reserve(k * nc);
  for (size_t c = 0; c < k; ++c) {
    const double cx = static_cast<double>(c % grid_cols);
    const double cy = static_cast<double>(c / grid_cols);
    GeneralGraphOptions cluster_opts;
    cluster_opts.num_nodes = nc;
    cluster_opts.c2 = options.c2;
    cluster_opts.target_edges = options.target_edges_per_cluster;
    cluster_opts.symmetric = options.symmetric;
    cluster_opts.ensure_connected = true;
    cluster_opts.weight_model = options.weight_model;
    cluster_opts.region = Region{cx + options.cell_margin,
                                 cy + options.cell_margin,
                                 cx + 1.0 - options.cell_margin,
                                 cy + 1.0 - options.cell_margin};
    Rng cluster_rng = rng->Fork();
    Graph cluster = GenerateGeneralGraph(cluster_opts, &cluster_rng);

    const NodeId base = static_cast<NodeId>(c * nc);
    for (NodeId v = 0; v < nc; ++v) {
      builder.AddNode(cluster.coordinate(v));
      coords.push_back(cluster.coordinate(v));
      result.cluster_of_node[base + v] = static_cast<int>(c);
    }
    for (const Edge& e : cluster.edges()) {
      builder.AddEdge(base + e.src, base + e.dst, e.weight);
    }
  }

  // Inter-cluster links: default ring with 2 edges per link (Fig. 3 shape).
  std::vector<InterClusterLink> links = options.links;
  if (links.empty() && k >= 2) {
    for (size_t c = 0; c < k; ++c) {
      if (k == 2 && c == 1) break;  // avoid the duplicate 1-0 link
      links.push_back(InterClusterLink{c, (c + 1) % k, 2});
    }
  }

  for (const InterClusterLink& link : links) {
    TCF_CHECK(link.cluster_a < k && link.cluster_b < k);
    TCF_CHECK(link.cluster_a != link.cluster_b);
    // Candidate cross pairs sorted by distance; greedily pick the closest,
    // preferring unused endpoints so border points stay "relatively few"
    // but distinct.
    struct Candidate {
      double dist;
      NodeId u, v;
    };
    std::vector<Candidate> candidates;
    const NodeId base_a = static_cast<NodeId>(link.cluster_a * nc);
    const NodeId base_b = static_cast<NodeId>(link.cluster_b * nc);
    for (NodeId i = 0; i < nc; ++i) {
      for (NodeId j = 0; j < nc; ++j) {
        const NodeId u = base_a + i;
        const NodeId v = base_b + j;
        candidates.push_back({Distance(coords[u], coords[v]), u, v});
      }
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                if (a.dist != b.dist) return a.dist < b.dist;
                if (a.u != b.u) return a.u < b.u;
                return a.v < b.v;
              });
    std::vector<NodeId> used;
    size_t added = 0;
    for (const Candidate& cand : candidates) {
      if (added == link.num_edges) break;
      const bool u_used =
          std::find(used.begin(), used.end(), cand.u) != used.end();
      const bool v_used =
          std::find(used.begin(), used.end(), cand.v) != used.end();
      if (u_used || v_used) continue;
      const Weight w = EdgeWeight(coords[cand.u], coords[cand.v],
                                  options.weight_model);
      if (options.symmetric) {
        builder.AddSymmetricEdge(cand.u, cand.v, w);
      } else {
        builder.AddEdge(cand.u, cand.v, w);
      }
      used.push_back(cand.u);
      used.push_back(cand.v);
      ++added;
    }
    TCF_CHECK_MSG(added == link.num_edges,
                  "could not realize inter-cluster link (clusters too small)");
  }

  result.links = std::move(links);
  result.graph = builder.Build();
  return result;
}

}  // namespace tcf
