// Plain-text persistence for graphs and Graphviz export for inspecting
// fragmentations by eye (every figure in the paper is a drawing of a
// fragmented graph; WriteDot regenerates that kind of picture).
#pragma once

#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace tcf {

/// Writes a graph in the tcf edge-list format:
///
///   tcf-graph 1
///   <num_nodes> <num_edges> <has_coords: 0|1>
///   [x y]              (one line per node, if has_coords)
///   <src> <dst> <weight>   (one line per edge)
Status WriteEdgeList(const Graph& g, const std::string& path);

/// Reads the format written by WriteEdgeList.
Result<Graph> ReadEdgeList(const std::string& path);

/// Graphviz export. If `node_group` is non-empty (size = num nodes) the
/// nodes are colored by group — pass a fragmentation's node->fragment map
/// to visualize fragments and disconnection sets (nodes in >1 fragment are
/// drawn as doublecircles).
Status WriteDot(const Graph& g, const std::string& path,
                const std::vector<int>& node_group = {},
                const std::vector<bool>& highlight = {});

}  // namespace tcf
