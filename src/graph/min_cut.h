// Vertex connectivity machinery for the k-connectivity discussion of Sec. 3:
// the authors' first idea was to mark as 'relevant' the nodes whose removal
// decreases the connectivity of the graph, and to build disconnection sets
// from them. They abandoned it (cycles through other fragments distort the
// measure, and it is expensive); we implement it both as an ablation
// (fragment/relevant_nodes.*) and because minimum vertex cuts are a natural
// quality oracle for disconnection sets.
#pragma once

#include <vector>

#include "graph/graph.h"

namespace tcf {

/// Result of a minimum s-t vertex cut computation.
struct VertexCut {
  /// Size of the cut == max number of internally node-disjoint s-t paths
  /// (Menger). 0 means s cannot reach t at all; kNoCut means every path is
  /// the direct edge (s, t) and no interior cut exists.
  int size = 0;
  /// The cut nodes (excluding s and t). Empty when size == 0.
  std::vector<NodeId> nodes;
};

/// Minimum s-t vertex cut in the *undirected* view of g, via node-split
/// max-flow (unit capacities, BFS augmentation). s and t must differ.
/// If the edge (s, t) exists the cut is reported for the graph without that
/// edge (the classic convention; otherwise no finite cut exists).
VertexCut MinVertexCut(const Graph& g, NodeId s, NodeId t);

/// Global vertex connectivity: min over MinVertexCut(s, t) for non-adjacent
/// pairs, using the standard neighborhood trick (s fixed to a minimum-degree
/// node plus its neighbors). O(n) max-flow runs; intended for the small
/// experiment graphs.
int VertexConnectivity(const Graph& g);

}  // namespace tcf
