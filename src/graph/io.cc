#include "graph/io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "graph/builder.h"

namespace tcf {

Status WriteEdgeList(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  // Round-trip exact doubles: a reloaded graph must answer queries
  // bit-identically to the original.
  out.precision(17);
  out << "tcf-graph 1\n";
  out << g.NumNodes() << " " << g.NumEdges() << " "
      << (g.has_coordinates() ? 1 : 0) << "\n";
  if (g.has_coordinates()) {
    for (const Point& p : g.coordinates()) out << p.x << " " << p.y << "\n";
  }
  for (const Edge& e : g.edges()) {
    out << e.src << " " << e.dst << " " << e.weight << "\n";
  }
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<Graph> ReadEdgeList(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for reading: " + path);
  std::string magic;
  int version = 0;
  in >> magic >> version;
  if (magic != "tcf-graph" || version != 1) {
    return Status::InvalidArgument("not a tcf-graph v1 file: " + path);
  }
  size_t n = 0, m = 0;
  int has_coords = 0;
  in >> n >> m >> has_coords;
  if (!in) return Status::InvalidArgument("bad header: " + path);
  GraphBuilder builder;
  if (has_coords) {
    for (size_t i = 0; i < n; ++i) {
      Point p;
      in >> p.x >> p.y;
      builder.AddNode(p);
    }
  } else {
    builder.EnsureNodes(n);
  }
  for (size_t i = 0; i < m; ++i) {
    uint64_t src = 0, dst = 0;
    double w = 1.0;
    in >> src >> dst >> w;
    if (!in) return Status::InvalidArgument("bad edge line: " + path);
    if (src >= n || dst >= n) {
      return Status::OutOfRange("edge endpoint out of range: " + path);
    }
    builder.AddEdge(static_cast<NodeId>(src), static_cast<NodeId>(dst), w);
  }
  return builder.Build();
}

Status WriteDot(const Graph& g, const std::string& path,
                const std::vector<int>& node_group,
                const std::vector<bool>& highlight) {
  if (!node_group.empty() && node_group.size() != g.NumNodes()) {
    return Status::InvalidArgument("node_group size mismatch");
  }
  if (!highlight.empty() && highlight.size() != g.NumNodes()) {
    return Status::InvalidArgument("highlight size mismatch");
  }
  static const char* kPalette[] = {"lightblue", "lightsalmon", "palegreen",
                                   "plum",      "khaki",       "lightcyan",
                                   "mistyrose", "wheat"};
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  out << "digraph G {\n  node [style=filled];\n";
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    out << "  n" << v << " [";
    if (!node_group.empty()) {
      const int group = node_group[v];
      const char* color =
          group >= 0 ? kPalette[group % 8] : "white";
      out << "fillcolor=" << color << ", ";
    }
    if (!highlight.empty() && highlight[v]) out << "shape=doublecircle, ";
    if (g.has_coordinates()) {
      const Point& p = g.coordinate(v);
      out << "pos=\"" << p.x * 10 << "," << p.y * 10 << "!\", ";
    }
    out << "label=\"" << v << "\"];\n";
  }
  for (const Edge& e : g.edges()) {
    // Render symmetric pairs once, as an undirected-looking edge.
    if (e.dst < e.src) continue;
    out << "  n" << e.src << " -> n" << e.dst << " [dir=none];\n";
  }
  out << "}\n";
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace tcf
