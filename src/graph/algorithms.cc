#include "graph/algorithms.h"

#include <algorithm>
#include <queue>

namespace tcf {

namespace {

/// Visit all neighbors of `node` in the requested direction.
template <typename Fn>
void ForEachNeighbor(const Graph& g, NodeId node, Direction dir, Fn&& fn) {
  if (dir == Direction::kForward || dir == Direction::kUndirected) {
    for (const OutEdge& e : g.OutEdges(node)) fn(e.dst, e.weight, e.id);
  }
  if (dir == Direction::kBackward || dir == Direction::kUndirected) {
    for (const InEdge& e : g.InEdges(node)) fn(e.src, e.weight, e.id);
  }
}

}  // namespace

std::vector<int> BfsHops(const Graph& g, NodeId source, Direction dir) {
  TCF_CHECK(source < g.NumNodes());
  std::vector<int> dist(g.NumNodes(), -1);
  std::queue<NodeId> frontier;
  dist[source] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    NodeId v = frontier.front();
    frontier.pop();
    ForEachNeighbor(g, v, dir, [&](NodeId w, Weight, EdgeId) {
      if (dist[w] < 0) {
        dist[w] = dist[v] + 1;
        frontier.push(w);
      }
    });
  }
  return dist;
}

std::vector<NodeId> ShortestPaths::PathTo(NodeId target) const {
  if (target >= distance.size() || distance[target] == kInfinity) return {};
  std::vector<NodeId> path;
  NodeId v = target;
  while (v != kInvalidNode) {
    path.push_back(v);
    v = parent[v];
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<EdgeId> ShortestPaths::EdgesTo(NodeId target) const {
  if (target >= distance.size() || distance[target] == kInfinity) return {};
  std::vector<EdgeId> edges;
  NodeId v = target;
  while (parent[v] != kInvalidNode) {
    edges.push_back(parent_edge[v]);
    v = parent[v];
  }
  std::reverse(edges.begin(), edges.end());
  return edges;
}

ShortestPaths Dijkstra(const Graph& g, NodeId source, Direction dir) {
  TCF_CHECK(source < g.NumNodes());
  ShortestPaths result;
  result.distance.assign(g.NumNodes(), kInfinity);
  result.parent.assign(g.NumNodes(), kInvalidNode);
  result.parent_edge.assign(g.NumNodes(), kInvalidEdge);
  using Item = std::pair<Weight, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> heap;
  result.distance[source] = 0;
  heap.emplace(0.0, source);
  while (!heap.empty()) {
    auto [d, v] = heap.top();
    heap.pop();
    if (d > result.distance[v]) continue;  // stale entry
    ForEachNeighbor(g, v, dir, [&](NodeId w, Weight weight, EdgeId e) {
      TCF_CHECK_MSG(weight >= 0, "Dijkstra requires non-negative weights");
      const Weight nd = d + weight;
      if (nd < result.distance[w]) {
        result.distance[w] = nd;
        result.parent[w] = v;
        result.parent_edge[w] = e;
        heap.emplace(nd, w);
      }
    });
  }
  return result;
}

std::vector<std::vector<Weight>> FloydWarshall(const Graph& g) {
  const size_t n = g.NumNodes();
  std::vector<std::vector<Weight>> dist(n,
                                        std::vector<Weight>(n, kInfinity));
  for (size_t i = 0; i < n; ++i) dist[i][i] = 0;
  for (const Edge& e : g.edges()) {
    dist[e.src][e.dst] = std::min(dist[e.src][e.dst], e.weight);
  }
  for (size_t k = 0; k < n; ++k) {
    for (size_t i = 0; i < n; ++i) {
      if (dist[i][k] == kInfinity) continue;
      for (size_t j = 0; j < n; ++j) {
        const Weight via = dist[i][k] + dist[k][j];
        if (via < dist[i][j]) dist[i][j] = via;
      }
    }
  }
  return dist;
}

WidestPaths WidestPathsFrom(const Graph& g, NodeId source) {
  TCF_CHECK(source < g.NumNodes());
  WidestPaths result;
  result.capacity.assign(g.NumNodes(), 0.0);
  result.parent.assign(g.NumNodes(), kInvalidNode);
  using Item = std::pair<Weight, NodeId>;  // max-heap on capacity
  std::priority_queue<Item> heap;
  result.capacity[source] = kInfinity;
  heap.emplace(kInfinity, source);
  while (!heap.empty()) {
    auto [cap, v] = heap.top();
    heap.pop();
    if (cap < result.capacity[v]) continue;  // stale entry
    for (const OutEdge& e : g.OutEdges(v)) {
      TCF_CHECK_MSG(e.weight >= 0, "widest paths require weights >= 0");
      const Weight through = std::min(cap, e.weight);
      if (through > result.capacity[e.dst]) {
        result.capacity[e.dst] = through;
        result.parent[e.dst] = v;
        heap.emplace(through, e.dst);
      }
    }
  }
  return result;
}

Components WeaklyConnectedComponents(const Graph& g) {
  Components result;
  result.component.assign(g.NumNodes(), -1);
  for (NodeId start = 0; start < g.NumNodes(); ++start) {
    if (result.component[start] >= 0) continue;
    const int id = result.count++;
    std::queue<NodeId> frontier;
    result.component[start] = id;
    frontier.push(start);
    while (!frontier.empty()) {
      NodeId v = frontier.front();
      frontier.pop();
      ForEachNeighbor(g, v, Direction::kUndirected,
                      [&](NodeId w, Weight, EdgeId) {
        if (result.component[w] < 0) {
          result.component[w] = id;
          frontier.push(w);
        }
      });
    }
  }
  return result;
}

int Eccentricity(const Graph& g, NodeId node, Direction dir) {
  std::vector<int> dist = BfsHops(g, node, dir);
  int ecc = -1;
  for (int d : dist) ecc = std::max(ecc, d);
  return ecc;
}

int HopDiameter(const Graph& g, Direction dir) {
  int diameter = 0;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    diameter = std::max(diameter, Eccentricity(g, v, dir));
  }
  return diameter;
}

bool Reachable(const Graph& g, NodeId from, NodeId to) {
  if (from == to) return true;
  std::vector<int> dist = BfsHops(g, from, Direction::kForward);
  return dist[to] >= 0;
}

}  // namespace tcf
