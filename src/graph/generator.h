// Random graph generation following Sec. 4.1 of the paper.
//
// General graphs: every node receives a coordinate evenly spread over a
// given interval; an edge between p and q is generated with probability
//
//     P(p, q) = (c1 / n^2) * exp(-c2 * d(p, q))
//
// where d is the Euclidean distance. c1 controls the expected number of
// edges (connectivity), c2 the bias towards local connections.
//
// Transportation graphs: the same procedure generates each cluster, and the
// clusters are then connected "following the requirements given by the
// user" — a list of (cluster a, cluster b, number of edges).
#pragma once

#include <optional>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace tcf {

/// Axis-aligned rectangle in which node coordinates are drawn.
struct Region {
  double x0 = 0.0;
  double y0 = 0.0;
  double x1 = 1.0;
  double y1 = 1.0;

  double Width() const { return x1 - x0; }
  double Height() const { return y1 - y0; }
};

/// How edge weights are assigned.
enum class WeightModel {
  kUnit,      // every edge has weight 1 (pure reachability graphs)
  kDistance,  // weight = Euclidean distance between endpoints
};

struct GeneralGraphOptions {
  size_t num_nodes = 100;

  /// Distance decay c2 of the probability function. With the default unit
  /// region, values around 5-15 give the strong local bias the paper wants.
  double c2 = 10.0;

  /// Density control: either give c1 directly, or give a target expected
  /// edge count and let the generator calibrate c1 for the drawn
  /// coordinates (this is how the benches hit the paper's reported average
  /// edge counts, e.g. 279.5 edges for 100-node general graphs).
  std::optional<double> c1;
  std::optional<double> target_edges;

  /// Generate (u, v) and (v, u) together. Connection networks (rail,
  /// telephone) are bidirectional; each direction counts as one edge tuple.
  bool symmetric = true;

  /// If true, weakly connect the result by adding closest-pair symmetric
  /// edges between components (useful for cluster generation).
  bool ensure_connected = false;

  WeightModel weight_model = WeightModel::kDistance;
  Region region;
};

/// Generates a general random graph per Sec. 4.1.
Graph GenerateGeneralGraph(const GeneralGraphOptions& options, Rng* rng);

/// One inter-cluster connection requirement: `num_edges` undirected
/// connections between clusters a and b (each becomes 2 edge tuples when
/// symmetric generation is on).
struct InterClusterLink {
  size_t cluster_a = 0;
  size_t cluster_b = 0;
  size_t num_edges = 2;
};

struct TransportationGraphOptions {
  size_t num_clusters = 4;
  size_t nodes_per_cluster = 25;

  /// Intra-cluster density: expected edge tuples per cluster.
  double target_edges_per_cluster = 100.0;
  double c2 = 10.0;
  bool symmetric = true;
  WeightModel weight_model = WeightModel::kDistance;

  /// Explicit inter-cluster requirements; if empty, a ring over the
  /// clusters with 2 edges per link is used (the shape of Fig. 3).
  std::vector<InterClusterLink> links;

  /// Fraction of each (unit) cluster cell left as empty margin, so that
  /// clusters are spatially separated ("loosely interconnected").
  double cell_margin = 0.15;
};

/// A generated transportation graph with its ground truth.
struct TransportationGraph {
  Graph graph;
  /// Cluster id of each node — the "natural" fragmentation the paper's
  /// intro appeals to (countries of a railway network).
  std::vector<int> cluster_of_node;
  /// The realized inter-cluster links.
  std::vector<InterClusterLink> links;
};

/// Generates a transportation graph per Sec. 4.1 / Fig. 3: dense clusters
/// laid out on a grid, loosely interconnected through a few closest-pair
/// border edges.
TransportationGraph GenerateTransportationGraph(
    const TransportationGraphOptions& options, Rng* rng);

}  // namespace tcf
