// The base relation R of the paper: a directed graph, where each tuple
// (src, dst, weight) is one edge, with optional 2-D coordinates per node
// (Sec. 4.1 assigns coordinates to every node; the linear-fragmentation and
// distributed-centers algorithms require them).
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "util/status.h"

namespace tcf {

using NodeId = uint32_t;
using EdgeId = uint32_t;
using Weight = double;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
/// Sentinel distance for "unreachable".
inline constexpr Weight kInfinity = std::numeric_limits<Weight>::infinity();

/// One tuple of the connection relation R.
struct Edge {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  Weight weight = 1.0;

  bool operator==(const Edge& other) const = default;
};

/// 2-D node coordinate (Sec. 4.1).
struct Point {
  double x = 0.0;
  double y = 0.0;

  bool operator==(const Point& other) const = default;
};

/// Euclidean distance d(p, q) used by the generator's probability function.
inline double Distance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

/// CSR entry for outgoing adjacency.
struct OutEdge {
  NodeId dst;
  Weight weight;
  EdgeId id;
};

/// CSR entry for incoming adjacency.
struct InEdge {
  NodeId src;
  Weight weight;
  EdgeId id;
};

/// Immutable directed graph with CSR adjacency in both directions plus a
/// deduplicated undirected neighbor list (the paper's "grade" of a node and
/// the bond-energy adjacency matrix ignore direction).
///
/// Build one with GraphBuilder (builder.h).
class Graph {
 public:
  Graph() = default;

  size_t NumNodes() const { return num_nodes_; }
  size_t NumEdges() const { return edges_.size(); }

  const std::vector<Edge>& edges() const { return edges_; }
  const Edge& edge(EdgeId id) const {
    TCF_CHECK(id < edges_.size());
    return edges_[id];
  }

  std::span<const OutEdge> OutEdges(NodeId node) const {
    TCF_CHECK(node < num_nodes_);
    return {out_adj_.data() + out_offsets_[node],
            out_offsets_[node + 1] - out_offsets_[node]};
  }
  std::span<const InEdge> InEdges(NodeId node) const {
    TCF_CHECK(node < num_nodes_);
    return {in_adj_.data() + in_offsets_[node],
            in_offsets_[node + 1] - in_offsets_[node]};
  }
  /// Distinct neighbors across both edge directions, sorted ascending.
  std::span<const NodeId> UndirectedNeighbors(NodeId node) const {
    TCF_CHECK(node < num_nodes_);
    return {und_adj_.data() + und_offsets_[node],
            und_offsets_[node + 1] - und_offsets_[node]};
  }

  size_t OutDegree(NodeId node) const { return OutEdges(node).size(); }
  size_t InDegree(NodeId node) const { return InEdges(node).size(); }
  /// The paper's grade(i): the number of edges adjacent to i (both
  /// directions, counting multiplicity).
  size_t Grade(NodeId node) const {
    return OutDegree(node) + InDegree(node);
  }
  /// Number of distinct undirected neighbors.
  size_t UndirectedDegree(NodeId node) const {
    return UndirectedNeighbors(node).size();
  }

  bool has_coordinates() const { return !coordinates_.empty(); }
  const Point& coordinate(NodeId node) const {
    TCF_CHECK(has_coordinates() && node < num_nodes_);
    return coordinates_[node];
  }
  const std::vector<Point>& coordinates() const { return coordinates_; }

  /// True if for every edge (u, v) the reverse edge (v, u) also exists.
  bool IsSymmetric() const;

 private:
  friend class GraphBuilder;

  size_t num_nodes_ = 0;
  std::vector<Edge> edges_;
  std::vector<Point> coordinates_;  // empty if no coordinates

  std::vector<size_t> out_offsets_;
  std::vector<OutEdge> out_adj_;
  std::vector<size_t> in_offsets_;
  std::vector<InEdge> in_adj_;
  std::vector<size_t> und_offsets_;
  std::vector<NodeId> und_adj_;
};

}  // namespace tcf
