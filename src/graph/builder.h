// Mutable construction interface for Graph.
#pragma once

#include <vector>

#include "graph/graph.h"

namespace tcf {

/// Accumulates nodes and edges, then freezes them into the CSR Graph.
/// Node ids are dense [0, n); adding an edge implicitly grows the node
/// count to cover its endpoints (without coordinates).
class GraphBuilder {
 public:
  GraphBuilder() = default;
  /// Pre-declare n coordinate-less nodes.
  explicit GraphBuilder(size_t num_nodes) : num_nodes_(num_nodes) {}

  /// Adds a node with a coordinate; returns its id. Mixing AddNode with
  /// implicit node creation via AddEdge is allowed, but coordinates are
  /// kept only if *every* node got one.
  NodeId AddNode(Point coordinate);

  /// Adds a directed edge tuple.
  void AddEdge(NodeId src, NodeId dst, Weight weight = 1.0);
  /// Adds both (src, dst) and (dst, src) with the same weight.
  void AddSymmetricEdge(NodeId src, NodeId dst, Weight weight = 1.0);

  /// Ensure the node-id space covers [0, n).
  void EnsureNodes(size_t n);

  size_t num_nodes() const { return num_nodes_; }
  size_t num_edges() const { return edges_.size(); }

  /// Remove exact duplicate (src, dst) pairs, keeping the smallest weight.
  void DeduplicateEdges();

  /// Freeze into an immutable Graph. The builder is left empty.
  Graph Build();

 private:
  size_t num_nodes_ = 0;
  std::vector<Edge> edges_;
  std::vector<Point> coordinates_;
};

}  // namespace tcf
