#include "graph/status_score.h"

#include <algorithm>
#include <queue>

namespace tcf {

std::vector<double> StatusScores(const Graph& g,
                                 const StatusScoreOptions& options) {
  TCF_CHECK_MSG(options.alpha < 1.0 && options.alpha >= 0.0,
                "status score requires 0 <= a < 1");
  TCF_CHECK(options.depth >= 0);
  const size_t n = g.NumNodes();
  std::vector<double> scores(n, 0.0);

  // Depth-bounded BFS from each node; rings weighted by a^d.
  std::vector<int> dist(n, -1);
  std::vector<NodeId> touched;
  for (NodeId i = 0; i < n; ++i) {
    double score = static_cast<double>(g.Grade(i));
    double weight = 1.0;
    touched.clear();
    dist[i] = 0;
    touched.push_back(i);
    std::vector<NodeId> ring = {i};
    for (int d = 1; d <= options.depth && !ring.empty(); ++d) {
      weight *= options.alpha;
      std::vector<NodeId> next;
      for (NodeId v : ring) {
        for (NodeId w : g.UndirectedNeighbors(v)) {
          if (dist[w] < 0) {
            dist[w] = d;
            touched.push_back(w);
            next.push_back(w);
            score += weight * static_cast<double>(g.Grade(w));
          }
        }
      }
      ring = std::move(next);
    }
    for (NodeId v : touched) dist[v] = -1;
    scores[i] = score;
  }
  return scores;
}

std::vector<NodeId> TopStatusNodes(const Graph& g, size_t count,
                                   const StatusScoreOptions& options) {
  std::vector<double> scores = StatusScores(g, options);
  std::vector<NodeId> order(g.NumNodes());
  for (NodeId i = 0; i < g.NumNodes(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return a < b;
  });
  if (order.size() > count) order.resize(count);
  return order;
}

}  // namespace tcf
