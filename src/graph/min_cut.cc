#include "graph/min_cut.h"

#include <algorithm>
#include <queue>

namespace tcf {

namespace {

// Unit-capacity flow network for vertex cuts: every node v becomes
// v_in -> v_out with capacity 1 (except s and t, capacity inf); every
// undirected edge {u, v} becomes u_out -> v_in and v_out -> u_in with
// capacity inf. Max flow == min number of interior nodes whose removal
// disconnects s from t.
struct FlowNetwork {
  struct Arc {
    int to;
    int cap;
    size_t rev;  // index of the reverse arc in adj[to]
  };

  explicit FlowNetwork(size_t num_vertices) : adj(num_vertices) {}

  void AddArc(int from, int to, int cap) {
    adj[from].push_back({to, cap, adj[to].size()});
    adj[to].push_back({from, 0, adj[from].size() - 1});
  }

  // Edmonds–Karp; capacities here are tiny (<= n), so this is plenty fast.
  int MaxFlow(int s, int t) {
    int flow = 0;
    while (true) {
      std::vector<std::pair<int, size_t>> pred(adj.size(), {-1, 0});
      std::queue<int> frontier;
      pred[s] = {s, 0};
      frontier.push(s);
      while (!frontier.empty() && pred[t].first < 0) {
        int v = frontier.front();
        frontier.pop();
        for (size_t i = 0; i < adj[v].size(); ++i) {
          const Arc& a = adj[v][i];
          if (a.cap > 0 && pred[a.to].first < 0) {
            pred[a.to] = {v, i};
            frontier.push(a.to);
          }
        }
      }
      if (pred[t].first < 0) return flow;
      // Augment by 1 along the path (unit capacities on node arcs).
      for (int v = t; v != s;) {
        auto [u, i] = pred[v];
        Arc& a = adj[u][i];
        a.cap -= 1;
        adj[a.to][a.rev].cap += 1;
        v = u;
      }
      ++flow;
    }
  }

  std::vector<std::vector<Arc>> adj;
};

constexpr int kInfCap = 1 << 28;

}  // namespace

VertexCut MinVertexCut(const Graph& g, NodeId s, NodeId t) {
  TCF_CHECK(s < g.NumNodes() && t < g.NumNodes() && s != t);
  const size_t n = g.NumNodes();
  // Vertex ids: v_in = 2v, v_out = 2v + 1.
  FlowNetwork net(2 * n);
  for (NodeId v = 0; v < n; ++v) {
    const int cap = (v == s || v == t) ? kInfCap : 1;
    net.AddArc(static_cast<int>(2 * v), static_cast<int>(2 * v + 1), cap);
  }
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId w : g.UndirectedNeighbors(v)) {
      // Skip the direct s-t edge so an interior cut can exist.
      if ((v == s && w == t) || (v == t && w == s)) continue;
      net.AddArc(static_cast<int>(2 * v + 1), static_cast<int>(2 * w),
                 kInfCap);
    }
  }
  VertexCut cut;
  cut.size = net.MaxFlow(static_cast<int>(2 * s), static_cast<int>(2 * t + 1));
  if (cut.size == 0 || cut.size >= kInfCap) return cut;

  // Cut nodes: saturated node arcs reachable-in / unreachable-out in the
  // residual network.
  std::vector<char> reachable(2 * n, 0);
  std::queue<int> frontier;
  reachable[2 * s] = 1;
  frontier.push(static_cast<int>(2 * s));
  while (!frontier.empty()) {
    int v = frontier.front();
    frontier.pop();
    for (const auto& arc : net.adj[v]) {
      if (arc.cap > 0 && !reachable[arc.to]) {
        reachable[arc.to] = 1;
        frontier.push(arc.to);
      }
    }
  }
  for (NodeId v = 0; v < n; ++v) {
    if (v == s || v == t) continue;
    if (reachable[2 * v] && !reachable[2 * v + 1]) cut.nodes.push_back(v);
  }
  return cut;
}

int VertexConnectivity(const Graph& g) {
  const size_t n = g.NumNodes();
  if (n < 2) return 0;
  // Pick a minimum-undirected-degree node s.
  NodeId s = 0;
  for (NodeId v = 1; v < n; ++v) {
    if (g.UndirectedDegree(v) < g.UndirectedDegree(s)) s = v;
  }
  int best = static_cast<int>(n) - 1;
  auto consider = [&](NodeId a, NodeId b) {
    if (a == b) return;
    auto nbrs = g.UndirectedNeighbors(a);
    if (std::binary_search(nbrs.begin(), nbrs.end(), b)) return;
    best = std::min(best, MinVertexCut(g, a, b).size);
  };
  for (NodeId t = 0; t < n; ++t) consider(s, t);
  for (NodeId w : g.UndirectedNeighbors(s)) {
    for (NodeId t = 0; t < n; ++t) consider(w, t);
  }
  // Fully connected graphs: connectivity is n-1 by convention.
  return best;
}

}  // namespace tcf
