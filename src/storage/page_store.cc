#include "storage/page_store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace tcf {

namespace {

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

}  // namespace

// ---------------------------------------------------------------------------
// MemPageStore

MemPageStore::MemPageStore(size_t page_size) : page_size_(page_size) {
  TCF_CHECK(page_size_ > 0);
}

Status MemPageStore::ReadPage(uint64_t index, uint8_t* out) {
  if (index >= pages_.size()) {
    return Status::OutOfRange("MemPageStore: read of page " +
                              std::to_string(index) + " past end (" +
                              std::to_string(pages_.size()) + " pages)");
  }
  std::memcpy(out, pages_[index].data(), page_size_);
  return Status::OK();
}

Status MemPageStore::WritePage(uint64_t index, const uint8_t* data) {
  if (index > pages_.size()) {
    return Status::OutOfRange("MemPageStore: write of page " +
                              std::to_string(index) + " would leave a hole (" +
                              std::to_string(pages_.size()) + " pages)");
  }
  if (index == pages_.size()) {
    pages_.emplace_back(data, data + page_size_);
  } else {
    std::memcpy(pages_[index].data(), data, page_size_);
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// FilePageStore

Result<std::unique_ptr<FilePageStore>> FilePageStore::Create(
    const std::string& path, size_t page_size) {
  TCF_CHECK(page_size > 0);
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IOError(Errno("open " + path));
  }
  return std::unique_ptr<FilePageStore>(
      new FilePageStore(fd, page_size, 0, /*read_only=*/false, path));
}

Result<std::unique_ptr<FilePageStore>> FilePageStore::Open(
    const std::string& path, size_t page_size, bool read_only) {
  TCF_CHECK(page_size > 0);
  const int fd = ::open(path.c_str(), read_only ? O_RDONLY : O_RDWR);
  if (fd < 0) {
    return Status::IOError(Errno("open " + path));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const Status status = Status::IOError(Errno("fstat " + path));
    ::close(fd);
    return status;
  }
  const uint64_t size = static_cast<uint64_t>(st.st_size);
  if (size % page_size != 0) {
    ::close(fd);
    return Status::InvalidArgument(
        path + ": file size " + std::to_string(size) +
        " is not a multiple of page size " + std::to_string(page_size) +
        " (truncated or not a tcfrag database)");
  }
  return std::unique_ptr<FilePageStore>(new FilePageStore(
      fd, page_size, size / page_size, read_only, path));
}

FilePageStore::~FilePageStore() {
  if (fd_ >= 0) ::close(fd_);
}

Status FilePageStore::ReadPage(uint64_t index, uint8_t* out) {
  if (index >= page_count_) {
    return Status::OutOfRange(path_ + ": read of page " +
                              std::to_string(index) + " past end (" +
                              std::to_string(page_count_) + " pages)");
  }
  size_t done = 0;
  while (done < page_size_) {
    const ssize_t n =
        ::pread(fd_, out + done, page_size_ - done,
                static_cast<off_t>(index * page_size_ + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(Errno(path_ + ": pread"));
    }
    if (n == 0) {
      return Status::IOError(path_ + ": unexpected EOF reading page " +
                             std::to_string(index));
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status FilePageStore::WritePage(uint64_t index, const uint8_t* data) {
  if (read_only_) {
    return Status::FailedPrecondition(path_ + ": store is read-only");
  }
  if (index > page_count_) {
    return Status::OutOfRange(path_ + ": write of page " +
                              std::to_string(index) + " would leave a hole (" +
                              std::to_string(page_count_) + " pages)");
  }
  size_t done = 0;
  while (done < page_size_) {
    const ssize_t n =
        ::pwrite(fd_, data + done, page_size_ - done,
                 static_cast<off_t>(index * page_size_ + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(Errno(path_ + ": pwrite"));
    }
    done += static_cast<size_t>(n);
  }
  if (index == page_count_) ++page_count_;
  return Status::OK();
}

Status FilePageStore::Sync() {
  if (read_only_) return Status::OK();
  if (::fsync(fd_) != 0) {
    return Status::IOError(Errno(path_ + ": fsync"));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// MmapFile

Result<MmapFile> MmapFile::Map(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError(Errno("open " + path));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const Status status = Status::IOError(Errno("fstat " + path));
    ::close(fd);
    return status;
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return Status::InvalidArgument(path + ": empty file");
  }
  void* data = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  // The mapping stays valid after close(2); the kernel holds the file.
  ::close(fd);
  if (data == MAP_FAILED) {
    return Status::IOError(Errno("mmap " + path));
  }
  return MmapFile(data, size);
}

MmapFile::~MmapFile() {
  if (data_ != nullptr) ::munmap(data_, size_);
}

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) ::munmap(data_, size_);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

}  // namespace tcf
