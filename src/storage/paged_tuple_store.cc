#include "storage/paged_tuple_store.h"

#include <array>
#include <bit>
#include <cstring>
#include <utility>
#include <vector>

#include "storage/page.h"

namespace tcf {

Result<std::shared_ptr<PagedFile>> PagedFile::Open(const std::string& path,
                                                   size_t page_size,
                                                   size_t num_frames) {
  auto store = FilePageStore::Open(path, page_size, /*read_only=*/true);
  if (!store.ok()) return store.status();
  return std::shared_ptr<PagedFile>(new PagedFile(
      std::move(store).value(), num_frames > 0 ? num_frames : 1, path));
}

PagedFile::PagedFile(std::unique_ptr<FilePageStore> store, size_t num_frames,
                     std::string path)
    : store_(std::move(store)), path_(std::move(path)) {
  // Verify-on-fault-in: with a capped pool, pages are evicted and re-read
  // from disk throughout the file's lifetime, and every one of those
  // re-reads must uphold the corruption contract (docs/STORAGE.md §5.1).
  // Checking here — once per fault, not once per scan — is what lets
  // cursors consume pooled bytes without re-verifying on every hit.
  pool_ = std::make_unique<BufferPool>(
      store_.get(), num_frames,
      [](std::span<const uint8_t> page, uint64_t page_index) -> Status {
        Result<PageHeader> header = CheckPage(page, page_index);
        return header.ok() ? Status::OK() : header.status();
      });
}

namespace {

/// On-disk tuple layout (docs/STORAGE.md "Shortcut blob").
constexpr size_t kTupleBytes = 16;
/// Leading u64 tuple count of the blob.
constexpr size_t kBlobHeaderBytes = 8;

PathTuple DecodeTuple(const uint8_t* p) {
  PathTuple t;
  t.src = LoadU32(p);
  t.dst = LoadU32(p + 4);
  t.cost = std::bit_cast<double>(LoadU64(p + 8));
  return t;
}

}  // namespace

/// Walks the extent page by page, decoding each page's worth of tuples into
/// a resident block. At most one page is pinned at any moment, and only
/// while its tuples are being decoded — the returned block is a copy, so
/// the pin is released before NextBlock() returns. A tuple straddling a
/// page boundary is reassembled through a 16-byte carry buffer.
///
/// A page that cannot be read (I/O error, corrupt checksum, payload length
/// changed since open) ends the scan early with a non-OK status(); only
/// running past the extent — impossible for any store validated at open —
/// is treated as a broken invariant.
class PagedTupleStore::PageCursor final : public TupleStore::Cursor {
 public:
  explicit PageCursor(const PagedTupleStore* store)
      : store_(store),
        capacity_(PagePayloadCapacity(store->file()->page_size())) {}

  std::span<const PathTuple> NextBlock() override {
    block_.clear();
    if (!status_.ok()) return {};
    const uint64_t byte_len = store_->extent().byte_len;
    while (block_.empty() && emitted_ < store_->size()) {
      const uint64_t page_offset = page_ordinal_ * capacity_;
      TCF_CHECK_MSG(page_offset < byte_len,
                    "paged tuple scan ran past its extent");
      const size_t payload_len = static_cast<size_t>(
          std::min<uint64_t>(capacity_, byte_len - page_offset));
      const uint8_t* page = AcquirePage(
          store_->extent().first_page + page_ordinal_, payload_len);
      if (page == nullptr) return {};  // status_ carries the failure
      DecodePayload(page + kPageHeaderSize, payload_len,
                    /*skip=*/page_ordinal_ == 0 ? kBlobHeaderBytes : 0);
      ++page_ordinal_;
      pin_ = BufferPool::PageRef();  // block_ is a copy; release the pin now
    }
    return block_;
  }

  Status status() const override { return status_; }

 private:
  /// Pin the page through the pool; if every frame is pinned, fall back to
  /// a direct read into a local buffer so the scan still completes (the
  /// pool's capacity bounds cached pages, not correctness). Both paths are
  /// checksum-verified: the pool verifies every fault-in (PagedFile's
  /// verifier), and bypass reads come fresh from disk, so they run
  /// CheckPage themselves. Returns nullptr with status_ set when the page
  /// cannot be produced.
  const uint8_t* AcquirePage(uint64_t page_index, size_t payload_len) {
    const size_t page_size = store_->file()->page_size();
    const uint8_t* bytes = nullptr;
    Result<BufferPool::PageRef> ref = store_->file()->pool().Pin(page_index);
    if (ref.ok()) {
      pin_ = std::move(ref).value();
      bytes = pin_.data();
    } else if (ref.status().code() == StatusCode::kFailedPrecondition) {
      // Every frame is pinned — read around the pool.
      bypass_.resize(page_size);
      const Status read = store_->file()->ReadPageBypass(page_index,
                                                         bypass_.data());
      if (!read.ok()) {
        status_ = read;
        return nullptr;
      }
      Result<PageHeader> header =
          CheckPage({bypass_.data(), page_size}, page_index);
      if (!header.ok()) {
        status_ = header.status();
        return nullptr;
      }
      bytes = bypass_.data();
    } else {
      // Fault-in failed for real: the store's read error or the pool
      // verifier's corruption report.
      status_ = ref.status();
      return nullptr;
    }
    // The page fill pattern was validated against the directory extent at
    // open; a disagreement here means the file changed under us.
    const uint32_t stored_len = LoadU32(bytes + 16);  // header payload_len
    if (stored_len != payload_len) {
      status_ = Status::IOError(
          "paged tuple scan: page " + std::to_string(page_index) +
          " payload length changed since open (stored " +
          std::to_string(stored_len) + ", expected " +
          std::to_string(payload_len) + ")");
      pin_ = BufferPool::PageRef();
      return nullptr;
    }
    return bytes;
  }

  void DecodePayload(const uint8_t* payload, size_t payload_len,
                     size_t skip) {
    size_t pos = skip;
    while (pos < payload_len && emitted_ < store_->size()) {
      if (carry_len_ > 0) {
        const size_t take =
            std::min(kTupleBytes - carry_len_, payload_len - pos);
        std::memcpy(carry_.data() + carry_len_, payload + pos, take);
        carry_len_ += take;
        pos += take;
        if (carry_len_ == kTupleBytes) {
          block_.push_back(DecodeTuple(carry_.data()));
          ++emitted_;
          carry_len_ = 0;
        }
        continue;
      }
      const size_t whole = std::min<uint64_t>(
          (payload_len - pos) / kTupleBytes, store_->size() - emitted_);
      for (size_t i = 0; i < whole; ++i) {
        block_.push_back(DecodeTuple(payload + pos));
        pos += kTupleBytes;
      }
      emitted_ += whole;
      const size_t remainder = payload_len - pos;
      if (remainder > 0 && emitted_ < store_->size()) {
        std::memcpy(carry_.data(), payload + pos, remainder);
        carry_len_ = remainder;
        pos = payload_len;
      }
    }
  }

  const PagedTupleStore* store_;
  const size_t capacity_;
  Status status_;
  uint64_t page_ordinal_ = 0;  // page within the extent
  uint64_t emitted_ = 0;
  BufferPool::PageRef pin_;
  std::vector<uint8_t> bypass_;
  std::array<uint8_t, kTupleBytes> carry_{};
  size_t carry_len_ = 0;
  std::vector<PathTuple> block_;
};

PagedTupleStore::PagedTupleStore(std::shared_ptr<PagedFile> file,
                                 PageExtent extent, uint64_t tuple_count)
    : file_(std::move(file)), extent_(extent), tuple_count_(tuple_count) {
  TCF_CHECK(file_ != nullptr);
}

std::unique_ptr<TupleStore::Cursor> PagedTupleStore::NewCursor() const {
  return std::make_unique<PageCursor>(this);
}

}  // namespace tcf
