#include "storage/database_io.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <utility>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

#include "graph/builder.h"
#include "net/wire.h"
#include "storage/buffer_pool.h"
#include "storage/page_store.h"

namespace tcf {

namespace {

// "TCFRAGDB" read as a little-endian u64 (docs/STORAGE.md "Superblock").
constexpr uint64_t kDbMagic = 0x4244474152464354ull;
constexpr uint32_t kFormatVersion = 1;
// Fixed size of the superblock payload; fits the smallest legal page.
constexpr uint32_t kSuperblockPayloadLen = 144;
static_assert(kSuperblockPayloadLen <= kMinPageSize - kPageHeaderSize);

// File offsets of the probe fields, derived from the page header size and
// the superblock payload layout (magic is payload offset 0, version 8,
// page_size 12).
constexpr size_t kProbeMagicOffset = kPageHeaderSize + 0;
constexpr size_t kProbeVersionOffset = kPageHeaderSize + 8;
constexpr size_t kProbePageSizeOffset = kPageHeaderSize + 12;
constexpr size_t kProbeBytes = kProbePageSizeOffset + 4;

// A run of pages holding one serialized blob: storage/paged_tuple_store.h's
// PageExtent — shared with the paged relations, which address fragment
// shortcut blobs by exactly these directory extents.
using Extent = PageExtent;

/// One fragment's entry in the fragment directory.
struct DirectoryEntry {
  Extent extent;
  uint64_t tuple_count = 0;
};

struct Superblock {
  uint64_t page_count = 0;
  uint64_t num_nodes = 0;
  uint64_t num_edges = 0;
  uint64_t num_fragments = 0;
  uint64_t epoch = 0;
  bool has_coords = false;
  bool has_complementary = false;
  uint64_t comp_total_tuples = 0;
  uint64_t comp_searches = 0;
  Extent graph_extent;
  Extent assign_extent;
  Extent directory_extent;
  Extent witness_extent;
};

// ---------------------------------------------------------------------------
// Encoders (WireWriter — everything little-endian, fixed-width)

std::string EncodeGraphBlob(const Graph& g) {
  WireWriter w;
  w.PutU64(g.NumNodes());
  w.PutU64(g.NumEdges());
  w.PutU8(g.has_coordinates() ? 1 : 0);
  for (const Edge& e : g.edges()) {
    w.PutU32(e.src);
    w.PutU32(e.dst);
    w.PutF64(e.weight);
  }
  if (g.has_coordinates()) {
    for (const Point& p : g.coordinates()) {
      w.PutF64(p.x);
      w.PutF64(p.y);
    }
  }
  return w.TakeBuffer();
}

std::string EncodeAssignmentBlob(const Fragmentation& frag) {
  WireWriter w;
  w.PutU64(frag.fragment_of_edge().size());
  w.PutU64(frag.NumFragments());
  for (FragmentId owner : frag.fragment_of_edge()) w.PutU32(owner);
  return w.TakeBuffer();
}

Result<std::string> EncodeShortcutBlob(const Relation& shortcuts) {
  // Complementary precompute runs border-node searches on a pool, so tuple
  // arrival order is scheduling-dependent; sort a copy canonically so the
  // same database always produces the same bytes. The copy streams through
  // the cursor API, so re-saving a paged-open database works too — and a
  // paged scan that fails mid-way fails the save (a truncated blob must
  // never be written).
  std::vector<PathTuple> tuples;
  tuples.reserve(shortcuts.size());
  TCF_RETURN_NOT_OK(
      shortcuts.ForEach([&](const PathTuple& t) { tuples.push_back(t); }));
  std::sort(tuples.begin(), tuples.end(),
            [](const PathTuple& a, const PathTuple& b) {
              if (a.src != b.src) return a.src < b.src;
              if (a.dst != b.dst) return a.dst < b.dst;
              return a.cost < b.cost;
            });
  WireWriter w;
  w.PutU64(tuples.size());
  for (const PathTuple& t : tuples) {
    w.PutU32(t.src);
    w.PutU32(t.dst);
    w.PutF64(t.cost);
  }
  return w.TakeBuffer();
}

std::string EncodeWitnessBlob(
    const std::unordered_map<uint64_t, std::vector<NodeId>>& witness) {
  std::vector<uint64_t> keys;
  keys.reserve(witness.size());
  for (const auto& [key, route] : witness) keys.push_back(key);
  std::sort(keys.begin(), keys.end());  // deterministic bytes
  WireWriter w;
  w.PutU64(keys.size());
  for (uint64_t key : keys) {
    const std::vector<NodeId>& route = witness.at(key);
    w.PutU64(key);
    w.PutU32(static_cast<uint32_t>(route.size()));
    for (NodeId n : route) w.PutU32(n);
  }
  return w.TakeBuffer();
}

std::string EncodeDirectoryBlob(const std::vector<DirectoryEntry>& dir) {
  WireWriter w;
  w.PutU64(dir.size());
  for (const DirectoryEntry& e : dir) {
    w.PutU64(e.extent.first_page);
    w.PutU64(e.extent.byte_len);
    w.PutU64(e.tuple_count);
  }
  return w.TakeBuffer();
}

std::string EncodeSuperblockPayload(const Superblock& sb, size_t page_size) {
  WireWriter w;
  w.PutU64(kDbMagic);
  w.PutU32(kFormatVersion);
  w.PutU32(static_cast<uint32_t>(page_size));
  w.PutU64(sb.page_count);
  w.PutU64(sb.num_nodes);
  w.PutU64(sb.num_edges);
  w.PutU64(sb.num_fragments);
  w.PutU64(sb.epoch);
  w.PutU8(sb.has_coords ? 1 : 0);
  w.PutU8(sb.has_complementary ? 1 : 0);
  for (int i = 0; i < 6; ++i) w.PutU8(0);
  w.PutU64(sb.comp_total_tuples);
  w.PutU64(sb.comp_searches);
  for (const Extent* e : {&sb.graph_extent, &sb.assign_extent,
                          &sb.directory_extent, &sb.witness_extent}) {
    w.PutU64(e->first_page);
    w.PutU64(e->byte_len);
  }
  TCF_CHECK(w.size() == kSuperblockPayloadLen);
  return w.TakeBuffer();
}

/// Append `blob` to the end of `store` as sealed data pages; every page is
/// full except the last.
Status AppendBlob(PageStore& store, const std::string& blob,
                  Extent* extent) {
  const size_t page_size = store.page_size();
  const size_t capacity = PagePayloadCapacity(page_size);
  extent->first_page = store.page_count();
  extent->byte_len = blob.size();
  std::vector<uint8_t> page(page_size);
  size_t offset = 0;
  while (offset < blob.size()) {
    const size_t n = std::min(capacity, blob.size() - offset);
    std::memcpy(page.data() + kPageHeaderSize, blob.data() + offset, n);
    SealPage(page, PageType::kData, store.page_count(),
             static_cast<uint32_t>(n));
    TCF_RETURN_NOT_OK(store.WritePage(store.page_count(), page.data()));
    offset += n;
  }
  return Status::OK();
}

Status SaveDatabaseImpl(const DsaDatabase& db, uint64_t epoch,
                        const std::string& path, const SaveOptions& options) {
  if (!ValidPageSize(options.page_size)) {
    return Status::InvalidArgument(
        "SaveDatabase: page_size " + std::to_string(options.page_size) +
        " is not a power of two in [" + std::to_string(kMinPageSize) + ", " +
        std::to_string(kMaxPageSize) + "]");
  }
  const Fragmentation& frag = db.fragmentation();
  const Graph& g = frag.graph();

  const std::string tmp_path = path + ".tmp";
  auto store_result = FilePageStore::Create(tmp_path, options.page_size);
  if (!store_result.ok()) return store_result.status();
  std::unique_ptr<FilePageStore> store = std::move(store_result).value();

  // Page 0 is rewritten with the real superblock once the extents are
  // known; seal a placeholder so the file is never a valid database until
  // the final write (and the rename makes even that atomic).
  std::vector<uint8_t> page0(options.page_size);
  SealPage(page0, PageType::kSuperblock, 0, 0);
  TCF_RETURN_NOT_OK(store->WritePage(0, page0.data()));

  Superblock sb;
  sb.num_nodes = g.NumNodes();
  sb.num_edges = g.NumEdges();
  sb.num_fragments = frag.NumFragments();
  sb.epoch = epoch;
  sb.has_coords = g.has_coordinates();
  sb.has_complementary = db.options().use_complementary;
  sb.comp_total_tuples = db.complementary().total_tuples;
  sb.comp_searches = db.complementary().searches;

  TCF_RETURN_NOT_OK(AppendBlob(*store, EncodeGraphBlob(g), &sb.graph_extent));
  TCF_RETURN_NOT_OK(
      AppendBlob(*store, EncodeAssignmentBlob(frag), &sb.assign_extent));

  std::vector<DirectoryEntry> directory(frag.NumFragments());
  for (FragmentId f = 0; f < frag.NumFragments(); ++f) {
    const Relation& shortcuts = db.complementary().shortcuts[f];
    directory[f].tuple_count = shortcuts.size();
    Result<std::string> blob = EncodeShortcutBlob(shortcuts);
    if (!blob.ok()) return blob.status();
    TCF_RETURN_NOT_OK(AppendBlob(*store, std::move(blob).value(),
                                 &directory[f].extent));
  }
  TCF_RETURN_NOT_OK(AppendBlob(*store, EncodeDirectoryBlob(directory),
                               &sb.directory_extent));
  TCF_RETURN_NOT_OK(AppendBlob(*store,
                               EncodeWitnessBlob(db.complementary().witness),
                               &sb.witness_extent));

  sb.page_count = store->page_count();
  const std::string payload = EncodeSuperblockPayload(sb, options.page_size);
  std::memcpy(page0.data() + kPageHeaderSize, payload.data(), payload.size());
  SealPage(page0, PageType::kSuperblock, 0,
           static_cast<uint32_t>(payload.size()));
  TCF_RETURN_NOT_OK(store->WritePage(0, page0.data()));
  TCF_RETURN_NOT_OK(store->Sync());
  store.reset();  // close before rename

  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    return Status::IOError("rename " + tmp_path + " -> " + path + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Readers

/// Uniform page access for the two open paths. ReadPayload verifies the
/// page (checksum, header fields, index) and appends its payload bytes to
/// `out` (pass nullptr to verify only).
class PageSource {
 public:
  virtual ~PageSource() = default;
  virtual uint64_t page_count() const = 0;
  virtual size_t page_size() const = 0;
  virtual Status ReadPayload(uint64_t index, std::string* out) = 0;

 protected:
  static Status CheckAndAppend(std::span<const uint8_t> page, uint64_t index,
                               std::string* out) {
    Result<PageHeader> header = CheckPage(page, index);
    if (!header.ok()) return header.status();
    const PageType expected =
        index == 0 ? PageType::kSuperblock : PageType::kData;
    if (header.value().type != expected) {
      return Status::InvalidArgument(
          "page " + std::to_string(index) + ": unexpected page type " +
          std::to_string(static_cast<int>(header.value().type)));
    }
    if (out != nullptr) {
      out->append(reinterpret_cast<const char*>(page.data()) +
                      kPageHeaderSize,
                  header.value().payload_len);
    }
    return Status::OK();
  }
};

/// mmap fast path: pages are slices of one read-only mapping.
class MmapPageSource final : public PageSource {
 public:
  MmapPageSource(MmapFile file, size_t page_size)
      : file_(std::move(file)), page_size_(page_size) {}

  uint64_t page_count() const override {
    return file_.bytes().size() / page_size_;
  }
  size_t page_size() const override { return page_size_; }

  Status ReadPayload(uint64_t index, std::string* out) override {
    if (index >= page_count()) {
      return Status::OutOfRange("read of page " + std::to_string(index) +
                                " past end of file (" +
                                std::to_string(page_count()) + " pages)");
    }
    return CheckAndAppend(
        file_.bytes().subspan(index * page_size_, page_size_), index, out);
  }

 private:
  MmapFile file_;
  size_t page_size_;
};

/// Buffer-pool path: pages fault through a BufferPool over a FilePageStore.
class PoolPageSource final : public PageSource {
 public:
  PoolPageSource(std::unique_ptr<FilePageStore> store, size_t frames)
      : store_(std::move(store)), pool_(store_.get(), frames) {}

  uint64_t page_count() const override { return store_->page_count(); }
  size_t page_size() const override { return store_->page_size(); }

  Status ReadPayload(uint64_t index, std::string* out) override {
    Result<BufferPool::PageRef> ref = pool_.Pin(index);
    if (!ref.ok()) return ref.status();
    return CheckAndAppend({ref.value().data(), page_size()}, index, out);
  }

 private:
  std::unique_ptr<FilePageStore> store_;
  BufferPool pool_;
};

/// Paged-open path: the same pool the paged relations will use afterwards,
/// so open-time verification warms the very frames queries read through.
class SharedPoolPageSource final : public PageSource {
 public:
  explicit SharedPoolPageSource(std::shared_ptr<PagedFile> file)
      : file_(std::move(file)) {}

  uint64_t page_count() const override { return file_->page_count(); }
  size_t page_size() const override { return file_->page_size(); }

  Status ReadPayload(uint64_t index, std::string* out) override {
    Result<BufferPool::PageRef> ref = file_->pool().Pin(index);
    if (!ref.ok()) return ref.status();
    return CheckAndAppend({ref.value().data(), page_size()}, index, out);
  }

 private:
  std::shared_ptr<PagedFile> file_;
};

/// Reassemble the blob stored in `extent`. Every page of the run must be
/// full except the last (strictness: a checksummed-valid file whose page
/// fill pattern disagrees with its extents is still rejected).
Result<std::string> ReadExtent(PageSource& source, const Extent& extent,
                               const char* what) {
  const size_t capacity = PagePayloadCapacity(source.page_size());
  const std::string context = std::string(what) + " extent";
  if (extent.byte_len == 0) return std::string();
  const uint64_t max_bytes = source.page_count() * capacity;
  if (extent.byte_len > max_bytes) {
    return Status::InvalidArgument(context + ": byte length " +
                                   std::to_string(extent.byte_len) +
                                   " exceeds file capacity");
  }
  const uint64_t num_pages = (extent.byte_len + capacity - 1) / capacity;
  if (extent.first_page == 0 ||
      extent.first_page + num_pages > source.page_count()) {
    return Status::InvalidArgument(
        context + ": pages [" + std::to_string(extent.first_page) + ", " +
        std::to_string(extent.first_page + num_pages) +
        ") out of bounds (file has " + std::to_string(source.page_count()) +
        " pages)");
  }
  std::string blob;
  blob.reserve(extent.byte_len);
  for (uint64_t i = 0; i < num_pages; ++i) {
    const size_t before = blob.size();
    TCF_RETURN_NOT_OK(source.ReadPayload(extent.first_page + i, &blob));
    const size_t got = blob.size() - before;
    const size_t expected = (i + 1 < num_pages)
                                ? capacity
                                : extent.byte_len - i * capacity;
    if (got != expected) {
      return Status::InvalidArgument(
          context + ": page " + std::to_string(extent.first_page + i) +
          " holds " + std::to_string(got) + " payload bytes, expected " +
          std::to_string(expected));
    }
  }
  return blob;
}

// ---------------------------------------------------------------------------
// Decoders

/// Guard a count declared in a blob against the bytes that could possibly
/// back it, BEFORE reserving memory for it.
Status CheckDeclaredCount(uint64_t count, size_t min_bytes_per_item,
                          const WireReader& reader, const char* what) {
  if (min_bytes_per_item != 0 &&
      count > reader.remaining() / min_bytes_per_item) {
    return Status::InvalidArgument(
        std::string(what) + ": declared count " + std::to_string(count) +
        " cannot fit in " + std::to_string(reader.remaining()) +
        " remaining bytes");
  }
  return Status::OK();
}

Result<Superblock> DecodeSuperblock(const std::string& payload,
                                    size_t page_size, uint64_t page_count) {
  if (payload.size() != kSuperblockPayloadLen) {
    return Status::InvalidArgument(
        "superblock: payload is " + std::to_string(payload.size()) +
        " bytes, expected " + std::to_string(kSuperblockPayloadLen));
  }
  WireReader r(payload);
  Superblock sb;
  uint64_t magic = 0;
  uint32_t version = 0, stored_page_size = 0;
  uint8_t has_coords = 0, has_complementary = 0;
  bool ok = r.ReadU64(&magic) && r.ReadU32(&version) &&
            r.ReadU32(&stored_page_size) && r.ReadU64(&sb.page_count) &&
            r.ReadU64(&sb.num_nodes) && r.ReadU64(&sb.num_edges) &&
            r.ReadU64(&sb.num_fragments) && r.ReadU64(&sb.epoch) &&
            r.ReadU8(&has_coords) && r.ReadU8(&has_complementary);
  uint8_t reserved_or = 0;
  for (int i = 0; ok && i < 6; ++i) {
    uint8_t b = 0;
    ok = r.ReadU8(&b);
    reserved_or |= b;
  }
  ok = ok && r.ReadU64(&sb.comp_total_tuples) && r.ReadU64(&sb.comp_searches);
  for (Extent* e : {&sb.graph_extent, &sb.assign_extent, &sb.directory_extent,
                    &sb.witness_extent}) {
    ok = ok && r.ReadU64(&e->first_page) && r.ReadU64(&e->byte_len);
  }
  TCF_CHECK(ok && r.exhausted());  // length was checked above
  // Magic / version / page_size were already probed; mismatches here would
  // mean the probe read different bytes than the verified page — internal.
  TCF_CHECK(magic == kDbMagic && version == kFormatVersion &&
            stored_page_size == page_size);
  if (reserved_or != 0) {
    return Status::InvalidArgument(
        "superblock: reserved bytes are nonzero");
  }
  if (has_coords > 1 || has_complementary > 1) {
    return Status::InvalidArgument("superblock: flag bytes must be 0 or 1");
  }
  sb.has_coords = has_coords == 1;
  sb.has_complementary = has_complementary == 1;
  if (sb.page_count != page_count) {
    return Status::InvalidArgument(
        "superblock: declares " + std::to_string(sb.page_count) +
        " pages but the file holds " + std::to_string(page_count) +
        " (truncated or grown)");
  }
  if (sb.num_nodes >= kInvalidNode) {
    return Status::OutOfRange("superblock: node count " +
                              std::to_string(sb.num_nodes) +
                              " exceeds the 32-bit node id space");
  }
  if (sb.num_edges >= std::numeric_limits<EdgeId>::max()) {
    return Status::OutOfRange("superblock: edge count " +
                              std::to_string(sb.num_edges) +
                              " exceeds the 32-bit edge id space");
  }
  if (sb.num_fragments >= Fragmentation::kInvalidFragment) {
    return Status::OutOfRange("superblock: fragment count " +
                              std::to_string(sb.num_fragments) +
                              " exceeds the 32-bit fragment id space");
  }
  return sb;
}

Result<Graph> DecodeGraphBlob(const std::string& blob, const Superblock& sb) {
  WireReader r(blob);
  uint64_t num_nodes = 0, num_edges = 0;
  uint8_t has_coords = 0;
  if (!r.ReadU64(&num_nodes) || !r.ReadU64(&num_edges) ||
      !r.ReadU8(&has_coords)) {
    return Status::InvalidArgument("graph blob: truncated header");
  }
  if (num_nodes != sb.num_nodes || num_edges != sb.num_edges ||
      (has_coords == 1) != sb.has_coords || has_coords > 1) {
    return Status::InvalidArgument(
        "graph blob: header disagrees with the superblock");
  }
  TCF_RETURN_NOT_OK(CheckDeclaredCount(num_edges, 16, r, "graph blob edges"));
  GraphBuilder builder;
  if (has_coords == 1) {
    // Coordinates trail the edges; sizes are fixed, so pre-validate the
    // total before building.
    if (r.remaining() != num_edges * 16 + num_nodes * 16) {
      return Status::InvalidArgument(
          "graph blob: size does not match declared counts");
    }
  } else if (r.remaining() != num_edges * 16) {
    return Status::InvalidArgument(
        "graph blob: size does not match declared counts");
  }
  std::vector<Edge> edges;
  edges.reserve(num_edges);
  for (uint64_t i = 0; i < num_edges; ++i) {
    uint32_t src = 0, dst = 0;
    double weight = 0.0;
    TCF_CHECK(r.ReadU32(&src) && r.ReadU32(&dst) && r.ReadF64(&weight));
    if (src >= num_nodes || dst >= num_nodes) {
      return Status::OutOfRange("graph blob: edge " + std::to_string(i) +
                                " endpoint out of range");
    }
    if (!std::isfinite(weight) || weight < 0.0) {
      return Status::InvalidArgument("graph blob: edge " + std::to_string(i) +
                                     " has a non-finite or negative weight");
    }
    edges.push_back(Edge{src, dst, weight});
  }
  if (has_coords == 1) {
    for (uint64_t i = 0; i < num_nodes; ++i) {
      double x = 0.0, y = 0.0;
      TCF_CHECK(r.ReadF64(&x) && r.ReadF64(&y));
      if (!std::isfinite(x) || !std::isfinite(y)) {
        return Status::InvalidArgument("graph blob: coordinate " +
                                       std::to_string(i) + " is not finite");
      }
      builder.AddNode(Point{x, y});
    }
  } else {
    builder.EnsureNodes(num_nodes);
  }
  TCF_CHECK(r.exhausted());
  for (const Edge& e : edges) builder.AddEdge(e.src, e.dst, e.weight);
  return builder.Build();
}

Result<std::vector<FragmentId>> DecodeAssignmentBlob(const std::string& blob,
                                                     const Superblock& sb) {
  WireReader r(blob);
  uint64_t num_edges = 0, num_fragments = 0;
  if (!r.ReadU64(&num_edges) || !r.ReadU64(&num_fragments)) {
    return Status::InvalidArgument("assignment blob: truncated header");
  }
  if (num_edges != sb.num_edges || num_fragments != sb.num_fragments) {
    return Status::InvalidArgument(
        "assignment blob: header disagrees with the superblock");
  }
  if (r.remaining() != num_edges * 4) {
    return Status::InvalidArgument(
        "assignment blob: size does not match declared edge count");
  }
  std::vector<FragmentId> owners;
  owners.reserve(num_edges);
  for (uint64_t i = 0; i < num_edges; ++i) {
    uint32_t owner = 0;
    TCF_CHECK(r.ReadU32(&owner));
    if (owner >= num_fragments) {
      return Status::OutOfRange("assignment blob: edge " + std::to_string(i) +
                                " assigned to nonexistent fragment " +
                                std::to_string(owner));
    }
    owners.push_back(owner);
  }
  TCF_CHECK(r.exhausted());
  return owners;
}

Result<std::vector<DirectoryEntry>> DecodeDirectoryBlob(
    const std::string& blob, const Superblock& sb) {
  WireReader r(blob);
  uint64_t num_fragments = 0;
  if (!r.ReadU64(&num_fragments)) {
    return Status::InvalidArgument("directory blob: truncated header");
  }
  if (num_fragments != sb.num_fragments) {
    return Status::InvalidArgument(
        "directory blob: fragment count disagrees with the superblock");
  }
  if (r.remaining() != num_fragments * 24) {
    return Status::InvalidArgument(
        "directory blob: size does not match declared fragment count");
  }
  std::vector<DirectoryEntry> directory(num_fragments);
  for (DirectoryEntry& entry : directory) {
    TCF_CHECK(r.ReadU64(&entry.extent.first_page) &&
              r.ReadU64(&entry.extent.byte_len) &&
              r.ReadU64(&entry.tuple_count));
  }
  TCF_CHECK(r.exhausted());
  return directory;
}

Result<Relation> DecodeShortcutBlob(const std::string& blob,
                                    const DirectoryEntry& entry,
                                    const Fragmentation& frag, FragmentId f) {
  const std::string context = "fragment " + std::to_string(f) + " shortcuts";
  WireReader r(blob);
  uint64_t count = 0;
  if (!r.ReadU64(&count)) {
    return Status::InvalidArgument(context + ": truncated header");
  }
  if (count != entry.tuple_count) {
    return Status::InvalidArgument(
        context + ": blob declares " + std::to_string(count) +
        " tuples, directory says " + std::to_string(entry.tuple_count));
  }
  if (r.remaining() != count * 16) {
    return Status::InvalidArgument(
        context + ": size does not match declared tuple count");
  }
  const std::vector<NodeId>& border = frag.BorderNodes(f);
  auto is_border = [&border](NodeId n) {
    return std::binary_search(border.begin(), border.end(), n);
  };
  std::vector<PathTuple> tuples;
  tuples.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t src = 0, dst = 0;
    double cost = 0.0;
    TCF_CHECK(r.ReadU32(&src) && r.ReadU32(&dst) && r.ReadF64(&cost));
    if (!is_border(src) || !is_border(dst)) {
      return Status::InvalidArgument(
          context + ": tuple " + std::to_string(i) + " (" +
          std::to_string(src) + " -> " + std::to_string(dst) +
          ") joins nodes that are not border nodes of this fragment");
    }
    if (!std::isfinite(cost) || cost < 0.0) {
      return Status::InvalidArgument(context + ": tuple " +
                                     std::to_string(i) +
                                     " has a non-finite or negative cost");
    }
    tuples.push_back(PathTuple{src, dst, cost});
  }
  TCF_CHECK(r.exhausted());
  return Relation(std::move(tuples));
}

Status DecodeWitnessBlob(
    const std::string& blob, uint64_t num_nodes,
    std::unordered_map<uint64_t, std::vector<NodeId>>* witness) {
  WireReader r(blob);
  uint64_t count = 0;
  if (!r.ReadU64(&count)) {
    return Status::InvalidArgument("witness blob: truncated header");
  }
  TCF_RETURN_NOT_OK(CheckDeclaredCount(count, 12, r, "witness blob"));
  witness->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    const std::string context = "witness blob entry " + std::to_string(i);
    uint64_t key = 0;
    uint32_t length = 0;
    if (!r.ReadU64(&key) || !r.ReadU32(&length)) {
      return Status::InvalidArgument(context + ": truncated");
    }
    if (length < 2 || length > num_nodes) {
      return Status::InvalidArgument(
          context + ": route length " + std::to_string(length) +
          " outside [2, " + std::to_string(num_nodes) + "]");
    }
    if (length > r.remaining() / 4) {
      return Status::InvalidArgument(context + ": route overruns the blob");
    }
    std::vector<NodeId> route;
    route.reserve(length);
    for (uint32_t j = 0; j < length; ++j) {
      uint32_t node = 0;
      TCF_CHECK(r.ReadU32(&node));
      if (node >= num_nodes) {
        return Status::OutOfRange(context + ": node " + std::to_string(node) +
                                  " out of range");
      }
      route.push_back(node);
    }
    // The key encodes the route's endpoints (PairKey(src, dst)).
    const NodeId key_src = static_cast<NodeId>(key >> 32);
    const NodeId key_dst = static_cast<NodeId>(key & 0xffffffffu);
    if (route.front() != key_src || route.back() != key_dst) {
      return Status::InvalidArgument(
          context + ": route endpoints do not match its key");
    }
    if (!witness->emplace(key, std::move(route)).second) {
      return Status::InvalidArgument(context + ": duplicate key");
    }
  }
  if (!r.exhausted()) {
    return Status::InvalidArgument("witness blob: trailing bytes");
  }
  return Status::OK();
}

/// Probe the fixed-offset fields of page 0 without trusting anything else,
/// so "is this a database at all / which version / which page size" can be
/// answered before page-level verification (whose geometry depends on the
/// answer). docs/STORAGE.md "Opening a file".
Result<size_t> ProbePageSize(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("no database at " + path);
    }
    return Status::IOError("open " + path + ": " + std::strerror(errno));
  }
  uint8_t probe[kProbeBytes];
  size_t done = 0;
  while (done < sizeof(probe)) {
    const ssize_t n = ::read(fd, probe + done, sizeof(probe) - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status status =
          Status::IOError("read " + path + ": " + std::strerror(errno));
      ::close(fd);
      return status;
    }
    if (n == 0) break;
    done += static_cast<size_t>(n);
  }
  ::close(fd);
  if (done < sizeof(probe)) {
    return Status::InvalidArgument(path +
                                   ": too small to be a tcfrag database");
  }
  if (LoadU64(probe + kProbeMagicOffset) != kDbMagic) {
    return Status::InvalidArgument(path +
                                   ": bad magic (not a tcfrag database)");
  }
  const uint32_t version = LoadU32(probe + kProbeVersionOffset);
  if (version != kFormatVersion) {
    return Status::FailedPrecondition(
        path + ": format version " + std::to_string(version) +
        " (this build reads version " + std::to_string(kFormatVersion) +
        ")");
  }
  const uint32_t page_size = LoadU32(probe + kProbePageSizeOffset);
  if (!ValidPageSize(page_size)) {
    return Status::InvalidArgument(path + ": invalid page size " +
                                   std::to_string(page_size));
  }
  return static_cast<size_t>(page_size);
}

}  // namespace

Status SaveDatabase(const DsaDatabase& db, const std::string& path,
                    const SaveOptions& options) {
  return SaveDatabaseImpl(db, db.epoch(), path, options);
}

Status SaveDatabase(const MaintainedDatabase& mdb, const std::string& path,
                    const SaveOptions& options) {
  const DsaSnapshot snapshot = mdb.Snapshot();  // pin: immutable while saving
  return SaveDatabaseImpl(*snapshot.db, snapshot.epoch, path, options);
}

Result<StoredDatabase> OpenDatabase(const std::string& path,
                                    const OpenOptions& options) {
  Result<size_t> probed = ProbePageSize(path);
  if (!probed.ok()) return probed.status();
  const size_t page_size = probed.value();

  std::unique_ptr<PageSource> source;
  std::shared_ptr<PagedFile> paged_file;
  if (options.mode == OpenMode::kPaged) {
    // A budget, when given, overrides buffer_pool_frames (documented in
    // OpenOptions). The pool needs at least 2 frames to make progress
    // (one transient scan pin plus one fault-in); rather than silently
    // inflating an impossible budget to that floor, reject it so the
    // caller learns their sizing never took effect.
    size_t frames = std::max<size_t>(options.buffer_pool_frames, 2);
    if (options.memory_budget_bytes > 0) {
      if (options.memory_budget_bytes < 2 * page_size) {
        return Status::InvalidArgument(
            path + ": memory_budget_bytes " +
            std::to_string(options.memory_budget_bytes) +
            " is below the 2-frame minimum (" +
            std::to_string(2 * page_size) + " bytes at page size " +
            std::to_string(page_size) + ")");
      }
      frames = options.memory_budget_bytes / page_size;
    }
    Result<std::shared_ptr<PagedFile>> file =
        PagedFile::Open(path, page_size, frames);
    if (!file.ok()) return file.status();
    paged_file = std::move(file).value();
    source = std::make_unique<SharedPoolPageSource>(paged_file);
  } else if (options.use_mmap) {
    Result<MmapFile> mapped = MmapFile::Map(path);
    if (!mapped.ok()) return mapped.status();
    if (mapped.value().bytes().size() % page_size != 0) {
      return Status::InvalidArgument(
          path + ": file size " +
          std::to_string(mapped.value().bytes().size()) +
          " is not a multiple of page size " + std::to_string(page_size) +
          " (truncated or not a tcfrag database)");
    }
    source = std::make_unique<MmapPageSource>(std::move(mapped).value(),
                                              page_size);
  } else {
    auto store = FilePageStore::Open(path, page_size, /*read_only=*/true);
    if (!store.ok()) return store.status();
    source = std::make_unique<PoolPageSource>(
        std::move(store).value(),
        options.buffer_pool_frames > 0 ? options.buffer_pool_frames : 1);
  }

  if (options.verify_checksums) {
    // The corruption-detection contract: any flipped bit anywhere in the
    // file fails here, before any byte is interpreted.
    for (uint64_t i = 0; i < source->page_count(); ++i) {
      TCF_RETURN_NOT_OK(source->ReadPayload(i, nullptr));
    }
  }

  std::string superblock_payload;
  TCF_RETURN_NOT_OK(source->ReadPayload(0, &superblock_payload));
  Result<Superblock> sb_result =
      DecodeSuperblock(superblock_payload, page_size, source->page_count());
  if (!sb_result.ok()) return sb_result.status();
  const Superblock& sb = sb_result.value();

  if (!sb.has_complementary && options.dsa.use_complementary) {
    return Status::FailedPrecondition(
        path + ": saved without complementary information; open with "
        "DsaOptions::use_complementary = false");
  }

  Result<std::string> graph_blob =
      ReadExtent(*source, sb.graph_extent, "graph");
  if (!graph_blob.ok()) return graph_blob.status();
  Result<Graph> graph_result = DecodeGraphBlob(graph_blob.value(), sb);
  if (!graph_result.ok()) return graph_result.status();
  auto graph =
      std::make_shared<const Graph>(std::move(graph_result).value());

  Result<std::string> assign_blob =
      ReadExtent(*source, sb.assign_extent, "assignment");
  if (!assign_blob.ok()) return assign_blob.status();
  Result<std::vector<FragmentId>> owners_result =
      DecodeAssignmentBlob(assign_blob.value(), sb);
  if (!owners_result.ok()) return owners_result.status();
  std::vector<FragmentId> owners = std::move(owners_result).value();

  // Ownership chain mirrors DsaSnapshot: the fragmentation keeps its graph
  // alive, the database keeps its fragmentation alive.
  std::shared_ptr<const Fragmentation> frag(
      new Fragmentation(graph.get(), owners, sb.num_fragments),
      [graph](const Fragmentation* p) { delete p; });
  // Fragmentation compacts empty fragments away. A stored assignment that
  // compacts differently would silently desynchronize the fragment
  // directory, so require the stored form to already be compact.
  if (frag->NumFragments() != sb.num_fragments ||
      frag->fragment_of_edge() != owners) {
    return Status::FailedPrecondition(
        path + ": stored fragment assignment is not compact (contains "
        "empty fragments); refusing to renumber");
  }

  Result<std::string> dir_blob =
      ReadExtent(*source, sb.directory_extent, "directory");
  if (!dir_blob.ok()) return dir_blob.status();
  Result<std::vector<DirectoryEntry>> dir_result =
      DecodeDirectoryBlob(dir_blob.value(), sb);
  if (!dir_result.ok()) return dir_result.status();
  const std::vector<DirectoryEntry>& directory = dir_result.value();

  ComplementaryInfo complementary;
  complementary.shortcuts.reserve(directory.size());
  uint64_t total_tuples = 0;
  for (FragmentId f = 0; f < directory.size(); ++f) {
    Result<std::string> blob = ReadExtent(
        *source, directory[f].extent,
        ("fragment " + std::to_string(f) + " shortcuts").c_str());
    if (!blob.ok()) return blob.status();
    // Decode (and thereby validate — tuple counts, border membership,
    // finite costs) even when opening paged: the corruption contract is
    // identical in both modes, and the transient decode is bounded by one
    // fragment's blob at a time.
    Result<Relation> shortcuts =
        DecodeShortcutBlob(blob.value(), directory[f], *frag, f);
    if (!shortcuts.ok()) return shortcuts.status();
    total_tuples += shortcuts.value().size();
    if (options.mode == OpenMode::kPaged) {
      // Discard the decoded copy; queries re-read tuples lazily through
      // the shared pool, pinning only the extents their plans touch.
      complementary.shortcuts.push_back(
          Relation(std::make_shared<PagedTupleStore>(
              paged_file, directory[f].extent, directory[f].tuple_count)));
    } else {
      complementary.shortcuts.push_back(std::move(shortcuts).value());
    }
  }
  if (sb.has_complementary && total_tuples != sb.comp_total_tuples) {
    return Status::InvalidArgument(
        path + ": superblock declares " +
        std::to_string(sb.comp_total_tuples) +
        " complementary tuples, directory holds " +
        std::to_string(total_tuples));
  }
  complementary.total_tuples = sb.comp_total_tuples;
  complementary.searches = sb.comp_searches;

  Result<std::string> witness_blob =
      ReadExtent(*source, sb.witness_extent, "witness");
  if (!witness_blob.ok()) return witness_blob.status();
  TCF_RETURN_NOT_OK(DecodeWitnessBlob(witness_blob.value(), sb.num_nodes,
                                      &complementary.witness));

  EpochCarryover carry;
  carry.complementary = std::move(complementary);
  carry.epoch = sb.epoch;
  std::shared_ptr<const DsaDatabase> db(
      new DsaDatabase(frag.get(), options.dsa, std::move(carry)),
      [frag](const DsaDatabase* p) { delete p; });

  StoredDatabase stored;
  stored.epoch = sb.epoch;
  stored.graph = std::move(graph);
  stored.frag = std::move(frag);
  stored.db = std::move(db);
  stored.paged_file = std::move(paged_file);
  return stored;
}

Result<std::unique_ptr<MaintainedDatabase>> OpenMaintainedDatabase(
    const std::string& path, const OpenOptions& options,
    std::shared_ptr<PagedFile>* paged_file_out) {
  Result<StoredDatabase> stored = OpenDatabase(path, options);
  if (!stored.ok()) return stored.status();
  StoredDatabase sd = std::move(stored).value();
  if (paged_file_out != nullptr) *paged_file_out = sd.paged_file;
  DsaSnapshot snapshot;
  snapshot.epoch = sd.epoch;
  snapshot.graph = std::move(sd.graph);
  snapshot.frag = std::move(sd.frag);
  snapshot.db = std::move(sd.db);
  return std::make_unique<MaintainedDatabase>(std::move(snapshot),
                                              options.dsa);
}

}  // namespace tcf
