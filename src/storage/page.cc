#include "storage/page.h"

#include <cstring>
#include <string>

#include "storage/crc32c.h"

namespace tcf {

namespace {

// Header byte offsets (docs/STORAGE.md "Page header").
constexpr size_t kOffChecksum = 0;   // u32; CRC32C of bytes [4, page_size)
constexpr size_t kOffType = 4;       // u8
constexpr size_t kOffReserved1 = 5;  // u8[3], must be zero
constexpr size_t kOffPageIndex = 8;  // u64
constexpr size_t kOffPayloadLen = 16;  // u32
constexpr size_t kOffReserved2 = 20;   // u32, must be zero

}  // namespace

bool ValidPageSize(size_t page_size) {
  return page_size >= kMinPageSize && page_size <= kMaxPageSize &&
         (page_size & (page_size - 1)) == 0;
}

uint32_t LoadU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

uint64_t LoadU64(const uint8_t* p) {
  return static_cast<uint64_t>(LoadU32(p)) |
         static_cast<uint64_t>(LoadU32(p + 4)) << 32;
}

void StoreU32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}

void StoreU64(uint8_t* p, uint64_t v) {
  StoreU32(p, static_cast<uint32_t>(v));
  StoreU32(p + 4, static_cast<uint32_t>(v >> 32));
}

void SealPage(std::span<uint8_t> page, PageType type, uint64_t page_index,
              uint32_t payload_len) {
  TCF_CHECK(ValidPageSize(page.size()));
  TCF_CHECK(payload_len <= PagePayloadCapacity(page.size()));
  uint8_t* p = page.data();
  p[kOffType] = static_cast<uint8_t>(type);
  std::memset(p + kOffReserved1, 0, 3);
  StoreU64(p + kOffPageIndex, page_index);
  StoreU32(p + kOffPayloadLen, payload_len);
  StoreU32(p + kOffReserved2, 0);
  std::memset(p + kPageHeaderSize + payload_len, 0,
              page.size() - kPageHeaderSize - payload_len);
  StoreU32(p + kOffChecksum, Crc32c(p + 4, page.size() - 4));
}

Result<PageHeader> CheckPage(std::span<const uint8_t> page,
                             uint64_t expected_index) {
  if (!ValidPageSize(page.size())) {
    return Status::InvalidArgument("CheckPage: bad page buffer size " +
                                   std::to_string(page.size()));
  }
  const uint8_t* p = page.data();
  const uint32_t stored = LoadU32(p + kOffChecksum);
  const uint32_t actual = Crc32c(p + 4, page.size() - 4);
  if (stored != actual) {
    return Status::IOError("page " + std::to_string(expected_index) +
                           ": checksum mismatch (stored " +
                           std::to_string(stored) + ", computed " +
                           std::to_string(actual) + ")");
  }
  const uint8_t type = p[kOffType];
  if (type != static_cast<uint8_t>(PageType::kSuperblock) &&
      type != static_cast<uint8_t>(PageType::kData)) {
    return Status::InvalidArgument("page " + std::to_string(expected_index) +
                                   ": unknown page type " +
                                   std::to_string(type));
  }
  if (p[kOffReserved1] != 0 || p[kOffReserved1 + 1] != 0 ||
      p[kOffReserved1 + 2] != 0 || LoadU32(p + kOffReserved2) != 0) {
    return Status::InvalidArgument("page " + std::to_string(expected_index) +
                                   ": reserved header bytes are nonzero");
  }
  const uint64_t self_index = LoadU64(p + kOffPageIndex);
  if (self_index != expected_index) {
    return Status::InvalidArgument(
        "page " + std::to_string(expected_index) +
        ": self-declared index is " + std::to_string(self_index) +
        " (page written to or read from the wrong offset)");
  }
  const uint32_t payload_len = LoadU32(p + kOffPayloadLen);
  if (payload_len > PagePayloadCapacity(page.size())) {
    return Status::OutOfRange("page " + std::to_string(expected_index) +
                              ": payload_len " + std::to_string(payload_len) +
                              " exceeds page capacity " +
                              std::to_string(PagePayloadCapacity(page.size())));
  }
  PageHeader header;
  header.type = static_cast<PageType>(type);
  header.page_index = self_index;
  header.payload_len = payload_len;
  return header;
}

}  // namespace tcf
