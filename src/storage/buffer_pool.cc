#include "storage/buffer_pool.h"

#include <string>
#include <utility>

namespace tcf {

BufferPool::PageRef& BufferPool::PageRef::operator=(PageRef&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = std::exchange(other.pool_, nullptr);
    frame_ = other.frame_;
    page_index_ = other.page_index_;
    data_ = std::exchange(other.data_, nullptr);
  }
  return *this;
}

uint8_t* BufferPool::PageRef::MutableData() {
  TCF_CHECK(pool_ != nullptr);
  pool_->MarkDirty(frame_);
  return data_;
}

void BufferPool::PageRef::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_);
    pool_ = nullptr;
    data_ = nullptr;
  }
}

BufferPool::BufferPool(PageStore* store, size_t num_frames,
                       PageVerifier verifier)
    : store_(store),
      page_size_(store->page_size()),
      verifier_(std::move(verifier)) {
  TCF_CHECK(num_frames > 0);
  frames_.resize(num_frames);
  storage_.resize(num_frames * page_size_);
  page_to_frame_.reserve(num_frames);
}

Result<BufferPool::PageRef> BufferPool::Pin(uint64_t page_index) {
  std::lock_guard<std::mutex> lock(mutex_);

  auto it = page_to_frame_.find(page_index);
  if (it != page_to_frame_.end()) {
    Frame& frame = frames_[it->second];
    ++frame.pin_count;
    if (frame.pin_count == 1) NotePinnedLocked();
    frame.referenced = true;
    ++stats_.hits;
    return PageRef(this, it->second, page_index, FrameData(it->second));
  }

  ++stats_.misses;
  Result<size_t> victim = FindVictimLocked();
  if (!victim.ok()) {
    ++stats_.pin_failures;
    return victim.status();
  }
  const size_t frame_idx = victim.value();
  TCF_RETURN_NOT_OK(EvictLocked(frame_idx));

  // The frame is free; fault the page in. On read or verification failure
  // the frame stays unoccupied and the pool is unchanged.
  TCF_RETURN_NOT_OK(store_->ReadPage(page_index, FrameData(frame_idx)));
  if (verifier_ != nullptr) {
    // Verify-on-fault-in: a page only ever becomes resident after passing
    // the verifier, so hits (and every later read of pooled bytes) are
    // covered without re-checking — the §5.1 contract for caches.
    TCF_RETURN_NOT_OK(
        verifier_({FrameData(frame_idx), page_size_}, page_index));
  }

  Frame& frame = frames_[frame_idx];
  frame.page_index = page_index;
  frame.pin_count = 1;
  frame.occupied = true;
  frame.dirty = false;
  frame.referenced = true;
  NotePinnedLocked();
  page_to_frame_[page_index] = frame_idx;
  return PageRef(this, frame_idx, page_index, FrameData(frame_idx));
}

Result<size_t> BufferPool::FindVictimLocked() {
  // Classic clock: sweep, clearing second-chance bits; an unpinned frame
  // with its bit already clear is the victim. Two full sweeps guarantee we
  // either find one or prove every frame is pinned.
  for (size_t step = 0; step < 2 * frames_.size(); ++step) {
    Frame& frame = frames_[clock_hand_];
    const size_t candidate = clock_hand_;
    clock_hand_ = (clock_hand_ + 1) % frames_.size();
    if (!frame.occupied) return candidate;
    if (frame.pin_count > 0) continue;
    if (frame.referenced) {
      frame.referenced = false;
      continue;
    }
    return candidate;
  }
  return Status::FailedPrecondition(
      "BufferPool: cannot evict: all " + std::to_string(frames_.size()) +
      " frames hold pinned pages (" + std::to_string(stats_.pinned_frames) +
      " pinned); release a PageRef or open with more frames");
}

Status BufferPool::EvictLocked(size_t frame_idx) {
  Frame& frame = frames_[frame_idx];
  if (!frame.occupied) return Status::OK();
  TCF_CHECK(frame.pin_count == 0);
  if (frame.dirty) {
    TCF_RETURN_NOT_OK(store_->WritePage(frame.page_index,
                                        FrameData(frame_idx)));
    ++stats_.writebacks;
  }
  page_to_frame_.erase(frame.page_index);
  frame.occupied = false;
  frame.dirty = false;
  frame.referenced = false;
  ++stats_.evictions;
  return Status::OK();
}

Status BufferPool::FlushAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (size_t i = 0; i < frames_.size(); ++i) {
    Frame& frame = frames_[i];
    if (frame.occupied && frame.dirty) {
      TCF_RETURN_NOT_OK(store_->WritePage(frame.page_index, FrameData(i)));
      frame.dirty = false;
      ++stats_.writebacks;
    }
  }
  return store_->Sync();
}

BufferPoolStats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void BufferPool::Unpin(size_t frame_idx) {
  std::lock_guard<std::mutex> lock(mutex_);
  Frame& frame = frames_[frame_idx];
  TCF_CHECK(frame.pin_count > 0);
  --frame.pin_count;
  if (frame.pin_count == 0) {
    TCF_CHECK(stats_.pinned_frames > 0);
    --stats_.pinned_frames;
  }
}

void BufferPool::MarkDirty(size_t frame_idx) {
  std::lock_guard<std::mutex> lock(mutex_);
  frames_[frame_idx].dirty = true;
}

}  // namespace tcf
