// A small page cache between readers and a PageStore: a fixed set of
// page-sized frames, pin/unpin reference counting, clock (second-chance)
// eviction that never touches a pinned frame, and dirty-page writeback on
// eviction or FlushAll. This is the seam ROADMAP item 4 asks for — the
// structure that will let fragment relations spill to disk once queries
// read through it; today OpenDatabase uses it as the non-mmap read path and
// tests hammer it directly (tests/buffer_pool_test.cc).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "storage/page_store.h"
#include "util/status.h"

namespace tcf {

/// Counters for observability and tests. A hit is a Pin() that found the
/// page resident; an eviction is a frame reassigned to a new page; a
/// writeback is a dirty frame written to the store (eviction or flush); a
/// pin failure is a Pin() rejected because every frame was pinned.
/// `pinned_frames` / `peak_pinned_frames` count frames with at least one
/// outstanding pin (now / high-water) — the "peak pinned pages" series the
/// paged-query bench reports.
struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t writebacks = 0;
  uint64_t pin_failures = 0;
  uint64_t pinned_frames = 0;
  uint64_t peak_pinned_frames = 0;

  double HitRate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

/// Thread-safe (one coarse mutex — the pool serializes its PageStore, which
/// is allowed to be single-threaded). Frames are allocated up front:
/// `num_frames * page_size` bytes for the life of the pool.
class BufferPool {
 public:
  /// Ran on every miss-path fault-in, after the store read and before the
  /// page becomes resident (and thus before any hit can serve it). A
  /// non-OK return fails the Pin with that Status and leaves the pool
  /// unchanged, so a page that ever made it into a frame is known-good —
  /// readers of pooled bytes need no per-read re-verification. Called
  /// under the pool mutex; must not call back into the pool.
  using PageVerifier =
      std::function<Status(std::span<const uint8_t> page,
                           uint64_t page_index)>;

  /// A null `verifier` admits pages unverified (callers verify reads
  /// themselves); database files install a checksum verifier so fault-ins
  /// uphold the corruption contract (docs/STORAGE.md §5.1).
  BufferPool(PageStore* store, size_t num_frames,
             PageVerifier verifier = nullptr);

  /// RAII pin on a resident page. While any PageRef to a page is live, its
  /// frame will not be evicted and its bytes will not move. Move-only.
  class PageRef {
   public:
    PageRef() = default;
    ~PageRef() { Release(); }
    PageRef(PageRef&& other) noexcept { *this = std::move(other); }
    PageRef& operator=(PageRef&& other) noexcept;
    PageRef(const PageRef&) = delete;
    PageRef& operator=(const PageRef&) = delete;

    /// Read-only view of the page bytes.
    const uint8_t* data() const { return data_; }
    /// Writable view; marks the frame dirty (written back on eviction or
    /// FlushAll).
    uint8_t* MutableData();

    uint64_t page_index() const { return page_index_; }
    bool valid() const { return pool_ != nullptr; }

   private:
    friend class BufferPool;
    PageRef(BufferPool* pool, size_t frame, uint64_t page_index,
            uint8_t* data)
        : pool_(pool), frame_(frame), page_index_(page_index), data_(data) {}
    void Release();

    BufferPool* pool_ = nullptr;
    size_t frame_ = 0;
    uint64_t page_index_ = 0;
    uint8_t* data_ = nullptr;
  };

  /// Pin page `page_index`, faulting it in from the store on a miss.
  /// Fails with a descriptive kFailedPrecondition Status (never a crash)
  /// if every frame is pinned — callers observe pool exhaustion and can
  /// shed, retry, or read around the pool — or with the store's error if
  /// the read fails, or with the verifier's error if the freshly read
  /// page does not verify (the pool is unchanged in every failure case).
  Result<PageRef> Pin(uint64_t page_index);

  /// Write every dirty frame back to the store and Sync() it.
  Status FlushAll();

  size_t num_frames() const { return frames_.size(); }
  size_t page_size() const { return page_size_; }
  BufferPoolStats stats() const;

 private:
  struct Frame {
    uint64_t page_index = 0;
    uint32_t pin_count = 0;
    bool occupied = false;
    bool dirty = false;
    bool referenced = false;  // clock second-chance bit
  };

  // All require `mutex_` held.
  Result<size_t> FindVictimLocked();
  Status EvictLocked(size_t frame);
  void NotePinnedLocked() {
    ++stats_.pinned_frames;
    stats_.peak_pinned_frames =
        std::max(stats_.peak_pinned_frames, stats_.pinned_frames);
  }

  // Called by PageRef; take the mutex themselves.
  void Unpin(size_t frame);
  void MarkDirty(size_t frame);

  uint8_t* FrameData(size_t frame) {
    return storage_.data() + frame * page_size_;
  }

  PageStore* store_;
  size_t page_size_;
  PageVerifier verifier_;

  mutable std::mutex mutex_;
  std::vector<Frame> frames_;
  std::vector<uint8_t> storage_;  // num_frames * page_size bytes
  std::unordered_map<uint64_t, size_t> page_to_frame_;
  size_t clock_hand_ = 0;
  BufferPoolStats stats_;
};

}  // namespace tcf
