// The page-resident TupleStore: tuples of one fragment's shortcut relation
// decoded on demand out of the fragment's page extent, faulted through the
// database's shared BufferPool. This is what turns the pool from an
// open-time cache into the query-time memory manager — a query pins only
// the pages of the extents its chain plan names, and each pin lives only
// while the scanning cursor decodes that page (docs/ARCHITECTURE.md "The
// TupleStore seam", docs/STORAGE.md "Fragment directory").
#pragma once

#include <memory>
#include <string>

#include "relational/tuple_store.h"
#include "storage/buffer_pool.h"
#include "storage/page_store.h"
#include "util/status.h"

namespace tcf {

/// A contiguous run of pages holding one serialized blob: pages
/// [first_page, first_page + ceil(byte_len / payload_capacity)), every page
/// full except the last (docs/STORAGE.md "Extents").
struct PageExtent {
  uint64_t first_page = 0;
  uint64_t byte_len = 0;
};

/// One open database file plus the BufferPool that every paged relation of
/// that database shares. Held by shared_ptr from each PagedTupleStore (and
/// from StoredDatabase for stats), so the file outlives the last relation
/// that reads from it.
class PagedFile {
 public:
  /// Open `path` read-only with a pool of `num_frames` frames.
  static Result<std::shared_ptr<PagedFile>> Open(const std::string& path,
                                                 size_t page_size,
                                                 size_t num_frames);

  size_t page_size() const { return store_->page_size(); }
  uint64_t page_count() const { return store_->page_count(); }
  BufferPool& pool() { return *pool_; }
  const std::string& path() const { return path_; }
  BufferPoolStats stats() const { return pool_->stats(); }

  /// Read a page around the pool into `out` (page_size bytes) — the
  /// overflow path a cursor takes when every frame is pinned, so scans
  /// always complete. Safe concurrently with pool faults: FilePageStore
  /// reads are stateless positional pread calls.
  Status ReadPageBypass(uint64_t index, uint8_t* out) {
    return store_->ReadPage(index, out);
  }

 private:
  PagedFile(std::unique_ptr<FilePageStore> store, size_t num_frames,
            std::string path);

  std::unique_ptr<FilePageStore> store_;
  std::unique_ptr<BufferPool> pool_;
  std::string path_;
};

/// A TupleStore over one shortcut-blob extent (u64 tuple count, then 16
/// bytes per tuple: u32 src, u32 dst, f64 cost — little-endian; tuples may
/// straddle page boundaries). Immutable: cursors decode, nothing writes.
class PagedTupleStore final : public TupleStore {
 public:
  PagedTupleStore(std::shared_ptr<PagedFile> file, PageExtent extent,
                  uint64_t tuple_count);

  uint64_t size() const override { return tuple_count_; }
  std::unique_ptr<Cursor> NewCursor() const override;

  const PageExtent& extent() const { return extent_; }
  const std::shared_ptr<PagedFile>& file() const { return file_; }

 private:
  class PageCursor;

  std::shared_ptr<PagedFile> file_;
  PageExtent extent_;
  uint64_t tuple_count_;
};

}  // namespace tcf
