#include "storage/crc32c.h"

#include <array>

namespace tcf {

namespace {

/// 8 slice tables, built once on first use (magic-static, thread-safe).
/// table[0] is the classic byte-at-a-time table for the reflected
/// polynomial 0x82F63B78; table[k][b] extends a byte processed k positions
/// earlier, which lets the hot loop fold 8 input bytes per iteration.
struct Crc32cTables {
  std::array<std::array<uint32_t, 256>, 8> t;

  Crc32cTables() {
    constexpr uint32_t kPoly = 0x82F63B78u;
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = t[0][i];
      for (size_t k = 1; k < 8; ++k) {
        crc = t[0][crc & 0xff] ^ (crc >> 8);
        t[k][i] = crc;
      }
    }
  }
};

const Crc32cTables& Tables() {
  static const Crc32cTables tables;
  return tables;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t size, uint32_t crc) {
  const auto& t = Tables().t;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t state = ~crc;

  // Byte-align is unnecessary: we only ever load bytes, so unaligned
  // inputs are fine on every platform (no type-punned wide loads).
  while (size >= 8) {
    const uint32_t lo = state ^ (static_cast<uint32_t>(p[0]) |
                                 static_cast<uint32_t>(p[1]) << 8 |
                                 static_cast<uint32_t>(p[2]) << 16 |
                                 static_cast<uint32_t>(p[3]) << 24);
    const uint32_t hi = static_cast<uint32_t>(p[4]) |
                        static_cast<uint32_t>(p[5]) << 8 |
                        static_cast<uint32_t>(p[6]) << 16 |
                        static_cast<uint32_t>(p[7]) << 24;
    state = t[7][lo & 0xff] ^ t[6][(lo >> 8) & 0xff] ^
            t[5][(lo >> 16) & 0xff] ^ t[4][lo >> 24] ^
            t[3][hi & 0xff] ^ t[2][(hi >> 8) & 0xff] ^
            t[1][(hi >> 16) & 0xff] ^ t[0][hi >> 24];
    p += 8;
    size -= 8;
  }
  while (size-- > 0) {
    state = t[0][(state ^ *p++) & 0xff] ^ (state >> 8);
  }
  return ~state;
}

}  // namespace tcf
