// The seam between the buffer pool and the bytes: a PageStore reads and
// writes whole fixed-size pages by index. Two implementations ship —
// MemPageStore (tests, scratch builds) and FilePageStore (POSIX
// pread/pwrite on a database file) — and MmapFile provides the read-only
// fast path that bypasses the pool entirely for opens (docs/STORAGE.md,
// docs/ARCHITECTURE.md "Paged storage").
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/status.h"

namespace tcf {

/// Abstract page-granular storage. Implementations are NOT required to be
/// thread-safe; BufferPool serializes access to its store.
class PageStore {
 public:
  virtual ~PageStore() = default;

  virtual size_t page_size() const = 0;
  virtual uint64_t page_count() const = 0;

  /// Read page `index` into `out` (page_size bytes).
  virtual Status ReadPage(uint64_t index, uint8_t* out) = 0;

  /// Write page `index` from `data` (page_size bytes). `index ==
  /// page_count()` appends a new page; beyond that is kOutOfRange.
  virtual Status WritePage(uint64_t index, const uint8_t* data) = 0;

  /// Flush written pages to durable storage.
  virtual Status Sync() = 0;
};

/// In-memory store: a vector of pages. Used by unit tests and as scratch
/// space when assembling a file image before writing it out.
class MemPageStore final : public PageStore {
 public:
  explicit MemPageStore(size_t page_size);

  size_t page_size() const override { return page_size_; }
  uint64_t page_count() const override { return pages_.size(); }
  Status ReadPage(uint64_t index, uint8_t* out) override;
  Status WritePage(uint64_t index, const uint8_t* data) override;
  Status Sync() override { return Status::OK(); }

 private:
  size_t page_size_;
  std::vector<std::vector<uint8_t>> pages_;
};

/// A database file accessed with pread/pwrite at page granularity. The file
/// size must be an exact multiple of the page size.
class FilePageStore final : public PageStore {
 public:
  /// Create (truncate) a writable store at `path`.
  static Result<std::unique_ptr<FilePageStore>> Create(
      const std::string& path, size_t page_size);

  /// Open an existing file. The caller supplies the page size (read from
  /// the superblock probe; see OpenDatabase). Fails with kInvalidArgument
  /// if the file size is not a multiple of `page_size`.
  static Result<std::unique_ptr<FilePageStore>> Open(const std::string& path,
                                                     size_t page_size,
                                                     bool read_only);

  ~FilePageStore() override;
  FilePageStore(const FilePageStore&) = delete;
  FilePageStore& operator=(const FilePageStore&) = delete;

  size_t page_size() const override { return page_size_; }
  uint64_t page_count() const override { return page_count_; }
  Status ReadPage(uint64_t index, uint8_t* out) override;
  Status WritePage(uint64_t index, const uint8_t* data) override;
  Status Sync() override;

 private:
  FilePageStore(int fd, size_t page_size, uint64_t page_count, bool read_only,
                std::string path)
      : fd_(fd),
        page_size_(page_size),
        page_count_(page_count),
        read_only_(read_only),
        path_(std::move(path)) {}

  int fd_;
  size_t page_size_;
  uint64_t page_count_;
  bool read_only_;
  std::string path_;
};

/// A whole file mapped read-only. Move-only RAII over mmap/munmap; the
/// mapping (and thus every span derived from it) lives as long as this
/// object. OpenDatabase's fast path hands spans of the mapping straight to
/// the blob decoders — no page copies.
class MmapFile {
 public:
  static Result<MmapFile> Map(const std::string& path);

  MmapFile() = default;
  ~MmapFile();
  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  std::span<const uint8_t> bytes() const {
    return {static_cast<const uint8_t*>(data_), size_};
  }

 private:
  MmapFile(void* data, size_t size) : data_(data), size_(size) {}

  void* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace tcf
