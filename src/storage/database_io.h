// Save / open a fragmented database as a single paged, checksummed file —
// the binary sibling of the legacy text format in fragment/fragmentation_io
// — so `tcfragd` restarts and benches can *open* a database (adopting the
// precomputed complementary information via the epoch-carryover
// constructor) instead of paying fragmentation + preprocessing again. The
// on-disk format is normative in docs/STORAGE.md; version/compat rules and
// the corruption-detection contract live there.
//
// Two read paths share one decoder:
//   - mmap fast path (default): the whole file is mapped read-only and blob
//     bytes are decoded straight out of the mapping — no page copies, no
//     syscalls per page. This is what makes open-vs-rebuild a >=5x win
//     (bench/storage_io gates it).
//   - buffer-pool path: pages are faulted through a BufferPool over a
//     FilePageStore — the seam that will let fragment relations spill to
//     disk (ROADMAP item 4) and the path exercised when mmap is unwanted.
// Both verify every page's CRC32C at open by default, so a single flipped
// bit anywhere in the file is a clean kIOError, never a crash.
#pragma once

#include <memory>
#include <string>

#include "dsa/maintenance.h"
#include "storage/page.h"
#include "storage/paged_tuple_store.h"
#include "util/status.h"

namespace tcf {

struct SaveOptions {
  /// Page size of the written file; power of two in
  /// [kMinPageSize, kMaxPageSize].
  size_t page_size = kDefaultPageSize;
};

/// How an opened database holds its fragment shortcut relations.
enum class OpenMode {
  /// Decode every blob eagerly into RAM (the PR 9 behavior): fastest to
  /// query, but resident memory scales with total relation bytes.
  kResident,
  /// Shortcut relations stay on disk as lazy paged relations; queries
  /// stream tuples through buffer-pool pinned pages of the fragments their
  /// chain plan names. Resident relation memory is bounded by the pool
  /// (`buffer_pool_frames` / `memory_budget_bytes`), so databases larger
  /// than RAM serve queries. Implies the buffer-pool read path (no mmap).
  kPaged,
};

struct OpenOptions {
  /// Options for the reconstructed DsaDatabase. `use_complementary` must be
  /// false if the file was saved without complementary info.
  DsaOptions dsa;
  /// Eager-resident or lazy-paged shortcut relations (see OpenMode).
  OpenMode mode = OpenMode::kResident;
  /// Read via one read-only mmap of the whole file (fast path). When
  /// false, pages are faulted through a BufferPool instead. Ignored under
  /// OpenMode::kPaged (always the pool).
  bool use_mmap = true;
  /// Frames for the buffer-pool path (ignored under mmap).
  size_t buffer_pool_frames = 256;
  /// When nonzero and opening paged, size the pool as
  /// memory_budget_bytes / page_size frames *instead of*
  /// `buffer_pool_frames` — the `--memory-budget-mb` knob of tcfragd. A
  /// nonzero budget below two frames' worth of bytes (the pool's
  /// progress floor) is rejected with InvalidArgument rather than
  /// silently rounded up.
  size_t memory_budget_bytes = 0;
  /// Verify every page's checksum up front. Leaving this on is the
  /// corruption-detection contract of docs/STORAGE.md; turning it off
  /// skips the whole-file sweep but pages actually decoded are still
  /// verified.
  bool verify_checksums = true;
};

/// An opened database: the same ownership-chained triple a maintenance
/// snapshot carries (each shared_ptr keeps its dependency alive), so any
/// member stands alone.
struct StoredDatabase {
  uint64_t epoch = 0;
  std::shared_ptr<const Graph> graph;
  std::shared_ptr<const Fragmentation> frag;
  std::shared_ptr<const DsaDatabase> db;
  /// The open file + shared buffer pool behind paged relations (null when
  /// opened resident). Exposed for pool observability (hit/miss/eviction
  /// counters in tcfragd stats, bench/storage_io's paged cell); the paged
  /// relations themselves keep the file alive regardless.
  std::shared_ptr<PagedFile> paged_file;
};

/// Serialize `db` (graph, fragment assignment, complementary shortcuts +
/// witness routes, epoch) to `path`. Writes `path + ".tmp"` and renames, so
/// a crash mid-save never leaves a half-written file at `path`. The output
/// is byte-deterministic for a given database.
Status SaveDatabase(const DsaDatabase& db, const std::string& path,
                    const SaveOptions& options = {});

/// Save the current snapshot of a maintained database (epoch included).
Status SaveDatabase(const MaintainedDatabase& mdb, const std::string& path,
                    const SaveOptions& options = {});

/// Open a database file. Every structural property of the file is
/// validated before use — magic, version, page size, page checksums, blob
/// bounds, cross-references (edge endpoints, fragment owners, border-node
/// membership of shortcut tuples, witness-route endpoints) — and any
/// violation is a descriptive non-OK Status, never undefined behavior.
Result<StoredDatabase> OpenDatabase(const std::string& path,
                                    const OpenOptions& options = {});

/// Open as a MaintainedDatabase that resumes updates at stored_epoch + 1
/// (the snapshot-adopting constructor; no refragmentation, no recompute).
/// Under OpenMode::kPaged, `paged_file_out` (if non-null) receives the
/// shared file/pool handle for stats; epochs copy-on-write: a fragment
/// dirtied by an update is rebuilt memory-resident while clean fragments
/// keep reading from their immutable paged extents.
Result<std::unique_ptr<MaintainedDatabase>> OpenMaintainedDatabase(
    const std::string& path, const OpenOptions& options = {},
    std::shared_ptr<PagedFile>* paged_file_out = nullptr);

}  // namespace tcf
