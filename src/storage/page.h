// The unit of on-disk I/O: a fixed-size page with a 24-byte checksummed
// header. Every page in a tcfrag database file — superblock and data pages
// alike — carries this header, so corruption anywhere in the file is
// detected by a single uniform check. The byte-exact layout is normative in
// docs/STORAGE.md; this header is its executable form.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "util/status.h"

namespace tcf {

/// Page geometry. The page size is chosen at SaveDatabase time, recorded in
/// the superblock, and fixed for the life of the file. It must be a power
/// of two in [kMinPageSize, kMaxPageSize].
inline constexpr size_t kDefaultPageSize = 8192;
inline constexpr size_t kMinPageSize = 512;
inline constexpr size_t kMaxPageSize = 1u << 20;

/// Bytes of header at the start of every page. Payload capacity is
/// page_size - kPageHeaderSize.
inline constexpr size_t kPageHeaderSize = 24;

/// Discriminates the superblock (always page 0) from data pages.
enum class PageType : uint8_t {
  kSuperblock = 1,
  kData = 2,
};

/// Decoded page header (see docs/STORAGE.md "Page header" for the on-disk
/// byte layout: u32 checksum, u8 type, 3 reserved bytes, u64 page_index,
/// u32 payload_len, u32 reserved — all little-endian).
struct PageHeader {
  PageType type = PageType::kData;
  uint64_t page_index = 0;
  uint32_t payload_len = 0;
};

/// True iff `page_size` is a power of two within the allowed range.
bool ValidPageSize(size_t page_size);

/// Payload bytes a page of `page_size` can hold.
inline constexpr size_t PagePayloadCapacity(size_t page_size) {
  return page_size - kPageHeaderSize;
}

/// Little-endian fixed-width loads/stores, shared by the page codec and the
/// superblock codec in database_io.cc.
uint32_t LoadU32(const uint8_t* p);
uint64_t LoadU64(const uint8_t* p);
void StoreU32(uint8_t* p, uint32_t v);
void StoreU64(uint8_t* p, uint64_t v);

/// Write the header into `page` (whose size is the page size) and stamp the
/// checksum. The payload must already sit at offset kPageHeaderSize; bytes
/// past kPageHeaderSize + payload_len are zeroed so pages are deterministic
/// and the checksum covers defined bytes only.
void SealPage(std::span<uint8_t> page, PageType type, uint64_t page_index,
              uint32_t payload_len);

/// Verify a page read back from storage: checksum, type byte, reserved
/// bytes, self-declared index (must equal `expected_index` — catches pages
/// written to or read from the wrong offset), and payload_len within
/// capacity. Returns the decoded header, or:
///   kIOError            checksum mismatch (bit rot, torn write)
///   kInvalidArgument    bad type / nonzero reserved bytes / index mismatch
///   kOutOfRange         payload_len exceeds page capacity
Result<PageHeader> CheckPage(std::span<const uint8_t> page,
                             uint64_t expected_index);

}  // namespace tcf
