// CRC32C (Castagnoli, polynomial 0x1EDC6F41) — the checksum every page of
// a tcfrag database file carries (see docs/STORAGE.md, "Checksum
// algorithm"). CRC32C is the variant used by iSCSI, ext4 and most storage
// engines because its error-detection properties on 4 KiB-class blocks are
// well studied; we compute it in software (slice-by-8), which moves
// ~1 GB/s — far above the blob decode rates the open path sustains.
#pragma once

#include <cstddef>
#include <cstdint>

namespace tcf {

/// CRC32C of `[data, data + size)`. `crc` chains a previous call's result:
/// Crc32c(ab) == Crc32c(b, Crc32c(a)). The empty string checksums to 0 and
/// the standard check vector holds: Crc32c("123456789") == 0xE3069283.
uint32_t Crc32c(const void* data, size_t size, uint32_t crc = 0);

}  // namespace tcf
