// A blocking MPMC channel — the message-passing primitive of the
// distributed-site simulation (dsa/sites.h). Modeled after Go channels:
// senders never block (unbounded queue), receivers block until a message
// or close; Receive returns nullopt once the channel is closed and
// drained.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace tcf {

template <typename T>
class Channel {
 public:
  Channel() = default;
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Enqueue a message. Returns false if the channel was already closed
  /// (the message is dropped).
  bool Send(T message) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return false;
      queue_.push_back(std::move(message));
    }
    cv_.notify_one();
    return true;
  }

  /// Block until a message arrives or the channel is closed and empty.
  std::optional<T> Receive() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this]() { return closed_ || !queue_.empty(); });
    if (queue_.empty()) return std::nullopt;
    T message = std::move(queue_.front());
    queue_.pop_front();
    return message;
  }

  /// Non-blocking receive; nullopt when nothing is queued right now.
  std::optional<T> TryReceive() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) return std::nullopt;
    T message = std::move(queue_.front());
    queue_.pop_front();
    return message;
  }

  /// Closes the channel; pending messages remain receivable.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }
  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> queue_;
  bool closed_ = false;
};

}  // namespace tcf
