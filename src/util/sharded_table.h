// A thread-safe interning table striped over N mutex-guarded shards, the
// write-heavy sibling of util/lru_cache.h: where the LRU cache serves
// read-mostly lookups of pure computations, the sharded table serves
// concurrent *insert-or-get* traffic — many threads interning keys at once,
// each key stored exactly once. The shard of a key is fixed by its hash, so
// two threads contend only when their keys collide on a shard; with the
// default shard count that makes interning effectively parallel.
//
// Unlike LruCache, the value factory runs *under* the shard lock: entries
// are interned exactly once per key (callers rely on the handle <-> value
// bijection, e.g. for deterministic batch statistics), and a long-running
// factory serializes only its own shard. Keep factories cheap or size the
// shard count to the expected concurrency.
//
// Values live in per-shard deques, so Value* stays stable across later
// insertions. Intern returns an opaque uint64 handle encoding
// (shard, slot); Flatten() moves everything into one contiguous vector and
// maps handles to flat indices — the batch executor's pattern: intern in
// parallel, then seal the table into the vector the fan-out consumes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/status.h"

namespace tcf {

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class ShardedTable {
 public:
  /// Outcome of one Intern call. `value` points into the table and stays
  /// valid until Flatten() or destruction; `inserted` is true when this
  /// call created the entry (the factory ran).
  struct InternResult {
    uint64_t handle = 0;
    Value* value = nullptr;
    bool inserted = false;
  };

  /// `num_shards` is clamped to [1, 2^16). More shards, less contention.
  explicit ShardedTable(size_t num_shards = kDefaultShards)
      : num_shards_(num_shards < 1 ? 1
                    : num_shards >= (1u << kShardBits) ? (1u << kShardBits) - 1
                                                       : num_shards),
        shards_(std::make_unique<Shard[]>(num_shards_)) {}

  ShardedTable(const ShardedTable&) = delete;
  ShardedTable& operator=(const ShardedTable&) = delete;

  /// Returns the entry for `key`, creating it from `factory(key)` if
  /// absent. The factory runs under the shard lock, so the value is
  /// constructed exactly once per key; concurrent callers of the same key
  /// block until it is ready.
  template <typename Factory>
  InternResult Intern(Key key, Factory&& factory) {
    Shard& shard = shards_[Hash{}(key) % num_shards_];
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.index.find(key);
    InternResult out;
    out.inserted = it == shard.index.end();
    if (out.inserted) {
      const uint64_t slot = shard.values.size();
      TCF_CHECK(slot < (uint64_t{1} << kSlotBits));
      shard.values.push_back(factory(static_cast<const Key&>(key)));
      it = shard.index.emplace(std::move(key), slot).first;
    }
    out.handle = (static_cast<uint64_t>(&shard - shards_.get()) << kSlotBits) |
                 it->second;
    out.value = &shard.values[it->second];
    return out;
  }

  /// Total entries across shards (takes every shard lock).
  size_t size() const {
    size_t total = 0;
    for (size_t s = 0; s < num_shards_; ++s) {
      std::lock_guard<std::mutex> lock(shards_[s].mutex);
      total += shards_[s].values.size();
    }
    return total;
  }

  size_t num_shards() const { return num_shards_; }

  static constexpr size_t ShardOf(uint64_t handle) {
    return static_cast<size_t>(handle >> kSlotBits);
  }
  static constexpr size_t SlotOf(uint64_t handle) {
    return static_cast<size_t>(handle & ((uint64_t{1} << kSlotBits) - 1));
  }

  /// Runs `fn(Value&)` on every entry, shard by shard under that shard's
  /// lock. Do not Intern from inside `fn` (self-deadlock).
  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (size_t s = 0; s < num_shards_; ++s) {
      std::lock_guard<std::mutex> lock(shards_[s].mutex);
      for (Value& value : shards_[s].values) fn(value);
    }
  }

  /// Read-only traversal: `fn(const Value&)`, same locking contract.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t s = 0; s < num_shards_; ++s) {
      std::lock_guard<std::mutex> lock(shards_[s].mutex);
      for (const Value& value : shards_[s].values) fn(value);
    }
  }

  /// The sealed form of a table: all values in one contiguous vector, in
  /// shard-major order, plus the offset table that maps handles to flat
  /// indices.
  struct Flattened {
    std::vector<Value> values;
    std::vector<size_t> offsets;  // offsets[s] = flat index of shard s slot 0

    size_t IndexOf(uint64_t handle) const {
      return offsets[ShardOf(handle)] + SlotOf(handle);
    }
  };

  /// Moves every value out into a Flattened and leaves the table empty.
  /// Callers must be quiescent (no concurrent Intern).
  Flattened Flatten() {
    Flattened flat;
    flat.offsets.resize(num_shards_, 0);
    size_t total = 0;
    for (size_t s = 0; s < num_shards_; ++s) {
      std::lock_guard<std::mutex> lock(shards_[s].mutex);
      flat.offsets[s] = total;
      total += shards_[s].values.size();
    }
    flat.values.reserve(total);
    for (size_t s = 0; s < num_shards_; ++s) {
      std::lock_guard<std::mutex> lock(shards_[s].mutex);
      for (Value& value : shards_[s].values) {
        flat.values.push_back(std::move(value));
      }
      shards_[s].values.clear();
      shards_[s].index.clear();
    }
    return flat;
  }

  static constexpr size_t kDefaultShards = 64;

 private:
  static constexpr unsigned kShardBits = 16;
  static constexpr unsigned kSlotBits = 64 - kShardBits;

  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<Key, uint64_t, Hash> index;
    std::deque<Value> values;  // deque: Value* stable across push_back
  };

  const size_t num_shards_;
  std::unique_ptr<Shard[]> shards_;
};

}  // namespace tcf
