// Streaming statistics. The paper reports, for each fragmentation
// characteristic, the average and the *average deviation* (mean absolute
// deviation from the mean); Accumulator produces both, plus stddev/min/max.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace tcf {

/// Collects samples and computes the summary statistics used in Tables 1-3
/// and the service layer's latency percentiles.
///
/// Count, sum, mean, min, and max are maintained as exact running values
/// over *every* sample ever added. The per-sample storage (which the
/// order statistics — percentiles, deviations — are computed from) is
/// unbounded by default, matching the tiny experiment scales of the paper
/// tables; a long-running service caps it with `max_samples`, which turns
/// the storage into a uniform reservoir (Vitter's algorithm R) so memory
/// stays bounded while percentiles remain an unbiased estimate over the
/// whole stream.
///
/// Percentile() keeps the sorted view cached between calls: a stats
/// snapshot reading p50/p95/p99 sorts once, not three times, and repeated
/// snapshots of an unchanged accumulator sort not at all.
///
/// Not internally synchronized — and note that the sorted-view cache
/// makes even const Percentile() a logical write, so concurrent readers
/// must each hold their own copy (the service layer's Stats() snapshots
/// are value copies for exactly this reason).
class Accumulator {
 public:
  /// Unbounded per-sample storage.
  Accumulator() = default;
  /// `max_samples` bounds the per-sample storage (0 = keep everything).
  explicit Accumulator(size_t max_samples) : max_samples_(max_samples) {}

  void Add(double sample);
  void AddAll(const std::vector<double>& samples);

  /// Total samples ever added (not the stored-sample count).
  size_t count() const { return count_; }
  bool empty() const { return count_ == 0; }

  double Sum() const { return sum_; }
  double Mean() const;
  /// Mean absolute deviation from the mean — the paper's "average
  /// deviation". Computed over the stored samples (exact when unbounded).
  double AvgDeviation() const;
  /// Sample standard deviation (n-1 denominator); 0 for fewer than 2
  /// stored samples.
  double StdDev() const;
  double Min() const;
  double Max() const;
  /// Nearest-rank percentile over the stored samples, p in [0, 100].
  /// Percentile(50) is the median, Percentile(99) the p99 latency the
  /// service layer reports. The rank is clamped to [1, n], so p == 0,
  /// denormal-small p, and p == 100 all stay in range.
  double Percentile(double p) const;

  /// The stored samples: everything when unbounded, a uniform reservoir
  /// of the stream when capped.
  const std::vector<double>& samples() const { return samples_; }
  /// The storage bound (0 = unbounded).
  size_t max_samples() const { return max_samples_; }

 private:
  void Store(double sample);

  size_t max_samples_ = 0;
  size_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  uint64_t reservoir_state_ = 0x853c49e6748fea9bULL;  // splitmix64 state
  std::vector<double> samples_;

  /// Lazily sorted copy of samples_, shared by consecutive Percentile
  /// calls; invalidated by Add.
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

/// Fixed-width "paper table" pretty printer used by the bench harness so all
/// reproduced tables share one look.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  /// Render with column alignment to a string (also usable in tests).
  std::string ToString() const;
  /// Render to stdout.
  void Print() const;

  static std::string Fmt(double v, int precision = 1);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tcf
