// Streaming statistics. The paper reports, for each fragmentation
// characteristic, the average and the *average deviation* (mean absolute
// deviation from the mean); Accumulator produces both, plus stddev/min/max.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace tcf {

/// Collects samples and computes the summary statistics used in Tables 1-3.
/// Stores the samples (experiment scales are tiny) so the mean absolute
/// deviation can be computed exactly rather than approximated online.
class Accumulator {
 public:
  void Add(double sample);
  void AddAll(const std::vector<double>& samples);

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double Sum() const;
  double Mean() const;
  /// Mean absolute deviation from the mean — the paper's "average deviation".
  double AvgDeviation() const;
  /// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
  double StdDev() const;
  double Min() const;
  double Max() const;
  /// Nearest-rank percentile over the stored samples, p in [0, 100].
  /// Percentile(50) is the median, Percentile(99) the p99 latency the
  /// service layer reports. Sorts a copy — fine at experiment scales.
  double Percentile(double p) const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
};

/// Fixed-width "paper table" pretty printer used by the bench harness so all
/// reproduced tables share one look.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  /// Render with column alignment to a string (also usable in tests).
  std::string ToString() const;
  /// Render to stdout.
  void Print() const;

  static std::string Fmt(double v, int precision = 1);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tcf
