#include "util/rng.h"

#include "util/status.h"

namespace tcf {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  TCF_CHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  while (true) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  TCF_CHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  // 53 random bits mapped to [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  TCF_CHECK(k <= n);
  // Partial Fisher–Yates over an index vector.
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + static_cast<size_t>(NextBounded(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace tcf
