// Deterministic pseudo-random number generation. All experiments in the
// benchmark harness are seeded, so every table in EXPERIMENTS.md is exactly
// reproducible run-to-run and machine-to-machine.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace tcf {

/// xoshiro256++ generator seeded via SplitMix64. Deterministic across
/// platforms (unlike std::mt19937 + std::uniform_*_distribution, whose
/// distributions are implementation-defined).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool NextBool(double p);

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBounded(i + 1));
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// Sample k distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Derive an independent child generator (for per-trial seeding).
  Rng Fork();

 private:
  uint64_t state_[4];
};

}  // namespace tcf
