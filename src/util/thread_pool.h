// Fixed-size thread pool used to simulate the per-fragment "sites" of the
// disconnection set approach. Each site's local transitive closure runs as
// one task; the pool gives us the paper's phase-1 property for free (no
// communication until the final joins).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace tcf {

/// A simple work-queue thread pool. Tasks may not submit tasks and block on
/// them from within the pool (no work stealing); the DSA executor only
/// submits from the coordinator thread, which matches the paper's model.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (>= 1). Defaults to the
  /// hardware concurrency.
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueue a task; returns a future for its result.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([task]() { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  /// Run fn(i) for i in [0, n) across the pool and wait for completion.
  /// One task per index — right when each call does real work (a site
  /// subquery, a query assembly).
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Run fn(begin, end) over a partition of [0, n) into contiguous ranges
  /// (a few per worker) and wait for completion. Amortizes the per-task
  /// queue overhead when the loop body is cheap — the batch executor plans
  /// tens of thousands of queries this way.
  void ParallelForRanges(size_t n,
                         const std::function<void(size_t, size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool shutting_down_ = false;
};

}  // namespace tcf
