// A small thread-safe LRU cache. Values are handed out as
// shared_ptr<const V> so an entry can be evicted while readers still hold
// it; the storage is reclaimed when the last reader drops its reference.
// Built for read-mostly caches of pure computations (the DSA chain-plan
// cache): on a miss the factory runs *outside* the lock, so two threads
// racing on the same cold key may both compute it — the duplicate result is
// simply dropped, which is cheaper than holding the lock across an
// arbitrary computation and always deadlock-free.
#pragma once

#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "util/status.h"

namespace tcf {

/// Cumulative counters of one cache. Hits and misses count Get/GetOrCompute
/// lookups; evictions counts capacity-driven removals.
struct LruCacheStats {
  size_t hits = 0;
  size_t misses = 0;
  size_t evictions = 0;
  size_t entries = 0;

  double HitRate() const {
    const size_t lookups = hits + misses;
    return lookups == 0 ? 0.0 : static_cast<double>(hits) / lookups;
  }
};

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class LruCache {
 public:
  /// `capacity` is the maximum number of resident entries (>= 1).
  explicit LruCache(size_t capacity) : capacity_(capacity) {
    TCF_CHECK(capacity >= 1);
  }

  LruCache(const LruCache&) = delete;
  LruCache& operator=(const LruCache&) = delete;

  /// Returns the cached value, refreshing its recency, or nullptr.
  std::shared_ptr<const Value> Get(const Key& key) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++stats_.misses;
      return nullptr;
    }
    ++stats_.hits;
    order_.splice(order_.begin(), order_, it->second);
    return it->second->value;
  }

  /// Inserts (or refreshes) `value` under `key`, evicting the least
  /// recently used entry when over capacity.
  void Put(const Key& key, std::shared_ptr<const Value> value) {
    std::lock_guard<std::mutex> lock(mutex_);
    PutLocked(key, std::move(value));
  }

  /// Get, or compute-and-insert on a miss. `factory()` must return
  /// something convertible to shared_ptr<const Value> and runs without the
  /// cache lock held. `was_hit_out`, if non-null, reports whether this
  /// lookup was served from cache.
  template <typename Factory>
  std::shared_ptr<const Value> GetOrCompute(const Key& key, Factory&& factory,
                                            bool* was_hit_out = nullptr) {
    if (std::shared_ptr<const Value> hit = Get(key)) {
      if (was_hit_out != nullptr) *was_hit_out = true;
      return hit;
    }
    if (was_hit_out != nullptr) *was_hit_out = false;
    std::shared_ptr<const Value> value = factory();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = index_.find(key);
      if (it != index_.end()) {
        // A concurrent thread computed the same key first; keep its entry
        // (both values are equal by purity of the factory).
        order_.splice(order_.begin(), order_, it->second);
        return it->second->value;
      }
      PutLocked(key, value);
    }
    return value;
  }

  size_t capacity() const { return capacity_; }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return index_.size();
  }

  LruCacheStats Stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    LruCacheStats out = stats_;
    out.entries = index_.size();
    return out;
  }

  /// Visits every resident entry as (key, shared_ptr<const Value>) from
  /// least to most recently used, under the cache lock — `fn` must not
  /// call back into this cache. Oldest-first order lets a caller rebuild
  /// a filtered copy with Put() while preserving recency (the last entry
  /// re-inserted ends up most recent, as it was here).
  template <typename Fn>
  void ForEachOldestFirst(Fn&& fn) const {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
      fn(it->key, it->value);
    }
  }

  /// Drops all entries; counters are kept.
  void Clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    order_.clear();
    index_.clear();
  }

 private:
  struct Entry {
    Key key;
    std::shared_ptr<const Value> value;
  };

  void PutLocked(const Key& key, std::shared_ptr<const Value> value) {
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->value = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    order_.push_front(Entry{key, std::move(value)});
    index_.emplace(key, order_.begin());
    if (index_.size() > capacity_) {
      index_.erase(order_.back().key);
      order_.pop_back();
      ++stats_.evictions;
    }
  }

  const size_t capacity_;
  mutable std::mutex mutex_;
  std::list<Entry> order_;  // front = most recently used
  std::unordered_map<Key, typename std::list<Entry>::iterator, Hash> index_;
  LruCacheStats stats_;
};

}  // namespace tcf
