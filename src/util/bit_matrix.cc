#include "util/bit_matrix.h"

#include <bit>

#include "util/status.h"

namespace tcf {

BitMatrix::BitMatrix(size_t n) : n_(n), cols_(n * WordsPerRow(), 0) {}

void BitMatrix::Set(size_t row, size_t col, bool value) {
  TCF_CHECK(row < n_ && col < n_);
  uint64_t& word = cols_[col * WordsPerRow() + row / 64];
  const uint64_t mask = uint64_t{1} << (row % 64);
  if (value) {
    word |= mask;
  } else {
    word &= ~mask;
  }
}

bool BitMatrix::Get(size_t row, size_t col) const {
  TCF_CHECK(row < n_ && col < n_);
  const uint64_t word = cols_[col * WordsPerRow() + row / 64];
  return (word >> (row % 64)) & 1;
}

size_t BitMatrix::CountOnes() const {
  size_t total = 0;
  for (uint64_t w : cols_) total += std::popcount(w);
  return total;
}

size_t BitMatrix::ColumnOnes(size_t col) const {
  TCF_CHECK(col < n_);
  size_t total = 0;
  const size_t words = WordsPerRow();
  for (size_t w = 0; w < words; ++w) {
    total += std::popcount(cols_[col * words + w]);
  }
  return total;
}

size_t BitMatrix::ColumnInnerProduct(size_t a, size_t b) const {
  TCF_CHECK(a < n_ && b < n_);
  size_t total = 0;
  const size_t words = WordsPerRow();
  const uint64_t* ca = cols_.data() + a * words;
  const uint64_t* cb = cols_.data() + b * words;
  for (size_t w = 0; w < words; ++w) {
    total += std::popcount(ca[w] & cb[w]);
  }
  return total;
}

std::string BitMatrix::ToString() const {
  std::string out;
  out.reserve(n_ * (n_ + 1));
  for (size_t r = 0; r < n_; ++r) {
    for (size_t c = 0; c < n_; ++c) out += Get(r, c) ? '1' : '0';
    out += '\n';
  }
  return out;
}

}  // namespace tcf
