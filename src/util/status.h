// Lightweight Status / Result error handling in the style used by database
// engines (Arrow, RocksDB): recoverable errors travel as values, never as
// exceptions, and programming errors are caught by TCF_CHECK.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <sstream>
#include <string>
#include <utility>

namespace tcf {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kIOError,
};

/// Human-readable name of a StatusCode.
inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kOutOfRange: return "OutOfRange";
    case StatusCode::kFailedPrecondition: return "FailedPrecondition";
    case StatusCode::kInternal: return "Internal";
    case StatusCode::kIOError: return "IOError";
  }
  return "Unknown";
}

/// A success-or-error value. Cheap to copy on the success path (no
/// allocation), carries a message on the error path.
class Status {
 public:
  Status() = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    std::string out = StatusCodeName(code_);
    out += ": ";
    out += message_;
    return out;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// A value-or-error: either holds a T or a non-OK Status.
template <typename T>
class Result {
 public:
  /*implicit*/ Result(T value) : value_(std::move(value)) {}
  /*implicit*/ Result(Status status) : status_(std::move(status)) {}

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Access the contained value. Aborts if !ok(); check ok() first or use
  /// ValueOrDie semantics deliberately.
  T& value() & {
    CheckHasValue();
    return *value_;
  }
  const T& value() const& {
    CheckHasValue();
    return *value_;
  }
  T&& value() && {
    CheckHasValue();
    return std::move(*value_);
  }

  T value_or(T fallback) const {
    return value_.has_value() ? *value_ : std::move(fallback);
  }

 private:
  void CheckHasValue() const {
    if (!value_.has_value()) {
      std::fprintf(stderr, "Result accessed without value: %s\n",
                   status_.ToString().c_str());
      std::abort();
    }
  }

  std::optional<T> value_;
  Status status_ = Status::Internal("empty Result");
};

namespace internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr,
                                     const std::string& extra) {
  std::fprintf(stderr, "%s:%d: TCF_CHECK(%s) failed%s%s\n", file, line, expr,
               extra.empty() ? "" : ": ", extra.c_str());
  std::abort();
}

}  // namespace internal

}  // namespace tcf

/// Invariant check for programming errors; always on (the library is a
/// research artifact — we prefer loud failure over silent corruption).
#define TCF_CHECK(expr)                                                \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::tcf::internal::CheckFailed(__FILE__, __LINE__, #expr, "");     \
    }                                                                  \
  } while (0)

#define TCF_CHECK_MSG(expr, msg)                                       \
  do {                                                                 \
    if (!(expr)) {                                                     \
      std::ostringstream tcf_check_os_;                                \
      tcf_check_os_ << msg;                                            \
      ::tcf::internal::CheckFailed(__FILE__, __LINE__, #expr,          \
                                   tcf_check_os_.str());               \
    }                                                                  \
  } while (0)

/// Propagate a non-OK Status from the current function.
#define TCF_RETURN_NOT_OK(expr)                  \
  do {                                           \
    ::tcf::Status tcf_status_ = (expr);          \
    if (!tcf_status_.ok()) return tcf_status_;   \
  } while (0)
