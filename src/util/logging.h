// Minimal leveled logger. Benchmarks and examples log progress at Info;
// library internals log at Debug and are silent by default.
#pragma once

#include <sstream>
#include <string>

namespace tcf {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global log threshold; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style one-shot log emitter; flushes on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace tcf

#define TCF_LOG(level) \
  ::tcf::internal::LogMessage(::tcf::LogLevel::k##level, __FILE__, __LINE__)
