#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "util/status.h"

namespace tcf {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 4;
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this]() { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    futures.push_back(Submit([&fn, i]() { fn(i); }));
  }
  for (auto& f : futures) f.get();
}

void ThreadPool::ParallelForRanges(
    size_t n, const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  // ~4 ranges per worker: enough slack to absorb uneven range costs
  // without reintroducing per-item queue traffic.
  const size_t max_tasks = workers_.size() * 4;
  const size_t num_tasks = std::min(n, max_tasks);
  const size_t chunk = (n + num_tasks - 1) / num_tasks;
  std::vector<std::future<void>> futures;
  futures.reserve(num_tasks);
  for (size_t begin = 0; begin < n; begin += chunk) {
    const size_t end = std::min(n, begin + chunk);
    futures.push_back(Submit([&fn, begin, end]() { fn(begin, end); }));
  }
  for (auto& f : futures) f.get();
}

}  // namespace tcf
