// Dense square 0/1 matrix. The bond-energy algorithm (Sec. 3.2) clusters the
// adjacency matrix of the graph; inner products between columns ("bonds")
// dominate its cost, so columns are stored as packed bit rows for popcount-
// based dot products.
#pragma once

#include <cstdint>
#include <cstddef>
#include <string>
#include <vector>

namespace tcf {

/// A square bit matrix with popcount-accelerated column inner products.
/// Storage is row-major over 64-bit words; column operations are provided
/// via an explicit transposed view kept in sync by the caller's usage
/// pattern (the BEA only ever reads, never mutates, after construction).
class BitMatrix {
 public:
  /// Creates an n x n zero matrix.
  explicit BitMatrix(size_t n);

  size_t size() const { return n_; }

  void Set(size_t row, size_t col, bool value = true);
  bool Get(size_t row, size_t col) const;

  /// Number of 1s in the whole matrix.
  size_t CountOnes() const;
  /// Number of 1s in a given column.
  size_t ColumnOnes(size_t col) const;

  /// Inner product of columns a and b: sum_k M[k,a] * M[k,b].
  /// This is the "bond" of the bond-energy algorithm.
  size_t ColumnInnerProduct(size_t a, size_t b) const;

  /// ASCII art (rows of 0/1), for debugging and doc tests.
  std::string ToString() const;

 private:
  size_t WordsPerRow() const { return (n_ + 63) / 64; }

  size_t n_;
  // Column-major packed bits: word w of column c holds rows [64w, 64w+63].
  // Column-major because the BEA touches columns, not rows.
  std::vector<uint64_t> cols_;
};

}  // namespace tcf
