#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/status.h"

namespace tcf {

namespace {

// splitmix64: the reservoir needs a cheap deterministic generator and must
// not drag util/rng.h into every stats user.
uint64_t NextState(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

void Accumulator::Store(double sample) {
  if (max_samples_ == 0 || samples_.size() < max_samples_) {
    samples_.push_back(sample);
    return;
  }
  // Algorithm R: the i-th sample (1-based) replaces a stored one with
  // probability max_samples / i, keeping the reservoir a uniform sample
  // of everything seen so far.
  const uint64_t slot = NextState(&reservoir_state_) % count_;
  if (slot < max_samples_) samples_[slot] = sample;
}

void Accumulator::Add(double sample) {
  ++count_;
  sum_ += sample;
  if (count_ == 1) {
    min_ = max_ = sample;
  } else {
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
  }
  Store(sample);
  sorted_valid_ = false;
}

void Accumulator::AddAll(const std::vector<double>& samples) {
  for (double s : samples) Add(s);
}

double Accumulator::Mean() const {
  TCF_CHECK(count_ > 0);
  return sum_ / static_cast<double>(count_);
}

double Accumulator::AvgDeviation() const {
  TCF_CHECK(!samples_.empty());
  const double mean = Mean();
  double dev = 0.0;
  for (double s : samples_) dev += std::abs(s - mean);
  return dev / static_cast<double>(samples_.size());
}

double Accumulator::StdDev() const {
  if (samples_.size() < 2) return 0.0;
  const double mean = Mean();
  double ss = 0.0;
  for (double s : samples_) ss += (s - mean) * (s - mean);
  return std::sqrt(ss / static_cast<double>(samples_.size() - 1));
}

double Accumulator::Min() const {
  TCF_CHECK(count_ > 0);
  return min_;
}

double Accumulator::Max() const {
  TCF_CHECK(count_ > 0);
  return max_;
}

double Accumulator::Percentile(double p) const {
  TCF_CHECK(!samples_.empty());
  TCF_CHECK(p >= 0.0 && p <= 100.0);
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
  // Nearest-rank, hardened at both ends: ceil(p/100 * n) rounds p = 0 and
  // denormal-small p down to rank 0 (ceil(0) == 0, and 1e-9/100 * n can
  // underflow to 0.0), and p = 100 can land at n + epsilon-of-one after
  // the division — clamp instead of trusting the floating point.
  size_t rank = static_cast<size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted_.size())));
  rank = std::min(std::max<size_t>(rank, 1), sorted_.size());
  return sorted_[rank - 1];
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  TCF_CHECK_MSG(cells.size() == headers_.size(),
                "row width " << cells.size() << " != header width "
                             << headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t c = 0; c < row.size(); ++c) {
      line += " ";
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
      line += " |";
    }
    return line + "\n";
  };
  std::string out = render_row(headers_);
  std::string rule = "|";
  for (size_t c = 0; c < headers_.size(); ++c) {
    rule.append(widths[c] + 2, '-');
    rule += "|";
  }
  out += rule + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

}  // namespace tcf
