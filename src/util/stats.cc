#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "util/status.h"

namespace tcf {

void Accumulator::Add(double sample) { samples_.push_back(sample); }

void Accumulator::AddAll(const std::vector<double>& samples) {
  samples_.insert(samples_.end(), samples.begin(), samples.end());
}

double Accumulator::Sum() const {
  return std::accumulate(samples_.begin(), samples_.end(), 0.0);
}

double Accumulator::Mean() const {
  TCF_CHECK(!samples_.empty());
  return Sum() / static_cast<double>(samples_.size());
}

double Accumulator::AvgDeviation() const {
  TCF_CHECK(!samples_.empty());
  const double mean = Mean();
  double dev = 0.0;
  for (double s : samples_) dev += std::abs(s - mean);
  return dev / static_cast<double>(samples_.size());
}

double Accumulator::StdDev() const {
  if (samples_.size() < 2) return 0.0;
  const double mean = Mean();
  double ss = 0.0;
  for (double s : samples_) ss += (s - mean) * (s - mean);
  return std::sqrt(ss / static_cast<double>(samples_.size() - 1));
}

double Accumulator::Min() const {
  TCF_CHECK(!samples_.empty());
  return *std::min_element(samples_.begin(), samples_.end());
}

double Accumulator::Max() const {
  TCF_CHECK(!samples_.empty());
  return *std::max_element(samples_.begin(), samples_.end());
}

double Accumulator::Percentile(double p) const {
  TCF_CHECK(!samples_.empty());
  TCF_CHECK(p >= 0.0 && p <= 100.0);
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  if (p == 0.0) return sorted.front();
  const size_t rank = static_cast<size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
  return sorted[rank - 1];
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  TCF_CHECK_MSG(cells.size() == headers_.size(),
                "row width " << cells.size() << " != header width "
                             << headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t c = 0; c < row.size(); ++c) {
      line += " ";
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
      line += " |";
    }
    return line + "\n";
  };
  std::string out = render_row(headers_);
  std::string rule = "|";
  for (size_t c = 0; c < headers_.size(); ++c) {
    rule.append(widths[c] + 2, '-');
    rule += "|";
  }
  out += rule + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

}  // namespace tcf
