// Streaming queries through the admission service: several client threads
// submit single shortest-path queries and get futures back, while the
// QueryService coalesces the concurrent arrivals into micro-batches that
// run on the batch executor — so the clients transparently share subquery
// work and cached plans. A second round swaps the backend for a
// message-passing SiteNetwork without touching the client code: the
// backend seam in action.
#include <cstdio>
#include <thread>
#include <vector>

#include "dsa/service.h"
#include "dsa/sites.h"
#include "dsa/workload.h"
#include "fragment/linear.h"
#include "graph/generator.h"

using namespace tcf;

namespace {

void RunClients(QueryService* service, const Fragmentation& frag,
                size_t num_clients, size_t queries_per_client) {
  std::vector<std::thread> clients;
  for (size_t c = 0; c < num_clients; ++c) {
    clients.emplace_back([&, c]() {
      WorkloadSpec spec;
      spec.mix = WorkloadMix::kHotPair;
      spec.num_queries = queries_per_client;
      Rng rng(100 + c);  // every client streams its own workload
      const std::vector<Query> queries = GenerateWorkload(frag, spec, &rng);
      std::vector<std::future<Weight>> futures;
      futures.reserve(queries.size());
      for (const Query& q : queries) {
        futures.push_back(service->SubmitShortestPath(q.from, q.to));
      }
      size_t connected = 0;
      for (auto& f : futures) {
        if (f.get() != kInfinity) ++connected;
      }
      std::printf("  client %zu: %zu/%zu queries connected\n", c, connected,
                  queries.size());
    });
  }
  for (auto& t : clients) t.join();
}

void PrintStats(const char* label, const ServiceStats& stats) {
  std::printf(
      "%s: %zu queries in %zu micro-batches (mean fill %.1f), "
      "%.0f queries/s sustained, latency p50/p95/p99 = %.2f/%.2f/%.2f ms\n\n",
      label, stats.completed, stats.batches, stats.MeanBatchFill(),
      stats.SustainedQps(), stats.LatencyPercentileMs(50),
      stats.LatencyPercentileMs(95), stats.LatencyPercentileMs(99));
}

}  // namespace

int main() {
  // A transportation-style graph split into 4 fragments.
  Rng rng(42);
  TransportationGraphOptions gopts;
  gopts.num_clusters = 4;
  gopts.nodes_per_cluster = 25;
  gopts.target_edges_per_cluster = 100;
  TransportationGraph t = GenerateTransportationGraph(gopts, &rng);
  LinearOptions lopts;
  lopts.num_fragments = 4;
  const Fragmentation frag =
      LinearFragmentation(t.graph, lopts).fragmentation;

  ServiceOptions opts;
  opts.max_batch = 32;
  opts.max_wait = std::chrono::milliseconds(1);
  // Flush in parallel: 0 (the default) runs one flush worker per hardware
  // thread; pin it when you want deterministic batch shapes instead.
  opts.flush_workers = 0;

  // Round 1: the in-process database backend.
  {
    DsaDatabase db(&frag);
    QueryService service(&db, opts);
    std::printf("streaming against the in-process database (%zu flush "
                "workers):\n",
                service.num_flush_workers());
    RunClients(&service, frag, 4, 500);
    service.Shutdown();
    PrintStats("database backend", service.Stats());
  }

  // Round 2: identical clients, message-passing backend.
  {
    SiteNetwork net(&frag);
    SiteNetworkBackend backend(&net);
    QueryService service(&backend, opts);
    std::printf("streaming against the message-passing site network:\n");
    RunClients(&service, frag, 4, 250);
    service.Shutdown();
    PrintStats("site-network backend", service.Stats());
  }
  return 0;
}
