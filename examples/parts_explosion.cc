// Bill-of-material queries (Sec. 1: "in a database storing information
// about parts, one can express bill-of-material questions") — the other
// classic transitive-closure workload. The parts-uses relation is a DAG;
// "does assembly A (transitively) use part B?" is a reachability TC query,
// and with per-edge costs the closure's min-plus variant yields the
// cheapest derivation route.
//
// We build a synthetic product hierarchy of several product families that
// share a pool of common subassemblies — a clustered DAG, fragmentable
// exactly like the transportation networks — fragment it, and answer
// explosion queries through the relational engine and the DSA.
//
//   $ ./build/examples/parts_explosion
#include <cstdio>
#include <string>
#include <vector>

#include "tcf/tcf.h"

namespace {

// Families x (assemblies per family) + shared commons.
constexpr size_t kFamilies = 3;
constexpr size_t kPerFamily = 18;
constexpr size_t kCommons = 10;

}  // namespace

int main() {
  using namespace tcf;

  // Node layout: family f occupies [f*kPerFamily, (f+1)*kPerFamily);
  // commons occupy the tail. Edges point from assembly to used part, with
  // weight = number of units used (so min-plus = min total units along a
  // derivation chain; reachability = "uses at all").
  GraphBuilder builder;
  std::vector<std::string> names;
  std::vector<int> family_block;
  for (size_t f = 0; f < kFamilies; ++f) {
    for (size_t i = 0; i < kPerFamily; ++i) {
      builder.AddNode({static_cast<double>(f), static_cast<double>(i)});
      // Built with append rather than operator+ chains: GCC 12's -Wrestrict
      // false-positives on `const char* + std::string&&` (GCC bug 105651).
      std::string name = "F";
      name += std::to_string(f);
      name += "/A";
      name += std::to_string(i);
      names.push_back(std::move(name));
      family_block.push_back(static_cast<int>(f));
    }
  }
  for (size_t c = 0; c < kCommons; ++c) {
    builder.AddNode({1.5, -2.0 - static_cast<double>(c)});
    names.push_back("COMMON/P" + std::to_string(c));
    family_block.push_back(static_cast<int>(kFamilies));  // own block
  }

  Rng rng(7);
  auto node_of = [&](size_t family, size_t idx) {
    return static_cast<NodeId>(family * kPerFamily + idx);
  };
  const NodeId common_base = static_cast<NodeId>(kFamilies * kPerFamily);

  // Within each family: a layered DAG (assembly i uses 2-3 assemblies with
  // larger index — strictly downward, so no cycles).
  for (size_t f = 0; f < kFamilies; ++f) {
    for (size_t i = 0; i + 1 < kPerFamily; ++i) {
      const size_t uses = 2 + rng.NextBounded(2);
      for (size_t u = 0; u < uses; ++u) {
        const size_t j =
            i + 1 + rng.NextBounded(kPerFamily - i - 1);
        builder.AddEdge(node_of(f, i), node_of(f, j),
                        static_cast<Weight>(1 + rng.NextBounded(4)));
      }
    }
    // Leaf assemblies of every family use a couple of common parts.
    for (size_t i = kPerFamily - 4; i < kPerFamily; ++i) {
      const size_t c = rng.NextBounded(kCommons);
      builder.AddEdge(node_of(f, i),
                      common_base + static_cast<NodeId>(c),
                      static_cast<Weight>(1 + rng.NextBounded(3)));
    }
  }
  // Commons form a small internal hierarchy.
  for (size_t c = 0; c + 1 < kCommons; ++c) {
    builder.AddEdge(common_base + static_cast<NodeId>(c),
                    common_base + static_cast<NodeId>(c + 1), 1.0);
  }
  Graph g = builder.Build();
  std::printf("parts-uses relation: %zu parts, %zu uses tuples (DAG)\n",
              g.NumNodes(), g.NumEdges());

  // Whole-relation explosion of one root via the relational engine.
  Relation base = Relation::FromGraph(g);
  TcOptions opts;
  opts.semiring = TcSemiring::kReachability;
  opts.sources = NodeSet{node_of(0, 0)};
  TcStats stats;
  Relation explosion = TransitiveClosure(base, opts, &stats);
  std::printf("\nexplosion of %s: %zu parts reachable "
              "(%zu semi-naive iterations — the DAG depth)\n",
              names[node_of(0, 0)].c_str(), explosion.size(),
              stats.iterations);
  size_t commons_used = 0;
  for (const PathTuple& t : explosion.tuples()) {
    if (t.dst >= common_base) ++commons_used;
  }
  std::printf("  of which common-pool parts: %zu\n", commons_used);

  // Fragment by family (+ the common pool as its own fragment) and answer
  // cross-fragment usage questions with the DSA.
  Fragmentation by_family =
      FragmentationFromNodePartition(g, family_block, kFamilies + 1);
  std::printf("\nfragments by family: %zu, loosely connected: %s\n",
              by_family.NumFragments(),
              by_family.IsLooselyConnected() ? "yes" : "no");
  DsaDatabase db(&by_family);

  const NodeId root = node_of(1, 0);
  const NodeId part = common_base + static_cast<NodeId>(kCommons - 1);
  ExecutionReport report;
  QueryAnswer uses = db.ShortestPath(root, part, &report);
  std::printf("does %s use %s? %s", names[root].c_str(),
              names[part].c_str(), uses.connected ? "yes" : "no");
  if (uses.connected) {
    std::printf(" (cheapest derivation weight %.0f, %zu sites)",
                uses.cost, report.sites.size());
  }
  std::printf("\n");

  // Families never use each other's assemblies — only the common pool.
  QueryAnswer cross = db.ShortestPath(node_of(0, 0), node_of(2, 0));
  std::printf("does %s use %s? %s (families are independent)\n",
              names[node_of(0, 0)].c_str(), names[node_of(2, 0)].c_str(),
              cross.connected ? "yes" : "no");
  std::printf("oracle agrees: %s\n",
              Reachable(g, node_of(0, 0), node_of(2, 0)) ? "yes" : "no");
  return 0;
}
