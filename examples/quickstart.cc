// Quickstart: generate a transportation graph, fragment it with each of
// the paper's three algorithms, inspect the fragmentation characteristics,
// and answer a shortest-path query with the disconnection set approach.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "tcf/tcf.h"

int main() {
  using namespace tcf;

  // 1. A transportation network: 4 dense clusters, loosely interconnected
  //    (Fig. 3 of the paper). Edge weights are Euclidean distances.
  TransportationGraphOptions gen;
  gen.num_clusters = 4;
  gen.nodes_per_cluster = 25;
  gen.target_edges_per_cluster = 100;
  Rng rng(42);
  TransportationGraph network = GenerateTransportationGraph(gen, &rng);
  const Graph& g = network.graph;
  std::printf("generated %zu nodes, %zu edge tuples\n", g.NumNodes(),
              g.NumEdges());

  // 2. Fragment it three ways, each optimizing a different Sec. 2.2 issue.
  CenterBasedOptions center_opts;
  center_opts.num_fragments = 4;
  center_opts.distributed_centers = true;  // Table 2's refinement
  Fragmentation by_centers = CenterBasedFragmentation(g, center_opts);

  BondEnergyOptions bea_opts;
  bea_opts.num_fragments = 4;
  Fragmentation by_bond_energy = BondEnergyFragmentation(g, bea_opts);

  LinearOptions linear_opts;
  linear_opts.num_fragments = 4;
  Fragmentation by_linear = LinearFragmentation(g, linear_opts).fragmentation;

  for (const auto& [name, frag] :
       {std::pair<const char*, const Fragmentation*>{"center-based",
                                                     &by_centers},
        {"bond-energy", &by_bond_energy},
        {"linear", &by_linear}}) {
    FragmentationCharacteristics c = ComputeCharacteristics(*frag);
    std::printf("%s\n", CharacteristicsRow(name, c).c_str());
  }

  // 3. Open a DSA database on the bond-energy fragmentation (the paper's
  //    bet for query performance) and ask the two classic questions.
  DsaDatabase db(&by_bond_energy);
  const NodeId amsterdam = 3;          // a node in cluster 0
  const NodeId milan = 80;             // a node in cluster 3
  ExecutionReport report;
  QueryAnswer answer = db.ShortestPath(amsterdam, milan, &report);
  std::printf("\nIs %u connected to %u?  %s\n", amsterdam, milan,
              answer.connected ? "yes" : "no");
  std::printf("shortest-path cost: %.3f (via %zu fragment sites, %zu "
              "tuples shipped for the final joins)\n",
              answer.cost, report.sites.size(),
              report.communication_tuples);

  // 4. The answer equals a whole-graph Dijkstra — but no site ever saw the
  //    whole graph.
  std::printf("whole-graph oracle agrees: %.3f\n",
              Dijkstra(g, amsterdam).distance[milan]);
  return 0;
}
