// Remote queries over the tcfrag wire protocol (src/net/): connect a
// Client to a tcfragd daemon and run blocking and pipelined shortest-path
// queries plus one edge update.
//
//   remote_queries [HOST PORT]
//
// With HOST and PORT it talks to an external daemon (start one with
// `tcfragd`); without arguments it self-hosts — it spins up the daemon's
// whole stack (graph -> fragmentation -> MaintainedDatabase ->
// QueryService -> Server) in-process on an ephemeral loopback port and
// talks to itself through a real TCP socket, so the example always runs.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "dsa/maintenance.h"
#include "dsa/service.h"
#include "fragment/linear.h"
#include "graph/generator.h"
#include "net/client.h"
#include "net/server.h"
#include "util/rng.h"

using namespace tcf;

namespace {

Graph MakeGraph(uint64_t seed) {
  Rng rng(seed);
  TransportationGraphOptions gen;  // 4 clusters x 25 nodes, Table 1 shape
  return GenerateTransportationGraph(gen, &rng).graph;
}

Fragmentation MakeFragmentation(const Graph& graph) {
  LinearOptions lopts;
  lopts.num_fragments = 4;
  return LinearFragmentation(graph, lopts).fragmentation;
}

/// The daemon's default stack, owned in-process for the self-hosted mode.
/// The graph outlives the fragmentation (which points into it), which
/// outlives the database, and so on down the member order.
struct SelfHosted {
  explicit SelfHosted(uint64_t seed)
      : graph(MakeGraph(seed)),
        frag(MakeFragmentation(graph)),
        mdb(MaintainedDatabase::FromFragmentation(frag)),
        service(&mdb),
        server(&service) {
    TCF_CHECK(server.Start().ok());
  }
  ~SelfHosted() {
    server.Stop();       // drain replies onto the wire first,
    service.Shutdown();  // then stop the service
  }

  Graph graph;
  Fragmentation frag;
  MaintainedDatabase mdb;
  QueryService service;
  Server server;
};

}  // namespace

int main(int argc, char** argv) {
  std::unique_ptr<SelfHosted> self;
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  if (argc >= 3) {
    host = argv[1];
    port = static_cast<uint16_t>(std::strtoul(argv[2], nullptr, 10));
    std::printf("connecting to %s:%u\n", host.c_str(),
                static_cast<unsigned>(port));
  } else {
    self = std::make_unique<SelfHosted>(/*seed=*/7);
    port = self->server.port();
    std::printf("self-hosting a daemon on 127.0.0.1:%u\n",
                static_cast<unsigned>(port));
  }

  Result<std::unique_ptr<Client>> connected = Client::Connect(host, port);
  if (!connected.ok()) {
    std::fprintf(stderr, "connect failed: %s\n",
                 connected.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<Client> client = std::move(connected).value();
  TCF_CHECK(client->Ping().ok());

  // Blocking round trips: one request on the wire at a time.
  std::printf("\nblocking queries:\n");
  for (auto [from, to] : {std::pair<NodeId, NodeId>{0, 42},
                          {3, 77}, {10, 99}}) {
    Result<Weight> cost = client->ShortestPathCost(from, to);
    if (cost.ok()) {
      std::printf("  cost(%u -> %u) = %.3f\n", from, to, cost.value());
    } else {
      std::printf("  cost(%u -> %u): %s\n", from, to,
                  cost.status().ToString().c_str());
    }
  }

  // Pipelined: submit a burst of queries without waiting, then collect.
  // All of them share the connection and are answered as the service's
  // micro-batches complete — this is where the wire protocol's request
  // ids earn their keep.
  constexpr size_t kBurst = 64;
  std::printf("\npipelined burst of %zu queries:\n", kBurst);
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::future<Result<Weight>>> in_flight;
  in_flight.reserve(kBurst);
  for (size_t i = 0; i < kBurst; ++i) {
    in_flight.push_back(client->SubmitShortestPath(
        static_cast<NodeId>(i % 100), static_cast<NodeId>((i * 37) % 100)));
  }
  size_t answered = 0;
  for (auto& f : in_flight) {
    if (f.get().ok()) ++answered;
  }
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  std::printf("  %zu/%zu answered in %.2f ms (one connection, one burst)\n",
              answered, kBurst, ms);

  // One edge update through the same pipe; the epoch in the reply orders
  // it against subsequent queries.
  Result<uint64_t> epoch =
      client->SubmitUpdate(EdgeUpdate::Reweight(0, 1, 2.5)).get();
  if (epoch.ok()) {
    std::printf("\nreweight(0 -> 1, 2.5) applied at epoch %llu\n",
                static_cast<unsigned long long>(epoch.value()));
  } else {
    std::printf("\nreweight failed: %s\n",
                epoch.status().ToString().c_str());
  }

  // A deliberately bad endpoint: the error comes back as a clean Status
  // on THIS request's future; the connection stays usable.
  Result<Weight> bad = client->ShortestPathCost(0, 1000000);
  std::printf("cost(0 -> 1000000): %s\n",
              bad.ok() ? "unexpected success"
                       : bad.status().ToString().c_str());
  TCF_CHECK(client->Ping().ok());  // still alive after the error
  std::printf("connection still healthy after the rejected request\n");
  return 0;
}
