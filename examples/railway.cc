// The paper's motivating scenario (Sec. 2.1): a European railway network,
// naturally fragmented by country, answering "what is the shortest
// connection between Amsterdam and Milan?" — and the observation that "in
// practice, queries about the shortest path of two cities in Holland can
// be answered by the Dutch railway computer system alone, even if the path
// goes outside the Dutch border."
//
// We build a small named network over Holland, Germany, Switzerland and
// Italy, fragment it by country (the "application's semantics"
// fragmentation the disconnection set approach assumes), and run both
// queries.
//
//   $ ./build/examples/railway
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "tcf/tcf.h"

namespace {

struct City {
  const char* name;
  const char* country;
  double x, y;
};

// Coordinates are rough map positions (x east, y north), weights below are
// rail distances in km (stylized).
const City kCities[] = {
    // Holland (country 0)
    {"Amsterdam", "NL", 4.9, 52.4},
    {"Utrecht", "NL", 5.1, 52.1},
    {"Rotterdam", "NL", 4.5, 51.9},
    {"Eindhoven", "NL", 5.5, 51.4},
    {"Arnhem", "NL", 5.9, 52.0},       // border station to Germany
    {"Maastricht", "NL", 5.7, 50.8},   // border station to Germany (south)
    // Germany (country 1)
    {"Duisburg", "DE", 6.8, 51.4},
    {"Koeln", "DE", 7.0, 50.9},
    {"Frankfurt", "DE", 8.7, 50.1},
    {"Stuttgart", "DE", 9.2, 48.8},
    {"Muenchen", "DE", 11.6, 48.1},
    {"Freiburg", "DE", 7.8, 48.0},     // border station to Switzerland
    // Switzerland (country 2)
    {"Basel", "CH", 7.6, 47.6},
    {"Zuerich", "CH", 8.5, 47.4},
    {"Bern", "CH", 7.4, 46.9},
    {"Lugano", "CH", 9.0, 46.0},       // border station to Italy
    // Italy (country 3)
    {"Como", "IT", 9.1, 45.8},
    {"Milano", "IT", 9.2, 45.5},
    {"Verona", "IT", 11.0, 45.4},
    {"Torino", "IT", 7.7, 45.1},
};

struct Track {
  const char* a;
  const char* b;
  double km;
};

const Track kTracks[] = {
    // Dutch network (dense).
    {"Amsterdam", "Utrecht", 37}, {"Amsterdam", "Rotterdam", 78},
    {"Utrecht", "Rotterdam", 56}, {"Utrecht", "Arnhem", 60},
    {"Utrecht", "Eindhoven", 88}, {"Rotterdam", "Eindhoven", 110},
    {"Eindhoven", "Maastricht", 86}, {"Amsterdam", "Arnhem", 100},
    {"Eindhoven", "Arnhem", 70},
    // NL <-> DE borders.
    {"Arnhem", "Duisburg", 40}, {"Maastricht", "Koeln", 60},
    // German network.
    {"Duisburg", "Koeln", 50}, {"Koeln", "Frankfurt", 190},
    {"Frankfurt", "Stuttgart", 210}, {"Stuttgart", "Muenchen", 250},
    {"Frankfurt", "Freiburg", 270}, {"Stuttgart", "Freiburg", 180},
    {"Koeln", "Stuttgart", 370},
    // DE <-> CH border.
    {"Freiburg", "Basel", 70},
    // Swiss network.
    {"Basel", "Zuerich", 87}, {"Basel", "Bern", 100},
    {"Bern", "Zuerich", 125}, {"Zuerich", "Lugano", 170},
    {"Bern", "Lugano", 230},
    // CH <-> IT border.
    {"Lugano", "Como", 32},
    // Italian network.
    {"Como", "Milano", 46}, {"Milano", "Verona", 148},
    {"Milano", "Torino", 141}, {"Verona", "Como", 190},
};

}  // namespace

int main() {
  using namespace tcf;

  // Build the graph and the by-country node blocks.
  std::map<std::string, NodeId> id_of;
  std::map<std::string, int> country_block = {
      {"NL", 0}, {"DE", 1}, {"CH", 2}, {"IT", 3}};
  GraphBuilder builder;
  std::vector<int> block_of_node;
  std::vector<std::string> name_of;
  for (const City& city : kCities) {
    id_of[city.name] = builder.AddNode({city.x, city.y});
    block_of_node.push_back(country_block[city.country]);
    name_of.push_back(city.name);
  }
  for (const Track& track : kTracks) {
    builder.AddSymmetricEdge(id_of[track.a], id_of[track.b], track.km);
  }
  Graph g = builder.Build();

  // Fragment by country — the natural, semantics-given fragmentation.
  Fragmentation by_country =
      FragmentationFromNodePartition(g, block_of_node, 4);
  std::printf("countries as fragments: %zu fragments, loosely connected: "
              "%s\n",
              by_country.NumFragments(),
              by_country.IsLooselyConnected() ? "yes" : "no");
  for (const DisconnectionSet& ds : by_country.disconnection_sets()) {
    std::printf("  border %u-%u:", ds.frag_a, ds.frag_b);
    for (NodeId v : ds.nodes) std::printf(" %s", name_of[v].c_str());
    std::printf("\n");
  }

  DsaDatabase db(&by_country);

  // Query 1: Amsterdam -> Milano, crossing three borders.
  ExecutionReport report;
  QueryAnswer answer =
      db.ShortestPath(id_of["Amsterdam"], id_of["Milano"], &report);
  std::printf("\nAmsterdam -> Milano: %.0f km over %zu fragment sites "
              "(chains considered: %zu)\n",
              answer.cost, report.sites.size(), answer.chains_considered);
  std::printf("oracle check: %.0f km\n",
              Dijkstra(g, id_of["Amsterdam"]).distance[id_of["Milano"]]);

  // Query 2: two Dutch cities; the best route may thread through Germany,
  // yet only the Dutch site computes (the complementary information about
  // the German detour is precomputed at the border).
  ExecutionReport dutch_report;
  QueryAnswer dutch = db.ShortestPath(id_of["Arnhem"],
                                      id_of["Maastricht"], &dutch_report);
  std::printf("\nArnhem -> Maastricht: %.0f km, computed by %zu site(s)\n",
              dutch.cost, dutch_report.sites.size());
  std::printf("staying inside Holland (Arnhem-Eindhoven-Maastricht) costs "
              "%.0f km; crossing\nthrough Duisburg-Koeln costs %.0f km. The "
              "Dutch site finds the German route\nalone: the border pair's "
              "shortest German transit is precomputed in its\n"
              "complementary information.\n",
              70.0 + 86.0, 40.0 + 50.0 + 60.0);
  std::printf("oracle check: %.0f km\n",
              Dijkstra(g, id_of["Arnhem"]).distance[id_of["Maastricht"]]);
  return 0;
}
