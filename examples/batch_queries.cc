// Serving many queries at once: generate a transportation network, build a
// DsaDatabase, and answer a skewed 500-query workload in one
// BatchExecutor::Execute call. The batch layer shares work twice over —
// chain plans through the LRU plan cache and keyhole subqueries through
// cross-query deduplication — so a hot-pair workload runs far fewer site
// computations than it has queries.
#include <cstdio>

#include "dsa/batch.h"
#include "dsa/workload.h"
#include "fragment/linear.h"
#include "graph/generator.h"

using namespace tcf;

int main() {
  // A 4-country railway network (Fig. 3's shape) fragmented per country.
  Rng rng(2024);
  TransportationGraphOptions gopts;
  gopts.num_clusters = 4;
  gopts.nodes_per_cluster = 40;
  gopts.target_edges_per_cluster = 160;
  TransportationGraph t = GenerateTransportationGraph(gopts, &rng);
  LinearOptions lopts;
  lopts.num_fragments = 4;
  Fragmentation frag = LinearFragmentation(t.graph, lopts).fragmentation;

  DsaDatabase db(&frag);
  BatchExecutor executor(&db);

  // 500 queries, 90% of them hitting 6 hot city pairs.
  WorkloadSpec spec;
  spec.mix = WorkloadMix::kHotPair;
  spec.num_queries = 500;
  spec.num_hot_pairs = 6;
  std::vector<Query> queries = GenerateWorkload(frag, spec, &rng);
  BatchResult result = executor.Execute(queries);

  size_t connected = 0;
  for (const RouteAnswer& a : result.answers) {
    if (a.answer.connected) ++connected;
  }
  const BatchStats& s = result.stats;
  std::printf("answered %zu queries (%zu connected) in %.1f ms\n",
              s.num_queries, connected, s.wall_seconds * 1e3);
  std::printf("  subqueries: %zu requested -> %zu executed (%.1f%% shared)\n",
              s.subqueries_requested, s.subqueries_executed,
              100.0 * s.DedupSavings());
  std::printf("  plan cache: %.1f%% hit rate over %zu lookups\n",
              100.0 * s.PlanCacheHitRate(),
              s.plan_cache_hits + s.plan_cache_misses);
  std::printf("  throughput: %.0f queries/sec\n", s.QueriesPerSecond());

  // Single queries and batches share one database; mixing them is safe.
  const Query& probe = queries.front();
  QueryAnswer single = db.ShortestPath(probe.from, probe.to);
  std::printf("cross-check %u -> %u: batch %.3f, single %.3f\n", probe.from,
              probe.to, result.answers.front().answer.cost, single.cost);
  return 0;
}
