// fragmentation_lab: a small command-line workbench around the library —
// generate a graph, run all fragmentation algorithms on it, print the
// characteristics table, and export Graphviz drawings of the fragmented
// graph (one per algorithm, fragments colored, border nodes doubled).
//
//   $ ./build/examples/fragmentation_lab [nodes_per_cluster] [clusters] [f]
//   $ dot -Kfdp -Tpng /tmp/tcf_bond-energy.dot -o bea.png
#include <cstdio>
#include <cstdlib>
#include <string>

#include "tcf/tcf.h"

int main(int argc, char** argv) {
  using namespace tcf;

  const size_t nodes_per_cluster =
      argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 25;
  const size_t clusters = argc > 2 ? static_cast<size_t>(std::atoi(argv[2]))
                                   : 4;
  const size_t f = argc > 3 ? static_cast<size_t>(std::atoi(argv[3])) : 4;

  TransportationGraphOptions gen;
  gen.num_clusters = clusters;
  gen.nodes_per_cluster = nodes_per_cluster;
  gen.target_edges_per_cluster = static_cast<double>(nodes_per_cluster) * 4;
  Rng rng(2025);
  TransportationGraph network = GenerateTransportationGraph(gen, &rng);
  const Graph& g = network.graph;
  std::printf("transportation graph: %zu clusters x %zu nodes, %zu edge "
              "tuples\n\n",
              clusters, nodes_per_cluster, g.NumEdges());

  TablePrinter table(
      {"Algorithm", "F", "DS", "dF", "dDS", "acyclic", "#frags", "dot file"});

  auto add = [&](const std::string& name, const Fragmentation& frag) {
    FragmentationCharacteristics c = ComputeCharacteristics(frag);
    const std::string path = "/tmp/tcf_" + name + ".dot";
    std::vector<bool> border(g.NumNodes(), false);
    for (NodeId v = 0; v < g.NumNodes(); ++v) border[v] = frag.IsBorderNode(v);
    Status status = WriteDot(g, path, frag.NodeGroups(), border);
    table.AddRow({name, TablePrinter::Fmt(c.avg_fragment_edges),
                  TablePrinter::Fmt(c.avg_ds_nodes),
                  TablePrinter::Fmt(c.dev_fragment_edges),
                  TablePrinter::Fmt(c.dev_ds_nodes),
                  c.loosely_connected ? "yes" : "no",
                  std::to_string(c.num_fragments),
                  status.ok() ? path : status.ToString()});
  };

  CenterBasedOptions center_opts;
  center_opts.num_fragments = f;
  add("center-based", CenterBasedFragmentation(g, center_opts));

  center_opts.distributed_centers = true;
  add("distributed-centers", CenterBasedFragmentation(g, center_opts));

  BondEnergyOptions bea_opts;
  bea_opts.num_fragments = f;
  add("bond-energy", BondEnergyFragmentation(g, bea_opts));

  LinearOptions linear_opts;
  linear_opts.num_fragments = f;
  add("linear", LinearFragmentation(g, linear_opts).fragmentation);

  Rng frag_rng(7);
  add("random", RandomFragmentation(g, f, &frag_rng));

  table.Print();

  // The abandoned k-connectivity idea, as analysis output.
  RelevantNodesOptions ropts;
  ropts.sample_pairs = 48;
  auto relevant = FindRelevantNodes(g, ropts);
  std::printf("\n'relevant nodes' by sampled min-vertex-cut frequency "
              "(the approach Sec. 3 abandons):\n ");
  const size_t top = std::min<size_t>(10, relevant.size());
  for (size_t i = 0; i < top; ++i) {
    std::printf(" %u(x%zu)", relevant[i].node, relevant[i].cut_count);
  }
  std::printf("\nrender the drawings with e.g.:  dot -Kfdp -Tpng "
              "/tmp/tcf_bond-energy.dot -o bea.png\n");
  return 0;
}
