// Streaming admission latency/throughput (see docs/ARCHITECTURE.md,
// admission layer). Three sections over the Table 1 transportation
// workload:
//
//   1. streaming vs naive — N client threads stream the uniform workload
//      through a QueryService (micro-batched via BatchExecutor) vs the
//      naive one-query-at-a-time dispatch loop over the same database.
//      The acceptance bar: streaming sustains >= 2x the naive qps at 8
//      clients, with p99 latency bounded by max_wait plus one batch
//      execution.
//   2. latency vs throughput — the admission policy grid (max_wait x
//      max_batch) under closed-loop load: bigger windows/batches buy
//      throughput with latency, smaller ones the reverse.
//   3. open-loop arrivals — uniform vs bursty arrival processes at a fixed
//      offered rate: burstiness deepens micro-batch fill at the same mean
//      rate.
//   4. shard scaling — the sharded admission path (ServiceOptions::
//      admission_shards) swept over submitter counts {1, 2, 4, 8, 16} x
//      shard counts {1, 4, 8}: striping the admission queues takes the
//      global mutex off the submit path, so the win grows with submitter
//      concurrency. The acceptance bar: shards=8 beats the single-queue
//      baseline at 16 submitters.
//   5. flush-worker scaling — the parallel flush pipeline
//      (ServiceOptions::flush_workers) swept over submitters x
//      flush-workers {1, 2, 4} x shards: concurrent micro-batch execution
//      on a re-entrant backend. The acceptance bar (gated only where the
//      hardware can show it): workers=4 sustains >= 1.5x the workers=1
//      qps at 16 submitters on a machine with >= 4 hardware threads.
//
// `service_latency [N [clients]]` sets the workload size (default 10000)
// and client-thread count (default 8); `--json <path>` additionally writes
// the machine-readable metrics the CI perf gate compares.
// `--gate-flush-speedup` turns the flush-worker acceptance bar into a
// hard exit code on machines with >= 4 hardware threads (a no-op
// elsewhere, so single-core runners only record the sweep).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "bench_util.h"
#include "dsa/service.h"
#include "dsa/workload.h"
#include "util/timer.h"

using namespace tcf;
using namespace tcf::bench;

namespace {

struct LoadResult {
  double wall_seconds = 0.0;
  ServiceStats stats;
};

/// Closed-loop load: each of `clients` threads streams its share of
/// `queries` through `service` with a bounded pipeline window (submit up
/// to `window` futures, then drain them) — many concurrent clients with a
/// few requests in flight each, not one giant pre-formed batch.
LoadResult DriveClosedLoop(QueryService* service,
                           const std::vector<Query>& queries, size_t clients,
                           size_t window) {
  WallTimer timer;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c]() {
      std::vector<std::future<Weight>> in_flight;
      in_flight.reserve(window);
      for (size_t i = c; i < queries.size(); i += clients) {
        in_flight.push_back(
            service->SubmitShortestPath(queries[i].from, queries[i].to));
        if (in_flight.size() == window) {
          for (auto& f : in_flight) f.get();
          in_flight.clear();
        }
      }
      for (auto& f : in_flight) f.get();
    });
  }
  for (auto& t : threads) t.join();
  LoadResult out;
  out.wall_seconds = timer.ElapsedSeconds();
  out.stats = service->Stats();
  return out;
}

/// Open-loop load: one driver submits along the generated arrival
/// schedule, never waiting for answers (futures are drained afterwards).
LoadResult DriveOpenLoop(QueryService* service,
                         const std::vector<Query>& queries,
                         const std::vector<double>& arrivals) {
  WallTimer timer;
  std::vector<std::future<Weight>> futures;
  futures.reserve(queries.size());
  const auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < queries.size(); ++i) {
    std::this_thread::sleep_until(
        start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(arrivals[i])));
    futures.push_back(
        service->SubmitShortestPath(queries[i].from, queries[i].to));
  }
  for (auto& f : futures) f.get();
  LoadResult out;
  out.wall_seconds = timer.ElapsedSeconds();
  out.stats = service->Stats();
  return out;
}

std::vector<Query> UniformWorkload(const Fragmentation& frag, size_t n,
                                   uint64_t seed) {
  WorkloadSpec spec;
  spec.mix = WorkloadMix::kUniform;
  spec.num_queries = n;
  Rng rng(seed);
  return GenerateWorkload(frag, spec, &rng);
}

void StreamingVsNaive(const Fragmentation& frag, size_t num_queries,
                      size_t clients, JsonMetrics* metrics) {
  const std::vector<Query> queries = UniformWorkload(frag, num_queries, 51);
  std::printf(
      "streaming vs naive: uniform mix, %zu queries, %zu client threads\n",
      num_queries, clients);

  // Naive baseline: the same database, one query at a time — what serving
  // this stream looks like without an admission layer.
  DsaDatabase naive_db(&frag);
  WallTimer naive_timer;
  for (const Query& q : queries) naive_db.ShortestPath(q.from, q.to);
  const double naive_seconds = naive_timer.ElapsedSeconds();
  const double naive_qps = static_cast<double>(num_queries) / naive_seconds;

  // Streaming: fresh database so the naive loop cannot warm any cache.
  // Throughput-leaning policy (the latency/throughput grid below sweeps
  // the trade-off): deep micro-batches maximize cross-query sharing.
  DsaDatabase db(&frag);
  ServiceOptions opts;
  opts.max_batch = 256;
  opts.max_wait = std::chrono::milliseconds(2);
  QueryService service(&db, opts);
  const LoadResult run =
      DriveClosedLoop(&service, queries, clients, opts.max_batch);
  service.Shutdown();
  const double service_qps =
      static_cast<double>(num_queries) / run.wall_seconds;

  TablePrinter table({"path", "q/s", "p50 ms", "p95 ms", "p99 ms",
                      "mean fill", "speedup"});
  table.AddRow({"naive 1-at-a-time", TablePrinter::Fmt(naive_qps, 0), "-",
                "-", "-", "1.0", "1.00x"});
  table.AddRow({"streaming service", TablePrinter::Fmt(service_qps, 0),
                TablePrinter::Fmt(run.stats.LatencyPercentileMs(50), 2),
                TablePrinter::Fmt(run.stats.LatencyPercentileMs(95), 2),
                TablePrinter::Fmt(run.stats.LatencyPercentileMs(99), 2),
                TablePrinter::Fmt(run.stats.MeanBatchFill(), 1),
                TablePrinter::Fmt(service_qps / naive_qps, 2) + "x"});
  table.Print();
  std::printf("\n");

  metrics->Set("streaming/service_qps", service_qps);
  metrics->Set("streaming/naive_qps", naive_qps);
  metrics->Set("streaming/speedup", service_qps / naive_qps);
  metrics->Set("streaming/p99_ms", run.stats.LatencyPercentileMs(99));
  metrics->Set("streaming/mean_fill", run.stats.MeanBatchFill());
}

void LatencyVsThroughput(const Fragmentation& frag, size_t num_queries,
                         size_t clients, JsonMetrics* metrics) {
  const std::vector<Query> queries = UniformWorkload(frag, num_queries, 52);
  std::printf(
      "latency vs throughput: admission policy grid, %zu queries, "
      "%zu client threads (closed loop)\n",
      num_queries, clients);
  TablePrinter table({"max_batch", "max_wait ms", "q/s", "p50 ms", "p95 ms",
                      "p99 ms", "mean fill"});

  for (size_t max_batch : {16, 64, 256}) {
    for (int wait_us : {500, 2000, 8000}) {
      DsaDatabase db(&frag);
      ServiceOptions opts;
      opts.max_batch = max_batch;
      opts.max_wait = std::chrono::microseconds(wait_us);
      QueryService service(&db, opts);
      const LoadResult run =
          DriveClosedLoop(&service, queries, clients, max_batch);
      service.Shutdown();
      const double qps = static_cast<double>(num_queries) / run.wall_seconds;
      table.AddRow({std::to_string(max_batch),
                    TablePrinter::Fmt(wait_us / 1e3, 1),
                    TablePrinter::Fmt(qps, 0),
                    TablePrinter::Fmt(run.stats.LatencyPercentileMs(50), 2),
                    TablePrinter::Fmt(run.stats.LatencyPercentileMs(95), 2),
                    TablePrinter::Fmt(run.stats.LatencyPercentileMs(99), 2),
                    TablePrinter::Fmt(run.stats.MeanBatchFill(), 1)});
      metrics->Set("grid/batch_" + std::to_string(max_batch) + "_wait_" +
                       std::to_string(wait_us) + "us_qps",
                   qps);
    }
  }
  table.Print();
  std::printf("\n");
}

void OpenLoopArrivals(const Fragmentation& frag, size_t num_queries,
                      JsonMetrics* metrics) {
  // Offered rate low enough that even the naive path could keep up — the
  // comparison isolates the *shape* of the arrival process.
  const double offered_qps = 4000.0;
  const size_t n = std::min<size_t>(num_queries, 4000);
  std::printf(
      "open-loop arrivals: uniform mix, %zu queries, offered %.0f q/s\n", n,
      offered_qps);
  TablePrinter table({"arrivals", "sustained q/s", "p50 ms", "p95 ms",
                      "p99 ms", "mean fill", "batches"});

  for (ArrivalProcess process :
       {ArrivalProcess::kUniform, ArrivalProcess::kBursty}) {
    WorkloadSpec spec;
    spec.mix = WorkloadMix::kUniform;
    spec.num_queries = n;
    spec.arrivals = process;
    spec.arrival_rate_qps = offered_qps;
    Rng qrng(53), arng(54);
    const std::vector<Query> queries = GenerateWorkload(frag, spec, &qrng);
    const std::vector<double> arrivals = GenerateArrivalTimes(spec, &arng);

    DsaDatabase db(&frag);
    ServiceOptions opts;
    opts.max_batch = 64;
    opts.max_wait = std::chrono::milliseconds(2);
    QueryService service(&db, opts);
    const LoadResult run = DriveOpenLoop(&service, queries, arrivals);
    service.Shutdown();

    table.AddRow({ArrivalProcessName(process),
                  TablePrinter::Fmt(run.stats.SustainedQps(), 0),
                  TablePrinter::Fmt(run.stats.LatencyPercentileMs(50), 2),
                  TablePrinter::Fmt(run.stats.LatencyPercentileMs(95), 2),
                  TablePrinter::Fmt(run.stats.LatencyPercentileMs(99), 2),
                  TablePrinter::Fmt(run.stats.MeanBatchFill(), 1),
                  std::to_string(run.stats.batches)});
    metrics->Set(std::string("open_loop/") + ArrivalProcessName(process) +
                     "/mean_fill",
                 run.stats.MeanBatchFill());
    metrics->Set(std::string("open_loop/") + ArrivalProcessName(process) +
                     "/p99_ms",
                 run.stats.LatencyPercentileMs(99));
  }
  table.Print();
  std::printf("\n");
}

void ShardScalingSweep(const Fragmentation& frag, size_t num_queries,
                       JsonMetrics* metrics) {
  const size_t n = std::min<size_t>(num_queries, 8000);
  const std::vector<Query> queries = UniformWorkload(frag, n, 55);
  constexpr size_t kClients[] = {1, 2, 4, 8, 16};
  constexpr size_t kShards[] = {1, 4, 8};
  std::printf(
      "shard scaling: uniform mix, %zu queries, closed loop "
      "(submitters x admission_shards)\n",
      n);
  TablePrinter table({"clients", "shards=1 q/s", "shards=4 q/s",
                      "shards=8 q/s", "8-shard speedup"});

  double qps_16_clients_1_shard = 0.0;
  double qps_16_clients_8_shards = 0.0;
  for (size_t clients : kClients) {
    std::vector<double> qps_by_shards;
    for (size_t shards : kShards) {
      // Best of three: closed-loop runs at high submitter counts are
      // scheduler-noisy, and the sweep compares cells against each other.
      double qps = 0.0;
      for (int repeat = 0; repeat < 3; ++repeat) {
        DsaDatabase db(&frag);
        ServiceOptions opts;
        opts.max_batch = 256;
        opts.max_wait = std::chrono::milliseconds(2);
        opts.admission_shards = shards;
        QueryService service(&db, opts);
        const LoadResult run =
            DriveClosedLoop(&service, queries, clients, 32);
        service.Shutdown();
        qps = std::max(qps, static_cast<double>(n) / run.wall_seconds);
      }
      qps_by_shards.push_back(qps);
      // Deliberately NOT named *_qps: the per-cell numbers are closed-loop
      // runs at up to 16 threads on noisy shared runners, so they are
      // recorded for the baseline artifact but kept out of the hard CI
      // perf gate (which keys on the _qps suffix).
      metrics->Set("shard_sweep/clients_" + std::to_string(clients) +
                       "_shards_" + std::to_string(shards) + "_throughput",
                   qps);
      if (clients == 16 && shards == 1) qps_16_clients_1_shard = qps;
      if (clients == 16 && shards == 8) qps_16_clients_8_shards = qps;
    }
    table.AddRow({std::to_string(clients),
                  TablePrinter::Fmt(qps_by_shards[0], 0),
                  TablePrinter::Fmt(qps_by_shards[1], 0),
                  TablePrinter::Fmt(qps_by_shards[2], 0),
                  TablePrinter::Fmt(qps_by_shards[2] / qps_by_shards[0], 2) +
                      "x"});
  }
  table.Print();
  const double speedup = qps_16_clients_1_shard == 0.0
                             ? 0.0
                             : qps_16_clients_8_shards /
                                   qps_16_clients_1_shard;
  std::printf("16-submitter speedup, 8 shards vs single queue: %.2fx\n\n",
              speedup);
  metrics->Set("shard_sweep/speedup_16_clients_8_vs_1", speedup);
}

/// Section 5: submitters x flush_workers x admission_shards. Returns false
/// only when `gate` is set, the machine has >= 4 hardware threads, and the
/// workers=4-vs-1 speedup misses the 1.5x bar.
bool FlushWorkerSweep(const Fragmentation& frag, size_t num_queries,
                      JsonMetrics* metrics, bool gate) {
  const size_t n = std::min<size_t>(num_queries, 8000);
  const std::vector<Query> queries = UniformWorkload(frag, n, 57);
  const unsigned hardware = std::thread::hardware_concurrency();
  constexpr size_t kSubmitters[] = {4, 16};
  constexpr size_t kWorkers[] = {1, 2, 4};
  constexpr size_t kShards[] = {1, 8};
  std::printf(
      "flush-worker scaling: uniform mix, %zu queries, closed loop "
      "(submitters x flush_workers x admission_shards), %u hardware "
      "threads\n",
      n, hardware);
  TablePrinter table({"submitters", "shards", "workers=1 q/s",
                      "workers=2 q/s", "workers=4 q/s", "4v1 speedup"});

  double qps_16sub_8sh_w1 = 0.0;
  double qps_16sub_8sh_w4 = 0.0;
  for (size_t submitters : kSubmitters) {
    for (size_t shards : kShards) {
      std::vector<double> qps_by_workers;
      for (size_t workers : kWorkers) {
        // Best of three, like the shard sweep: cells compare against each
        // other and closed-loop runs are scheduler-noisy.
        double qps = 0.0;
        for (int repeat = 0; repeat < 3; ++repeat) {
          DsaDatabase db(&frag);
          ServiceOptions opts;
          opts.max_batch = 256;
          opts.max_wait = std::chrono::milliseconds(2);
          opts.admission_shards = shards;
          opts.flush_workers = workers;
          QueryService service(&db, opts);
          const LoadResult run =
              DriveClosedLoop(&service, queries, submitters, 32);
          service.Shutdown();
          qps = std::max(qps, static_cast<double>(n) / run.wall_seconds);
        }
        qps_by_workers.push_back(qps);
        // Not *_qps-keyed: per-cell numbers stay out of the rolling-median
        // gate (same policy as the shard sweep); the explicit
        // --gate-flush-speedup bar below is the enforcement point.
        metrics->Set("flush_sweep/sub_" + std::to_string(submitters) +
                         "_workers_" + std::to_string(workers) + "_shards_" +
                         std::to_string(shards) + "_throughput",
                     qps);
        if (submitters == 16 && shards == 8) {
          if (workers == 1) qps_16sub_8sh_w1 = qps;
          if (workers == 4) qps_16sub_8sh_w4 = qps;
        }
      }
      table.AddRow({std::to_string(submitters), std::to_string(shards),
                    TablePrinter::Fmt(qps_by_workers[0], 0),
                    TablePrinter::Fmt(qps_by_workers[1], 0),
                    TablePrinter::Fmt(qps_by_workers[2], 0),
                    TablePrinter::Fmt(
                        qps_by_workers[2] / qps_by_workers[0], 2) +
                        "x"});
    }
  }
  table.Print();
  const double speedup = qps_16sub_8sh_w1 == 0.0
                             ? 0.0
                             : qps_16sub_8sh_w4 / qps_16sub_8sh_w1;
  std::printf(
      "16-submitter speedup, 4 flush workers vs 1 (8 shards): %.2fx\n\n",
      speedup);
  metrics->Set("flush_sweep/speedup_workers4_vs_1", speedup);
  metrics->Set("flush_sweep/hardware_threads",
               static_cast<double>(hardware));

  if (gate && hardware >= 4 && speedup < 1.5) {
    std::fprintf(stderr,
                 "FAIL: flush-worker speedup %.2fx < 1.50x bar "
                 "(workers=4 vs 1 at 16 submitters, 8 shards, %u hardware "
                 "threads)\n",
                 speedup, hardware);
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = ConsumeJsonFlag(&argc, argv);
  bool gate_flush_speedup = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--gate-flush-speedup") {
      gate_flush_speedup = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  const size_t num_queries =
      argc > 1 ? static_cast<size_t>(std::strtoull(argv[1], nullptr, 10))
               : 10000;
  const size_t clients =
      argc > 2 ? static_cast<size_t>(std::strtoull(argv[2], nullptr, 10)) : 8;
  JsonMetrics metrics("service_latency");

  Rng rng(7);
  TransportationGraphOptions opts = Table1Options();
  TransportationGraph t = GenerateTransportationGraph(opts, &rng);
  LinearOptions lopts;
  lopts.num_fragments = 4;
  const Fragmentation frag =
      LinearFragmentation(t.graph, lopts).fragmentation;
  std::printf("graph: %zu nodes, %zu edges, %zu fragments\n\n",
              t.graph.NumNodes(), t.graph.NumEdges(), frag.NumFragments());

  StreamingVsNaive(frag, num_queries, clients, &metrics);
  LatencyVsThroughput(frag, std::min<size_t>(num_queries, 4000), clients,
                      &metrics);
  OpenLoopArrivals(frag, num_queries, &metrics);
  ShardScalingSweep(frag, num_queries, &metrics);
  const bool flush_ok =
      FlushWorkerSweep(frag, num_queries, &metrics, gate_flush_speedup);

  if (!json_path.empty() && !metrics.WriteFile(json_path)) return 1;
  return flush_ok ? 0 : 1;
}
