// Micro-benchmarks (google-benchmark) of the three fragmentation
// algorithms' runtime versus graph size — the pre-processing cost a
// database administrator pays once per fragmentation design.
#include <benchmark/benchmark.h>

#include "fragment/bond_energy.h"
#include "fragment/center_based.h"
#include "fragment/linear.h"
#include "graph/generator.h"
#include "util/rng.h"

namespace tcf {
namespace {

TransportationGraph MakeGraph(size_t nodes_per_cluster) {
  TransportationGraphOptions opts;
  opts.num_clusters = 4;
  opts.nodes_per_cluster = nodes_per_cluster;
  opts.target_edges_per_cluster = static_cast<double>(nodes_per_cluster) * 4;
  Rng rng(13);
  return GenerateTransportationGraph(opts, &rng);
}

void BM_CenterBased(benchmark::State& state) {
  auto tg = MakeGraph(static_cast<size_t>(state.range(0)));
  CenterBasedOptions opts;
  opts.num_fragments = 4;
  opts.distributed_centers = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(CenterBasedFragmentation(tg.graph, opts));
  }
}
BENCHMARK(BM_CenterBased)->Arg(25)->Arg(50)->Arg(100)->Arg(150);

void BM_BondEnergy(benchmark::State& state) {
  auto tg = MakeGraph(static_cast<size_t>(state.range(0)));
  BondEnergyOptions opts;
  opts.num_fragments = 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(BondEnergyFragmentation(tg.graph, opts));
  }
}
BENCHMARK(BM_BondEnergy)->Arg(25)->Arg(50)->Arg(100)
    ->Unit(benchmark::kMillisecond);

void BM_BondEnergy_OrderingOnly(benchmark::State& state) {
  auto tg = MakeGraph(static_cast<size_t>(state.range(0)));
  BondEnergyOptions opts;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeBondEnergyOrdering(tg.graph, opts));
  }
}
BENCHMARK(BM_BondEnergy_OrderingOnly)->Arg(25)->Arg(50)->Arg(100)
    ->Unit(benchmark::kMillisecond);

void BM_Linear(benchmark::State& state) {
  auto tg = MakeGraph(static_cast<size_t>(state.range(0)));
  LinearOptions opts;
  opts.num_fragments = 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(LinearFragmentation(tg.graph, opts));
  }
}
BENCHMARK(BM_Linear)->Arg(25)->Arg(50)->Arg(100)->Arg(150);

void BM_StatusScores(benchmark::State& state) {
  auto tg = MakeGraph(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(StatusScores(tg.graph));
  }
}
BENCHMARK(BM_StatusScores)->Arg(25)->Arg(50)->Arg(100)->Arg(150);

}  // namespace
}  // namespace tcf

BENCHMARK_MAIN();
