// Network-edge latency/throughput: what the wire protocol (src/net/) costs
// on top of the in-process QueryService, measured over loopback TCP
// against an in-process Server. Three sections:
//
//   1. blocking RPC — one request on the wire at a time: per-call p50/p99
//      and the resulting qps; the floor a naive request/response client
//      pays per round trip (syscalls + framing + micro-batch wait).
//   2. pipelining depth sweep — one client, {1, 8, 64, 256} requests in
//      flight: pipelining amortizes the round trip AND fills the
//      service's micro-batches, so qps should climb steeply with depth.
//   3. multi-client — 4 concurrent connections at depth 64, the daemon's
//      steady-state shape; also reports the in-process submission rate on
//      the same service for reference (the wire tax at saturation).
//
// `net_latency [N]` sets the per-section query count (default 20000);
// `--json <path>` writes the CI perf-gate metrics (keys ending `_qps`
// are gated against the rolling baseline median).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "dsa/service.h"
#include "dsa/workload.h"
#include "fragment/linear.h"
#include "graph/generator.h"
#include "net/client.h"
#include "net/server.h"
#include "util/timer.h"

using namespace tcf;
using namespace tcf::bench;

namespace {

double PercentileMs(std::vector<double>* samples_ms, double pct) {
  if (samples_ms->empty()) return 0.0;
  std::sort(samples_ms->begin(), samples_ms->end());
  const size_t idx = static_cast<size_t>(
      pct / 100.0 * static_cast<double>(samples_ms->size() - 1));
  return (*samples_ms)[idx];
}

std::vector<Query> UniformWorkload(const Fragmentation& frag, size_t n,
                                   uint64_t seed) {
  WorkloadSpec spec;
  spec.mix = WorkloadMix::kUniform;
  spec.num_queries = n;
  Rng rng(seed);
  return GenerateWorkload(frag, spec, &rng);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = ConsumeJsonFlag(&argc, argv);
  const size_t num_queries =
      argc > 1 ? static_cast<size_t>(std::strtoull(argv[1], nullptr, 10))
               : 20000;
  JsonMetrics metrics("net_latency");

  Rng rng(7);
  TransportationGraphOptions gen;
  TransportationGraph t = GenerateTransportationGraph(gen, &rng);
  LinearOptions lopts;
  lopts.num_fragments = 4;
  const Fragmentation frag =
      LinearFragmentation(t.graph, lopts).fragmentation;
  DsaDatabase db(&frag);
  ServiceOptions sopts;
  sopts.max_batch = 256;
  sopts.max_wait = std::chrono::milliseconds(1);
  QueryService service(&db, sopts);
  Server server(&service);
  TCF_CHECK(server.Start().ok());
  std::printf("graph: %zu nodes, %zu edges, %zu fragments; server on :%u\n\n",
              t.graph.NumNodes(), t.graph.NumEdges(), frag.NumFragments(),
              static_cast<unsigned>(server.port()));

  // ---- 1. blocking RPC ----------------------------------------------------
  {
    const size_t n = std::min<size_t>(num_queries, 2000);
    const std::vector<Query> queries = UniformWorkload(frag, n, 61);
    auto client =
        std::move(Client::Connect("127.0.0.1", server.port()).value());
    std::vector<double> call_ms;
    call_ms.reserve(n);
    WallTimer timer;
    for (const Query& q : queries) {
      WallTimer call;
      TCF_CHECK(client->ShortestPathCost(q.from, q.to).ok());
      call_ms.push_back(call.ElapsedSeconds() * 1e3);
    }
    const double seconds = timer.ElapsedSeconds();
    const double qps = static_cast<double>(n) / seconds;
    std::printf("blocking RPC: %zu calls, %.0f q/s, p50 %.3f ms, p99 %.3f ms\n",
                n, qps, PercentileMs(&call_ms, 50), PercentileMs(&call_ms, 99));
    metrics.Set("blocking_rpc_qps", qps);
    metrics.Set("blocking/p50_ms", PercentileMs(&call_ms, 50));
    metrics.Set("blocking/p99_ms", PercentileMs(&call_ms, 99));
  }

  // ---- 2. pipelining depth sweep ------------------------------------------
  std::printf("\npipelining depth sweep (one connection):\n");
  for (size_t depth : {size_t{1}, size_t{8}, size_t{64}, size_t{256}}) {
    const std::vector<Query> queries = UniformWorkload(frag, num_queries, 62);
    auto client =
        std::move(Client::Connect("127.0.0.1", server.port()).value());
    std::vector<std::future<Result<Weight>>> in_flight;
    in_flight.reserve(depth);
    WallTimer timer;
    for (const Query& q : queries) {
      in_flight.push_back(client->SubmitShortestPath(q.from, q.to));
      if (in_flight.size() == depth) {
        for (auto& f : in_flight) TCF_CHECK(f.get().ok());
        in_flight.clear();
      }
    }
    for (auto& f : in_flight) TCF_CHECK(f.get().ok());
    const double qps =
        static_cast<double>(queries.size()) / timer.ElapsedSeconds();
    std::printf("  depth %3zu: %8.0f q/s\n", depth, qps);
    metrics.Set("pipelined_d" + std::to_string(depth) + "_qps", qps);
  }

  // ---- 3. multi-client ----------------------------------------------------
  {
    constexpr size_t kClients = 4;
    constexpr size_t kDepth = 64;
    const std::vector<Query> queries = UniformWorkload(frag, num_queries, 63);
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    WallTimer timer;
    for (size_t c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c]() {
        auto client =
            std::move(Client::Connect("127.0.0.1", server.port()).value());
        std::vector<std::future<Result<Weight>>> in_flight;
        in_flight.reserve(kDepth);
        for (size_t i = c; i < queries.size(); i += kClients) {
          in_flight.push_back(
              client->SubmitShortestPath(queries[i].from, queries[i].to));
          if (in_flight.size() == kDepth) {
            for (auto& f : in_flight) TCF_CHECK(f.get().ok());
            in_flight.clear();
          }
        }
        for (auto& f : in_flight) TCF_CHECK(f.get().ok());
      });
    }
    for (auto& th : threads) th.join();
    const double wire_qps =
        static_cast<double>(queries.size()) / timer.ElapsedSeconds();

    // Reference: the same load submitted in-process (no sockets, no
    // framing) — the denominator of the wire tax.
    WallTimer direct_timer;
    std::vector<std::thread> direct;
    direct.reserve(kClients);
    for (size_t c = 0; c < kClients; ++c) {
      direct.emplace_back([&, c]() {
        std::vector<std::future<Weight>> in_flight;
        in_flight.reserve(kDepth);
        for (size_t i = c; i < queries.size(); i += kClients) {
          in_flight.push_back(
              service.SubmitShortestPath(queries[i].from, queries[i].to));
          if (in_flight.size() == kDepth) {
            for (auto& f : in_flight) f.get();
            in_flight.clear();
          }
        }
        for (auto& f : in_flight) f.get();
      });
    }
    for (auto& th : direct) th.join();
    const double direct_qps =
        static_cast<double>(queries.size()) / direct_timer.ElapsedSeconds();

    std::printf(
        "\nmulti-client: %zu connections x depth %zu: %8.0f q/s over the "
        "wire, %8.0f q/s in-process (wire keeps %.0f%%)\n",
        kClients, kDepth, wire_qps, direct_qps, 100.0 * wire_qps / direct_qps);
    metrics.Set("multiclient_qps", wire_qps);
    // Deliberately NOT *_qps-keyed: a reference number recorded for the
    // baseline artifact, not a gated series.
    metrics.Set("multiclient/inprocess_reference_rate", direct_qps);
    metrics.Set("multiclient/wire_efficiency", wire_qps / direct_qps);
  }

  server.Stop();
  service.Shutdown();
  const ServerStats stats = server.stats();
  std::printf(
      "\nserver: %llu requests, %llu ok replies, %llu error replies\n",
      static_cast<unsigned long long>(stats.requests),
      static_cast<unsigned long long>(stats.replies_ok),
      static_cast<unsigned long long>(stats.replies_error));

  if (!json_path.empty() && !metrics.WriteFile(json_path)) return 1;
  return 0;
}
