// Ablation: the start-side choice of linear fragmentation (Fig. 8: "It
// illustrates that starting on the left side of the graph and going to the
// right is preferable to starting at the top and going down ... because
// the size of the disconnection sets is much smaller that way").
//
// We generate elongated graphs (region 3:1, like the paper's ellipses) and
// sweep the start side and the number of start nodes s.
#include <cstdio>

#include "bench_util.h"
#include "fragment/metrics.h"

using namespace tcf;
using namespace tcf::bench;

int main() {
  constexpr int kTrials = 10;
  std::printf("== Ablation: linear fragmentation start side (Fig. 8) ==\n");
  std::printf("workload: elongated general graphs (region 3x1, 150 nodes, "
              "~420 edges), %d seeds, f=3\n\n", kTrials);

  auto make_graph = [](Rng* rng) {
    GeneralGraphOptions opts;
    opts.num_nodes = 150;
    opts.target_edges = 420;
    opts.c2 = 4.0;
    opts.region = Region{0.0, 0.0, 3.0, 1.0};
    opts.ensure_connected = true;
    return GenerateGeneralGraph(opts, rng);
  };

  TablePrinter table({"start side", "DS", "dDS", "#frags", "acyclic"});
  for (auto [name, side] :
       std::vector<std::pair<const char*, LinearOptions::Start>>{
           {"left (sweep along the long axis)", LinearOptions::Start::kLeft},
           {"right", LinearOptions::Start::kRight},
           {"top (sweep across the short axis)", LinearOptions::Start::kTop},
           {"bottom", LinearOptions::Start::kBottom}}) {
    RowStats row;
    Rng rng(31);
    for (int t = 0; t < kTrials; ++t) {
      Rng child = rng.Fork();
      Graph g = make_graph(&child);
      LinearOptions opts;
      opts.num_fragments = 3;
      opts.start = side;
      row.Add(ComputeCharacteristics(
          LinearFragmentation(g, opts).fragmentation));
    }
    table.AddRow({name, TablePrinter::Fmt(row.ds_bar.Mean()),
                  TablePrinter::Fmt(row.dev_ds.Mean()),
                  TablePrinter::Fmt(row.fragments.Mean()),
                  TablePrinter::Fmt(100.0 * row.acyclic / row.trials, 0) +
                      "%"});
  }
  table.Print();

  std::printf("\nnumber of start nodes s (left start):\n");
  TablePrinter snodes({"s", "DS", "#frags"});
  for (size_t s : {1, 3, 7, 15, 30}) {
    RowStats row;
    Rng rng(31);
    for (int t = 0; t < kTrials; ++t) {
      Rng child = rng.Fork();
      Graph g = make_graph(&child);
      LinearOptions opts;
      opts.num_fragments = 3;
      opts.num_start_nodes = s;
      row.Add(ComputeCharacteristics(
          LinearFragmentation(g, opts).fragmentation));
    }
    snodes.AddRow({std::to_string(s), TablePrinter::Fmt(row.ds_bar.Mean()),
                   TablePrinter::Fmt(row.fragments.Mean())});
  }
  snodes.Print();
  std::printf("\nreading: sweeping along the long axis (left/right) cuts "
              "the graph at its\nnarrow waist and yields smaller "
              "disconnection sets than sweeping across it\n(top/bottom) — "
              "Fig. 8's point. The result is acyclic regardless.\n");
  return 0;
}
