// Shared workload definitions for the benchmark harness. Every table and
// figure reproduction uses these generators so the workloads match the
// paper's Sec. 4 parameters exactly and deterministically.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "fragment/bond_energy.h"
#include "fragment/center_based.h"
#include "fragment/kernighan_lin.h"
#include "fragment/linear.h"
#include "fragment/metrics.h"
#include "fragment/random_partition.h"
#include "graph/generator.h"
#include "util/stats.h"

namespace tcf::bench {

/// Table 1 workload: transportation graphs of 4 clusters x 25 nodes with
/// on average 429 edges; "the average number of edges connecting fragments
/// was 2.25" -> 9 undirected inter-cluster connections over 4 links.
inline TransportationGraphOptions Table1Options() {
  TransportationGraphOptions opts;
  opts.num_clusters = 4;
  opts.nodes_per_cluster = 25;
  // 9 undirected cross connections = 18 tuples; the rest intra.
  opts.links = {{0, 1, 2}, {1, 2, 2}, {2, 3, 2}, {0, 3, 3}};
  opts.target_edges_per_cluster = (429.0 - 18.0) / 4.0;
  return opts;
}

/// Table 2 workload: same structure with 150 nodes per cluster and 3167
/// edges on average.
inline TransportationGraphOptions Table2Options() {
  TransportationGraphOptions opts = Table1Options();
  opts.nodes_per_cluster = 150;
  opts.target_edges_per_cluster = (3167.0 - 18.0) / 4.0;
  return opts;
}

/// Table 3 workload: general graphs of 100 nodes, 279.5 edges on average.
inline GeneralGraphOptions Table3Options() {
  GeneralGraphOptions opts;
  opts.num_nodes = 100;
  opts.target_edges = 279.5;
  return opts;
}

/// The fragmentation algorithms as table rows.
enum class Algo { kCenter, kDistributedCenters, kBondEnergy, kLinear,
                  kRandom, kKernighanLin };

inline const char* AlgoName(Algo algo) {
  switch (algo) {
    case Algo::kCenter: return "center-based";
    case Algo::kDistributedCenters: return "distributed centers";
    case Algo::kBondEnergy: return "bond-energy";
    case Algo::kLinear: return "linear";
    case Algo::kRandom: return "random (baseline)";
    case Algo::kKernighanLin: return "kernighan-lin (modern)";
  }
  return "?";
}

inline Fragmentation RunAlgo(const Graph& g, Algo algo, size_t fragments,
                             uint64_t seed) {
  switch (algo) {
    case Algo::kCenter: {
      CenterBasedOptions opts;
      opts.num_fragments = fragments;
      return CenterBasedFragmentation(g, opts);
    }
    case Algo::kDistributedCenters: {
      CenterBasedOptions opts;
      opts.num_fragments = fragments;
      opts.distributed_centers = true;
      return CenterBasedFragmentation(g, opts);
    }
    case Algo::kBondEnergy: {
      BondEnergyOptions opts;
      opts.num_fragments = fragments;
      return BondEnergyFragmentation(g, opts);
    }
    case Algo::kLinear: {
      LinearOptions opts;
      opts.num_fragments = fragments;
      return LinearFragmentation(g, opts).fragmentation;
    }
    case Algo::kRandom: {
      Rng rng(seed * 7919 + 31);
      return RandomFragmentation(g, fragments, &rng);
    }
    case Algo::kKernighanLin: {
      KernighanLinOptions opts;
      opts.num_fragments = fragments;
      opts.seed = seed + 1;
      return KernighanLinFragmentation(g, opts);
    }
  }
  CenterBasedOptions opts;
  return CenterBasedFragmentation(g, opts);
}

/// Aggregated characteristics over many seeds, one table row.
struct RowStats {
  Accumulator fragments, f_bar, ds_bar, dev_f, dev_ds;
  int acyclic = 0;
  int trials = 0;

  void Add(const FragmentationCharacteristics& c) {
    fragments.Add(static_cast<double>(c.num_fragments));
    f_bar.Add(c.avg_fragment_edges);
    ds_bar.Add(c.avg_ds_nodes);
    dev_f.Add(c.dev_fragment_edges);
    dev_ds.Add(c.dev_ds_nodes);
    if (c.loosely_connected) ++acyclic;
    ++trials;
  }
};

/// Prints one characteristics table in the paper's layout, plus the
/// acyclicity rate and realized fragment counts.
inline void PrintCharacteristicsTable(
    const std::string& title,
    const std::vector<std::pair<std::string, RowStats>>& rows) {
  std::printf("%s\n", title.c_str());
  TablePrinter table({"Algorithm", "F", "DS", "dF", "dDS", "acyclic",
                      "#frags"});
  for (const auto& [name, stats] : rows) {
    table.AddRow({name, TablePrinter::Fmt(stats.f_bar.Mean()),
                  TablePrinter::Fmt(stats.ds_bar.Mean()),
                  TablePrinter::Fmt(stats.dev_f.Mean()),
                  TablePrinter::Fmt(stats.dev_ds.Mean()),
                  TablePrinter::Fmt(100.0 * stats.acyclic / stats.trials, 0) +
                      "%",
                  TablePrinter::Fmt(stats.fragments.Mean())});
  }
  table.Print();
}

}  // namespace tcf::bench
