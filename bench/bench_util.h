// Shared workload definitions for the benchmark harness. Every table and
// figure reproduction uses these generators so the workloads match the
// paper's Sec. 4 parameters exactly and deterministically.
#pragma once

#include <cstdio>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "fragment/bond_energy.h"
#include "fragment/center_based.h"
#include "fragment/kernighan_lin.h"
#include "fragment/linear.h"
#include "fragment/metrics.h"
#include "fragment/random_partition.h"
#include "graph/generator.h"
#include "util/stats.h"

namespace tcf::bench {

/// Table 1 workload: transportation graphs of 4 clusters x 25 nodes with
/// on average 429 edges; "the average number of edges connecting fragments
/// was 2.25" -> 9 undirected inter-cluster connections over 4 links.
inline TransportationGraphOptions Table1Options() {
  TransportationGraphOptions opts;
  opts.num_clusters = 4;
  opts.nodes_per_cluster = 25;
  // 9 undirected cross connections = 18 tuples; the rest intra.
  opts.links = {{0, 1, 2}, {1, 2, 2}, {2, 3, 2}, {0, 3, 3}};
  opts.target_edges_per_cluster = (429.0 - 18.0) / 4.0;
  return opts;
}

/// Table 2 workload: same structure with 150 nodes per cluster and 3167
/// edges on average.
inline TransportationGraphOptions Table2Options() {
  TransportationGraphOptions opts = Table1Options();
  opts.nodes_per_cluster = 150;
  opts.target_edges_per_cluster = (3167.0 - 18.0) / 4.0;
  return opts;
}

/// Table 3 workload: general graphs of 100 nodes, 279.5 edges on average.
inline GeneralGraphOptions Table3Options() {
  GeneralGraphOptions opts;
  opts.num_nodes = 100;
  opts.target_edges = 279.5;
  return opts;
}

/// The fragmentation algorithms as table rows.
enum class Algo { kCenter, kDistributedCenters, kBondEnergy, kLinear,
                  kRandom, kKernighanLin };

inline const char* AlgoName(Algo algo) {
  switch (algo) {
    case Algo::kCenter: return "center-based";
    case Algo::kDistributedCenters: return "distributed centers";
    case Algo::kBondEnergy: return "bond-energy";
    case Algo::kLinear: return "linear";
    case Algo::kRandom: return "random (baseline)";
    case Algo::kKernighanLin: return "kernighan-lin (modern)";
  }
  return "?";
}

inline Fragmentation RunAlgo(const Graph& g, Algo algo, size_t fragments,
                             uint64_t seed) {
  switch (algo) {
    case Algo::kCenter: {
      CenterBasedOptions opts;
      opts.num_fragments = fragments;
      return CenterBasedFragmentation(g, opts);
    }
    case Algo::kDistributedCenters: {
      CenterBasedOptions opts;
      opts.num_fragments = fragments;
      opts.distributed_centers = true;
      return CenterBasedFragmentation(g, opts);
    }
    case Algo::kBondEnergy: {
      BondEnergyOptions opts;
      opts.num_fragments = fragments;
      return BondEnergyFragmentation(g, opts);
    }
    case Algo::kLinear: {
      LinearOptions opts;
      opts.num_fragments = fragments;
      return LinearFragmentation(g, opts).fragmentation;
    }
    case Algo::kRandom: {
      Rng rng(seed * 7919 + 31);
      return RandomFragmentation(g, fragments, &rng);
    }
    case Algo::kKernighanLin: {
      KernighanLinOptions opts;
      opts.num_fragments = fragments;
      opts.seed = seed + 1;
      return KernighanLinFragmentation(g, opts);
    }
  }
  CenterBasedOptions opts;
  return CenterBasedFragmentation(g, opts);
}

/// Aggregated characteristics over many seeds, one table row.
struct RowStats {
  Accumulator fragments, f_bar, ds_bar, dev_f, dev_ds;
  int acyclic = 0;
  int trials = 0;

  void Add(const FragmentationCharacteristics& c) {
    fragments.Add(static_cast<double>(c.num_fragments));
    f_bar.Add(c.avg_fragment_edges);
    ds_bar.Add(c.avg_ds_nodes);
    dev_f.Add(c.dev_fragment_edges);
    dev_ds.Add(c.dev_ds_nodes);
    if (c.loosely_connected) ++acyclic;
    ++trials;
  }
};

/// The runner class a bench run was measured on: "cpu<N>" for N hardware
/// threads. Throughput numbers from a 2-core runner and a 16-core runner
/// are not comparable, so the regression gate keys its rolling baselines
/// on this string (tools/check_bench_regression.py --runner-class).
inline std::string RunnerClass() {
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;  // the standard allows "unknown"
  return "cpu" + std::to_string(hw);
}

/// Flat machine-readable metrics for the CI perf-regression gate: the
/// bench records (key, value) pairs next to its human tables and, when
/// `--json <path>` was passed, writes them as one JSON object
/// ({"benchmark": ..., "runner_class": ..., "metrics": {...}}). Keys
/// ending in "_qps" are the throughput series
/// tools/check_bench_regression.py gates on; everything else is recorded
/// for trend inspection only. The runner_class field lets the gate keep
/// baseline histories per hardware class instead of comparing throughput
/// across machines with different core counts.
class JsonMetrics {
 public:
  explicit JsonMetrics(std::string benchmark)
      : benchmark_(std::move(benchmark)) {}

  void Set(const std::string& key, double value) {
    metrics_.emplace_back(key, value);
  }

  /// Writes the JSON file; returns false (with a message) on I/O failure.
  bool WriteFile(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(f,
                 "{\n  \"benchmark\": \"%s\",\n"
                 "  \"runner_class\": \"%s\",\n  \"metrics\": {\n",
                 benchmark_.c_str(), RunnerClass().c_str());
    for (size_t i = 0; i < metrics_.size(); ++i) {
      std::fprintf(f, "    \"%s\": %.6g%s\n", metrics_[i].first.c_str(),
                   metrics_[i].second, i + 1 < metrics_.size() ? "," : "");
    }
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
    return true;
  }

 private:
  std::string benchmark_;
  std::vector<std::pair<std::string, double>> metrics_;
};

/// Pulls an optional `--json <path>` flag out of (argc, argv), compacting
/// the remaining positional arguments in place. Returns the path or "".
inline std::string ConsumeJsonFlag(int* argc, char** argv) {
  std::string path;
  int w = 1;
  for (int r = 1; r < *argc; ++r) {
    if (std::string(argv[r]) == "--json" && r + 1 < *argc) {
      path = argv[++r];
      continue;
    }
    argv[w++] = argv[r];
  }
  *argc = w;
  return path;
}

/// Prints one characteristics table in the paper's layout, plus the
/// acyclicity rate and realized fragment counts.
inline void PrintCharacteristicsTable(
    const std::string& title,
    const std::vector<std::pair<std::string, RowStats>>& rows) {
  std::printf("%s\n", title.c_str());
  TablePrinter table({"Algorithm", "F", "DS", "dF", "dDS", "acyclic",
                      "#frags"});
  for (const auto& [name, stats] : rows) {
    table.AddRow({name, TablePrinter::Fmt(stats.f_bar.Mean()),
                  TablePrinter::Fmt(stats.ds_bar.Mean()),
                  TablePrinter::Fmt(stats.dev_f.Mean()),
                  TablePrinter::Fmt(stats.dev_ds.Mean()),
                  TablePrinter::Fmt(100.0 * stats.acyclic / stats.trials, 0) +
                      "%",
                  TablePrinter::Fmt(stats.fragments.Mean())});
  }
  table.Print();
}

}  // namespace tcf::bench
