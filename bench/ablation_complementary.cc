// Ablation: evaluating without the complementary information (footnote 3 /
// Sec. 2.1). The DSA stays *sound* (it never underestimates — every
// reported path is real) but loses *precision*: routes that detour through
// fragments off the chain become invisible, so costs are overestimated and
// some connected pairs are misjudged. This is exactly why the paper
// requires the precomputation "to guarantee that answers are correct and
// precise" (footnote 2).
#include <cstdio>

#include "bench_util.h"
#include "dsa/query_api.h"
#include "graph/algorithms.h"

using namespace tcf;
using namespace tcf::bench;

int main() {
  constexpr int kTrials = 6;
  constexpr int kQueries = 30;
  std::printf("== Ablation: complementary information on/off (Sec. 2.1, "
              "footnotes 2-3) ==\n");
  std::printf("workload: table-1 transportation graphs, %d seeds x %d "
              "queries\n\n", kTrials, kQueries);

  TablePrinter table({"Algorithm", "exact (with)", "exact (without)",
                      "avg overestimate (without)", "precompute tuples"});
  for (Algo algo : {Algo::kCenter, Algo::kDistributedCenters,
                    Algo::kBondEnergy, Algo::kLinear}) {
    int exact_with = 0, exact_without = 0, total = 0;
    Accumulator overestimate, tuples;
    Rng rng(37);
    for (int t = 0; t < kTrials; ++t) {
      Rng child = rng.Fork();
      auto tg = GenerateTransportationGraph(Table1Options(), &child);
      Fragmentation frag = RunAlgo(tg.graph, algo, 4,
                                   static_cast<uint64_t>(t));
      DsaOptions with, without;
      without.use_complementary = false;
      DsaDatabase db_with(&frag, with);
      DsaDatabase db_without(&frag, without);
      tuples.Add(static_cast<double>(db_with.complementary().total_tuples));
      Rng qrng = child.Fork();
      for (int q = 0; q < kQueries; ++q) {
        const NodeId s =
            static_cast<NodeId>(qrng.NextBounded(tg.graph.NumNodes()));
        const NodeId u =
            static_cast<NodeId>(qrng.NextBounded(tg.graph.NumNodes()));
        if (s == u) continue;
        const Weight oracle = Dijkstra(tg.graph, s).distance[u];
        if (oracle == kInfinity) continue;
        ++total;
        const Weight w = db_with.ShortestPath(s, u).cost;
        const Weight wo = db_without.ShortestPath(s, u).cost;
        if (std::abs(w - oracle) < 1e-9) ++exact_with;
        if (wo != kInfinity && std::abs(wo - oracle) < 1e-9) {
          ++exact_without;
        }
        if (wo != kInfinity) {
          overestimate.Add((wo - oracle) / oracle * 100.0);
        } else {
          overestimate.Add(100.0);  // count missed connections as +100%
        }
      }
    }
    table.AddRow(
        {AlgoName(algo),
         TablePrinter::Fmt(100.0 * exact_with / total, 1) + "%",
         TablePrinter::Fmt(100.0 * exact_without / total, 1) + "%",
         TablePrinter::Fmt(overestimate.Mean(), 1) + "%",
         TablePrinter::Fmt(tuples.Mean(), 0)});
  }
  table.Print();
  std::printf("\nreading: with complementary information every answer is "
              "exact (the\nproperty tests assert this); without it the "
              "approach degrades — most on\nfragmentations with many border "
              "detours. The precompute-tuples column is\nthe storage price, "
              "\"amortized over many queries\".\n");
  return 0;
}
