// Reproduces the workload-balance claim of Sec. 2.2: "If the workload is
// evenly spread over the processors, they can all finish at more or less
// the same time. ... the number of tuples in a fragment is a good
// indication for the workload of a processor."
//
// For each fragmentation algorithm: fragment-size deviation, the spread of
// per-site join workloads when every site computes its border-to-border
// subquery, and the straggler ratio (slowest site / mean site).
#include <cstdio>

#include "bench_util.h"
#include "dsa/local_query.h"
#include "fragment/metrics.h"

using namespace tcf;
using namespace tcf::bench;

int main() {
  constexpr int kTrials = 8;
  std::printf("== Workload balance across sites (Sec. 2.2) ==\n");
  std::printf("workload: table-1 transportation graphs, every site runs its "
              "border-to-border subquery, %d seeds\n\n", kTrials);

  std::vector<Algo> algos = {Algo::kCenter, Algo::kDistributedCenters,
                             Algo::kBondEnergy, Algo::kLinear,
                             Algo::kRandom};
  TablePrinter table({"Algorithm", "dF (edges)", "mean site work",
                      "straggler ratio", "corr(F, work)"});

  for (Algo algo : algos) {
    Accumulator dev_f, mean_work, straggler;
    // For the size-predicts-work correlation, pool all (size, work) pairs.
    std::vector<double> sizes, works;
    Rng rng(5);
    for (int t = 0; t < kTrials; ++t) {
      Rng child = rng.Fork();
      auto tg = GenerateTransportationGraph(Table1Options(), &child);
      Fragmentation frag =
          RunAlgo(tg.graph, algo, 4, static_cast<uint64_t>(t));
      ComplementaryInfo comp = PrecomputeComplementary(frag);
      auto c = ComputeCharacteristics(frag);
      dev_f.Add(c.dev_fragment_edges);

      Accumulator site_work;
      for (FragmentId i = 0; i < frag.NumFragments(); ++i) {
        const auto& border = frag.BorderNodes(i);
        if (border.empty()) continue;
        LocalQuerySpec spec;
        spec.fragment = i;
        spec.sources = NodeSet(border.begin(), border.end());
        spec.targets = spec.sources;
        auto result = RunLocalQuery(frag, &comp, spec,
                                    LocalEngine::kSemiNaive);
        const double work = static_cast<double>(result.stats.join_tuples);
        site_work.Add(work);
        sizes.push_back(static_cast<double>(frag.FragmentEdges(i).size()));
        works.push_back(work);
      }
      if (!site_work.empty() && site_work.Mean() > 0) {
        mean_work.Add(site_work.Mean());
        straggler.Add(site_work.Max() / site_work.Mean());
      }
    }
    // Pearson correlation between fragment size and site work.
    double corr = 0.0;
    if (sizes.size() > 2) {
      Accumulator sx, sy;
      sx.AddAll(sizes);
      sy.AddAll(works);
      double cov = 0.0;
      for (size_t i = 0; i < sizes.size(); ++i) {
        cov += (sizes[i] - sx.Mean()) * (works[i] - sy.Mean());
      }
      cov /= static_cast<double>(sizes.size() - 1);
      if (sx.StdDev() > 0 && sy.StdDev() > 0) {
        corr = cov / (sx.StdDev() * sy.StdDev());
      }
    }
    table.AddRow({AlgoName(algo), TablePrinter::Fmt(dev_f.Mean()),
                  TablePrinter::Fmt(mean_work.Mean(), 0),
                  TablePrinter::Fmt(straggler.Mean(), 2),
                  TablePrinter::Fmt(corr, 2)});
  }
  table.Print();
  std::printf("\nreading: fragment size (tuple count) correlates with site "
              "workload, and\nbalanced fragmentations (center-based family) "
              "keep the straggler ratio lowest\n— the property that lets "
              "all processors \"finish at more or less the same time\".\n");
  return 0;
}
