// Batched vs. sequential query execution (see docs/ARCHITECTURE.md, batch
// layer): the same workload is answered once as a sequential
// DsaDatabase::ShortestPath loop and once as a single
// BatchExecutor::Execute call, for each WorkloadSpec mix. Reports
// queries/sec for both paths, the batch speed-up, the cross-query subquery
// deduplication savings, and the chain-plan cache hit rate — the two
// sharing effects that make batching pay, especially on the hot-pair mix.
#include <cstdio>

#include "bench_util.h"
#include "dsa/batch.h"
#include "dsa/workload.h"
#include "util/timer.h"

using namespace tcf;
using namespace tcf::bench;

namespace {

void RunFamily(const char* family, const Graph& g, Fragmentation frag,
               size_t num_queries) {
  std::printf(
      "%s: %zu nodes, %zu edges, %zu fragments, %zu queries per mix\n",
      family, g.NumNodes(), g.NumEdges(), frag.NumFragments(), num_queries);
  TablePrinter table({"Mix", "seq q/s", "batch q/s", "speedup", "dedup",
                      "plan-cache hits"});

  for (WorkloadMix mix :
       {WorkloadMix::kUniform, WorkloadMix::kHotPair,
        WorkloadMix::kWithinFragment, WorkloadMix::kCrossChain}) {
    WorkloadSpec spec;
    spec.mix = mix;
    spec.num_queries = num_queries;
    Rng rng(41);
    const std::vector<Query> queries = GenerateWorkload(frag, spec, &rng);

    // Fresh databases so one mix's plan cache cannot help another, and the
    // sequential loop cannot warm the batch run.
    DsaDatabase seq_db(&frag);
    WallTimer seq_timer;
    for (const Query& q : queries) seq_db.ShortestPath(q.from, q.to);
    const double seq_seconds = seq_timer.ElapsedSeconds();

    DsaDatabase batch_db(&frag);
    BatchExecutor executor(&batch_db);
    const BatchResult result = executor.Execute(queries);

    const double seq_qps =
        seq_seconds == 0.0 ? 0.0 : static_cast<double>(num_queries) /
                                       seq_seconds;
    const double speedup = result.stats.wall_seconds == 0.0
                               ? 0.0
                               : seq_seconds / result.stats.wall_seconds;
    table.AddRow(
        {WorkloadMixName(mix), TablePrinter::Fmt(seq_qps, 0),
         TablePrinter::Fmt(result.stats.QueriesPerSecond(), 0),
         TablePrinter::Fmt(speedup, 2) + "x",
         TablePrinter::Fmt(100.0 * result.stats.DedupSavings(), 1) + "%",
         TablePrinter::Fmt(100.0 * result.stats.PlanCacheHitRate(), 1) +
             "%"});
  }
  table.Print();
  std::printf("\n");
}

}  // namespace

int main() {
  constexpr size_t kQueries = 1000;

  {
    Rng rng(7);
    TransportationGraphOptions opts = Table1Options();
    TransportationGraph t = GenerateTransportationGraph(opts, &rng);
    LinearOptions lopts;
    lopts.num_fragments = 4;
    RunFamily("transportation graph (Table 1 workload)", t.graph,
              LinearFragmentation(t.graph, lopts).fragmentation, kQueries);
  }
  {
    Rng rng(7);
    GeneralGraphOptions opts = Table3Options();
    Graph g = GenerateGeneralGraph(opts, &rng);
    CenterBasedOptions copts;
    copts.num_fragments = 4;
    copts.distributed_centers = true;
    RunFamily("general graph (Table 3 workload)", g,
              CenterBasedFragmentation(g, copts), kQueries);
  }
  return 0;
}
