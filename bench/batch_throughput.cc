// Batched vs. sequential query execution (see docs/ARCHITECTURE.md, batch
// layer): the same workload is answered once as a sequential
// DsaDatabase::ShortestPath loop and once as a single
// BatchExecutor::Execute call, for each WorkloadSpec mix. Reports
// queries/sec for both paths, the batch speed-up, the planning-phase time,
// the cross-query subquery deduplication savings, the chain-plan
// (skeleton) cache hit rate, and the interned-plan skip rate — the sharing
// effects that make batching pay, especially on the hot-pair mix.
//
// A second section sweeps the coordinator thread count on a large uniform
// batch: planning runs in parallel on the database pool over the sharded
// SpecTable, so the planning phase should scale with threads (and
// end-to-end throughput must not regress). `batch_throughput [N]` sets the
// sweep's batch size (default 10000).
#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "dsa/batch.h"
#include "dsa/workload.h"
#include "util/timer.h"

using namespace tcf;
using namespace tcf::bench;

namespace {

void RunFamily(const char* family, const char* family_key, const Graph& g,
               Fragmentation frag, size_t num_queries, JsonMetrics* metrics) {
  std::printf(
      "%s: %zu nodes, %zu edges, %zu fragments, %zu queries per mix\n",
      family, g.NumNodes(), g.NumEdges(), frag.NumFragments(), num_queries);
  TablePrinter table({"Mix", "seq q/s", "batch q/s", "speedup", "plan ms",
                      "dedup", "skel hits", "plan skips"});

  for (WorkloadMix mix :
       {WorkloadMix::kUniform, WorkloadMix::kHotPair,
        WorkloadMix::kWithinFragment, WorkloadMix::kCrossChain}) {
    WorkloadSpec spec;
    spec.mix = mix;
    spec.num_queries = num_queries;
    Rng rng(41);
    const std::vector<Query> queries = GenerateWorkload(frag, spec, &rng);

    // Fresh databases so one mix's plan cache cannot help another, and the
    // sequential loop cannot warm the batch run.
    DsaDatabase seq_db(&frag);
    WallTimer seq_timer;
    for (const Query& q : queries) seq_db.ShortestPath(q.from, q.to);
    const double seq_seconds = seq_timer.ElapsedSeconds();

    DsaDatabase batch_db(&frag);
    BatchExecutor executor(&batch_db);
    const BatchResult result = executor.Execute(queries);

    const double seq_qps =
        seq_seconds == 0.0 ? 0.0 : static_cast<double>(num_queries) /
                                       seq_seconds;
    const double speedup = result.stats.wall_seconds == 0.0
                               ? 0.0
                               : seq_seconds / result.stats.wall_seconds;
    table.AddRow(
        {WorkloadMixName(mix), TablePrinter::Fmt(seq_qps, 0),
         TablePrinter::Fmt(result.stats.QueriesPerSecond(), 0),
         TablePrinter::Fmt(speedup, 2) + "x",
         TablePrinter::Fmt(result.stats.plan_seconds * 1e3, 2),
         TablePrinter::Fmt(100.0 * result.stats.DedupSavings(), 1) + "%",
         TablePrinter::Fmt(100.0 * result.stats.PlanCacheHitRate(), 1) + "%",
         TablePrinter::Fmt(100.0 * result.stats.PlanMemoHitRate(), 1) +
             "%"});
    const std::string prefix =
        std::string(family_key) + "/" + WorkloadMixName(mix);
    metrics->Set(prefix + "/batch_qps", result.stats.QueriesPerSecond());
    metrics->Set(prefix + "/seq_qps", seq_qps);
    metrics->Set(prefix + "/dedup_savings", result.stats.DedupSavings());
    metrics->Set(prefix + "/plan_memo_hit_rate",
                 result.stats.PlanMemoHitRate());
  }
  table.Print();
  std::printf("\n");
}

/// Coordinator scaling: the same uniform batch planned and executed with
/// 1, 2, 4, 8 pool threads. Each thread count runs the batch twice and
/// reports the second (warm skeleton cache) run, so the sweep isolates the
/// steady-state planning path. `plan speedup` is vs. the 1-thread row —
/// the acceptance bar for the parallel planner.
void RunCoordinatorScaling(const Graph& g, Fragmentation frag,
                           size_t num_queries, JsonMetrics* metrics) {
  std::printf(
      "coordinator scaling: uniform mix, %zu queries, %zu nodes, "
      "%zu fragments (second run per row; warm skeleton cache)\n",
      num_queries, g.NumNodes(), frag.NumFragments());
  TablePrinter table({"threads", "plan ms", "plan speedup", "phase1 ms",
                      "assemble ms", "batch q/s"});

  double base_plan_seconds = 0.0;
  for (size_t threads : {1, 2, 4, 8}) {
    DsaOptions opts;
    opts.num_threads = threads;
    DsaDatabase db(&frag, opts);
    BatchExecutor executor(&db);

    WorkloadSpec spec;
    spec.mix = WorkloadMix::kUniform;
    spec.num_queries = num_queries;
    Rng rng(91);
    const std::vector<Query> queries = GenerateWorkload(frag, spec, &rng);

    executor.Execute(queries);  // cold run warms the skeleton cache
    const BatchResult result = executor.Execute(queries);

    if (threads == 1) base_plan_seconds = result.stats.plan_seconds;
    const double plan_speedup =
        result.stats.plan_seconds == 0.0
            ? 0.0
            : base_plan_seconds / result.stats.plan_seconds;
    table.AddRow({std::to_string(threads),
                  TablePrinter::Fmt(result.stats.plan_seconds * 1e3, 2),
                  TablePrinter::Fmt(plan_speedup, 2) + "x",
                  TablePrinter::Fmt(result.stats.phase1_seconds * 1e3, 2),
                  TablePrinter::Fmt(result.stats.assemble_seconds * 1e3, 2),
                  TablePrinter::Fmt(result.stats.QueriesPerSecond(), 0)});
    const std::string prefix =
        "scaling/threads_" + std::to_string(threads);
    metrics->Set(prefix + "/plan_ms", result.stats.plan_seconds * 1e3);
    metrics->Set(prefix + "/plan_speedup", plan_speedup);
  }
  table.Print();
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  constexpr size_t kQueries = 1000;
  const std::string json_path = ConsumeJsonFlag(&argc, argv);
  const size_t scaling_queries =
      argc > 1 ? static_cast<size_t>(std::strtoull(argv[1], nullptr, 10))
               : 10000;
  JsonMetrics metrics("batch_throughput");

  {
    Rng rng(7);
    TransportationGraphOptions opts = Table1Options();
    TransportationGraph t = GenerateTransportationGraph(opts, &rng);
    LinearOptions lopts;
    lopts.num_fragments = 4;
    RunFamily("transportation graph (Table 1 workload)", "transportation",
              t.graph, LinearFragmentation(t.graph, lopts).fragmentation,
              kQueries, &metrics);
  }
  {
    Rng rng(7);
    GeneralGraphOptions opts = Table3Options();
    Graph g = GenerateGeneralGraph(opts, &rng);
    CenterBasedOptions copts;
    copts.num_fragments = 4;
    copts.distributed_centers = true;
    RunFamily("general graph (Table 3 workload)", "general", g,
              CenterBasedFragmentation(g, copts), kQueries, &metrics);
  }
  {
    Rng rng(7);
    TransportationGraphOptions opts = Table1Options();
    TransportationGraph t = GenerateTransportationGraph(opts, &rng);
    LinearOptions lopts;
    lopts.num_fragments = 4;
    RunCoordinatorScaling(t.graph,
                          LinearFragmentation(t.graph, lopts).fragmentation,
                          scaling_queries, &metrics);
  }
  if (!json_path.empty() && !metrics.WriteFile(json_path)) return 1;
  return 0;
}
