// Reproduces the keyhole-selectivity claim of Sec. 2.2: "These
// disconnection sets act as some sort of keyhole: only paths travelling
// through this keyhole have to be examined. ... the smaller they are the
// better."
//
// For each fragmentation algorithm we evaluate one fragment's recursive
// subquery three ways: unrestricted closure, restricted to the incoming
// disconnection set (the DSA's phase-1 selection), and restricted to a
// single query constant — and report the join workload of each. Averaged
// over seeds, the ordering of DS sizes must translate into the same
// ordering of phase-1 workloads.
#include <cstdio>

#include "bench_util.h"
#include "fragment/metrics.h"
#include "relational/transitive_closure.h"

using namespace tcf;
using namespace tcf::bench;

int main() {
  constexpr int kTrials = 10;
  std::printf("== Keyhole selectivity of disconnection sets (Sec. 2.2) ==\n");
  std::printf("workload: table-1 transportation graphs, semi-naive engine, "
              "%d seeds\n\n", kTrials);

  std::vector<Algo> algos = {Algo::kCenter, Algo::kDistributedCenters,
                             Algo::kBondEnergy, Algo::kLinear};
  TablePrinter table({"Algorithm", "avg DS", "join tuples (full TC)",
                      "join tuples (DS keyhole)", "reduction"});

  for (Algo algo : algos) {
    Accumulator ds_size, full_work, keyhole_work;
    Rng rng(5);
    for (int t = 0; t < kTrials; ++t) {
      Rng child = rng.Fork();
      auto tg = GenerateTransportationGraph(Table1Options(), &child);
      Fragmentation frag =
          RunAlgo(tg.graph, algo, 4, static_cast<uint64_t>(t));
      auto c = ComputeCharacteristics(frag);
      ds_size.Add(c.avg_ds_nodes);
      // Pick the fragment with the largest border (the busiest relay).
      FragmentId busiest = 0;
      for (FragmentId i = 1; i < frag.NumFragments(); ++i) {
        if (frag.BorderNodes(i).size() > frag.BorderNodes(busiest).size()) {
          busiest = i;
        }
      }
      Relation base =
          Relation::FromEdgeSubset(tg.graph, frag.FragmentEdges(busiest));
      TcStats full;
      TransitiveClosure(base, {}, &full);
      full_work.Add(static_cast<double>(full.join_tuples));

      const auto& border = frag.BorderNodes(busiest);
      TcOptions restricted;
      restricted.sources = NodeSet(border.begin(), border.end());
      TcStats keyhole;
      TransitiveClosure(base, restricted, &keyhole);
      keyhole_work.Add(static_cast<double>(keyhole.join_tuples));
    }
    char reduction[32];
    std::snprintf(reduction, sizeof(reduction), "%.1fx",
                  full_work.Mean() / std::max(1.0, keyhole_work.Mean()));
    table.AddRow({AlgoName(algo), TablePrinter::Fmt(ds_size.Mean()),
                  TablePrinter::Fmt(full_work.Mean(), 0),
                  TablePrinter::Fmt(keyhole_work.Mean(), 0), reduction});
  }
  table.Print();
  std::printf("\nreading: the keyhole restriction always cuts the join "
              "workload; smaller\ndisconnection sets (bond-energy) keep the "
              "restricted workload smallest,\nwhich is why Sec. 4.2.3 "
              "expects bond-energy to win for query processing.\n");
  return 0;
}
