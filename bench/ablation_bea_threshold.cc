// Ablation: the bond-energy split threshold (Sec. 3.2: "this threshold may
// be supplied by the user"). Sweeps the threshold and reports the resulting
// fragment counts and characteristics; also compares the threshold rule
// against the local-minimum rule the paper rejected ("optimizing to local
// minima usually turns out not to be best").
#include <cstdio>

#include "bench_util.h"
#include "fragment/metrics.h"

using namespace tcf;
using namespace tcf::bench;

int main() {
  constexpr int kTrials = 8;
  std::printf("== Ablation: bond-energy split threshold (Sec. 3.2) ==\n");
  std::printf("workload: table-1 transportation graphs, %d seeds, f=4\n\n",
              kTrials);

  TablePrinter table({"threshold", "#frags", "F", "DS", "dF", "dDS"});
  for (double threshold : {1.0, 2.0, 3.0, 4.0, 6.0, 10.0, 20.0}) {
    RowStats row;
    Rng rng(23);
    for (int t = 0; t < kTrials; ++t) {
      Rng child = rng.Fork();
      auto tg = GenerateTransportationGraph(Table1Options(), &child);
      BondEnergyOptions opts;
      opts.num_fragments = 4;
      opts.threshold = threshold;
      row.Add(ComputeCharacteristics(BondEnergyFragmentation(tg.graph, opts)));
    }
    table.AddRow({TablePrinter::Fmt(threshold, 0),
                  TablePrinter::Fmt(row.fragments.Mean()),
                  TablePrinter::Fmt(row.f_bar.Mean()),
                  TablePrinter::Fmt(row.ds_bar.Mean()),
                  TablePrinter::Fmt(row.dev_f.Mean()),
                  TablePrinter::Fmt(row.dev_ds.Mean())});
  }
  table.Print();

  std::printf("\nsplit rule comparison:\n");
  TablePrinter rules({"rule", "#frags", "DS", "dF"});
  for (auto rule : {BondEnergyOptions::SplitRule::kThreshold,
                    BondEnergyOptions::SplitRule::kLocalMinimum}) {
    RowStats row;
    Rng rng(23);
    for (int t = 0; t < kTrials; ++t) {
      Rng child = rng.Fork();
      auto tg = GenerateTransportationGraph(Table1Options(), &child);
      BondEnergyOptions opts;
      opts.num_fragments = 4;
      opts.split_rule = rule;
      row.Add(ComputeCharacteristics(BondEnergyFragmentation(tg.graph, opts)));
    }
    rules.AddRow({rule == BondEnergyOptions::SplitRule::kThreshold
                      ? "threshold (paper's choice)"
                      : "local minimum (rejected)",
                  TablePrinter::Fmt(row.fragments.Mean()),
                  TablePrinter::Fmt(row.ds_bar.Mean()),
                  TablePrinter::Fmt(row.dev_f.Mean())});
  }
  rules.Print();
  std::printf("\nreading: a strict threshold keeps DS small but may split "
              "too rarely; the\nadaptive default relaxes it until ~f blocks "
              "emerge. The local-minimum rule\nover-splits, confirming the "
              "paper's preference for the threshold.\n");
  return 0;
}
