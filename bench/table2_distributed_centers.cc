// Reproduces Table 2 of the paper: the effect of selecting centers with
// coordinate spreading ("distributed centers") on transportation graphs of
// 4 clusters x 150 nodes (~3167 edges).
//
// Paper reference:
//   | center-based        | F=791.8 | DS=69.5 | dF=636.3 | dDS=13.8 |
//   | distributed centers | F=791.8 | DS=4.3  | dF=12.4  | dDS=2.9  |
//
// "using the coordinates in selecting the centers gives indeed a
// considerable improvement."
#include <cstdio>

#include "bench_util.h"
#include "fragment/metrics.h"

using namespace tcf;
using namespace tcf::bench;

int main() {
  constexpr int kTrials = 12;
  constexpr size_t kFragments = 4;

  std::vector<std::pair<std::string, RowStats>> rows = {
      {AlgoName(Algo::kCenter), RowStats{}},
      {AlgoName(Algo::kDistributedCenters), RowStats{}}};

  Accumulator edges;
  Rng rng(19930412);
  for (int t = 0; t < kTrials; ++t) {
    Rng child = rng.Fork();
    auto tg = GenerateTransportationGraph(Table2Options(), &child);
    edges.Add(static_cast<double>(tg.graph.NumEdges()));
    rows[0].second.Add(ComputeCharacteristics(
        RunAlgo(tg.graph, Algo::kCenter, kFragments, t)));
    rows[1].second.Add(ComputeCharacteristics(
        RunAlgo(tg.graph, Algo::kDistributedCenters, kFragments, t)));
  }

  std::printf("== Table 2: center-based with and without distributed "
              "centers (4 clusters x 150 nodes) ==\n");
  std::printf("workload: %d seeds, avg edges %.1f (paper: 3167)\n\n", kTrials,
              edges.Mean());
  PrintCharacteristicsTable("measured:", rows);

  std::printf("\npaper reference:\n");
  TablePrinter ref({"Algorithm", "F", "DS", "dF", "dDS"});
  ref.AddRow({"center-based", "791.8", "69.5", "636.3", "13.8"});
  ref.AddRow({"distributed centers", "791.8", "4.3", "12.4", "2.9"});
  ref.Print();

  const RowStats& plain = rows[0].second;
  const RowStats& spread = rows[1].second;
  std::printf("\nshape checks:\n");
  std::printf("  same F (both partition all edges into 4): %s\n",
              std::abs(plain.f_bar.Mean() - spread.f_bar.Mean()) < 1.0
                  ? "PASS"
                  : "FAIL");
  std::printf("  distributed centers shrink DS by a large factor "
              "(paper 16x): %s (%.1f -> %.1f, %.1fx)\n",
              spread.ds_bar.Mean() * 2 < plain.ds_bar.Mean() ? "PASS" : "FAIL",
              plain.ds_bar.Mean(), spread.ds_bar.Mean(),
              plain.ds_bar.Mean() / spread.ds_bar.Mean());
  std::printf("  distributed centers shrink dF by a large factor "
              "(paper 51x): %s (%.1f -> %.1f)\n",
              spread.dev_f.Mean() * 2 < plain.dev_f.Mean() ? "PASS" : "FAIL",
              plain.dev_f.Mean(), spread.dev_f.Mean());
  std::printf("  dDS improves as well (paper 13.8 -> 2.9): %s (%.1f -> %.1f)\n",
              spread.dev_ds.Mean() <= plain.dev_ds.Mean() ? "PASS" : "FAIL",
              plain.dev_ds.Mean(), spread.dev_ds.Mean());
  return 0;
}
