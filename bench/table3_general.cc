// Reproduces Table 3 of the paper: fragmentation characteristics for
// general graphs (no superimposed cluster structure), 100 nodes, ~279.5
// edges.
//
// Paper reference:
//   | center-based        | F=77    | DS=18.1 | dF=40.2 | dDS=8.8  |
//   | distributed centers | F=77    | DS=18.9 | dF=34.7 | dDS=5.9  |
//   | bond-energy         | F=93.2  | DS=5.4  | dF=88.4 | dDS=2.1  |
//   | linear              | F=111.8 | DS=35.8 | dF=42.1 | dDS=1.25 |
//
// (F = 93.2 = 279.5 / 3 exactly, so the paper asked for f = 3 fragments;
// we do the same.)
#include <cstdio>

#include "bench_util.h"
#include "fragment/metrics.h"

using namespace tcf;
using namespace tcf::bench;

int main() {
  constexpr int kTrials = 25;
  constexpr size_t kFragments = 3;

  std::vector<Algo> algos = {Algo::kCenter, Algo::kDistributedCenters,
                             Algo::kBondEnergy, Algo::kLinear, Algo::kRandom,
                             Algo::kKernighanLin};
  std::vector<std::pair<std::string, RowStats>> rows;
  for (Algo a : algos) rows.emplace_back(AlgoName(a), RowStats{});

  Accumulator edges;
  Rng rng(19930412);
  for (int t = 0; t < kTrials; ++t) {
    Rng child = rng.Fork();
    Graph g = GenerateGeneralGraph(Table3Options(), &child);
    edges.Add(static_cast<double>(g.NumEdges()));
    for (size_t a = 0; a < algos.size(); ++a) {
      rows[a].second.Add(ComputeCharacteristics(
          RunAlgo(g, algos[a], kFragments, static_cast<uint64_t>(t))));
    }
  }

  std::printf(
      "== Table 3: fragmentation characteristics, general graphs "
      "(100 nodes) ==\n");
  std::printf("workload: %d seeds, avg edges %.1f (paper: 279.5)\n\n",
              kTrials, edges.Mean());
  PrintCharacteristicsTable("measured:", rows);

  std::printf("\npaper reference:\n");
  TablePrinter ref({"Algorithm", "F", "DS", "dF", "dDS"});
  ref.AddRow({"center-based", "77", "18.1", "40.2", "8.8"});
  ref.AddRow({"distributed centers", "77", "18.9", "34.7", "5.9"});
  ref.AddRow({"bond-energy", "93.2", "5.4", "88.4", "2.1"});
  ref.AddRow({"linear", "111.8", "35.8", "42.1", "1.25"});
  ref.Print();

  const double ds_center = rows[0].second.ds_bar.Mean();
  const double ds_bea = rows[2].second.ds_bar.Mean();
  const double ds_linear = rows[3].second.ds_bar.Mean();
  const double df_bea = rows[2].second.dev_f.Mean();
  std::printf("\nshape checks (Sec. 4.2.2: \"the algorithms again conform "
              "to the idea that underlies them\"):\n");
  std::printf("  bond-energy smallest DS (paper 5.4): %s (%.1f)\n",
              ds_bea <= ds_center && ds_bea <= ds_linear ? "PASS" : "FAIL",
              ds_bea);
  std::printf("  bond-energy pays with fragment-size variance (paper dF "
              "88.4, largest): %s (%.1f)\n",
              df_bea >= rows[0].second.dev_f.Mean() ? "PASS" : "FAIL", df_bea);
  std::printf("  linear largest DS (paper 35.8): %s (%.1f)\n",
              ds_linear >= ds_bea && ds_linear >= ds_center ? "PASS" : "FAIL",
              ds_linear);
  std::printf("  linear always acyclic: %s (%d/%d)\n",
              rows[3].second.acyclic == rows[3].second.trials ? "PASS"
                                                              : "FAIL",
              rows[3].second.acyclic, rows[3].second.trials);
  std::printf("  center-based DS sits between bond-energy and linear: %s "
              "(%.1f)\n",
              ds_center >= ds_bea && ds_center <= ds_linear ? "PASS" : "FAIL",
              ds_center);
  return 0;
}
