// Reproduces the motivation for Parallel Hierarchical Evaluation
// (Sec. 5 / footnote 4): "If the fragmentation graph becomes very complex
// and contains many routes from one fragment to another, a technique
// called Parallel Hierarchical Evaluation can be used to avoid problems."
//
// We drive the fragmentation-graph complexity up (random fragmentations
// with growing fragment counts on a well-connected graph) and compare the
// chain-enumerating DSA against PHE: chains considered, subqueries run,
// and query latency. Both remain exact (tests assert it); only the cost
// diverges.
#include <cstdio>

#include "bench_util.h"
#include "dsa/phe.h"
#include "dsa/query_api.h"
#include "util/timer.h"

using namespace tcf;
using namespace tcf::bench;

int main() {
  GeneralGraphOptions gopts;
  gopts.num_nodes = 120;
  gopts.target_edges = 500;  // well connected -> tangled fragment graphs
  gopts.ensure_connected = true;
  Rng rng(3);
  Graph g = GenerateGeneralGraph(gopts, &rng);

  std::printf("== PHE vs chain enumeration on complex fragmentation graphs "
              "(Sec. 5 / [12]) ==\n");
  std::printf("workload: 120-node general graph (%zu edges), random "
              "node-partition fragmentations,\n20 random queries per "
              "configuration\n\n",
              g.NumEdges());

  TablePrinter table({"fragments", "frag-graph cycles", "chains/query",
                      "DSA sites/query", "DSA ms", "PHE sites/query",
                      "PHE ms"});
  for (size_t f : {3, 5, 7, 9}) {
    Rng frng(100 + f);
    Fragmentation frag = RandomFragmentation(g, f, &frng);
    DsaDatabase dsa(&frag);
    PheDatabase phe(&frag);

    Accumulator chains, dsa_sites, dsa_ms, phe_sites, phe_ms;
    Rng qrng(7);
    for (int q = 0; q < 20; ++q) {
      const NodeId s = static_cast<NodeId>(qrng.NextBounded(g.NumNodes()));
      const NodeId t = static_cast<NodeId>(qrng.NextBounded(g.NumNodes()));
      {
        ExecutionReport report;
        WallTimer timer;
        QueryAnswer a = dsa.ShortestPath(s, t, &report);
        dsa_ms.Add(timer.ElapsedMillis());
        chains.Add(static_cast<double>(a.chains_considered));
        dsa_sites.Add(static_cast<double>(report.sites.size()));
      }
      {
        ExecutionReport report;
        WallTimer timer;
        phe.ShortestPath(s, t, &report);
        phe_ms.Add(timer.ElapsedMillis());
        phe_sites.Add(static_cast<double>(report.sites.size()));
      }
    }
    table.AddRow({std::to_string(frag.NumFragments()),
                  std::to_string(frag.FragmentationGraphCycles()),
                  TablePrinter::Fmt(chains.Mean()),
                  TablePrinter::Fmt(dsa_sites.Mean()),
                  TablePrinter::Fmt(dsa_ms.Mean(), 3),
                  TablePrinter::Fmt(phe_sites.Mean()),
                  TablePrinter::Fmt(phe_ms.Mean(), 3)});
  }
  table.Print();
  std::printf("\nreading: chain enumeration grows combinatorially with the "
              "fragmentation\ngraph's cycle count, while PHE stays at <= 3 "
              "subqueries by routing through\nthe high-speed network — "
              "both return identical (exact) answers.\n");
  return 0;
}
