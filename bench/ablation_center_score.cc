// Ablation: the center-selection status score of Sec. 3.1 —
//   grade(i) + a nb(.,1) + a^2 nb(.,2) + a^3 nb(.,3) —
// sweeping the attenuation a and the horizon, and comparing the two growth
// variants (round-robin / diameter vs smallest-first / size).
#include <cstdio>

#include "bench_util.h"
#include "fragment/metrics.h"

using namespace tcf;
using namespace tcf::bench;

int main() {
  constexpr int kTrials = 8;
  std::printf("== Ablation: center-based score parameters and growth "
              "variants (Sec. 3.1) ==\n");
  std::printf("workload: table-1 transportation graphs, %d seeds, f=4, "
              "distributed centers\n\n", kTrials);

  std::printf("attenuation a (horizon 3):\n");
  TablePrinter table({"a", "DS", "dF", "dDS"});
  for (double alpha : {0.0, 0.25, 0.5, 0.75, 0.9}) {
    RowStats row;
    Rng rng(29);
    for (int t = 0; t < kTrials; ++t) {
      Rng child = rng.Fork();
      auto tg = GenerateTransportationGraph(Table1Options(), &child);
      CenterBasedOptions opts;
      opts.num_fragments = 4;
      opts.distributed_centers = true;
      opts.score.alpha = alpha;
      row.Add(ComputeCharacteristics(
          CenterBasedFragmentation(tg.graph, opts)));
    }
    table.AddRow({TablePrinter::Fmt(alpha, 2),
                  TablePrinter::Fmt(row.ds_bar.Mean()),
                  TablePrinter::Fmt(row.dev_f.Mean()),
                  TablePrinter::Fmt(row.dev_ds.Mean())});
  }
  table.Print();

  std::printf("\nscore horizon (a = 0.5):\n");
  TablePrinter horizon({"depth", "DS", "dF"});
  for (int depth : {0, 1, 2, 3, 4}) {
    RowStats row;
    Rng rng(29);
    for (int t = 0; t < kTrials; ++t) {
      Rng child = rng.Fork();
      auto tg = GenerateTransportationGraph(Table1Options(), &child);
      CenterBasedOptions opts;
      opts.num_fragments = 4;
      opts.distributed_centers = true;
      opts.score.depth = depth;
      row.Add(ComputeCharacteristics(
          CenterBasedFragmentation(tg.graph, opts)));
    }
    horizon.AddRow({std::to_string(depth),
                    TablePrinter::Fmt(row.ds_bar.Mean()),
                    TablePrinter::Fmt(row.dev_f.Mean())});
  }
  horizon.Print();

  std::printf("\ngrowth variant ('the algorithm is flexible and allows us "
              "to choose either'):\n");
  TablePrinter growth({"variant", "DS", "dF", "max/mean F"});
  for (auto variant : {CenterBasedOptions::Growth::kRoundRobin,
                       CenterBasedOptions::Growth::kSmallestFirst}) {
    RowStats row;
    Accumulator imbalance;
    Rng rng(29);
    for (int t = 0; t < kTrials; ++t) {
      Rng child = rng.Fork();
      auto tg = GenerateTransportationGraph(Table1Options(), &child);
      CenterBasedOptions opts;
      opts.num_fragments = 4;
      opts.distributed_centers = true;
      opts.growth = variant;
      auto c = ComputeCharacteristics(CenterBasedFragmentation(tg.graph, opts));
      row.Add(c);
      imbalance.Add(c.max_fragment_edges /
                    std::max(1.0, c.avg_fragment_edges));
    }
    growth.AddRow({variant == CenterBasedOptions::Growth::kRoundRobin
                       ? "round-robin (diameter)"
                       : "smallest-first (size)",
                   TablePrinter::Fmt(row.ds_bar.Mean()),
                   TablePrinter::Fmt(row.dev_f.Mean()),
                   TablePrinter::Fmt(imbalance.Mean(), 2)});
  }
  growth.Print();
  std::printf("\nreading: Sec. 3.1 — \"Generally, it will not make a big "
              "difference which of\nthese characteristics we put first\"; "
              "both variants land close, and the score\nparameters matter "
              "far less than spreading the centers (Table 2's effect).\n");
  return 0;
}
