// Micro-benchmarks (google-benchmark) of the transitive-closure strategies
// of src/relational/ on the structures whose shapes drive the paper's cost
// model: chains (diameter stress), cycles, and transportation fragments.
#include <benchmark/benchmark.h>

#include "graph/builder.h"
#include "graph/generator.h"
#include "relational/transitive_closure.h"
#include "relational/warshall.h"
#include "util/rng.h"

namespace tcf {
namespace {

Relation ChainRelation(size_t n) {
  GraphBuilder b(n);
  for (NodeId v = 0; v + 1 < n; ++v) b.AddEdge(v, v + 1, 1.0);
  return Relation::FromGraph(b.Build());
}

Relation ClusterRelation(size_t nodes) {
  GeneralGraphOptions opts;
  opts.num_nodes = nodes;
  opts.target_edges = static_cast<double>(nodes) * 4;
  opts.ensure_connected = true;
  Rng rng(5);
  return Relation::FromGraph(GenerateGeneralGraph(opts, &rng));
}

TcOptions WithAlgorithm(TcAlgorithm algo) {
  TcOptions opts;
  opts.algorithm = algo;
  return opts;
}

void BM_SemiNaive_Chain(benchmark::State& state) {
  Relation base = ChainRelation(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        TransitiveClosure(base, WithAlgorithm(TcAlgorithm::kSemiNaive)));
  }
}
BENCHMARK(BM_SemiNaive_Chain)->Arg(32)->Arg(64)->Arg(128);

void BM_Naive_Chain(benchmark::State& state) {
  Relation base = ChainRelation(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        TransitiveClosure(base, WithAlgorithm(TcAlgorithm::kNaive)));
  }
}
BENCHMARK(BM_Naive_Chain)->Arg(32)->Arg(64);

void BM_Smart_Chain(benchmark::State& state) {
  Relation base = ChainRelation(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        TransitiveClosure(base, WithAlgorithm(TcAlgorithm::kSmart)));
  }
}
BENCHMARK(BM_Smart_Chain)->Arg(32)->Arg(64)->Arg(128);

void BM_SemiNaive_Cluster(benchmark::State& state) {
  Relation base = ClusterRelation(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        TransitiveClosure(base, WithAlgorithm(TcAlgorithm::kSemiNaive)));
  }
}
BENCHMARK(BM_SemiNaive_Cluster)->Arg(25)->Arg(50)->Arg(100);

void BM_SemiNaive_Cluster_SourceRestricted(benchmark::State& state) {
  Relation base = ClusterRelation(static_cast<size_t>(state.range(0)));
  TcOptions opts;
  opts.sources = NodeSet{0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(TransitiveClosure(base, opts));
  }
}
BENCHMARK(BM_SemiNaive_Cluster_SourceRestricted)->Arg(25)->Arg(50)->Arg(100);

void BM_Warshall_Cluster(benchmark::State& state) {
  GeneralGraphOptions opts;
  opts.num_nodes = static_cast<size_t>(state.range(0));
  opts.target_edges = static_cast<double>(state.range(0)) * 4;
  opts.ensure_connected = true;
  Rng rng(5);
  Graph g = GenerateGeneralGraph(opts, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(WarshallClosure(g));
  }
}
BENCHMARK(BM_Warshall_Cluster)->Arg(25)->Arg(50)->Arg(100)->Arg(200);

void BM_MinPlus_vs_Reachability(benchmark::State& state) {
  Relation base = ClusterRelation(60);
  TcOptions opts;
  opts.semiring = state.range(0) == 0 ? TcSemiring::kReachability
                                      : TcSemiring::kMinPlus;
  for (auto _ : state) {
    benchmark::DoNotOptimize(TransitiveClosure(base, opts));
  }
}
BENCHMARK(BM_MinPlus_vs_Reachability)->Arg(0)->Arg(1);

}  // namespace
}  // namespace tcf

BENCHMARK_MAIN();
