// The experiment the paper announces as future work in Sec. 5 ("Currently,
// we are undertaking experiments on the PRISMA multi-processor database
// machine. These experiments will show which of the characteristics
// identified here is of main importance"): end-to-end query cost of the
// disconnection set approach under each fragmentation algorithm, plus the
// PHE evaluator, on both graph families.
#include <cstdio>
#include <functional>

#include "bench_util.h"
#include "dsa/phe.h"
#include "dsa/query_api.h"
#include "fragment/metrics.h"
#include "util/timer.h"

using namespace tcf;
using namespace tcf::bench;

namespace {

void RunFamily(const char* family,
               const std::function<Graph(Rng*)>& make_graph,
               size_t fragments) {
  constexpr int kTrials = 5;
  constexpr int kQueries = 20;
  std::printf("%s (%d seeds x %d queries, Dijkstra engine):\n", family,
              kTrials, kQueries);
  TablePrinter table({"Algorithm", "avg DS", "dF", "query ms",
                      "comm tuples/query", "sites/query"});
  for (Algo algo : {Algo::kCenter, Algo::kDistributedCenters,
                    Algo::kBondEnergy, Algo::kLinear, Algo::kRandom}) {
    Accumulator ds, df, ms, comm, sites;
    Rng rng(17);
    for (int t = 0; t < kTrials; ++t) {
      Rng child = rng.Fork();
      Graph g = make_graph(&child);
      Fragmentation frag = RunAlgo(g, algo, fragments,
                                   static_cast<uint64_t>(t));
      auto c = ComputeCharacteristics(frag);
      ds.Add(c.avg_ds_nodes);
      df.Add(c.dev_fragment_edges);
      DsaDatabase db(&frag);
      Rng qrng(child.Fork());
      for (int q = 0; q < kQueries; ++q) {
        const NodeId s = static_cast<NodeId>(qrng.NextBounded(g.NumNodes()));
        const NodeId u = static_cast<NodeId>(qrng.NextBounded(g.NumNodes()));
        ExecutionReport report;
        WallTimer timer;
        db.ShortestPath(s, u, &report);
        ms.Add(timer.ElapsedMillis());
        comm.Add(static_cast<double>(report.communication_tuples));
        sites.Add(static_cast<double>(report.sites.size()));
      }
    }
    table.AddRow({AlgoName(algo), TablePrinter::Fmt(ds.Mean()),
                  TablePrinter::Fmt(df.Mean()), TablePrinter::Fmt(ms.Mean(), 3),
                  TablePrinter::Fmt(comm.Mean(), 0),
                  TablePrinter::Fmt(sites.Mean(), 1)});
  }

  // PHE on a bond-energy fragmentation for comparison.
  {
    Accumulator ms, comm, sites;
    Rng rng(17);
    for (int t = 0; t < kTrials; ++t) {
      Rng child = rng.Fork();
      Graph g = make_graph(&child);
      Fragmentation frag = RunAlgo(g, Algo::kBondEnergy, fragments,
                                   static_cast<uint64_t>(t));
      PheDatabase phe(&frag);
      Rng qrng(child.Fork());
      for (int q = 0; q < kQueries; ++q) {
        const NodeId s = static_cast<NodeId>(qrng.NextBounded(g.NumNodes()));
        const NodeId u = static_cast<NodeId>(qrng.NextBounded(g.NumNodes()));
        ExecutionReport report;
        WallTimer timer;
        phe.ShortestPath(s, u, &report);
        ms.Add(timer.ElapsedMillis());
        comm.Add(static_cast<double>(report.communication_tuples));
        sites.Add(static_cast<double>(report.sites.size()));
      }
    }
    table.AddRow({"PHE (on bond-energy)", "-", "-",
                  TablePrinter::Fmt(ms.Mean(), 3),
                  TablePrinter::Fmt(comm.Mean(), 0),
                  TablePrinter::Fmt(sites.Mean(), 1)});
  }
  table.Print();
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("== End-to-end query performance per fragmentation algorithm "
              "(the paper's announced PRISMA experiment) ==\n\n");
  RunFamily("transportation graphs (4x25)",
            [](Rng* rng) {
              return GenerateTransportationGraph(Table1Options(), rng).graph;
            },
            4);
  RunFamily("general graphs (100 nodes)",
            [](Rng* rng) { return GenerateGeneralGraph(Table3Options(), rng); },
            3);
  std::printf("reading: small disconnection sets keep the communication "
              "volume and query\nlatency lowest — supporting Sec. 4.2.3's "
              "bet on the bond-energy algorithm —\nwhile PHE bounds the "
              "number of subqueries on cyclic fragmentations.\n");
  return 0;
}
