// Reproduces the iteration-count claim of Sec. 2.1: "The number of
// iterations required before reaching a fixpoint is given by the maximum
// diameter of the graph; if the graph is fragmented in n fragments G_i of
// equal size, the diameter of each subgraph is highly reduced."
//
// For f = 1..8 we report the max fragment diameter and the max per-site
// semi-naive iteration count, against the whole-graph numbers.
#include <cstdio>

#include "bench_util.h"
#include "fragment/metrics.h"
#include "graph/algorithms.h"
#include "relational/transitive_closure.h"

using namespace tcf;
using namespace tcf::bench;

namespace {

size_t FullClosureIterations(const Relation& base) {
  TcStats stats;
  TransitiveClosure(base, {}, &stats);
  return stats.iterations;
}

}  // namespace

int main() {
  TransportationGraphOptions gopts;
  gopts.num_clusters = 8;
  gopts.nodes_per_cluster = 25;
  gopts.target_edges_per_cluster = 90;
  Rng rng(11);
  auto tg = GenerateTransportationGraph(gopts, &rng);
  const Graph& g = tg.graph;

  std::printf("== Iterations vs fragment diameter (Sec. 2.1) ==\n");
  std::printf("workload: 8x25 transportation graph, %zu edges\n\n",
              g.NumEdges());
  const int whole_diameter = HopDiameter(g);
  const size_t whole_iters =
      FullClosureIterations(Relation::FromGraph(g));
  std::printf("whole graph: hop diameter %d, semi-naive iterations %zu\n\n",
              whole_diameter, whole_iters);

  TablePrinter table({"f", "max fragment diameter", "max site iterations",
                      "vs whole-graph iterations"});
  for (size_t f : {2, 4, 8}) {
    CenterBasedOptions copts;
    copts.num_fragments = f;
    copts.distributed_centers = true;
    Fragmentation frag = CenterBasedFragmentation(g, copts);
    int max_diameter = 0;
    size_t max_iters = 0;
    for (FragmentId i = 0; i < frag.NumFragments(); ++i) {
      Graph sub = frag.FragmentSubgraph(i);
      max_diameter = std::max(max_diameter, HopDiameter(sub));
      max_iters = std::max(
          max_iters, FullClosureIterations(
                         Relation::FromEdgeSubset(g, frag.FragmentEdges(i))));
    }
    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "%.2fx",
                  static_cast<double>(max_iters) /
                      static_cast<double>(whole_iters));
    table.AddRow({std::to_string(f), std::to_string(max_diameter),
                  std::to_string(max_iters), ratio});
  }
  table.Print();
  std::printf("\nreading: iterations track the fragment diameter and both "
              "fall as f grows,\nwhich is the per-site speed-up source of "
              "the disconnection set approach.\n");
  return 0;
}
