// Read latency under concurrent maintenance epochs (the Sec. 2.1
// amortization premise made measurable). Two sections over the Table 1
// transportation workload on a MaintainedDatabase:
//
//   1. reads under updates — client threads stream uniform queries through
//      a QueryService while one updater thread submits reweight epochs at
//      a swept rate (0 = frozen baseline). Because queries pin epoch
//      snapshots, read p99 should degrade gently rather than stall behind
//      epoch publication; the updater's submit-to-publish latency is
//      reported beside it.
//   2. epoch cost — direct single-op ApplyEpoch timing per update kind:
//      reweight-only epochs ride the incremental complementary refresh,
//      inserts/deletes pay the structural path.
//
// `update_latency [N [clients]]` sets the per-cell query count (default
// 6000) and reader-thread count (default 4); `--json <path>` writes the
// machine-readable metrics for the CI perf gate. Gated series (keys ending
// "_qps"): read throughput per update rate, the inverse p99 read latency
// under updates (1/p99 seconds, so "higher is better" like every gated
// key), and reweight-epoch application throughput.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "dsa/maintenance.h"
#include "dsa/service.h"
#include "dsa/workload.h"
#include "util/timer.h"

using namespace tcf;
using namespace tcf::bench;

namespace {

std::vector<Query> UniformWorkload(const Fragmentation& frag, size_t n,
                                   uint64_t seed) {
  WorkloadSpec spec;
  spec.mix = WorkloadMix::kUniform;
  spec.num_queries = n;
  Rng rng(seed);
  return GenerateWorkload(frag, spec, &rng);
}

struct CellResult {
  double wall_seconds = 0.0;
  ServiceStats stats;
};

/// Closed-loop readers (window of 32 futures each) racing one open-loop
/// updater that submits absolute reweights of initial edges at
/// `updates_per_second` (0 disables the updater).
CellResult DriveReadsUnderUpdates(MaintainedDatabase* mdb,
                                  const std::vector<Query>& queries,
                                  size_t clients,
                                  double updates_per_second) {
  ServiceOptions opts;
  opts.max_batch = 64;
  opts.max_wait = std::chrono::milliseconds(2);
  QueryService service(mdb, opts);

  const std::vector<Edge> initial_edges = mdb->graph().edges();
  std::atomic<bool> done{false};
  std::thread updater;
  if (updates_per_second > 0.0) {
    updater = std::thread([&]() {
      Rng rng(97);
      const auto gap = std::chrono::duration_cast<
          std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(1.0 / updates_per_second));
      auto next = std::chrono::steady_clock::now();
      while (!done.load(std::memory_order_acquire)) {
        const Edge& e = initial_edges[rng.NextBounded(initial_edges.size())];
        service
            .SubmitUpdate(EdgeUpdate::Reweight(
                e.src, e.dst, e.weight * rng.NextDouble(0.5, 1.5)))
            .get();
        next += gap;
        std::this_thread::sleep_until(next);
      }
    });
  }

  constexpr size_t kWindow = 32;
  WallTimer timer;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c]() {
      std::vector<std::future<Weight>> in_flight;
      in_flight.reserve(kWindow);
      for (size_t i = c; i < queries.size(); i += clients) {
        in_flight.push_back(
            service.SubmitShortestPath(queries[i].from, queries[i].to));
        if (in_flight.size() == kWindow) {
          for (auto& f : in_flight) f.get();
          in_flight.clear();
        }
      }
      for (auto& f : in_flight) f.get();
    });
  }
  for (auto& t : threads) t.join();
  const double wall = timer.ElapsedSeconds();
  done.store(true, std::memory_order_release);
  if (updater.joinable()) updater.join();
  service.Shutdown();

  CellResult out;
  out.wall_seconds = wall;
  out.stats = service.Stats();
  return out;
}

void ReadsUnderUpdates(const Fragmentation& frag, size_t num_queries,
                       size_t clients, JsonMetrics* metrics) {
  std::printf(
      "reads under updates: uniform mix, %zu queries, %zu reader threads, "
      "one updater\n",
      num_queries, clients);
  // "read q/s" vs "ops/s": SustainedQps() counts QUERIES only; the
  // combined column adds the applied updates back in so the mixed
  // workload's total throughput is not silently under-reported.
  TablePrinter table({"updates/s", "read q/s", "ops/s", "p50 ms", "p99 ms",
                      "epochs", "update p50 ms", "update p99 ms"});

  constexpr double kRates[] = {0.0, 50.0, 400.0};
  for (double rate : kRates) {
    MaintainedDatabase mdb = MaintainedDatabase::FromFragmentation(frag);
    const std::vector<Query> queries = UniformWorkload(frag, num_queries, 61);
    const CellResult run =
        DriveReadsUnderUpdates(&mdb, queries, clients, rate);
    const double read_qps =
        static_cast<double>(num_queries) / run.wall_seconds;
    const double p99_ms = run.stats.LatencyPercentileMs(99);
    const bool has_updates = run.stats.update_epochs > 0;
    const double up50 =
        has_updates ? run.stats.update_latency_seconds.Percentile(50) * 1e3
                    : 0.0;
    const double up99 =
        has_updates ? run.stats.update_latency_seconds.Percentile(99) * 1e3
                    : 0.0;

    table.AddRow({TablePrinter::Fmt(rate, 0), TablePrinter::Fmt(read_qps, 0),
                  TablePrinter::Fmt(run.stats.SustainedOpsPerSec(), 0),
                  TablePrinter::Fmt(run.stats.LatencyPercentileMs(50), 2),
                  TablePrinter::Fmt(p99_ms, 2),
                  std::to_string(run.stats.update_epochs),
                  has_updates ? TablePrinter::Fmt(up50, 2) : "-",
                  has_updates ? TablePrinter::Fmt(up99, 2) : "-"});

    const std::string prefix =
        "reads/rate_" + std::to_string(static_cast<int>(rate));
    metrics->Set(prefix + "_qps", read_qps);
    metrics->Set(prefix + "/p99_ms", p99_ms);
    if (rate > 0.0) {
      metrics->Set(prefix + "/update_p99_ms", up99);
      metrics->Set(prefix + "/epochs",
                   static_cast<double>(run.stats.update_epochs));
      // The split rates: queries and updates separately plus the combined
      // operation rate, so the JSON never hides update work inside a
      // "qps" that only counted reads.
      metrics->Set(prefix + "/update_rate",
                   run.stats.SustainedUpdatesPerSec());
      metrics->Set(prefix + "/ops_per_sec", run.stats.SustainedOpsPerSec());
    }
    // The gated read-tail series: inverse p99 (1/seconds) so the "_qps"
    // regression gate's higher-is-better rule covers tail latency too.
    // Keyed on the heaviest swept rate.
    if (rate == kRates[2] && p99_ms > 0.0) {
      metrics->Set("reads/p99_read_inv_qps", 1e3 / p99_ms);
    }
  }
  table.Print();
  std::printf("\n");
}

void EpochCost(const Fragmentation& frag, JsonMetrics* metrics) {
  constexpr size_t kEpochs = 200;
  std::printf("epoch cost: %zu single-op epochs per kind (direct "
              "ApplyEpoch, no service)\n",
              kEpochs);
  TablePrinter table({"kind", "epochs/s", "mean ms", "structural",
                      "dirty borders", "reused borders"});

  struct Kind {
    const char* name;
    const char* key;
  };
  constexpr Kind kKinds[] = {{"reweight", "reweight"},
                             {"insert+delete", "structural"}};
  for (const Kind& kind : kKinds) {
    MaintainedDatabase mdb = MaintainedDatabase::FromFragmentation(frag);
    const std::vector<Edge> initial_edges = mdb.graph().edges();
    Rng rng(113);
    size_t structural = 0, dirty = 0, reused = 0;
    WallTimer timer;
    for (size_t i = 0; i < kEpochs; ++i) {
      const Edge& e = initial_edges[rng.NextBounded(initial_edges.size())];
      EpochStats stats;
      if (std::string(kind.key) == "reweight") {
        stats = mdb.ApplyEpoch({EdgeUpdate::Reweight(
            e.src, e.dst, e.weight * rng.NextDouble(0.5, 1.5))});
      } else if (i % 2 == 0) {
        stats = mdb.ApplyEpoch({EdgeUpdate::Insert(
            e.src, e.dst, e.weight * rng.NextDouble(0.5, 1.5))});
      } else {
        stats = mdb.ApplyEpoch({EdgeUpdate::Delete(e.src, e.dst)});
      }
      structural += stats.structural ? 1 : 0;
      dirty += stats.dirty_border_nodes;
      reused += stats.reused_border_nodes;
    }
    const double seconds = timer.ElapsedSeconds();
    const double eps = static_cast<double>(kEpochs) / seconds;
    table.AddRow({kind.name, TablePrinter::Fmt(eps, 0),
                  TablePrinter::Fmt(1e3 * seconds / kEpochs, 3),
                  std::to_string(structural), std::to_string(dirty),
                  std::to_string(reused)});
    metrics->Set(std::string("epoch/") + kind.key + "_epochs_qps", eps);
    metrics->Set(std::string("epoch/") + kind.key + "_dirty_borders",
                 static_cast<double>(dirty));
    metrics->Set(std::string("epoch/") + kind.key + "_reused_borders",
                 static_cast<double>(reused));
  }
  table.Print();
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = ConsumeJsonFlag(&argc, argv);
  const size_t num_queries =
      argc > 1 ? static_cast<size_t>(std::strtoull(argv[1], nullptr, 10))
               : 6000;
  const size_t clients =
      argc > 2 ? static_cast<size_t>(std::strtoull(argv[2], nullptr, 10)) : 4;
  JsonMetrics metrics("update_latency");

  Rng rng(7);
  TransportationGraphOptions opts = Table1Options();
  TransportationGraph t = GenerateTransportationGraph(opts, &rng);
  LinearOptions lopts;
  lopts.num_fragments = 4;
  const Fragmentation frag =
      LinearFragmentation(t.graph, lopts).fragmentation;
  std::printf("graph: %zu nodes, %zu edges, %zu fragments\n\n",
              t.graph.NumNodes(), t.graph.NumEdges(), frag.NumFragments());

  ReadsUnderUpdates(frag, num_queries, clients, &metrics);
  EpochCost(frag, &metrics);

  if (!json_path.empty() && !metrics.WriteFile(json_path)) return 1;
  return 0;
}
