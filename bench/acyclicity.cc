// Reproduces the loose-connectivity discussion (Sec. 2.1/2.2 third issue,
// Fig. 2): how often each algorithm produces an acyclic fragmentation
// graph, on both graph families, and what cyclicity costs at query time
// (number of chains that must be considered).
#include <cstdio>
#include <functional>

#include "bench_util.h"
#include "dsa/chains.h"
#include "fragment/metrics.h"

using namespace tcf;
using namespace tcf::bench;

namespace {

void RunFamily(const char* family,
               const std::function<Graph(Rng*)>& make_graph,
               size_t fragments) {
  constexpr int kTrials = 15;
  std::printf("%s (%d seeds, f=%zu):\n", family, kTrials, fragments);
  TablePrinter table({"Algorithm", "acyclic", "avg cycles",
                      "avg chains per query pair"});
  for (Algo algo : {Algo::kCenter, Algo::kDistributedCenters,
                    Algo::kBondEnergy, Algo::kLinear, Algo::kRandom}) {
    int acyclic = 0;
    Accumulator cycles, chains;
    Rng rng(3);
    for (int t = 0; t < kTrials; ++t) {
      Rng child = rng.Fork();
      Graph g = make_graph(&child);
      Fragmentation frag = RunAlgo(g, algo, fragments,
                                   static_cast<uint64_t>(t));
      if (frag.IsLooselyConnected()) ++acyclic;
      cycles.Add(static_cast<double>(frag.FragmentationGraphCycles()));
      // Chains between every ordered fragment pair.
      Accumulator per_pair;
      for (FragmentId a = 0; a < frag.NumFragments(); ++a) {
        for (FragmentId b = 0; b < frag.NumFragments(); ++b) {
          if (a == b) continue;
          per_pair.Add(static_cast<double>(
              FindChains(frag, a, b, 1024).size()));
        }
      }
      if (!per_pair.empty()) chains.Add(per_pair.Mean());
    }
    table.AddRow({AlgoName(algo),
                  TablePrinter::Fmt(100.0 * acyclic / kTrials, 0) + "%",
                  TablePrinter::Fmt(cycles.Mean(), 2),
                  TablePrinter::Fmt(chains.Mean(), 2)});
  }
  table.Print();
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("== Loose connectivity of the fragmentation graph (Sec. 2, "
              "Fig. 2) ==\n\n");
  RunFamily("transportation graphs (4x25)",
            [](Rng* rng) {
              return GenerateTransportationGraph(Table1Options(), rng).graph;
            },
            4);
  RunFamily("general graphs (100 nodes)",
            [](Rng* rng) { return GenerateGeneralGraph(Table3Options(), rng); },
            3);
  std::printf("reading: linear fragmentation is acyclic by construction "
              "(exactly one chain\nper query pair); the others may produce "
              "cycles, which multiply the chains the\nDSA must consider — "
              "the cost Parallel Hierarchical Evaluation avoids.\n");
  return 0;
}
