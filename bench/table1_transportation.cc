// Reproduces Table 1 of the paper: fragmentation characteristics for
// transportation graphs of 4 clusters x 25 nodes (~429 edges, ~2.25 edges
// connecting each pair of linked clusters).
//
// Paper reference values (Table 1 is partially garbled in the available
// scan; the legible cells and the prose of Sec. 4.2.1 give):
//   bond-energy DS = 2.4 (smallest of the three)
//   linear      DS = 13.3 (largest; ignores disconnection sets)
//   center-based: best fragment-size balance; fragment count predetermined.
#include <cstdio>

#include "bench_util.h"
#include "fragment/metrics.h"

using namespace tcf;
using namespace tcf::bench;

int main() {
  constexpr int kTrials = 25;
  constexpr size_t kFragments = 4;

  std::vector<Algo> algos = {Algo::kCenter, Algo::kDistributedCenters,
                             Algo::kBondEnergy, Algo::kLinear, Algo::kRandom,
                             Algo::kKernighanLin};
  std::vector<std::pair<std::string, RowStats>> rows;
  for (Algo a : algos) rows.emplace_back(AlgoName(a), RowStats{});

  Accumulator edges, cross;
  Rng rng(19930412);
  for (int t = 0; t < kTrials; ++t) {
    Rng child = rng.Fork();
    auto tg = GenerateTransportationGraph(Table1Options(), &child);
    edges.Add(static_cast<double>(tg.graph.NumEdges()));
    size_t cross_edges = 0;
    for (const Edge& e : tg.graph.edges()) {
      if (tg.cluster_of_node[e.src] != tg.cluster_of_node[e.dst]) {
        ++cross_edges;
      }
    }
    cross.Add(static_cast<double>(cross_edges) / 2.0 /
              static_cast<double>(tg.links.size()));
    for (size_t a = 0; a < algos.size(); ++a) {
      Fragmentation frag =
          RunAlgo(tg.graph, algos[a], kFragments, static_cast<uint64_t>(t));
      rows[a].second.Add(ComputeCharacteristics(frag));
    }
  }

  std::printf("== Table 1: fragmentation characteristics, transportation "
              "graphs (4 clusters x 25 nodes) ==\n");
  std::printf("workload: %d seeds, avg edges %.1f (paper: 429), avg edges "
              "connecting fragments %.2f (paper: 2.25)\n\n",
              kTrials, edges.Mean(), cross.Mean());
  PrintCharacteristicsTable("measured:", rows);

  std::printf("\npaper reference (legible cells):\n");
  TablePrinter ref({"Algorithm", "F", "DS", "dF", "dDS"});
  ref.AddRow({"center-based", "(garbled)", "(garbled)", "(garbled)",
              "(garbled)"});
  ref.AddRow({"bond-energy", "(garbled)", "2.4", "(garbled)", "(garbled)"});
  ref.AddRow({"linear", "(garbled)", "13.3", "(garbled)", "(garbled)"});
  ref.Print();

  // Shape checks (the claims Sec. 4.2.1 derives from this table).
  const double ds_bea = rows[2].second.ds_bar.Mean();
  const double ds_center = rows[0].second.ds_bar.Mean();
  const double ds_linear = rows[3].second.ds_bar.Mean();
  const double df_center = rows[1].second.dev_f.Mean();
  const double df_bea = rows[2].second.dev_f.Mean();
  const double df_linear = rows[3].second.dev_f.Mean();
  std::printf("\nshape checks:\n");
  std::printf("  bond-energy has the smallest DS (2.4 in paper): %s "
              "(%.1f vs center %.1f, linear %.1f)\n",
              ds_bea <= ds_center && ds_bea <= ds_linear ? "PASS" : "FAIL",
              ds_bea, ds_center, ds_linear);
  std::printf("  linear has the largest DS (13.3 in paper): %s\n",
              ds_linear >= ds_bea && ds_linear >= ds_center ? "PASS" : "FAIL");
  std::printf("  linear is always acyclic: %s (%d/%d)\n",
              rows[3].second.acyclic == rows[3].second.trials ? "PASS"
                                                              : "FAIL",
              rows[3].second.acyclic, rows[3].second.trials);
  std::printf("  center-based balances fragment sizes best "
              "(distributed variant): %s (dF %.1f vs bea %.1f, linear %.1f)\n",
              df_center <= df_bea && df_center <= df_linear ? "PASS" : "FAIL",
              df_center, df_bea, df_linear);
  return 0;
}
