// Reproduces the headline performance claim of Sec. 2.1: "Because of these
// characteristics, the disconnection set approach is well suited for
// parallel evaluation of the transitive closure. ... For good
// fragmentations, it gives a linear speed-up."
//
// The speed-up is parallel vs sequential execution of the *same* fragmented
// plan: phase 1 runs one independent subquery per fragment on the chain
// (no communication), so with one processor per fragment the elapsed time
// is the slowest site instead of the sum of all sites.
//
// Workload: a row of 8 clusters (the European-railway shape), fragmented by
// the linear algorithm into f chunks; every query goes from the west end to
// the east end so all f fragments participate. We report, per f:
//   sum of site costs  (sequential execution),
//   max of site costs  (parallel execution, 1 processor/fragment),
//   speed-up and efficiency,
// plus the whole-graph unfragmented closure cost for context (the
// search-space reduction the paper also banks on).
#include <cstdio>

#include "bench_util.h"
#include "dsa/query_api.h"
#include "fragment/center_based.h"
#include "relational/transitive_closure.h"
#include "util/timer.h"

using namespace tcf;
using namespace tcf::bench;

int main() {
  TransportationGraphOptions gopts;
  gopts.num_clusters = 8;
  gopts.nodes_per_cluster = 70;
  gopts.target_edges_per_cluster = 300;
  gopts.links = {{0, 1, 2}, {1, 2, 2}, {2, 3, 2}, {3, 4, 2},
                 {4, 5, 2}, {5, 6, 2}, {6, 7, 2}};  // a row, not a ring
  Rng rng(7);
  auto tg = GenerateTransportationGraph(gopts, &rng);
  const Graph& g = tg.graph;

  std::printf("== Speed-up of the disconnection set approach (Sec. 2.1: "
              "\"For good fragmentations, it gives a linear speed-up\") ==\n");
  std::printf("workload: row of 8 clusters x 70 nodes, %zu edges, 16 "
              "west-to-east shortest-path queries,\nsemi-naive relational "
              "engine, distributed-centers fragmentation (a \"good\" one: "
              "small DS, balanced)\n\n",
              g.NumEdges());

  // End-to-end queries: cluster 0 -> cluster 7.
  std::vector<std::pair<NodeId, NodeId>> queries;
  Rng qrng(99);
  for (int i = 0; i < 16; ++i) {
    queries.emplace_back(
        static_cast<NodeId>(qrng.NextBounded(70)),
        static_cast<NodeId>(7 * 70 + qrng.NextBounded(70)));
  }

  // Context: the unfragmented single-source closure over the whole
  // relation (what one site pays without the disconnection set approach).
  {
    Relation whole = Relation::FromGraph(g);
    WallTimer timer;
    size_t join_tuples = 0;
    for (auto [s, t] : queries) {
      TcOptions opts;
      opts.sources = NodeSet{s};
      TcStats stats;
      TransitiveClosure(whole, opts, &stats);
      join_tuples += stats.join_tuples;
    }
    std::printf("unfragmented baseline: %.3f s, %zu join tuples for the "
                "batch\n\n",
                timer.ElapsedSeconds(), join_tuples);
  }

  TablePrinter table({"f", "seq = sum sites (s)", "par = max site (s)",
                      "speed-up", "efficiency", "comm tuples"});
  for (size_t f : {1, 2, 4, 8}) {
    CenterBasedOptions copts;
    copts.num_fragments = f;
    copts.distributed_centers = true;
    Fragmentation frag = CenterBasedFragmentation(g, copts);
    DsaOptions dopts;
    dopts.engine = LocalEngine::kSemiNaive;
    dopts.num_threads = 1;  // timings below are per-site CPU, not wall
    DsaDatabase db(&frag, dopts);

    double seq = 0.0, par = 0.0;
    size_t comm = 0;
    for (auto [s, t] : queries) {
      ExecutionReport report;
      db.ShortestPath(s, t, &report);
      double query_seq = 0.0, query_par = 0.0;
      for (const SiteReport& site : report.sites) {
        query_seq += site.seconds;
        query_par = std::max(query_par, site.seconds);
      }
      seq += query_seq + report.assembly_seconds;
      par += query_par + report.assembly_seconds;
      comm += report.communication_tuples;
    }
    const double speedup = seq / par;
    table.AddRow({std::to_string(frag.NumFragments()),
                  TablePrinter::Fmt(seq, 3), TablePrinter::Fmt(par, 3),
                  TablePrinter::Fmt(speedup, 2),
                  TablePrinter::Fmt(speedup /
                                        static_cast<double>(frag.NumFragments()),
                                    2),
                  std::to_string(comm)});
  }
  table.Print();
  std::printf(
      "\nreading: with an acyclic, reasonably balanced fragmentation the\n"
      "speed-up grows close to linearly in f — phase 1 needs no\n"
      "communication, and the final joins touch only the small\n"
      "disconnection-set relations (comm tuples column).\n");
  return 0;
}
