// Micro-benchmarks (google-benchmark) of the query path: DSA shortest-path
// queries per fragmentation algorithm and engine, PHE, and the
// preprocessing (complementary-information) cost.
#include <benchmark/benchmark.h>

#include "dsa/phe.h"
#include "dsa/query_api.h"
#include "graph/algorithms.h"
#include "fragment/bond_energy.h"
#include "fragment/center_based.h"
#include "fragment/linear.h"
#include "graph/generator.h"
#include "util/rng.h"

namespace tcf {
namespace {

TransportationGraph MakeGraph() {
  TransportationGraphOptions opts;
  opts.num_clusters = 4;
  opts.nodes_per_cluster = 50;
  opts.target_edges_per_cluster = 200;
  Rng rng(13);
  return GenerateTransportationGraph(opts, &rng);
}

void BM_DsaQuery_Dijkstra(benchmark::State& state) {
  auto tg = MakeGraph();
  CenterBasedOptions copts;
  copts.num_fragments = 4;
  copts.distributed_centers = true;
  Fragmentation frag = CenterBasedFragmentation(tg.graph, copts);
  DsaDatabase db(&frag);
  Rng rng(1);
  for (auto _ : state) {
    const NodeId s = static_cast<NodeId>(rng.NextBounded(tg.graph.NumNodes()));
    const NodeId t = static_cast<NodeId>(rng.NextBounded(tg.graph.NumNodes()));
    benchmark::DoNotOptimize(db.ShortestPath(s, t));
  }
}
BENCHMARK(BM_DsaQuery_Dijkstra);

void BM_DsaQuery_SemiNaive(benchmark::State& state) {
  auto tg = MakeGraph();
  CenterBasedOptions copts;
  copts.num_fragments = 4;
  copts.distributed_centers = true;
  Fragmentation frag = CenterBasedFragmentation(tg.graph, copts);
  DsaOptions dopts;
  dopts.engine = LocalEngine::kSemiNaive;
  DsaDatabase db(&frag, dopts);
  Rng rng(1);
  for (auto _ : state) {
    const NodeId s = static_cast<NodeId>(rng.NextBounded(tg.graph.NumNodes()));
    const NodeId t = static_cast<NodeId>(rng.NextBounded(tg.graph.NumNodes()));
    benchmark::DoNotOptimize(db.ShortestPath(s, t));
  }
}
BENCHMARK(BM_DsaQuery_SemiNaive)->Unit(benchmark::kMillisecond);

void BM_PheQuery(benchmark::State& state) {
  auto tg = MakeGraph();
  BondEnergyOptions bopts;
  bopts.num_fragments = 4;
  Fragmentation frag = BondEnergyFragmentation(tg.graph, bopts);
  PheDatabase phe(&frag);
  Rng rng(1);
  for (auto _ : state) {
    const NodeId s = static_cast<NodeId>(rng.NextBounded(tg.graph.NumNodes()));
    const NodeId t = static_cast<NodeId>(rng.NextBounded(tg.graph.NumNodes()));
    benchmark::DoNotOptimize(phe.ShortestPath(s, t));
  }
}
BENCHMARK(BM_PheQuery);

void BM_PrecomputeComplementary(benchmark::State& state) {
  auto tg = MakeGraph();
  LinearOptions lopts;
  lopts.num_fragments = static_cast<size_t>(state.range(0));
  Fragmentation frag = LinearFragmentation(tg.graph, lopts).fragmentation;
  for (auto _ : state) {
    benchmark::DoNotOptimize(PrecomputeComplementary(frag));
  }
}
BENCHMARK(BM_PrecomputeComplementary)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_WholeGraphDijkstraBaseline(benchmark::State& state) {
  auto tg = MakeGraph();
  Rng rng(1);
  for (auto _ : state) {
    const NodeId s = static_cast<NodeId>(rng.NextBounded(tg.graph.NumNodes()));
    benchmark::DoNotOptimize(Dijkstra(tg.graph, s));
  }
}
BENCHMARK(BM_WholeGraphDijkstraBaseline);

}  // namespace
}  // namespace tcf

BENCHMARK_MAIN();
