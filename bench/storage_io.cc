// Save/open cost of the paged database format (storage/database_io.h) —
// the "open, don't rebuild" promise of ROADMAP item 4 made measurable. On
// a transportation graph of few large clusters (default 8 x 300):
//
//   1. rebuild  — fragment the graph and build a DsaDatabase from scratch
//                 (the full complementary precompute every restart pays
//                 without storage);
//   2. save     — serialize it to a paged, checksummed file;
//   3. open     — reopen through the buffer-pool path and through the mmap
//                 fast path, full checksum verification on;
//   4. equality — a randomized query sweep must answer identically on the
//                 fresh and both reopened databases (exit 1 on mismatch);
//   5. serve    — query throughput on the mmap-reopened database, the
//                 gated "did reopening cost us anything at serve time"
//                 series;
//   6. paged    — reopen with OpenMode::kPaged and a buffer pool capped at
//                 a quarter of the file, answer the same sweep (exact
//                 equality, gated by --gate-paged-correct), and measure
//                 query throughput through pinned pages vs resident
//                 (paged_query_qps, pool_hit_rate, peak pinned pages).
//
// `storage_io [clusters [nodes-per-cluster]]` scales the graph; `--json
// <path>` writes the perf-gate metrics (gated keys: reopen_query_qps and
// paged_query_qps — any *_qps key is rolling-median gated;
// save/open/rebuild wall times and the open-vs-rebuild speedup ride along
// ungated); `--db <path>` places the database file (kept afterwards)
// instead of a scratch file (deleted); `--gate-open-speedup` exits 1
// unless mmap open beats rebuild by >= 5x — the acceptance bar CI
// enforces; `--gate-paged-correct` exits 1 if the capped-pool paged
// database answers the sweep any differently from the fresh build.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "fragment/node_partition.h"
#include "storage/database_io.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace tcf;
using namespace tcf::bench;

namespace {

constexpr double kRequiredSpeedup = 5.0;

struct OpenTiming {
  double seconds = 0.0;
  StoredDatabase stored;
};

OpenTiming TimedOpen(const std::string& path, bool use_mmap) {
  OpenOptions options;
  options.use_mmap = use_mmap;
  WallTimer timer;
  Result<StoredDatabase> opened = OpenDatabase(path, options);
  if (!opened.ok()) {
    std::fprintf(stderr, "storage_io: open %s (%s): %s\n", path.c_str(),
                 use_mmap ? "mmap" : "pool",
                 opened.status().ToString().c_str());
    std::exit(1);
  }
  return OpenTiming{timer.ElapsedSeconds(), std::move(opened).value()};
}

/// Random query pairs, fixed seed — the same sweep every run.
std::vector<std::pair<NodeId, NodeId>> SweepPairs(size_t num_nodes,
                                                  size_t count) {
  Rng rng(4243);
  std::vector<std::pair<NodeId, NodeId>> pairs;
  pairs.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    pairs.emplace_back(static_cast<NodeId>(rng.NextBounded(num_nodes)),
                       static_cast<NodeId>(rng.NextBounded(num_nodes)));
  }
  return pairs;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = ConsumeJsonFlag(&argc, argv);
  bool gate_open_speedup = false;
  bool gate_paged_correct = false;
  std::string db_path;
  for (int i = 1; i < argc;) {
    const std::string arg = argv[i];
    if (arg == "--gate-open-speedup") {
      gate_open_speedup = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
    } else if (arg == "--gate-paged-correct") {
      gate_paged_correct = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
    } else if (arg == "--db" && i + 1 < argc) {
      db_path = argv[i + 1];
      for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
      argc -= 2;
    } else {
      ++i;
    }
  }
  // Default shape: few, LARGE clusters. The open-vs-rebuild ratio is the
  // point of the bench, and it scales with per-fragment edge count over
  // border count — rebuild pays a Dijkstra per border node over the whole
  // fragment, while open pays decode per border-pair tuple. Many small
  // clusters measures the opposite regime (decode-bound) and takes far
  // longer for a weaker signal.
  const size_t clusters =
      argc > 1 ? static_cast<size_t>(std::strtoull(argv[1], nullptr, 10))
               : 8;
  const size_t nodes_per_cluster =
      argc > 2 ? static_cast<size_t>(std::strtoull(argv[2], nullptr, 10))
               : 300;
  const bool keep_file = !db_path.empty();
  if (db_path.empty()) db_path = "bench_storage_io.tcfdb";
  JsonMetrics metrics("storage_io");

  Rng rng(7);
  TransportationGraphOptions gen;
  gen.num_clusters = clusters;
  gen.nodes_per_cluster = nodes_per_cluster;
  gen.target_edges_per_cluster = 4.0 * nodes_per_cluster;
  // A well-connected ring (8 undirected edges per link instead of the
  // default 2): more border nodes per disconnection set, so the rebuild
  // pays realistically many complementary searches while the file stays
  // small — the regime where reopening instead of rebuilding matters.
  for (size_t c = 0; c < clusters; ++c) {
    gen.links.push_back(InterClusterLink{c, (c + 1) % clusters, 8});
  }
  TransportationGraph t = GenerateTransportationGraph(gen, &rng);
  std::printf("graph: %zu nodes, %zu edges (%zu clusters x %zu)\n",
              t.graph.NumNodes(), t.graph.NumEdges(), clusters,
              nodes_per_cluster);

  // 1. rebuild: what every restart costs without the storage layer. The
  // fragmentation follows the generator's natural clusters (the paper's
  // "countries of a railway network"), so the disconnection sets are the
  // sparse inter-cluster links — the regime DSA is designed for.
  WallTimer rebuild_timer;
  const Fragmentation frag = FragmentationFromNodePartition(
      t.graph, t.cluster_of_node, clusters);
  const DsaDatabase fresh(&frag);
  const double rebuild_s = rebuild_timer.ElapsedSeconds();
  std::printf(
      "rebuild: %.1f ms (%zu fragments, %zu complementary tuples, %zu "
      "searches)\n",
      rebuild_s * 1e3, frag.NumFragments(),
      fresh.complementary().total_tuples, fresh.complementary().searches);

  // 2. save.
  WallTimer save_timer;
  const Status saved = SaveDatabase(fresh, db_path);
  if (!saved.ok()) {
    std::fprintf(stderr, "storage_io: save: %s\n", saved.ToString().c_str());
    return 1;
  }
  const double save_s = save_timer.ElapsedSeconds();
  std::FILE* f = std::fopen(db_path.c_str(), "rb");
  double file_mb = 0.0;
  if (f != nullptr) {
    std::fseek(f, 0, SEEK_END);
    file_mb = static_cast<double>(std::ftell(f)) / (1024.0 * 1024.0);
    std::fclose(f);
  }
  std::printf("save:    %.1f ms (%.2f MiB)\n", save_s * 1e3, file_mb);

  // 3. open, both paths (checksum verification on — the default contract).
  OpenTiming pool_open = TimedOpen(db_path, /*use_mmap=*/false);
  std::printf("open:    %.1f ms (buffer pool)\n", pool_open.seconds * 1e3);
  OpenTiming mmap_open = TimedOpen(db_path, /*use_mmap=*/true);
  const double speedup =
      mmap_open.seconds > 0.0 ? rebuild_s / mmap_open.seconds : 0.0;
  std::printf("open:    %.1f ms (mmap) — %.1fx faster than rebuild\n",
              mmap_open.seconds * 1e3, speedup);

  // 4. answer equality: fresh == pool-opened == mmap-opened on a random
  // sweep. Identical inputs (same graph, same complementary tuples) must
  // give identical costs.
  const auto pairs = SweepPairs(t.graph.NumNodes(), 150);
  size_t mismatches = 0;
  for (const auto& [from, to] : pairs) {
    const double want = fresh.ShortestPath(from, to).cost;
    const double got_pool = pool_open.stored.db->ShortestPath(from, to).cost;
    const double got_mmap = mmap_open.stored.db->ShortestPath(from, to).cost;
    if (want != got_pool || want != got_mmap) {
      if (++mismatches <= 5) {
        std::fprintf(stderr,
                     "storage_io: MISMATCH %u -> %u: fresh %.17g, pool "
                     "%.17g, mmap %.17g\n",
                     from, to, want, got_pool, got_mmap);
      }
    }
  }
  if (mismatches > 0) {
    std::fprintf(stderr,
                 "storage_io: %zu of %zu sweep answers differ after reopen\n",
                 mismatches, pairs.size());
    return 1;
  }
  std::printf("equality: %zu random answers identical after reopen\n",
              pairs.size());

  // 5. serve from the reopened database (the gated series).
  const auto serve_pairs = SweepPairs(t.graph.NumNodes(), 400);
  WallTimer serve_timer;
  double checksum = 0.0;
  for (const auto& [from, to] : serve_pairs) {
    const double cost = mmap_open.stored.db->ShortestPath(from, to).cost;
    if (cost < kInfinity) checksum += cost;
  }
  const double serve_s = serve_timer.ElapsedSeconds();
  const double qps = serve_pairs.size() / serve_s;
  std::printf("serve:   %.0f qps on the reopened database (checksum %.3f)\n",
              qps, checksum);

  // 6. the paged cell: reopen with relations left on disk and the pool
  // capped at a quarter of the file, so queries genuinely stream through
  // pinned pages. Correctness first (the same sweep, exact equality),
  // then throughput against the resident serve above.
  OpenOptions paged_options;
  paged_options.mode = OpenMode::kPaged;
  paged_options.memory_budget_bytes = static_cast<size_t>(
      file_mb * 1024.0 * 1024.0 / 4.0);
  WallTimer paged_open_timer;
  Result<StoredDatabase> paged_opened = OpenDatabase(db_path, paged_options);
  if (!paged_opened.ok()) {
    std::fprintf(stderr, "storage_io: paged open: %s\n",
                 paged_opened.status().ToString().c_str());
    return 1;
  }
  const double paged_open_s = paged_open_timer.ElapsedSeconds();
  const StoredDatabase& paged = paged_opened.value();
  std::printf("open:    %.1f ms (paged, %zu pool frames of %zu bytes)\n",
              paged_open_s * 1e3, paged.paged_file->pool().num_frames(),
              paged.paged_file->page_size());

  size_t paged_mismatches = 0;
  for (const auto& [from, to] : pairs) {
    const double want = fresh.ShortestPath(from, to).cost;
    const double got = paged.db->ShortestPath(from, to).cost;
    if (want != got) {
      if (++paged_mismatches <= 5) {
        std::fprintf(stderr,
                     "storage_io: PAGED MISMATCH %u -> %u: fresh %.17g, "
                     "paged %.17g\n",
                     from, to, want, got);
      }
    }
  }
  std::printf("equality: %zu random answers %s on the capped-pool paged "
              "database\n",
              pairs.size(),
              paged_mismatches == 0 ? "identical" : "DIFFER");

  WallTimer paged_serve_timer;
  double paged_checksum = 0.0;
  for (const auto& [from, to] : serve_pairs) {
    const double cost = paged.db->ShortestPath(from, to).cost;
    if (cost < kInfinity) paged_checksum += cost;
  }
  const double paged_serve_s = paged_serve_timer.ElapsedSeconds();
  const double paged_qps = serve_pairs.size() / paged_serve_s;
  const BufferPoolStats pool_stats = paged.paged_file->stats();
  const double paged_factor = paged_qps > 0.0 ? qps / paged_qps : 0.0;
  std::printf(
      "serve:   %.0f qps paged (checksum %.3f) — %.2fx slower than "
      "resident; pool %.1f%% hit rate, peak %llu pinned pages\n",
      paged_qps, paged_checksum, paged_factor, 100.0 * pool_stats.HitRate(),
      static_cast<unsigned long long>(pool_stats.peak_pinned_frames));

  metrics.Set("rebuild_ms", rebuild_s * 1e3);
  metrics.Set("save_ms", save_s * 1e3);
  metrics.Set("open_ms", pool_open.seconds * 1e3);
  metrics.Set("mmap_open_ms", mmap_open.seconds * 1e3);
  metrics.Set("paged_open_ms", paged_open_s * 1e3);
  metrics.Set("file_mb", file_mb);
  metrics.Set("mmap_speedup_vs_rebuild", speedup);
  metrics.Set("reopen_query_qps", qps);
  metrics.Set("paged_query_qps", paged_qps);
  metrics.Set("paged_vs_resident_factor", paged_factor);
  metrics.Set("pool_hit_rate", pool_stats.HitRate());
  metrics.Set("peak_pinned_pages",
              static_cast<double>(pool_stats.peak_pinned_frames));

  if (!keep_file) std::remove(db_path.c_str());
  if (!json_path.empty() && !metrics.WriteFile(json_path)) return 1;

  if (gate_open_speedup && speedup < kRequiredSpeedup) {
    std::fprintf(stderr,
                 "storage_io: GATE FAILED: mmap open is only %.1fx faster "
                 "than rebuild (bar: %.0fx)\n",
                 speedup, kRequiredSpeedup);
    return 1;
  }
  if (gate_paged_correct && paged_mismatches > 0) {
    std::fprintf(stderr,
                 "storage_io: GATE FAILED: %zu of %zu sweep answers differ "
                 "on the capped-pool paged database\n",
                 paged_mismatches, pairs.size());
    return 1;
  }
  return 0;
}
