// Ablation: the cost of updates (Sec. 2.1: "The disadvantage of the
// disconnection set approach is mainly due to the pre-processing required
// for building the complementary information and to the careful treatment
// of updates. As long as updates are not too frequent, the pre-processing
// costs may be amortized over many queries.")
//
// We apply a mixed update workload to a maintained database under each
// fragmentation algorithm and report the maintenance events and their
// wall-clock price, next to the per-query time they buy — making the
// "updates not too frequent" break-even explicit.
#include <cstdio>

#include "bench_util.h"
#include "dsa/maintenance.h"
#include "util/timer.h"

using namespace tcf;
using namespace tcf::bench;

int main() {
  constexpr int kUpdates = 30;
  constexpr int kQueries = 200;
  std::printf("== Ablation: update maintenance cost (Sec. 2.1) ==\n");
  std::printf("workload: table-1 transportation graph, %d mixed updates "
              "(insert/delete/reweight),\nthen %d shortest-path queries\n\n",
              kUpdates, kQueries);

  TablePrinter table({"Algorithm", "structural rebuilds", "compl. refreshes",
                      "update total (ms)", "ms/update", "us/query",
                      "break-even (queries/update)"});
  for (Algo algo : {Algo::kCenter, Algo::kDistributedCenters,
                    Algo::kBondEnergy, Algo::kLinear}) {
    Rng rng(41);
    auto tg = GenerateTransportationGraph(Table1Options(), &rng);
    Fragmentation frag = RunAlgo(tg.graph, algo, 4, 1);
    MaintainedDatabase mdb = MaintainedDatabase::FromFragmentation(frag);

    Rng workload(5);
    WallTimer update_timer;
    for (int i = 0; i < kUpdates; ++i) {
      const NodeId a =
          static_cast<NodeId>(workload.NextBounded(mdb.graph().NumNodes()));
      const NodeId b =
          static_cast<NodeId>(workload.NextBounded(mdb.graph().NumNodes()));
      if (a == b) continue;
      switch (workload.NextBounded(3)) {
        case 0: mdb.InsertEdge(a, b, workload.NextDouble(0.1, 1.5)); break;
        case 1: mdb.DeleteEdge(a, b); break;
        default: mdb.ReweightEdge(a, b, workload.NextDouble(0.1, 1.5)); break;
      }
    }
    const double update_ms = update_timer.ElapsedMillis();

    WallTimer query_timer;
    Rng qrng(9);
    for (int q = 0; q < kQueries; ++q) {
      const NodeId s =
          static_cast<NodeId>(qrng.NextBounded(mdb.graph().NumNodes()));
      const NodeId t =
          static_cast<NodeId>(qrng.NextBounded(mdb.graph().NumNodes()));
      mdb.db().ShortestPath(s, t);
    }
    const double query_us = query_timer.ElapsedMillis() * 1000.0 / kQueries;
    const double per_update_ms = update_ms / kUpdates;
    table.AddRow({AlgoName(algo), std::to_string(mdb.structural_rebuilds()),
                  std::to_string(mdb.complementary_refreshes()),
                  TablePrinter::Fmt(update_ms, 1),
                  TablePrinter::Fmt(per_update_ms, 2),
                  TablePrinter::Fmt(query_us, 1),
                  TablePrinter::Fmt(per_update_ms * 1000.0 /
                                        std::max(1.0, query_us), 0)});
  }
  table.Print();
  std::printf("\nreading: every weight-affecting update forces a "
              "complementary refresh (global\nborder-to-border paths may "
              "change), so maintaining the DSA pays off when a\nfragment "
              "serves at least 'break-even' queries per update — the "
              "paper's\n\"as long as updates are not too frequent\" made "
              "quantitative.\n");
  return 0;
}
