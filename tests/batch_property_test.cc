// Randomized differential sweep for the parallel batch planner: over
// seeded random graphs × every fragmenter × every local engine × batch
// sizes {1, 7, 256} × coordinator thread counts {1, 2, 8}, the
// parallel-planned BatchExecutor must be element-wise identical to a
// sequential single-query loop, agree with the warshall.h dense oracle on
// connectivity, and report scheduling-independent dedup statistics (same
// counts at every thread count — parallel planning may only change the
// spec numbering, never what is planned or shared).
#include <gtest/gtest.h>

#include <optional>
#include <set>

#include "dsa/batch.h"
#include "relational/relation.h"
#include "dsa/workload.h"
#include "dsa_sweep.h"
#include "relational/warshall.h"

namespace tcf {
namespace {

using dsa_sweep::Fragmenter;

struct PropertyParam {
  uint64_t seed;
  Fragmenter fragmenter;
  LocalEngine engine;
  /// The sequential reference loop re-executes every subquery per query,
  /// so only every seq_stride-th query is cross-checked against it (the
  /// Warshall oracle and the thread-count reference still check all).
  size_t seq_stride;
};

constexpr size_t kBatchSizes[] = {1, 7, 256};
constexpr size_t kThreadCounts[] = {1, 2, 8};

/// A deterministic mixed workload: uniform + hot-pair endpoints, the three
/// query kinds interleaved, and (when it fits) one self query to exercise
/// the trivial path.
std::vector<Query> MakeWorkload(const Fragmentation& frag, size_t batch_size,
                                uint64_t seed) {
  std::vector<Query> queries;
  Rng rng(seed);
  WorkloadSpec uniform;
  uniform.mix = WorkloadMix::kUniform;
  uniform.num_queries = (batch_size + 1) / 2;
  queries = GenerateWorkload(frag, uniform, &rng);
  WorkloadSpec hot;
  hot.mix = WorkloadMix::kHotPair;
  hot.num_queries = batch_size - queries.size();
  std::vector<Query> part = GenerateWorkload(frag, hot, &rng);
  queries.insert(queries.end(), part.begin(), part.end());

  constexpr QueryKind kKinds[] = {QueryKind::kCost, QueryKind::kRoute,
                                  QueryKind::kReachability};
  for (size_t i = 0; i < queries.size(); ++i) {
    queries[i].kind = kKinds[i % 3];
  }
  if (batch_size >= 7) {
    const NodeId node =
        static_cast<NodeId>(rng.NextBounded(frag.graph().NumNodes()));
    queries[3] = Query{node, node, QueryKind::kRoute};
  }
  return queries;
}

class BatchPropertySweep : public ::testing::TestWithParam<PropertyParam> {};

TEST_P(BatchPropertySweep, ParallelBatchMatchesSequentialAndOracle) {
  const PropertyParam p = GetParam();
  auto t = dsa_sweep::MakeTransport(p.seed, /*clusters=*/3, /*nodes=*/8);
  const Graph& g = t.graph;
  Fragmentation frag =
      dsa_sweep::MakeFragmentation(g, p.fragmenter, p.seed);
  const ReachabilityMatrix reach = WarshallClosure(g);

  for (size_t batch_size : kBatchSizes) {
    const std::vector<Query> queries =
        MakeWorkload(frag, batch_size, p.seed * 1021 + batch_size);
    ASSERT_EQ(queries.size(), batch_size);

    // The same workload at every thread count; the first run is the
    // reference the others must match element-wise.
    std::optional<BatchResult> reference;
    for (size_t threads : kThreadCounts) {
      SCOPED_TRACE(::testing::Message()
                   << "batch_size=" << batch_size << " threads=" << threads);
      DsaOptions opts;
      opts.engine = p.engine;
      opts.num_threads = threads;
      DsaDatabase db(&frag, opts);
      BatchExecutor executor(&db);
      const BatchResult result = executor.Execute(queries);
      ASSERT_EQ(result.answers.size(), queries.size());

      for (size_t i = 0; i < queries.size(); ++i) {
        const Query& q = queries[i];
        const RouteAnswer& got = result.answers[i];

        // The dense oracle closes paths of length >= 1; from == to is
        // connected by the empty path in the query semantics.
        const bool oracle_connected =
            q.from == q.to || reach.Get(q.from, q.to);
        EXPECT_EQ(got.answer.connected, oracle_connected)
            << "query " << i << ": " << q.from << " -> " << q.to;

        if (i % p.seq_stride == 0) {
          switch (q.kind) {
            case QueryKind::kCost:
            case QueryKind::kReachability: {
              const QueryAnswer seq = db.ShortestPath(q.from, q.to);
              EXPECT_EQ(got.answer.cost, seq.cost) << "query " << i;
              EXPECT_EQ(got.answer.connected, seq.connected) << "query " << i;
              EXPECT_EQ(got.answer.fragments_involved,
                        seq.fragments_involved)
                  << "query " << i;
              break;
            }
            case QueryKind::kRoute: {
              const RouteAnswer seq = db.ShortestRoute(q.from, q.to);
              EXPECT_EQ(got.answer.cost, seq.answer.cost) << "query " << i;
              EXPECT_EQ(got.route, seq.route) << "query " << i;
              break;
            }
          }
        }
      }

      // Accounting consistency, independent of scheduling.
      const BatchStats& s = result.stats;
      EXPECT_EQ(s.num_queries, batch_size);
      EXPECT_LE(s.subqueries_executed, s.subqueries_requested);
      EXPECT_EQ(s.plan_memo_hits + s.plan_memo_misses,
                [&] {
                  size_t nontrivial = 0;
                  for (const Query& q : queries) {
                    nontrivial += q.from != q.to;
                  }
                  return nontrivial;
                }());
      // Every distinct ordered pair consults the cross-batch interned-plan
      // cache exactly once per batch. The cache aliases UNORDERED pairs
      // onto one entry, so even this fresh database can score first-batch
      // hits when the workload holds both orientations of a pair: the
      // first orientation builds the entry, the reverse one hits it.
      // Each unordered pair's first consult can only miss.
      EXPECT_EQ(s.interned_plan_hits + s.interned_plan_misses,
                s.plan_memo_misses);
      std::set<uint64_t> unordered_pairs;
      for (const Query& q : queries) {
        if (q.from != q.to) {
          unordered_pairs.insert(PairKey(std::min(q.from, q.to),
                                         std::max(q.from, q.to)));
        }
      }
      EXPECT_GE(s.interned_plan_misses, unordered_pairs.size());

      if (!reference.has_value()) {
        reference = result;
        continue;
      }
      // Parallel planning must be answer- and stats-preserving: identical
      // answers and identical dedup counts at every thread count.
      for (size_t i = 0; i < queries.size(); ++i) {
        const RouteAnswer& got = result.answers[i];
        const RouteAnswer& ref = reference->answers[i];
        EXPECT_EQ(got.answer.connected, ref.answer.connected) << "query " << i;
        EXPECT_EQ(got.answer.cost, ref.answer.cost) << "query " << i;
        EXPECT_EQ(got.answer.chains_considered, ref.answer.chains_considered)
            << "query " << i;
        EXPECT_EQ(got.answer.fragments_involved,
                  ref.answer.fragments_involved)
            << "query " << i;
        EXPECT_EQ(got.route, ref.route) << "query " << i;
      }
      EXPECT_EQ(s.subqueries_requested, reference->stats.subqueries_requested);
      EXPECT_EQ(s.subqueries_executed, reference->stats.subqueries_executed);
      EXPECT_EQ(s.plan_memo_hits, reference->stats.plan_memo_hits);
      EXPECT_EQ(s.plan_memo_misses, reference->stats.plan_memo_misses);
      // interned_plan_misses is deliberately NOT compared across thread
      // counts: with unordered-pair aliasing, whether the reverse
      // orientation of a pair hits depends on whether the forward build
      // published first — a benign scheduling race under parallel
      // planning (the hits+misses total is pinned above).
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BatchPropertySweep,
    ::testing::Values(
        PropertyParam{31, Fragmenter::kCenter, LocalEngine::kDijkstra, 3},
        PropertyParam{32, Fragmenter::kCenter, LocalEngine::kSemiNaive, 19},
        PropertyParam{33, Fragmenter::kCenter, LocalEngine::kSmart, 23},
        PropertyParam{34, Fragmenter::kCenterDistributed,
                      LocalEngine::kDijkstra, 3},
        PropertyParam{35, Fragmenter::kCenterDistributed,
                      LocalEngine::kSemiNaive, 19},
        PropertyParam{36, Fragmenter::kCenterDistributed, LocalEngine::kSmart,
                      23},
        PropertyParam{37, Fragmenter::kBondEnergy, LocalEngine::kDijkstra, 3},
        PropertyParam{38, Fragmenter::kBondEnergy, LocalEngine::kSemiNaive,
                      19},
        PropertyParam{39, Fragmenter::kBondEnergy, LocalEngine::kSmart, 23},
        PropertyParam{40, Fragmenter::kLinear, LocalEngine::kDijkstra, 3},
        PropertyParam{41, Fragmenter::kLinear, LocalEngine::kSemiNaive, 19},
        PropertyParam{42, Fragmenter::kLinear, LocalEngine::kSmart, 23},
        PropertyParam{43, Fragmenter::kRandom, LocalEngine::kDijkstra, 3},
        PropertyParam{44, Fragmenter::kRandom, LocalEngine::kSemiNaive, 19},
        PropertyParam{45, Fragmenter::kRandom, LocalEngine::kSmart, 23}));

}  // namespace
}  // namespace tcf
