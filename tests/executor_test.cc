// Unit tests for the executor layer: RunSites (parallel and sequential),
// AssembleChain, and the ExecutionReport accounting.
#include <gtest/gtest.h>

#include "dsa/executor.h"
#include "graph/builder.h"

namespace tcf {
namespace {

/// Two-fragment chain 0-1-2 | 2-3-4 (unit weights).
struct Fixture {
  Fixture() {
    GraphBuilder b(5);
    b.AddSymmetricEdge(0, 1, 1.0);
    b.AddSymmetricEdge(1, 2, 1.0);
    b.AddSymmetricEdge(2, 3, 1.0);
    b.AddSymmetricEdge(3, 4, 1.0);
    graph = b.Build();
    frag = std::make_unique<Fragmentation>(
        &graph, std::vector<FragmentId>{0, 0, 0, 0, 1, 1, 1, 1}, 2);
    comp = PrecomputeComplementary(*frag);
  }
  Graph graph;
  std::unique_ptr<Fragmentation> frag;
  ComplementaryInfo comp;
};

std::vector<LocalQuerySpec> Specs() {
  return {LocalQuerySpec{0, {0}, {2}}, LocalQuerySpec{1, {2}, {4}}};
}

TEST(RunSites, SequentialWhenPoolIsNull) {
  Fixture fx;
  ExecutionReport report;
  auto results = RunSites(*fx.frag, &fx.comp, Specs(),
                          LocalEngine::kDijkstra, nullptr, &report);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_DOUBLE_EQ(results[0].paths.BestCost(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(results[1].paths.BestCost(2, 4), 2.0);
  EXPECT_EQ(report.sites.size(), 2u);
  EXPECT_EQ(report.communication_tuples, 2u);
}

TEST(RunSites, ParallelMatchesSequential) {
  Fixture fx;
  ThreadPool pool(2);
  ExecutionReport seq_report, par_report;
  auto seq = RunSites(*fx.frag, &fx.comp, Specs(), LocalEngine::kDijkstra,
                      nullptr, &seq_report);
  auto par = RunSites(*fx.frag, &fx.comp, Specs(), LocalEngine::kDijkstra,
                      &pool, &par_report);
  ASSERT_EQ(seq.size(), par.size());
  for (size_t i = 0; i < seq.size(); ++i) {
    ASSERT_EQ(seq[i].paths.size(), par[i].paths.size());
    for (const PathTuple& t : seq[i].paths.tuples()) {
      EXPECT_DOUBLE_EQ(par[i].paths.BestCost(t.src, t.dst), t.cost);
    }
  }
  EXPECT_EQ(par_report.communication_tuples,
            seq_report.communication_tuples);
}

TEST(RunSites, ReportAggregatesSiteTimes) {
  Fixture fx;
  ExecutionReport report;
  RunSites(*fx.frag, &fx.comp, Specs(), LocalEngine::kSemiNaive, nullptr,
           &report);
  EXPECT_GE(report.phase1_cpu_seconds, report.SlowestSiteSeconds());
  EXPECT_DOUBLE_EQ(report.TotalSiteSeconds(), report.phase1_cpu_seconds);
  for (const SiteReport& s : report.sites) {
    EXPECT_GT(s.stats.iterations, 0u);
  }
}

TEST(AssembleChain, FoldsMinPlusJoins) {
  Relation r1, r2, r3;
  r1.Add(0, 2, 2.0);
  r2.Add(2, 4, 2.0);
  r2.Add(2, 5, 9.0);
  r3.Add(4, 6, 1.0);
  r3.Add(5, 6, 1.0);
  ExecutionReport report;
  Relation out = AssembleChain({&r1, &r2, &r3}, &report);
  EXPECT_DOUBLE_EQ(out.BestCost(0, 6), 5.0);
  EXPECT_GT(report.assembly_join_tuples, 0u);
  EXPECT_GE(report.assembly_seconds, 0.0);
}

TEST(AssembleChain, SingleHopIsIdentity) {
  Relation r;
  r.Add(1, 2, 3.0);
  Relation out = AssembleChain({&r}, nullptr);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out.BestCost(1, 2), 3.0);
}

TEST(AssembleChain, EmptyHopYieldsEmpty) {
  Relation r1, empty;
  r1.Add(0, 2, 2.0);
  Relation out = AssembleChain({&r1, &empty}, nullptr);
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace tcf
