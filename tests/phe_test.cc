// Tests for Parallel Hierarchical Evaluation (Sec. 5 / [12]): backbone
// construction and answer equality with both the chain-based DsaDatabase
// and the whole-graph oracle — especially on fragmentations whose
// fragmentation graph has cycles, the case PHE exists for.
#include <gtest/gtest.h>

#include <memory>

#include "dsa/phe.h"
#include "dsa/query_api.h"
#include "fragment/bond_energy.h"
#include "fragment/center_based.h"
#include "fragment/random_partition.h"
#include "graph/algorithms.h"
#include "graph/builder.h"
#include "graph/generator.h"

namespace tcf {
namespace {

TransportationGraph MakeTransport(uint64_t seed) {
  TransportationGraphOptions opts;
  opts.num_clusters = 4;
  opts.nodes_per_cluster = 15;
  opts.target_edges_per_cluster = 60;
  Rng rng(seed);
  return GenerateTransportationGraph(opts, &rng);
}

TEST(Phe, BackboneContainsOnlyBorderEdges) {
  auto t = MakeTransport(1);
  CenterBasedOptions copts;
  copts.num_fragments = 4;
  copts.distributed_centers = true;
  Fragmentation frag = CenterBasedFragmentation(t.graph, copts);
  PheDatabase phe(&frag);
  for (const Edge& e : phe.backbone().edges()) {
    EXPECT_TRUE(frag.IsBorderNode(e.src));
    EXPECT_TRUE(frag.IsBorderNode(e.dst));
  }
}

TEST(Phe, BackboneDistancesAreGlobal) {
  auto t = MakeTransport(2);
  CenterBasedOptions copts;
  copts.num_fragments = 4;
  copts.distributed_centers = true;
  Fragmentation frag = CenterBasedFragmentation(t.graph, copts);
  PheDatabase phe(&frag);
  // Every backbone shortest distance equals the global one.
  for (NodeId v = 0; v < t.graph.NumNodes(); ++v) {
    if (!frag.IsBorderNode(v)) continue;
    auto on_backbone = Dijkstra(phe.backbone(), v);
    auto global = Dijkstra(t.graph, v);
    for (NodeId w = 0; w < t.graph.NumNodes(); ++w) {
      if (!frag.IsBorderNode(w) || w == v) continue;
      EXPECT_DOUBLE_EQ(on_backbone.distance[w], global.distance[w])
          << v << "->" << w;
    }
  }
}

TEST(Phe, SameFragmentQuery) {
  auto t = MakeTransport(3);
  CenterBasedOptions copts;
  copts.num_fragments = 4;
  Fragmentation frag = CenterBasedFragmentation(t.graph, copts);
  PheDatabase phe(&frag);
  auto oracle = Dijkstra(t.graph, 0);
  auto answer = phe.ShortestPath(0, 5);  // same cluster, likely same frag
  EXPECT_NEAR(answer.cost, oracle.distance[5], 1e-9);
}

TEST(Phe, SelfQuery) {
  auto t = MakeTransport(4);
  CenterBasedOptions copts;
  copts.num_fragments = 4;
  Fragmentation frag = CenterBasedFragmentation(t.graph, copts);
  PheDatabase phe(&frag);
  auto answer = phe.ShortestPath(7, 7);
  EXPECT_TRUE(answer.connected);
  EXPECT_DOUBLE_EQ(answer.cost, 0.0);
}

TEST(Phe, DisconnectedPair) {
  GraphBuilder b(4);
  b.AddSymmetricEdge(0, 1);
  b.AddSymmetricEdge(2, 3);
  Graph g = b.Build();
  Fragmentation f(&g, {0, 0, 1, 1}, 2);
  PheDatabase phe(&f);
  EXPECT_FALSE(phe.ShortestPath(0, 3).connected);
}

TEST(Phe, ConstantSiteCountRegardlessOfChains) {
  // On a cyclic fragmentation graph the chain evaluator fans out; PHE
  // always runs <= 3 subqueries.
  auto t = MakeTransport(5);
  Rng rng(55);
  Fragmentation frag = RandomFragmentation(t.graph, 5, &rng);
  ASSERT_FALSE(frag.IsLooselyConnected());
  PheDatabase phe(&frag);
  ExecutionReport report;
  phe.ShortestPath(0, static_cast<NodeId>(t.graph.NumNodes() - 1), &report);
  EXPECT_LE(report.sites.size(), 3u);
}

struct PheParam {
  uint64_t seed;
  bool random_fragmentation;  // true -> cyclic fragmentation graphs
};

class PheOracleSweep : public ::testing::TestWithParam<PheParam> {};

TEST_P(PheOracleSweep, MatchesOracleAndChainDsa) {
  const PheParam p = GetParam();
  auto t = MakeTransport(p.seed);
  std::unique_ptr<Fragmentation> frag;
  if (p.random_fragmentation) {
    Rng rng(p.seed * 131);
    frag = std::make_unique<Fragmentation>(
        RandomFragmentation(t.graph, 4, &rng));
  } else {
    BondEnergyOptions opts;
    opts.num_fragments = 4;
    frag = std::make_unique<Fragmentation>(
        BondEnergyFragmentation(t.graph, opts));
  }
  PheDatabase phe(frag.get());
  DsaDatabase dsa(frag.get());

  Rng rng(p.seed);
  for (int i = 0; i < 15; ++i) {
    const NodeId s = static_cast<NodeId>(rng.NextBounded(t.graph.NumNodes()));
    const NodeId u = static_cast<NodeId>(rng.NextBounded(t.graph.NumNodes()));
    const Weight oracle = s == u ? 0.0 : Dijkstra(t.graph, s).distance[u];
    const auto phe_answer = phe.ShortestPath(s, u);
    const auto dsa_answer = dsa.ShortestPath(s, u);
    if (oracle == kInfinity) {
      EXPECT_FALSE(phe_answer.connected);
      EXPECT_FALSE(dsa_answer.connected);
    } else {
      EXPECT_NEAR(phe_answer.cost, oracle, 1e-9) << s << "->" << u;
      EXPECT_NEAR(dsa_answer.cost, oracle, 1e-9) << s << "->" << u;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PheOracleSweep,
    ::testing::Values(PheParam{1, false}, PheParam{2, false},
                      PheParam{3, false}, PheParam{4, true},
                      PheParam{5, true}, PheParam{6, true},
                      PheParam{7, true}, PheParam{8, false}));

}  // namespace
}  // namespace tcf
