// Spill-aware relations, from both ends of the seam:
//
//   - TupleStore/cursor unit behavior (blocks cover every tuple exactly
//     once; copies of a paged Relation share the immutable store and
//     mutation is copy-on-write).
//   - The headline invariant: a database opened with OpenMode::kPaged and
//     a buffer pool capped BELOW HALF of its total relation bytes answers
//     a randomized sweep identically to the freshly built database and the
//     whole-graph Dijkstra oracle, across fragmenters and engines.
//   - Epoch copy-on-write: an update rebuilds dirty fragments into
//     resident memory while clean fragments keep reading their immutable
//     paged extents.
//   - Concurrency: many threads scanning through a two-frame pool (the
//     pin-exhaustion bypass path) and cold concurrent BestCost lookups
//     (the lazily built indexes). This suite runs in the TSan leg.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "dsa_sweep.h"
#include "dsa/maintenance.h"
#include "graph/algorithms.h"
#include "relational/relation.h"
#include "relational/tuple_store.h"
#include "storage/database_io.h"

namespace tcf {
namespace {

using dsa_sweep::Fragmenter;
using dsa_sweep::MakeFragmentation;
using dsa_sweep::MakeTransport;

class PagedRelationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "paged_relation_test_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".tcfdb";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

std::vector<PathTuple> Collect(const Relation& rel) {
  std::vector<PathTuple> out;
  out.reserve(rel.size());
  rel.ForEach([&](const PathTuple& t) { out.push_back(t); });
  return out;
}

void ExpectSameTuples(const Relation& a, const Relation& b) {
  std::vector<PathTuple> ta = Collect(a);
  std::vector<PathTuple> tb = Collect(b);
  ASSERT_EQ(ta.size(), tb.size());
  auto canon = [](const PathTuple& x, const PathTuple& y) {
    if (x.src != y.src) return x.src < y.src;
    if (x.dst != y.dst) return x.dst < y.dst;
    return x.cost < y.cost;
  };
  std::sort(ta.begin(), ta.end(), canon);
  std::sort(tb.begin(), tb.end(), canon);
  for (size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta[i].src, tb[i].src) << i;
    EXPECT_EQ(ta[i].dst, tb[i].dst) << i;
    EXPECT_EQ(ta[i].cost, tb[i].cost) << i;
  }
}

/// Total serialized bytes of every shortcut relation (the quantity the
/// capped pool must stay below half of).
uint64_t TotalRelationBytes(const ComplementaryInfo& comp) {
  uint64_t bytes = 0;
  for (const Relation& rel : comp.shortcuts) {
    bytes += 8 + 16 * static_cast<uint64_t>(rel.size());
  }
  return bytes;
}

/// Deterministic randomized sweep: `fresh` and `reopened` must agree with
/// each other bit for bit and with the whole-graph Dijkstra oracle.
void ExpectAnswersMatch(const Graph& g, const DsaDatabase& fresh,
                        const DsaDatabase& reopened, uint64_t seed,
                        int pairs = 24) {
  Rng rng(seed);
  std::unordered_map<NodeId, ShortestPaths> oracle;
  for (int i = 0; i < pairs; ++i) {
    const auto s = static_cast<NodeId>(rng.NextBounded(g.NumNodes()));
    const auto u = static_cast<NodeId>(rng.NextBounded(g.NumNodes()));
    if (s != u && !oracle.count(s)) oracle.emplace(s, Dijkstra(g, s));
    const Weight expected = s == u ? 0.0 : oracle.at(s).distance[u];
    const auto fresh_answer = fresh.ShortestPath(s, u);
    const auto paged_answer = reopened.ShortestPath(s, u);
    EXPECT_EQ(fresh_answer.connected, paged_answer.connected)
        << s << "->" << u;
    if (expected == kInfinity) {
      EXPECT_FALSE(paged_answer.connected) << s << "->" << u;
    } else {
      ASSERT_TRUE(paged_answer.connected) << s << "->" << u;
      EXPECT_NEAR(paged_answer.cost, expected, 1e-9) << s << "->" << u;
      EXPECT_EQ(paged_answer.cost, fresh_answer.cost) << s << "->" << u;
    }
  }
}

TEST(TupleStoreTest, VectorCursorYieldsAllTuplesOnce) {
  std::vector<PathTuple> tuples;
  for (uint32_t i = 0; i < 100; ++i) {
    tuples.push_back(PathTuple{i, i + 1, static_cast<Weight>(i) * 0.5});
  }
  VectorTupleStore store(tuples);
  EXPECT_EQ(store.size(), 100u);

  auto cursor = store.NewCursor();
  size_t seen = 0;
  for (std::span<const PathTuple> block = cursor->NextBlock();
       !block.empty(); block = cursor->NextBlock()) {
    for (const PathTuple& t : block) {
      EXPECT_EQ(t.src, seen);
      ++seen;
    }
  }
  EXPECT_EQ(seen, 100u);
  // Exhausted cursors stay exhausted.
  EXPECT_TRUE(cursor->NextBlock().empty());
}

TEST(TupleStoreTest, RelationOverStoreIsPagedUntilMutation) {
  auto store = std::make_shared<VectorTupleStore>(std::vector<PathTuple>{
      {0, 1, 2.0}, {1, 2, 3.0}, {0, 2, 7.0}});
  Relation rel((std::shared_ptr<const TupleStore>(store)));
  EXPECT_TRUE(rel.is_paged());
  EXPECT_EQ(rel.size(), 3u);
  EXPECT_EQ(rel.BestCost(0, 1), 2.0);
  EXPECT_EQ(rel.BestCost(2, 0), kInfinity);

  // Copies share the immutable store...
  Relation copy = rel;
  EXPECT_TRUE(copy.is_paged());
  // ...until mutated: the copy materializes, the original is untouched.
  copy.Add(5, 6, 1.0);
  EXPECT_FALSE(copy.is_paged());
  EXPECT_EQ(copy.size(), 4u);
  EXPECT_TRUE(rel.is_paged());
  EXPECT_EQ(rel.size(), 3u);
  EXPECT_EQ(copy.BestCost(5, 6), 1.0);
  EXPECT_EQ(rel.BestCost(5, 6), kInfinity);

  // Explicit materialization exposes the resident vector.
  rel.Materialize();
  EXPECT_FALSE(rel.is_paged());
  EXPECT_EQ(rel.tuples().size(), 3u);
}

TEST_F(PagedRelationTest, PagedScanMatchesResidentAcrossPageSizes) {
  const auto t = MakeTransport(3, 4, 14);
  const Fragmentation frag = MakeFragmentation(t.graph, Fragmenter::kCenter,
                                               3);
  const DsaDatabase fresh(&frag);

  // Small pages force shortcut blobs to span several pages, so tuples
  // straddle page boundaries and the cursor's carry buffer is exercised.
  for (const size_t page_size : {kMinPageSize, size_t{2048}}) {
    SaveOptions save;
    save.page_size = page_size;
    ASSERT_TRUE(SaveDatabase(fresh, path_, save).ok());

    OpenOptions paged;
    paged.mode = OpenMode::kPaged;
    paged.buffer_pool_frames = 4;
    Result<StoredDatabase> opened = OpenDatabase(path_, paged);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    ASSERT_NE(opened.value().paged_file, nullptr);

    const ComplementaryInfo& paged_comp = opened.value().db->complementary();
    const ComplementaryInfo& fresh_comp = fresh.complementary();
    ASSERT_EQ(paged_comp.shortcuts.size(), fresh_comp.shortcuts.size());
    for (size_t f = 0; f < paged_comp.shortcuts.size(); ++f) {
      EXPECT_TRUE(paged_comp.shortcuts[f].is_paged());
      ExpectSameTuples(paged_comp.shortcuts[f], fresh_comp.shortcuts[f]);
      // A second scan of the same relation sees the same tuples (cursors
      // are independent).
      ExpectSameTuples(paged_comp.shortcuts[f], paged_comp.shortcuts[f]);
    }
  }
}

TEST_F(PagedRelationTest, CappedPoolSweepMatchesFreshAndOracle) {
  // Large enough that every fragmenter's relations dwarf the pool floor
  // (two 512-byte frames), so the <50% cap below is always meaningful.
  const auto t = MakeTransport(17, 4, 25);
  for (const Fragmenter fragmenter :
       {Fragmenter::kLinear, Fragmenter::kCenter, Fragmenter::kBondEnergy,
        Fragmenter::kRandom}) {
    const Fragmentation frag = MakeFragmentation(t.graph, fragmenter, 9);
    for (const LocalEngine engine :
         {LocalEngine::kDijkstra, LocalEngine::kSemiNaive}) {
      DsaOptions dsa;
      dsa.engine = engine;
      const DsaDatabase fresh(&frag, dsa);
      SaveOptions save;
      save.page_size = kMinPageSize;
      ASSERT_TRUE(SaveDatabase(fresh, path_, save).ok());

      // Cap the pool below HALF of the total relation bytes: the paged
      // database cannot possibly hold its relations resident, so correct
      // answers prove queries genuinely stream through pinned pages.
      const uint64_t relation_bytes =
          TotalRelationBytes(fresh.complementary());
      OpenOptions paged;
      paged.dsa = dsa;
      paged.mode = OpenMode::kPaged;
      paged.memory_budget_bytes =
          static_cast<size_t>(relation_bytes / 2);
      Result<StoredDatabase> opened = OpenDatabase(path_, paged);
      ASSERT_TRUE(opened.ok()) << opened.status().ToString();
      const auto& pool = opened.value().paged_file->pool();
      ASSERT_LT(pool.num_frames() * kMinPageSize, relation_bytes / 2 + 1)
          << "pool must stay under half the relation bytes";

      ExpectAnswersMatch(t.graph, fresh, *opened.value().db,
                         /*seed=*/1000 + static_cast<uint64_t>(fragmenter));
      EXPECT_GT(opened.value().paged_file->stats().hits, 0u);
    }
  }
}

TEST_F(PagedRelationTest, EpochCopyOnWriteRebuildsDirtyFragmentsResident) {
  const auto t = MakeTransport(29, 4, 12);
  const Fragmentation frag = MakeFragmentation(t.graph, Fragmenter::kLinear,
                                               1);
  {
    const DsaDatabase fresh(&frag);
    SaveOptions save;
    save.page_size = kMinPageSize;
    ASSERT_TRUE(SaveDatabase(fresh, path_, save).ok());
  }

  OpenOptions paged;
  paged.mode = OpenMode::kPaged;
  paged.buffer_pool_frames = 8;
  std::shared_ptr<PagedFile> paged_file;
  Result<std::unique_ptr<MaintainedDatabase>> opened =
      OpenMaintainedDatabase(path_, paged, &paged_file);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  ASSERT_NE(paged_file, nullptr);
  MaintainedDatabase& mdb = *opened.value();

  const size_t num_frags = mdb.fragmentation().NumFragments();
  auto count_paged = [&mdb] {
    size_t paged_count = 0;
    const DsaSnapshot snap = mdb.Snapshot();
    for (const Relation& rel : snap.db->complementary().shortcuts) {
      if (rel.is_paged()) ++paged_count;
    }
    return paged_count;
  };
  ASSERT_EQ(count_paged(), num_frags) << "all fragments start paged";

  // Pick an edge lying on a stored witness route: raising its weight is a
  // tightening that provably dirties that route's source border node, so
  // its fragment MUST be rebuilt (resident) while untouched fragments
  // carry their paged extents over.
  NodeId wu = kInvalidNode, wv = kInvalidNode;
  Weight wweight = 0;
  {
    const DsaSnapshot snap = mdb.Snapshot();
    const auto& witness = snap.db->complementary().witness;
    ASSERT_FALSE(witness.empty());
    const std::vector<NodeId>& route = witness.begin()->second;
    ASSERT_GE(route.size(), 2u);
    for (const Edge& e : snap.graph->edges()) {
      if (e.src == route[0] && e.dst == route[1]) {
        wu = e.src;
        wv = e.dst;
        wweight = e.weight;
        break;
      }
    }
  }
  ASSERT_NE(wu, kInvalidNode) << "witness route must start with an edge";

  const EpochStats stats =
      mdb.ApplyEpoch({EdgeUpdate::Reweight(wu, wv, wweight * 4.0)});
  EXPECT_TRUE(stats.published);
  const size_t paged_after = count_paged();
  EXPECT_LT(paged_after, num_frags)
      << "the dirtied fragment must be rebuilt resident";

  // The updated database still answers oracle-exactly (oracle recomputed
  // on the post-update graph).
  const DsaSnapshot snap = mdb.Snapshot();
  Rng rng(77);
  std::unordered_map<NodeId, ShortestPaths> oracle;
  for (int i = 0; i < 24; ++i) {
    const auto s =
        static_cast<NodeId>(rng.NextBounded(snap.graph->NumNodes()));
    const auto u =
        static_cast<NodeId>(rng.NextBounded(snap.graph->NumNodes()));
    if (s != u && !oracle.count(s)) {
      oracle.emplace(s, Dijkstra(*snap.graph, s));
    }
    const Weight expected = s == u ? 0.0 : oracle.at(s).distance[u];
    const auto answer = snap.db->ShortestPath(s, u);
    if (expected == kInfinity) {
      EXPECT_FALSE(answer.connected) << s << "->" << u;
    } else {
      ASSERT_TRUE(answer.connected) << s << "->" << u;
      EXPECT_NEAR(answer.cost, expected, 1e-9) << s << "->" << u;
    }
  }

  // A no-op epoch (reweight to the current weight) publishes nothing and
  // materializes nothing: the carry-over is reference-sharing, not decode.
  const EpochStats noop =
      mdb.ApplyEpoch({EdgeUpdate::Reweight(wu, wv, wweight * 4.0)});
  EXPECT_FALSE(noop.published);
  EXPECT_EQ(count_paged(), paged_after);
}

TEST_F(PagedRelationTest, ConcurrentScansThroughTinyPool) {
  const auto t = MakeTransport(41, 4, 12);
  const Fragmentation frag = MakeFragmentation(t.graph, Fragmenter::kCenter,
                                               7);
  const DsaDatabase fresh(&frag);
  SaveOptions save;
  save.page_size = kMinPageSize;
  ASSERT_TRUE(SaveDatabase(fresh, path_, save).ok());

  // Two frames (the floor) against eight scanning threads: pins collide
  // constantly, so scans routinely fall back to checksum-verified bypass
  // reads. Every thread must still see every tuple of every fragment.
  OpenOptions paged;
  paged.mode = OpenMode::kPaged;
  paged.memory_budget_bytes = 2 * kMinPageSize;  // exactly the 2-frame floor
  Result<StoredDatabase> opened = OpenDatabase(path_, paged);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  ASSERT_EQ(opened.value().paged_file->pool().num_frames(), 2u);
  const ComplementaryInfo& comp = opened.value().db->complementary();

  std::vector<size_t> expected_counts;
  std::vector<double> expected_sums;
  for (const Relation& rel : fresh.complementary().shortcuts) {
    double sum = 0;
    rel.ForEach([&](const PathTuple& tuple) { sum += tuple.cost; });
    expected_counts.push_back(rel.size());
    expected_sums.push_back(sum);
  }

  constexpr int kThreads = 8;
  constexpr int kRounds = 4;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&] {
      for (int round = 0; round < kRounds; ++round) {
        for (size_t f = 0; f < comp.shortcuts.size(); ++f) {
          size_t count = 0;
          double sum = 0;
          comp.shortcuts[f].ForEach([&](const PathTuple& tuple) {
            ++count;
            sum += tuple.cost;
          });
          if (count != expected_counts[f] || sum != expected_sums[f]) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST_F(PagedRelationTest, BelowFloorMemoryBudgetIsRejected) {
  const auto t = MakeTransport(5, 3, 6);
  const Fragmentation frag = MakeFragmentation(t.graph, Fragmenter::kLinear,
                                               2);
  const DsaDatabase fresh(&frag);
  SaveOptions save;
  save.page_size = kMinPageSize;
  ASSERT_TRUE(SaveDatabase(fresh, path_, save).ok());

  // A nonzero budget below the two-frame progress floor is a contradiction
  // the caller must resolve, not a value to silently round up.
  OpenOptions paged;
  paged.mode = OpenMode::kPaged;
  paged.memory_budget_bytes = 2 * kMinPageSize - 1;
  Result<StoredDatabase> opened = OpenDatabase(path_, paged);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(opened.status().ToString().find("memory_budget_bytes"),
            std::string::npos)
      << opened.status().ToString();

  // Zero budget means "unset": buffer_pool_frames governs and the open
  // succeeds.
  paged.memory_budget_bytes = 0;
  EXPECT_TRUE(OpenDatabase(path_, paged).ok());
}

TEST_F(PagedRelationTest, CorruptPageFailsQueryNotProcess) {
  const auto t = MakeTransport(23, 4, 12);
  const Fragmentation frag = MakeFragmentation(t.graph, Fragmenter::kCenter,
                                               5);
  const DsaDatabase fresh(&frag);
  SaveOptions save;
  save.page_size = kMinPageSize;
  ASSERT_TRUE(SaveDatabase(fresh, path_, save).ok());

  OpenOptions paged;
  paged.mode = OpenMode::kPaged;
  paged.buffer_pool_frames = 2;
  Result<StoredDatabase> opened = OpenDatabase(path_, paged);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  const ComplementaryInfo& comp = opened.value().db->complementary();

  // Corrupt the first byte (header magic) of every page but the header
  // page AFTER a clean open: the graph and fragmentation decoded at open
  // stay valid, but any page a paged relation now faults back in fails
  // verification.
  {
    std::fstream file(path_,
                      std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file.good());
    file.seekg(0, std::ios::end);
    const auto file_size = static_cast<uint64_t>(file.tellg());
    for (uint64_t off = kMinPageSize; off + kMinPageSize <= file_size;
         off += kMinPageSize) {
      file.seekg(static_cast<std::streamoff>(off));
      char byte = 0;
      file.read(&byte, 1);
      byte = static_cast<char>(byte ^ 0xFF);
      file.seekp(static_cast<std::streamoff>(off));
      file.write(&byte, 1);
    }
    file.flush();
    ASSERT_TRUE(file.good());
  }

  // A relation spanning more pages than the two-frame pool cannot be
  // served from residual frames, so its scan MUST surface the corruption
  // through the cursor's Status channel — not a crash.
  size_t big = comp.shortcuts.size();
  for (size_t f = 0; f < comp.shortcuts.size(); ++f) {
    if (comp.shortcuts[f].is_paged() &&
        8 + 16 * comp.shortcuts[f].size() > 2 * kMinPageSize) {
      big = f;
      break;
    }
  }
  ASSERT_LT(big, comp.shortcuts.size())
      << "transport too small: no shortcut relation spans >2 pages";
  const Status scan = comp.shortcuts[big].ForEach([](const PathTuple&) {});
  EXPECT_FALSE(scan.ok());
  EXPECT_NE(scan.ToString().find("page"), std::string::npos)
      << scan.ToString();

  // Queries against corrupt storage fail with a Status on the answer.
  // They never crash the process and never report a made-up cost.
  int failed = 0;
  Rng rng(9);
  for (int i = 0; i < 24; ++i) {
    const auto s = static_cast<NodeId>(rng.NextBounded(t.graph.NumNodes()));
    const auto u = static_cast<NodeId>(rng.NextBounded(t.graph.NumNodes()));
    const auto answer = opened.value().db->ShortestPath(s, u);
    if (!answer.status.ok()) {
      ++failed;
      EXPECT_FALSE(answer.connected) << s << "->" << u;
    }
  }
  EXPECT_GT(failed, 0) << "no query surfaced the corrupted storage";
}

TEST_F(PagedRelationTest, ConcurrentColdLookupsBuildIndexOnce) {
  // Resident relation, index-cold: concurrent BestCost/MaxCost from many
  // threads must race-freely build the lazy indexes and agree.
  Relation rel;
  for (uint32_t i = 0; i < 64; ++i) {
    rel.Add(i % 8, (i + 1) % 8, 1.0 + static_cast<Weight>(i));
    rel.Add(i % 8, (i + 1) % 8, 2.0 + static_cast<Weight>(i));
  }

  auto hammer = [](const Relation& r) {
    constexpr int kThreads = 8;
    std::atomic<int> failures{0};
    std::vector<std::thread> workers;
    for (int w = 0; w < kThreads; ++w) {
      workers.emplace_back([&r, &failures] {
        for (uint32_t i = 0; i < 64; ++i) {
          const NodeId s = i % 8;
          const NodeId d = (i + 1) % 8;
          if (r.BestCost(s, d) == kInfinity) {
            failures.fetch_add(1, std::memory_order_relaxed);
          }
          if (r.MaxCost(s, d) <= 0.0) {
            failures.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (std::thread& w : workers) w.join();
    EXPECT_EQ(failures.load(), 0);
  };
  hammer(rel);

  // Mutation re-arms the lazy build; the next (single-threaded) lookup
  // sees the new tuple, then the concurrent hammer still agrees.
  rel.Add(7, 0, 0.25);
  EXPECT_EQ(rel.BestCost(7, 0), 0.25);
  hammer(rel);

  // Paged relation: the cold index build streams tuples through the pool
  // from every thread at once.
  const auto t = MakeTransport(53, 4, 10);
  const Fragmentation frag = MakeFragmentation(t.graph, Fragmenter::kLinear,
                                               2);
  const DsaDatabase fresh(&frag);
  const std::string path = ::testing::TempDir() + "paged_cold_index.tcfdb";
  SaveOptions save;
  save.page_size = kMinPageSize;
  ASSERT_TRUE(SaveDatabase(fresh, path, save).ok());
  OpenOptions paged;
  paged.mode = OpenMode::kPaged;
  paged.buffer_pool_frames = 2;
  Result<StoredDatabase> opened = OpenDatabase(path, paged);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  for (size_t f = 0; f < fresh.complementary().shortcuts.size(); ++f) {
    const Relation& paged_rel =
        opened.value().db->complementary().shortcuts[f];
    const Relation& fresh_rel = fresh.complementary().shortcuts[f];
    if (fresh_rel.empty()) continue;
    const PathTuple probe = fresh_rel.tuples().front();
    std::vector<std::thread> workers;
    std::atomic<int> failures{0};
    for (int w = 0; w < 4; ++w) {
      workers.emplace_back([&] {
        if (paged_rel.BestCost(probe.src, probe.dst) == kInfinity) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    for (std::thread& w : workers) w.join();
    EXPECT_EQ(failures.load(), 0);
    EXPECT_EQ(paged_rel.BestCost(probe.src, probe.dst),
              fresh_rel.BestCost(probe.src, probe.dst));
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tcf
