// Randomized cross-check of the batch executor: a 1000-query batch over
// generated transportation and general graphs must return *bit-identical*
// answers to a sequential ShortestPath / ShortestRoute / IsConnected loop
// (batching shares plans and subqueries but must not change a single
// result), and its connectivity verdicts must match the warshall.h dense
// oracle. Swept across all LocalEngines and both loosely connected
// (linear) and cyclic (random) fragmentations.
#include <gtest/gtest.h>

#include <atomic>
#include <optional>
#include <thread>

#include "dsa/batch.h"
#include "dsa/workload.h"
#include "fragment/linear.h"
#include "fragment/random_partition.h"
#include "graph/builder.h"
#include "graph/generator.h"
#include "relational/warshall.h"

namespace tcf {
namespace {

enum class Family { kTransportation, kGeneral };
enum class FragStyle { kLinear, kRandom };  // loosely connected vs cyclic

struct BatchParam {
  uint64_t seed;
  Family family;
  FragStyle style;
  LocalEngine engine;
  /// The sequential reference loop re-executes every subquery per query,
  /// so for the slow relational engines only every seq_stride-th query is
  /// cross-checked against it (the Warshall oracle still checks all 1000).
  size_t seq_stride = 1;
  /// Smaller graph for the pathological Smart-over-random-borders cell.
  bool small_graph = false;
};

Graph MakeGraph(const BatchParam& p) {
  Rng rng(p.seed);
  if (p.family == Family::kTransportation) {
    TransportationGraphOptions opts;
    opts.num_clusters = 3;
    opts.nodes_per_cluster = p.small_graph ? 8 : 10;
    opts.target_edges_per_cluster = p.small_graph ? 28 : 40;
    return GenerateTransportationGraph(opts, &rng).graph;
  }
  GeneralGraphOptions opts;
  opts.num_nodes = p.small_graph ? 26 : 36;
  opts.target_edges = p.small_graph ? 70 : 110;
  return GenerateGeneralGraph(opts, &rng);
}

Fragmentation MakeFrag(const Graph& g, const BatchParam& p) {
  if (p.style == FragStyle::kLinear) {
    LinearOptions opts;
    opts.num_fragments = 4;
    return LinearFragmentation(g, opts).fragmentation;
  }
  Rng rng(p.seed * 31 + 7);
  return RandomFragmentation(g, 4, &rng);
}

/// A 1000-query mixed workload: every WorkloadMix in equal parts, with the
/// three query kinds interleaved.
std::vector<Query> MakeWorkload(const Fragmentation& frag, uint64_t seed) {
  std::vector<Query> queries;
  Rng rng(seed * 131 + 3);
  for (WorkloadMix mix :
       {WorkloadMix::kUniform, WorkloadMix::kHotPair,
        WorkloadMix::kWithinFragment, WorkloadMix::kCrossChain}) {
    WorkloadSpec spec;
    spec.mix = mix;
    spec.num_queries = 250;
    std::vector<Query> part = GenerateWorkload(frag, spec, &rng);
    queries.insert(queries.end(), part.begin(), part.end());
  }
  constexpr QueryKind kKinds[] = {QueryKind::kCost, QueryKind::kRoute,
                                  QueryKind::kReachability};
  for (size_t i = 0; i < queries.size(); ++i) {
    queries[i].kind = kKinds[i % 3];
  }
  return queries;
}

class BatchCrossCheck : public ::testing::TestWithParam<BatchParam> {};

TEST_P(BatchCrossCheck, BatchEqualsSequentialEqualsWarshall) {
  const BatchParam p = GetParam();
  const Graph g = MakeGraph(p);
  const Fragmentation frag = MakeFrag(g, p);
  if (p.style == FragStyle::kLinear) {
    ASSERT_TRUE(frag.IsLooselyConnected());
  }

  DsaOptions opts;
  opts.engine = p.engine;
  DsaDatabase db(&frag, opts);
  BatchExecutor executor(&db);
  const std::vector<Query> queries = MakeWorkload(frag, p.seed);
  ASSERT_EQ(queries.size(), 1000u);

  const BatchResult result = executor.Execute(queries);
  ASSERT_EQ(result.answers.size(), queries.size());

  const ReachabilityMatrix reach = WarshallClosure(g);
  for (size_t i = 0; i < queries.size(); ++i) {
    const Query& q = queries[i];
    const RouteAnswer& got = result.answers[i];

    // The dense oracle closes paths of length >= 1; from == to is
    // connected by the empty path in the query semantics.
    const bool oracle_connected = q.from == q.to || reach.Get(q.from, q.to);
    EXPECT_EQ(got.answer.connected, oracle_connected)
        << "query " << i << ": " << q.from << " -> " << q.to;

    if (i % p.seq_stride != 0) continue;
    switch (q.kind) {
      case QueryKind::kCost: {
        const QueryAnswer seq = db.ShortestPath(q.from, q.to);
        EXPECT_EQ(got.answer.cost, seq.cost) << "query " << i;
        EXPECT_EQ(got.answer.connected, seq.connected) << "query " << i;
        EXPECT_EQ(got.answer.fragments_involved, seq.fragments_involved)
            << "query " << i;
        break;
      }
      case QueryKind::kRoute: {
        const RouteAnswer seq = db.ShortestRoute(q.from, q.to);
        EXPECT_EQ(got.answer.cost, seq.answer.cost) << "query " << i;
        EXPECT_EQ(got.route, seq.route) << "query " << i;
        break;
      }
      case QueryKind::kReachability: {
        EXPECT_EQ(got.answer.connected, db.IsConnected(q.from, q.to))
            << "query " << i;
        break;
      }
    }
  }

  // The sharing accounting must be consistent, and with 1000 queries over
  // at most 16 fragment pairs the plan cache cannot help but get hits.
  const BatchStats& s = result.stats;
  EXPECT_EQ(s.num_queries, queries.size());
  EXPECT_LE(s.subqueries_executed, s.subqueries_requested);
  EXPECT_GT(s.plan_cache_hits, 0u);
  EXPECT_GT(s.DedupSavings(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BatchCrossCheck,
    ::testing::Values(
        BatchParam{21, Family::kTransportation, FragStyle::kLinear,
                   LocalEngine::kDijkstra},
        BatchParam{22, Family::kTransportation, FragStyle::kRandom,
                   LocalEngine::kSemiNaive, /*seq_stride=*/17},
        BatchParam{23, Family::kTransportation, FragStyle::kLinear,
                   LocalEngine::kSmart, /*seq_stride=*/17},
        BatchParam{24, Family::kGeneral, FragStyle::kRandom,
                   LocalEngine::kDijkstra, /*seq_stride=*/3},
        BatchParam{25, Family::kGeneral, FragStyle::kLinear,
                   LocalEngine::kSemiNaive, /*seq_stride=*/7},
        BatchParam{26, Family::kGeneral, FragStyle::kRandom,
                   LocalEngine::kSmart, /*seq_stride=*/9,
                   /*small_graph=*/true}));

// ------------------------------------------------------------- Edge cases

TEST(BatchExecutor, EmptyBatch) {
  Rng rng(5);
  TransportationGraphOptions gopts;
  gopts.num_clusters = 2;
  gopts.nodes_per_cluster = 6;
  auto t = GenerateTransportationGraph(gopts, &rng);
  LinearOptions lopts;
  lopts.num_fragments = 2;
  Fragmentation frag = LinearFragmentation(t.graph, lopts).fragmentation;
  DsaDatabase db(&frag);
  BatchExecutor executor(&db);
  const BatchResult result = executor.Execute({});
  EXPECT_TRUE(result.answers.empty());
  EXPECT_EQ(result.stats.num_queries, 0u);
  EXPECT_EQ(result.stats.subqueries_executed, 0u);
}

TEST(BatchExecutor, SelfQueriesAreTrivial) {
  Rng rng(6);
  GeneralGraphOptions gopts;
  gopts.num_nodes = 12;
  gopts.target_edges = 30;
  Graph g = GenerateGeneralGraph(gopts, &rng);
  LinearOptions lopts;
  lopts.num_fragments = 2;
  Fragmentation frag = LinearFragmentation(g, lopts).fragmentation;
  DsaDatabase db(&frag);
  BatchExecutor executor(&db);

  const std::vector<Query> queries = {{3, 3, QueryKind::kCost},
                                      {5, 5, QueryKind::kRoute},
                                      {0, 0, QueryKind::kReachability}};
  const BatchResult result = executor.Execute(queries);
  for (const RouteAnswer& a : result.answers) {
    EXPECT_TRUE(a.answer.connected);
    EXPECT_DOUBLE_EQ(a.answer.cost, 0.0);
  }
  EXPECT_EQ(result.answers[1].route, (std::vector<NodeId>{5}));
  EXPECT_EQ(result.stats.subqueries_executed, 0u);  // nothing to run
}

// ------------------------------------------------- Plan-cache edge cases

/// Fixture for the plan-cache tests: a 3×10 transportation graph under a
/// 4-fragment linear fragmentation (several fragment pairs, so a capacity-1
/// cache is forced to churn) plus a 200-query uniform workload.
struct PlanCacheFixture {
  PlanCacheFixture() {
    Rng rng(77);
    TransportationGraphOptions gopts;
    gopts.num_clusters = 3;
    gopts.nodes_per_cluster = 10;
    gopts.target_edges_per_cluster = 40;
    graph = GenerateTransportationGraph(gopts, &rng).graph;
    LinearOptions lopts;
    lopts.num_fragments = 4;
    frag.emplace(LinearFragmentation(graph, lopts).fragmentation);
  }

  std::vector<Query> MakeQueries(size_t n) const {
    WorkloadSpec spec;
    spec.mix = WorkloadMix::kUniform;
    spec.num_queries = n;
    Rng rng(78);
    return GenerateWorkload(*frag, spec, &rng);
  }

  Graph graph;
  std::optional<Fragmentation> frag;
};

void ExpectSameAnswers(const BatchResult& got, const BatchResult& want) {
  ASSERT_EQ(got.answers.size(), want.answers.size());
  for (size_t i = 0; i < got.answers.size(); ++i) {
    EXPECT_EQ(got.answers[i].answer.connected, want.answers[i].answer.connected)
        << "query " << i;
    EXPECT_EQ(got.answers[i].answer.cost, want.answers[i].answer.cost)
        << "query " << i;
  }
}

TEST(BatchPlanCache, DisabledCacheStillAnswersCorrectly) {
  PlanCacheFixture fx;
  const std::vector<Query> queries = fx.MakeQueries(200);

  DsaDatabase cached_db(&*fx.frag);
  const BatchResult want = BatchExecutor(&cached_db).Execute(queries);

  DsaOptions opts;
  opts.plan_cache_capacity = 0;  // disabled: skeletons expanded per plan
  DsaDatabase db(&*fx.frag, opts);
  ASSERT_EQ(db.plan_cache(), nullptr);
  const BatchResult got = BatchExecutor(&db).Execute(queries);

  ExpectSameAnswers(got, want);
  EXPECT_EQ(got.stats.plan_cache_hits, 0u);
  EXPECT_EQ(got.stats.plan_cache_misses, 0u);
  // Sharing is planner-side, not cache-side: dedup must be unaffected.
  EXPECT_EQ(got.stats.subqueries_executed, want.stats.subqueries_executed);
  EXPECT_EQ(got.stats.subqueries_requested, want.stats.subqueries_requested);
}

TEST(BatchPlanCache, CapacityOneChurnsButStaysCorrect) {
  PlanCacheFixture fx;
  const std::vector<Query> queries = fx.MakeQueries(200);

  DsaDatabase reference_db(&*fx.frag);
  const BatchResult want = BatchExecutor(&reference_db).Execute(queries);

  DsaOptions opts;
  opts.plan_cache_capacity = 1;  // every second fragment pair evicts
  DsaDatabase db(&*fx.frag, opts);
  const BatchResult got = BatchExecutor(&db).Execute(queries);

  ExpectSameAnswers(got, want);
  const LruCacheStats stats = db.plan_cache()->Stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.entries, 1u);
  // Per-batch accounting must agree with the cache's cumulative counters.
  EXPECT_EQ(got.stats.plan_cache_hits + got.stats.plan_cache_misses,
            stats.hits + stats.misses);
}

TEST(BatchPlanCache, ConcurrentBatchesRacingOnTinyCache) {
  PlanCacheFixture fx;
  const std::vector<Query> queries = fx.MakeQueries(100);

  DsaDatabase reference_db(&*fx.frag);
  const BatchResult want = BatchExecutor(&reference_db).Execute(queries);

  DsaOptions opts;
  opts.plan_cache_capacity = 1;
  DsaDatabase db(&*fx.frag, opts);
  BatchExecutor executor(&db);

  constexpr size_t kThreads = 4;
  constexpr size_t kRounds = 6;
  std::vector<BatchStats> stats(kThreads * kRounds);
  std::atomic<size_t> mismatches{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (size_t round = 0; round < kRounds; ++round) {
        const BatchResult got = executor.Execute(queries);
        stats[t * kRounds + round] = got.stats;
        for (size_t i = 0; i < queries.size(); ++i) {
          if (got.answers[i].answer.cost != want.answers[i].answer.cost) {
            ++mismatches;
          }
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0u);

  // Hit/miss accounting stays consistent under the race: every batch's
  // counters sum to the cache's cumulative lookup count, dedup counts are
  // scheduling-independent, and the capacity bound holds.
  size_t batch_lookups = 0;
  for (const BatchStats& s : stats) {
    EXPECT_EQ(s.subqueries_executed, want.stats.subqueries_executed);
    EXPECT_EQ(s.subqueries_requested, want.stats.subqueries_requested);
    batch_lookups += s.plan_cache_hits + s.plan_cache_misses;
  }
  const LruCacheStats cache_stats = db.plan_cache()->Stats();
  EXPECT_EQ(cache_stats.hits + cache_stats.misses, batch_lookups);
  EXPECT_LE(cache_stats.entries, 1u);
}

TEST(BatchPlanCache, SecondIdenticalBatchHitsInternedPlans) {
  // The cross-batch interned-plan cache: plans are keyed by (from, to)
  // node pair in skeleton-relative form, so they outlive the first
  // batch's spec-table sealing. A repeated batch must hit ≥90% (in fact
  // 100% here: every distinct pair was interned by batch one), return
  // identical answers, and perform ZERO skeleton-cache lookups.
  PlanCacheFixture fx;
  const std::vector<Query> queries = fx.MakeQueries(200);

  DsaDatabase db(&*fx.frag);
  BatchExecutor executor(&db);

  const BatchResult first = executor.Execute(queries);
  // One cache consult per distinct ordered pair. The cache aliases
  // unordered pairs, so a cold cache can still score hits within the
  // first batch when the workload holds both orientations of a pair.
  EXPECT_EQ(first.stats.interned_plan_hits + first.stats.interned_plan_misses,
            first.stats.plan_memo_misses);

  const BatchResult second = executor.Execute(queries);
  ExpectSameAnswers(second, first);
  EXPECT_EQ(second.stats.interned_plan_misses, 0u);
  EXPECT_EQ(second.stats.interned_plan_hits,
            second.stats.plan_memo_misses);
  EXPECT_GE(second.stats.InternedPlanHitRate(), 0.9);
  // A warm plan instantiates without touching the skeleton cache.
  EXPECT_EQ(second.stats.plan_cache_hits, 0u);
  EXPECT_EQ(second.stats.plan_cache_misses, 0u);
  // Dedup within the batch is unaffected by where the plans came from.
  EXPECT_EQ(second.stats.subqueries_requested,
            first.stats.subqueries_requested);
  EXPECT_EQ(second.stats.subqueries_executed,
            first.stats.subqueries_executed);

  // The cache's own accounting agrees with the per-batch counters.
  const LruCacheStats plan_stats = db.plan_cache()->PlanStats();
  EXPECT_EQ(plan_stats.hits,
            first.stats.interned_plan_hits + second.stats.interned_plan_hits);
  EXPECT_EQ(plan_stats.misses, first.stats.interned_plan_misses +
                                   second.stats.interned_plan_misses);
}

TEST(BatchPlanCache, ReversedPairsAliasOntoOneInternedPlan) {
  // Unordered-pair aliasing: after a batch interned its (from, to) plans,
  // the element-wise REVERSED batch hits the same entries — zero new
  // builds — and the reversed instantiation answers exactly like a fresh
  // database planning the reversed direction from scratch (disconnection
  // sets and fragment adjacency are symmetric, so a reversed chain is a
  // valid plan, and min-over-chains assembly makes chain order
  // immaterial).
  PlanCacheFixture fx;
  const std::vector<Query> forward = fx.MakeQueries(200);
  std::vector<Query> reversed = forward;
  for (Query& q : reversed) std::swap(q.from, q.to);

  DsaDatabase db(&*fx.frag);
  BatchExecutor executor(&db);
  executor.Execute(forward);  // warm the cache with the forward direction

  const BatchResult aliased = executor.Execute(reversed);
  EXPECT_EQ(aliased.stats.interned_plan_misses, 0u);
  EXPECT_EQ(aliased.stats.interned_plan_hits,
            aliased.stats.plan_memo_misses);

  DsaDatabase scratch_db(&*fx.frag);
  const BatchResult want = BatchExecutor(&scratch_db).Execute(reversed);
  ExpectSameAnswers(aliased, want);
  for (size_t i = 0; i < aliased.answers.size(); ++i) {
    EXPECT_EQ(aliased.answers[i].answer.chains_considered,
              want.answers[i].answer.chains_considered)
        << "query " << i;
  }
}

TEST(BatchPlanCache, SingleQueriesWarmTheInternedPlanCacheForBatches) {
  // Plans interned by the single-query path are hit by a later batch and
  // vice versa — the cache sits under both entry points.
  PlanCacheFixture fx;
  const std::vector<Query> queries = fx.MakeQueries(50);

  DsaDatabase db(&*fx.frag);
  for (const Query& q : queries) db.ShortestPath(q.from, q.to);

  BatchExecutor executor(&db);
  const BatchResult result = executor.Execute(queries);
  EXPECT_EQ(result.stats.interned_plan_misses, 0u);
  EXPECT_GE(result.stats.InternedPlanHitRate(), 0.9);
}

TEST(BatchPlanCache, DisabledInternedPlanCacheStillAnswersCorrectly) {
  PlanCacheFixture fx;
  const std::vector<Query> queries = fx.MakeQueries(200);

  DsaDatabase reference_db(&*fx.frag);
  const BatchResult want = BatchExecutor(&reference_db).Execute(queries);

  DsaOptions opts;
  opts.interned_plan_cache_capacity = 0;  // skeleton cache only
  DsaDatabase db(&*fx.frag, opts);
  BatchExecutor executor(&db);
  const BatchResult first = executor.Execute(queries);
  const BatchResult second = executor.Execute(queries);
  ExpectSameAnswers(first, want);
  ExpectSameAnswers(second, want);
  // Nothing survives the batch boundary: the repeat batch rebuilds every
  // distinct pair (counted as misses) and re-consults the skeleton cache.
  EXPECT_EQ(second.stats.interned_plan_hits, 0u);
  EXPECT_EQ(second.stats.interned_plan_misses,
            second.stats.plan_memo_misses);
  EXPECT_GT(second.stats.plan_cache_hits, 0u);
  EXPECT_EQ(db.plan_cache()->PlanStats().hits, 0u);
  EXPECT_EQ(db.plan_cache()->PlanStats().misses, 0u);
}

TEST(BatchExecutor, DisconnectedPairsStayUnconnected) {
  GraphBuilder b(4);
  b.AddSymmetricEdge(0, 1);
  b.AddSymmetricEdge(2, 3);
  Graph g = b.Build();
  Fragmentation frag(&g, {0, 0, 1, 1}, 2);
  DsaDatabase db(&frag);
  BatchExecutor executor(&db);
  const BatchResult result = executor.Execute(
      {{0, 3, QueryKind::kCost}, {0, 1, QueryKind::kCost},
       {2, 1, QueryKind::kRoute}});
  EXPECT_FALSE(result.answers[0].answer.connected);
  EXPECT_EQ(result.answers[0].answer.cost, kInfinity);
  EXPECT_TRUE(result.answers[1].answer.connected);
  EXPECT_FALSE(result.answers[2].answer.connected);
  EXPECT_TRUE(result.answers[2].route.empty());
}

}  // namespace
}  // namespace tcf
