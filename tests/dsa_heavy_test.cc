// The heavy half of the dsa_test split: the full fragmenter × engine grid
// of the central invariant (DsaDatabase == whole-graph Dijkstra oracle) on
// the larger sweep graphs. Kept out of dsa_test.cc so the default suite
// stays fast; the grid itself is trimmed where an engine is known to blow
// up (the relational Smart engine squares relations, and a random
// fragmentation maximizes border width, so that cell uses a smaller
// graph).
#include <gtest/gtest.h>

#include "dsa_sweep.h"

namespace tcf {
namespace {

using dsa_sweep::ExpectMatchesOracle;
using dsa_sweep::Fragmenter;
using dsa_sweep::MakeFragmentation;
using dsa_sweep::MakeTransport;

struct HeavyParam {
  uint64_t seed;
  Fragmenter fragmenter;
  LocalEngine engine;
  size_t clusters = 4;
  size_t nodes_per_cluster = 15;
};

class DsaOracleSweep : public ::testing::TestWithParam<HeavyParam> {};

TEST_P(DsaOracleSweep, MatchesDijkstraOracle) {
  const HeavyParam p = GetParam();
  auto t = MakeTransport(p.seed, p.clusters, p.nodes_per_cluster);
  Fragmentation frag = MakeFragmentation(t.graph, p.fragmenter, p.seed);
  ExpectMatchesOracle(t.graph, frag, p.engine, p.seed);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DsaOracleSweep,
    ::testing::Values(
        HeavyParam{1, Fragmenter::kCenter, LocalEngine::kDijkstra},
        HeavyParam{2, Fragmenter::kCenter, LocalEngine::kSemiNaive},
        HeavyParam{3, Fragmenter::kCenterDistributed, LocalEngine::kDijkstra},
        HeavyParam{4, Fragmenter::kCenterDistributed, LocalEngine::kSmart},
        HeavyParam{5, Fragmenter::kBondEnergy, LocalEngine::kDijkstra},
        HeavyParam{6, Fragmenter::kBondEnergy, LocalEngine::kSemiNaive},
        HeavyParam{7, Fragmenter::kLinear, LocalEngine::kDijkstra},
        HeavyParam{8, Fragmenter::kLinear, LocalEngine::kSemiNaive},
        // Random fragmentations maximize border width, which multiplies
        // subquery cost; 3x10 keeps these cells honest but bounded.
        HeavyParam{9, Fragmenter::kRandom, LocalEngine::kDijkstra, 3, 10},
        HeavyParam{10, Fragmenter::kRandom, LocalEngine::kSemiNaive, 3, 10},
        HeavyParam{11, Fragmenter::kLinear, LocalEngine::kSmart, 4, 12},
        // Smart squaring over the wide borders of a random fragmentation
        // is the suite's one pathological cell; a 3x10 graph still
        // exercises it without dominating the wall-time.
        HeavyParam{12, Fragmenter::kRandom, LocalEngine::kSmart, 3, 10}));

}  // namespace
}  // namespace tcf
