// Tests for the center-based fragmentation (Sec. 3.1, Fig. 4): center
// selection, growth variants, the distributed-centers refinement (Table 2),
// and the balanced-workload goal.
#include <gtest/gtest.h>

#include <set>

#include "fragment/center_based.h"
#include "fragment/metrics.h"
#include "graph/builder.h"
#include "graph/generator.h"

namespace tcf {
namespace {

TransportationGraph MakeTransport(uint64_t seed, size_t clusters = 4,
                                  size_t nodes = 25) {
  TransportationGraphOptions opts;
  opts.num_clusters = clusters;
  opts.nodes_per_cluster = nodes;
  opts.target_edges_per_cluster = static_cast<double>(nodes) * 4;
  Rng rng(seed);
  return GenerateTransportationGraph(opts, &rng);
}

TEST(DetermineCenters, ReturnsRequestedCount) {
  auto t = MakeTransport(1);
  CenterBasedOptions opts;
  opts.num_fragments = 4;
  auto centers = DetermineCenters(t.graph, opts);
  EXPECT_EQ(centers.size(), 4u);
  std::set<NodeId> uniq(centers.begin(), centers.end());
  EXPECT_EQ(uniq.size(), 4u);
}

TEST(DetermineCenters, PlainSelectionIsTopStatusScore) {
  auto t = MakeTransport(2);
  CenterBasedOptions opts;
  opts.num_fragments = 3;
  auto centers = DetermineCenters(t.graph, opts);
  auto top = TopStatusNodes(t.graph, 3, opts.score);
  EXPECT_EQ(centers, top);
}

TEST(DetermineCenters, DistributedCentersAreSpreadOut) {
  auto t = MakeTransport(3);
  CenterBasedOptions plain, spread;
  plain.num_fragments = spread.num_fragments = 4;
  spread.distributed_centers = true;
  auto c_plain = DetermineCenters(t.graph, plain);
  auto c_spread = DetermineCenters(t.graph, spread);
  auto min_pair_dist = [&](const std::vector<NodeId>& cs) {
    double best = kInfinity;
    for (size_t i = 0; i < cs.size(); ++i) {
      for (size_t j = i + 1; j < cs.size(); ++j) {
        best = std::min(best, Distance(t.graph.coordinate(cs[i]),
                                       t.graph.coordinate(cs[j])));
      }
    }
    return best;
  };
  EXPECT_GE(min_pair_dist(c_spread), min_pair_dist(c_plain));
}

TEST(DetermineCenters, DistributedCentersHitEveryCluster) {
  // With 4 well-separated clusters and 4 spread centers, each cluster
  // should receive exactly one center.
  auto t = MakeTransport(4);
  CenterBasedOptions opts;
  opts.num_fragments = 4;
  opts.distributed_centers = true;
  auto centers = DetermineCenters(t.graph, opts);
  std::set<int> clusters;
  for (NodeId c : centers) clusters.insert(t.cluster_of_node[c]);
  EXPECT_EQ(clusters.size(), 4u);
}

TEST(CenterBased, PartitionsAllEdges) {
  auto t = MakeTransport(5);
  CenterBasedOptions opts;
  opts.num_fragments = 4;
  Fragmentation f = CenterBasedFragmentation(t.graph, opts);
  size_t total = 0;
  for (FragmentId i = 0; i < f.NumFragments(); ++i) {
    total += f.FragmentEdges(i).size();
  }
  EXPECT_EQ(total, t.graph.NumEdges());
}

TEST(CenterBased, FragmentCountIsPredetermined) {
  // "the number of fragments is predetermined with the center-based
  // approach" (Sec. 4.2.1).
  auto t = MakeTransport(6);
  for (size_t nf : {2, 3, 4, 6}) {
    CenterBasedOptions opts;
    opts.num_fragments = nf;
    Fragmentation f = CenterBasedFragmentation(t.graph, opts);
    EXPECT_EQ(f.NumFragments(), nf);
  }
}

TEST(CenterBased, SingleFragmentDegenerate) {
  auto t = MakeTransport(7, 2, 10);
  CenterBasedOptions opts;
  opts.num_fragments = 1;
  Fragmentation f = CenterBasedFragmentation(t.graph, opts);
  EXPECT_EQ(f.NumFragments(), 1u);
  EXPECT_EQ(f.FragmentEdges(0).size(), t.graph.NumEdges());
}

TEST(CenterBased, HandlesDisconnectedGraph) {
  // Two islands; 2 centers land wherever the score says — leftovers must
  // still be assigned.
  GraphBuilder b(8);
  b.AddSymmetricEdge(0, 1);
  b.AddSymmetricEdge(1, 2);
  b.AddSymmetricEdge(4, 5);
  b.AddSymmetricEdge(5, 6);
  b.AddSymmetricEdge(6, 7);
  Graph g = b.Build();
  CenterBasedOptions opts;
  opts.num_fragments = 2;
  Fragmentation f = CenterBasedFragmentation(g, opts);
  size_t total = 0;
  for (FragmentId i = 0; i < f.NumFragments(); ++i) {
    total += f.FragmentEdges(i).size();
  }
  EXPECT_EQ(total, g.NumEdges());
}

TEST(CenterBased, GrowthVariantsBothCoverGraph) {
  auto t = MakeTransport(8);
  for (auto growth : {CenterBasedOptions::Growth::kRoundRobin,
                      CenterBasedOptions::Growth::kSmallestFirst}) {
    CenterBasedOptions opts;
    opts.num_fragments = 4;
    opts.growth = growth;
    Fragmentation f = CenterBasedFragmentation(t.graph, opts);
    auto c = ComputeCharacteristics(f);
    EXPECT_EQ(c.num_fragments, 4u);
    EXPECT_GT(c.avg_fragment_edges, 0.0);
  }
}

TEST(CenterBased, SmallestFirstBalancesSizes) {
  auto t = MakeTransport(9);
  CenterBasedOptions opts;
  opts.num_fragments = 4;
  opts.growth = CenterBasedOptions::Growth::kSmallestFirst;
  opts.distributed_centers = true;
  Fragmentation f = CenterBasedFragmentation(t.graph, opts);
  auto c = ComputeCharacteristics(f);
  // Balanced workload goal: deviation well below the mean.
  EXPECT_LT(c.dev_fragment_edges, 0.5 * c.avg_fragment_edges);
}

TEST(CenterBased, Table2Effect_DistributedCentersShrinkDsAndDeviation) {
  // The paper's Table 2: distributed centers dramatically improve DS
  // (69.5 -> 4.3) and ΔF (636.3 -> 12.4) on 4x150 transportation graphs.
  // We verify the direction of both effects on (smaller) graphs, averaged
  // over seeds to avoid single-draw flukes.
  double ds_plain = 0, ds_spread = 0, df_plain = 0, df_spread = 0;
  const int trials = 5;
  for (int i = 0; i < trials; ++i) {
    auto t = MakeTransport(100 + static_cast<uint64_t>(i), 4, 40);
    CenterBasedOptions plain, spread;
    plain.num_fragments = spread.num_fragments = 4;
    spread.distributed_centers = true;
    auto cp = ComputeCharacteristics(CenterBasedFragmentation(t.graph, plain));
    auto cs = ComputeCharacteristics(CenterBasedFragmentation(t.graph, spread));
    ds_plain += cp.avg_ds_nodes;
    ds_spread += cs.avg_ds_nodes;
    df_plain += cp.dev_fragment_edges;
    df_spread += cs.dev_fragment_edges;
  }
  EXPECT_LE(ds_spread, ds_plain);
  EXPECT_LE(df_spread, df_plain);
}

TEST(CenterBased, DistributedCentersRecoverClusters) {
  // On a transportation graph the intended fragmentation is the cluster
  // structure; distributed centers + round robin should land close to it:
  // most nodes share a fragment with most of their cluster.
  auto t = MakeTransport(10);
  CenterBasedOptions opts;
  opts.num_fragments = 4;
  opts.distributed_centers = true;
  Fragmentation f = CenterBasedFragmentation(t.graph, opts);
  // Count edges whose two endpoints are in the same cluster but whose
  // fragment differs from the majority fragment of that cluster.
  size_t aligned = 0, total = 0;
  for (FragmentId i = 0; i < f.NumFragments(); ++i) {
    std::vector<size_t> per_cluster(4, 0);
    for (EdgeId e : f.FragmentEdges(i)) {
      const int c = t.cluster_of_node[t.graph.edge(e).src];
      per_cluster[static_cast<size_t>(c)]++;
    }
    aligned += *std::max_element(per_cluster.begin(), per_cluster.end());
    total += f.FragmentEdges(i).size();
  }
  EXPECT_GT(static_cast<double>(aligned) / static_cast<double>(total), 0.8);
}

// Sweep: structural invariants across seeds and both growth variants.
struct CbParam {
  uint64_t seed;
  CenterBasedOptions::Growth growth;
  bool distributed;
};

class CenterBasedSweep : public ::testing::TestWithParam<CbParam> {};

TEST_P(CenterBasedSweep, ValidFragmentation) {
  const CbParam p = GetParam();
  auto t = MakeTransport(p.seed);
  CenterBasedOptions opts;
  opts.num_fragments = 4;
  opts.growth = p.growth;
  opts.distributed_centers = p.distributed;
  Fragmentation f = CenterBasedFragmentation(t.graph, opts);
  EXPECT_EQ(f.NumFragments(), 4u);
  size_t total = 0;
  for (FragmentId i = 0; i < f.NumFragments(); ++i) {
    EXPECT_FALSE(f.FragmentEdges(i).empty());
    total += f.FragmentEdges(i).size();
  }
  EXPECT_EQ(total, t.graph.NumEdges());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CenterBasedSweep,
    ::testing::Values(
        CbParam{11, CenterBasedOptions::Growth::kRoundRobin, false},
        CbParam{12, CenterBasedOptions::Growth::kRoundRobin, true},
        CbParam{13, CenterBasedOptions::Growth::kSmallestFirst, false},
        CbParam{14, CenterBasedOptions::Growth::kSmallestFirst, true},
        CbParam{15, CenterBasedOptions::Growth::kRoundRobin, true},
        CbParam{16, CenterBasedOptions::Growth::kSmallestFirst, true},
        CbParam{17, CenterBasedOptions::Growth::kRoundRobin, false},
        CbParam{18, CenterBasedOptions::Growth::kSmallestFirst, false}));

}  // namespace
}  // namespace tcf
