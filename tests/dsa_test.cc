// Fast tests for the disconnection set approach substrate: complementary
// information, chain finding, the plan cache, local queries (all engines),
// the executor, and a small sweep of the central invariant — DsaDatabase
// answers equal the whole-graph Dijkstra oracle. The full fragmenter ×
// engine sweep on larger graphs lives in dsa_heavy_test.cc.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "dsa/chains.h"
#include "dsa/complementary.h"
#include "dsa/local_query.h"
#include "dsa/query_api.h"
#include "dsa_sweep.h"
#include "graph/builder.h"

namespace tcf {
namespace {

using dsa_sweep::ExpectMatchesOracle;
using dsa_sweep::Fragmenter;
using dsa_sweep::MakeFragmentation;
using dsa_sweep::MakeTransport;

/// A hand-built 3-fragment chain: clusters {0,1,2}, {2,3,4}, {4,5,6} with
/// border nodes 2 and 4 and distinct weights so shortest paths are unique.
struct ChainFixture {
  ChainFixture() {
    GraphBuilder b(7);
    b.AddSymmetricEdge(0, 1, 1.0);
    b.AddSymmetricEdge(1, 2, 2.0);
    b.AddSymmetricEdge(0, 2, 4.0);
    b.AddSymmetricEdge(2, 3, 1.0);
    b.AddSymmetricEdge(3, 4, 1.0);
    b.AddSymmetricEdge(2, 4, 3.0);
    b.AddSymmetricEdge(4, 5, 2.0);
    b.AddSymmetricEdge(5, 6, 1.0);
    b.AddSymmetricEdge(4, 6, 5.0);
    graph = b.Build();
    std::vector<FragmentId> owner(18);
    for (EdgeId e = 0; e < 18; ++e) owner[e] = e / 6;
    frag = std::make_unique<Fragmentation>(&graph, owner, 3);
  }
  Graph graph;
  std::unique_ptr<Fragmentation> frag;
};

// ----------------------------------------------------------- Complementary

TEST(Complementary, ShortcutsAreGlobalShortestPaths) {
  ChainFixture fx;
  ComplementaryInfo info = PrecomputeComplementary(*fx.frag);
  ASSERT_EQ(info.shortcuts.size(), 3u);
  // Fragment 1's border nodes are {2, 4}; its shortcut (2,4) must equal the
  // *global* shortest distance 2 (2-3-4), not the direct 3.0 edge.
  const Relation& mid = info.ForFragment(1);
  EXPECT_DOUBLE_EQ(mid.BestCost(2, 4), 2.0);
  EXPECT_DOUBLE_EQ(mid.BestCost(4, 2), 2.0);
}

TEST(Complementary, StoredAtBothAdjacentSites) {
  ChainFixture fx;
  ComplementaryInfo info = PrecomputeComplementary(*fx.frag);
  // DS(0,1) = {2}: a singleton border produces no pair at fragment 0, but
  // fragment 1 (borders {2,4}) and its neighbor fragment 2 (borders {4})
  // see their shared node's info. Check the symmetric pair storage:
  // border pair (2,4) belongs to fragment 1 only; fragments 0 and 2 have
  // single-node borders and hence empty shortcut relations.
  EXPECT_TRUE(info.ForFragment(0).empty());
  EXPECT_FALSE(info.ForFragment(1).empty());
  EXPECT_TRUE(info.ForFragment(2).empty());
  EXPECT_EQ(info.searches, 2u);  // border nodes 2 and 4
}

TEST(Complementary, CountsTuples) {
  ChainFixture fx;
  ComplementaryInfo info = PrecomputeComplementary(*fx.frag);
  EXPECT_EQ(info.total_tuples, 2u);  // (2,4) and (4,2) at fragment 1
}

TEST(Complementary, TransportationGraphBordersOnly) {
  auto t = MakeTransport(1);
  LinearOptions lopts;
  lopts.num_fragments = 4;
  auto lin = LinearFragmentation(t.graph, lopts);
  ComplementaryInfo info = PrecomputeComplementary(lin.fragmentation);
  for (FragmentId f = 0; f < lin.fragmentation.NumFragments(); ++f) {
    std::set<NodeId> border(lin.fragmentation.BorderNodes(f).begin(),
                            lin.fragmentation.BorderNodes(f).end());
    for (const PathTuple& tup : info.ForFragment(f).tuples()) {
      EXPECT_TRUE(border.count(tup.src));
      EXPECT_TRUE(border.count(tup.dst));
    }
  }
}

// ------------------------------------------------------------------ Chains

TEST(Chains, TrivialSameFragment) {
  ChainFixture fx;
  auto chains = FindChains(*fx.frag, 1, 1);
  ASSERT_EQ(chains.size(), 1u);
  EXPECT_EQ(chains[0], (FragmentChain{1}));
}

TEST(Chains, UniqueChainOnPath) {
  ChainFixture fx;
  auto chains = FindChains(*fx.frag, 0, 2);
  ASSERT_EQ(chains.size(), 1u);
  EXPECT_EQ(chains[0], (FragmentChain{0, 1, 2}));
}

TEST(Chains, MultipleChainsOnCycle) {
  // Triangle of fragments: two chains between any two of them.
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(2, 0);
  Graph g = b.Build();
  Fragmentation f(&g, {0, 1, 2}, 3);
  auto chains = FindChains(f, 0, 1);
  ASSERT_EQ(chains.size(), 2u);
  EXPECT_EQ(chains[0].size(), 2u);  // direct, shortest first
  EXPECT_EQ(chains[1].size(), 3u);  // around
}

TEST(Chains, MaxChainsCap) {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(2, 0);
  Graph g = b.Build();
  Fragmentation f(&g, {0, 1, 2}, 3);
  auto chains = FindChains(f, 0, 1, /*max_chains=*/1);
  EXPECT_EQ(chains.size(), 1u);
}

TEST(Chains, NoChainAcrossDisconnectedFragments) {
  GraphBuilder b(4);
  b.AddEdge(0, 1);
  b.AddEdge(2, 3);
  Graph g = b.Build();
  Fragmentation f(&g, {0, 1}, 2);
  EXPECT_TRUE(FindChains(f, 0, 1).empty());
}

// ------------------------------------------------------------- LocalQuery

TEST(LocalQuery, EnginesAgree) {
  ChainFixture fx;
  ComplementaryInfo info = PrecomputeComplementary(*fx.frag);
  LocalQuerySpec spec;
  spec.fragment = 1;
  spec.sources = {2};
  spec.targets = {4};
  auto dij = RunLocalQuery(*fx.frag, &info, spec, LocalEngine::kDijkstra);
  auto semi = RunLocalQuery(*fx.frag, &info, spec, LocalEngine::kSemiNaive);
  auto smart = RunLocalQuery(*fx.frag, &info, spec, LocalEngine::kSmart);
  EXPECT_DOUBLE_EQ(dij.paths.BestCost(2, 4), 2.0);
  EXPECT_DOUBLE_EQ(semi.paths.BestCost(2, 4), 2.0);
  EXPECT_DOUBLE_EQ(smart.paths.BestCost(2, 4), 2.0);
}

TEST(LocalQuery, WithoutComplementaryUsesOnlyFragmentEdges) {
  ChainFixture fx;
  LocalQuerySpec spec;
  spec.fragment = 1;
  spec.sources = {2};
  spec.targets = {4};
  auto result = RunLocalQuery(*fx.frag, nullptr, spec);
  EXPECT_DOUBLE_EQ(result.paths.BestCost(2, 4), 2.0);  // 2-3-4 inside frag
}

TEST(LocalQuery, PassThroughTupleForSharedSourceTarget) {
  ChainFixture fx;
  LocalQuerySpec spec;
  spec.fragment = 1;
  spec.sources = {2, 4};
  spec.targets = {4};
  auto result = RunLocalQuery(*fx.frag, nullptr, spec);
  EXPECT_DOUBLE_EQ(result.paths.BestCost(4, 4), 0.0);
}

TEST(LocalQuery, KeyholeSelectivityReducesWork) {
  // Sec. 2.2: the disconnection sets act as a keyhole; restricting sources
  // must shrink the semi-naive workload versus the unrestricted closure.
  auto t = MakeTransport(2);
  CenterBasedOptions copts;
  copts.num_fragments = 4;
  copts.distributed_centers = true;
  Fragmentation frag = CenterBasedFragmentation(t.graph, copts);

  Relation base = Relation::FromGraph(frag.FragmentSubgraph(0));
  TcStats full_stats;
  TransitiveClosure(base, {}, &full_stats);

  const auto& borders = frag.BorderNodes(0);
  if (borders.empty()) GTEST_SKIP() << "fragment 0 has no border";
  TcOptions restricted;
  restricted.sources = NodeSet(borders.begin(), borders.end());
  TcStats keyhole_stats;
  TransitiveClosure(base, restricted, &keyhole_stats);

  EXPECT_LT(keyhole_stats.join_tuples, full_stats.join_tuples);
}

// ----------------------------------------------------------- DsaDatabase

TEST(DsaDatabase, ChainFixtureEndToEnd) {
  ChainFixture fx;
  DsaDatabase db(fx.frag.get());
  auto oracle = Dijkstra(fx.graph, 0);
  for (NodeId t = 0; t < 7; ++t) {
    auto answer = db.ShortestPath(0, t);
    EXPECT_DOUBLE_EQ(answer.cost, t == 0 ? 0.0 : oracle.distance[t])
        << "0 -> " << t;
  }
}

TEST(DsaDatabase, SameFragmentQueryInvolvesOneSite) {
  ChainFixture fx;
  DsaDatabase db(fx.frag.get());
  ExecutionReport report;
  auto answer = db.ShortestPath(0, 1, &report);
  EXPECT_DOUBLE_EQ(answer.cost, 1.0);
  EXPECT_EQ(answer.fragments_involved, (std::vector<FragmentId>{0}));
}

TEST(DsaDatabase, CrossChainQueryInvolvesChainSites) {
  ChainFixture fx;
  DsaDatabase db(fx.frag.get());
  ExecutionReport report;
  auto answer = db.ShortestPath(0, 6, &report);
  EXPECT_TRUE(answer.connected);
  EXPECT_EQ(answer.fragments_involved, (std::vector<FragmentId>{0, 1, 2}));
  EXPECT_EQ(report.sites.size(), 3u);
  // 0-1(1) 1-2(2) 2-3(1) 3-4(1) 4-5(2) 5-6(1) = 8.
  EXPECT_DOUBLE_EQ(answer.cost, 8.0);
}

TEST(DsaDatabase, DisconnectedReturnsUnconnected) {
  GraphBuilder b(4);
  b.AddSymmetricEdge(0, 1);
  b.AddSymmetricEdge(2, 3);
  Graph g = b.Build();
  Fragmentation f(&g, {0, 0, 1, 1}, 2);
  DsaDatabase db(&f);
  auto answer = db.ShortestPath(0, 3);
  EXPECT_FALSE(answer.connected);
  EXPECT_EQ(answer.cost, kInfinity);
  EXPECT_FALSE(db.IsConnected(0, 3));
  EXPECT_TRUE(db.IsConnected(0, 1));
}

TEST(DsaDatabase, SelfQueryIsZero) {
  ChainFixture fx;
  DsaDatabase db(fx.frag.get());
  auto answer = db.ShortestPath(3, 3);
  EXPECT_TRUE(answer.connected);
  EXPECT_DOUBLE_EQ(answer.cost, 0.0);
}

TEST(DsaDatabase, BorderNodeEndpoints) {
  ChainFixture fx;
  DsaDatabase db(fx.frag.get());
  auto oracle = Dijkstra(fx.graph, 2);
  for (NodeId t = 0; t < 7; ++t) {
    if (t == 2) continue;
    EXPECT_DOUBLE_EQ(db.ShortestPath(2, t).cost, oracle.distance[t]);
  }
}

TEST(DsaDatabase, ReportAccountsPhases) {
  ChainFixture fx;
  DsaDatabase db(fx.frag.get());
  ExecutionReport report;
  db.ShortestPath(0, 6, &report);
  EXPECT_GT(report.communication_tuples, 0u);
  EXPECT_GE(report.phase1_cpu_seconds, report.SlowestSiteSeconds());
  EXPECT_GE(report.SlowestSiteSeconds(), 0.0);
  EXPECT_EQ(report.sites.size(), 3u);
}

TEST(DsaDatabase, WithoutComplementaryOverestimatesSideBranchDetours) {
  // Footnote 3's reason to precompute *global* border-to-border paths:
  // the optimal route between two fragment-0 nodes detours through a
  // side-branch fragment that no chain from source to target visits.
  //
  //   fragment 0: 0 -1-> 1 -10-> 2 -1-> 3
  //   fragment 1: 1 -1-> 4 -1-> 2      (shortcut between borders 1 and 2)
  GraphBuilder b(5);
  b.AddSymmetricEdge(0, 1, 1.0);   // fragment 0
  b.AddSymmetricEdge(1, 2, 10.0);  // fragment 0
  b.AddSymmetricEdge(2, 3, 1.0);   // fragment 0
  b.AddSymmetricEdge(1, 4, 1.0);   // fragment 1
  b.AddSymmetricEdge(4, 2, 1.0);   // fragment 1
  Graph g = b.Build();
  Fragmentation f(&g, {0, 0, 0, 0, 0, 0, 1, 1, 1, 1}, 2);
  ASSERT_FALSE(f.IsBorderNode(0));
  ASSERT_FALSE(f.IsBorderNode(3));

  DsaOptions with, without;
  without.use_complementary = false;
  DsaDatabase db_with(&f, with);
  DsaDatabase db_without(&f, without);

  // Oracle: 0-1 (1) + 1-4-2 (2) + 2-3 (1) = 4.
  EXPECT_DOUBLE_EQ(Dijkstra(g, 0).distance[3], 4.0);
  EXPECT_DOUBLE_EQ(db_with.ShortestPath(0, 3).cost, 4.0);
  // Both endpoints live only in fragment 0, so the only chain is {0} and
  // without the shortcut relation the detour is invisible.
  EXPECT_DOUBLE_EQ(db_without.ShortestPath(0, 3).cost, 12.0);
}


// ------------------------------------------------------- ChainPlanCache

TEST(ChainPlanCache, CachesByFragmentPair) {
  ChainFixture fx;
  ChainPlanCache cache(16);
  auto first = cache.ChainsBetween(*fx.frag, 0, 2, 64);
  ASSERT_EQ(first->size(), 1u);
  EXPECT_EQ(first->front(), (FragmentChain{0, 1, 2}));

  bool was_hit = false;
  auto second = cache.ChainsBetween(*fx.frag, 0, 2, 64, &was_hit);
  EXPECT_TRUE(was_hit);
  EXPECT_EQ(first.get(), second.get());  // same shared entry

  const LruCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ChainPlanCache, DirectionMatters) {
  ChainFixture fx;
  ChainPlanCache cache(16);
  auto forward = cache.ChainsBetween(*fx.frag, 0, 2, 64);
  bool was_hit = true;
  auto backward = cache.ChainsBetween(*fx.frag, 2, 0, 64, &was_hit);
  EXPECT_FALSE(was_hit);  // (2, 0) is a distinct key
  EXPECT_EQ(forward->front(), (FragmentChain{0, 1, 2}));
  EXPECT_EQ(backward->front(), (FragmentChain{2, 1, 0}));
}

TEST(ChainPlanCache, EvictsLeastRecentlyUsed) {
  ChainFixture fx;
  ChainPlanCache cache(2);
  cache.ChainsBetween(*fx.frag, 0, 1, 64);
  cache.ChainsBetween(*fx.frag, 1, 2, 64);
  cache.ChainsBetween(*fx.frag, 0, 2, 64);  // evicts (0, 1)
  bool was_hit = true;
  cache.ChainsBetween(*fx.frag, 0, 1, 64, &was_hit);
  EXPECT_FALSE(was_hit);
  EXPECT_EQ(cache.Stats().evictions, 2u);
}

TEST(ChainPlanCache, DsaDatabaseWiresCacheIntoQueries) {
  ChainFixture fx;
  DsaDatabase db(fx.frag.get());
  ASSERT_NE(db.plan_cache(), nullptr);
  db.ShortestPath(0, 6);
  const LruCacheStats cold = db.plan_cache()->Stats();
  EXPECT_GT(cold.misses, 0u);
  db.ShortestPath(1, 5);  // same fragment pair -> served from cache
  const LruCacheStats warm = db.plan_cache()->Stats();
  EXPECT_GT(warm.hits, cold.hits);
  EXPECT_EQ(warm.misses, cold.misses);
}

TEST(ChainPlanCache, DisabledByZeroCapacity) {
  ChainFixture fx;
  DsaOptions opts;
  opts.plan_cache_capacity = 0;
  DsaDatabase db(fx.frag.get(), opts);
  EXPECT_EQ(db.plan_cache(), nullptr);
  EXPECT_DOUBLE_EQ(db.ShortestPath(0, 6).cost, 8.0);  // still answers
}

// ---- Central property: DSA == oracle. Small fast sweep here; the full
// ---- fragmenter x engine grid on larger graphs is dsa_heavy_test.cc.

struct LiteParam {
  uint64_t seed;
  Fragmenter fragmenter;
  LocalEngine engine;
};

class DsaOracleSweepLite : public ::testing::TestWithParam<LiteParam> {};

TEST_P(DsaOracleSweepLite, MatchesDijkstraOracle) {
  const LiteParam p = GetParam();
  auto t = MakeTransport(p.seed, /*clusters=*/3, /*nodes=*/8);
  Fragmentation frag = MakeFragmentation(t.graph, p.fragmenter, p.seed);
  ExpectMatchesOracle(t.graph, frag, p.engine, p.seed);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DsaOracleSweepLite,
    ::testing::Values(
        LiteParam{1, Fragmenter::kCenter, LocalEngine::kDijkstra},
        LiteParam{2, Fragmenter::kCenterDistributed, LocalEngine::kSmart},
        LiteParam{3, Fragmenter::kBondEnergy, LocalEngine::kSemiNaive},
        LiteParam{4, Fragmenter::kLinear, LocalEngine::kDijkstra},
        LiteParam{5, Fragmenter::kRandom, LocalEngine::kSemiNaive},
        LiteParam{6, Fragmenter::kRandom, LocalEngine::kDijkstra}));

}  // namespace
}  // namespace tcf
