// Unit tests for the graph substrate: builder/CSR, traversals, shortest
// paths, components, diameter, I/O, status score, vertex cuts.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>

#include "graph/algorithms.h"
#include "graph/builder.h"
#include "graph/graph.h"
#include "graph/io.h"
#include "graph/min_cut.h"
#include "graph/status_score.h"

namespace tcf {
namespace {

/// Path graph 0 - 1 - 2 - ... - (n-1), symmetric, unit weights.
Graph PathGraph(size_t n) {
  GraphBuilder b(n);
  for (NodeId v = 0; v + 1 < n; ++v) b.AddSymmetricEdge(v, v + 1);
  return b.Build();
}

/// Two triangles joined by a single bridge node 2=3 edge.
Graph BarbellGraph() {
  GraphBuilder b(6);
  b.AddSymmetricEdge(0, 1);
  b.AddSymmetricEdge(1, 2);
  b.AddSymmetricEdge(0, 2);
  b.AddSymmetricEdge(2, 3);  // bridge
  b.AddSymmetricEdge(3, 4);
  b.AddSymmetricEdge(4, 5);
  b.AddSymmetricEdge(3, 5);
  return b.Build();
}

// ---------------------------------------------------------------- Builder

TEST(GraphBuilder, EmptyGraph) {
  GraphBuilder b;
  Graph g = b.Build();
  EXPECT_EQ(g.NumNodes(), 0u);
  EXPECT_EQ(g.NumEdges(), 0u);
}

TEST(GraphBuilder, ImplicitNodeCreation) {
  GraphBuilder b;
  b.AddEdge(2, 5);
  Graph g = b.Build();
  EXPECT_EQ(g.NumNodes(), 6u);
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_FALSE(g.has_coordinates());
}

TEST(GraphBuilder, CoordinatesKeptWhenComplete) {
  GraphBuilder b;
  NodeId a = b.AddNode({0.0, 0.0});
  NodeId c = b.AddNode({3.0, 4.0});
  b.AddEdge(a, c, 5.0);
  Graph g = b.Build();
  ASSERT_TRUE(g.has_coordinates());
  EXPECT_DOUBLE_EQ(g.coordinate(c).x, 3.0);
  EXPECT_DOUBLE_EQ(Distance(g.coordinate(a), g.coordinate(c)), 5.0);
}

TEST(GraphBuilder, CoordinatesDroppedWhenPartial) {
  GraphBuilder b;
  b.AddNode({0.0, 0.0});
  b.AddEdge(0, 3);  // creates coordinate-less nodes
  Graph g = b.Build();
  EXPECT_FALSE(g.has_coordinates());
}

TEST(GraphBuilder, DeduplicateKeepsSmallestWeight) {
  GraphBuilder b(2);
  b.AddEdge(0, 1, 5.0);
  b.AddEdge(0, 1, 2.0);
  b.AddEdge(1, 0, 7.0);
  b.DeduplicateEdges();
  Graph g = b.Build();
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_DOUBLE_EQ(g.OutEdges(0)[0].weight, 2.0);
}

TEST(Graph, CsrAdjacencyMatchesEdges) {
  GraphBuilder b(4);
  b.AddEdge(0, 1, 1.0);
  b.AddEdge(0, 2, 2.0);
  b.AddEdge(3, 0, 3.0);
  Graph g = b.Build();
  EXPECT_EQ(g.OutDegree(0), 2u);
  EXPECT_EQ(g.InDegree(0), 1u);
  EXPECT_EQ(g.Grade(0), 3u);
  EXPECT_EQ(g.OutDegree(3), 1u);
  EXPECT_EQ(g.InEdges(1)[0].src, 0u);
  // Edge ids in CSR refer back to the edge list.
  for (const OutEdge& oe : g.OutEdges(0)) {
    EXPECT_EQ(g.edge(oe.id).src, 0u);
    EXPECT_EQ(g.edge(oe.id).dst, oe.dst);
  }
}

TEST(Graph, UndirectedNeighborsDeduplicated) {
  GraphBuilder b(3);
  b.AddSymmetricEdge(0, 1);  // both directions -> one neighbor
  b.AddEdge(2, 0);
  Graph g = b.Build();
  auto n0 = g.UndirectedNeighbors(0);
  EXPECT_EQ(n0.size(), 2u);
  EXPECT_EQ(n0[0], 1u);
  EXPECT_EQ(n0[1], 2u);
  EXPECT_EQ(g.UndirectedDegree(1), 1u);
}

TEST(Graph, IsSymmetricDetectsBothCases) {
  EXPECT_TRUE(PathGraph(4).IsSymmetric());
  GraphBuilder b(2);
  b.AddEdge(0, 1);
  EXPECT_FALSE(b.Build().IsSymmetric());
}

// ---------------------------------------------------------------- BFS

TEST(BfsHops, PathGraphDistances) {
  Graph g = PathGraph(5);
  auto dist = BfsHops(g, 0);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(dist[i], i);
}

TEST(BfsHops, RespectsDirection) {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  Graph g = b.Build();
  auto fwd = BfsHops(g, 0, Direction::kForward);
  EXPECT_EQ(fwd[2], 2);
  auto bwd = BfsHops(g, 0, Direction::kBackward);
  EXPECT_EQ(bwd[2], -1);
  auto und = BfsHops(g, 2, Direction::kUndirected);
  EXPECT_EQ(und[0], 2);
}

TEST(BfsHops, UnreachableIsMinusOne) {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  Graph g = b.Build();
  EXPECT_EQ(BfsHops(g, 0)[2], -1);
}

// ---------------------------------------------------------------- Dijkstra

TEST(Dijkstra, PicksCheaperLongerRoute) {
  GraphBuilder b(4);
  b.AddEdge(0, 3, 10.0);
  b.AddEdge(0, 1, 1.0);
  b.AddEdge(1, 2, 1.0);
  b.AddEdge(2, 3, 1.0);
  Graph g = b.Build();
  auto sp = Dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(sp.distance[3], 3.0);
  EXPECT_EQ(sp.PathTo(3), (std::vector<NodeId>{0, 1, 2, 3}));
}

TEST(Dijkstra, UnreachableIsInfinity) {
  GraphBuilder b(3);
  b.AddEdge(0, 1, 1.0);
  Graph g = b.Build();
  auto sp = Dijkstra(g, 0);
  EXPECT_EQ(sp.distance[2], kInfinity);
  EXPECT_TRUE(sp.PathTo(2).empty());
}

TEST(Dijkstra, AgreesWithFloydWarshall) {
  // Deterministic small weighted digraph.
  GraphBuilder b(7);
  const int edges[][3] = {{0, 1, 3}, {1, 2, 1}, {2, 0, 2}, {2, 3, 7},
                          {3, 4, 1}, {4, 5, 2}, {5, 3, 1}, {1, 4, 9},
                          {0, 6, 4}, {6, 5, 1}};
  for (auto& e : edges) {
    b.AddEdge(static_cast<NodeId>(e[0]), static_cast<NodeId>(e[1]),
              static_cast<Weight>(e[2]));
  }
  Graph g = b.Build();
  auto fw = FloydWarshall(g);
  for (NodeId s = 0; s < 7; ++s) {
    auto sp = Dijkstra(g, s);
    for (NodeId t = 0; t < 7; ++t) {
      EXPECT_DOUBLE_EQ(sp.distance[t], fw[s][t]) << s << "->" << t;
    }
  }
}

TEST(Dijkstra, BackwardEqualsForwardOnReversedGraph) {
  GraphBuilder b(4);
  b.AddEdge(0, 1, 2.0);
  b.AddEdge(1, 2, 3.0);
  b.AddEdge(2, 3, 4.0);
  Graph g = b.Build();
  auto bwd = Dijkstra(g, 3, Direction::kBackward);
  EXPECT_DOUBLE_EQ(bwd.distance[0], 9.0);
}

// ---------------------------------------------------------------- Components

TEST(Components, CountsIslands) {
  GraphBuilder b(6);
  b.AddEdge(0, 1);
  b.AddEdge(2, 3);
  Graph g = b.Build();
  auto c = WeaklyConnectedComponents(g);
  EXPECT_EQ(c.count, 4);  // {0,1} {2,3} {4} {5}
  EXPECT_EQ(c.component[0], c.component[1]);
  EXPECT_NE(c.component[1], c.component[2]);
}

TEST(Components, DirectionIgnored) {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  b.AddEdge(2, 1);
  Graph g = b.Build();
  EXPECT_EQ(WeaklyConnectedComponents(g).count, 1);
}

// ---------------------------------------------------------------- Diameter

TEST(Diameter, PathGraph) {
  EXPECT_EQ(HopDiameter(PathGraph(6)), 5);
}

TEST(Diameter, IgnoresUnreachablePairs) {
  GraphBuilder b(5);
  b.AddSymmetricEdge(0, 1);
  b.AddSymmetricEdge(3, 4);
  Graph g = b.Build();
  EXPECT_EQ(HopDiameter(g), 1);
}

TEST(Eccentricity, CenterVsLeaf) {
  Graph g = PathGraph(5);
  EXPECT_EQ(Eccentricity(g, 2), 2);
  EXPECT_EQ(Eccentricity(g, 0), 4);
}

TEST(Reachable, DirectedReachability) {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  Graph g = b.Build();
  EXPECT_TRUE(Reachable(g, 0, 2));
  EXPECT_FALSE(Reachable(g, 2, 0));
  EXPECT_TRUE(Reachable(g, 1, 1));
}

// ---------------------------------------------------------------- IO

TEST(GraphIo, EdgeListRoundTripWithCoordinates) {
  GraphBuilder b;
  b.AddNode({0.25, 0.5});
  b.AddNode({1.5, 2.5});
  b.AddEdge(0, 1, 3.25);
  Graph g = b.Build();
  const std::string path =
      (std::filesystem::temp_directory_path() / "tcf_io_test.graph").string();
  ASSERT_TRUE(WriteEdgeList(g, path).ok());
  auto loaded = ReadEdgeList(path);
  ASSERT_TRUE(loaded.ok());
  const Graph& g2 = loaded.value();
  EXPECT_EQ(g2.NumNodes(), 2u);
  EXPECT_EQ(g2.NumEdges(), 1u);
  ASSERT_TRUE(g2.has_coordinates());
  EXPECT_DOUBLE_EQ(g2.coordinate(0).x, 0.25);
  EXPECT_DOUBLE_EQ(g2.edge(0).weight, 3.25);
  std::remove(path.c_str());
}

TEST(GraphIo, ReadRejectsGarbage) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "tcf_io_bad.graph").string();
  FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("not-a-graph 9\n", f);
  std::fclose(f);
  auto r = ReadEdgeList(path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(GraphIo, ReadRejectsMissingFile) {
  auto r = ReadEdgeList("/nonexistent/definitely/not/here.graph");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST(GraphIo, DotExportMentionsGroups) {
  Graph g = PathGraph(3);
  const std::string path =
      (std::filesystem::temp_directory_path() / "tcf_io_test.dot").string();
  ASSERT_TRUE(WriteDot(g, path, {0, 0, 1}).ok());
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("digraph"), std::string::npos);
  EXPECT_NE(content.find("fillcolor"), std::string::npos);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------- StatusScore

TEST(StatusScore, HubOutscoresLeaf) {
  // Star: center 0 connected to 1..5.
  GraphBuilder b(6);
  for (NodeId v = 1; v < 6; ++v) b.AddSymmetricEdge(0, v);
  Graph g = b.Build();
  auto scores = StatusScores(g);
  for (NodeId v = 1; v < 6; ++v) EXPECT_GT(scores[0], scores[v]);
  auto top = TopStatusNodes(g, 1);
  EXPECT_EQ(top[0], 0u);
}

TEST(StatusScore, AlphaZeroIsJustGrade) {
  Graph g = PathGraph(4);
  StatusScoreOptions opts;
  opts.alpha = 0.0;
  auto scores = StatusScores(g, opts);
  EXPECT_DOUBLE_EQ(scores[0], 2.0);  // one symmetric edge = grade 2
  EXPECT_DOUBLE_EQ(scores[1], 4.0);
}

TEST(StatusScore, DeeperHorizonSeesMore) {
  Graph g = PathGraph(8);
  StatusScoreOptions shallow{0.5, 1};
  StatusScoreOptions deep{0.5, 3};
  EXPECT_LT(StatusScores(g, shallow)[0], StatusScores(g, deep)[0]);
}

TEST(StatusScore, PaperFormulaOnStar) {
  // Star with center 0 and leaves 1..3 (symmetric): grade(0) = 6,
  // grade(leaf) = 2. score(0) = 6 + a * (2+2+2) = 6 + 3.
  GraphBuilder b(4);
  for (NodeId v = 1; v < 4; ++v) b.AddSymmetricEdge(0, v);
  Graph g = b.Build();
  StatusScoreOptions opts{0.5, 3};
  auto scores = StatusScores(g, opts);
  EXPECT_DOUBLE_EQ(scores[0], 6.0 + 0.5 * 6.0);
  // score(leaf) = 2 + a*6 + a^2*(2+2) = 2 + 3 + 1 = 6.
  EXPECT_DOUBLE_EQ(scores[1], 6.0);
}

TEST(TopStatusNodes, DeterministicTieBreak) {
  Graph g = PathGraph(4);  // nodes 1 and 2 symmetric
  auto top = TopStatusNodes(g, 2);
  EXPECT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], 1u);  // tie broken by id
  EXPECT_EQ(top[1], 2u);
}

// ---------------------------------------------------------------- MinCut

TEST(MinVertexCut, BridgeNodeIsTheCut) {
  // 0-1-2 path: removing 1 disconnects 0 from 2.
  Graph g = PathGraph(3);
  VertexCut cut = MinVertexCut(g, 0, 2);
  EXPECT_EQ(cut.size, 1);
  ASSERT_EQ(cut.nodes.size(), 1u);
  EXPECT_EQ(cut.nodes[0], 1u);
}

TEST(MinVertexCut, BarbellCutsAtJoint) {
  Graph g = BarbellGraph();
  VertexCut cut = MinVertexCut(g, 0, 5);
  EXPECT_EQ(cut.size, 1);
  ASSERT_EQ(cut.nodes.size(), 1u);
  // Node 2 or 3 (both are 1-cuts); the algorithm finds the s-side one.
  EXPECT_TRUE(cut.nodes[0] == 2u || cut.nodes[0] == 3u);
}

TEST(MinVertexCut, DisconnectedPairHasZeroCut) {
  GraphBuilder b(4);
  b.AddSymmetricEdge(0, 1);
  b.AddSymmetricEdge(2, 3);
  Graph g = b.Build();
  EXPECT_EQ(MinVertexCut(g, 0, 3).size, 0);
}

TEST(MinVertexCut, TwoDisjointPaths) {
  // 0 -> {1,2} -> 3: two node-disjoint routes.
  GraphBuilder b(4);
  b.AddSymmetricEdge(0, 1);
  b.AddSymmetricEdge(1, 3);
  b.AddSymmetricEdge(0, 2);
  b.AddSymmetricEdge(2, 3);
  Graph g = b.Build();
  VertexCut cut = MinVertexCut(g, 0, 3);
  EXPECT_EQ(cut.size, 2);
  EXPECT_EQ(cut.nodes.size(), 2u);
}

TEST(VertexConnectivity, PathIsOneConnected) {
  EXPECT_EQ(VertexConnectivity(PathGraph(5)), 1);
}

TEST(VertexConnectivity, CycleIsTwoConnected) {
  GraphBuilder b(5);
  for (NodeId v = 0; v < 5; ++v) b.AddSymmetricEdge(v, (v + 1) % 5);
  EXPECT_EQ(VertexConnectivity(b.Build()), 2);
}

TEST(VertexConnectivity, CompleteGraphConvention) {
  GraphBuilder b(4);
  for (NodeId u = 0; u < 4; ++u) {
    for (NodeId v = u + 1; v < 4; ++v) b.AddSymmetricEdge(u, v);
  }
  EXPECT_EQ(VertexConnectivity(b.Build()), 3);
}

}  // namespace
}  // namespace tcf
