// Codec tests for the wire protocol (net/wire.h, net/frame.h,
// net/protocol.h): primitive bounds behavior, frame-header validation,
// randomized round-trip property tests over every message type, payload
// edge cases (zero-length, maximum-size), and a deterministic frame
// fuzzer — bit flips, truncations, oversized lengths, and random garbage
// must always produce a clean Status, never a crash or an over-read
// (this suite runs under ASan/UBSan in CI, which is what turns "never
// over-reads" from a comment into a checked property).
#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "net/frame.h"
#include "net/protocol.h"
#include "net/wire.h"
#include "util/rng.h"

namespace tcf {
namespace {

// -------------------------------------------------------------- WireReader

TEST(Wire, IntegerRoundTrip) {
  WireWriter w;
  w.PutU8(0xab);
  w.PutU16(0x1234);
  w.PutU32(0xdeadbeef);
  w.PutU64(0x0123456789abcdefULL);
  w.PutF64(-1.5);
  WireReader r(w.buffer());
  uint8_t u8 = 0;
  uint16_t u16 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  double f64 = 0;
  ASSERT_TRUE(r.ReadU8(&u8));
  ASSERT_TRUE(r.ReadU16(&u16));
  ASSERT_TRUE(r.ReadU32(&u32));
  ASSERT_TRUE(r.ReadU64(&u64));
  ASSERT_TRUE(r.ReadF64(&f64));
  EXPECT_EQ(u8, 0xab);
  EXPECT_EQ(u16, 0x1234);
  EXPECT_EQ(u32, 0xdeadbeefu);
  EXPECT_EQ(u64, 0x0123456789abcdefULL);
  EXPECT_DOUBLE_EQ(f64, -1.5);
  EXPECT_TRUE(r.exhausted());
}

TEST(Wire, LittleEndianLayout) {
  WireWriter w;
  w.PutU32(0x04030201);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(static_cast<uint8_t>(w.buffer()[0]), 1);
  EXPECT_EQ(static_cast<uint8_t>(w.buffer()[3]), 4);
}

TEST(Wire, SpecialDoublesSurvive) {
  for (double v : {kInfinity, -kInfinity, 0.0, -0.0,
                   std::numeric_limits<double>::denorm_min(),
                   std::numeric_limits<double>::max()}) {
    WireWriter w;
    w.PutF64(v);
    WireReader r(w.buffer());
    double back = 0;
    ASSERT_TRUE(r.ReadF64(&back));
    EXPECT_EQ(std::memcmp(&v, &back, sizeof(v)), 0);
  }
}

TEST(Wire, ReaderNeverOverReads) {
  // Every Read* on a too-short buffer fails and consumes nothing.
  const uint8_t bytes[3] = {1, 2, 3};
  WireReader r(bytes, 3);
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  double f64 = 0;
  std::string s;
  EXPECT_FALSE(r.ReadU32(&u32));
  EXPECT_FALSE(r.ReadU64(&u64));
  EXPECT_FALSE(r.ReadF64(&f64));
  EXPECT_FALSE(r.ReadBytes(4, &s));
  EXPECT_EQ(r.remaining(), 3u);  // failures consumed nothing
  uint8_t u8 = 0;
  EXPECT_TRUE(r.ReadU8(&u8));
  uint16_t u16 = 0;
  EXPECT_TRUE(r.ReadU16(&u16));
  EXPECT_TRUE(r.exhausted());
  EXPECT_FALSE(r.ReadU8(&u8));
}

TEST(Wire, EmptyBuffer) {
  WireReader r(nullptr, 0);
  uint8_t u8 = 0;
  EXPECT_TRUE(r.exhausted());
  EXPECT_FALSE(r.ReadU8(&u8));
  std::string s;
  EXPECT_TRUE(r.ReadBytes(0, &s));  // zero bytes from nothing is fine
  EXPECT_TRUE(s.empty());
}

// ------------------------------------------------------------ frame header

TEST(Frame, HeaderRoundTrip) {
  const std::string payload = "hello";
  const std::string frame =
      EncodeFrame(MessageType::kQueryRequest, 0x1122334455667788ULL, payload);
  ASSERT_EQ(frame.size(), kFrameHeaderSize + payload.size());
  FrameHeader header;
  ASSERT_TRUE(DecodeFrameHeader(
                  reinterpret_cast<const uint8_t*>(frame.data()), frame.size(),
                  kMaxPayloadBytes, &header)
                  .ok());
  EXPECT_EQ(header.version, kProtocolVersion);
  EXPECT_EQ(header.type, MessageType::kQueryRequest);
  EXPECT_EQ(header.request_id, 0x1122334455667788ULL);
  EXPECT_EQ(header.payload_size, payload.size());
}

TEST(Frame, ZeroLengthPayload) {
  const std::string frame = EncodeFrame(MessageType::kPing, 1, "");
  ASSERT_EQ(frame.size(), kFrameHeaderSize);
  FrameHeader header;
  ASSERT_TRUE(DecodeFrameHeader(
                  reinterpret_cast<const uint8_t*>(frame.data()), frame.size(),
                  kMaxPayloadBytes, &header)
                  .ok());
  EXPECT_EQ(header.payload_size, 0u);
}

TEST(Frame, ShortBufferRejected) {
  const std::string frame = EncodeFrame(MessageType::kPing, 1, "");
  for (size_t n = 0; n < kFrameHeaderSize; ++n) {
    FrameHeader header;
    const Status s = DecodeFrameHeader(
        reinterpret_cast<const uint8_t*>(frame.data()), n, kMaxPayloadBytes,
        &header);
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << "prefix " << n;
  }
}

TEST(Frame, BadMagicRejected) {
  std::string frame = EncodeFrame(MessageType::kPing, 1, "");
  frame[0] ^= 0xff;
  FrameHeader header;
  const Status s = DecodeFrameHeader(
      reinterpret_cast<const uint8_t*>(frame.data()), frame.size(),
      kMaxPayloadBytes, &header);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(Frame, VersionMismatchRejected) {
  std::string frame = EncodeFrame(MessageType::kPing, 1, "");
  frame[4] = static_cast<char>(kProtocolVersion + 1);
  FrameHeader header;
  const Status s = DecodeFrameHeader(
      reinterpret_cast<const uint8_t*>(frame.data()), frame.size(),
      kMaxPayloadBytes, &header);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST(Frame, NonzeroFlagsRejected) {
  std::string frame = EncodeFrame(MessageType::kPing, 1, "");
  frame[6] = 1;
  FrameHeader header;
  const Status s = DecodeFrameHeader(
      reinterpret_cast<const uint8_t*>(frame.data()), frame.size(),
      kMaxPayloadBytes, &header);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(Frame, OversizedPayloadRejected) {
  std::string frame = EncodeFrame(MessageType::kPing, 1, "");
  const uint32_t huge = 1u << 30;
  std::memcpy(frame.data() + 16, &huge, sizeof(huge));
  FrameHeader header;
  const Status s = DecodeFrameHeader(
      reinterpret_cast<const uint8_t*>(frame.data()), frame.size(),
      /*max_payload=*/1 << 20, &header);
  EXPECT_EQ(s.code(), StatusCode::kOutOfRange);
}

TEST(Frame, MaxSizePayloadAccepted) {
  // A length field exactly at the cap parses (the payload itself is not
  // part of header validation).
  std::string frame = EncodeFrame(MessageType::kQueryRequest, 9, "");
  const uint32_t max = 1u << 20;
  std::memcpy(frame.data() + 16, &max, sizeof(max));
  FrameHeader header;
  ASSERT_TRUE(DecodeFrameHeader(
                  reinterpret_cast<const uint8_t*>(frame.data()), frame.size(),
                  /*max_payload=*/1 << 20, &header)
                  .ok());
  EXPECT_EQ(header.payload_size, max);
}

TEST(Frame, UnknownTypeParses) {
  // Unknown message types frame correctly — the endpoint fails the
  // request, not the connection (the type byte is data, not framing).
  std::string frame = EncodeFrame(MessageType::kPing, 1, "");
  frame[5] = static_cast<char>(0x7f);
  FrameHeader header;
  ASSERT_TRUE(DecodeFrameHeader(
                  reinterpret_cast<const uint8_t*>(frame.data()), frame.size(),
                  kMaxPayloadBytes, &header)
                  .ok());
  EXPECT_EQ(static_cast<uint8_t>(header.type), 0x7f);
}

// ------------------------------------------------- message round trips

NodeSet RandomNodeSet(Rng* rng, size_t max_size) {
  NodeSet s;
  const size_t n = rng->NextBounded(max_size + 1);
  for (size_t i = 0; i < n; ++i) {
    s.insert(static_cast<NodeId>(rng->NextBounded(1u << 20)));
  }
  return s;
}

Relation RandomRelation(Rng* rng, size_t max_size) {
  std::vector<PathTuple> tuples;
  const size_t n = rng->NextBounded(max_size + 1);
  tuples.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    PathTuple t;
    t.src = static_cast<NodeId>(rng->NextBounded(1u << 16));
    t.dst = static_cast<NodeId>(rng->NextBounded(1u << 16));
    t.cost = static_cast<double>(rng->NextBounded(1u << 20)) / 1024.0;
    tuples.push_back(t);
  }
  return Relation(std::move(tuples));
}

TEST(Protocol, QueryRequestRoundTrip) {
  Rng rng(41);
  for (int i = 0; i < 200; ++i) {
    QueryRequestMsg msg;
    msg.from = static_cast<NodeId>(rng.NextBounded(1u << 30));
    msg.to = static_cast<NodeId>(rng.NextBounded(1u << 30));
    msg.kind = static_cast<QueryKind>(rng.NextBounded(3));
    QueryRequestMsg back;
    ASSERT_TRUE(DecodeQueryRequest(EncodeQueryRequest(msg), &back).ok());
    EXPECT_EQ(back, msg);
  }
}

TEST(Protocol, QueryResponseRoundTrip) {
  for (Weight cost : {0.0, 1.25, kInfinity, 1e300}) {
    QueryResponseMsg msg{cost};
    QueryResponseMsg back;
    ASSERT_TRUE(DecodeQueryResponse(EncodeQueryResponse(msg), &back).ok());
    EXPECT_EQ(back, msg);
  }
}

TEST(Protocol, UpdateRequestRoundTrip) {
  Rng rng(43);
  for (int i = 0; i < 200; ++i) {
    UpdateRequestMsg msg;
    msg.update.kind = static_cast<EdgeUpdate::Kind>(rng.NextBounded(3));
    msg.update.src = static_cast<NodeId>(rng.NextBounded(1u << 20));
    msg.update.dst = static_cast<NodeId>(rng.NextBounded(1u << 20));
    msg.update.weight = static_cast<double>(rng.NextBounded(1000)) / 8.0;
    if (rng.NextBounded(2) == 1) {
      msg.update.target = static_cast<FragmentId>(rng.NextBounded(16));
    }
    UpdateRequestMsg back;
    ASSERT_TRUE(DecodeUpdateRequest(EncodeUpdateRequest(msg), &back).ok());
    EXPECT_EQ(back.update.kind, msg.update.kind);
    EXPECT_EQ(back.update.src, msg.update.src);
    EXPECT_EQ(back.update.dst, msg.update.dst);
    EXPECT_DOUBLE_EQ(back.update.weight, msg.update.weight);
    EXPECT_EQ(back.update.target, msg.update.target);
  }
}

TEST(Protocol, UpdateResponseRoundTrip) {
  for (uint64_t epoch : {0ull, 1ull, 0xffffffffffffffffull}) {
    UpdateResponseMsg back;
    ASSERT_TRUE(
        DecodeUpdateResponse(EncodeUpdateResponse({epoch}), &back).ok());
    EXPECT_EQ(back.epoch, epoch);
  }
}

TEST(Protocol, ErrorResponseRoundTrip) {
  for (StatusCode code :
       {StatusCode::kInvalidArgument, StatusCode::kOutOfRange,
        StatusCode::kFailedPrecondition, StatusCode::kInternal}) {
    ErrorResponseMsg msg;
    msg.code = code;
    msg.message = "something failed: detail #42";
    ErrorResponseMsg back;
    ASSERT_TRUE(DecodeErrorResponse(EncodeErrorResponse(msg), &back).ok());
    EXPECT_EQ(back, msg);
    EXPECT_EQ(back.ToStatus().code(), code);
  }
  // Empty message round-trips too.
  ErrorResponseMsg back;
  ASSERT_TRUE(DecodeErrorResponse(
                  EncodeErrorResponse({StatusCode::kInternal, ""}), &back)
                  .ok());
  EXPECT_TRUE(back.message.empty());
}

TEST(Protocol, SiteSubqueryRoundTrip) {
  Rng rng(47);
  for (int i = 0; i < 100; ++i) {
    SiteSubqueryMsg msg;
    msg.spec.fragment = static_cast<FragmentId>(rng.NextBounded(64));
    msg.spec.sources = RandomNodeSet(&rng, 64);
    msg.spec.targets = RandomNodeSet(&rng, 64);
    SiteSubqueryMsg back;
    ASSERT_TRUE(DecodeSiteSubquery(EncodeSiteSubquery(msg), &back).ok());
    EXPECT_EQ(back.spec.fragment, msg.spec.fragment);
    EXPECT_EQ(back.spec.sources, msg.spec.sources);
    EXPECT_EQ(back.spec.targets, msg.spec.targets);
  }
  // Empty node sets are legal (and common for border selections).
  SiteSubqueryMsg empty, back;
  empty.spec.fragment = 3;
  ASSERT_TRUE(DecodeSiteSubquery(EncodeSiteSubquery(empty), &back).ok());
  EXPECT_TRUE(back.spec.sources.empty());
  EXPECT_TRUE(back.spec.targets.empty());
}

TEST(Protocol, SiteResultRoundTrip) {
  Rng rng(53);
  for (int i = 0; i < 100; ++i) {
    SiteResultMsg msg;
    msg.fragment = static_cast<FragmentId>(rng.NextBounded(64));
    msg.paths = RandomRelation(&rng, 128);
    SiteResultMsg back;
    ASSERT_TRUE(DecodeSiteResult(EncodeSiteResult(msg), &back).ok());
    EXPECT_EQ(back.fragment, msg.fragment);
    ASSERT_EQ(back.paths.size(), msg.paths.size());
    EXPECT_EQ(back.paths.tuples(), msg.paths.tuples());
  }
}

TEST(Protocol, TrailingBytesRejected) {
  // A payload with ANY suffix after its message is malformed — a frame
  // frames exactly one message.
  const std::string query = EncodeQueryRequest({1, 2, QueryKind::kCost});
  QueryRequestMsg qm;
  EXPECT_FALSE(DecodeQueryRequest(query + "x", &qm).ok());
  const std::string update =
      EncodeUpdateRequest({EdgeUpdate::Insert(1, 2, 1.0)});
  UpdateRequestMsg um;
  EXPECT_FALSE(DecodeUpdateRequest(update + std::string(1, '\0'), &um).ok());
  SiteResultMsg site_msg;
  site_msg.fragment = 2;
  const std::string site = EncodeSiteResult(site_msg);
  SiteResultMsg sm;
  EXPECT_FALSE(DecodeSiteResult(site + "abc", &sm).ok());
}

TEST(Protocol, HostileCountsRejectedBeforeAllocation) {
  // A node-set count far beyond the bytes present must fail the decode
  // (BEFORE any reserve) rather than drive a giant allocation.
  WireWriter w;
  w.PutU32(2);           // fragment
  w.PutU32(0xffffffff);  // sources count: 4 billion...
  w.PutU32(1);           // ...backed by one entry
  SiteSubqueryMsg out;
  EXPECT_FALSE(DecodeSiteSubquery(w.buffer(), &out).ok());

  WireWriter w2;
  w2.PutU32(1);           // fragment
  w2.PutU32(0x10000000);  // tuple count nothing could back
  SiteResultMsg rout;
  EXPECT_FALSE(DecodeSiteResult(w2.buffer(), &rout).ok());
}

TEST(Protocol, BadEnumsRejected) {
  {
    WireWriter w;
    w.PutU32(1);
    w.PutU32(2);
    w.PutU8(17);  // no such QueryKind
    QueryRequestMsg out;
    EXPECT_FALSE(DecodeQueryRequest(w.buffer(), &out).ok());
  }
  {
    std::string enc = EncodeUpdateRequest({EdgeUpdate::Insert(1, 2, 1.0)});
    enc[0] = 9;  // no such EdgeUpdate::Kind
    UpdateRequestMsg out;
    EXPECT_FALSE(DecodeUpdateRequest(enc, &out).ok());
  }
  {
    // Unknown error code degrades to kInternal but still decodes.
    WireWriter w;
    w.PutU8(250);
    w.PutU32(2);
    w.PutBytes("hi");
    ErrorResponseMsg out;
    ASSERT_TRUE(DecodeErrorResponse(w.buffer(), &out).ok());
    EXPECT_EQ(out.code, StatusCode::kInternal);
    EXPECT_EQ(out.message, "hi");
  }
}

// ----------------------------------------------------------------- fuzzer

/// Runs `bytes` through the exact pipeline a connection uses: header
/// decode, then (if the header parses and the buffer holds the payload)
/// the payload decoder for the claimed type. The assertion is implicit:
/// no crash, no sanitizer report — every failure is a clean return.
void DecodeDispatch(const std::vector<uint8_t>& bytes) {
  FrameHeader header;
  const Status s = DecodeFrameHeader(bytes.data(), bytes.size(),
                                     /*max_payload=*/1 << 20, &header);
  if (!s.ok()) return;
  if (bytes.size() < kFrameHeaderSize + header.payload_size) return;
  const std::string_view payload(
      reinterpret_cast<const char*>(bytes.data()) + kFrameHeaderSize,
      header.payload_size);
  switch (header.type) {
    case MessageType::kQueryRequest: {
      QueryRequestMsg m;
      (void)DecodeQueryRequest(payload, &m);
      break;
    }
    case MessageType::kQueryResponse: {
      QueryResponseMsg m;
      (void)DecodeQueryResponse(payload, &m);
      break;
    }
    case MessageType::kUpdateRequest: {
      UpdateRequestMsg m;
      (void)DecodeUpdateRequest(payload, &m);
      break;
    }
    case MessageType::kUpdateResponse: {
      UpdateResponseMsg m;
      (void)DecodeUpdateResponse(payload, &m);
      break;
    }
    case MessageType::kError: {
      ErrorResponseMsg m;
      (void)DecodeErrorResponse(payload, &m);
      break;
    }
    case MessageType::kSiteSubquery: {
      SiteSubqueryMsg m;
      (void)DecodeSiteSubquery(payload, &m);
      break;
    }
    case MessageType::kSiteResult: {
      SiteResultMsg m;
      (void)DecodeSiteResult(payload, &m);
      break;
    }
    default:
      break;
  }
}

std::vector<uint8_t> AsBytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

/// A corpus of well-formed frames covering every message type, which the
/// fuzzer then mutates — mutations of valid frames explore much deeper
/// decoder paths than pure noise.
std::vector<std::vector<uint8_t>> SeedCorpus() {
  std::vector<std::vector<uint8_t>> corpus;
  corpus.push_back(AsBytes(EncodeFrame(MessageType::kPing, 1, "")));
  corpus.push_back(AsBytes(
      EncodeFrame(MessageType::kQueryRequest, 2,
                  EncodeQueryRequest({7, 9, QueryKind::kCost}))));
  corpus.push_back(AsBytes(EncodeFrame(MessageType::kQueryResponse, 3,
                                       EncodeQueryResponse({1.5}))));
  corpus.push_back(AsBytes(
      EncodeFrame(MessageType::kUpdateRequest, 4,
                  EncodeUpdateRequest({EdgeUpdate::Reweight(3, 4, 2.0)}))));
  corpus.push_back(AsBytes(EncodeFrame(MessageType::kUpdateResponse, 5,
                                       EncodeUpdateResponse({99}))));
  corpus.push_back(AsBytes(EncodeFrame(
      MessageType::kError, 6,
      EncodeErrorResponse({StatusCode::kInvalidArgument, "bad request"}))));
  SiteSubqueryMsg sub;
  sub.spec.fragment = 2;
  sub.spec.sources = {1, 2, 3};
  sub.spec.targets = {4, 5};
  corpus.push_back(AsBytes(
      EncodeFrame(MessageType::kSiteSubquery, 7, EncodeSiteSubquery(sub))));
  SiteResultMsg res;
  res.fragment = 2;
  res.paths = Relation({{1, 4, 0.5}, {2, 5, 1.5}});
  corpus.push_back(AsBytes(
      EncodeFrame(MessageType::kSiteResult, 8, EncodeSiteResult(res))));
  return corpus;
}

TEST(FrameFuzz, EveryPrefixOfEverySeed) {
  // Truncation at every boundary: header cut short, payload cut short.
  for (const auto& seed : SeedCorpus()) {
    for (size_t n = 0; n <= seed.size(); ++n) {
      DecodeDispatch({seed.begin(), seed.begin() + n});
    }
  }
}

TEST(FrameFuzz, SingleBitFlips) {
  // Every single-bit corruption of every seed frame decodes cleanly or
  // fails cleanly — bad magic, bad version, hostile length fields, enum
  // garbage, count corruption, all of it.
  for (const auto& seed : SeedCorpus()) {
    for (size_t byte = 0; byte < seed.size(); ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        std::vector<uint8_t> mutated = seed;
        mutated[byte] ^= static_cast<uint8_t>(1u << bit);
        DecodeDispatch(mutated);
      }
    }
  }
}

TEST(FrameFuzz, LengthFieldLies) {
  // The payload_length claims more or less than the buffer holds.
  for (const auto& seed : SeedCorpus()) {
    for (uint32_t lie :
         {0u, 1u, 19u, 21u, 0xffffu, 0xfffffffu, 0xffffffffu}) {
      std::vector<uint8_t> mutated = seed;
      std::memcpy(mutated.data() + 16, &lie, sizeof(lie));
      DecodeDispatch(mutated);
    }
  }
}

TEST(FrameFuzz, RandomGarbage) {
  // Pure noise buffers of many sizes (deterministic seed).
  Rng rng(0xf22);
  for (int round = 0; round < 2000; ++round) {
    const size_t n = rng.NextBounded(64);
    std::vector<uint8_t> bytes(n);
    for (auto& b : bytes) b = static_cast<uint8_t>(rng.NextBounded(256));
    DecodeDispatch(bytes);
  }
  // Noise that starts with valid magic+version, so it reaches deeper.
  for (int round = 0; round < 2000; ++round) {
    const size_t n = kFrameHeaderSize + rng.NextBounded(64);
    std::vector<uint8_t> bytes(n);
    for (auto& b : bytes) b = static_cast<uint8_t>(rng.NextBounded(256));
    const std::string valid = EncodeFrame(MessageType::kPing, 0, "");
    std::memcpy(bytes.data(), valid.data(), 6);  // magic + version + type
    // Keep flags zero and make the length honest half the time.
    bytes[6] = bytes[7] = 0;
    if (rng.NextBounded(2) == 0) {
      const uint32_t honest = static_cast<uint32_t>(n - kFrameHeaderSize);
      std::memcpy(bytes.data() + 16, &honest, sizeof(honest));
    }
    bytes[5] = static_cast<uint8_t>(rng.NextBounded(12));  // type sweep
    DecodeDispatch(bytes);
  }
}

TEST(FrameFuzz, MutatedPayloadsOfEveryType) {
  // Random byte mutations (not just single bits) inside the payload
  // region of each seed, with the header kept honest — drives the payload
  // decoders through their whole error lattice.
  Rng rng(59);
  for (const auto& seed : SeedCorpus()) {
    if (seed.size() <= kFrameHeaderSize) continue;
    for (int round = 0; round < 500; ++round) {
      std::vector<uint8_t> mutated = seed;
      const size_t mutations = 1 + rng.NextBounded(4);
      for (size_t m = 0; m < mutations; ++m) {
        const size_t pos =
            kFrameHeaderSize +
            rng.NextBounded(mutated.size() - kFrameHeaderSize);
        mutated[pos] = static_cast<uint8_t>(rng.NextBounded(256));
      }
      DecodeDispatch(mutated);
    }
  }
}

}  // namespace
}  // namespace tcf
