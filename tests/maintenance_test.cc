// Tests for update maintenance (Sec. 2.1's "careful treatment of
// updates"): after any sequence of inserts, deletes and re-weights the
// maintained database must answer exactly like a fresh whole-graph oracle,
// and the maintenance meters must distinguish structural rebuilds from
// complementary refreshes.
#include <gtest/gtest.h>

#include "dsa/batch.h"
#include "dsa/maintenance.h"
#include "fragment/center_based.h"
#include "graph/algorithms.h"
#include "graph/builder.h"
#include "graph/generator.h"

namespace tcf {
namespace {

MaintainedDatabase MakeChainDb() {
  // 0-1-2 | 2-3-4 as two fragments sharing node 2.
  GraphBuilder b(5);
  b.AddSymmetricEdge(0, 1, 1.0);
  b.AddSymmetricEdge(1, 2, 1.0);
  b.AddSymmetricEdge(2, 3, 1.0);
  b.AddSymmetricEdge(3, 4, 1.0);
  Graph g = b.Build();
  return MaintainedDatabase(std::move(g), {0, 0, 0, 0, 1, 1, 1, 1}, 2);
}

void ExpectMatchesOracle(const MaintainedDatabase& mdb) {
  const Graph& g = mdb.graph();
  for (NodeId s = 0; s < g.NumNodes(); ++s) {
    ShortestPaths sp = Dijkstra(g, s);
    for (NodeId t = 0; t < g.NumNodes(); ++t) {
      const Weight expected = s == t ? 0.0 : sp.distance[t];
      const QueryAnswer answer = mdb.db().ShortestPath(s, t);
      if (expected == kInfinity) {
        EXPECT_FALSE(answer.connected) << s << "->" << t;
      } else {
        ASSERT_TRUE(answer.connected) << s << "->" << t;
        EXPECT_NEAR(answer.cost, expected, 1e-9) << s << "->" << t;
      }
    }
  }
}

TEST(Maintenance, FreshDatabaseAnswersCorrectly) {
  MaintainedDatabase mdb = MakeChainDb();
  EXPECT_EQ(mdb.structural_rebuilds(), 0u);
  EXPECT_EQ(mdb.complementary_refreshes(), 0u);
  ExpectMatchesOracle(mdb);
}

TEST(Maintenance, InsertIntraFragmentEdge) {
  MaintainedDatabase mdb = MakeChainDb();
  mdb.InsertEdge(0, 2, 0.5);  // both endpoints already in fragment 0
  mdb.InsertEdge(2, 0, 0.5);
  EXPECT_EQ(mdb.structural_rebuilds(), 0u);  // node sets unchanged
  EXPECT_EQ(mdb.complementary_refreshes(), 2u);
  EXPECT_EQ(mdb.graph().NumEdges(), 10u);
  ExpectMatchesOracle(mdb);
  EXPECT_NEAR(mdb.db().ShortestPath(0, 4).cost, 2.5, 1e-9);
}

TEST(Maintenance, InsertEdgeWithNewFragmentNode) {
  MaintainedDatabase mdb = MakeChainDb();
  // Node 4 was only in fragment 1; pulling it into fragment 0 changes the
  // disconnection sets (structural).
  mdb.InsertEdge(0, 4, 10.0, FragmentId{0});
  EXPECT_EQ(mdb.structural_rebuilds(), 1u);
  ExpectMatchesOracle(mdb);
}

TEST(Maintenance, DeleteEdgeDisconnects) {
  MaintainedDatabase mdb = MakeChainDb();
  EXPECT_EQ(mdb.DeleteEdge(2, 3), 1u);
  EXPECT_EQ(mdb.DeleteEdge(3, 2), 1u);
  EXPECT_EQ(mdb.structural_rebuilds(), 2u);
  EXPECT_FALSE(mdb.db().IsConnected(0, 4));
  EXPECT_TRUE(mdb.db().IsConnected(3, 4));
  ExpectMatchesOracle(mdb);
}

TEST(Maintenance, DeleteMissingEdgeIsFree) {
  MaintainedDatabase mdb = MakeChainDb();
  EXPECT_EQ(mdb.DeleteEdge(0, 4), 0u);
  EXPECT_EQ(mdb.structural_rebuilds(), 0u);
  EXPECT_EQ(mdb.complementary_refreshes(), 0u);
}

TEST(Maintenance, ReweightIsRefreshOnly) {
  MaintainedDatabase mdb = MakeChainDb();
  EXPECT_EQ(mdb.ReweightEdge(1, 2, 5.0), 1u);
  EXPECT_EQ(mdb.ReweightEdge(2, 1, 5.0), 1u);
  EXPECT_EQ(mdb.structural_rebuilds(), 0u);
  EXPECT_EQ(mdb.complementary_refreshes(), 2u);
  ExpectMatchesOracle(mdb);
  EXPECT_NEAR(mdb.db().ShortestPath(0, 2).cost, 6.0, 1e-9);
}

TEST(Maintenance, ReweightToSameValueIsFree) {
  MaintainedDatabase mdb = MakeChainDb();
  EXPECT_EQ(mdb.ReweightEdge(1, 2, 1.0), 0u);
  EXPECT_EQ(mdb.complementary_refreshes(), 0u);
}

TEST(Maintenance, ReweightChangesGlobalShortcuts) {
  // Sec. 2.1's update hazard in miniature: a weight change *inside* one
  // fragment silently invalidates another fragment's complementary
  // information. The refresh must propagate it.
  MaintainedDatabase mdb = MakeChainDb();
  // Add a parallel expensive route 1-2 via a new edge in fragment 0... use
  // reweight: make 1-2 cost 9, so queries within fragment 1 that relied on
  // nothing change, but 0->3 now prefers nothing else (sanity check both).
  mdb.ReweightEdge(1, 2, 9.0);
  mdb.ReweightEdge(2, 1, 9.0);
  ExpectMatchesOracle(mdb);
}

TEST(Maintenance, FromFragmentationRoundTrip) {
  TransportationGraphOptions gopts;
  gopts.num_clusters = 3;
  gopts.nodes_per_cluster = 12;
  gopts.target_edges_per_cluster = 48;
  Rng rng(5);
  auto tg = GenerateTransportationGraph(gopts, &rng);
  CenterBasedOptions copts;
  copts.num_fragments = 3;
  copts.distributed_centers = true;
  Fragmentation frag = CenterBasedFragmentation(tg.graph, copts);
  MaintainedDatabase mdb = MaintainedDatabase::FromFragmentation(frag);
  EXPECT_EQ(mdb.graph().NumEdges(), tg.graph.NumEdges());
  EXPECT_EQ(mdb.fragmentation().NumFragments(), frag.NumFragments());
  ExpectMatchesOracle(mdb);
}

// Epoch-granular behavior ---------------------------------------------

TEST(MaintenanceEpoch, EmptyEpochPublishesNothing) {
  MaintainedDatabase mdb = MakeChainDb();
  const uint64_t before = mdb.epoch();

  EpochStats stats = mdb.ApplyEpoch({});
  EXPECT_FALSE(stats.published);
  EXPECT_EQ(stats.ops_applied, 0u);
  EXPECT_EQ(mdb.epoch(), before);

  // An epoch of pure no-ops is the same as an empty one: nothing is
  // published and no meter moves.
  stats = mdb.ApplyEpoch({EdgeUpdate::Delete(0, 4),
                          EdgeUpdate::Reweight(1, 2, 1.0)});
  EXPECT_FALSE(stats.published);
  EXPECT_EQ(stats.ops_applied, 0u);
  EXPECT_EQ(mdb.epoch(), before);
  EXPECT_EQ(mdb.structural_rebuilds(), 0u);
  EXPECT_EQ(mdb.complementary_refreshes(), 0u);
}

TEST(MaintenanceEpoch, MultiOpEpochCountsOnce) {
  MaintainedDatabase mdb = MakeChainDb();
  const EpochStats stats = mdb.ApplyEpoch(
      {EdgeUpdate::Insert(0, 2, 0.5), EdgeUpdate::Insert(2, 0, 0.5),
       EdgeUpdate::Reweight(1, 2, 5.0)});
  EXPECT_TRUE(stats.published);
  EXPECT_EQ(stats.ops_applied, 3u);
  EXPECT_EQ(stats.edges_inserted, 2u);
  EXPECT_EQ(stats.edges_reweighted, 1u);
  EXPECT_EQ(mdb.epoch(), stats.epoch);
  // The legacy meters count per EPOCH, not per op.
  EXPECT_EQ(mdb.complementary_refreshes(), 1u);
  EXPECT_EQ(mdb.structural_rebuilds(), 0u);
  ExpectMatchesOracle(mdb);
}

TEST(MaintenanceEpoch, DeletingAFragmentsLastEdgesRenumbers) {
  MaintainedDatabase mdb = MakeChainDb();
  // One epoch removes every fragment-1 edge; compaction drops the empty
  // fragment, so ids renumber and every identity-keyed carry-over (plan
  // caches, incremental complementary) is off the table.
  const EpochStats stats = mdb.ApplyEpoch(
      {EdgeUpdate::Delete(2, 3), EdgeUpdate::Delete(3, 2),
       EdgeUpdate::Delete(3, 4), EdgeUpdate::Delete(4, 3)});
  EXPECT_TRUE(stats.published);
  EXPECT_TRUE(stats.structural);
  EXPECT_TRUE(stats.renumbered);
  EXPECT_TRUE(stats.caches_reset);
  EXPECT_EQ(stats.edges_removed, 4u);
  EXPECT_EQ(mdb.fragmentation().NumFragments(), 1u);
  // Nodes 3 and 4 lost every incident edge and with them all fragment
  // membership; queries against them come back unconnected, not invalid.
  EXPECT_FALSE(mdb.db().IsConnected(0, 4));
  EXPECT_FALSE(mdb.db().IsConnected(3, 4));
  ExpectMatchesOracle(mdb);
}

TEST(MaintenanceEpoch, ReweightOnlyEpochIsStructureFree) {
  MaintainedDatabase mdb = MakeChainDb();
  const EpochStats stats = mdb.ApplyEpoch(
      {EdgeUpdate::Reweight(1, 2, 5.0), EdgeUpdate::Reweight(2, 1, 5.0),
       EdgeUpdate::Reweight(0, 1, 2.0)});
  EXPECT_TRUE(stats.published);
  EXPECT_FALSE(stats.structural);
  EXPECT_FALSE(stats.renumbered);
  EXPECT_FALSE(stats.caches_reset);
  EXPECT_EQ(stats.edges_reweighted, 3u);
  // Fragment node sets did not move, so plan-cache succession drops
  // nothing and the structural meter stays put.
  EXPECT_EQ(stats.skeletons_dropped, 0u);
  EXPECT_EQ(stats.plans_dropped, 0u);
  EXPECT_EQ(mdb.structural_rebuilds(), 0u);
  EXPECT_EQ(mdb.complementary_refreshes(), 1u);
  ExpectMatchesOracle(mdb);
  EXPECT_NEAR(mdb.db().ShortestPath(0, 2).cost, 7.0, 1e-9);
}

// The tentpole's precision claim: an epoch invalidates exactly the cached
// plans whose chains touch a dirty fragment; plans over untouched chains
// survive into the successor database and keep serving as cross-batch
// interned-plan hits.
TEST(MaintenanceEpoch, CacheInvalidationIsChainPrecise) {
  // A 4-fragment path: F0={0,1} F1={1,2,3} F2={3,4,5} F3={5,6,7}.
  GraphBuilder b(8);
  b.AddSymmetricEdge(0, 1, 1.0);  // F0
  b.AddSymmetricEdge(1, 2, 1.0);  // F1
  b.AddSymmetricEdge(2, 3, 1.0);  // F1
  b.AddSymmetricEdge(3, 4, 1.0);  // F2
  b.AddSymmetricEdge(4, 5, 1.0);  // F2
  b.AddSymmetricEdge(5, 6, 1.0);  // F3
  b.AddSymmetricEdge(6, 7, 1.0);  // F3
  MaintainedDatabase mdb(b.Build(),
                         {0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3}, 4);

  // Warm the interned-plan cache with one pair per end of the path: 0->2
  // plans over chain [F0, F1], 4->7 over chain [F2, F3].
  const std::vector<Query> queries = {{0, 2, QueryKind::kCost},
                                      {4, 7, QueryKind::kCost}};
  {
    BatchExecutor executor(&mdb.db());
    const BatchResult cold = executor.Execute(queries);
    EXPECT_EQ(cold.stats.interned_plan_misses, 2u);
    const BatchResult warm = executor.Execute(queries);
    EXPECT_EQ(warm.stats.interned_plan_hits, 2u);
    EXPECT_EQ(warm.stats.interned_plan_misses, 0u);
  }

  // Dirty ONLY F3: pull node 4 (previously F2-only) into F3 via an edge
  // targeted there. Fragment ids survive (no fragment emptied) and the
  // fragmentation-graph adjacency is unchanged (F2 and F3 were already
  // neighbors), so this is the precise-invalidation regime.
  const EpochStats stats = mdb.ApplyEpoch(
      {EdgeUpdate::Insert(4, 7, 10.0, FragmentId{3})});
  EXPECT_TRUE(stats.published);
  EXPECT_TRUE(stats.structural);
  EXPECT_FALSE(stats.renumbered);
  EXPECT_FALSE(stats.caches_reset);
  // The [F0, F1] entries survive; the [F2, F3] entries die with F3 (the
  // 4->7 plan is also endpoint-dirty: node 4 changed fragment sets).
  EXPECT_GE(stats.skeletons_kept, 1u);
  EXPECT_GE(stats.skeletons_dropped, 1u);
  EXPECT_EQ(stats.plans_kept, 1u);
  EXPECT_EQ(stats.plans_dropped, 1u);

  // Differential re-run on the successor: the untouched pair is still an
  // interned-plan hit, the dirty pair re-plans — and both answers stay
  // oracle-exact.
  BatchExecutor executor(&mdb.db());
  const BatchResult after = executor.Execute(queries);
  EXPECT_EQ(after.stats.interned_plan_hits, 1u);
  EXPECT_EQ(after.stats.interned_plan_misses, 1u);
  ExpectMatchesOracle(mdb);
}

// Property: a random update workload stays oracle-exact throughout.
class MaintenanceSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MaintenanceSweep, RandomWorkloadStaysExact) {
  TransportationGraphOptions gopts;
  gopts.num_clusters = 3;
  gopts.nodes_per_cluster = 10;
  gopts.target_edges_per_cluster = 40;
  Rng rng(GetParam());
  auto tg = GenerateTransportationGraph(gopts, &rng);
  CenterBasedOptions copts;
  copts.num_fragments = 3;
  copts.distributed_centers = true;
  Fragmentation frag = CenterBasedFragmentation(tg.graph, copts);
  MaintainedDatabase mdb = MaintainedDatabase::FromFragmentation(frag);

  Rng workload(GetParam() * 131 + 7);
  for (int step = 0; step < 6; ++step) {
    const NodeId a =
        static_cast<NodeId>(workload.NextBounded(mdb.graph().NumNodes()));
    const NodeId b =
        static_cast<NodeId>(workload.NextBounded(mdb.graph().NumNodes()));
    if (a == b) continue;
    switch (workload.NextBounded(3)) {
      case 0:
        mdb.InsertEdge(a, b, workload.NextDouble(0.1, 2.0));
        break;
      case 1:
        mdb.DeleteEdge(a, b);
        break;
      default:
        mdb.ReweightEdge(a, b, workload.NextDouble(0.1, 2.0));
        break;
    }
    // Spot-check a handful of pairs against the oracle after every step.
    for (int probe = 0; probe < 5; ++probe) {
      const NodeId s =
          static_cast<NodeId>(workload.NextBounded(mdb.graph().NumNodes()));
      const NodeId t =
          static_cast<NodeId>(workload.NextBounded(mdb.graph().NumNodes()));
      const Weight expected =
          s == t ? 0.0 : Dijkstra(mdb.graph(), s).distance[t];
      const QueryAnswer answer = mdb.db().ShortestPath(s, t);
      if (expected == kInfinity) {
        EXPECT_FALSE(answer.connected);
      } else {
        ASSERT_TRUE(answer.connected);
        EXPECT_NEAR(answer.cost, expected, 1e-9);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaintenanceSweep,
                         ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace tcf
