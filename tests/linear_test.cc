// Tests for the linear fragmentation (Sec. 3.3, Figs. 6-8): the sweep, the
// |E|/f threshold, boundary disconnection sets, and — the algorithm's
// design goal — the guaranteed-acyclic fragmentation graph.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "fragment/linear.h"
#include "fragment/metrics.h"
#include "graph/builder.h"
#include "graph/generator.h"

namespace tcf {
namespace {

TransportationGraph MakeTransport(uint64_t seed) {
  TransportationGraphOptions opts;
  opts.num_clusters = 4;
  opts.nodes_per_cluster = 25;
  opts.target_edges_per_cluster = 100;
  Rng rng(seed);
  return GenerateTransportationGraph(opts, &rng);
}

Graph MakeGeneral(uint64_t seed, size_t n = 100, double m = 280) {
  GeneralGraphOptions opts;
  opts.num_nodes = n;
  opts.target_edges = m;
  Rng rng(seed);
  return GenerateGeneralGraph(opts, &rng);
}

TEST(Linear, PartitionsAllEdges) {
  auto t = MakeTransport(1);
  LinearOptions opts;
  opts.num_fragments = 4;
  auto result = LinearFragmentation(t.graph, opts);
  size_t total = 0;
  for (FragmentId i = 0; i < result.fragmentation.NumFragments(); ++i) {
    total += result.fragmentation.FragmentEdges(i).size();
  }
  EXPECT_EQ(total, t.graph.NumEdges());
}

TEST(Linear, AcyclicOnTransportationGraph) {
  auto t = MakeTransport(2);
  LinearOptions opts;
  opts.num_fragments = 4;
  auto result = LinearFragmentation(t.graph, opts);
  EXPECT_TRUE(result.fragmentation.IsLooselyConnected());
}

TEST(Linear, ChainStructure) {
  // Fragments form a chain: every fragment has <= 2 neighbors and the
  // fragmentation graph is a path (when the graph is connected).
  auto t = MakeTransport(3);
  LinearOptions opts;
  opts.num_fragments = 4;
  auto result = LinearFragmentation(t.graph, opts);
  const Fragmentation& f = result.fragmentation;
  size_t endpoints = 0;
  for (FragmentId i = 0; i < f.NumFragments(); ++i) {
    const size_t deg = f.FragmentNeighbors(i).size();
    EXPECT_LE(deg, 2u);
    if (deg <= 1) ++endpoints;
  }
  EXPECT_LE(endpoints, 2u + 0u);  // path has exactly 2 (or 1 fragment total)
}

TEST(Linear, ConsecutiveFragmentsOnlyShareNodes) {
  auto t = MakeTransport(4);
  LinearOptions opts;
  opts.num_fragments = 5;
  auto result = LinearFragmentation(t.graph, opts);
  const Fragmentation& f = result.fragmentation;
  for (const DisconnectionSet& ds : f.disconnection_sets()) {
    EXPECT_EQ(ds.frag_b - ds.frag_a, 1u)
        << "non-consecutive fragments share nodes";
  }
}

TEST(Linear, ThresholdBoundsAllButLastFragmentFromBelow) {
  auto t = MakeTransport(5);
  LinearOptions opts;
  opts.num_fragments = 4;
  auto result = LinearFragmentation(t.graph, opts);
  const Fragmentation& f = result.fragmentation;
  const size_t threshold = t.graph.NumEdges() / 4;
  for (FragmentId i = 0; i + 1 < f.NumFragments(); ++i) {
    EXPECT_GE(f.FragmentEdges(i).size(), threshold);
  }
}

TEST(Linear, SweepStartsAtRequestedSide) {
  auto t = MakeTransport(6);
  LinearOptions left, right;
  left.num_fragments = right.num_fragments = 4;
  left.start = LinearOptions::Start::kLeft;
  right.start = LinearOptions::Start::kRight;
  auto rl = LinearFragmentation(t.graph, left);
  auto rr = LinearFragmentation(t.graph, right);
  auto avg_x_of_fragment0 = [&](const Fragmentation& f) {
    double sum = 0;
    for (NodeId v : f.FragmentNodes(0)) sum += t.graph.coordinate(v).x;
    return sum / static_cast<double>(f.FragmentNodes(0).size());
  };
  EXPECT_LT(avg_x_of_fragment0(rl.fragmentation),
            avg_x_of_fragment0(rr.fragmentation));
}

TEST(Linear, ExplicitStartNodesRespected) {
  auto t = MakeTransport(7);
  LinearOptions opts;
  opts.num_fragments = 4;
  opts.start_nodes = std::vector<NodeId>{99};  // a cluster-3 node
  auto result = LinearFragmentation(t.graph, opts);
  const auto& nodes0 = result.fragmentation.FragmentNodes(0);
  EXPECT_TRUE(std::find(nodes0.begin(), nodes0.end(), 99u) != nodes0.end());
}

TEST(Linear, RecordedBoundariesAreBorderNodesSupersets) {
  // Every formally shared node between consecutive fragments must have
  // been recorded as a boundary by the algorithm.
  auto t = MakeTransport(8);
  LinearOptions opts;
  opts.num_fragments = 4;
  auto result = LinearFragmentation(t.graph, opts);
  const Fragmentation& f = result.fragmentation;
  for (const DisconnectionSet& ds : f.disconnection_sets()) {
    ASSERT_LT(ds.frag_a, result.recorded_boundaries.size());
    const auto& rec = result.recorded_boundaries[ds.frag_a];
    std::set<NodeId> recorded(rec.begin(), rec.end());
    for (NodeId v : ds.nodes) {
      EXPECT_TRUE(recorded.count(v))
          << "node " << v << " shared but never recorded";
    }
  }
}

TEST(Linear, SingleFragmentWhenFIsOne) {
  auto t = MakeTransport(9);
  LinearOptions opts;
  opts.num_fragments = 1;
  auto result = LinearFragmentation(t.graph, opts);
  EXPECT_EQ(result.fragmentation.NumFragments(), 1u);
  EXPECT_TRUE(result.fragmentation.IsLooselyConnected());
}

TEST(Linear, HandlesDisconnectedGraph) {
  GraphBuilder b;
  // Two spatial islands.
  for (int i = 0; i < 6; ++i) {
    b.AddNode({static_cast<double>(i % 3), i < 3 ? 0.0 : 5.0});
  }
  b.AddSymmetricEdge(0, 1);
  b.AddSymmetricEdge(1, 2);
  b.AddSymmetricEdge(3, 4);
  b.AddSymmetricEdge(4, 5);
  Graph g = b.Build();
  LinearOptions opts;
  opts.num_fragments = 2;
  auto result = LinearFragmentation(g, opts);
  size_t total = 0;
  for (FragmentId i = 0; i < result.fragmentation.NumFragments(); ++i) {
    total += result.fragmentation.FragmentEdges(i).size();
  }
  EXPECT_EQ(total, g.NumEdges());
  EXPECT_TRUE(result.fragmentation.IsLooselyConnected());
}

TEST(Linear, RequiresCoordinatesOrStartNodes) {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  Graph g = b.Build();  // no coordinates
  LinearOptions opts;
  opts.start_nodes = std::vector<NodeId>{0};
  auto result = LinearFragmentation(g, opts);  // ok with explicit starts
  EXPECT_GE(result.fragmentation.NumFragments(), 1u);
}

// ---- The headline property: acyclic for every graph, every seed, every
// ---- start side, every fragment count (Sec. 3.3's guarantee).
struct LinParam {
  uint64_t seed;
  size_t fragments;
  LinearOptions::Start start;
  bool transport;
};

class LinearAcyclicSweep : public ::testing::TestWithParam<LinParam> {};

TEST_P(LinearAcyclicSweep, AlwaysLooselyConnected) {
  const LinParam p = GetParam();
  Graph g = p.transport ? MakeTransport(p.seed).graph : MakeGeneral(p.seed);
  LinearOptions opts;
  opts.num_fragments = p.fragments;
  opts.start = p.start;
  auto result = LinearFragmentation(g, opts);
  EXPECT_TRUE(result.fragmentation.IsLooselyConnected())
      << "cycles: " << result.fragmentation.FragmentationGraphCycles();
  // And it is an edge partition.
  size_t total = 0;
  for (FragmentId i = 0; i < result.fragmentation.NumFragments(); ++i) {
    total += result.fragmentation.FragmentEdges(i).size();
  }
  EXPECT_EQ(total, g.NumEdges());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LinearAcyclicSweep,
    ::testing::Values(LinParam{1, 2, LinearOptions::Start::kLeft, true},
                      LinParam{2, 3, LinearOptions::Start::kTop, true},
                      LinParam{3, 4, LinearOptions::Start::kRight, true},
                      LinParam{4, 5, LinearOptions::Start::kBottom, true},
                      LinParam{5, 6, LinearOptions::Start::kLeft, true},
                      LinParam{6, 2, LinearOptions::Start::kLeft, false},
                      LinParam{7, 3, LinearOptions::Start::kTop, false},
                      LinParam{8, 4, LinearOptions::Start::kRight, false},
                      LinParam{9, 5, LinearOptions::Start::kBottom, false},
                      LinParam{10, 8, LinearOptions::Start::kLeft, false},
                      LinParam{11, 4, LinearOptions::Start::kLeft, false},
                      LinParam{12, 4, LinearOptions::Start::kTop, true}));

}  // namespace
}  // namespace tcf
