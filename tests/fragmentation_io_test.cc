// Round-trip tests for fragmentation persistence, including cross-checks
// that a reloaded fragmentation answers queries identically.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "dsa/query_api.h"
#include "fragment/bond_energy.h"
#include "fragment/fragmentation_io.h"
#include "graph/builder.h"
#include "graph/generator.h"
#include "graph/io.h"

namespace tcf {
namespace {

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(FragmentationIo, RoundTripPreservesEverything) {
  TransportationGraphOptions gopts;
  gopts.num_clusters = 3;
  gopts.nodes_per_cluster = 10;
  gopts.target_edges_per_cluster = 40;
  Rng rng(3);
  auto tg = GenerateTransportationGraph(gopts, &rng);
  BondEnergyOptions bopts;
  bopts.num_fragments = 3;
  Fragmentation frag = BondEnergyFragmentation(tg.graph, bopts);

  const std::string path = TempPath("tcf_frag_roundtrip.frag");
  ASSERT_TRUE(WriteFragmentation(frag, path).ok());
  auto loaded = ReadFragmentation(tg.graph, path);
  ASSERT_TRUE(loaded.ok());
  const Fragmentation& frag2 = loaded.value();
  EXPECT_EQ(frag2.NumFragments(), frag.NumFragments());
  EXPECT_EQ(frag2.fragment_of_edge(), frag.fragment_of_edge());
  EXPECT_EQ(frag2.disconnection_sets().size(),
            frag.disconnection_sets().size());
  for (size_t i = 0; i < frag.disconnection_sets().size(); ++i) {
    EXPECT_EQ(frag2.disconnection_sets()[i].nodes,
              frag.disconnection_sets()[i].nodes);
  }
  std::remove(path.c_str());
}

TEST(FragmentationIo, FullDeploymentRoundTrip) {
  // Graph + fragmentation to disk, reload both, query — the DBA workflow.
  TransportationGraphOptions gopts;
  gopts.num_clusters = 3;
  gopts.nodes_per_cluster = 10;
  gopts.target_edges_per_cluster = 40;
  Rng rng(7);
  auto tg = GenerateTransportationGraph(gopts, &rng);
  BondEnergyOptions bopts;
  bopts.num_fragments = 3;
  Fragmentation frag = BondEnergyFragmentation(tg.graph, bopts);

  const std::string gpath = TempPath("tcf_deploy.graph");
  const std::string fpath = TempPath("tcf_deploy.frag");
  ASSERT_TRUE(WriteEdgeList(tg.graph, gpath).ok());
  ASSERT_TRUE(WriteFragmentation(frag, fpath).ok());

  auto graph2 = ReadEdgeList(gpath);
  ASSERT_TRUE(graph2.ok());
  auto frag2 = ReadFragmentation(graph2.value(), fpath);
  ASSERT_TRUE(frag2.ok());

  DsaDatabase original(&frag);
  DsaDatabase reloaded(&frag2.value());
  Rng qrng(11);
  for (int i = 0; i < 8; ++i) {
    const NodeId s =
        static_cast<NodeId>(qrng.NextBounded(tg.graph.NumNodes()));
    const NodeId t =
        static_cast<NodeId>(qrng.NextBounded(tg.graph.NumNodes()));
    const Weight a = original.ShortestPath(s, t).cost;
    const Weight b = reloaded.ShortestPath(s, t).cost;
    if (a == kInfinity) {
      EXPECT_EQ(b, kInfinity);
    } else {
      EXPECT_NEAR(a, b, 1e-12);
    }
  }
  std::remove(gpath.c_str());
  std::remove(fpath.c_str());
}

TEST(FragmentationIo, RejectsWrongGraph) {
  GraphBuilder b1(3), b2(3);
  b1.AddEdge(0, 1);
  b1.AddEdge(1, 2);
  b2.AddEdge(0, 1);
  Graph g1 = b1.Build();
  Graph g2 = b2.Build();
  Fragmentation frag(&g1, {0, 1}, 2);
  const std::string path = TempPath("tcf_frag_mismatch.frag");
  ASSERT_TRUE(WriteFragmentation(frag, path).ok());
  auto loaded = ReadFragmentation(g2, path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(FragmentationIo, RejectsGarbageAndMissing) {
  GraphBuilder b(2);
  b.AddEdge(0, 1);
  Graph g = b.Build();
  EXPECT_EQ(ReadFragmentation(g, "/does/not/exist.frag").status().code(),
            StatusCode::kIOError);
  const std::string path = TempPath("tcf_frag_garbage.frag");
  FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("hello world\n", f);
  std::fclose(f);
  EXPECT_EQ(ReadFragmentation(g, path).status().code(),
            StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(FragmentationIo, RejectsOutOfRangeFragmentId) {
  GraphBuilder b(2);
  b.AddEdge(0, 1);
  Graph g = b.Build();
  const std::string path = TempPath("tcf_frag_range.frag");
  FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("tcf-fragmentation 1\n1 2\n7\n", f);
  std::fclose(f);
  EXPECT_EQ(ReadFragmentation(g, path).status().code(),
            StatusCode::kOutOfRange);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tcf
