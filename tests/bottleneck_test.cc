// Tests for the bottleneck (widest-path) semiring: the relational engine's
// kBottleneck mode against the max-min Dijkstra oracle, and the
// BottleneckDsa against a whole-graph oracle across fragmenters and seeds
// — the "complementary information is different for each type of path
// problem" dimension of the paper.
#include <gtest/gtest.h>

#include <memory>

#include "dsa/bottleneck.h"
#include "fragment/bond_energy.h"
#include "fragment/center_based.h"
#include "fragment/linear.h"
#include "fragment/random_partition.h"
#include "graph/algorithms.h"
#include "graph/builder.h"
#include "graph/generator.h"
#include "relational/transitive_closure.h"

namespace tcf {
namespace {

// -------------------------------------------------------------- oracle

TEST(WidestPathsFrom, PicksTheFatterRoute) {
  // 0 -> 3 directly with capacity 2, or via 1-2 with min capacity 5.
  GraphBuilder b(4);
  b.AddEdge(0, 3, 2.0);
  b.AddEdge(0, 1, 9.0);
  b.AddEdge(1, 2, 5.0);
  b.AddEdge(2, 3, 7.0);
  WidestPaths wp = WidestPathsFrom(b.Build(), 0);
  EXPECT_DOUBLE_EQ(wp.capacity[3], 5.0);
  EXPECT_EQ(wp.parent[3], 2u);
  EXPECT_DOUBLE_EQ(wp.capacity[0], kInfinity);
}

TEST(WidestPathsFrom, UnreachableIsZero) {
  GraphBuilder b(3);
  b.AddEdge(0, 1, 4.0);
  WidestPaths wp = WidestPathsFrom(b.Build(), 0);
  EXPECT_DOUBLE_EQ(wp.capacity[2], 0.0);
}

TEST(WidestPathsFrom, DirectionMatters) {
  GraphBuilder b(2);
  b.AddEdge(0, 1, 3.0);
  WidestPaths wp = WidestPathsFrom(b.Build(), 1);
  EXPECT_DOUBLE_EQ(wp.capacity[0], 0.0);
}

// ----------------------------------------------------- relational engine

TEST(BottleneckClosure, TinyExample) {
  Relation base;
  base.Add(0, 1, 4.0);
  base.Add(1, 2, 6.0);
  base.Add(0, 2, 3.0);
  TcOptions opts;
  opts.semiring = TcSemiring::kBottleneck;
  Relation tc = TransitiveClosure(base, opts);
  EXPECT_DOUBLE_EQ(tc.MaxCost(0, 2), 4.0);  // via 1 beats the direct 3
  EXPECT_DOUBLE_EQ(tc.MaxCost(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(tc.MaxCost(1, 2), 6.0);
}

TEST(BottleneckClosure, CycleConverges) {
  GraphBuilder b(3);
  b.AddEdge(0, 1, 2.0);
  b.AddEdge(1, 2, 3.0);
  b.AddEdge(2, 0, 4.0);
  TcOptions opts;
  opts.semiring = TcSemiring::kBottleneck;
  TcStats stats;
  Relation tc = TransitiveClosure(Relation::FromGraph(b.Build()), opts,
                                  &stats);
  EXPECT_DOUBLE_EQ(tc.MaxCost(0, 0), 2.0);  // around the cycle
  EXPECT_DOUBLE_EQ(tc.MaxCost(2, 1), 2.0);
  EXPECT_LT(stats.iterations, 10u);
}

TEST(BottleneckClosure, JoinMaxMinBasics) {
  Relation ab, bc;
  ab.Add(0, 1, 5.0);
  ab.Add(0, 2, 8.0);
  bc.Add(1, 3, 7.0);
  bc.Add(2, 3, 2.0);
  Relation ac = JoinMaxMin(ab, bc);
  // via 1: min(5,7) = 5; via 2: min(8,2) = 2 -> keep 5.
  EXPECT_DOUBLE_EQ(ac.MaxCost(0, 3), 5.0);
  EXPECT_EQ(ac.size(), 1u);
}

TEST(BottleneckClosure, ImprovingTuplesMaxKeepsOnlyBetter) {
  Relation cand, best;
  cand.Add(0, 1, 5.0);
  cand.Add(0, 2, 1.0);
  best.Add(0, 1, 6.0);
  Relation imp = ImprovingTuplesMax(cand, best);
  EXPECT_EQ(imp.size(), 1u);
  EXPECT_DOUBLE_EQ(imp.MaxCost(0, 2), 1.0);
}

class BottleneckEngineSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BottleneckEngineSweep, AllAlgorithmsMatchWidestOracle) {
  GeneralGraphOptions opts;
  opts.num_nodes = 18;
  opts.target_edges = 55;
  opts.symmetric = false;
  Rng rng(GetParam());
  Graph g = GenerateGeneralGraph(opts, &rng);
  Relation base = Relation::FromGraph(g);

  for (TcAlgorithm algo : {TcAlgorithm::kSemiNaive, TcAlgorithm::kNaive,
                           TcAlgorithm::kSmart}) {
    TcOptions tc_opts;
    tc_opts.semiring = TcSemiring::kBottleneck;
    tc_opts.algorithm = algo;
    Relation tc = TransitiveClosure(base, tc_opts);
    for (NodeId s = 0; s < g.NumNodes(); ++s) {
      WidestPaths wp = WidestPathsFrom(g, s);
      for (NodeId t = 0; t < g.NumNodes(); ++t) {
        if (s == t) continue;
        EXPECT_DOUBLE_EQ(tc.MaxCost(s, t), wp.capacity[t])
            << s << "->" << t;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BottleneckEngineSweep,
                         ::testing::Range<uint64_t>(1, 7));

// ------------------------------------------------------------------ DSA

TransportationGraph MakeTransport(uint64_t seed) {
  TransportationGraphOptions opts;
  opts.num_clusters = 4;
  opts.nodes_per_cluster = 12;
  opts.target_edges_per_cluster = 48;
  Rng rng(seed);
  return GenerateTransportationGraph(opts, &rng);
}

TEST(BottleneckDsa, CapacityComplementaryIsGlobal) {
  // Chain of two fragments; the widest border-to-border route uses the
  // other fragment.
  GraphBuilder b(4);
  b.AddSymmetricEdge(0, 1, 10.0);  // fragment 0
  b.AddSymmetricEdge(1, 2, 1.0);   // fragment 0 (narrow internal link)
  b.AddSymmetricEdge(1, 3, 8.0);   // fragment 1
  b.AddSymmetricEdge(3, 2, 8.0);   // fragment 1
  Graph g = b.Build();
  Fragmentation f(&g, {0, 0, 0, 0, 1, 1, 1, 1}, 2);
  ComplementaryInfo info = PrecomputeCapacityComplementary(f);
  // Border nodes of fragment 0 are {1, 2}; globally widest 1->2 is via 3.
  EXPECT_DOUBLE_EQ(info.ForFragment(0).MaxCost(1, 2), 8.0);
}

TEST(BottleneckDsa, SelfAndDisconnected) {
  GraphBuilder b(4);
  b.AddSymmetricEdge(0, 1, 2.0);
  b.AddSymmetricEdge(2, 3, 2.0);
  Graph g = b.Build();
  Fragmentation f(&g, {0, 0, 1, 1}, 2);
  BottleneckDsa db(&f);
  EXPECT_EQ(db.WidestPath(1, 1).capacity, kInfinity);
  EXPECT_FALSE(db.WidestPath(0, 3).connected);
  EXPECT_DOUBLE_EQ(db.WidestPath(0, 3).capacity, 0.0);
}

struct BnParam {
  uint64_t seed;
  int fragmenter;  // 0 center, 1 bea, 2 linear, 3 random
};

class BottleneckDsaSweep : public ::testing::TestWithParam<BnParam> {};

TEST_P(BottleneckDsaSweep, MatchesWholeGraphWidestOracle) {
  const BnParam p = GetParam();
  auto t = MakeTransport(p.seed);
  std::unique_ptr<Fragmentation> frag;
  switch (p.fragmenter) {
    case 0: {
      CenterBasedOptions opts;
      opts.num_fragments = 4;
      opts.distributed_centers = true;
      frag = std::make_unique<Fragmentation>(
          CenterBasedFragmentation(t.graph, opts));
      break;
    }
    case 1: {
      BondEnergyOptions opts;
      opts.num_fragments = 4;
      frag = std::make_unique<Fragmentation>(
          BondEnergyFragmentation(t.graph, opts));
      break;
    }
    case 2: {
      LinearOptions opts;
      opts.num_fragments = 4;
      frag = std::make_unique<Fragmentation>(
          LinearFragmentation(t.graph, opts).fragmentation);
      break;
    }
    default: {
      Rng rng(p.seed * 17 + 3);
      frag = std::make_unique<Fragmentation>(
          RandomFragmentation(t.graph, 4, &rng));
      break;
    }
  }
  BottleneckDsa db(frag.get());
  Rng rng(p.seed);
  for (int i = 0; i < 10; ++i) {
    const NodeId s = static_cast<NodeId>(rng.NextBounded(t.graph.NumNodes()));
    const NodeId u = static_cast<NodeId>(rng.NextBounded(t.graph.NumNodes()));
    if (s == u) continue;
    const Weight oracle = WidestPathsFrom(t.graph, s).capacity[u];
    const BottleneckAnswer answer = db.WidestPath(s, u);
    if (oracle <= 0.0) {
      EXPECT_FALSE(answer.connected);
    } else {
      ASSERT_TRUE(answer.connected) << s << "->" << u;
      EXPECT_NEAR(answer.capacity, oracle, 1e-9) << s << "->" << u;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BottleneckDsaSweep,
    ::testing::Values(BnParam{1, 0}, BnParam{2, 1}, BnParam{3, 2},
                      BnParam{4, 3}, BnParam{5, 0}, BnParam{6, 1},
                      BnParam{7, 2}, BnParam{8, 3}));

}  // namespace
}  // namespace tcf
